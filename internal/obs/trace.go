package obs

import (
	"sync"

	"repro/internal/sim"
	"repro/internal/types"
)

// DefaultTraceCapacity is the ring size EnableTrace uses when given a
// non-positive capacity: large enough to hold the causal tail of a chaos
// run (view changes, faults, timeouts), small enough that an artifact dump
// stays reviewable.
const DefaultTraceCapacity = 8192

// NoPeer marks the Q field of a trace event that concerns a single
// processor rather than a directed pair.
const NoPeer types.ProcID = -1

// TraceEvent is one entry of the ring-buffer event trace: a structured,
// allocation-free record of a protocol-level incident (a view install, a
// token-loss timeout, a fault, a crash recovery). Seq is a global emission
// counter, so dumps stay causally ordered even among events at the same
// virtual instant.
type TraceEvent struct {
	Seq   int64        `json:"seq"`
	T     sim.Time     `json:"t_ns"`
	Layer string       `json:"layer"`
	Kind  string       `json:"kind"`
	P     types.ProcID `json:"p"`
	Q     types.ProcID `json:"q"`
	Arg   int64        `json:"arg"`
	Note  string       `json:"note,omitempty"`
}

// Tracer is a bounded ring buffer of TraceEvents. Emissions beyond the
// capacity overwrite the oldest entries — the trace is failure-scoped by
// construction: whatever is in the ring when a run fails is the causal
// tail leading up to (and through) the failure. A nil *Tracer drops every
// emission at zero cost.
type Tracer struct {
	mu      sync.Mutex
	clock   func() sim.Time
	buf     []TraceEvent
	next    int // index of the slot the next event lands in
	seq     int64
	dropped int64 // events overwritten after the ring wrapped
}

// Emit appends one event. All arguments are non-allocating at the call
// site: layer/kind/note are string constants, the rest are scalars. Use
// NoPeer for q when the event has no directed-pair semantics.
func (t *Tracer) Emit(layer, kind string, p, q types.ProcID, arg int64, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var now sim.Time
	if t.clock != nil {
		now = t.clock()
	}
	if t.seq >= int64(len(t.buf)) {
		t.dropped++
	}
	t.buf[t.next] = TraceEvent{
		Seq: t.seq, T: now, Layer: layer, Kind: kind, P: p, Q: q, Arg: arg, Note: note,
	}
	t.seq++
	t.next = (t.next + 1) % len(t.buf)
}

// Events returns the buffered events in emission order (oldest first).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	if n > int64(len(t.buf)) {
		n = int64(len(t.buf))
	}
	out := make([]TraceEvent, 0, n)
	start := 0
	if t.seq > int64(len(t.buf)) {
		start = t.next // ring wrapped: oldest surviving event sits at next
	}
	for i := int64(0); i < n; i++ {
		out = append(out, t.buf[(start+int(i))%len(t.buf)])
	}
	return out
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
