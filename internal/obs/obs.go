// Package obs is the observability layer: lightweight counters, gauges,
// and fixed-bucket latency histograms, plus a bounded ring-buffer event
// tracer (trace.go). Every layer of the stack — net, membership, vsimpl,
// vstoto, storage/recovery, stack — binds named instruments from one
// Registry at construction time and updates them on its hot paths.
//
// The paper's claims are conditional *performance* properties (TO-property
// and VS-property of Figures 5 and 7, the Section 8 analytic bounds), so
// the quantities they talk about — message counts per layer, view-formation
// latency, token-round timing, delivery-latency distributions — must be
// observable without perturbing the timed experiments that validate them.
// Two design rules follow:
//
//   - all timestamps come from the simulated clock (no time.Now in any
//     deterministic path), so instrumentation never introduces
//     nondeterminism;
//   - the disabled path is zero-allocation and near-zero cost: a nil
//     *Registry hands out nil instruments, and every method on a nil
//     instrument is an inlineable no-op (TestDisabledInstrumentsZeroAlloc
//     pins 0 allocs/op).
//
// Instruments are safe for concurrent use (atomics throughout): the
// simulation itself is single-threaded, but the real-time runtime driver
// (internal/runtime) paces the simulator on one goroutine while
// application goroutines read metrics, which is exactly the access pattern
// that raced on the pre-obs ad-hoc counters.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter is a valid disabled counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value (or running-maximum) instrument. The zero value is
// ready to use; a nil *Gauge is a valid disabled gauge.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds samples with
// 2^(i-1) < d ≤ 2^i nanoseconds (bucket 0 holds d ≤ 1ns), and the last
// bucket is the overflow. 2^47 ns ≈ 39h, far beyond any simulated run.
const histBuckets = 48

// Histogram is a fixed-bucket latency histogram over power-of-two
// nanosecond boundaries. Recording is allocation-free; percentiles are
// resolved to the upper boundary of the covering bucket (exact Min, Max,
// Mean and Count are kept alongside). A nil *Histogram is a valid disabled
// histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	minP1   atomic.Int64 // min+1; 0 means no samples yet
	max     atomic.Int64
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d) - 1) // smallest b with d ≤ 2^b
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.minP1.Load()
		if cur != 0 && cur <= int64(d)+1 {
			break
		}
		if h.minP1.CompareAndSwap(cur, int64(d)+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= int64(d) || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the q-quantile (0 < q ≤ 1), resolved to the upper
// boundary of the bucket containing it; the top sample resolves to the
// exact maximum. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= total {
		return time.Duration(h.max.Load())
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			// Bucket upper bound, clamped to the exact max: the true
			// quantile can never exceed the largest sample.
			ub := int64(1)
			if i > 0 {
				ub = int64(1) << uint(i)
			}
			if max := h.max.Load(); ub > max {
				ub = max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(h.max.Load())
}

// Summary condenses the histogram for reports.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil || h.count.Load() == 0 {
		return HistogramSummary{}
	}
	n := h.count.Load()
	return HistogramSummary{
		Count:  n,
		MinNS:  h.minP1.Load() - 1,
		MeanNS: h.sum.Load() / n,
		P50NS:  int64(h.Quantile(0.50)),
		P99NS:  int64(h.Quantile(0.99)),
		MaxNS:  h.max.Load(),
	}
}

// HistogramSummary is the JSON-friendly condensation of a histogram.
type HistogramSummary struct {
	Count  int64 `json:"count"`
	MinNS  int64 `json:"min_ns"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Registry holds a run's named instruments and (optionally) its tracer. A
// nil *Registry is the disabled observability layer: it hands out nil
// instruments and a nil tracer, all of which are free no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
	clock    func() sim.Time
}

// New creates an enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetClock installs the simulated clock used to timestamp trace events.
// The stack calls it once per cluster; metrics themselves never read the
// clock (latencies are computed by the instrumented layer).
func (r *Registry) SetClock(now func() sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = now
	if r.tracer != nil {
		r.tracer.clock = now
	}
}

// Counter returns (creating if needed) the named counter; nil from a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil from a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil from a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// EnableTrace attaches a ring-buffer tracer of the given capacity (a
// non-positive capacity gets DefaultTraceCapacity). Idempotent: a second
// call keeps the existing tracer.
func (r *Registry) EnableTrace(capacity int) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		if capacity <= 0 {
			capacity = DefaultTraceCapacity
		}
		r.tracer = &Tracer{buf: make([]TraceEvent, capacity), clock: r.clock}
	}
	return r.tracer
}

// Tracer returns the attached tracer, or nil (from a nil registry or when
// tracing was never enabled). A nil *Tracer drops every Emit.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Snapshot is a point-in-time copy of every instrument, in JSON-stable
// form (maps marshal with sorted keys).
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. Zero-valued
// instruments are included: a counter that exists but never fired is
// itself a signal (e.g. "no token timeouts"). Returns nil from a nil
// registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}

// merge folds src's samples into h. Buckets, count, and sum add; min and
// max combine — every operation is commutative and associative, so a
// multi-way merge yields the same histogram in any order.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if n := src.count.Load(); n != 0 {
		h.count.Add(n)
		h.sum.Add(src.sum.Load())
	}
	if sp1 := src.minP1.Load(); sp1 != 0 {
		for {
			cur := h.minP1.Load()
			if cur != 0 && cur <= sp1 {
				break
			}
			if h.minP1.CompareAndSwap(cur, sp1) {
				break
			}
		}
	}
	sm := src.max.Load()
	for {
		cur := h.max.Load()
		if cur >= sm || h.max.CompareAndSwap(cur, sm) {
			break
		}
	}
}

// Merge folds every instrument of src into r, creating instruments that r
// lacks: counters add, gauges take the maximum, histograms combine
// bucket-wise. All three operations are commutative and associative, so
// merging a set of per-run registries produces the same aggregate in any
// order — which is what lets the sweep engine merge per-run metrics from
// parallel workers deterministically. Tracers are not merged (a trace is a
// per-run artifact). Merging from or into a nil registry is a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	// Collect instrument pointers under src's lock, then merge through the
	// atomics without holding it: no lock-order coupling between registries.
	type named[T any] struct {
		name string
		v    T
	}
	src.mu.Lock()
	counters := make([]named[*Counter], 0, len(src.counters))
	for name, c := range src.counters {
		counters = append(counters, named[*Counter]{name, c})
	}
	gauges := make([]named[*Gauge], 0, len(src.gauges))
	for name, g := range src.gauges {
		gauges = append(gauges, named[*Gauge]{name, g})
	}
	hists := make([]named[*Histogram], 0, len(src.hists))
	for name, h := range src.hists {
		hists = append(hists, named[*Histogram]{name, h})
	}
	src.mu.Unlock()
	for _, c := range counters {
		r.Counter(c.name).Add(c.v.Value())
	}
	for _, g := range gauges {
		r.Gauge(g.name).Max(g.v.Value())
	}
	for _, h := range hists {
		r.Histogram(h.name).merge(h.v)
	}
}

// CounterNames returns the sorted names of all counters (tests, reports).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
