package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Max(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after Max(3) = %d, want 7", got)
	}
	g.Max(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after Max(11) = %d, want 11", got)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 100 * time.Millisecond} {
		h.Record(d)
	}
	s := h.Summary()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.MinNS != int64(time.Millisecond) {
		t.Fatalf("min = %d, want %d", s.MinNS, int64(time.Millisecond))
	}
	if s.MaxNS != int64(100*time.Millisecond) {
		t.Fatalf("max = %d, want %d", s.MaxNS, int64(100*time.Millisecond))
	}
	wantMean := int64(time.Millisecond+2*time.Millisecond+4*time.Millisecond+100*time.Millisecond) / 4
	if s.MeanNS != wantMean {
		t.Fatalf("mean = %d, want %d", s.MeanNS, wantMean)
	}
	// P50 resolves to a power-of-two bucket boundary covering the sample.
	if p50 := time.Duration(s.P50NS); p50 < 2*time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want within [2ms, 4ms]", p50)
	}
	// The top quantile resolves to the exact max.
	if got := h.Quantile(1.0); got != 100*time.Millisecond {
		t.Fatalf("q1.0 = %v, want exact max 100ms", got)
	}
}

func TestHistogramQuantileBuckets(t *testing.T) {
	h := New().Histogram("h")
	for i := 0; i < 99; i++ {
		h.Record(time.Microsecond) // bucket boundary 2^10 ns = 1024ns
	}
	h.Record(time.Second)
	if p50 := h.Quantile(0.5); p50 != 1024*time.Nanosecond {
		t.Fatalf("p50 = %v, want 1.024µs (bucket upper bound)", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 1024*time.Nanosecond {
		t.Fatalf("p99 = %v, want ≤ 1.024µs (99 of 100 samples are 1µs)", p99)
	}
}

func TestTracerRing(t *testing.T) {
	r := New()
	now := sim.Time(0)
	r.SetClock(func() sim.Time { return now })
	tr := r.EnableTrace(4)
	for i := 0; i < 6; i++ {
		now = sim.Time(i)
		tr.Emit("l", "k", 1, NoPeer, int64(i), "")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(i + 2); e.Arg != want || e.Seq != want {
			t.Fatalf("event %d = %+v, want arg/seq %d (oldest two overwritten)", i, e, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if r.EnableTrace(16) != tr {
		t.Fatal("EnableTrace is not idempotent")
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Record(time.Millisecond)
	s1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatalf("snapshot encoding unstable:\n%s\n%s", s1, s2)
	}
	var back Snapshot
	if err := json.Unmarshal(s1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot round trip lost data: %+v", back)
	}
}

// TestDisabledInstrumentsZeroAlloc pins the acceptance criterion: with
// observability disabled (nil registry, hence nil instruments and tracer),
// the instrumented hot paths allocate nothing.
func TestDisabledInstrumentsZeroAlloc(t *testing.T) {
	var r *Registry // disabled
	c := r.Counter("net.sent")
	g := r.Gauge("vs.max_token_entries")
	h := r.Histogram("to.deliver_latency")
	tr := r.Tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Max(42)
		h.Record(time.Millisecond)
		tr.Emit("vs", "token_timeout", 1, NoPeer, 0, "")
		if r.Snapshot() != nil {
			t.Fatal("nil registry produced a snapshot")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledInstruments is the microbenchmark form of the same
// criterion; run with -benchmem to see 0 allocs/op.
func BenchmarkDisabledInstruments(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	h := r.Histogram("h")
	tr := r.Tracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Record(time.Duration(i))
		tr.Emit("l", "k", 0, NoPeer, int64(i), "")
	}
}

// BenchmarkEnabledInstruments bounds the enabled-path cost (atomics only).
func BenchmarkEnabledInstruments(b *testing.B) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Record(time.Duration(i))
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Record(time.Duration(i))
				_ = c.Value()
				_ = h.Summary()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
}

// TestMergeOrderIndependent pins the property the sweep engine relies on:
// merging a set of per-run registries yields the same snapshot whatever
// order the merges happen in.
func TestMergeOrderIndependent(t *testing.T) {
	mk := func(i int) *Registry {
		r := New()
		r.Counter("runs").Inc()
		r.Counter("msgs").Add(int64(10 * (i + 1)))
		r.Gauge("peak").Max(int64(100 - i))
		h := r.Histogram("lat")
		for k := 0; k <= i; k++ {
			h.Record(time.Duration(1+i*7+k*3) * time.Millisecond)
		}
		return r
	}
	n := 5
	forward, reverse := New(), New()
	for i := 0; i < n; i++ {
		forward.Merge(mk(i))
	}
	for i := n - 1; i >= 0; i-- {
		reverse.Merge(mk(i))
	}
	fj, err := json.Marshal(forward.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(reverse.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(fj) != string(rj) {
		t.Fatalf("merge is order-dependent:\nforward: %s\nreverse: %s", fj, rj)
	}
	snap := forward.Snapshot()
	if got := snap.Counters["runs"]; got != int64(n) {
		t.Fatalf("runs counter = %d, want %d", got, n)
	}
	if got := snap.Counters["msgs"]; got != 10+20+30+40+50 {
		t.Fatalf("msgs counter = %d, want 150", got)
	}
	if got := snap.Gauges["peak"]; got != 100 {
		t.Fatalf("peak gauge = %d, want 100", got)
	}
	var wantCount int64
	for i := 0; i < n; i++ {
		wantCount += int64(i + 1)
	}
	if got := snap.Histograms["lat"].Count; got != wantCount {
		t.Fatalf("lat count = %d, want %d", got, wantCount)
	}
}

// TestMergeCreatesMissingAndNilSafe checks Merge materialises instruments
// the destination lacks and tolerates nil endpoints.
func TestMergeCreatesMissingAndNilSafe(t *testing.T) {
	src := New()
	src.Counter("only.in.src").Add(7)
	src.Histogram("h").Record(3 * time.Millisecond)
	dst := New()
	dst.Merge(src)
	if got := dst.Snapshot().Counters["only.in.src"]; got != 7 {
		t.Fatalf("missing counter not created: got %d", got)
	}
	if got := dst.Snapshot().Histograms["h"].Count; got != 1 {
		t.Fatalf("missing histogram not created: got count %d", got)
	}
	var nilReg *Registry
	nilReg.Merge(src) // must not panic
	dst.Merge(nil)    // must not panic
	if got := dst.Snapshot().Counters["only.in.src"]; got != 7 {
		t.Fatalf("nil merge perturbed dst: got %d", got)
	}
}
