package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/stack"
	"repro/internal/types"
)

func startFast(t *testing.T, n int) *Runtime {
	t.Helper()
	return Start(Options{
		Cluster: stack.Options{Seed: 1, N: n, Delta: time.Millisecond},
		Speed:   2000, // 2s of virtual time per wall ms tick batch — fast tests
		Tick:    time.Millisecond,
	})
}

func TestLiveDeliveryReachesSubscribers(t *testing.T) {
	r := startFast(t, 3)
	defer r.Stop()
	sub := r.Subscribe()
	r.Bcast(0, "hello")

	deadline := time.After(5 * time.Second)
	seen := map[types.ProcID]bool{}
	for len(seen) < 3 {
		select {
		case d := <-sub:
			if d.Value != "hello" || d.From != 0 {
				t.Fatalf("unexpected delivery %+v", d)
			}
			seen[d.Node] = true
		case <-deadline:
			t.Fatalf("timed out; saw %v", seen)
		}
	}
}

func TestLiveDeliveriesSnapshotAndViews(t *testing.T) {
	r := startFast(t, 3)
	defer r.Stop()
	r.Bcast(1, "x")
	waitFor(t, func() bool { return len(r.Deliveries(2)) == 1 })
	ds := r.Deliveries(2)
	if ds[0].Value != "x" {
		t.Fatalf("deliveries = %v", ds)
	}
	views := r.Views()
	if len(views) != 3 {
		t.Fatalf("views = %v", views)
	}
	for p, v := range views {
		if v == "⊥" {
			t.Errorf("%v has no view", p)
		}
	}
	if r.Now() == 0 {
		t.Error("virtual time did not advance")
	}
	if r.Procs().Size() != 3 {
		t.Error("Procs wrong")
	}
}

func TestLiveCrashPartitionHeal(t *testing.T) {
	r := startFast(t, 3)
	defer r.Stop()
	r.Crash(2)
	r.Bcast(0, "while-down")
	waitFor(t, func() bool { return len(r.Deliveries(0)) == 1 })
	if len(r.Deliveries(2)) != 0 {
		t.Fatal("crashed node delivered")
	}
	r.Heal()
	waitFor(t, func() bool { return len(r.Deliveries(2)) == 1 })

	r.Partition(types.NewProcSet(0, 1), types.NewProcSet(2))
	r.Bcast(0, "majority-only")
	waitFor(t, func() bool { return len(r.Deliveries(0)) == 2 })
	if len(r.Deliveries(2)) > 1 {
		t.Fatal("minority delivered during partition")
	}
	r.Heal()
	waitFor(t, func() bool { return len(r.Deliveries(2)) == 2 })
}

func TestLiveLogSnapshot(t *testing.T) {
	r := startFast(t, 2)
	defer r.Stop()
	r.Bcast(0, "logged")
	waitFor(t, func() bool { return len(r.Deliveries(1)) == 1 })
	log := r.Log()
	if log.Len() == 0 || log.Initial == nil {
		t.Fatalf("log snapshot empty: %d events", log.Len())
	}
}

func TestStopClosesSubscribers(t *testing.T) {
	r := startFast(t, 2)
	sub := r.Subscribe()
	r.Stop()
	select {
	case _, open := <-sub:
		if open {
			// Drain any buffered deliveries, then expect close.
			for range sub {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber channel not closed after Stop")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestStopIsIdempotent calls Stop repeatedly, sequentially and from
// concurrent goroutines: every call must return (after shutdown completes)
// without panicking on the already-closed stop channel.
func TestStopIsIdempotent(t *testing.T) {
	r := startFast(t, 3)
	r.Stop()
	r.Stop() // second sequential call: must be a no-op, not a panic

	r = startFast(t, 3)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Stop()
		}()
	}
	wg.Wait()
	r.Stop() // and again after the concurrent burst
}

// TestStopDuringDelivery shuts down while the pacer is actively fanning
// deliveries out to a subscriber. The subscriber channel must get closed
// exactly once, and the drain must terminate.
func TestStopDuringDelivery(t *testing.T) {
	r := startFast(t, 3)
	sub := r.Subscribe()
	for i := 0; i < 20; i++ {
		r.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("v%d", i)))
	}
	// Wait until deliveries are in flight, then stop from two goroutines
	// while a third keeps submitting.
	waitFor(t, func() bool { return len(r.Deliveries(0)) > 0 })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Bcast(0, "late")
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Stop()
		}()
	}
	wg.Wait()
	<-done
	// The subscriber channel must now drain to a close, not hang.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscriber channel never closed after Stop")
		}
	}
}

// TestNetStatsRaceUnderDriver is the regression test for the Stats() data
// race: application goroutines hammer NetStats (lock-free atomic reads)
// while the pacer goroutine advances the simulator and the network mutates
// its counters. Before the counters moved to atomics this was a read/write
// race on plain ints that -race reports immediately.
func TestNetStatsRaceUnderDriver(t *testing.T) {
	r := startFast(t, 3)
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.NetStats()
				if s.Sent < last {
					t.Errorf("net.sent went backwards: %d -> %d", last, s.Sent)
					return
				}
				last = s.Sent
			}
		}()
	}
	// Keep the protocol busy so the counters are actually being written.
	for i := 0; i < 10; i++ {
		r.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("r%d", i)))
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if s := r.NetStats(); s.Sent == 0 || s.Delivered == 0 {
		t.Fatalf("no traffic observed: %+v", s)
	}
}
