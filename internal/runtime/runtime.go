// Package runtime drives the simulated TO stack in real time, so that
// interactive programs (the examples, the tosim command) can use the
// service the way an application would: goroutines submit values and
// consume ordered deliveries from channels, while a pacer goroutine
// advances the discrete-event simulator in step with the wall clock.
//
// Keeping the protocol itself on the deterministic simulator — rather than
// reimplementing it on raw goroutines — preserves the property that every
// run is also a checkable execution: the runtime exposes the same timed
// event log the experiment harness consumes.
package runtime

import (
	"sync"
	"time"

	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Delivery is one ordered delivery surfaced to a subscriber.
type Delivery struct {
	Node  types.ProcID // where it was delivered
	From  types.ProcID // origin of the value
	Value types.Value
	At    sim.Time // virtual time of delivery
}

// Runtime runs a TO cluster in real time.
type Runtime struct {
	mu      sync.Mutex
	cluster *stack.Cluster
	seen    map[types.ProcID]int
	subs    []chan Delivery

	speed    float64 // virtual time advanced per wall second, 1.0 = real time
	tick     time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	stopWG   sync.WaitGroup
}

// Options configures Start.
type Options struct {
	Cluster stack.Options
	// Speed is the virtual-per-wall time ratio (default 1.0). 1000 runs a
	// millisecond-scale protocol visibly fast.
	Speed float64
	// Tick is the pacer granularity (default 5ms wall time).
	Tick time.Duration
}

// Start builds the cluster and launches the pacer goroutine. Call Stop to
// shut it down.
func Start(opts Options) *Runtime {
	if opts.Speed <= 0 {
		opts.Speed = 1
	}
	if opts.Tick <= 0 {
		opts.Tick = 5 * time.Millisecond
	}
	r := &Runtime{
		cluster: stack.NewCluster(opts.Cluster),
		seen:    make(map[types.ProcID]int),
		speed:   opts.Speed,
		tick:    opts.Tick,
		stop:    make(chan struct{}),
	}
	r.stopWG.Add(1)
	go r.pace()
	return r
}

func (r *Runtime) pace() {
	defer r.stopWG.Done()
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.mu.Lock()
			step := time.Duration(float64(r.tick) * r.speed)
			if err := r.cluster.Sim.RunFor(step); err != nil {
				r.mu.Unlock()
				return
			}
			r.fanOutLocked()
			r.mu.Unlock()
		}
	}
}

// fanOutLocked pushes new deliveries to subscribers; r.mu held.
func (r *Runtime) fanOutLocked() {
	for _, p := range r.cluster.Procs.Members() {
		ds := r.cluster.Deliveries(p)
		for ; r.seen[p] < len(ds); r.seen[p]++ {
			d := ds[r.seen[p]]
			out := Delivery{Node: p, From: d.From, Value: d.Value, At: d.Time}
			for _, ch := range r.subs {
				select {
				case ch <- out:
				default: // slow subscriber: drop rather than stall the pacer
				}
			}
		}
	}
}

// Stop halts the pacer and closes subscriber channels. It is idempotent
// and safe to call concurrently: every call blocks until the shutdown is
// complete.
func (r *Runtime) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.stopWG.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ch := range r.subs {
		close(ch)
	}
	r.subs = nil
}

// Bcast submits a value at processor p.
func (r *Runtime) Bcast(p types.ProcID, a types.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.Bcast(p, a)
}

// Subscribe returns a channel carrying every delivery at every node from
// now on. The channel is buffered; a subscriber that falls far behind
// misses deliveries rather than stalling the runtime.
func (r *Runtime) Subscribe() <-chan Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := make(chan Delivery, 1024)
	r.subs = append(r.subs, ch)
	return ch
}

// Partition splits the universe into components (see failures.Oracle).
func (r *Runtime) Partition(components ...types.ProcSet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.Oracle.Partition(r.cluster.Procs, components...)
}

// Heal restores every processor and channel to good.
func (r *Runtime) Heal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.Oracle.Heal(r.cluster.Procs)
}

// Crash stops processor p (it preserves state and can be Healed later).
func (r *Runtime) Crash(p types.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.Oracle.SetProc(p, failures.Bad)
	for _, q := range r.cluster.Procs.Members() {
		if q != p {
			r.cluster.Oracle.SetChannel(p, q, failures.Bad)
			r.cluster.Oracle.SetChannel(q, p, failures.Bad)
		}
	}
}

// Views returns each processor's current view id string, for display.
func (r *Runtime) Views() map[types.ProcID]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[types.ProcID]string, r.cluster.Procs.Size())
	for _, p := range r.cluster.Procs.Members() {
		v, ok := r.cluster.Node(p).VS().View()
		if !ok {
			out[p] = "⊥"
		} else {
			out[p] = v.String()
		}
	}
	return out
}

// Deliveries returns a snapshot of everything delivered at p.
func (r *Runtime) Deliveries(p types.ProcID) []stack.Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds := r.cluster.Deliveries(p)
	return append([]stack.Delivery(nil), ds...)
}

// Log returns a snapshot copy of the timed event log.
func (r *Runtime) Log() *props.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &props.Log{Initial: r.cluster.Log.Initial}
	out.Events = append(out.Events, r.cluster.Log.Events...)
	return out
}

// NetStats returns a snapshot of the network counters. Unlike the other
// accessors it deliberately skips r.mu: the counters are atomics (see
// internal/net), so reading them while the pacer advances the simulator is
// exactly the concurrent pattern they exist to make safe — the regression
// test runs this under -race against a live pacer.
func (r *Runtime) NetStats() net.Stats {
	return r.cluster.Net.Snapshot()
}

// Now returns the current virtual time.
func (r *Runtime) Now() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cluster.Sim.Now()
}

// Procs returns the processor universe.
func (r *Runtime) Procs() types.ProcSet { return r.cluster.Procs }
