package primary

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

func TestStablePrimaryDelivery(t *testing.T) {
	c := NewCluster(Options{Seed: 1, N: 3, Delta: time.Millisecond})
	c.Sim.After(10*time.Millisecond, func() {
		c.Bcast(0, "a")
		c.Bcast(2, "b")
	})
	if err := c.Sim.Run(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs.Members() {
		ds := c.Deliveries(p)
		if len(ds) != 2 {
			t.Fatalf("%v delivered %d of 2", p, len(ds))
		}
	}
	// All nodes agree on the order.
	ref := c.Deliveries(0)
	for _, p := range c.Procs.Members() {
		for i, d := range c.Deliveries(p) {
			if d.Value != ref[i].Value {
				t.Fatalf("%v diverged at %d", p, i)
			}
		}
	}
	if err := c.CheckNoDivergence(); err != nil {
		t.Fatal(err)
	}
}

func TestMinoritySubmissionsLost(t *testing.T) {
	c := NewCluster(Options{Seed: 3, N: 5, Delta: time.Millisecond})
	c.Sim.After(20*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3, 4))
	})
	c.Sim.After(200*time.Millisecond, func() {
		c.Bcast(0, "majority-side")
		c.Bcast(3, "minority-side")
	})
	c.Sim.After(600*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckNoDivergence(); err != nil {
		t.Fatal(err)
	}
	// The minority value is gone everywhere: no reconciliation exists.
	for _, p := range c.Procs.Members() {
		for _, d := range c.Deliveries(p) {
			if d.Value == "minority-side" {
				t.Fatalf("minority submission delivered at %v — primary model should lose it", p)
			}
		}
	}
	// The majority value reached the majority side at least.
	found := false
	for _, d := range c.Deliveries(0) {
		if d.Value == "majority-side" {
			found = true
		}
	}
	if !found {
		t.Fatal("majority-side value not delivered on the quorum side")
	}
}

func TestNoDivergenceUnderChurn(t *testing.T) {
	c := NewCluster(Options{Seed: 5, N: 4, Delta: time.Millisecond})
	for i := 0; i < 12; i++ {
		i := i
		c.Sim.After(time.Duration(10+25*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%4), types.Value(fmt.Sprintf("c%d", i)))
		})
	}
	c.Sim.After(100*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3))
	})
	c.Sim.After(250*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	c.Sim.After(380*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(1, 2, 3), types.NewProcSet(0))
	})
	c.Sim.After(550*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckNoDivergence(); err != nil {
		t.Fatal(err)
	}
	if len(c.Deliveries(1)) == 0 {
		t.Fatal("nothing delivered under churn")
	}
}

// TestDivergenceCheckerDetectsForgedOrder: swapping two common deliveries
// at one node must be flagged (the checker is not vacuous).
func TestDivergenceCheckerDetectsForgedOrder(t *testing.T) {
	c := NewCluster(Options{Seed: 7, N: 3, Delta: time.Millisecond})
	c.Sim.After(10*time.Millisecond, func() {
		c.Bcast(0, "x")
		c.Bcast(1, "y")
	})
	if err := c.Sim.Run(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	ds := c.nodes[2].deliveries
	if len(ds) < 2 {
		t.Fatalf("need 2 deliveries, have %d", len(ds))
	}
	ds[0], ds[1] = ds[1], ds[0]
	if err := c.CheckNoDivergence(); err == nil {
		t.Fatal("forged divergence not detected")
	}
}
