// Package primary implements the comparison point for the paper's central
// design choice: a *primary-partition* ordered broadcast in the style of
// the original Isis model, built over the same VS service. Messages are
// delivered (on their safe indication, so the order is stable) only while
// the local view is primary; there is no state exchange and no
// reconciliation when views change.
//
// The contrast with VStoTO (experiment E12) is the paper's motivation for
// partitionable semantics made measurable: under partitions the primary
// model loses work — values submitted in minority views are never
// delivered anywhere, and processors that were away from the primary miss
// the messages delivered while they were gone — while VStoTO's recovery
// protocol delivers every submitted value to every processor once the
// network stabilizes.
package primary

import (
	"time"

	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/vsimpl"
)

// Delivery is one ordered delivery to the client at a node.
type Delivery struct {
	From  types.ProcID
	Value types.Value
	Time  sim.Time
}

// Options configures NewCluster.
type Options struct {
	Seed   int64
	N      int
	Delta  time.Duration
	Quorum types.QuorumSystem // default: majorities
}

// Cluster is a primary-partition ordered-broadcast instance.
type Cluster struct {
	Sim    *sim.Sim
	Oracle *failures.Oracle
	Procs  types.ProcSet
	Cfg    vsimpl.Config
	nodes  map[types.ProcID]*node
	qs     types.QuorumSystem
}

type node struct {
	id         types.ProcID
	vs         *vsimpl.Node
	qs         types.QuorumSystem
	view       types.View
	hasView    bool
	deliveries []Delivery
}

// NewCluster builds and starts a primary-model cluster.
func NewCluster(opts Options) *Cluster {
	if opts.Delta <= 0 {
		opts.Delta = time.Millisecond
	}
	s := sim.New(opts.Seed)
	oracle := failures.NewOracle(s.Now)
	nw := net.New(s, oracle, net.Config{Delta: opts.Delta, UglyLossProb: 0.5, UglyMaxDelayFactor: 10})
	procs := types.RangeProcSet(opts.N)
	qs := opts.Quorum
	if qs == nil {
		qs = types.Majorities{Universe: procs}
	}
	cfg := vsimpl.DefaultConfig(opts.Delta, opts.N)
	c := &Cluster{
		Sim: s, Oracle: oracle, Procs: procs, Cfg: cfg,
		nodes: make(map[types.ProcID]*node, opts.N),
		qs:    qs,
	}
	for _, p := range procs.Members() {
		nd := &node{id: p, qs: qs, view: types.InitialView(procs), hasView: true}
		nd.vs = vsimpl.NewNode(p, procs, procs, s, nw, oracle, cfg, vsimpl.Handlers{
			Newview: func(v types.View) {
				nd.view = v
				nd.hasView = true
			},
			// Delivery happens on the safe indication: the per-view order
			// is then stable at every member, so primary-view deliveries
			// never diverge.
			Safe: func(from types.ProcID, payload any) {
				if !nd.primary() {
					return
				}
				nd.deliveries = append(nd.deliveries, Delivery{
					From: from, Value: payload.(types.Value), Time: s.Now(),
				})
			},
		})
		c.nodes[p] = nd
	}
	for _, p := range procs.Members() {
		c.nodes[p].vs.Start()
	}
	return c
}

func (nd *node) primary() bool {
	return nd.hasView && nd.qs.IsQuorumContained(nd.view.Set)
}

// Bcast submits a value at p. In the primary model the value simply rides
// VS; if p's view is (or becomes) non-primary before the value is safe,
// the value is lost — that is the model's defining weakness.
func (c *Cluster) Bcast(p types.ProcID, a types.Value) {
	c.nodes[p].vs.Gpsnd(a)
}

// Deliveries returns everything delivered at p, in order.
func (c *Cluster) Deliveries(p types.ProcID) []Delivery { return c.nodes[p].deliveries }

// CheckNoDivergence verifies the model's safety property: the delivery
// sequences of any two processors never contradict each other — for each
// pair, one of (a) one is a prefix of the other, or (b) they agree on the
// overlap of the views both participated in. Because deliveries happen
// only in primary views (any two of which intersect) on safe messages, the
// sequences of two processors that were in the same primary views agree;
// a processor that missed a primary view simply misses a gap.
//
// For the E12 comparison it is enough to check pairwise consistency of the
// common subsequence: the shared values appear in the same relative order.
func (c *Cluster) CheckNoDivergence() error {
	type key struct {
		From  types.ProcID
		Value types.Value
	}
	for _, p := range c.Procs.Members() {
		for _, q := range c.Procs.Members() {
			if p >= q {
				continue
			}
			pos := make(map[key]int)
			for i, d := range c.nodes[p].deliveries {
				pos[key{d.From, d.Value}] = i
			}
			last := -1
			for _, d := range c.nodes[q].deliveries {
				if i, ok := pos[key{d.From, d.Value}]; ok {
					if i < last {
						return errDivergence(p, q, d.Value)
					}
					last = i
				}
			}
		}
	}
	return nil
}

type divergenceError struct {
	p, q types.ProcID
	v    types.Value
}

func errDivergence(p, q types.ProcID, v types.Value) error {
	return divergenceError{p, q, v}
}

func (e divergenceError) Error() string {
	return "primary: " + e.p.String() + " and " + e.q.String() +
		" disagree on the relative order around " + string(e.v)
}
