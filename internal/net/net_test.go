package net

import (
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/types"
)

type fixture struct {
	sim    *sim.Sim
	oracle *failures.Oracle
	net    *Network
	got    map[types.ProcID][]Packet
}

func newFixture(cfg Config, n int) *fixture {
	s := sim.New(1)
	o := failures.NewOracle(s.Now)
	f := &fixture{sim: s, oracle: o, net: New(s, o, cfg), got: make(map[types.ProcID][]Packet)}
	for i := 0; i < n; i++ {
		p := types.ProcID(i)
		f.net.Register(p, func(pkt Packet) { f.got[p] = append(f.got[p], pkt) })
	}
	return f
}

func TestGoodChannelDeliversAtExactlyDelta(t *testing.T) {
	f := newFixture(Config{Delta: 2 * time.Millisecond}, 2)
	var at sim.Time
	f.net.Register(1, func(Packet) { at = f.sim.Now() })
	f.net.Send(0, 1, "hello")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(2*time.Millisecond) {
		t.Fatalf("delivered at %v, want exactly 2ms (worst case, no jitter)", at)
	}
}

func TestJitterBoundedByDelta(t *testing.T) {
	f := newFixture(Config{Delta: 2 * time.Millisecond, Jitter: true}, 2)
	var times []sim.Time
	f.net.Register(1, func(Packet) { times = append(times, f.sim.Now()) })
	for i := 0; i < 200; i++ {
		f.net.Send(0, 1, i)
	}
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(times) != 200 {
		t.Fatalf("delivered %d, want 200", len(times))
	}
	for _, at := range times {
		if at <= 0 || at > sim.Time(2*time.Millisecond) {
			t.Fatalf("jittered delivery at %v outside (0, 2ms]", at)
		}
	}
}

func TestBadChannelDropsOneDirection(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 2)
	f.oracle.SetChannel(0, 1, failures.Bad)
	f.net.Send(0, 1, "dropped")
	f.net.Send(1, 0, "arrives")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 0 {
		t.Error("bad channel delivered")
	}
	if len(f.got[0]) != 1 {
		t.Error("reverse direction affected")
	}
	if st := f.net.Stats(); st.DroppedChannel != 1 || st.Delivered != 1 || st.Sent != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBadProcessorNeitherSendsNorReceives(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 3)
	f.oracle.SetProc(1, failures.Bad)
	f.net.Send(0, 1, "to-dead")
	f.net.Send(1, 2, "from-dead")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 0 || len(f.got[2]) != 0 {
		t.Error("bad processor participated")
	}
	if st := f.net.Stats(); st.DroppedProc != 2 {
		t.Errorf("DroppedProc = %d, want 2", st.DroppedProc)
	}
}

func TestProcessorDyingInFlightDropsDelivery(t *testing.T) {
	f := newFixture(Config{Delta: 2 * time.Millisecond}, 2)
	f.net.Send(0, 1, "in-flight")
	f.sim.After(time.Millisecond, func() { f.oracle.SetProc(1, failures.Bad) })
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 0 {
		t.Error("packet delivered to a processor that died in flight")
	}
	// The drop happens on the deliver-time path (the receiver was good at
	// send time), so it must be accounted as a processor drop, not counted
	// as delivered.
	if st := f.net.Stats(); st.DroppedProc != 1 || st.Delivered != 0 || st.Sent != 1 {
		t.Errorf("stats = %+v, want the in-flight drop counted as DroppedProc", st)
	}
}

func TestProcessorRevivingBeforeDeliveryReceives(t *testing.T) {
	// Receiver status is sampled again at the delivery instant: a receiver
	// that dies and recovers while the packet is in flight still gets it
	// (its state survived the crash, per the paper's crash model).
	f := newFixture(Config{Delta: 2 * time.Millisecond}, 2)
	f.net.Send(0, 1, "in-flight")
	f.sim.After(500*time.Microsecond, func() { f.oracle.SetProc(1, failures.Bad) })
	f.sim.After(time.Millisecond, func() { f.oracle.SetProc(1, failures.Good) })
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 1 {
		t.Fatal("packet lost although the receiver recovered before the delivery instant")
	}
	if st := f.net.Stats(); st.Delivered != 1 || st.DroppedProc != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChannelTurningBadInFlightStillDelivers(t *testing.T) {
	// Channel status is sampled at send time only (the paper: a packet sent
	// while the channel is good arrives within δ). Going bad mid-flight
	// must not retroactively drop it — only the receiver dying can.
	f := newFixture(Config{Delta: 2 * time.Millisecond}, 2)
	f.net.Send(0, 1, "committed")
	f.sim.After(time.Millisecond, func() { f.oracle.SetChannel(0, 1, failures.Bad) })
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 1 {
		t.Fatal("good-channel send dropped by a mid-flight channel failure")
	}
	if st := f.net.Stats(); st.Delivered != 1 || st.DroppedChannel != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSnapshotSubWindowsActivity(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 2)
	f.net.Send(0, 1, "first")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	base := f.net.Snapshot()
	if base.Delivered != 1 {
		t.Fatalf("baseline = %+v", base)
	}
	f.oracle.SetChannel(0, 1, failures.Bad)
	f.net.Send(0, 1, "walled")
	f.oracle.SetChannel(0, 1, failures.Good)
	f.net.Send(0, 1, "second")
	f.net.Send(0, 1, "third")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	w := f.net.Snapshot().Sub(base)
	if w.Sent != 3 || w.Delivered != 2 || w.DroppedChannel != 1 {
		t.Errorf("window = %+v, want Sent 3 Delivered 2 DroppedChannel 1", w)
	}
}

func TestUglyChannelLossAndDelayBounds(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond, UglyLossProb: 0.5, UglyMaxDelayFactor: 10}, 2)
	f.oracle.SetChannel(0, 1, failures.Ugly)
	var times []sim.Time
	f.net.Register(1, func(Packet) { times = append(times, f.sim.Now()) })
	const total = 500
	for i := 0; i < total; i++ {
		f.net.Send(0, 1, i)
	}
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 || len(times) == total {
		t.Fatalf("ugly channel delivered %d of %d; want some lost, some delivered", len(times), total)
	}
	for _, at := range times {
		if at > sim.Time(10*time.Millisecond) {
			t.Fatalf("ugly delay %v exceeds 10δ", at)
		}
	}
	lost := f.net.Stats().DroppedUgly
	if lost+len(times) != total {
		t.Errorf("lost %d + delivered %d != %d", lost, len(times), total)
	}
	// Loss rate near the configured probability (loose bounds).
	if lost < total/4 || lost > 3*total/4 {
		t.Errorf("loss %d/%d far from 0.5", lost, total)
	}
}

func TestSelfSendLoopsBack(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 1)
	// Even with the channel to self conceptually absent, self-sends work.
	f.net.Send(0, 0, "self")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[0]) != 1 || f.got[0][0].Payload != "self" {
		t.Fatalf("self delivery = %v", f.got[0])
	}
	if f.sim.Now() != 0 {
		t.Errorf("self delivery advanced time to %v", f.sim.Now())
	}
}

func TestBroadcastExcludesSender(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 4)
	f.net.Broadcast(0, types.RangeProcSet(4), "fanout")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[0]) != 0 {
		t.Error("broadcast delivered to sender")
	}
	for _, p := range []types.ProcID{1, 2, 3} {
		if len(f.got[p]) != 1 {
			t.Errorf("receiver %v got %d packets", p, len(f.got[p]))
		}
	}
}

func TestUnregisteredDestinationDropped(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 1)
	f.net.Send(0, 9, "nobody")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if f.net.Stats().Delivered != 0 {
		t.Error("delivery counted for unregistered destination")
	}
}

func TestNonPositiveDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero delta accepted")
		}
	}()
	s := sim.New(1)
	New(s, failures.NewOracle(s.Now), Config{})
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Delta != time.Millisecond || cfg.UglyLossProb <= 0 || cfg.UglyMaxDelayFactor <= 0 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestStatusSampledAtSendTime(t *testing.T) {
	// A packet sent while the channel is good arrives even if the channel
	// goes bad before the delivery instant — the paper's semantics.
	f := newFixture(Config{Delta: 2 * time.Millisecond}, 2)
	f.net.Send(0, 1, "sent-while-good")
	f.sim.After(time.Millisecond, func() { f.oracle.SetChannel(0, 1, failures.Bad) })
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(f.got[1]) != 1 {
		t.Fatal("packet sent on a good channel was lost when the channel later went bad")
	}
}

// TestStatsConcurrentWithSim is the race regression for Network.Stats():
// the simulation goroutine mutates the counters while another goroutine
// reads snapshots — exactly what happens when application code queries
// stats while the real-time runtime driver paces the simulator. Before the
// counters became atomics this was a data race (go test -race flagged it).
func TestStatsConcurrentWithSim(t *testing.T) {
	f := newFixture(Config{Delta: time.Millisecond}, 3)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = f.net.Stats()
				_ = f.net.Snapshot()
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		f.net.Send(types.ProcID(i%3), types.ProcID((i+1)%3), i)
		if err := f.sim.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	st := f.net.Stats()
	if st.Sent != 2000 || st.Delivered != 2000 {
		t.Fatalf("stats = %+v, want 2000 sent and delivered", st)
	}
}

// TestObsCounters checks the obs threading: the layer's named counters and
// the delivery-delay histogram see the same traffic as Stats().
func TestObsCounters(t *testing.T) {
	reg := obs.New()
	f := newFixture(Config{Delta: time.Millisecond, Obs: reg}, 3)
	f.oracle.SetChannel(0, 2, failures.Bad)
	f.net.Send(0, 1, "a")
	f.net.Send(0, 2, "dropped")
	if err := f.sim.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["net.sent"] != 2 || snap.Counters["net.delivered"] != 1 ||
		snap.Counters["net.dropped_channel"] != 1 {
		t.Fatalf("obs counters = %v", snap.Counters)
	}
	if h := snap.Histograms["net.delay"]; h.Count != 1 || h.MaxNS != int64(time.Millisecond) {
		t.Fatalf("net.delay = %+v, want one 1ms sample", h)
	}
}
