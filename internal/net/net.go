// Package net simulates the point-to-point packet network underneath the
// VS implementation. Delivery is driven by the failure statuses of
// Figure 4, realizing the physical-system assumptions of Section 8:
//
//   - while a directed channel is good, every packet sent on it arrives
//     within δ;
//   - while it is bad, no packet is delivered;
//   - while it is ugly, packets may be lost or delayed arbitrarily (here:
//     lost with a configurable probability, otherwise delayed up to a
//     configurable multiple of δ).
//
// Packets to or from a bad processor are also dropped: a bad processor is
// stopped, so it neither sends nor receives. Statuses are sampled at send
// time, matching the paper's "packet sent from p to q while the channel is
// good arrives within δ".
package net

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

// Packet is one point-to-point message. It is the shared transport.Packet:
// the simulated network and the real-socket transport deliver the same
// shape, so the protocol layers above are transport-agnostic.
type Packet = transport.Packet

// Network satisfies the shared send/deliver contract the protocol layers
// program against.
var _ transport.Transport = (*Network)(nil)

// Config holds the network's timing parameters.
type Config struct {
	// Delta is the paper's δ: the delivery bound on good channels.
	Delta time.Duration
	// Jitter, when true, draws each good-channel delay uniformly from
	// (0, δ]; when false every good-channel delivery takes exactly δ (the
	// worst case, which makes measured times directly comparable to the
	// analytic bounds).
	Jitter bool
	// UglyLossProb is the probability an ugly channel drops a packet.
	UglyLossProb float64
	// UglyMaxDelayFactor bounds ugly-channel delays to this multiple of δ.
	UglyMaxDelayFactor float64
	// Transcode, when non-nil, replaces every payload at send time —
	// typically a serialize/deserialize round trip (see internal/codec) so
	// that no in-memory pointer survives a network hop. A transcode error
	// panics: it means a payload type is missing from the wire format,
	// which is a programming error.
	Transcode func(any) (any, error)
	// Obs, when non-nil, receives the layer's metrics (net.* counters and
	// the net.delay delivery-latency histogram). Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
	// PayloadBytes, when non-nil alongside Obs, sizes each sent payload for
	// the net.bytes counter (the stack wires the wire-codec's encoded size
	// in wire mode). Left nil, byte accounting is skipped.
	PayloadBytes func(any) int
	// Coalesce makes packets sent at the same instant on the same good
	// channel share one jitter draw, mirroring the real transport's frame
	// batching: frames queued together leave in one syscall and arrive
	// together, rather than each drawing an independent delay. Send order
	// is preserved within the coalesced group. Without Jitter the option
	// changes nothing (every good-channel delay is exactly δ already).
	Coalesce bool
}

// DefaultConfig returns δ = 1ms worst-case delivery with moderately lossy
// ugly channels.
func DefaultConfig() Config {
	return Config{Delta: time.Millisecond, UglyLossProb: 0.5, UglyMaxDelayFactor: 10}
}

// Stats counts network activity for the experiment reports and for the
// chaos harness's non-vacuity assertions (a fault schedule that blackholes
// everything "passes" every safety check; Delivered > 0 proves traffic
// actually flowed).
type Stats struct {
	Sent                                     int
	Delivered                                int
	DroppedChannel, DroppedProc, DroppedUgly int
}

// Sub returns the activity between an earlier snapshot and this one:
// s - prev, counter by counter. Use it to assert traffic in a window, e.g.
// between a final heal and the end of a run.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Sent:           s.Sent - prev.Sent,
		Delivered:      s.Delivered - prev.Delivered,
		DroppedChannel: s.DroppedChannel - prev.DroppedChannel,
		DroppedProc:    s.DroppedProc - prev.DroppedProc,
		DroppedUgly:    s.DroppedUgly - prev.DroppedUgly,
	}
}

// counters is the internal, atomically updated form of Stats. The
// simulation mutates these from its single driver goroutine, but Stats()
// is part of the public read surface that the real-time runtime driver
// exposes to application goroutines — a plain struct raced there (caught
// by go test -race; see TestStatsConcurrentWithSim).
type counters struct {
	sent, delivered                          atomic.Int64
	droppedChannel, droppedProc, droppedUgly atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Sent:           int(c.sent.Load()),
		Delivered:      int(c.delivered.Load()),
		DroppedChannel: int(c.droppedChannel.Load()),
		DroppedProc:    int(c.droppedProc.Load()),
		DroppedUgly:    int(c.droppedUgly.Load()),
	}
}

// metrics holds the obs instrument handles, bound once at construction;
// with observability disabled every handle is nil and each update is a
// free no-op.
type metrics struct {
	sent, delivered *obs.Counter
	bytes           *obs.Counter
	dropChannel     *obs.Counter
	dropProc        *obs.Counter
	dropUgly        *obs.Counter
	delay           *obs.Histogram
}

// Network is the simulated network. Register a handler per processor, then
// Send freely; handlers run as simulator events.
type Network struct {
	sim      *sim.Sim
	oracle   *failures.Oracle
	cfg      Config
	handlers map[types.ProcID]func(Packet)
	ctr      counters
	m        metrics
	// coalesced caches the last jitter draw per directed channel so that
	// same-instant sends share it (Config.Coalesce). Touched only from the
	// simulator goroutine, like handlers.
	coalesced map[chanKey]coalesceEntry
}

// chanKey identifies a directed channel for delay coalescing.
type chanKey struct{ from, to types.ProcID }

type coalesceEntry struct {
	at    sim.Time
	delay time.Duration
}

// New creates a network over the given simulator and failure oracle.
func New(s *sim.Sim, oracle *failures.Oracle, cfg Config) *Network {
	if cfg.Delta <= 0 {
		panic(fmt.Sprintf("net: non-positive delta %v", cfg.Delta))
	}
	return &Network{
		sim:      s,
		oracle:   oracle,
		cfg:      cfg,
		handlers: make(map[types.ProcID]func(Packet)),
		m: metrics{
			sent:        cfg.Obs.Counter("net.sent"),
			delivered:   cfg.Obs.Counter("net.delivered"),
			bytes:       cfg.Obs.Counter("net.bytes"),
			dropChannel: cfg.Obs.Counter("net.dropped_channel"),
			dropProc:    cfg.Obs.Counter("net.dropped_proc"),
			dropUgly:    cfg.Obs.Counter("net.dropped_ugly"),
			delay:       cfg.Obs.Histogram("net.delay"),
		},
	}
}

// Register installs the delivery handler for processor p. Packets to an
// unregistered processor are dropped.
func (n *Network) Register(p types.ProcID, h func(Packet)) { n.handlers[p] = h }

// Stats returns a consistent snapshot of the activity counters. Safe to
// call from any goroutine while the simulation runs (the counters are
// atomics): the real-time runtime driver exposes it to application code
// concurrently with the pacer goroutine.
func (n *Network) Stats() Stats { return n.ctr.snapshot() }

// Snapshot returns a copy of the activity counters, for diffing a window
// of activity with Stats.Sub. (Alias of Stats; named for call sites that
// capture a baseline to subtract later.)
func (n *Network) Snapshot() Stats { return n.ctr.snapshot() }

// Delta returns the configured δ.
func (n *Network) Delta() time.Duration { return n.cfg.Delta }

// Send transmits a packet from→to, applying the failure semantics. Sending
// to oneself delivers after a zero-delay event (local loopback).
func (n *Network) Send(from, to types.ProcID, payload any) {
	n.ctr.sent.Add(1)
	n.m.sent.Inc()
	if n.cfg.PayloadBytes != nil && n.m.bytes != nil {
		n.m.bytes.Add(int64(n.cfg.PayloadBytes(payload)))
	}
	if n.oracle.Proc(from).Down() || n.oracle.Proc(to).Down() {
		n.ctr.droppedProc.Add(1)
		n.m.dropProc.Inc()
		return
	}
	if n.cfg.Transcode != nil {
		decoded, err := n.cfg.Transcode(payload)
		if err != nil {
			panic(fmt.Sprintf("net: transcode %T: %v", payload, err))
		}
		payload = decoded
	}
	pkt := Packet{From: from, To: to, Payload: payload}
	if from == to {
		n.m.delay.Record(0)
		n.sim.Defer(func() { n.deliver(pkt) })
		return
	}
	switch n.oracle.Channel(from, to) {
	case failures.Bad:
		n.ctr.droppedChannel.Add(1)
		n.m.dropChannel.Inc()
	case failures.Good:
		d := n.cfg.Delta
		if n.cfg.Jitter {
			d = time.Duration(1 + n.sim.Rand().Int63n(int64(n.cfg.Delta)))
			if n.cfg.Coalesce {
				if n.coalesced == nil {
					n.coalesced = make(map[chanKey]coalesceEntry)
				}
				key := chanKey{from, to}
				if e, ok := n.coalesced[key]; ok && e.at == n.sim.Now() {
					// Same instant, same channel: ride the batch already
					// in flight (sim.After is FIFO at equal times, so
					// send order within the group is preserved).
					d = e.delay
				} else {
					n.coalesced[key] = coalesceEntry{at: n.sim.Now(), delay: d}
				}
			}
		}
		n.m.delay.Record(d)
		n.sim.After(d, func() { n.deliver(pkt) })
	case failures.Ugly:
		if n.sim.Rand().Float64() < n.cfg.UglyLossProb {
			n.ctr.droppedUgly.Add(1)
			n.m.dropUgly.Inc()
			return
		}
		max := float64(n.cfg.Delta) * n.cfg.UglyMaxDelayFactor
		d := time.Duration(1 + n.sim.Rand().Int63n(int64(max)))
		n.m.delay.Record(d)
		n.sim.After(d, func() { n.deliver(pkt) })
	}
}

// Broadcast sends the payload from p to every processor in dst except p
// itself.
func (n *Network) Broadcast(from types.ProcID, dst types.ProcSet, payload any) {
	for _, to := range dst.Members() {
		if to != from {
			n.Send(from, to, payload)
		}
	}
}

func (n *Network) deliver(pkt Packet) {
	// A processor that turned bad (or amnesiac) in flight is stopped: drop.
	if n.oracle.Proc(pkt.To).Down() {
		n.ctr.droppedProc.Add(1)
		n.m.dropProc.Inc()
		return
	}
	h, ok := n.handlers[pkt.To]
	if !ok {
		return
	}
	n.ctr.delivered.Add(1)
	n.m.delivered.Inc()
	h(pkt)
}
