package baseline

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// latencyOf measures mean bcast→last-delivery latency for a burst of k
// values on a running cluster with per-value submit callback.
func runBurst(t *testing.T, submit func(i int), deliveries func(p types.ProcID) int,
	s *sim.Sim, k int, procs types.ProcSet) time.Duration {
	t.Helper()
	start := s.Now()
	for i := 0; i < k; i++ {
		submit(i)
	}
	deadline := s.Now().Add(30 * time.Second)
	for s.Now() < deadline {
		if err := s.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, p := range procs.Members() {
			if deliveries(p) < k {
				done = false
				break
			}
		}
		if done {
			return s.Now().Sub(start)
		}
	}
	t.Fatalf("burst not delivered everywhere within deadline")
	return 0
}

// TestBaselineDeliversTotalOrder: the persistence discipline must not
// break correctness — all replicas deliver the same sequence.
func TestBaselineDeliversTotalOrder(t *testing.T) {
	c := NewCluster(Options{Seed: 31, N: 3, Delta: time.Millisecond, StorageLatency: 2 * time.Millisecond})
	c.Sim.After(10*time.Millisecond, func() {
		for i := 0; i < 6; i++ {
			c.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("b%d", i)))
		}
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ref := c.Deliveries(0)
	if len(ref) != 6 {
		t.Fatalf("node 0 delivered %d values, want 6", len(ref))
	}
	for _, p := range c.Procs.Members()[1:] {
		ds := c.Deliveries(p)
		if len(ds) != len(ref) {
			t.Fatalf("%v delivered %d, want %d", p, len(ds), len(ref))
		}
		for i := range ds {
			if ds[i].Value != ref[i].Value {
				t.Fatalf("%v diverges at %d", p, i)
			}
		}
	}
	if got := c.StorageWrites(0); got == 0 {
		t.Error("baseline completed no stable writes")
	}
}

// TestStorageLatencyShape is the unit-scale version of experiment E5: the
// baseline's delivery completion time grows with storage latency, while
// the plain stack's does not depend on it at all (it has no storage), and
// for large storage latency the baseline is strictly slower.
func TestStorageLatencyShape(t *testing.T) {
	const n, k = 3, 5
	delta := time.Millisecond

	stackCluster := stack.NewCluster(stack.Options{Seed: 41, N: n, Delta: delta})
	stackCluster.Sim.RunFor(20 * time.Millisecond)
	stackTime := runBurst(t,
		func(i int) { stackCluster.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i))) },
		func(p types.ProcID) int { return len(stackCluster.Deliveries(p)) },
		stackCluster.Sim, k, stackCluster.Procs)

	var prev time.Duration
	for _, storeLat := range []time.Duration{0, 5 * delta, 25 * delta} {
		c := NewCluster(Options{Seed: 41, N: n, Delta: delta, StorageLatency: storeLat})
		c.Sim.RunFor(20 * time.Millisecond)
		bt := runBurst(t,
			func(i int) { c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i))) },
			func(p types.ProcID) int { return len(c.Deliveries(p)) },
			c.Sim, k, c.Procs)
		if bt < prev {
			t.Errorf("baseline time %v at storage latency %v below %v at smaller latency (not monotone)",
				bt, storeLat, prev)
		}
		prev = bt
		if storeLat >= 25*delta && bt <= stackTime {
			t.Errorf("baseline with storage latency %v (%v) not slower than stack (%v)", storeLat, bt, stackTime)
		}
	}
}
