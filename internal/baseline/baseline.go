// Package baseline is the comparison point discussed in the paper's
// introduction: a Keidar–Dolev-style total order protocol that writes to
// stable storage on the critical path. It runs the same VStoTO algorithm
// over the same VS service as package stack, but imposes the persistence
// discipline of [35, 36]: a client value is written to the local stable log
// before it is sent into the group, and every confirmed position is written
// before it is released to the client.
//
// The point of the comparison (experiment E5) is the latency shape: the
// VStoTO stack's steady-state delivery latency is independent of storage
// latency, while the baseline's grows with it — the trade the introduction
// describes ("their solution trades latency for fault-tolerance").
package baseline

import (
	"time"

	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// Delivery is one totally ordered delivery to the client.
type Delivery struct {
	From  types.ProcID
	Value types.Value
	Time  sim.Time
}

// Options configures NewCluster.
type Options struct {
	Seed           int64
	N              int
	Delta          time.Duration
	StorageLatency time.Duration
	Pi, Mu         time.Duration
}

// Cluster is a baseline TO service instance.
type Cluster struct {
	Sim    *sim.Sim
	Oracle *failures.Oracle
	Log    *props.Log
	Procs  types.ProcSet
	Cfg    vsimpl.Config
	nodes  map[types.ProcID]*node
}

type node struct {
	id                types.ProcID
	sim               *sim.Sim
	orc               *failures.Oracle
	proc              *vstoto.Proc
	vs                *vsimpl.Node
	log               *props.Log
	stable            *storage.Stable
	persistingConfirm bool

	bcastSeq   int
	deliveries []Delivery
}

// NewCluster builds and starts a baseline instance.
func NewCluster(opts Options) *Cluster {
	if opts.Delta <= 0 {
		opts.Delta = time.Millisecond
	}
	s := sim.New(opts.Seed)
	oracle := failures.NewOracle(s.Now)
	nw := net.New(s, oracle, net.Config{Delta: opts.Delta, UglyLossProb: 0.5, UglyMaxDelayFactor: 10})
	procs := types.RangeProcSet(opts.N)
	qs := types.Majorities{Universe: procs}
	cfg := vsimpl.DefaultConfig(opts.Delta, opts.N)
	if opts.Pi > 0 {
		cfg.Pi = opts.Pi
	}
	if opts.Mu > 0 {
		cfg.Mu = opts.Mu
	}
	c := &Cluster{
		Sim: s, Oracle: oracle,
		Log:   &props.Log{},
		Procs: procs,
		Cfg:   cfg,
		nodes: make(map[types.ProcID]*node, opts.N),
	}
	for _, p := range procs.Members() {
		nd := &node{
			id:     p,
			sim:    s,
			orc:    oracle,
			proc:   vstoto.NewProc(p, qs, procs),
			log:    c.Log,
			stable: storage.New(s, opts.StorageLatency),
		}
		nd.vs = vsimpl.NewNode(p, procs, procs, s, nw, oracle, cfg, vsimpl.Handlers{
			Newview: func(v types.View) { nd.proc.Newview(v); nd.drain() },
			Gprcv:   nd.onGprcv,
			Safe:    nd.onSafe,
		})
		nd.vs.Log = c.Log
		c.nodes[p] = nd
	}
	for _, p := range procs.Members() {
		c.nodes[p].vs.Start()
	}
	return c
}

// Bcast submits a client value at p: it is stable-logged before entering
// the protocol.
func (c *Cluster) Bcast(p types.ProcID, a types.Value) {
	nd := c.nodes[p]
	nd.bcastSeq++
	seq := nd.bcastSeq
	if nd.log != nil {
		nd.log.Append(props.Event{T: nd.sim.Now(), Kind: props.TOBcast, P: p, Value: a, ValueSeq: seq})
	}
	nd.stable.Write(func() {
		nd.proc.Bcast(a)
		nd.drain()
	})
}

// Deliveries returns everything delivered at p, in order.
func (c *Cluster) Deliveries(p types.ProcID) []Delivery { return c.nodes[p].deliveries }

// StorageWrites returns the number of stable writes completed at p.
func (c *Cluster) StorageWrites(p types.ProcID) int { return c.nodes[p].stable.Writes() }

func (nd *node) onGprcv(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		nd.proc.GprcvValue(m)
	case *vstoto.Summary:
		nd.proc.GprcvSummary(from, m)
	}
	nd.drain()
}

func (nd *node) onSafe(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		nd.proc.SafeValue(m)
	case *vstoto.Summary:
		nd.proc.SafeSummary(from)
	}
	nd.drain()
}

// drain runs the enabled actions, but confirms only through the stable
// log: each confirmed position is persisted before it takes effect (and
// hence before the value can be released).
func (nd *node) drain() {
	if nd.orc.Proc(nd.id) == failures.Bad {
		return
	}
	for {
		progress := false
		if _, ok := nd.proc.LabelEnabled(); ok {
			nd.proc.Label()
			progress = true
		}
		if nd.proc.GpsndSummaryEnabled() {
			nd.vs.Gpsnd(nd.proc.GpsndSummary())
			progress = true
		}
		if _, ok := nd.proc.GpsndValueEnabled(); ok {
			nd.vs.Gpsnd(nd.proc.GpsndValue())
			progress = true
		}
		if nd.proc.ConfirmEnabled() && !nd.persistingConfirm {
			nd.persistingConfirm = true
			nd.stable.Write(func() {
				nd.persistingConfirm = false
				if nd.proc.ConfirmEnabled() {
					nd.proc.Confirm()
				}
				nd.drain()
			})
		}
		if from, a, ok := nd.proc.BrcvEnabled(); ok {
			reportIdx := nd.proc.NextReport
			nd.proc.Brcv()
			nd.deliveries = append(nd.deliveries, Delivery{From: from, Value: a, Time: nd.sim.Now()})
			if nd.log != nil {
				nd.log.Append(props.Event{
					T: nd.sim.Now(), Kind: props.TOBrcv, P: nd.id, From: from,
					Value: a, ValueSeq: nd.originSeq(reportIdx, from),
				})
			}
			progress = true
		}
		if !progress {
			return
		}
	}
}

func (nd *node) originSeq(idx int, origin types.ProcID) int {
	count := 0
	for i := 0; i < idx && i < len(nd.proc.Order); i++ {
		if nd.proc.Order[i].Origin == origin {
			count++
		}
	}
	return count
}
