package recovery

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// gcDisk writes the same record set as sampleDisk through a group-commit
// WAL on a device with real write latency, so records coalesce into batch
// frames. The durable image is physically different from sampleDisk's but
// must replay to the same logical snapshot.
func gcDisk(tb testing.TB, window time.Duration) ([]byte, *obs.Snapshot) {
	tb.Helper()
	s := sim.New(1)
	st := storage.New(s, 2*time.Millisecond)
	w := New(st)
	reg := obs.New()
	w.Instrument(reg)
	w.SetGroupCommit(window)
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Bcast(1, "a", nil)
	w.Label(1, labelA, "a", nil)
	w.OrderAppend(labelB, "b", nil)
	w.Bcast(2, "c", nil)
	w.Deliver(1, labelA, 1, 1, "a", nil)
	w.Recovered(1, nil)
	w.Recovered(2, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		tb.Fatal(err)
	}
	return st.Contents(), reg.Snapshot()
}

// TestGroupCommitReplayEquivalence: a batched log is a different physical
// layout for the same history — replay must produce the identical logical
// snapshot the one-frame-per-record log produces.
func TestGroupCommitReplayEquivalence(t *testing.T) {
	legacy := Replay(sampleDisk(t))
	for _, window := range []time.Duration{0, time.Millisecond} {
		t.Run(fmt.Sprintf("window=%v", window), func(t *testing.T) {
			disk, snap := gcDisk(t, window)
			got := Replay(disk)
			if got.Truncated != "" {
				t.Fatalf("clean batched log truncated: %s", got.Truncated)
			}
			if got.Records != legacy.Records {
				t.Errorf("Records = %d, want %d", got.Records, legacy.Records)
			}
			if len(got.Order) != len(legacy.Order) || got.Order[0] != labelA || got.Order[1] != labelB {
				t.Errorf("Order = %v, want %v", got.Order, legacy.Order)
			}
			if len(got.Delivered) != 1 || got.Delivered[0] != legacy.Delivered[0] {
				t.Errorf("Delivered = %v, want %v", got.Delivered, legacy.Delivered)
			}
			if got.NextConfirm != legacy.NextConfirm || got.BcastSeq != legacy.BcastSeq ||
				got.Incarnations != legacy.Incarnations {
				t.Errorf("scalars diverge: got %+v want %+v", got, legacy)
			}
			// Coalescing must actually have happened: 9 records in fewer
			// covering writes.
			if b := snap.Counters["wal.batches"]; b <= 0 || b >= snap.Counters["wal.batch_records"] {
				t.Errorf("batches = %d of %d records: no coalescing", b, snap.Counters["wal.batch_records"])
			}
		})
	}
}

// TestGroupCommitDurabilityOrdering is the write-ahead contract under
// group commit: a record's done callback runs only once the covering
// batch write is durable — at callback time a replay of the device
// contents must already contain the record — and callbacks run in append
// order.
func TestGroupCommitDurabilityOrdering(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 3*time.Millisecond)
	w := New(st)
	w.SetGroupCommit(0)
	w.View(testView, nil)

	const n = 8
	fired := 0
	for i := 0; i < n; i++ {
		i := i
		w.Bcast(i+1, types.Value(fmt.Sprintf("v%d", i)), func() {
			if fired != i {
				t.Errorf("done %d fired after %d callbacks, want %d", i, fired, i)
			}
			fired++
			snap := Replay(st.Contents())
			if snap.Truncated != "" {
				t.Errorf("done %d: durable image torn: %s", i, snap.Truncated)
			}
			if snap.BcastSeq < i+1 {
				t.Errorf("done %d fired before its record was durable (BcastSeq=%d)", i, snap.BcastSeq)
			}
		})
	}
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Fatalf("only %d/%d done callbacks fired", fired, n)
	}
}

// TestGroupCommitCascadeCoalesces: appends issued from inside a done
// callback (the delivery-release cascade) must coalesce behind the still-
// accounted flight rather than each triggering its own covering write.
func TestGroupCommitCascadeCoalesces(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 3*time.Millisecond)
	w := New(st)
	reg := obs.New()
	w.Instrument(reg)
	w.SetGroupCommit(0)

	w.Bcast(1, "first", func() {
		// Cascade: these all arrive while the first batch's flight is
		// still accounted, so they must land in ONE follow-up batch.
		for i := 0; i < 5; i++ {
			w.Bcast(i+2, types.Value(fmt.Sprintf("c%d", i)), nil)
		}
	})
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wal.batches"]; got != 2 {
		t.Fatalf("wal.batches = %d, want 2 (opener + one cascade batch)", got)
	}
	if got := Replay(st.Contents()); got.Truncated != "" || got.BcastSeq != 6 {
		t.Fatalf("cascade records lost: %+v", got)
	}
}

// TestGroupCommitTornBatchThroughDevice: a crash tearing the covering
// write must discard the batch WHOLE — none of its records survive, the
// prior durable prefix replays cleanly, and no done callback for the torn
// batch ever fired.
func TestGroupCommitTornBatchThroughDevice(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 5*time.Millisecond)
	w := New(st)
	w.SetGroupCommit(0)
	w.View(testView, nil)
	s.RunFor(20 * time.Millisecond) // view batch durable

	acked := 0
	for i := 0; i < 4; i++ {
		w.Bcast(i+1, types.Value(fmt.Sprintf("v%d", i)), func() { acked++ })
	}
	s.RunFor(time.Millisecond) // covering write in flight
	st.Drop()
	s.RunFor(50 * time.Millisecond)

	if acked != 0 {
		t.Fatalf("%d torn-batch records were acknowledged", acked)
	}
	snap := Replay(st.Contents())
	if snap.Truncated == "" {
		t.Fatalf("torn batch not detected: %+v", snap)
	}
	if snap.Records != 1 || !snap.HasView || snap.BcastSeq != 0 {
		t.Fatalf("want exactly the durable view record, got %+v", snap)
	}
	// The kept prefix is a clean log (the FuzzReplay invariant, device
	// edition).
	if got := Replay(st.Contents()[:snap.TruncatedAt]); got.Truncated != "" || got.Records != 1 {
		t.Fatalf("clean prefix does not replay cleanly: %+v", got)
	}
}

// TestGroupCommitWindowCoalesces: with a commit window armed, appends on
// an idle device wait out the window and share one covering write.
func TestGroupCommitWindowCoalesces(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 0) // zero-latency device: only the window batches
	w := New(st)
	reg := obs.New()
	w.Instrument(reg)
	w.SetGroupCommit(2 * time.Millisecond)

	for i := 0; i < 6; i++ {
		i := i
		// All six land within one 2ms window.
		s.After(time.Duration(i)*100*time.Microsecond, func() {
			w.Bcast(i+1, types.Value(fmt.Sprintf("v%d", i)), nil)
		})
	}
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wal.batches"]; got != 1 {
		t.Fatalf("wal.batches = %d, want 1 (window should coalesce the burst)", got)
	}
	if got := Replay(st.Contents()); got.Truncated != "" || got.BcastSeq != 6 {
		t.Fatalf("windowed batch lost records: %+v", got)
	}
}

// TestGroupCommitCheckpointCompaction: the checkpoint barrier must keep
// compaction offsets on physical frame boundaries even when surrounding
// records ride in batches — after TruncatePrefix the suffix must replay
// from the checkpoint.
func TestGroupCommitCheckpointCompaction(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, time.Millisecond)
	w := New(st)
	w.SetGroupCommit(0)
	w.View(testView, nil)
	w.Bcast(1, "a", nil)
	s.RunFor(20 * time.Millisecond)

	w.Checkpoint(CheckpointState{
		HasView: true, View: testView, NextConfirm: 1,
		Pending: []PendingValue{{Seq: 1, Value: "a"}}, BcastSeq: 1,
	}, nil)
	w.Bcast(2, "b", nil)
	s.RunFor(20 * time.Millisecond)

	img := st.Contents()
	got := Replay(img)
	if got.Truncated != "" || got.Checkpoints != 1 {
		t.Fatalf("batched checkpoint replay: %+v", got)
	}
	at := got.CheckpointAt
	// Physically discard the prefix: the suffix alone must replay from the
	// checkpoint, offsets shifted, nothing torn — i.e. the checkpoint
	// frame starts exactly at `at`.
	suffix := img[at:]
	from := Replay(suffix)
	if from.Truncated != "" {
		t.Fatalf("compacted suffix torn: %s", from.Truncated)
	}
	if from.BcastSeq != 2 || !from.HasView || from.View.ID != testView.ID {
		t.Fatalf("compacted suffix lost state: %+v", from)
	}
}
