package recovery

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

var (
	testView = types.View{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(3)}
	labelA   = types.Label{ID: testView.ID, Seqno: 1, Origin: 1}
	labelB   = types.Label{ID: testView.ID, Seqno: 2, Origin: 2}
)

// sampleDisk writes one record of every type through a real WAL on a
// zero-latency device and returns the durable image.
func sampleDisk(tb testing.TB) []byte {
	tb.Helper()
	s := sim.New(1)
	w := New(storage.New(s, 0))
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Bcast(1, "a", nil)
	w.Label(1, labelA, "a", nil)
	w.OrderAppend(labelB, "b", nil)
	w.Bcast(2, "c", nil) // never labeled: must come back as pending
	w.Deliver(1, labelA, 1, 1, "a", nil)
	w.Recovered(1, nil)
	w.Recovered(2, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		tb.Fatal(err)
	}
	return w.Storage().Contents()
}

func TestReplayRoundTrip(t *testing.T) {
	disk := sampleDisk(t)
	s := Replay(disk)
	if s.Truncated != "" {
		t.Fatalf("clean log truncated: %s", s.Truncated)
	}
	if s.Records != 9 {
		t.Errorf("Records = %d, want 9", s.Records)
	}
	if !s.HasView || s.View.ID != testView.ID || !s.View.Set.Equal(testView.Set) {
		t.Errorf("View = %v %v, want %v", s.View, s.HasView, testView)
	}
	if s.ViewFloor() != testView.ID {
		t.Errorf("ViewFloor = %v, want %v", s.ViewFloor(), testView.ID)
	}
	if len(s.Order) != 2 || s.Order[0] != labelA || s.Order[1] != labelB {
		t.Errorf("Order = %v, want [%v %v]", s.Order, labelA, labelB)
	}
	// Establish said nextconfirm 1, but a durable delivery at position 1
	// raises the floor past it.
	if s.NextConfirm != 2 {
		t.Errorf("NextConfirm = %d, want 2", s.NextConfirm)
	}
	if s.HighPrimary != testView.ID {
		t.Errorf("HighPrimary = %v, want %v", s.HighPrimary, testView.ID)
	}
	if s.Content[labelA] != "a" || s.Content[labelB] != "b" {
		t.Errorf("Content = %v", s.Content)
	}
	want := DeliveredRecord{Pos: 1, Label: labelA, From: 1, FromSeq: 1, Value: "a"}
	if len(s.Delivered) != 1 || s.Delivered[0] != want {
		t.Errorf("Delivered = %v, want [%+v]", s.Delivered, want)
	}
	if len(s.Pending) != 1 || s.Pending[0] != (PendingValue{Seq: 2, Value: "c"}) {
		t.Errorf("Pending = %v, want [{2 c}]", s.Pending)
	}
	if s.BcastSeq != 2 {
		t.Errorf("BcastSeq = %d, want 2", s.BcastSeq)
	}
	if s.Incarnations != 2 {
		t.Errorf("Incarnations = %d, want 2", s.Incarnations)
	}
	if s.TruncatedAt != len(disk) {
		t.Errorf("TruncatedAt = %d, want %d", s.TruncatedAt, len(disk))
	}
}

// rec builds one framed record from a payload-writer.
func rec(parts func(x *codec.Writer)) []byte {
	x := codec.NewWriter()
	parts(x)
	return frame(nil, x.Data())
}

func viewRec(v types.View) []byte {
	return rec(func(x *codec.Writer) { x.U8(recView); x.View(v) })
}

// batchFrame wraps record payloads as one group-commit batch frame:
// [len | crc | recBatch [sublen payload]...]. The CRC covers the whole
// batch body, making the batch the atom of durability.
func batchFrame(payloads ...[]byte) []byte {
	body := []byte{recBatch}
	for _, p := range payloads {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(p)))
		body = append(body, p...)
	}
	return frame(nil, body)
}

// payload builds one record payload (unframed).
func payload(parts func(x *codec.Writer)) []byte {
	x := codec.NewWriter()
	parts(x)
	return append([]byte(nil), x.Data()...)
}

func TestReplayTruncatesCorruptTail(t *testing.T) {
	good := viewRec(testView)
	older := types.View{ID: types.ViewID{Epoch: 1, Proc: 0}, Set: types.RangeProcSet(3)}

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(rec(func(x *codec.Writer) { x.U8(recRecovered); x.I32(1) }))
	}
	cases := []struct {
		name   string
		tail   []byte
		reason string // substring of the truncation reason
	}{
		{"torn frame header", []byte{1, 2, 3}, "torn frame header"},
		{"zero length", corrupt(func(b []byte) []byte { return append(make([]byte, 8), b[8:]...) }), "torn record"},
		{"oversized length", corrupt(func(b []byte) []byte { b[0] = 0xff; return b }), "torn record"},
		{"torn payload", corrupt(func(b []byte) []byte { return b[:len(b)-2] }), "torn record"},
		{"checksum mismatch", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }), "checksum mismatch"},
		{"trailing bytes in record", rec(func(x *codec.Writer) { x.U8(recRecovered); x.I32(1); x.U8(7) }), "trailing bytes"},
		{"unknown tag", rec(func(x *codec.Writer) { x.U8(42) }), "unknown record tag"},
		{"non-monotonic view", viewRec(older), "non-monotonic view record"},
		{"bad bcast seq", rec(func(x *codec.Writer) { x.U8(recBcast); x.I32(0); x.Str("a") }), "bad bcast record"},
		{"bad recovery marker", rec(func(x *codec.Writer) { x.U8(recRecovered); x.I32(0) }), "bad recovery marker"},
		{"deliver out of sequence", rec(func(x *codec.Writer) {
			x.U8(recDeliver)
			x.I32(2)
			x.Label(labelA)
			x.I32(1)
			x.I32(1)
			x.Str("a")
		}), "deliver record at position 2, want 1"},
		{"deliver label off order", rec(func(x *codec.Writer) {
			x.U8(recDeliver)
			x.I32(1)
			x.Label(labelB)
			x.I32(1)
			x.I32(1)
			x.Str("a")
		}), "not at order position"},
		// Group-commit batch tears: the batch is the atom of durability,
		// so any tear inside one discards it whole while the prefix
		// before the batch frame replays untouched.
		{"empty batch", batchFrame(), "empty batch record"},
		{"torn batch sub length", frame(nil, []byte{recBatch, 1, 2}), "torn batch sub-record length"},
		{"bad batch sub length", frame(nil, append(binary.LittleEndian.AppendUint32(
			[]byte{recBatch}, 100), 1, 2, 3)), "bad batch sub-record"},
		{"nested batch", batchFrame([]byte{recBatch}), "nested batch record"},
		{"mid-batch bad record", batchFrame(
			payload(func(x *codec.Writer) { x.U8(recRecovered); x.I32(1) }),
			payload(func(x *codec.Writer) { x.U8(42) }),
		), "unknown record tag"},
		{"mid-batch torn write", batchFrame(
			payload(func(x *codec.Writer) { x.U8(recRecovered); x.I32(1) }),
			payload(func(x *codec.Writer) { x.U8(recRecovered); x.I32(2) }),
		)[:12], "torn record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			disk := append(append([]byte(nil), good...), tc.tail...)
			s := Replay(disk)
			if s.Truncated == "" {
				t.Fatalf("corrupt tail not detected: %+v", s)
			}
			if !contains(s.Truncated, tc.reason) {
				t.Fatalf("Truncated = %q, want substring %q", s.Truncated, tc.reason)
			}
			if s.Records != 1 || !s.HasView || s.View.ID != testView.ID {
				t.Fatalf("good prefix lost: records=%d view=%v", s.Records, s.View)
			}
			if s.TruncatedAt != len(good) {
				t.Fatalf("TruncatedAt = %d, want %d", s.TruncatedAt, len(good))
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReplayBitFlips flips every bit of a realistic image, one at a time:
// replay must never panic, must detect every flip (a single-bit error is
// always within one frame, whose CRC catches it), and must keep the
// delivered prefix a prefix of the clean replay's — corruption may cost
// the tail, never rewrite history.
func TestReplayBitFlips(t *testing.T) {
	disk := sampleDisk(t)
	clean := Replay(disk)
	for off := range disk {
		for bit := uint(0); bit < 8; bit++ {
			img := append([]byte(nil), disk...)
			img[off] ^= 1 << bit
			s := Replay(img)
			if s.Truncated == "" {
				t.Fatalf("flip at byte %d bit %d went undetected", off, bit)
			}
			if len(s.Delivered) > len(clean.Delivered) {
				t.Fatalf("flip at byte %d bit %d grew the delivered prefix", off, bit)
			}
			for i := range s.Delivered {
				if s.Delivered[i] != clean.Delivered[i] {
					t.Fatalf("flip at byte %d bit %d rewrote delivery %d", off, bit, i+1)
				}
			}
		}
	}
}

// TestReplayTornWriteThroughDevice drives the tear through the storage
// device itself: a crash mid-write leaves a strict prefix of the record,
// queued writes vanish, and replay keeps exactly the records that
// completed before the crash.
func TestReplayTornWriteThroughDevice(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 5*time.Millisecond)
	w := New(st)
	w.View(testView, nil)
	s.RunFor(10 * time.Millisecond)

	w.Bcast(1, "durable-never", nil)
	w.Bcast(2, "queued-never", nil)
	s.RunFor(time.Millisecond) // first Bcast in flight, second queued
	st.Drop()
	s.RunFor(20 * time.Millisecond)

	snap := Replay(st.Contents())
	if snap.Truncated == "" {
		t.Fatalf("torn write not detected: %+v", snap)
	}
	if snap.Records != 1 || !snap.HasView {
		t.Fatalf("want exactly the durable view record, got %+v", snap)
	}
	if snap.BcastSeq != 0 || len(snap.Pending) != 0 {
		t.Fatalf("torn/queued submissions leaked into the snapshot: %+v", snap)
	}
	// The truncated image replays identically after the owner appends more
	// records — a fresh incarnation writes past the torn tail... which this
	// model does not compact, so replay must keep truncating at the same
	// spot and ignore everything after it.
	at := snap.TruncatedAt
	if got := Replay(st.Contents()[:at]); got.Truncated != "" || got.Records != 1 {
		t.Fatalf("clean prefix does not replay cleanly: %+v", got)
	}
}

func FuzzReplay(f *testing.F) {
	disk := sampleDisk(f)
	f.Add(disk)
	f.Add(disk[:len(disk)/2])
	f.Add([]byte{})
	for _, off := range []int{0, 4, len(disk) / 2, len(disk) - 1} {
		img := append([]byte(nil), disk...)
		img[off] ^= 0x10
		f.Add(img)
	}
	// Group-commit layouts: a clean batched image, the same image cut
	// mid-batch (the torn covering write), and a batch frame with a
	// corrupted interior.
	batched, _ := gcDisk(f, 0)
	f.Add(batched)
	f.Add(batched[:len(batched)-3])
	f.Add(batched[:len(batched)/2])
	img := append([]byte(nil), batched...)
	img[len(img)/2] ^= 0x10
	f.Add(img)
	f.Add(append(append([]byte(nil), viewRec(testView)...), batchFrame(
		payload(func(x *codec.Writer) { x.U8(recRecovered); x.I32(1) }),
		payload(func(x *codec.Writer) { x.U8(recRecovered); x.I32(2) }),
	)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := Replay(data) // must never panic
		if s.TruncatedAt < 0 || s.TruncatedAt > len(data) {
			t.Fatalf("TruncatedAt = %d outside [0,%d]", s.TruncatedAt, len(data))
		}
		if s.NextConfirm < 1 {
			t.Fatalf("NextConfirm = %d", s.NextConfirm)
		}
		for i, d := range s.Delivered {
			if d.Pos != i+1 {
				t.Fatalf("delivered positions not contiguous: %v", s.Delivered)
			}
		}
		if len(s.Delivered) > len(s.Order) {
			t.Fatalf("delivered %d beyond order %d", len(s.Delivered), len(s.Order))
		}
		// The kept prefix must itself be a clean log with the same outcome.
		clean := Replay(data[:s.TruncatedAt])
		if clean.Truncated != "" || clean.Records != s.Records {
			t.Fatalf("kept prefix replays differently: %q records=%d vs %d",
				clean.Truncated, clean.Records, s.Records)
		}
	})
}
