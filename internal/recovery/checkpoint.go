package recovery

import (
	"sort"

	"repro/internal/codec"
	"repro/internal/types"
)

// CheckpointState is the full VStoTO-critical state a checkpoint record
// captures: everything Replay would otherwise fold together from the
// log's history. A valid checkpoint therefore makes every record before
// it redundant, which is what lets compaction discard the prefix — a
// daemon killed hours into a soak replays the last checkpoint plus the
// post-checkpoint suffix instead of the whole history.
//
// The delivered prefix is stored as a count, not a list: delivery i is
// reconstructed from the order — its label is Order[i], its origin the
// label's, its origin sequence number a running per-origin counter, and
// its value Content[Order[i]] — exactly the identities the stack's
// originSeq computes at delivery time.
type CheckpointState struct {
	// HasView and View mirror Snapshot: the last installed view (the
	// membership floor).
	HasView bool
	View    types.View
	// Order, NextConfirm, HighPrimary mirror the VStoTO state.
	Order       []types.Label
	NextConfirm int
	HighPrimary types.ViewID
	// Content is the label→value relation; it must cover every label in
	// Order and may hold extras (labeled values not yet ordered).
	Content map[types.Label]types.Value
	// DeliveredCount is the length of the delivered (released) prefix of
	// Order.
	DeliveredCount int
	// Pending are durable submissions never labeled, in submission order.
	Pending []PendingValue
	// BcastSeq is the highest submission sequence number used.
	BcastSeq int
	// Incarnations is the number of durable recovery markers at capture
	// time.
	Incarnations int
}

// Checkpoint appends a checkpoint record capturing cs and calls done once
// it is durable. The caller must capture cs at a quiescent instant: the
// in-memory state must equal a replay of the log's enqueued prefix (no
// write-ahead record in flight), or the checkpoint would disagree with
// the records around it.
//
// When compaction is enabled (SetCompact), the durability callback also
// discards the log prefix before the previous checkpoint, keeping two
// generations: the head of the retained log is always the previous valid
// checkpoint, so a bit-flipped latest checkpoint still falls back to a
// full replay of what is retained. A checkpoint torn by a crash never
// truncates anything (the device suppresses its completion).
func (w *WAL) Checkpoint(cs CheckpointState, done func()) {
	x := w.record()
	x.U8(recCheckpoint)
	if cs.HasView {
		x.U8(1)
		x.View(cs.View)
	} else {
		x.U8(0)
	}
	x.U32(uint32(len(cs.Order)))
	for _, l := range cs.Order {
		x.Label(l)
		x.Str(string(cs.Content[l]))
	}
	extras := make([]types.Label, 0, len(cs.Content)-len(cs.Order))
	inOrder := make(map[types.Label]bool, len(cs.Order))
	for _, l := range cs.Order {
		inOrder[l] = true
	}
	for l := range cs.Content {
		if !inOrder[l] {
			extras = append(extras, l)
		}
	}
	sort.Slice(extras, func(i, j int) bool { return extras[i].Less(extras[j]) })
	x.U32(uint32(len(extras)))
	for _, l := range extras {
		x.Label(l)
		x.Str(string(cs.Content[l]))
	}
	x.I32(cs.NextConfirm)
	x.ViewID(cs.HighPrimary)
	x.I32(cs.DeliveredCount)
	x.U32(uint32(len(cs.Pending)))
	for _, pv := range cs.Pending {
		x.I32(pv.Seq)
		x.Str(string(pv.Value))
	}
	x.I32(cs.BcastSeq)
	x.I32(cs.Incarnations)

	// Under group commit the checkpoint must sit at a physical frame
	// boundary: lastCkpt/prevCkpt feed TruncatePrefix, which slices the
	// durable image at these offsets, and Replay must find a frame header
	// there. Seal whatever batch is open, let the checkpoint open a fresh
	// batch, and seal again so it rides alone in its own frame.
	if w.gcOn {
		w.seal()
	}
	start := w.endOff
	w.append(x.Data(), func() {
		if w.compact && w.prevCkpt >= 0 {
			w.st.TruncatePrefix(w.prevCkpt)
		}
		if done != nil {
			done()
		}
	})
	if w.gcOn {
		w.seal()
	}
	w.prevCkpt = w.lastCkpt
	w.lastCkpt = start
}

// decodeCheckpoint folds a checkpoint payload (tag already consumed) into
// the snapshot, replacing the accumulated state wholesale; it returns a
// truncation reason for undecodable or internally inconsistent records.
func (s *Snapshot) decodeCheckpoint(r *codec.Reader, pending map[int]types.Value) string {
	hasView := r.U8() == 1
	var view types.View
	if hasView {
		view = r.View()
	}
	n := int(r.U32())
	if n < 0 || n > r.Rest() {
		return "bad checkpoint record: oversized order"
	}
	order := make([]types.Label, 0, n)
	content := make(map[types.Label]types.Value, n)
	for i := 0; i < n; i++ {
		l := r.Label()
		order = append(order, l)
		content[l] = types.Value(r.Str())
	}
	extras := int(r.U32())
	if extras < 0 || extras > r.Rest() {
		return "bad checkpoint record: oversized content"
	}
	for i := 0; i < extras; i++ {
		l := r.Label()
		content[l] = types.Value(r.Str())
	}
	next := r.I32()
	high := r.ViewID()
	delivered := r.I32()
	np := int(r.U32())
	if np < 0 || np > r.Rest() {
		return "bad checkpoint record: oversized pending"
	}
	pend := make([]PendingValue, 0, np)
	for i := 0; i < np; i++ {
		seq := r.I32()
		pend = append(pend, PendingValue{Seq: seq, Value: types.Value(r.Str())})
	}
	bcastSeq := r.I32()
	incarnations := r.I32()
	if r.Err() != nil || next < 1 || delivered < 0 || delivered > len(order) ||
		bcastSeq < 0 || incarnations < 0 {
		return "bad checkpoint record"
	}
	for _, pv := range pend {
		if pv.Seq < 1 {
			return "bad checkpoint record: pending seq"
		}
	}
	if s.HasView && !hasView {
		return "bad checkpoint record: view floor lost"
	}
	if s.HasView && view.ID.Less(s.View.ID) {
		return "bad checkpoint record: view below the installed floor"
	}

	s.HasView = hasView
	s.View = view
	s.Order = order
	s.Content = content
	s.NextConfirm = next
	s.HighPrimary = high
	s.Delivered = s.Delivered[:0]
	perOrigin := make(map[types.ProcID]int)
	for i := 0; i < delivered; i++ {
		l := order[i]
		perOrigin[l.Origin]++
		s.Delivered = append(s.Delivered, DeliveredRecord{
			Pos: i + 1, Label: l, From: l.Origin, FromSeq: perOrigin[l.Origin], Value: content[l],
		})
	}
	for seq := range pending {
		delete(pending, seq)
	}
	for _, pv := range pend {
		pending[pv.Seq] = pv.Value
	}
	s.BcastSeq = bcastSeq
	s.Incarnations = incarnations
	return ""
}
