package recovery

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// BenchmarkWALAppend measures the per-record cost of the WAL hot path
// (frame + enqueue + durable completion) with a zero-latency device, so
// the number is the framing overhead rather than simulated I/O time. The
// record mix mirrors a steady-state primary view: an order append and a
// delivery per value.
func BenchmarkWALAppend(b *testing.B) {
	s := sim.New(1)
	w := New(storage.New(s, 0))
	l := types.Label{ID: types.G0(), Seqno: 1, Origin: 2}
	const val = types.Value("a typical client payload value")

	b.Run("order-append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.OrderAppend(l, val, nil)
			if err := s.Run(sim.Never); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deliver", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Deliver(i+1, l, 2, i, val, nil)
			if err := s.Run(sim.Never); err != nil {
				b.Fatal(err)
			}
		}
	})
}
