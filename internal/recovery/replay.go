package recovery

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/codec"
	"repro/internal/types"
)

// DeliveredRecord is one persisted client delivery.
type DeliveredRecord struct {
	Pos     int // 1-based position in the order
	Label   types.Label
	From    types.ProcID
	FromSeq int // the origin's submission index
	Value   types.Value
}

// PendingValue is a submission that was durable but never labeled: it
// re-enters the delay queue on restart and is labeled afresh in a later
// view.
type PendingValue struct {
	Seq   int
	Value types.Value
}

// Snapshot is the consistent state Replay reconstructs from a WAL.
type Snapshot struct {
	// HasView reports whether any view was durably installed; View is the
	// last one. Its ID is the membership floor: the restarted processor
	// must only install views strictly above it.
	HasView bool
	View    types.View
	// Order, NextConfirm and HighPrimary mirror the VStoTO state of the
	// same names as of the last durable establishment, extended by durable
	// order appends.
	Order       []types.Label
	NextConfirm int
	HighPrimary types.ViewID
	// Content is the label→value relation recoverable from this log.
	Content map[types.Label]types.Value
	// Delivered is the persisted delivery prefix, in position order.
	Delivered []DeliveredRecord
	// Pending are durable submissions never labeled, in submission order.
	Pending []PendingValue
	// BcastSeq is the highest durable submission sequence number.
	BcastSeq int
	// Incarnations counts the durable recovery markers: the number of
	// restarts this log has survived. The next incarnation is
	// Incarnations+1. A checkpoint record restores the count as of its
	// capture; markers after it add on.
	Incarnations int
	// Checkpoints counts the valid checkpoint records replayed;
	// CheckpointAt and PrevCheckpointAt are the byte offsets (within disk)
	// of the latest and second-latest, -1 when absent. Replay resumes
	// accumulating from the latest checkpoint's state, which is what makes
	// compaction (discarding everything before PrevCheckpointAt) safe.
	Checkpoints      int
	CheckpointAt     int
	PrevCheckpointAt int
	// Records counts the records replayed.
	Records int
	// Truncated is empty for a clean log; otherwise it describes the first
	// torn or corrupt record, at byte offset TruncatedAt, where replay
	// stopped. Everything after that offset is ignored.
	Truncated   string
	TruncatedAt int
}

// Replay folds a durable byte image back into a Snapshot. It never fails:
// a torn or corrupt tail — short frame header, oversized length, checksum
// mismatch, undecodable or inconsistent record — truncates the replay at
// that record, and the fields report what was kept. Malformed input never
// panics.
func Replay(disk []byte) *Snapshot {
	s := &Snapshot{
		NextConfirm:      1,
		Content:          make(map[types.Label]types.Value),
		CheckpointAt:     -1,
		PrevCheckpointAt: -1,
	}
	pending := make(map[int]types.Value)
	off := 0
	truncate := func(reason string) {
		s.Truncated = reason
		s.TruncatedAt = off
	}
	for off < len(disk) {
		if len(disk)-off < frameHeader {
			truncate(fmt.Sprintf("torn frame header: %d trailing bytes", len(disk)-off))
			break
		}
		hdr := codec.NewReader(disk[off : off+frameHeader])
		length := int(hdr.U32())
		sum := hdr.U32()
		if length <= 0 || length > len(disk)-off-frameHeader {
			truncate(fmt.Sprintf("torn record: length %d with %d bytes left", length, len(disk)-off-frameHeader))
			break
		}
		payload := disk[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			truncate("checksum mismatch")
			break
		}
		if payload[0] == recBatch {
			if reason := s.applyBatch(payload, pending, off); reason != "" {
				// A batch that decodes but carries an invalid sub-record
				// may already have applied a prefix of its records to the
				// snapshot. The kept log must replay identically on the
				// next restart, so rebuild from the clean prefix — it
				// replayed without truncation a moment ago, making the
				// recursion depth exactly one.
				clean := Replay(disk[:off])
				clean.Truncated = reason
				clean.TruncatedAt = off
				return clean
			}
		} else {
			if reason := s.applyRecord(payload, pending); reason != "" {
				truncate(reason)
				break
			}
			if payload[0] == recCheckpoint {
				s.PrevCheckpointAt = s.CheckpointAt
				s.CheckpointAt = off
				s.Checkpoints++
			}
			s.Records++
		}
		off += frameHeader + length
	}
	if s.Truncated == "" {
		s.TruncatedAt = len(disk)
	}
	for seq, a := range pending {
		s.Pending = append(s.Pending, PendingValue{Seq: seq, Value: a})
	}
	sort.Slice(s.Pending, func(i, j int) bool { return s.Pending[i].Seq < s.Pending[j].Seq })
	if n := len(s.Delivered); n > 0 && s.NextConfirm <= s.Delivered[n-1].Pos {
		s.NextConfirm = s.Delivered[n-1].Pos + 1
	}
	return s
}

// applyBatch folds a group-commit batch (outer CRC already verified) into
// the snapshot: a sequence of [u32 len | record payload] sub-records, each
// applied exactly as a standalone record. A checkpoint inside a batch is
// located by the batch frame's start offset — the only physical frame
// boundary compaction can truncate at. Any structural or semantic failure
// returns a truncation reason; the caller discards the whole batch.
func (s *Snapshot) applyBatch(payload []byte, pending map[int]types.Value, off int) string {
	body := payload[1:]
	if len(body) == 0 {
		return "empty batch record"
	}
	for len(body) > 0 {
		if len(body) < 4 {
			return fmt.Sprintf("torn batch sub-record length: %d trailing bytes", len(body))
		}
		ln := int(binary.LittleEndian.Uint32(body[:4]))
		if ln <= 0 || ln > len(body)-4 {
			return fmt.Sprintf("bad batch sub-record: length %d with %d bytes left", ln, len(body)-4)
		}
		sub := body[4 : 4+ln]
		if sub[0] == recBatch {
			return "nested batch record"
		}
		if reason := s.applyRecord(sub, pending); reason != "" {
			return reason
		}
		if sub[0] == recCheckpoint {
			s.PrevCheckpointAt = s.CheckpointAt
			s.CheckpointAt = off
			s.Checkpoints++
		}
		s.Records++
		body = body[4+ln:]
	}
	return ""
}

// applyRecord folds one record payload into the snapshot; it returns a
// truncation reason for undecodable or internally inconsistent records.
func (s *Snapshot) applyRecord(payload []byte, pending map[int]types.Value) string {
	r := codec.NewReader(payload)
	switch tag := r.U8(); tag {
	case recView:
		v := r.View()
		if r.Err() != nil {
			return "bad view record"
		}
		if s.HasView && !s.View.ID.Less(v.ID) {
			return fmt.Sprintf("non-monotonic view record %v after %v", v.ID, s.View.ID)
		}
		s.View = v
		s.HasView = true
	case recEstablish:
		n := int(r.U32())
		if n < 0 || n > r.Rest() {
			return "bad establish record: oversized order"
		}
		order := make([]types.Label, 0, n)
		for i := 0; i < n; i++ {
			order = append(order, r.Label())
		}
		next := r.I32()
		high := r.ViewID()
		if r.Err() != nil || next < 1 {
			return "bad establish record"
		}
		s.Order = order
		s.NextConfirm = next
		s.HighPrimary = high
	case recOrderAppend:
		l := r.Label()
		a := types.Value(r.Str())
		if r.Err() != nil {
			return "bad order-append record"
		}
		s.Order = append(s.Order, l)
		s.Content[l] = a
	case recBcast:
		seq := r.I32()
		a := types.Value(r.Str())
		if r.Err() != nil || seq < 1 {
			return "bad bcast record"
		}
		pending[seq] = a
		if seq > s.BcastSeq {
			s.BcastSeq = seq
		}
	case recLabel:
		seq := r.I32()
		l := r.Label()
		a := types.Value(r.Str())
		if r.Err() != nil {
			return "bad label record"
		}
		delete(pending, seq)
		s.Content[l] = a
	case recDeliver:
		pos := r.I32()
		l := r.Label()
		from := types.ProcID(r.I32())
		fromSeq := r.I32()
		a := types.Value(r.Str())
		if r.Err() != nil {
			return "bad deliver record"
		}
		if pos != len(s.Delivered)+1 {
			return fmt.Sprintf("deliver record at position %d, want %d", pos, len(s.Delivered)+1)
		}
		if pos > len(s.Order) || s.Order[pos-1] != l {
			return fmt.Sprintf("deliver record label %v not at order position %d", l, pos)
		}
		s.Content[l] = a
		s.Delivered = append(s.Delivered, DeliveredRecord{Pos: pos, Label: l, From: from, FromSeq: fromSeq, Value: a})
	case recRecovered:
		n := r.I32()
		if r.Err() != nil || n < 1 {
			return "bad recovery marker"
		}
		s.Incarnations++
	case recCheckpoint:
		if reason := s.decodeCheckpoint(r, pending); reason != "" {
			return reason
		}
	default:
		return fmt.Sprintf("unknown record tag %d", tag)
	}
	if r.Rest() != 0 {
		return fmt.Sprintf("record tag %d has %d trailing bytes", payload[0], r.Rest())
	}
	return ""
}

// ViewFloor returns the identifier of the last durably installed view, or
// ⊥ when none: the strict lower bound for every view the restarted
// processor may install or propose.
func (s *Snapshot) ViewFloor() types.ViewID {
	if !s.HasView {
		return types.Bottom
	}
	return s.View.ID
}
