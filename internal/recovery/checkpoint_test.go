package recovery

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// ckptState is the sample checkpoint used across these tests: one
// delivered value, one pending submission, incarnation 1.
func ckptState() CheckpointState {
	return CheckpointState{
		HasView:        true,
		View:           testView,
		Order:          []types.Label{labelA},
		Content:        map[types.Label]types.Value{labelA: "a"},
		NextConfirm:    2,
		HighPrimary:    testView.ID,
		DeliveredCount: 1,
		Pending:        []PendingValue{{Seq: 2, Value: "c"}},
		BcastSeq:       2,
		Incarnations:   1,
	}
}

// checkpointDisk builds: prefix records, checkpoint C1, interlude,
// checkpoint C2, suffix — returning the durable image and the two
// checkpoints' logical offsets.
func checkpointDisk(tb testing.TB) (disk []byte, c1, c2 int) {
	tb.Helper()
	s := sim.New(1)
	w := New(storage.New(s, 0))
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Bcast(1, "a", nil)
	w.Label(1, labelA, "a", nil)
	w.Bcast(2, "c", nil)
	w.Deliver(1, labelA, 1, 1, "a", nil)

	c1 = w.EndOffset()
	w.Checkpoint(ckptState(), nil)

	w.OrderAppend(labelB, "b", nil)
	w.Deliver(2, labelB, 2, 1, "b", nil)

	cs2 := ckptState()
	cs2.Order = []types.Label{labelA, labelB}
	cs2.Content = map[types.Label]types.Value{labelA: "a", labelB: "b"}
	cs2.NextConfirm = 3
	cs2.DeliveredCount = 2
	c2 = w.EndOffset()
	w.Checkpoint(cs2, nil)

	w.Recovered(2, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		tb.Fatal(err)
	}
	return w.Storage().Contents(), c1, c2
}

func TestCheckpointRoundTrip(t *testing.T) {
	disk, c1, c2 := checkpointDisk(t)
	s := Replay(disk)
	if s.Truncated != "" {
		t.Fatalf("clean log truncated: %s", s.Truncated)
	}
	if s.Checkpoints != 2 || s.CheckpointAt != c2 || s.PrevCheckpointAt != c1 {
		t.Errorf("checkpoints = %d at %d/%d, want 2 at %d/%d",
			s.Checkpoints, s.CheckpointAt, s.PrevCheckpointAt, c2, c1)
	}
	// Final state is the second checkpoint plus the suffix.
	if len(s.Order) != 2 || s.Order[0] != labelA || s.Order[1] != labelB {
		t.Errorf("Order = %v, want [%v %v]", s.Order, labelA, labelB)
	}
	want := []DeliveredRecord{
		{Pos: 1, Label: labelA, From: 1, FromSeq: 1, Value: "a"},
		{Pos: 2, Label: labelB, From: 2, FromSeq: 1, Value: "b"},
	}
	if len(s.Delivered) != 2 || s.Delivered[0] != want[0] || s.Delivered[1] != want[1] {
		t.Errorf("Delivered = %v, want %v", s.Delivered, want)
	}
	if s.NextConfirm != 3 || s.BcastSeq != 2 || s.Incarnations != 2 {
		t.Errorf("NextConfirm=%d BcastSeq=%d Incarnations=%d, want 3/2/2",
			s.NextConfirm, s.BcastSeq, s.Incarnations)
	}
	if len(s.Pending) != 1 || s.Pending[0] != (PendingValue{Seq: 2, Value: "c"}) {
		t.Errorf("Pending = %v, want [{2 c}]", s.Pending)
	}
	if !s.HasView || s.View.ID != testView.ID {
		t.Errorf("View = %v (has=%v), want %v", s.View, s.HasView, testView)
	}
}

// TestCheckpointCorruptFallsBack flips a byte inside the latest
// checkpoint record: replay must truncate there and recover from the
// previous checkpoint plus the records between them — never from a
// half-read checkpoint.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	disk, c1, c2 := checkpointDisk(t)
	bad := append([]byte(nil), disk...)
	bad[c2+12] ^= 0xff // inside C2's payload: CRC mismatch
	s := Replay(bad)
	if s.Truncated == "" || s.TruncatedAt != c2 {
		t.Fatalf("TruncatedAt = %d (%q), want truncation at %d", s.TruncatedAt, s.Truncated, c2)
	}
	if s.Checkpoints != 1 || s.CheckpointAt != c1 || s.PrevCheckpointAt != -1 {
		t.Errorf("checkpoints = %d at %d/%d, want 1 at %d/-1",
			s.Checkpoints, s.CheckpointAt, s.PrevCheckpointAt, c1)
	}
	// State as of just before C2: C1 plus the interlude records.
	if len(s.Order) != 2 || len(s.Delivered) != 2 {
		t.Errorf("Order=%v Delivered=%v, want both length 2", s.Order, s.Delivered)
	}
	if s.Incarnations != 1 {
		t.Errorf("Incarnations = %d, want 1 (the post-C2 Recovered is gone)", s.Incarnations)
	}
}

// TestCheckpointTornTail cuts the log mid-checkpoint (the torn-write
// case): same fallback as corruption.
func TestCheckpointTornTail(t *testing.T) {
	disk, c1, c2 := checkpointDisk(t)
	s := Replay(disk[:c2+5])
	if s.Truncated == "" || s.TruncatedAt != c2 {
		t.Fatalf("TruncatedAt = %d (%q), want truncation at %d", s.TruncatedAt, s.Truncated, c2)
	}
	if s.Checkpoints != 1 || s.CheckpointAt != c1 {
		t.Errorf("checkpoints = %d at %d, want 1 at %d", s.Checkpoints, s.CheckpointAt, c1)
	}
}

// TestCheckpointValidation rejects checkpoints whose state is internally
// inconsistent instead of installing them.
func TestCheckpointValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CheckpointState)
	}{
		{"delivered beyond order", func(cs *CheckpointState) { cs.DeliveredCount = 5 }},
		{"negative delivered", func(cs *CheckpointState) { cs.DeliveredCount = -1 }},
		{"nextconfirm zero", func(cs *CheckpointState) { cs.NextConfirm = 0 }},
		{"negative bcastseq", func(cs *CheckpointState) { cs.BcastSeq = -1 }},
		{"pending seq zero", func(cs *CheckpointState) { cs.Pending = []PendingValue{{Seq: 0, Value: "x"}} }},
		{"view floor lost", func(cs *CheckpointState) { cs.HasView = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(1)
			w := New(storage.New(s, 0))
			w.View(testView, nil) // establishes the view floor
			cs := ckptState()
			tc.mutate(&cs)
			off := w.EndOffset()
			w.Checkpoint(cs, nil)
			if err := s.Run(s.Now().Add(time.Second)); err != nil {
				t.Fatal(err)
			}
			snap := Replay(w.Storage().Contents())
			if snap.Truncated == "" || snap.TruncatedAt != off {
				t.Errorf("invalid checkpoint accepted: TruncatedAt=%d (%q), want rejection at %d",
					snap.TruncatedAt, snap.Truncated, off)
			}
		})
	}
}

// TestCheckpointBehindInFlightAppend enqueues a checkpoint on a
// latency-bearing device while earlier appends are still in flight: the
// enqueue-time offset bookkeeping must match the eventual disk layout
// (the single write head serializes FIFO), so replay finds the
// checkpoint exactly where the WAL said it would be.
func TestCheckpointBehindInFlightAppend(t *testing.T) {
	s := sim.New(1)
	w := New(storage.New(s, time.Millisecond))
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Deliver(1, labelA, 1, 1, "a", nil)
	c1 := w.EndOffset() // nothing durable yet: offsets are enqueue-time
	cs := ckptState()
	cs.Pending = nil
	cs.BcastSeq = 0
	w.Checkpoint(cs, nil)
	w.OrderAppend(labelB, "b", nil)
	if got := w.Storage().Size(); got != 0 {
		t.Fatalf("device already has %d durable bytes before the sim ran", got)
	}
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	snap := Replay(w.Storage().Contents())
	if snap.Truncated != "" {
		t.Fatalf("clean log truncated: %s", snap.Truncated)
	}
	if snap.Checkpoints != 1 || snap.CheckpointAt != c1 {
		t.Errorf("checkpoint replayed at %d (count %d), want 1 at %d",
			snap.CheckpointAt, snap.Checkpoints, c1)
	}
	if len(snap.Order) != 2 {
		t.Errorf("Order = %v, want the checkpoint's label plus the queued append", snap.Order)
	}
}

// TestTornCheckpointNeverTruncates crashes the owner while the second
// checkpoint is under the write head: its completion is suppressed, so
// compaction must not fire — a checkpoint that might be torn can never
// have discarded the prefix its own corruption falls back to.
func TestTornCheckpointNeverTruncates(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, time.Millisecond)
	w := New(st)
	w.SetCompact(true)
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Deliver(1, labelA, 1, 1, "a", nil)
	cs := ckptState()
	cs.Pending = nil
	cs.BcastSeq = 0
	w.Checkpoint(cs, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	w.OrderAppend(labelB, "b", nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	c2 := w.EndOffset()
	cs2 := cs
	cs2.Order = []types.Label{labelA, labelB}
	cs2.Content = map[types.Label]types.Value{labelA: "a", labelB: "b"}
	w.Checkpoint(cs2, nil)
	// Half the write latency: C2 is under the head, not durable.
	if err := s.Run(s.Now().Add(time.Millisecond / 2)); err != nil {
		t.Fatal(err)
	}
	st.Drop()
	if st.Base() != 0 {
		t.Fatalf("torn checkpoint compacted the log: Base = %d", st.Base())
	}
	snap := Replay(st.Contents())
	if snap.Truncated == "" || snap.TruncatedAt != c2 {
		t.Fatalf("TruncatedAt = %d (%q), want the torn checkpoint at %d",
			snap.TruncatedAt, snap.Truncated, c2)
	}
	// Fallback: the first checkpoint plus the interlude survives.
	if snap.Checkpoints != 1 || len(snap.Order) != 2 {
		t.Errorf("fallback state: checkpoints=%d order=%v", snap.Checkpoints, snap.Order)
	}
}

// TestCheckpointCompaction arms compaction and verifies the second
// checkpoint's durability discards the prefix before the first — and
// that the retained (rebased) log still replays to the same state.
func TestCheckpointCompaction(t *testing.T) {
	s := sim.New(1)
	st := storage.New(s, 0)
	w := New(st)
	w.SetCompact(true)
	w.View(testView, nil)
	w.Establish([]types.Label{labelA}, 1, testView.ID, nil)
	w.Bcast(1, "a", nil)
	w.Label(1, labelA, "a", nil)
	w.Deliver(1, labelA, 1, 1, "a", nil)

	c1 := w.EndOffset()
	w.Checkpoint(ckptState(), nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	// First checkpoint: no previous one, nothing to discard.
	if st.Base() != 0 {
		t.Fatalf("Base after first checkpoint = %d, want 0", st.Base())
	}

	w.OrderAppend(labelB, "b", nil)
	cs2 := ckptState()
	cs2.Order = []types.Label{labelA, labelB}
	cs2.Content = map[types.Label]types.Value{labelA: "a", labelB: "b"}
	c2 := w.EndOffset()
	w.Checkpoint(cs2, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint durable: prefix before the FIRST checkpoint is
	// gone, so the retained log still starts at a valid checkpoint.
	if st.Base() != c1 {
		t.Fatalf("Base after second checkpoint = %d, want %d", st.Base(), c1)
	}
	snap := Replay(st.Contents())
	if snap.Truncated != "" {
		t.Fatalf("rebased log truncated: %s", snap.Truncated)
	}
	if snap.Checkpoints != 2 || len(snap.Order) != 2 {
		t.Errorf("rebased replay: checkpoints=%d order=%v", snap.Checkpoints, snap.Order)
	}
	// Offsets within the retained image; Resync maps them back to
	// logical ones.
	if got := snap.CheckpointAt + st.Base(); got != c2 {
		t.Errorf("latest checkpoint at logical %d, want %d", got, c2)
	}
}
