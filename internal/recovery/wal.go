// Package recovery gives each processor a write-ahead log over
// internal/storage so that an amnesia crash (failures.Amnesia — stop plus
// loss of all volatile state) can be survived: the stack appends a record
// for every VStoTO-critical state change as the protocol runs, and on
// restart Replay folds the durable records back into a consistent
// Snapshot that the stack uses to rebuild the processor before it rejoins
// through the ordinary membership protocol.
//
// What is persisted, and why exactly this set:
//
//   - views (View) and establishments (Establish): the membership floor —
//     a restarted processor must never install or propose a view at or
//     below one it already installed (the VS checker's local monotonicity).
//     View records are write-ahead: the stack gates installation on the
//     record's completion (membership.Former.Gate), so an installation is
//     never announced unless its record is durable and the restored floor
//     always covers every announced installation. Establishment records
//     keep order/nextconfirm/highprimary at the last state exchange, so
//     representative selection after a whole-group crash cannot regress
//     the confirmed prefix;
//   - primary-view order appends (OrderAppend): between establishments the
//     order grows one label at a time; without these the restored order
//     could be shorter than a peer's persisted delivered prefix, and a
//     later establishment from this processor's summary would reorder it;
//   - client submissions (Bcast) and label assignments (Label): every
//     value is durable at its origin, so a value that existed only in
//     wiped volatile state elsewhere still reaches the total order after
//     the origin restarts;
//   - deliveries (Deliver): written *before* the client sees the value
//     (the stack releases a delivery only from the record's completion
//     callback), so the persisted delivery prefix equals the delivered
//     prefix exactly — the invariant props.CheckRejoinSafety pins;
//   - recovery markers (Recovered): written once per restart, before the
//     rebuilt node takes any step, and waited on for durability. Counting
//     them yields a strictly increasing incarnation number that partitions
//     the VS send-sequence space, so MsgIDs never repeat across
//     incarnations (the VS checker rejects duplicate gpsnd identifiers)
//     no matter how far the wiped incarnation's volatile counter ran ahead
//     of stable storage.
//
// Records are length-prefixed and CRC-checksummed; Replay truncates at the
// first torn or corrupt record, which together with write-ahead delivery
// gating makes a torn tail safe: whatever was lost had not been released
// to any client at this processor.
package recovery

import (
	"encoding/binary"
	"hash/crc32"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// Record tags.
const (
	recView byte = iota + 1
	recEstablish
	recOrderAppend
	recBcast
	recLabel
	recDeliver
	recRecovered
	recCheckpoint
	// recBatch is a group-commit batch: its payload is a sequence of
	// [u32 len | record payload] sub-records sharing the outer frame's CRC.
	// The batch is the atom of durability — a tear anywhere inside it fails
	// the outer checksum and Replay discards the batch whole, exactly as it
	// discards a torn single record. That is what keeps write-ahead gating
	// sound under coalescing: all of a batch's completion callbacks ride the
	// one covering storage write, so either every record of the batch is
	// durable and acknowledged, or none of its effects were acknowledged.
	recBatch
)

// frameHeader is the per-record overhead: u32 payload length + u32 CRC.
const frameHeader = 8

// WAL is one processor's write-ahead log on a storage device. All
// appenders are asynchronous: done (which may be nil) fires when the
// record is durable, and never fires if the owner crashes first (the
// storage layer's Drop suppresses pending completions).
type WAL struct {
	st *storage.Stable

	// enc is the reusable record-payload scratch: frame copies the payload
	// into the outgoing frame buffer synchronously, so the scratch is free
	// again by the time an appender returns.
	enc codec.Writer
	// frames recycles completed frame buffers. A frame buffer is owned by
	// the storage layer until the record is durable (the device copies it
	// into the disk image at completion), so recycling happens in the
	// completion wrapper; buffers lost to a crash (Drop suppresses
	// completions) are simply abandoned to the GC.
	frames [][]byte

	// Checkpoint bookkeeping, all in logical log offsets (0 = the first
	// byte the log ever held; compaction never renumbers). endOff is the
	// offset the next record will be framed at; lastCkpt/prevCkpt are the
	// start offsets of the two most recent checkpoint records (-1 when
	// absent); sinceCkpt counts bytes framed since the last checkpoint.
	// Offsets track *enqueued* records and run ahead of durability; a
	// crash discards the queue, and Resync re-derives them from the
	// replayed image.
	compact  bool
	endOff   int
	lastCkpt int
	prevCkpt int

	// Group-commit state (SetGroupCommit). Records appended while a batch
	// write is outstanding coalesce into the open batch; the batch is
	// sealed into one storage write (one λ covering every record in it)
	// when the head frees up, or when the commit window expires on an idle
	// device. batch is the open batch buffer (outer frame header reserved,
	// recBatch tag, then sub-records); batchDones fire in append order from
	// the covering write's completion; flights counts batch writes handed
	// to the device whose completions are still pending; armed marks a
	// pending window timer.
	gcOn       bool
	gcWindow   time.Duration
	batch      []byte
	batchDones []func()
	batchRecs  int
	flights    int
	armed      bool

	// Observability handles (Instrument; nil when disabled).
	mRecords   *obs.Counter
	mBytes     *obs.Counter
	mBatches   *obs.Counter
	mBatchRecs *obs.Counter
}

// New wraps a storage device as a WAL.
func New(st *storage.Stable) *WAL { return &WAL{st: st, lastCkpt: -1, prevCkpt: -1} }

// SetCompact enables physical compaction: when a checkpoint record
// becomes durable, the log prefix before the *previous* checkpoint is
// discarded (storage.TruncatePrefix). Two generations are always
// retained, so a latest checkpoint that later proves corrupt still falls
// back to the previous one plus every record after it.
func (w *WAL) SetCompact(on bool) { w.compact = on }

// SetGroupCommit turns on group commit: records appended while a batch
// write is outstanding coalesce into one covering storage write instead of
// queueing as individual writes behind the device's single head. window,
// when positive, additionally delays the first write of a batch on an idle
// device by that long, trading latency for larger batches; window 0 is
// pure pipelined coalescing — the first record writes immediately and
// batches form only behind the in-flight write, so an idle, lightly loaded
// log pays no extra latency at all.
//
// Completion callbacks still fire only once the covering write is durable,
// in append order, so every write-ahead gate in the stack (view installs,
// delivery release, recovery markers) keeps its meaning. On disk a batch
// is a single recBatch frame whose CRC covers all its records: a torn
// batch is discarded whole by Replay, which is what preserves the
// "acknowledged ⇔ durable" equivalence batch-wide.
func (w *WAL) SetGroupCommit(window time.Duration) {
	w.gcOn = true
	if window < 0 {
		window = 0
	}
	w.gcWindow = window
}

// EndOffset returns the logical offset at which the next record will be
// framed (enqueued records included).
func (w *WAL) EndOffset() int { return w.endOff }

// SinceCheckpoint returns the bytes framed since the last checkpoint was
// enqueued (since log start when none) — the checkpoint trigger's input.
func (w *WAL) SinceCheckpoint() int {
	if w.lastCkpt < 0 {
		return w.endOff
	}
	return w.endOff - w.lastCkpt
}

// Resync re-derives the offset bookkeeping after a crash or at a boot
// over an existing image: end is the logical end of the retained log
// (the torn tail already discarded), lastCkpt/prevCkpt the logical start
// offsets of the two most recent valid checkpoint records (-1 when
// absent), as replayed.
func (w *WAL) Resync(end, lastCkpt, prevCkpt int) {
	w.endOff = end
	w.lastCkpt = lastCkpt
	w.prevCkpt = prevCkpt
	// A crash abandoned whatever batch was open or in flight: the device's
	// Drop suppressed every pending completion, so the outstanding-write
	// accounting must be reset or the new incarnation's appends would wait
	// forever for a completion that never comes. A window timer armed
	// before the crash may still fire; its flush is harmless (it seals the
	// new incarnation's open batch at worst early, never out of order).
	w.batch = nil
	w.batchDones = nil
	w.batchRecs = 0
	w.flights = 0
	w.armed = false
}

// Storage returns the underlying device.
func (w *WAL) Storage() *storage.Stable { return w.st }

// Instrument binds the wal.records / wal.bytes counters from the registry
// (nil disables at zero cost) and instruments the underlying device.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mRecords = reg.Counter("wal.records")
	w.mBytes = reg.Counter("wal.bytes")
	w.mBatches = reg.Counter("wal.batches")
	w.mBatchRecs = reg.Counter("wal.batch_records")
	w.st.Instrument(reg)
}

// record resets and returns the reusable payload scratch. Every appender
// builds its payload here; append then copies it into a frame buffer
// before returning, so one scratch per WAL suffices.
func (w *WAL) record() *codec.Writer {
	w.enc.Reset()
	return &w.enc
}

// frame wraps a record payload as [len | crc32(payload) | payload],
// appending into buf.
func frame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

func (w *WAL) append(payload []byte, done func()) {
	if w.gcOn {
		w.appendBatched(payload, done)
		return
	}
	var buf []byte
	if k := len(w.frames); k > 0 {
		buf = w.frames[k-1][:0]
		w.frames[k-1] = nil
		w.frames = w.frames[:k-1]
	}
	framed := frame(buf, payload)
	w.endOff += len(framed)
	w.mRecords.Inc()
	w.mBytes.Add(int64(len(framed)))
	w.st.Append(framed, func() {
		// Durable: the device has copied the bytes into its disk image,
		// so the frame buffer is free to be reused by a later record.
		w.frames = append(w.frames, framed)
		if done != nil {
			done()
		}
	})
}

// appendBatched adds the record to the open group-commit batch, opening
// one if needed, and decides when the batch gets written: immediately if
// the device head is idle and no commit window is pending, at window
// expiry if one is armed, or when the outstanding batch write completes
// (flush from the completion callback) otherwise — the classic
// group-commit discipline.
func (w *WAL) appendBatched(payload []byte, done func()) {
	if len(w.batch) == 0 {
		var buf []byte
		if k := len(w.frames); k > 0 {
			buf = w.frames[k-1][:0]
			w.frames[k-1] = nil
			w.frames = w.frames[:k-1]
		}
		// Reserve the outer frame header (filled in by seal) and tag the
		// payload as a batch.
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		buf = append(buf, recBatch)
		w.batch = buf
		w.endOff += frameHeader + 1
		w.mBytes.Add(frameHeader + 1)
	}
	w.batch = binary.LittleEndian.AppendUint32(w.batch, uint32(len(payload)))
	w.batch = append(w.batch, payload...)
	w.endOff += 4 + len(payload)
	w.mRecords.Inc()
	w.mBytes.Add(int64(4 + len(payload)))
	w.batchDones = append(w.batchDones, done)
	w.batchRecs++
	if w.flights == 0 && !w.armed {
		if w.gcWindow > 0 {
			w.armed = true
			w.st.Schedule(w.gcWindow, func() {
				w.armed = false
				w.flush()
			})
		} else {
			w.flush()
		}
	}
}

// flush seals the open batch into a storage write, unless a batch write is
// already outstanding — then the completion callback re-flushes, and the
// records accumulated meanwhile ride the next covering write together.
func (w *WAL) flush() {
	if w.flights > 0 {
		return
	}
	w.seal()
}

// seal finalizes the open batch's outer frame (length + CRC over the whole
// batch payload, so any tear inside the batch voids it whole) and hands it
// to the device. The completion recycles the buffer and fires the batch's
// done callbacks in append order — only now are the records durable — then
// flushes whatever batch formed behind this write.
func (w *WAL) seal() {
	if len(w.batch) == 0 {
		return
	}
	buf, dones, recs := w.batch, w.batchDones, w.batchRecs
	w.batch, w.batchDones, w.batchRecs = nil, nil, 0
	payload := buf[frameHeader:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	w.flights++
	w.mBatches.Inc()
	w.mBatchRecs.Add(int64(recs))
	w.st.Append(buf, func() {
		w.frames = append(w.frames, buf)
		// The flight stays accounted while the dones run: a done that
		// appends (delivery release cascading into the next record) must
		// see an outstanding write and coalesce, not trigger a write per
		// record. The flights > 0 guard covers a Resync racing in from a
		// done callback, which resets the accounting under us.
		for _, d := range dones {
			if d != nil {
				d()
			}
		}
		if w.flights > 0 {
			w.flights--
		}
		w.flush()
	})
}

// View records an installed view.
func (w *WAL) View(v types.View, done func()) {
	x := w.record()
	x.U8(recView)
	x.View(v)
	w.append(x.Data(), done)
}

// Establish records the outcome of a state exchange: the established
// order, the new nextconfirm, and the new highprimary. It is also written
// once at WAL creation for processors that start inside the initial view,
// so the pre-first-view-change state is durable too.
func (w *WAL) Establish(order []types.Label, next int, high types.ViewID, done func()) {
	x := w.record()
	x.U8(recEstablish)
	x.U32(uint32(len(order)))
	for _, l := range order {
		x.Label(l)
	}
	x.I32(next)
	x.ViewID(high)
	w.append(x.Data(), done)
}

// OrderAppend records one label (with its value) appended to the order in
// an established primary view.
func (w *WAL) OrderAppend(l types.Label, a types.Value, done func()) {
	x := w.record()
	x.U8(recOrderAppend)
	x.Label(l)
	x.Str(string(a))
	w.append(x.Data(), done)
}

// Bcast records a client submission: the origin-local sequence number and
// the value.
func (w *WAL) Bcast(seq int, a types.Value, done func()) {
	x := w.record()
	x.U8(recBcast)
	x.I32(seq)
	x.Str(string(a))
	w.append(x.Data(), done)
}

// Label records the label assigned to the submission with the given
// origin-local sequence number.
func (w *WAL) Label(seq int, l types.Label, a types.Value, done func()) {
	x := w.record()
	x.U8(recLabel)
	x.I32(seq)
	x.Label(l)
	x.Str(string(a))
	w.append(x.Data(), done)
}

// Deliver records the release of order position pos (1-based) to the
// client: the label, its origin and the origin's submission index, and the
// value. The stack must perform the client-visible delivery only from this
// record's completion callback (write-ahead), so that the durable delivery
// prefix never lags the delivered one.
func (w *WAL) Deliver(pos int, l types.Label, from types.ProcID, fromSeq int, a types.Value, done func()) {
	x := w.record()
	x.U8(recDeliver)
	x.I32(pos)
	x.Label(l)
	x.I32(int(from))
	x.I32(fromSeq)
	x.Str(string(a))
	w.append(x.Data(), done)
}

// Recovered records the start of incarnation inc after an amnesia crash.
// The restarting stack writes it first and starts the rebuilt node only
// from this record's completion callback, so every step the new
// incarnation takes is preceded by a durable marker — which makes the
// marker count a reliable incarnation number even across repeated crashes
// during recovery.
func (w *WAL) Recovered(inc int, done func()) {
	x := w.record()
	x.U8(recRecovered)
	x.I32(inc)
	w.append(x.Data(), done)
}
