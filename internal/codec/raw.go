package codec

import "repro/internal/types"

// Writer exposes the wire format's low-level primitives so other packages
// (the recovery WAL) can build length-checked encodings from the same
// building blocks as the network payloads: fixed-width little-endian
// integers, length-prefixed strings, and the shared types vocabulary.
type Writer struct{ w writer }

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Data returns the bytes written so far. The slice is the Writer's
// backing buffer; append no more after reading it.
func (x *Writer) Data() []byte { return x.w.buf }

// Reset empties the Writer, keeping its backing buffer for reuse — the
// allocation-free path for encoders that frame many records (the WAL).
// The caller must be done with every slice previously returned by Data.
func (x *Writer) Reset() { x.w.buf = x.w.buf[:0] }

// U8 writes one byte.
func (x *Writer) U8(v byte) { x.w.u8(v) }

// U32 writes a fixed-width 32-bit unsigned integer.
func (x *Writer) U32(v uint32) { x.w.u32(v) }

// I64 writes a fixed-width 64-bit signed integer.
func (x *Writer) I64(v int64) { x.w.i64(v) }

// I32 writes an int as a fixed-width 32-bit signed integer.
func (x *Writer) I32(v int) { x.w.i32(v) }

// Str writes a length-prefixed string.
func (x *Writer) Str(s string) { x.w.str(s) }

// ViewID writes a view identifier.
func (x *Writer) ViewID(id types.ViewID) { putViewID(&x.w, id) }

// View writes a view (identifier plus membership).
func (x *Writer) View(v types.View) { putView(&x.w, v) }

// Label writes a VStoTO label.
func (x *Writer) Label(l types.Label) { putLabel(&x.w, l) }

// Reader decodes buffers produced with Writer. Errors accumulate: after
// the first failure every further read returns a zero value, and Err
// reports the failure (wrapping ErrMalformed). Truncated or oversized
// length fields never panic.
type Reader struct{ r reader }

// NewReader reads from buf.
func NewReader(buf []byte) *Reader { return &Reader{r: reader{buf: buf}} }

// Err returns the first decoding failure, or nil.
func (x *Reader) Err() error { return x.r.err }

// Rest returns the number of unread bytes.
func (x *Reader) Rest() int { return len(x.r.buf) - x.r.off }

// U8 reads one byte.
func (x *Reader) U8() byte { return x.r.u8() }

// U32 reads a 32-bit unsigned integer.
func (x *Reader) U32() uint32 { return x.r.u32() }

// I64 reads a 64-bit signed integer.
func (x *Reader) I64() int64 { return x.r.i64() }

// I32 reads a 32-bit signed integer as an int.
func (x *Reader) I32() int { return x.r.i32() }

// Str reads a length-prefixed string.
func (x *Reader) Str() string { return x.r.str() }

// ViewID reads a view identifier.
func (x *Reader) ViewID() types.ViewID { return getViewID(&x.r) }

// View reads a view.
func (x *Reader) View() types.View { return getView(&x.r) }

// Label reads a VStoTO label.
func (x *Reader) Label() types.Label { return getLabel(&x.r) }
