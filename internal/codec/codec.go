// Package codec serializes every payload that crosses the simulated
// network — membership packets, tokens, probes, and the VStoTO messages
// nested inside tokens — to a compact binary wire format and back.
//
// Its purpose is honesty: with the transcode hook installed (see
// stack.Options.Wire), no Go pointer survives a network hop, so the
// protocols cannot accidentally depend on shared in-memory state between
// processors. Every field that matters must round-trip through bytes, and
// the tests assert exact round-trip fidelity for every wire type.
//
// Format: one type-tag byte, then fields with fixed-width little-endian
// integers and length-prefixed byte strings. Maps are written in sorted
// key order so encodings are deterministic.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/check"
	"repro/internal/membership"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// ErrMalformed is wrapped by every decoding failure, so callers can
// distinguish malformed input (errors.Is(err, ErrMalformed)) from
// programming errors without matching message text.
var ErrMalformed = errors.New("malformed input")

// Type tags.
const (
	tagLabeledValue byte = iota + 1
	tagSummary
	tagCall
	tagAccept
	tagNewview
	tagToken
	tagProbe
	tagString // raw string payloads (used by vsimpl-level tests)
)

type writer struct{ buf []byte }

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) i32(v int)    { w.u32(uint32(int32(v))) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: truncated %s at offset %d: %w", what, r.off, ErrMalformed)
	}
}
func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) i32() int   { return int(int32(r.u32())) }
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}
func (r *reader) str() string { return string(r.bytes()) }

// --- field helpers --------------------------------------------------------

func putViewID(w *writer, id types.ViewID) {
	w.i64(id.Epoch)
	w.i32(int(id.Proc))
}

func getViewID(r *reader) types.ViewID {
	return types.ViewID{Epoch: r.i64(), Proc: types.ProcID(r.i32())}
}

func putProcSet(w *writer, s types.ProcSet) {
	members := s.Members()
	w.u32(uint32(len(members)))
	for _, p := range members {
		w.i32(int(p))
	}
}

func getProcSet(r *reader) types.ProcSet {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.buf) {
		r.fail("procset")
		return types.ProcSet{}
	}
	ids := make([]types.ProcID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, types.ProcID(r.i32()))
	}
	return types.NewProcSet(ids...)
}

func putView(w *writer, v types.View) {
	putViewID(w, v.ID)
	putProcSet(w, v.Set)
}

func getView(r *reader) types.View {
	return types.View{ID: getViewID(r), Set: getProcSet(r)}
}

func putLabel(w *writer, l types.Label) {
	putViewID(w, l.ID)
	w.i32(l.Seqno)
	w.i32(int(l.Origin))
}

func getLabel(r *reader) types.Label {
	return types.Label{ID: getViewID(r), Seqno: r.i32(), Origin: types.ProcID(r.i32())}
}

func putMsgID(w *writer, id check.MsgID) {
	w.i32(int(id.Sender))
	// Seq is 64-bit on the wire: recovered incarnations resume sending
	// above an incarnation-scoped floor (inc<<32), so a 32-bit field
	// would silently alias post-recovery message IDs onto pre-crash ones.
	w.i64(int64(id.Seq))
}

func getMsgID(r *reader) check.MsgID {
	return check.MsgID{Sender: types.ProcID(r.i32()), Seq: int(r.i64())}
}

func putSummary(w *writer, x *vstoto.Summary) {
	labels := make([]types.Label, 0, len(x.Con))
	for l := range x.Con {
		labels = append(labels, l)
	}
	types.SortLabels(labels)
	w.u32(uint32(len(labels)))
	for _, l := range labels {
		putLabel(w, l)
		w.str(string(x.Con[l]))
	}
	w.u32(uint32(len(x.Ord)))
	for _, l := range x.Ord {
		putLabel(w, l)
	}
	w.i32(x.Next)
	putViewID(w, x.High)
}

func getSummary(r *reader) *vstoto.Summary {
	nCon := int(r.u32())
	if r.err != nil || nCon < 0 || nCon > len(r.buf) {
		r.fail("summary con")
		return nil
	}
	con := make(map[types.Label]types.Value, nCon)
	for i := 0; i < nCon; i++ {
		l := getLabel(r)
		con[l] = types.Value(r.str())
	}
	nOrd := int(r.u32())
	if r.err != nil || nOrd < 0 || nOrd > len(r.buf) {
		r.fail("summary ord")
		return nil
	}
	ord := make([]types.Label, 0, nOrd)
	for i := 0; i < nOrd; i++ {
		ord = append(ord, getLabel(r))
	}
	return &vstoto.Summary{Con: con, Ord: ord, Next: r.i32(), High: getViewID(r)}
}

// --- top-level encode/decode ----------------------------------------------

// Encode serializes a wire payload. It returns an error for types the wire
// format does not know. The returned slice is freshly allocated and owned
// by the caller; hot paths that can reuse a buffer should prefer
// AppendEncode or Roundtrip (which encodes through a pooled scratch).
func Encode(payload any) ([]byte, error) {
	return AppendEncode(nil, payload)
}

// AppendEncode serializes a wire payload appending to dst (which may be
// nil) and returns the extended buffer, allowing encode buffers to be
// reused across calls on a hot path.
func AppendEncode(dst []byte, payload any) ([]byte, error) {
	w := writer{buf: dst}
	if err := encodeInto(&w, payload); err != nil {
		return dst, err
	}
	return w.buf, nil
}

func encodeInto(w *writer, payload any) error {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		w.u8(tagLabeledValue)
		putLabel(w, m.L)
		w.str(string(m.A))
	case *vstoto.Summary:
		w.u8(tagSummary)
		putSummary(w, m)
	case membership.CallPkt:
		w.u8(tagCall)
		putViewID(w, m.ID)
	case membership.AcceptPkt:
		w.u8(tagAccept)
		putViewID(w, m.ID)
	case membership.NewviewPkt:
		w.u8(tagNewview)
		putView(w, m.V)
	case *vsimpl.TokenPkt:
		w.u8(tagToken)
		putView(w, m.View)
		w.i32(m.Base)
		w.u32(uint32(len(m.Msgs)))
		for _, tm := range m.Msgs {
			putMsgID(w, tm.ID)
			w.i32(int(tm.From))
			if err := encodeInto(w, tm.Payload); err != nil {
				return err
			}
		}
		procs := make([]types.ProcID, 0, len(m.Delivered))
		for p := range m.Delivered {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		w.u32(uint32(len(procs)))
		for _, p := range procs {
			w.i32(int(p))
			w.i32(m.Delivered[p])
		}
	case vsimpl.ProbePkt:
		w.u8(tagProbe)
		putViewID(w, m.ViewID)
	case string:
		w.u8(tagString)
		w.str(m)
	default:
		return fmt.Errorf("codec: unsupported wire type %T", payload)
	}
	return nil
}

// Decode parses a wire payload. Any failure — truncation, oversized
// length fields, unknown tags, trailing bytes — is reported as an error
// wrapping ErrMalformed; malformed input never panics.
func Decode(buf []byte) (any, error) {
	r := &reader{buf: buf}
	out := decodeFrom(r, 0)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("codec: %d trailing bytes: %w", len(buf)-r.off, ErrMalformed)
	}
	return out, nil
}

func decodeFrom(r *reader, depth int) any {
	switch tag := r.u8(); tag {
	case tagLabeledValue:
		return vstoto.LabeledValue{L: getLabel(r), A: types.Value(r.str())}
	case tagSummary:
		return getSummary(r)
	case tagCall:
		return membership.CallPkt{ID: getViewID(r)}
	case tagAccept:
		return membership.AcceptPkt{ID: getViewID(r)}
	case tagNewview:
		return membership.NewviewPkt{V: getView(r)}
	case tagToken:
		if depth > 0 {
			// Tokens carry client payloads, never other tokens; a nested
			// token tag only appears in crafted or corrupted input, and
			// rejecting it bounds the decoder's recursion.
			if r.err == nil {
				r.err = fmt.Errorf("codec: nested token at depth %d: %w", depth, ErrMalformed)
			}
			return nil
		}
		tok := &vsimpl.TokenPkt{View: getView(r)}
		tok.Base = r.i32()
		nMsgs := int(r.u32())
		if r.err != nil || nMsgs < 0 || nMsgs > len(r.buf) {
			r.fail("token msgs")
			return nil
		}
		tok.Msgs = make([]vsimpl.TokenMsg, 0, nMsgs)
		for i := 0; i < nMsgs; i++ {
			tm := vsimpl.TokenMsg{ID: getMsgID(r), From: types.ProcID(r.i32())}
			tm.Payload = decodeFrom(r, depth+1)
			if r.err != nil {
				return nil
			}
			tok.Msgs = append(tok.Msgs, tm)
		}
		nDel := int(r.u32())
		if r.err != nil || nDel < 0 || nDel > len(r.buf) {
			r.fail("token delivered")
			return nil
		}
		tok.Delivered = make(map[types.ProcID]int, nDel)
		for i := 0; i < nDel; i++ {
			p := types.ProcID(r.i32())
			tok.Delivered[p] = r.i32()
		}
		return tok
	case tagProbe:
		return vsimpl.ProbePkt{ViewID: getViewID(r)}
	case tagString:
		return r.str()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("codec: unknown tag %d: %w", tag, ErrMalformed)
		}
		return nil
	}
}

// encodePool recycles Roundtrip's scratch buffers. Safe across concurrent
// simulations (the sweep engine runs many at once); each Roundtrip holds a
// buffer only for the duration of the call.
var encodePool = sync.Pool{
	New: func() any { return &writer{buf: make([]byte, 0, 512)} },
}

// Roundtrip encodes then decodes, returning a deep copy that shares no
// memory with the input — the transcode hook for net.Config. The encode
// side runs through a pooled scratch buffer: Decode never aliases its
// input (every decoded string and value is copied out), so the buffer can
// be recycled as soon as the call returns.
func Roundtrip(payload any) (any, error) {
	w := encodePool.Get().(*writer)
	w.buf = w.buf[:0]
	defer encodePool.Put(w)
	if err := encodeInto(w, payload); err != nil {
		return nil, err
	}
	return Decode(w.buf)
}
