package codec

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/membership"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

func roundtrip(t *testing.T, payload any) any {
	t.Helper()
	out, err := Roundtrip(payload)
	if err != nil {
		t.Fatalf("Roundtrip(%T): %v", payload, err)
	}
	return out
}

func gidc(epoch int64, proc types.ProcID) types.ViewID {
	return types.ViewID{Epoch: epoch, Proc: proc}
}

func TestLabeledValueRoundTrip(t *testing.T) {
	in := vstoto.LabeledValue{
		L: types.Label{ID: gidc(3, 1), Seqno: 7, Origin: 2},
		A: "payload with \x00 bytes and unicode ⊥",
	}
	out := roundtrip(t, in)
	if out != in {
		t.Fatalf("got %v, want %v", out, in)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	la := types.Label{ID: gidc(1, 0), Seqno: 1, Origin: 0}
	lb := types.Label{ID: gidc(2, 1), Seqno: 3, Origin: 1}
	in := &vstoto.Summary{
		Con:  map[types.Label]types.Value{la: "a", lb: "b"},
		Ord:  []types.Label{lb, la},
		Next: 2,
		High: gidc(2, 1),
	}
	out := roundtrip(t, in).(*vstoto.Summary)
	if out == in {
		t.Fatal("round trip returned the same pointer")
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestEmptySummaryRoundTrip(t *testing.T) {
	in := &vstoto.Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.Bottom}
	out := roundtrip(t, in).(*vstoto.Summary)
	if len(out.Con) != 0 || len(out.Ord) != 0 || out.Next != 1 || !out.High.IsBottom() {
		t.Fatalf("got %+v", out)
	}
}

func TestMembershipPacketsRoundTrip(t *testing.T) {
	for _, in := range []any{
		membership.CallPkt{ID: gidc(9, 2)},
		membership.AcceptPkt{ID: gidc(9, 2)},
		membership.NewviewPkt{V: types.View{ID: gidc(9, 2), Set: types.NewProcSet(0, 2, 5)}},
		vsimpl.ProbePkt{ViewID: types.Bottom},
		"raw string payload",
	} {
		out, err := Roundtrip(in)
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("%T: got %v, want %v", in, out, in)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	la := types.Label{ID: gidc(2, 0), Seqno: 1, Origin: 0}
	in := &vsimpl.TokenPkt{
		View: types.View{ID: gidc(2, 0), Set: types.NewProcSet(0, 1, 2)},
		Msgs: []vsimpl.TokenMsg{
			{ID: check.MsgID{Sender: 0, Seq: 1}, From: 0, Payload: vstoto.LabeledValue{L: la, A: "v"}},
			{ID: check.MsgID{Sender: 1, Seq: 1}, From: 1, Payload: &vstoto.Summary{
				Con: map[types.Label]types.Value{la: "v"}, Ord: []types.Label{la}, Next: 1, High: gidc(1, 0),
			}},
			{ID: check.MsgID{Sender: 2, Seq: 4}, From: 2, Payload: "plain"},
		},
		Delivered: map[types.ProcID]int{0: 3, 1: 2, 2: 0},
	}
	out := roundtrip(t, in).(*vsimpl.TokenPkt)
	if out == in {
		t.Fatal("same pointer after round trip")
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v\nwant %+v", out, in)
	}
	// Mutating the copy must not affect the original (deep copy).
	out.Delivered[0] = 99
	out.Msgs[0].Payload = "clobbered"
	if in.Delivered[0] != 3 {
		t.Fatal("shared Delivered map")
	}
	if _, ok := in.Msgs[0].Payload.(vstoto.LabeledValue); !ok {
		t.Fatal("shared Msgs slice")
	}
}

func TestUnsupportedTypeErrors(t *testing.T) {
	if _, err := Encode(struct{ X int }{1}); err == nil {
		t.Fatal("unsupported type encoded")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(vstoto.LabeledValue{L: types.Label{ID: gidc(1, 0), Seqno: 1, Origin: 0}, A: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Unknown tag.
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// Trailing garbage.
	if _, err := Decode(append(b, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Maps are serialized in sorted order: two structurally equal
	// summaries built in different insertion orders encode identically.
	la := types.Label{ID: gidc(1, 0), Seqno: 1, Origin: 0}
	lb := types.Label{ID: gidc(1, 0), Seqno: 2, Origin: 1}
	x1 := &vstoto.Summary{Con: map[types.Label]types.Value{la: "a", lb: "b"}, Next: 1}
	x2 := &vstoto.Summary{Con: map[types.Label]types.Value{lb: "b", la: "a"}, Next: 1}
	b1, _ := Encode(x1)
	b2, _ := Encode(x2)
	if string(b1) != string(b2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestLabeledValueQuickRoundTrip(t *testing.T) {
	f := func(epoch int64, proc, origin uint8, seq uint16, val string) bool {
		in := vstoto.LabeledValue{
			L: types.Label{
				ID:     types.ViewID{Epoch: epoch, Proc: types.ProcID(proc)},
				Seqno:  int(seq),
				Origin: types.ProcID(origin),
			},
			A: types.Value(val),
		}
		out, err := Roundtrip(in)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRoundtripDoesNotAliasScratch pins the pooled-buffer contract: no
// decoded structure may reference the (recycled) encode scratch. Two
// interleaved roundtrips reusing the same pooled buffer must leave the
// first result intact.
func TestRoundtripDoesNotAliasScratch(t *testing.T) {
	first := vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 1, Origin: 0},
		A: "first-payload-value-AAAAAAAAAAAAAAAA",
	}
	got1, err := Roundtrip(first)
	if err != nil {
		t.Fatal(err)
	}
	// A second roundtrip reuses (and overwrites) the pooled scratch.
	if _, err := Roundtrip(vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 2, Origin: 1},
		A: "second-payload-value-BBBBBBBBBBBBBBB",
	}); err != nil {
		t.Fatal(err)
	}
	if lv := got1.(vstoto.LabeledValue); lv.A != first.A || lv.L != first.L {
		t.Fatalf("first decode mutated by second roundtrip: %+v", lv)
	}
}

// TestRoundtripConcurrent exercises the encode pool from many goroutines
// (the sweep engine's access pattern); run under -race this pins pool
// safety across concurrent simulations.
func TestRoundtripConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in := vstoto.LabeledValue{
					L: types.Label{ID: types.G0(), Seqno: i, Origin: types.ProcID(g)},
					A: types.Value(fmt.Sprintf("g%d-v%d", g, i)),
				}
				out, err := Roundtrip(in)
				if err != nil {
					t.Error(err)
					return
				}
				if lv := out.(vstoto.LabeledValue); lv != in {
					t.Errorf("roundtrip mismatch: %+v != %+v", lv, in)
					return
				}
			}
		}()
	}
	wg.Wait()
}
