package codec

import (
	"testing"

	"repro/internal/check"
	"repro/internal/membership"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder; it must reject
// garbage with an error — never panic, never hang.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 1, Origin: 0}, A: "seed",
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	sum, _ := Encode(&vstoto.Summary{Con: map[types.Label]types.Value{}, Next: 1})
	f.Add(sum)
	// One valid encoding of every wire type, so the fuzzer starts inside
	// each branch of the decoder rather than having to find the tags.
	v := types.View{ID: types.ViewID{Epoch: 3, Proc: 1}, Set: types.RangeProcSet(3)}
	valid := [][]byte{seed, sum}
	for _, pkt := range []any{
		membership.CallPkt{ID: v.ID},
		membership.AcceptPkt{ID: v.ID},
		membership.NewviewPkt{V: v},
		vsimpl.ProbePkt{ViewID: v.ID},
		&vsimpl.TokenPkt{
			View: v,
			Base: 2,
			Msgs: []vsimpl.TokenMsg{{
				ID:   check.MsgID{Sender: 1, Seq: 3},
				From: 1,
				Payload: vstoto.LabeledValue{
					L: types.Label{ID: v.ID, Seqno: 1, Origin: 1}, A: "tok",
				},
			}},
			Delivered: map[types.ProcID]int{0: 3, 1: 2},
		},
		"hello",
	} {
		b, err := Encode(pkt)
		if err != nil {
			f.Fatalf("seed %T does not encode: %v", pkt, err)
		}
		f.Add(b)
		valid = append(valid, b)
	}
	// Near-valid corpus: every strict truncation and a spread of single-bit
	// flips of each valid encoding — the exact shapes a torn or corrupted
	// stable-storage tail hands the decoder.
	for _, b := range valid {
		for n := 0; n < len(b); n++ {
			f.Add(b[:n])
		}
		for off := 0; off < len(b); off++ {
			for _, bit := range []uint{0, 3, 7} {
				mut := append([]byte(nil), b...)
				mut[off] ^= 1 << bit
				f.Add(mut)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same value.
		b2, err := Encode(out)
		if err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", out, err)
		}
		if _, err := Decode(b2); err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
	})
}
