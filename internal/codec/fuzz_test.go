package codec

import (
	"testing"

	"repro/internal/types"
	"repro/internal/vstoto"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder; it must reject
// garbage with an error — never panic, never hang.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 1, Origin: 0}, A: "seed",
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	sum, _ := Encode(&vstoto.Summary{Con: map[types.Label]types.Value{}, Next: 1})
	f.Add(sum)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same value.
		b2, err := Encode(out)
		if err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", out, err)
		}
		if _, err := Decode(b2); err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
	})
}
