package codec

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// benchToken builds a token like the ones circulating in a busy n=5 view:
// a handful of labeled values in flight plus the delivered map.
func benchToken() *vsimpl.TokenPkt {
	tok := &vsimpl.TokenPkt{
		View:      types.View{ID: types.G0(), Set: types.RangeProcSet(5)},
		Base:      17,
		Delivered: map[types.ProcID]int{0: 17, 1: 16, 2: 17, 3: 15, 4: 17},
	}
	for i := 0; i < 6; i++ {
		tok.Msgs = append(tok.Msgs, vsimpl.TokenMsg{
			ID:   check.MsgID{Sender: types.ProcID(i % 5), Seq: 100 + i},
			From: types.ProcID(i % 5),
			Payload: vstoto.LabeledValue{
				L: types.Label{ID: types.G0(), Seqno: 40 + i, Origin: types.ProcID(i % 5)},
				A: types.Value(fmt.Sprintf("payload-value-%d", i)),
			},
		})
	}
	return tok
}

// BenchmarkCodecRoundTrip measures the wire transcode hook — the per-hop
// cost every payload pays in -wire mode. The pooled encode buffer keeps the
// encode side allocation-free; remaining allocations are the decoded copy
// (which must be fresh memory by design: no pointer survives a hop).
func BenchmarkCodecRoundTrip(b *testing.B) {
	lv := vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 42, Origin: 3},
		A: "a moderately sized payload value for the benchmark",
	}
	tok := benchToken()
	b.Run("labeled-value", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Roundtrip(lv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("token", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Roundtrip(tok); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-labeled-value", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendEncode(buf[:0], lv)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
