// Package membership implements the view-formation half of the Section 8
// VS implementation sketch, in the style of Cristian and Schmuck's 3-round
// membership protocol:
//
//  1. a processor that determines a new view is needed broadcasts a
//     call-for-participation carrying a fresh view identifier, chosen
//     larger than any identifier it has seen (epoch counter, processor id
//     as tie-break);
//  2. a processor replies accept to a call unless it has already replied
//     to a call with a higher identifier (the promise rule);
//  3. after a collection window of 2δ the initiator fixes the membership
//     as the set of repliers (plus itself) and sends the new view to the
//     members, which install it unless they have promised or installed a
//     higher identifier.
//
// Failure detection (token timeouts, probes from strangers) lives in the
// vsimpl package; this package owns identifier generation, promises,
// collection, and installation.
package membership

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

// CallPkt is the round-1 call for participation in a new view.
type CallPkt struct {
	ID types.ViewID
}

// AcceptPkt is the round-2 reply to a call.
type AcceptPkt struct {
	ID types.ViewID
}

// NewviewPkt is the round-3 announcement of the formed view.
type NewviewPkt struct {
	V types.View
}

// Former runs the formation protocol for one processor.
type Former struct {
	id       types.ProcID
	universe types.ProcSet
	sim      *sim.Sim
	net      transport.Transport

	// CollectWait is the round-2 collection window (2δ in the paper's
	// analysis).
	CollectWait time.Duration
	// HoldOff suppresses new initiations for this long after this
	// processor promises to (or starts) a formation, giving the in-flight
	// round time to complete. Without it, dense probe traffic after a
	// long partition triggers initiations faster than a round can finish;
	// every fresh promise invalidates the previous in-flight newview and
	// the system livelocks below the formed-view epoch (found by the soak
	// test). Defaults to CollectWait + 4δ-ish set by the caller.
	HoldOff time.Duration
	// OnInstall is invoked when a new view is installed at this processor.
	OnInstall func(types.View)
	// Gate, when non-nil, interposes on installation: a view that passed
	// the monotonicity and promise checks is handed to Gate, and takes
	// effect (updating installed state and firing OnInstall) only when Gate
	// invokes commit. The stack's recovery layer uses it to make
	// installation write-ahead — the view is written to stable storage and
	// commit runs from the write's completion, so an installation is never
	// observable unless it is durable. Commits arrive in issue order (the
	// storage queue is FIFO), which preserves install monotonicity.
	Gate func(v types.View, commit func())

	maxEpoch  int64        // highest epoch observed anywhere
	promised  types.ViewID // highest identifier replied to or proposed
	installed types.ViewID // identifier of the current view (⊥ if none)

	forming    bool
	formingID  types.ViewID
	acceptors  map[types.ProcID]bool
	quietUntil sim.Time
	dead       bool

	// One-round mode (footnote 7; see oneround.go).
	oneRound  bool
	reachable func() types.ProcSet

	stats Stats

	// Observability (Instrument): formation counters, the initiate→install
	// latency histogram, and trace events for initiations and installs.
	mInitiated   *obs.Counter
	mFormed      *obs.Counter
	mInstalled   *obs.Counter
	mFormLatency *obs.Histogram
	tracer       *obs.Tracer
	initiatedAt  sim.Time
	initiating   bool // initiatedAt holds a pending formation's start
}

// Stats counts formation activity.
type Stats struct {
	Initiated int
	Formed    int
	Installed int
}

// NewFormer creates a Former. If the processor starts inside the initial
// view, pass it as installed; otherwise pass the zero View.
func NewFormer(id types.ProcID, universe types.ProcSet, s *sim.Sim, n transport.Transport,
	collectWait time.Duration, installed types.View, onInstall func(types.View)) *Former {
	f := &Former{
		id:          id,
		universe:    universe,
		sim:         s,
		net:         n,
		CollectWait: collectWait,
		OnInstall:   onInstall,
		installed:   installed.ID,
		promised:    installed.ID,
		maxEpoch:    installed.ID.Epoch,
	}
	if f.maxEpoch < types.G0().Epoch {
		f.maxEpoch = types.G0().Epoch
	}
	return f
}

// Stats returns the activity counters.
func (f *Former) Stats() Stats { return f.stats }

// Instrument binds the layer's obs instruments from the registry (nil
// disables at zero cost). Call before the Former processes any input.
func (f *Former) Instrument(reg *obs.Registry) {
	f.mInitiated = reg.Counter("mb.initiated")
	f.mFormed = reg.Counter("mb.formed")
	f.mInstalled = reg.Counter("mb.installed")
	f.mFormLatency = reg.Histogram("mb.formation_latency")
	f.tracer = reg.Tracer()
}

// Stop permanently deactivates the Former: every later input and every
// already-scheduled collection callback becomes a no-op. Used when a
// processor's volatile state is wiped by an amnesia crash — a fresh Former
// (with the epoch floor restored from stable storage) replaces this one,
// and nothing from the dead incarnation may act again.
func (f *Former) Stop() {
	f.dead = true
	f.forming = false
	f.OnInstall = nil
}

// Installed returns the identifier of the currently installed view (⊥ if
// none).
func (f *Former) Installed() types.ViewID { return f.installed }

// Forming reports whether a formation initiated here is in flight.
func (f *Former) Forming() bool { return f.forming }

// Observe folds an identifier seen in any packet into the epoch counter,
// keeping fresh identifiers above everything observed.
func (f *Former) Observe(id types.ViewID) {
	if id.Epoch > f.maxEpoch {
		f.maxEpoch = id.Epoch
	}
}

// Initiate starts a formation round, unless one initiated here is already
// in flight. It broadcasts the call to the whole universe; only reachable
// processors will reply, which is exactly how partitions produce disjoint
// views.
func (f *Former) Initiate() {
	if f.dead || f.forming {
		return
	}
	if f.sim.Now() < f.quietUntil {
		return // a formation we promised to is plausibly still in flight
	}
	f.quietUntil = f.sim.Now().Add(f.HoldOff)
	if f.oneRound {
		f.initiateOneRound()
		return
	}
	f.stats.Initiated++
	f.mInitiated.Inc()
	f.initiatedAt = f.sim.Now()
	f.initiating = true
	f.maxEpoch++
	vid := types.ViewID{Epoch: f.maxEpoch, Proc: f.id}
	f.tracer.Emit("mb", "initiate", f.id, obs.NoPeer, f.maxEpoch, "")
	f.forming = true
	f.formingID = vid
	f.acceptors = map[types.ProcID]bool{f.id: true}
	if vid.Less(f.promised) {
		// Cannot happen: maxEpoch dominates every observed id.
		panic("membership: fresh id below promise")
	}
	f.promised = vid
	f.net.Broadcast(f.id, f.universe, CallPkt{ID: vid})
	f.sim.After(f.CollectWait, func() { f.finishCollection(vid) })
}

func (f *Former) finishCollection(vid types.ViewID) {
	if f.dead || !f.forming || f.formingID != vid {
		return // superseded by a higher call or an installation
	}
	f.forming = false
	members := make([]types.ProcID, 0, len(f.acceptors))
	for p := range f.acceptors {
		members = append(members, p)
	}
	v := types.View{ID: vid, Set: types.NewProcSet(members...)}
	f.stats.Formed++
	f.mFormed.Inc()
	f.net.Broadcast(f.id, v.Set, NewviewPkt{V: v})
	f.handleNewview(v) // self-delivery
}

// HandleCall processes a round-1 call from another processor.
func (f *Former) HandleCall(from types.ProcID, pkt CallPkt) {
	if f.dead {
		return
	}
	f.Observe(pkt.ID)
	if !f.promised.Less(pkt.ID) {
		return // already promised an equal or higher identifier
	}
	f.promised = pkt.ID
	if f.forming && f.formingID.Less(pkt.ID) {
		// A higher call supersedes our own formation.
		f.forming = false
	}
	// Give the formation we are joining time to complete before initiating
	// a competing one.
	f.quietUntil = f.sim.Now().Add(f.HoldOff)
	f.net.Send(f.id, from, AcceptPkt{ID: pkt.ID})
}

// HandleAccept processes a round-2 reply.
func (f *Former) HandleAccept(from types.ProcID, pkt AcceptPkt) {
	f.Observe(pkt.ID)
	if f.forming && f.formingID == pkt.ID {
		f.acceptors[from] = true
	}
}

// HandleNewview processes a round-3 announcement.
func (f *Former) HandleNewview(pkt NewviewPkt) { f.handleNewview(pkt.V) }

func (f *Former) handleNewview(v types.View) {
	if f.dead {
		return
	}
	f.Observe(v.ID)
	if !v.Set.Contains(f.id) {
		return
	}
	// Install only with increasing identifiers (local monotonicity) and
	// never below a promise to a concurrent higher formation.
	if !f.installed.Less(v.ID) || v.ID.Less(f.promised) {
		return
	}
	commit := func() {
		if f.dead || !f.installed.Less(v.ID) {
			return // superseded while the gate was pending
		}
		f.installed = v.ID
		f.stats.Installed++
		f.mInstalled.Inc()
		f.tracer.Emit("mb", "install", f.id, obs.NoPeer, v.ID.Epoch, "")
		if f.initiating {
			// Initiate→install latency at this processor, whoever's
			// formation won: the quantity the paper's b bound covers.
			f.mFormLatency.Record(f.sim.Now().Sub(f.initiatedAt))
			f.initiating = false
		}
		if f.forming && f.formingID.Less(v.ID) {
			f.forming = false
		}
		if f.OnInstall != nil {
			f.OnInstall(v)
		}
	}
	if f.Gate != nil {
		f.Gate(v, commit)
		return
	}
	commit()
}
