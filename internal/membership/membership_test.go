package membership

import (
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/types"
)

const delta = time.Millisecond

type harness struct {
	sim     *sim.Sim
	oracle  *failures.Oracle
	net     *net.Network
	formers map[types.ProcID]*Former
	views   map[types.ProcID][]types.View
}

// newHarness wires n formers directly to the network (no token layer), so
// formation can be tested in isolation.
func newHarness(n int, p0 types.ProcSet) *harness {
	s := sim.New(1)
	o := failures.NewOracle(s.Now)
	nw := net.New(s, o, net.Config{Delta: delta})
	h := &harness{
		sim: s, oracle: o, net: nw,
		formers: make(map[types.ProcID]*Former),
		views:   make(map[types.ProcID][]types.View),
	}
	universe := types.RangeProcSet(n)
	for i := 0; i < n; i++ {
		p := types.ProcID(i)
		var initial types.View
		if p0.Contains(p) {
			initial = types.InitialView(p0)
		}
		f := NewFormer(p, universe, s, nw, 2*delta+delta/2, initial, func(v types.View) {
			h.views[p] = append(h.views[p], v)
		})
		h.formers[p] = f
		nw.Register(p, func(pkt net.Packet) {
			switch m := pkt.Payload.(type) {
			case CallPkt:
				f.HandleCall(pkt.From, m)
			case AcceptPkt:
				f.HandleAccept(pkt.From, m)
			case NewviewPkt:
				f.HandleNewview(m)
			}
		})
	}
	return h
}

func TestSingleInitiatorFormsFullView(t *testing.T) {
	h := newHarness(4, types.RangeProcSet(4))
	h.formers[2].Initiate()
	if err := h.sim.Run(sim.Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for p, f := range h.formers {
		vs := h.views[p]
		if len(vs) != 1 {
			t.Fatalf("%v installed %d views, want 1", p, len(vs))
		}
		v := vs[0]
		if !v.Set.Equal(types.RangeProcSet(4)) {
			t.Errorf("%v installed %v, want full membership", p, v)
		}
		if v.ID.Proc != 2 {
			t.Errorf("view id %v not from the initiator", v.ID)
		}
		if f.Installed() != v.ID {
			t.Errorf("Installed() = %v", f.Installed())
		}
	}
	st := h.formers[2].Stats()
	if st.Initiated != 1 || st.Formed != 1 || st.Installed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartitionedInitiatorFormsComponentView(t *testing.T) {
	h := newHarness(5, types.RangeProcSet(5))
	left := types.NewProcSet(0, 1)
	right := types.NewProcSet(2, 3, 4)
	h.oracle.Partition(types.RangeProcSet(5), left, right)
	h.formers[0].Initiate()
	h.formers[4].Initiate()
	if err := h.sim.Run(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := h.views[0][len(h.views[0])-1].Set; !got.Equal(left) {
		t.Errorf("left view = %v", got)
	}
	if got := h.views[4][len(h.views[4])-1].Set; !got.Equal(right) {
		t.Errorf("right view = %v", got)
	}
}

func TestConcurrentInitiatorsHigherWins(t *testing.T) {
	h := newHarness(3, types.RangeProcSet(3))
	// Both initiate simultaneously with the same epoch; p2's id is higher.
	h.formers[1].Initiate()
	h.formers[2].Initiate()
	if err := h.sim.Run(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// All nodes must end in the same (highest) view.
	var final types.View
	for p, vs := range h.views {
		if len(vs) == 0 {
			t.Fatalf("%v installed nothing", p)
		}
		last := vs[len(vs)-1]
		if final.ID.IsBottom() {
			final = last
		} else if last.ID != final.ID {
			t.Fatalf("%v ends in %v, others in %v", p, last, final)
		}
	}
	if final.ID.Proc != 2 {
		t.Errorf("final view %v not from the higher initiator", final)
	}
	// Monotone installation everywhere.
	for p, vs := range h.views {
		for i := 1; i < len(vs); i++ {
			if !vs[i-1].ID.Less(vs[i].ID) {
				t.Errorf("%v installed non-monotone sequence %v", p, vs)
			}
		}
	}
}

func TestInitiateWhileFormingIsNoop(t *testing.T) {
	h := newHarness(3, types.RangeProcSet(3))
	f := h.formers[0]
	f.Initiate()
	if !f.Forming() {
		t.Fatal("not forming after Initiate")
	}
	f.Initiate()
	if f.Stats().Initiated != 1 {
		t.Fatalf("second Initiate started a new formation: %+v", f.Stats())
	}
}

func TestPromiseBlocksLowerCall(t *testing.T) {
	h := newHarness(2, types.RangeProcSet(2))
	f := h.formers[0]
	f.HandleCall(1, CallPkt{ID: types.ViewID{Epoch: 10, Proc: 1}})
	// A later, lower call is ignored (no accept sent).
	sentBefore := h.net.Stats().Sent
	f.HandleCall(1, CallPkt{ID: types.ViewID{Epoch: 5, Proc: 1}})
	if h.net.Stats().Sent != sentBefore {
		t.Fatal("accept sent for a lower call")
	}
	// And installing a view below the promise is refused.
	f.HandleNewview(NewviewPkt{V: types.View{
		ID:  types.ViewID{Epoch: 5, Proc: 1},
		Set: types.RangeProcSet(2),
	}})
	if f.Installed() == (types.ViewID{Epoch: 5, Proc: 1}) {
		t.Fatal("installed below promise")
	}
}

func TestObserveRaisesEpoch(t *testing.T) {
	h := newHarness(2, types.RangeProcSet(2))
	f := h.formers[0]
	f.Observe(types.ViewID{Epoch: 42, Proc: 1})
	f.Initiate()
	if !(types.ViewID{Epoch: 42, Proc: 1}).Less(f.formingID) {
		t.Fatalf("fresh id %v not above observed", f.formingID)
	}
}

func TestNonMemberIgnoresNewview(t *testing.T) {
	h := newHarness(3, types.RangeProcSet(3))
	f := h.formers[0]
	before := f.Installed()
	f.HandleNewview(NewviewPkt{V: types.View{
		ID:  types.ViewID{Epoch: 9, Proc: 1},
		Set: types.NewProcSet(1, 2), // p0 not a member
	}})
	if f.Installed() != before {
		t.Fatal("installed a view it is not a member of")
	}
}

func TestLoneInitiatorFormsSingleton(t *testing.T) {
	h := newHarness(3, types.RangeProcSet(3))
	// Isolate p0 completely.
	h.oracle.Partition(types.RangeProcSet(3), types.NewProcSet(0), types.NewProcSet(1, 2))
	h.formers[0].Initiate()
	if err := h.sim.Run(sim.Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	vs := h.views[0]
	if len(vs) != 1 || !vs[0].Set.Equal(types.NewProcSet(0)) {
		t.Fatalf("isolated initiator installed %v, want singleton", vs)
	}
}
