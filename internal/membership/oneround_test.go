package membership

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// oneRoundHarness wires formers in one-round mode with a scripted
// reachability estimate.
func TestOneRoundAnnouncesDirectly(t *testing.T) {
	h := newHarness(3, types.RangeProcSet(3))
	estimate := types.NewProcSet(0, 1) // p2 deemed unreachable
	h.formers[0].SetOneRound(func() types.ProcSet { return estimate })
	h.formers[0].Initiate()
	if err := h.sim.Run(sim.Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// One-round: no call/accept round trip, view announced immediately.
	vs := h.views[0]
	if len(vs) != 1 || !vs[0].Set.Equal(estimate) {
		t.Fatalf("one-round view = %v, want membership %v", vs, estimate)
	}
	if len(h.views[1]) != 1 {
		t.Fatal("estimated member did not install")
	}
	if len(h.views[2]) != 0 {
		t.Fatal("excluded processor installed the view")
	}
	st := h.formers[0].Stats()
	if st.Initiated != 1 || st.Formed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOneRoundIncludesSelfEvenIfEstimateOmitsIt(t *testing.T) {
	h := newHarness(2, types.RangeProcSet(2))
	h.formers[0].SetOneRound(func() types.ProcSet { return types.NewProcSet(1) })
	h.formers[0].Initiate()
	if err := h.sim.Run(sim.Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	vs := h.views[0]
	if len(vs) != 1 || !vs[0].Set.Contains(0) {
		t.Fatalf("initiator missing from its own view: %v", vs)
	}
}

func TestOneRoundPromiseStillBlocksLowerViews(t *testing.T) {
	h := newHarness(2, types.RangeProcSet(2))
	f := h.formers[0]
	f.SetOneRound(func() types.ProcSet { return types.RangeProcSet(2) })
	// Promise a high id first.
	f.HandleCall(1, CallPkt{ID: types.ViewID{Epoch: 50, Proc: 1}})
	f.Initiate() // fresh id must exceed the promise
	if err := h.sim.Run(sim.Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	vs := h.views[0]
	if len(vs) != 1 {
		t.Fatalf("views = %v", vs)
	}
	if vs[0].ID.Epoch <= 50 {
		t.Errorf("one-round id %v did not exceed the promise", vs[0].ID)
	}
}
