package membership

import (
	"repro/internal/types"
)

// One-round formation (footnote 7 of the paper: "A different
// implementation could use the one-round protocol of [19]. However, this
// would stabilize less quickly.").
//
// Instead of call → accept → newview, the initiator announces a view
// directly, taking the membership from a local reachability estimate
// (processors heard from recently). The saved round trip is paid for in
// stabilization time: right after a failure the estimate is stale, the
// announced view includes unreachable members, its token stalls, and a
// full extra timeout cycle passes before a retry with an aged-out
// estimate succeeds — exactly the "stabilizes less quickly" trade.

// SetOneRound switches the former to one-round mode. reachable supplies
// the membership estimate at initiation time; it need not include the
// former's own processor (it is added).
func (f *Former) SetOneRound(reachable func() types.ProcSet) {
	f.oneRound = true
	f.reachable = reachable
}

// initiateOneRound forms and announces a view immediately.
func (f *Former) initiateOneRound() {
	f.stats.Initiated++
	f.maxEpoch++
	vid := types.ViewID{Epoch: f.maxEpoch, Proc: f.id}
	f.promised = vid
	members := f.reachable().Union(types.NewProcSet(f.id))
	v := types.View{ID: vid, Set: members}
	f.stats.Formed++
	f.net.Broadcast(f.id, v.Set, NewviewPkt{V: v})
	f.handleNewview(v)
}
