// Package timeline renders a recorded timed trace as a per-processor text
// timeline: one column per processor, one row per time bucket, with marks
// for view changes, sends, deliveries, safe indications and client events.
// The timeline command is a thin wrapper around Render.
package timeline

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// Render produces the timeline text for a log.
func Render(log *props.Log, bucket time.Duration) string {
	procs := map[types.ProcID]bool{}
	for p := range log.Initial {
		procs[p] = true
	}
	var end sim.Time
	for _, e := range log.Events {
		procs[e.P] = true
		if e.T > end {
			end = e.T
		}
	}
	var ids []types.ProcID
	for p := range procs {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	col := map[types.ProcID]int{}
	for i, p := range ids {
		col[p] = i
	}

	const width = 16
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-10s", "time"))
	for _, p := range ids {
		b.WriteString(fmt.Sprintf("%-*s", width, p.String()))
	}
	b.WriteByte('\n')

	nBuckets := int(end.Duration()/bucket) + 1
	cells := make([][]string, nBuckets)
	for i := range cells {
		cells[i] = make([]string, len(ids))
	}
	add := func(t sim.Time, p types.ProcID, mark string) {
		i := int(t.Duration() / bucket)
		c := &cells[i][col[p]]
		if strings.Contains(*c, mark) && len(mark) == 1 {
			return
		}
		if len(*c)+len(mark) <= width-2 {
			*c += mark
		}
	}
	for _, e := range log.Events {
		switch e.Kind {
		case props.VSNewview:
			add(e.T, e.P, fmt.Sprintf("∇%v|%d ", e.View.ID, e.View.Set.Size()))
		case props.VSGpsnd:
			add(e.T, e.P, "s")
		case props.VSGprcv:
			add(e.T, e.P, "r")
		case props.VSSafe:
			add(e.T, e.P, "✓")
		case props.TOBcast:
			add(e.T, e.P, "B")
		case props.TOBrcv:
			add(e.T, e.P, "D")
		}
	}
	for i, row := range cells {
		empty := true
		for _, c := range row {
			if c != "" {
				empty = false
			}
		}
		if empty {
			continue
		}
		b.WriteString(fmt.Sprintf("%-10s", time.Duration(i)*bucket))
		for _, c := range row {
			b.WriteString(fmt.Sprintf("%-*s", width, c))
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nlegend: ∇g|n = newview (id, size), B bcast, D client delivery, s gpsnd, r gprcv, ✓ safe\n")
	return b.String()
}
