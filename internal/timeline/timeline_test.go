package timeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

func TestRenderMarksAndBuckets(t *testing.T) {
	log := &props.Log{}
	log.SetInitial(0, types.InitialView(types.RangeProcSet(2)))
	at := func(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }
	log.Append(props.Event{T: at(1), Kind: props.TOBcast, P: 0, Value: "a", ValueSeq: 1})
	log.Append(props.Event{T: at(2), Kind: props.VSGpsnd, P: 0, Msg: check.MsgID{Sender: 0, Seq: 1}})
	log.Append(props.Event{T: at(12), Kind: props.VSGprcv, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 1}})
	log.Append(props.Event{T: at(25), Kind: props.VSSafe, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 1}})
	log.Append(props.Event{T: at(26), Kind: props.TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1})
	log.Append(props.Event{T: at(31), Kind: props.VSNewview, P: 1, View: types.View{
		ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.NewProcSet(0, 1),
	}})

	out := Render(log, 10*time.Millisecond)
	for _, want := range []string{"p0", "p1", "Bs", "r", "✓D", "∇g2.1|2", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
	// Four buckets with content (0ms, 10ms, 20ms, 30ms) plus header+legend.
	lines := strings.Count(out, "\n")
	if lines < 6 {
		t.Errorf("timeline too short (%d lines):\n%s", lines, out)
	}
}

func TestRenderEmptyLog(t *testing.T) {
	out := Render(&props.Log{}, time.Millisecond)
	if !strings.Contains(out, "legend") {
		t.Errorf("empty render = %q", out)
	}
}
