package vstoto

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// TestVStoTOOverGapVS machine-checks footnote 5's weakening, repaired: run
// the VStoTO algorithm over the VS service in which receivers may skip
// messages (deliveries are increasing subsequences of the per-view order,
// per-sender gap-free) while safe fires only once the whole prefix up to a
// message is delivered at every member. The external bcast/brcv trace must
// conform to TO-machine across randomized executions with aggressive
// skipping and view churn.
func TestVStoTOOverGapVS(t *testing.T) {
	totalDeliveries := 0
	for seed := int64(1); seed <= 8; seed++ {
		brcvs, err := runGapVS(t, seed, 4000, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalDeliveries += brcvs
	}
	// Individual seeds can stall (a skipped state-exchange summary kills a
	// view until the next one forms), but across seeds the harness must
	// actually exercise confirmed deliveries.
	if totalDeliveries < 50 {
		t.Fatalf("only %d deliveries across all seeds — harness too weak", totalDeliveries)
	}
}

// TestGapVSLiteralFootnote5Counterexample pins a finding of this
// reproduction: footnote 5 as literally stated (arbitrary delivery gaps,
// safe only for complete prefixes) is NOT sufficient for the VStoTO
// algorithm. A receiver's tentative order can hold a sender's later
// message without an earlier one it skipped; a subsequent view's state
// exchange adopts that order from the representative and the recovery safe
// path confirms it, breaking the TO service's per-sender FIFO. The
// randomized harness finds a violating schedule reliably; the repair is
// the per-sender gap-free restriction tested above.
func TestGapVSLiteralFootnote5Counterexample(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		if _, err := runGapVS(t, seed, 4000, false); err != nil {
			t.Logf("counterexample found at seed %d: %v", seed, err)
			return
		}
	}
	t.Fatal("no counterexample found — the literal footnote 5 weakening unexpectedly survived 10 seeds")
}

func runGapVS(t *testing.T, seed int64, steps int, perSenderGapFree bool) (int, error) {
	t.Logf("seed %d", seed)
	const n = 3
	rng := rand.New(rand.NewSource(seed))
	procs := types.RangeProcSet(n)
	qs := types.Majorities{Universe: procs}
	vs := vsmachine.NewGap(procs, procs)
	vs.PerSenderGapFree = perSenderGapFree
	procMap := make(map[types.ProcID]*Proc, n)
	for _, p := range procs.Members() {
		procMap[p] = NewProc(p, qs, procs)
	}

	tck := check.NewTOChecker()
	bcasts, brcvs := 0, 0
	epoch := int64(1)

	// One action at random per step, mirroring the ioa executor but over
	// the gap machine's action vocabulary.
	for step := 0; step < steps; step++ {
		switch rng.Intn(8) {
		case 0: // bcast
			bcasts++
			p := types.ProcID(rng.Intn(n))
			v := types.Value(fmt.Sprintf("v%d", bcasts))
			tck.Bcast(v, p)
			procMap[p].Bcast(v)
		case 1: // occasional view churn
			if rng.Intn(10) == 0 {
				epoch++
				var members []types.ProcID
				for _, p := range procs.Members() {
					if rng.Intn(3) > 0 {
						members = append(members, p)
					}
				}
				if len(members) == 0 {
					members = procs.Members()
				}
				v := types.View{
					ID:  types.ViewID{Epoch: epoch, Proc: members[0]},
					Set: types.NewProcSet(members...),
				}
				if vs.CreateviewEnabled(v) {
					if err := vs.ApplyCreateview(v); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 2: // newview at a random member
			for _, v := range vs.Created {
				for _, p := range v.Set.Members() {
					if vs.NewviewEnabled(v, p) && rng.Intn(2) == 0 {
						if err := vs.ApplyNewview(v, p); err != nil {
							t.Fatal(err)
						}
						procMap[p].Newview(v)
					}
				}
			}
		case 3: // proc locally controlled: label / gpsnd into the machine
			p := types.ProcID(rng.Intn(n))
			proc := procMap[p]
			if _, ok := proc.LabelEnabled(); ok {
				proc.Label()
			}
			if proc.GpsndSummaryEnabled() {
				vs.ApplyGpsnd(proc.GpsndSummary(), p)
			} else if _, ok := proc.GpsndValueEnabled(); ok {
				vs.ApplyGpsnd(proc.GpsndValue(), p)
			}
		case 4: // vs-order someone's pending head
			for _, p := range procs.Members() {
				g := vs.CurrentViewID[p]
				if g.IsBottom() {
					continue
				}
				if pend := vs.Pending(p, g); len(pend) > 0 && rng.Intn(2) == 0 {
					if err := vs.ApplyVSOrder(pend[0], p, g); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 5: // gap delivery: receive the next index or skip ahead
			q := types.ProcID(rng.Intn(n))
			g := vs.CurrentViewID[q]
			if g.IsBottom() {
				continue
			}
			k := 1 + rng.Intn(len(vs.Queue[g])+1)
			if !vs.GprcvAtEnabled(q, k) {
				continue
			}
			e, err := vs.ApplyGprcvAt(q, k)
			if err != nil {
				t.Fatal(err)
			}
			switch msg := e.M.(type) {
			case LabeledValue:
				procMap[q].GprcvValue(msg)
			case *Summary:
				procMap[q].GprcvSummary(e.P, msg)
			}
		case 6: // safe
			q := types.ProcID(rng.Intn(n))
			g := vs.CurrentViewID[q]
			if g.IsBottom() {
				continue
			}
			k := vs.NextSafe(q, g)
			if !vs.SafeAtEnabled(q, k) {
				continue
			}
			e, err := vs.ApplySafeAt(q, k)
			if err != nil {
				t.Fatal(err)
			}
			switch msg := e.M.(type) {
			case LabeledValue:
				procMap[q].SafeValue(msg)
			case *Summary:
				procMap[q].SafeSummary(e.P)
			}
		case 7: // confirm / brcv — the externally checked part
			q := types.ProcID(rng.Intn(n))
			proc := procMap[q]
			if proc.ConfirmEnabled() {
				proc.Confirm()
			}
			if from, a, ok := proc.BrcvEnabled(); ok {
				if err := tck.Brcv(a, from, q); err != nil {
					return brcvs, fmt.Errorf("TO violation over gap-VS at step %d: %w", step, err)
				}
				proc.Brcv()
				brcvs++
			}
		}
	}
	t.Logf("gap-VS seed %d: %d bcasts, %d deliveries, order length %d", seed, bcasts, brcvs, tck.OrderLen())
	return brcvs, nil
}
