package vstoto

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// Bounded exhaustive exploration (model checking) of VStoTO-system: for a
// tiny configuration — a couple of processors, a couple of client values,
// a fixed menu of views — enumerate EVERY reachable state of the
// composition of VS-machine with the VStoTO processors, checking at every
// state the Section 6 invariants and at every edge the forward-simulation
// step condition against TO-machine. Where the randomized executor samples
// schedules, the explorer covers all of them: within the bounds, Theorem
// 6.26 is checked for every interleaving.

// ExploreConfig bounds the exploration.
type ExploreConfig struct {
	// N is the number of processors; P0Size of them start in the initial
	// view (default all).
	N      int
	P0Size int
	// Quorums defaults to majorities over the universe.
	Quorums types.QuorumSystem
	// MaxBcasts bounds the client inputs; the i-th bcast carries the value
	// "v<i>" and may be submitted at any processor (all choices explored).
	MaxBcasts int
	// Views is the menu of views available to createview, taken in order
	// (identifiers must be increasing).
	Views []types.View
	// MaxStates aborts the exploration when the visited set reaches this
	// size (0 = unlimited).
	MaxStates int
	// LiteralFigure10Label configures the processors with the paper's
	// literal label precondition (see Proc.LiteralFigure10Label).
	LiteralFigure10Label bool
}

// ExploreResult reports the exploration's extent.
type ExploreResult struct {
	States    int // distinct states visited
	Edges     int // transitions checked
	Truncated bool
	// MaxQueueLen is the longest abstract total order reached (a sanity
	// signal that the bounds actually exercised deliveries).
	MaxQueueLen int
}

type exploreState struct {
	vs     *vsmachine.Machine
	procs  map[types.ProcID]*Proc
	bcasts int
	views  int
}

func (s *exploreState) clone() *exploreState {
	out := &exploreState{
		vs:     s.vs.Clone(),
		procs:  make(map[types.ProcID]*Proc, len(s.procs)),
		bcasts: s.bcasts,
		views:  s.views,
	}
	for p, proc := range s.procs {
		out.procs[p] = proc.Clone()
	}
	return out
}

func (s *exploreState) fingerprint() string {
	fp := fmt.Sprintf("b%d;v%d;%s", s.bcasts, s.views, s.vs.Fingerprint())
	for _, p := range s.vs.Procs().Members() {
		fp += "|" + s.procs[p].Fingerprint()
	}
	return fp
}

// autos builds fresh adapter views over this state's components.
func (s *exploreState) autos() (*vsmachine.Auto, map[types.ProcID]*Auto) {
	vsAuto := &vsmachine.Auto{M: s.vs}
	procAutos := make(map[types.ProcID]*Auto, len(s.procs))
	for p, proc := range s.procs {
		procAutos[p] = &Auto{P: proc}
	}
	return vsAuto, procAutos
}

// enabled enumerates every action available in this state, including the
// environment's (bounded) choices.
func (s *exploreState) enabled(cfg ExploreConfig) []ioa.Action {
	vsAuto, procAutos := s.autos()
	var acts []ioa.Action
	acts = vsAuto.Enabled(acts)
	for _, p := range s.vs.Procs().Members() {
		acts = procAutos[p].Enabled(acts)
	}
	if s.bcasts < cfg.MaxBcasts {
		val := types.Value(fmt.Sprintf("v%d", s.bcasts+1))
		for _, p := range s.vs.Procs().Members() {
			acts = append(acts, tomachine.Bcast{A: val, P: p})
		}
	}
	if s.views < len(cfg.Views) {
		v := cfg.Views[s.views]
		if s.vs.CreateviewEnabled(v) {
			acts = append(acts, vsmachine.Createview{V: v})
		}
	}
	return acts
}

// apply performs the action on this state (mutating it), mimicking the
// executor's owner-performs / receivers-input wiring.
func (s *exploreState) apply(act ioa.Action) error {
	vsAuto, procAutos := s.autos()
	switch act.(type) {
	case tomachine.Bcast:
		s.bcasts++
	case vsmachine.Createview:
		s.views++
	}
	// Owner performs.
	switch vsAuto.Classify(act) {
	case ioa.Output, ioa.Internal:
		vsAuto.Perform(act)
	}
	for _, p := range s.vs.Procs().Members() {
		a := procAutos[p]
		switch a.Classify(act) {
		case ioa.Output, ioa.Internal:
			a.Perform(act)
		}
	}
	// Receivers take input.
	if vsAuto.Classify(act) == ioa.Input {
		vsAuto.Input(act)
	}
	for _, p := range s.vs.Procs().Members() {
		a := procAutos[p]
		if a.Classify(act) == ioa.Input {
			a.Input(act)
		}
	}
	return nil
}

// ownerKind reports whether exactly one component owns the action; the
// explorer's action menu is constructed so this always holds.
func (s *exploreState) system(cfg ExploreConfig) *System {
	qs := cfg.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: s.vs.Procs()}
	}
	return NewSystem(s.vs, s.procs, qs)
}

// checkAbstractStep verifies the forward-simulation step condition for one
// edge: starting a TO-machine at f(pre), the concrete action's abstract
// counterpart (bcast, zero or more to-orders, brcv, or nothing) must be
// enabled and lead exactly to f(post).
func checkAbstractStep(procs types.ProcSet, pre, post *AbstractState, act ioa.Action) error {
	shadow := tomachine.New(procs)
	shadow.Queue = append(shadow.Queue, pre.Queue...)
	for _, p := range procs.Members() {
		shadow.Pending[p] = append([]types.Value(nil), pre.Pending[p]...)
		shadow.Next[p] = pre.Next[p]
	}
	if b, ok := act.(tomachine.Bcast); ok {
		shadow.ApplyBcast(b.A, b.P)
	}
	if len(post.Queue) < len(pre.Queue) {
		return fmt.Errorf("explore: abstract queue shrank")
	}
	for _, e := range post.Queue[len(pre.Queue):] {
		if err := shadow.ApplyToOrder(e.A, e.P); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	if b, ok := act.(tomachine.Brcv); ok {
		if err := shadow.ApplyBrcv(b.A, b.P, b.Q); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	// Exact correspondence with f(post).
	if len(shadow.Queue) != len(post.Queue) {
		return fmt.Errorf("explore: queue length %d ≠ f(post) %d", len(shadow.Queue), len(post.Queue))
	}
	for _, p := range procs.Members() {
		if shadow.Next[p] != post.Next[p] {
			return fmt.Errorf("explore: next[%v]=%d ≠ f(post) %d", p, shadow.Next[p], post.Next[p])
		}
		sp, pp := shadow.Pending[p], post.Pending[p]
		if len(sp) != len(pp) {
			return fmt.Errorf("explore: pending[%v] %v ≠ f(post) %v", p, sp, pp)
		}
		for i := range sp {
			if sp[i] != pp[i] {
				return fmt.Errorf("explore: pending[%v][%d] %q ≠ %q", p, i, sp[i], pp[i])
			}
		}
	}
	return nil
}

// Explore runs the bounded exhaustive check. It returns an error on the
// first invariant or simulation violation, identifying the failing state
// and action.
func Explore(cfg ExploreConfig) (ExploreResult, error) {
	var res ExploreResult
	if cfg.P0Size <= 0 || cfg.P0Size > cfg.N {
		cfg.P0Size = cfg.N
	}
	procs := types.RangeProcSet(cfg.N)
	p0 := types.NewProcSet(procs.Members()[:cfg.P0Size]...)
	qs := cfg.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: procs}
	}

	initial := &exploreState{
		vs:    vsmachine.New(procs, p0),
		procs: make(map[types.ProcID]*Proc, cfg.N),
	}
	for _, p := range procs.Members() {
		pr := NewProc(p, qs, p0)
		pr.TrackHistory = true
		pr.LiteralFigure10Label = cfg.LiteralFigure10Label
		initial.procs[p] = pr
	}

	visited := map[string]bool{initial.fingerprint(): true}
	queue := []*exploreState{initial}
	res.States = 1

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		preSys := cur.system(cfg)
		preAbs, err := preSys.Abstract()
		if err != nil {
			return res, fmt.Errorf("explore: f undefined at a visited state: %w", err)
		}
		if len(preAbs.Queue) > res.MaxQueueLen {
			res.MaxQueueLen = len(preAbs.Queue)
		}

		for _, act := range cur.enabled(cfg) {
			succ := cur.clone()
			if err := succ.apply(act); err != nil {
				return res, err
			}
			res.Edges++
			sys := succ.system(cfg)
			if err := sys.CheckInvariants(); err != nil {
				return res, fmt.Errorf("explore: invariant after %v: %w", act, err)
			}
			if err := sys.CheckDeepInvariants(); err != nil {
				return res, fmt.Errorf("explore: deep invariant after %v: %w", act, err)
			}
			postAbs, err := sys.Abstract()
			if err != nil {
				return res, fmt.Errorf("explore: f undefined after %v: %w", act, err)
			}
			if err := checkAbstractStep(procs, preAbs, postAbs, act); err != nil {
				return res, fmt.Errorf("explore: simulation step for %v: %w", act, err)
			}
			fp := succ.fingerprint()
			if visited[fp] {
				continue
			}
			if cfg.MaxStates > 0 && res.States >= cfg.MaxStates {
				res.Truncated = true
				continue
			}
			visited[fp] = true
			res.States++
			queue = append(queue, succ)
		}
	}
	return res, nil
}
