package vstoto

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/sweep"
	"repro/internal/types"
)

// Bounded exhaustive exploration (model checking) of VStoTO-system: for a
// tiny configuration — a couple of processors, a couple of client values,
// a fixed menu of views — enumerate EVERY reachable state of the
// composition of VS-machine with the VStoTO processors, checking at every
// state the Section 6 invariants and at every edge the forward-simulation
// step condition against TO-machine. Where the randomized executor samples
// schedules, the explorer covers all of them: within the bounds, Theorem
// 6.26 is checked for every interleaving.
//
// The search is a breadth-first wave expansion parallelized on the sweep
// pool: each wave's frontier states are expanded concurrently (clone,
// apply, check, fingerprint — all against state the wave never mutates)
// and the per-state results are merged on the calling goroutine in
// submission order. Because FIFO BFS order is exactly level order with
// per-level insertion order preserved, the merged States/Edges/
// MaxQueueLen/Truncated accounting and the first violation reported are
// byte-identical to a serial left-to-right BFS at every worker count — the
// same determinism discipline as the rest of the sweep engine. The visited
// set is read-only during a wave and written only by the merge, so the
// whole search needs no locks.

// ExploreConfig bounds the exploration.
type ExploreConfig struct {
	// N is the number of processors; P0Size of them start in the initial
	// view (default all).
	N      int
	P0Size int
	// Quorums defaults to majorities over the universe.
	Quorums types.QuorumSystem
	// MaxBcasts bounds the client inputs; the i-th bcast carries the value
	// "v<i>" and may be submitted at any processor (all choices explored).
	MaxBcasts int
	// Views is the menu of views available to createview, taken in order
	// (identifiers must be increasing).
	Views []types.View
	// MaxStates aborts the exploration when the visited set reaches this
	// size (0 = unlimited).
	MaxStates int
	// LiteralFigure10Label configures the processors with the paper's
	// literal label precondition (see Proc.LiteralFigure10Label).
	LiteralFigure10Label bool
	// Workers is the expansion parallelism (<= 0 means GOMAXPROCS). The
	// result is identical at every worker count.
	Workers int
	// POR enables partial-order reduction (see explore_por.go): states
	// with a provably independent local action expand only that action.
	// Reduced runs agree with unreduced runs on violations but visit fewer
	// states; use ExplorePORCrossCheck to verify both on one config.
	POR bool
	// ExactKeys keys the visited set by the full state encoding instead of
	// its 64-bit hash — the audit mode for the hash-compaction tests. It
	// retains every encoding, so only use it within small bounds.
	ExactKeys bool
	// Obs, when non-nil, receives explore.* counters and the frontier
	// gauge; all updates happen on the merge goroutine.
	Obs *obs.Registry

	// fpHook (tests only) post-processes each state's fingerprint hash,
	// used to force collisions deliberately.
	fpHook func(uint64) uint64
	// ampleHook (tests only) replaces the POR ample-selection rule, used
	// to prove a broken commutativity relation is caught by the POR-off
	// cross-check.
	ampleHook func([]ioa.Action) int
}

// ExploreResult reports the exploration's extent.
type ExploreResult struct {
	States    int // distinct states visited
	Edges     int // transitions checked
	Truncated bool
	// SkippedEdges counts checked transitions whose (new) target state was
	// dropped because MaxStates was reached: the subtree behind each is
	// unexplored. 0 on a non-truncated run.
	SkippedEdges int
	// MaxQueueLen is the longest abstract total order reached (a sanity
	// signal that the bounds actually exercised deliveries).
	MaxQueueLen int
	// MaxDepth is the deepest BFS wave that produced a frontier (the
	// initial state is depth 0).
	MaxDepth int
	// AmpleStates counts states expanded through a singleton ample set
	// when POR is on (0 when off).
	AmpleStates int

	// violationHash (tests only) is the fingerprint hash of the violating
	// state when the run ends in an error, used by the collision tests to
	// prove a colliding hash cannot mask a violation.
	violationHash uint64
}

type exploreState struct {
	vs     *vsmachine.Machine
	procs  map[types.ProcID]*Proc
	bcasts int
	views  int
}

func (s *exploreState) clone() *exploreState {
	out := &exploreState{
		vs:     s.vs.Clone(),
		procs:  make(map[types.ProcID]*Proc, len(s.procs)),
		bcasts: s.bcasts,
		views:  s.views,
	}
	for p, proc := range s.procs {
		out.procs[p] = proc.Clone()
	}
	return out
}

// autos builds fresh adapter views over this state's components.
func (s *exploreState) autos() (*vsmachine.Auto, map[types.ProcID]*Auto) {
	vsAuto := &vsmachine.Auto{M: s.vs}
	procAutos := make(map[types.ProcID]*Auto, len(s.procs))
	for p, proc := range s.procs {
		procAutos[p] = &Auto{P: proc}
	}
	return vsAuto, procAutos
}

// enabled enumerates every action available in this state, including the
// environment's (bounded) choices.
func (s *exploreState) enabled(cfg ExploreConfig) []ioa.Action {
	vsAuto, procAutos := s.autos()
	var acts []ioa.Action
	acts = vsAuto.Enabled(acts)
	for _, p := range s.vs.Procs().Members() {
		acts = procAutos[p].Enabled(acts)
	}
	if s.bcasts < cfg.MaxBcasts {
		val := types.Value(fmt.Sprintf("v%d", s.bcasts+1))
		for _, p := range s.vs.Procs().Members() {
			acts = append(acts, tomachine.Bcast{A: val, P: p})
		}
	}
	if s.views < len(cfg.Views) {
		v := cfg.Views[s.views]
		if s.vs.CreateviewEnabled(v) {
			acts = append(acts, vsmachine.Createview{V: v})
		}
	}
	return acts
}

// apply performs the action on this state (mutating it), mimicking the
// executor's owner-performs / receivers-input wiring.
func (s *exploreState) apply(act ioa.Action) error {
	vsAuto, procAutos := s.autos()
	switch act.(type) {
	case tomachine.Bcast:
		s.bcasts++
	case vsmachine.Createview:
		s.views++
	}
	// Owner performs.
	switch vsAuto.Classify(act) {
	case ioa.Output, ioa.Internal:
		vsAuto.Perform(act)
	}
	for _, p := range s.vs.Procs().Members() {
		a := procAutos[p]
		switch a.Classify(act) {
		case ioa.Output, ioa.Internal:
			a.Perform(act)
		}
	}
	// Receivers take input.
	if vsAuto.Classify(act) == ioa.Input {
		vsAuto.Input(act)
	}
	for _, p := range s.vs.Procs().Members() {
		a := procAutos[p]
		if a.Classify(act) == ioa.Input {
			a.Input(act)
		}
	}
	return nil
}

// ownerKind reports whether exactly one component owns the action; the
// explorer's action menu is constructed so this always holds.
func (s *exploreState) system(cfg ExploreConfig) *System {
	qs := cfg.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: s.vs.Procs()}
	}
	return NewSystem(s.vs, s.procs, qs)
}

// checkAbstractStep verifies the forward-simulation step condition for one
// edge: starting a TO-machine at f(pre), the concrete action's abstract
// counterpart (bcast, zero or more to-orders, brcv, or nothing) must be
// enabled and lead exactly to f(post).
func checkAbstractStep(procs types.ProcSet, pre, post *AbstractState, act ioa.Action) error {
	shadow := tomachine.New(procs)
	shadow.Queue = append(shadow.Queue, pre.Queue...)
	for _, p := range procs.Members() {
		shadow.Pending[p] = append([]types.Value(nil), pre.Pending[p]...)
		shadow.Next[p] = pre.Next[p]
	}
	if b, ok := act.(tomachine.Bcast); ok {
		shadow.ApplyBcast(b.A, b.P)
	}
	if len(post.Queue) < len(pre.Queue) {
		return fmt.Errorf("explore: abstract queue shrank")
	}
	for _, e := range post.Queue[len(pre.Queue):] {
		if err := shadow.ApplyToOrder(e.A, e.P); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	if b, ok := act.(tomachine.Brcv); ok {
		if err := shadow.ApplyBrcv(b.A, b.P, b.Q); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	// Exact correspondence with f(post).
	if len(shadow.Queue) != len(post.Queue) {
		return fmt.Errorf("explore: queue length %d ≠ f(post) %d", len(shadow.Queue), len(post.Queue))
	}
	for _, p := range procs.Members() {
		if shadow.Next[p] != post.Next[p] {
			return fmt.Errorf("explore: next[%v]=%d ≠ f(post) %d", p, shadow.Next[p], post.Next[p])
		}
		sp, pp := shadow.Pending[p], post.Pending[p]
		if len(sp) != len(pp) {
			return fmt.Errorf("explore: pending[%v] %v ≠ f(post) %v", p, sp, pp)
		}
		for i := range sp {
			if sp[i] != pp[i] {
				return fmt.Errorf("explore: pending[%v][%d] %q ≠ %q", p, i, sp[i], pp[i])
			}
		}
	}
	return nil
}

// exploreVisited is the deduplication set. In the default mode it stores
// only the 64-bit FNV-1a hash of each state's canonical encoding (~8 bytes
// per state instead of the full rendering); in ExactKeys mode it stores
// the encodings themselves. A hash collision in the default mode can hide
// an unexplored subtree, never a violation at a generated state: every
// generated successor is checked BEFORE the dedup lookup (see
// exploreExpand), so the worst a collision does is under-count — which the
// ExactKeys audit tests measure.
type exploreVisited struct {
	hashes map[uint64]struct{}
	exact  map[string]struct{} // non-nil iff ExactKeys
}

func newExploreVisited(exactKeys bool) *exploreVisited {
	v := &exploreVisited{hashes: make(map[uint64]struct{})}
	if exactKeys {
		v.exact = make(map[string]struct{})
	}
	return v
}

func (v *exploreVisited) has(hash uint64, key string) bool {
	if v.exact != nil {
		_, ok := v.exact[key]
		return ok
	}
	_, ok := v.hashes[hash]
	return ok
}

func (v *exploreVisited) add(hash uint64, key string) {
	if v.exact != nil {
		v.exact[key] = struct{}{}
		return
	}
	v.hashes[hash] = struct{}{}
}

// exploreEdge is one checked transition out of a frontier state, in
// enumeration order.
type exploreEdge struct {
	applyErr error  // action application failed (edge not counted)
	checkErr error  // invariant/simulation violation (edge counted)
	hash     uint64 // successor fingerprint hash (computed before checks)
	key      string // successor encoding, ExactKeys mode only
	succ     *exploreState
}

// exploreOut is one frontier state's expansion, produced by a worker and
// consumed by the ordered merge.
type exploreOut struct {
	preErr   error // f undefined at the state itself
	queueLen int   // abstract queue length at the state
	ample    bool  // expansion reduced to a singleton ample set
	edges    []exploreEdge
}

// exploreExpand expands one frontier state: enumerate (possibly
// POR-reduced) actions, and for each, clone, apply, fingerprint, and run
// every check. It reads cur and visited but mutates neither — visited is
// frozen for the duration of the wave, which is what makes concurrent
// expansion race-free. buf is the worker's reusable encoding scratch.
// Expansion stops at the state's first erroring edge, exactly where the
// serial explorer stopped.
func exploreExpand(cfg ExploreConfig, cur *exploreState, visited *exploreVisited, buf *[]byte) exploreOut {
	var out exploreOut
	preSys := cur.system(cfg)
	preAbs, err := preSys.Abstract()
	if err != nil {
		out.preErr = fmt.Errorf("explore: f undefined at a visited state: %w", err)
		return out
	}
	out.queueLen = len(preAbs.Queue)

	acts := cur.enabled(cfg)
	if cfg.POR {
		ample := porAmpleIndex
		if cfg.ampleHook != nil {
			ample = cfg.ampleHook
		}
		if k := ample(acts); k >= 0 {
			acts = acts[k : k+1]
			out.ample = true
		}
	}

	procs := cur.vs.Procs()
	for _, act := range acts {
		succ := cur.clone()
		if err := succ.apply(act); err != nil {
			out.edges = append(out.edges, exploreEdge{applyErr: err})
			return out
		}
		var e exploreEdge
		// Fingerprint before checking: the dedup key must never decide
		// whether a generated state gets checked, so a hash collision can
		// lose an unexplored subtree but can never mask a violation.
		*buf = succ.encodeFingerprint((*buf)[:0])
		e.hash = types.HashFingerprint(*buf)
		if cfg.fpHook != nil {
			e.hash = cfg.fpHook(e.hash)
		}
		if cfg.ExactKeys {
			e.key = string(*buf)
		}
		sys := succ.system(cfg)
		if err := sys.CheckInvariants(); err != nil {
			e.checkErr = fmt.Errorf("explore: invariant after %v: %w", act, err)
		} else if err := sys.CheckDeepInvariants(); err != nil {
			e.checkErr = fmt.Errorf("explore: deep invariant after %v: %w", act, err)
		} else if postAbs, err := sys.Abstract(); err != nil {
			e.checkErr = fmt.Errorf("explore: f undefined after %v: %w", act, err)
		} else if err := checkAbstractStep(procs, preAbs, postAbs, act); err != nil {
			e.checkErr = fmt.Errorf("explore: simulation step for %v: %w", act, err)
		}
		// Keep the successor only if it might enter the frontier: already
		// visited before this wave means the merge will drop it anyway, so
		// release the clone to the collector here. Intra-wave duplicates
		// are resolved by the merge (first in submission order wins).
		if e.checkErr == nil && !visited.has(e.hash, e.key) {
			e.succ = succ
		}
		out.edges = append(out.edges, e)
		if e.checkErr != nil {
			return out
		}
	}
	return out
}

// Explore runs the bounded exhaustive check. It returns an error on the
// first invariant or simulation violation, identifying the failing state
// and action. The error, like every counter in the result, is independent
// of cfg.Workers.
func Explore(cfg ExploreConfig) (ExploreResult, error) {
	var res ExploreResult
	if cfg.P0Size <= 0 || cfg.P0Size > cfg.N {
		cfg.P0Size = cfg.N
	}
	procs := types.RangeProcSet(cfg.N)
	p0 := types.NewProcSet(procs.Members()[:cfg.P0Size]...)
	qs := cfg.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: procs}
	}

	initial := &exploreState{
		vs:    vsmachine.New(procs, p0),
		procs: make(map[types.ProcID]*Proc, cfg.N),
	}
	for _, p := range procs.Members() {
		pr := NewProc(p, qs, p0)
		pr.TrackHistory = true
		pr.LiteralFigure10Label = cfg.LiteralFigure10Label
		initial.procs[p] = pr
	}

	workers := sweep.Workers(cfg.Workers)
	cStates := cfg.Obs.Counter("explore.states")
	cEdges := cfg.Obs.Counter("explore.edges")
	cWaves := cfg.Obs.Counter("explore.waves")
	cAmple := cfg.Obs.Counter("explore.ample_states")
	cSkipped := cfg.Obs.Counter("explore.skipped_edges")
	gFrontier := cfg.Obs.Gauge("explore.frontier")

	visited := newExploreVisited(cfg.ExactKeys)
	enc := initial.encodeFingerprint(nil)
	h0 := types.HashFingerprint(enc)
	if cfg.fpHook != nil {
		h0 = cfg.fpHook(h0)
	}
	visited.add(h0, string(enc))
	res.States = 1
	cStates.Inc()

	// Per-worker reusable encoding buffers: a worker expands many states
	// per wave and the encoder is the allocation hot path.
	bufs := make([][]byte, workers)

	frontier := []*exploreState{initial}
	depth := 0
	for len(frontier) > 0 {
		gFrontier.Max(int64(len(frontier)))
		outs := sweep.RunWorker(workers, len(frontier), func(w, i int) exploreOut {
			return exploreExpand(cfg, frontier[i], visited, &bufs[w])
		})
		cWaves.Inc()

		// Ordered merge: scanning states in submission order and their
		// edges in enumeration order replays exactly the serial FIFO BFS,
		// so every counter update and early return below lands in the
		// same sequence a serial run would produce.
		var next []*exploreState
		for _, out := range outs {
			if out.preErr != nil {
				return res, out.preErr
			}
			if out.queueLen > res.MaxQueueLen {
				res.MaxQueueLen = out.queueLen
			}
			if out.ample {
				res.AmpleStates++
				cAmple.Inc()
			}
			for _, e := range out.edges {
				if e.applyErr != nil {
					return res, e.applyErr
				}
				res.Edges++
				cEdges.Inc()
				if e.checkErr != nil {
					res.violationHash = e.hash
					return res, e.checkErr
				}
				if visited.has(e.hash, e.key) {
					continue
				}
				if cfg.MaxStates > 0 && res.States >= cfg.MaxStates {
					res.Truncated = true
					res.SkippedEdges++
					cSkipped.Inc()
					continue
				}
				visited.add(e.hash, e.key)
				res.States++
				cStates.Inc()
				next = append(next, e.succ)
			}
		}
		if len(next) > 0 {
			depth++
			res.MaxDepth = depth
		}
		frontier = next
	}
	return res, nil
}
