package vstoto

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/types"
)

// AbstractState is the image f(x) of the composed system state under the
// forward simulation relation of Section 6.2: a complete TO-machine state.
type AbstractState struct {
	Queue   []tomachine.Entry
	Pending map[types.ProcID][]types.Value
	Next    map[types.ProcID]int
}

// Abstract computes f(x) for the current state of the composed system:
//
//  1. queue = applyall(⟨allcontent, origin⟩, allconfirm)
//  2. next[p] = nextreport_p
//  3. pending[p] = the values of labels with origin p in allcontent but not
//     in allconfirm, in label order, followed by delay_p.
func (s *System) Abstract() (*AbstractState, error) {
	allcontent, err := s.AllContent()
	if err != nil {
		return nil, err
	}
	allconfirm, err := s.AllConfirm()
	if err != nil {
		return nil, err
	}
	abs := &AbstractState{
		Pending: make(map[types.ProcID][]types.Value),
		Next:    make(map[types.ProcID]int),
	}
	confirmed := make(map[types.Label]bool, len(allconfirm))
	for _, l := range allconfirm {
		a, ok := allcontent[l]
		if !ok {
			return nil, fmt.Errorf("vstoto: confirmed label %v has no content", l)
		}
		abs.Queue = append(abs.Queue, tomachine.Entry{A: a, P: l.Origin})
		confirmed[l] = true
	}
	perOrigin := make(map[types.ProcID][]types.Label)
	for l := range allcontent {
		if !confirmed[l] {
			perOrigin[l.Origin] = append(perOrigin[l.Origin], l)
		}
	}
	for _, p := range s.VS.Procs().Members() {
		labels := perOrigin[p]
		types.SortLabels(labels)
		var vals []types.Value
		for _, l := range labels {
			vals = append(vals, allcontent[l])
		}
		vals = append(vals, s.Procs[p].Delay...)
		abs.Pending[p] = vals
		abs.Next[p] = s.Procs[p].NextReport
	}
	return abs, nil
}

// SimulationChecker maintains a shadow TO-machine and, after every step of
// a randomized execution of the composed system, (a) advances the shadow by
// the abstract actions that Lemma 6.25 assigns to the concrete step, and
// (b) verifies that f(x') equals the shadow state exactly. A successful
// long run is a machine-checked witness of the forward simulation and hence
// of Theorem 6.26 on that execution.
type SimulationChecker struct {
	Sys    *System
	Shadow *tomachine.Machine
}

// NewSimulationChecker builds the checker with a fresh shadow machine.
func NewSimulationChecker(sys *System) *SimulationChecker {
	return &SimulationChecker{Sys: sys, Shadow: tomachine.New(sys.VS.Procs())}
}

// Hook returns an executor step hook performing the per-step check.
func (c *SimulationChecker) Hook() func(ioa.TraceEvent) error {
	return func(ev ioa.TraceEvent) error { return c.AfterStep(ev.Act) }
}

// AfterStep advances the shadow machine according to the concrete action
// just performed and checks f-correspondence.
func (c *SimulationChecker) AfterStep(act ioa.Action) error {
	if t, ok := act.(tomachine.Bcast); ok {
		c.Shadow.ApplyBcast(t.A, t.P)
	}
	// Any step may have extended allconfirm (confirm_p corresponds to
	// to-order); catch up the shadow queue before checking deliveries.
	allconfirm, err := c.Sys.AllConfirm()
	if err != nil {
		return err
	}
	if len(allconfirm) < len(c.Shadow.Queue) {
		return fmt.Errorf("simulation: allconfirm shrank from %d to %d", len(c.Shadow.Queue), len(allconfirm))
	}
	if len(allconfirm) > len(c.Shadow.Queue) {
		allcontent, err := c.Sys.AllContent()
		if err != nil {
			return err
		}
		for _, l := range allconfirm[len(c.Shadow.Queue):] {
			a, ok := allcontent[l]
			if !ok {
				return fmt.Errorf("simulation: confirmed label %v has no content", l)
			}
			if err := c.Shadow.ApplyToOrder(a, l.Origin); err != nil {
				return fmt.Errorf("simulation: to-order for confirmed label %v not enabled: %w", l, err)
			}
		}
	}
	if t, ok := act.(tomachine.Brcv); ok {
		if err := c.Shadow.ApplyBrcv(t.A, t.P, t.Q); err != nil {
			return fmt.Errorf("simulation: concrete brcv has no abstract counterpart: %w", err)
		}
	}
	return c.checkCorrespondence()
}

// checkCorrespondence verifies f(x) equals the shadow state exactly.
func (c *SimulationChecker) checkCorrespondence() error {
	abs, err := c.Sys.Abstract()
	if err != nil {
		return err
	}
	if len(abs.Queue) != len(c.Shadow.Queue) {
		return fmt.Errorf("simulation: f(x).queue len %d ≠ shadow len %d", len(abs.Queue), len(c.Shadow.Queue))
	}
	for i := range abs.Queue {
		if abs.Queue[i] != c.Shadow.Queue[i] {
			return fmt.Errorf("simulation: f(x).queue[%d]=%v ≠ shadow %v", i, abs.Queue[i], c.Shadow.Queue[i])
		}
	}
	for _, p := range c.Sys.VS.Procs().Members() {
		if abs.Next[p] != c.Shadow.Next[p] {
			return fmt.Errorf("simulation: f(x).next[%v]=%d ≠ shadow %d", p, abs.Next[p], c.Shadow.Next[p])
		}
		ap, sp := abs.Pending[p], c.Shadow.Pending[p]
		if len(ap) != len(sp) {
			return fmt.Errorf("simulation: f(x).pending[%v]=%v ≠ shadow %v", p, ap, sp)
		}
		for i := range ap {
			if ap[i] != sp[i] {
				return fmt.Errorf("simulation: f(x).pending[%v][%d]=%q ≠ shadow %q", p, i, ap[i], sp[i])
			}
		}
	}
	return nil
}
