package vstoto

import (
	"fmt"

	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// System is the composed VStoTO-system of Section 6: VS-machine together
// with VStoTO_p for every p, with the derived-variable and invariant
// apparatus used by the safety proof. It is a *view* over live components
// (it holds pointers), so invariants can be checked after every step of a
// randomized execution.
type System struct {
	VS    *vsmachine.Machine
	Procs map[types.ProcID]*Proc
	QS    types.QuorumSystem
}

// NewSystem bundles the components.
func NewSystem(vs *vsmachine.Machine, procs map[types.ProcID]*Proc, qs types.QuorumSystem) *System {
	return &System{VS: vs, Procs: procs, QS: qs}
}

// AllState computes the derived variable allstate[p, g]: every summary that
// is (1) the state of p if p's current view is g, (2) in pending[p,g] of
// VS-machine, (3) in queue[g] with sender p, or (4) recorded as
// gotstate(p)_q for some q currently in view g.
func (s *System) AllState(p types.ProcID, g types.ViewID) []*Summary {
	var out []*Summary
	proc := s.Procs[p]
	if proc.Current.ID == g {
		out = append(out, proc.StateSummary())
	}
	for _, m := range s.VS.Pending(p, g) {
		if x, ok := m.(*Summary); ok {
			out = append(out, x)
		}
	}
	for _, e := range s.VS.Queue[g] {
		if e.P != p {
			continue
		}
		if x, ok := e.M.(*Summary); ok {
			out = append(out, x)
		}
	}
	for _, q := range s.VS.Procs().Members() {
		qp := s.Procs[q]
		if qp.Current.ID == g {
			if x, ok := qp.GotState[p]; ok {
				out = append(out, x)
			}
		}
	}
	return out
}

// summaryAt tags a summary with the (p, g) slot it came from, for error
// messages.
type summaryAt struct {
	X *Summary
	P types.ProcID
	G types.ViewID
}

// allStateAll enumerates allstate = ∪_{p,g} allstate[p,g]. Only view ids
// that occur somewhere (created views and procs' current views) can have
// nonempty slots, so the enumeration is over those.
func (s *System) allStateAll() []summaryAt {
	var out []summaryAt
	seen := make(map[types.ViewID]bool)
	var gs []types.ViewID
	for id := range s.VS.Created {
		if !seen[id] {
			seen[id] = true
			gs = append(gs, id)
		}
	}
	for _, p := range s.VS.Procs().Members() {
		if id := s.Procs[p].Current.ID; !id.IsBottom() && !seen[id] {
			seen[id] = true
			gs = append(gs, id)
		}
	}
	for _, p := range s.VS.Procs().Members() {
		for _, g := range gs {
			for _, x := range s.AllState(p, g) {
				out = append(out, summaryAt{X: x, P: p, G: g})
			}
		}
	}
	return out
}

// AllContent computes the derived variable allcontent: the union of x.con
// over all summaries in allstate, together with every processor's content
// and the labeled values in transit. It returns an error if the union is
// not a function (violating Lemma 6.5).
func (s *System) AllContent() (map[types.Label]types.Value, error) {
	out := make(map[types.Label]types.Value)
	add := func(l types.Label, a types.Value, where string) error {
		if prev, ok := out[l]; ok && prev != a {
			return fmt.Errorf("lemma 6.5: allcontent not a function: %v ↦ %q and %q (%s)",
				l, string(prev), string(a), where)
		}
		out[l] = a
		return nil
	}
	for _, sa := range s.allStateAll() {
		for l, a := range sa.X.Con {
			if err := add(l, a, fmt.Sprintf("allstate[%v,%v]", sa.P, sa.G)); err != nil {
				return nil, err
			}
		}
	}
	// Content held locally and labeled values in VS transit also carry
	// label→value bindings; include them so the function check is global.
	for _, p := range s.VS.Procs().Members() {
		for l, a := range s.Procs[p].Content {
			if err := add(l, a, fmt.Sprintf("content_%v", p)); err != nil {
				return nil, err
			}
		}
	}
	for g, queue := range s.VS.Queue {
		for _, e := range queue {
			if lv, ok := e.M.(LabeledValue); ok {
				if err := add(lv.L, lv.A, fmt.Sprintf("queue[%v]", g)); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// isPrefix reports whether a is a prefix of b.
func isPrefix(a, b []types.Label) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllConfirm computes the derived variable allconfirm: the least upper
// bound of x.confirm over allstate. It returns an error if the confirm
// sequences are not pairwise prefix-comparable (violating Corollary 6.24).
func (s *System) AllConfirm() ([]types.Label, error) {
	var lub []types.Label
	var lubAt string
	for _, sa := range s.allStateAll() {
		c := sa.X.Confirm()
		switch {
		case isPrefix(c, lub):
			// lub already covers c.
		case isPrefix(lub, c):
			lub = c
			lubAt = fmt.Sprintf("allstate[%v,%v]", sa.P, sa.G)
		default:
			return nil, fmt.Errorf(
				"corollary 6.24: confirm sequences inconsistent: %v (from %s) vs %v (from allstate[%v,%v])",
				lub, lubAt, c, sa.P, sa.G)
		}
	}
	return lub, nil
}

// CheckInvariants verifies the executable subset of the Section 6
// invariants on the current composed state. Each check is labeled with the
// lemma it corresponds to.
func (s *System) CheckInvariants() error {
	procs := s.VS.Procs().Members()

	// Lemma 6.1: agreement between processor-local current and VS state.
	for _, p := range procs {
		proc := s.Procs[p]
		vsCur := s.VS.CurrentViewID[p]
		if proc.Current.ID.IsBottom() != vsCur.IsBottom() {
			return fmt.Errorf("lemma 6.1(1): current_%v=%v but current-viewid[%v]=%v",
				p, proc.Current.ID, p, vsCur)
		}
		if !proc.Current.ID.IsBottom() {
			if proc.Current.ID != vsCur {
				return fmt.Errorf("lemma 6.1(2): current_%v=%v ≠ current-viewid[%v]=%v",
					p, proc.Current.ID, p, vsCur)
			}
			created, ok := s.VS.Created[proc.Current.ID]
			if !ok || !created.Set.Equal(proc.Current.Set) {
				return fmt.Errorf("lemma 6.1(3): current_%v=%v not in created", p, proc.Current)
			}
		}
	}

	// Lemma 6.2: undefined view forces normal status.
	for _, p := range procs {
		proc := s.Procs[p]
		if proc.Current.ID.IsBottom() && proc.Status != StatusNormal {
			return fmt.Errorf("lemma 6.2: current_%v=⊥ but status=%v", p, proc.Status)
		}
	}

	// Lemma 6.3(1): buffer labels carry the current view id and origin p.
	for _, p := range procs {
		proc := s.Procs[p]
		for _, l := range proc.Buffer {
			if proc.Current.ID.IsBottom() || l.Origin != p || l.ID != proc.Current.ID {
				return fmt.Errorf("lemma 6.3(1): buffer_%v holds %v with current=%v", p, l, proc.Current.ID)
			}
			// Lemma 6.6: buffered labels have content.
			if _, ok := proc.Content[l]; !ok {
				return fmt.Errorf("lemma 6.6: buffer_%v holds %v without content", p, l)
			}
		}
	}
	// Lemma 6.3(2,3): labeled values in VS pending/queues carry matching
	// view id and sender.
	for g, queue := range s.VS.Queue {
		for _, e := range queue {
			if lv, ok := e.M.(LabeledValue); ok {
				if lv.L.Origin != e.P || lv.L.ID != g {
					return fmt.Errorf("lemma 6.3(3): queue[%v] holds %v from %v", g, lv, e.P)
				}
			}
		}
	}

	allcontent, err := s.AllContent() // checks Lemma 6.5
	if err != nil {
		return err
	}

	// Lemma 6.4: labels in allcontent with origin p are below p's next
	// label.
	for l := range allcontent {
		proc := s.Procs[l.Origin]
		bound := types.Label{ID: proc.Current.ID, Seqno: proc.NextSeqno, Origin: l.Origin}
		if !proc.Current.ID.IsBottom() && !l.Less(bound) {
			return fmt.Errorf("lemma 6.4: label %v not below %v", l, bound)
		}
	}

	// Lemma 6.7(4): no allstate for views above a processor's current view.
	for _, sa := range s.allStateAll() {
		proc := s.Procs[sa.P]
		if proc.Current.ID.IsBottom() || proc.Current.ID.Less(sa.G) {
			return fmt.Errorf("lemma 6.7(4): allstate[%v,%v] nonempty with current=%v",
				sa.P, sa.G, proc.Current.ID)
		}
		// Lemma 6.12: x.high ≤ g ≤ current.id_p.
		if sa.G.Less(sa.X.High) {
			return fmt.Errorf("lemma 6.12(1): allstate[%v,%v] has high=%v > %v",
				sa.P, sa.G, sa.X.High, sa.G)
		}
		// Lemma 6.22(2): x.next ≤ length(x.ord) + 1.
		if sa.X.Next > len(sa.X.Ord)+1 {
			return fmt.Errorf("lemma 6.22(2): allstate[%v,%v] has next=%d > len(ord)+1=%d",
				sa.P, sa.G, sa.X.Next, len(sa.X.Ord)+1)
		}
	}

	// Lemma 6.10 / 6.11: established vs status and highprimary bounds.
	for _, p := range procs {
		proc := s.Procs[p]
		if !proc.TrackHistory {
			continue
		}
		for g, est := range proc.Established {
			if est && proc.Current.ID.Less(g) {
				return fmt.Errorf("lemma 6.10(1): established[%v,%v] but current=%v", p, g, proc.Current.ID)
			}
		}
		if !proc.Current.ID.IsBottom() {
			est := proc.Established[proc.Current.ID]
			wantEst := proc.Status == StatusNormal
			if est != wantEst {
				return fmt.Errorf("lemma 6.10(2): established[%v,%v]=%t but status=%v",
					p, proc.Current.ID, est, proc.Status)
			}
			switch {
			case est && proc.Primary():
				if proc.HighPrimary != proc.Current.ID {
					return fmt.Errorf("lemma 6.11(1): established primary %v at %v but highprimary=%v",
						proc.Current.ID, p, proc.HighPrimary)
				}
			case est && !proc.Primary():
				// The paper's statement implicitly assumes the initial view
				// ⟨g0, P0⟩ is primary; when P0 holds no quorum the initial
				// state has highprimary = g0 = current.id, so g0 is exempt.
				if !proc.HighPrimary.Less(proc.Current.ID) && proc.Current.ID != types.G0() {
					return fmt.Errorf("lemma 6.11(2): established non-primary %v at %v but highprimary=%v",
						proc.Current.ID, p, proc.HighPrimary)
				}
			default: // not established
				if !proc.HighPrimary.Less(proc.Current.ID) {
					return fmt.Errorf("lemma 6.11(3): unestablished %v at %v but highprimary=%v",
						proc.Current.ID, p, proc.HighPrimary)
				}
			}
		}
		// Lemma 6.11(4): gotstate summaries have high below the view.
		for q, x := range proc.GotState {
			if !proc.Current.ID.IsBottom() && !x.High.Less(proc.Current.ID) {
				return fmt.Errorf("lemma 6.11(4): gotstate(%v)_%v has high=%v ≥ current=%v",
					q, p, x.High, proc.Current.ID)
			}
		}
	}

	// Corollary 6.23 / 6.24: confirm sequences are prefixes of higher
	// orders and pairwise consistent.
	all := s.allStateAll()
	for _, a := range all {
		for _, b := range all {
			if a.X.High.LessEq(b.X.High) {
				if !isPrefix(a.X.Confirm(), b.X.Ord) {
					return fmt.Errorf(
						"corollary 6.23: confirm of allstate[%v,%v] (high %v) not a prefix of ord of allstate[%v,%v] (high %v)",
						a.P, a.G, a.X.High, b.P, b.G, b.X.High)
				}
			}
		}
	}
	if _, err := s.AllConfirm(); err != nil {
		return err
	}

	// Per-proc sanity: nextreport ≤ nextconfirm ≤ len(order)+1.
	for _, p := range procs {
		proc := s.Procs[p]
		if proc.NextReport > proc.NextConfirm {
			return fmt.Errorf("vstoto: nextreport_%v=%d > nextconfirm=%d", p, proc.NextReport, proc.NextConfirm)
		}
		if proc.NextConfirm > len(proc.Order)+1 {
			return fmt.Errorf("vstoto: nextconfirm_%v=%d > len(order)+1=%d", p, proc.NextConfirm, len(proc.Order)+1)
		}
	}
	return nil
}
