package vstoto

import (
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/types"
)

func TestTimedGoodProcessorBlocksTimeWhileEnabled(t *testing.T) {
	tp := NewTimedProc(newTestProc(0, 3))
	if !tp.CanAdvanceTime() {
		t.Fatal("quiescent good processor cannot let time pass")
	}
	tp.P.Bcast("a") // label becomes enabled
	if tp.CanAdvanceTime() {
		t.Fatal("good processor with an enabled action lets time pass")
	}
	if err := tp.AdvanceTime(time.Millisecond); err == nil {
		t.Fatal("ν accepted while good and enabled")
	}
	// Draining restores quiescence... label + gpsnd consume the value.
	n := tp.Drain(func(any) {}, func(types.ProcID, types.Value) {})
	if n == 0 {
		t.Fatal("drain made no progress")
	}
	if !tp.CanAdvanceTime() {
		t.Fatal("still blocked after draining")
	}
	if err := tp.AdvanceTime(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if tp.Now != 1e6 {
		t.Errorf("Now = %v", tp.Now)
	}
}

func TestTimedBadProcessorFrozenButTimePasses(t *testing.T) {
	tp := NewTimedProc(newTestProc(0, 3))
	tp.P.Bcast("a")
	tp.SetStatus(failures.Bad)
	if tp.CanPerform() {
		t.Fatal("bad processor can perform")
	}
	if n := tp.Drain(func(any) {}, func(types.ProcID, types.Value) {}); n != 0 {
		t.Fatalf("bad processor drained %d steps", n)
	}
	// Time passes freely while bad, even with enabled actions.
	if err := tp.AdvanceTime(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Recovery: state was preserved; the enabled action resumes.
	tp.SetStatus(failures.Good)
	if !tp.CanPerform() {
		t.Fatal("recovered processor cannot perform")
	}
	if n := tp.Drain(func(any) {}, func(types.ProcID, types.Value) {}); n == 0 {
		t.Fatal("recovered processor made no progress")
	}
}

func TestTimedUglyProcessorMayDoEither(t *testing.T) {
	tp := NewTimedProc(newTestProc(0, 3))
	tp.P.Bcast("a")
	tp.SetStatus(failures.Ugly)
	// Ugly: both performing and letting time pass are allowed.
	if !tp.CanPerform() {
		t.Fatal("ugly processor cannot perform")
	}
	if !tp.CanAdvanceTime() {
		t.Fatal("ugly processor cannot let time pass")
	}
}

func TestTimedRejectsNonPositiveDuration(t *testing.T) {
	tp := NewTimedProc(newTestProc(0, 3))
	if err := tp.AdvanceTime(0); err == nil {
		t.Fatal("ν(0) accepted")
	}
	if err := tp.AdvanceTime(-time.Second); err == nil {
		t.Fatal("negative ν accepted")
	}
}
