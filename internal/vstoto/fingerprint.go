package vstoto

import (
	"encoding/binary"
	"sort"

	"repro/internal/types"
)

// Binary fingerprints for the bounded exhaustive explorer. The seed
// explorer keyed its visited set by fmt.Sprintf-built strings — the
// allocation hot path of a run (every generated successor built kilobytes
// of formatted text, and the visited map retained all of it). The binary
// encoding below appends into a worker-owned reusable buffer and the
// visited set stores only the 64-bit FNV-1a hash: ~8 bytes per state
// instead of the full rendering (hash compaction; see DESIGN.md §16 for
// the collision discussion and the check-before-dedup guarantee).

// AppendFingerprint appends the pair's canonical encoding (tag 0x10 keeps
// it disjoint from Summary's under vsmachine's message framing).
func (lv LabeledValue) AppendFingerprint(buf []byte) []byte {
	buf = append(buf, 0x10)
	buf = lv.L.AppendFingerprint(buf)
	return types.AppendFingerprintString(buf, string(lv.A))
}

// AppendFingerprint appends the summary's canonical content encoding
// (tag 0x11): con in ascending label order, then ord, next, high.
// Summaries travel by pointer, but two structurally equal summaries must
// encode identically — the visited set is about state, not identity.
func (x *Summary) AppendFingerprint(buf []byte) []byte {
	buf = append(buf, 0x11)
	labels := make([]types.Label, 0, len(x.Con))
	for l := range x.Con {
		labels = append(labels, l)
	}
	types.SortLabels(labels)
	buf = binary.AppendUvarint(buf, uint64(len(labels)))
	for _, l := range labels {
		buf = l.AppendFingerprint(buf)
		buf = types.AppendFingerprintString(buf, string(x.Con[l]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(x.Ord)))
	for _, l := range x.Ord {
		buf = l.AppendFingerprint(buf)
	}
	buf = binary.AppendVarint(buf, int64(x.Next))
	return x.High.AppendFingerprint(buf)
}

// AppendFingerprint appends the processor's canonical encoding. History
// variables are excluded, exactly as in the string fingerprint: they are
// functions of the reachable state and only consumed by the invariant
// checker.
func (p *Proc) AppendFingerprint(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(p.id))
	buf = p.Current.AppendFingerprint(buf)
	buf = binary.AppendVarint(buf, int64(p.NextSeqno))
	buf = binary.AppendVarint(buf, int64(p.Status))
	buf = binary.AppendVarint(buf, int64(p.NextConfirm))
	buf = binary.AppendVarint(buf, int64(p.NextReport))
	buf = p.HighPrimary.AppendFingerprint(buf)
	for _, ls := range [][]types.Label{p.Buffer, p.Order} {
		buf = binary.AppendUvarint(buf, uint64(len(ls)))
		for _, l := range ls {
			buf = l.AppendFingerprint(buf)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Delay)))
	for _, a := range p.Delay {
		buf = types.AppendFingerprintString(buf, string(a))
	}
	labels := make([]types.Label, 0, len(p.Content))
	for l := range p.Content {
		labels = append(labels, l)
	}
	types.SortLabels(labels)
	buf = binary.AppendUvarint(buf, uint64(len(labels)))
	for _, l := range labels {
		buf = l.AppendFingerprint(buf)
		buf = types.AppendFingerprintString(buf, string(p.Content[l]))
	}
	gots := make([]types.ProcID, 0, len(p.GotState))
	for q := range p.GotState {
		gots = append(gots, q)
	}
	sort.Slice(gots, func(i, j int) bool { return gots[i] < gots[j] })
	buf = binary.AppendUvarint(buf, uint64(len(gots)))
	for _, q := range gots {
		buf = binary.AppendVarint(buf, int64(q))
		buf = p.GotState[q].AppendFingerprint(buf)
	}
	exs := make([]types.ProcID, 0, len(p.SafeExch))
	for q, ok := range p.SafeExch {
		if ok {
			exs = append(exs, q)
		}
	}
	sort.Slice(exs, func(i, j int) bool { return exs[i] < exs[j] })
	buf = binary.AppendUvarint(buf, uint64(len(exs)))
	for _, q := range exs {
		buf = binary.AppendVarint(buf, int64(q))
	}
	sls := make([]types.Label, 0, len(p.SafeLabels))
	for l, ok := range p.SafeLabels {
		if ok {
			sls = append(sls, l)
		}
	}
	types.SortLabels(sls)
	buf = binary.AppendUvarint(buf, uint64(len(sls)))
	for _, l := range sls {
		buf = l.AppendFingerprint(buf)
	}
	return buf
}

// encodeFingerprint appends the composed state's canonical encoding: the
// environment counters, the VS machine, then every processor in universe
// order.
func (s *exploreState) encodeFingerprint(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(s.bcasts))
	buf = binary.AppendVarint(buf, int64(s.views))
	buf = s.vs.AppendFingerprint(buf)
	for _, p := range s.vs.Procs().Members() {
		buf = s.procs[p].AppendFingerprint(buf)
	}
	return buf
}
