package vstoto

import (
	"runtime"
	"testing"

	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/types"
)

// Configurations shared by the parallel-explorer tests: a small clean one
// (every interleaving satisfies the invariants) and the literal Figure 10
// mutant (a reachable deep-invariant violation).
func exploreCleanCfg() ExploreConfig {
	return ExploreConfig{N: 2, MaxBcasts: 2}
}

func exploreMutantCfg() ExploreConfig {
	return ExploreConfig{
		N:         2,
		MaxBcasts: 1,
		Views: []types.View{
			{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.NewProcSet(0, 1)},
		},
		LiteralFigure10Label: true,
		MaxStates:            300000,
	}
}

// TestExploreParallelDeterminism pins the tentpole contract: Explore
// returns an identical ExploreResult and an identical first-violation
// error at every worker count, on both a clean and a violating
// configuration. CI runs this under -race, which also proves the
// frozen-visited wave design is race-free.
func TestExploreParallelDeterminism(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for name, cfg := range map[string]ExploreConfig{
		"clean":  exploreCleanCfg(),
		"mutant": exploreMutantCfg(),
	} {
		var baseRes ExploreResult
		var baseErr error
		for i, w := range workerCounts {
			cfg.Workers = w
			res, err := Explore(cfg)
			if i == 0 {
				baseRes, baseErr = res, err
				t.Logf("%s: %d states, %d edges, depth %d, err=%v", name, res.States, res.Edges, res.MaxDepth, err)
				continue
			}
			if res != baseRes {
				t.Errorf("%s: workers=%d result %+v ≠ workers=%d result %+v", name, w, res, workerCounts[0], baseRes)
			}
			switch {
			case (err == nil) != (baseErr == nil):
				t.Errorf("%s: workers=%d err=%v but workers=%d err=%v", name, w, err, workerCounts[0], baseErr)
			case err != nil && err.Error() != baseErr.Error():
				t.Errorf("%s: workers=%d first violation %q ≠ %q", name, w, err, baseErr)
			}
		}
		if name == "mutant" && baseErr == nil {
			t.Errorf("mutant config found no violation")
		}
	}
}

// TestExplorePORCrossCheck pins the reduction contract: POR-on agrees with
// POR-off on the verdict for both a clean and a violating configuration,
// while visiting strictly fewer states through a nonzero number of ample
// expansions.
func TestExplorePORCrossCheck(t *testing.T) {
	for name, cfg := range map[string]ExploreConfig{
		"clean":  exploreCleanCfg(),
		"mutant": exploreMutantCfg(),
	} {
		c := ExplorePORCrossCheck(cfg)
		if !c.Agree() {
			t.Fatalf("%s: verdict disagreement: full err=%v, reduced err=%v", name, c.FullErr, c.RedErr)
		}
		if c.Reduced.States >= c.Full.States {
			t.Errorf("%s: POR visited %d states, full %d — no reduction", name, c.Reduced.States, c.Full.States)
		}
		if c.Reduced.AmpleStates == 0 {
			t.Errorf("%s: reduced run reports no ample expansions", name)
		}
		t.Logf("%s: full %d/%d, reduced %d/%d (ample %d, ratio %.3f)",
			name, c.Full.States, c.Full.Edges, c.Reduced.States, c.Reduced.Edges,
			c.Reduced.AmpleStates, c.ReductionRatio())
	}
	if c := ExplorePORCrossCheck(exploreMutantCfg()); c.RedErr == nil {
		t.Fatalf("POR-on missed the literal Figure 10 violation")
	}
}

// TestExploreBrokenPORCaughtByCrossCheck proves the cross-check is a real
// oracle: the deliberately unsound ample rule (porBrokenAmpleIndex, which
// claims label commutes with createview and bcasts commute with each
// other) prunes every interleaving exhibiting the literal Figure 10
// defect, so the reduced run comes back clean while the full run violates
// — exactly the disagreement the cross-check flags.
func TestExploreBrokenPORCaughtByCrossCheck(t *testing.T) {
	cfg := exploreMutantCfg()
	cfg.ampleHook = func(acts []ioa.Action) int { return porBrokenAmpleIndex(acts) }
	c := ExplorePORCrossCheck(cfg)
	if c.FullErr == nil {
		t.Fatalf("full run missed the literal Figure 10 violation")
	}
	if c.RedErr != nil {
		t.Fatalf("broken POR still found the violation (%v) — mutant rule not masking", c.RedErr)
	}
	if c.Agree() {
		t.Fatalf("cross-check reports agreement despite a masked violation")
	}
	t.Logf("broken relation masked the violation (%d reduced states vs %d full) and the cross-check caught it",
		c.Reduced.States, c.Full.States)
}

// TestExploreFingerprintCollisionDoesNotMaskViolation forces the violating
// state's hash to collide with the initial state's and checks the violation
// is still reported identically. This pins the check-before-dedup order in
// exploreExpand: a collision may lose an unexplored subtree (under-count
// States), but every generated successor is checked before the visited
// lookup, so it can never hide a violation.
func TestExploreFingerprintCollisionDoesNotMaskViolation(t *testing.T) {
	cfg := exploreMutantCfg()
	cfg.Workers = 1
	want, wantErr := Explore(cfg)
	if wantErr == nil {
		t.Fatalf("mutant config found no violation")
	}

	var h0 uint64
	cfg.fpHook = func(h uint64) uint64 {
		if h0 == 0 {
			h0 = h // first hash computed is the initial state's
		}
		if h == want.violationHash {
			return h0
		}
		return h
	}
	got, gotErr := Explore(cfg)
	if gotErr == nil {
		t.Fatalf("collision with the initial state masked the violation (explored %d states)", got.States)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("collision changed the violation: %q ≠ %q", gotErr, wantErr)
	}
	if got.violationHash != h0 {
		t.Errorf("violating state's hash %#x not remapped to %#x", got.violationHash, h0)
	}
}

// TestExploreExactKeysAgreesWithHashed audits hash compaction: within the
// test bounds, a visited set keyed by full state encodings and one keyed
// by 64-bit hashes visit identical state spaces — no collision merged two
// distinct states.
func TestExploreExactKeysAgreesWithHashed(t *testing.T) {
	cfg := exploreCleanCfg()
	hashed, err := Explore(cfg)
	if err != nil {
		t.Fatalf("hashed run: %v", err)
	}
	cfg.ExactKeys = true
	exact, err := Explore(cfg)
	if err != nil {
		t.Fatalf("exact run: %v", err)
	}
	if hashed != exact {
		t.Fatalf("hash compaction changed the exploration: hashed %+v ≠ exact %+v", hashed, exact)
	}
}

// TestExploreTruncatedExactStates pins the MaxStates contract: a truncated
// run's States is exactly the cap (not approximate), and the run reports
// how many checked edges had their (new) target dropped.
func TestExploreTruncatedExactStates(t *testing.T) {
	full, err := Explore(exploreCleanCfg())
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	cfg := exploreCleanCfg()
	cfg.MaxStates = 500
	if full.States <= cfg.MaxStates {
		t.Fatalf("config too small to truncate: %d states", full.States)
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("truncated run: %v", err)
	}
	if !res.Truncated {
		t.Fatalf("run not truncated")
	}
	if res.States != cfg.MaxStates {
		t.Errorf("truncated States = %d, want exactly %d", res.States, cfg.MaxStates)
	}
	if res.SkippedEdges == 0 {
		t.Errorf("truncated run reports no skipped edges")
	}
	if full.SkippedEdges != 0 || full.Truncated {
		t.Errorf("full run reports truncation: %+v", full)
	}
}

// TestExploreObsCounters checks the explore.* instruments match the result
// counters.
func TestExploreObsCounters(t *testing.T) {
	reg := obs.New()
	cfg := exploreCleanCfg()
	cfg.POR = true
	cfg.Obs = reg
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	for name, want := range map[string]int{
		"explore.states":        res.States,
		"explore.edges":         res.Edges,
		"explore.ample_states":  res.AmpleStates,
		"explore.skipped_edges": res.SkippedEdges,
	} {
		if got := reg.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Counter("explore.waves").Value() != int64(res.MaxDepth)+1 {
		t.Errorf("explore.waves = %d, want MaxDepth+1 = %d", reg.Counter("explore.waves").Value(), res.MaxDepth+1)
	}
	if reg.Gauge("explore.frontier").Value() == 0 {
		t.Errorf("explore.frontier gauge never set")
	}
}
