package vstoto

// ExploreCrossCheck is the result of running one configuration both with
// and without partial-order reduction. The reduced run explores a subgraph
// of the full run, so the two must agree on the verdict: both clean, or
// both ending in a violation. (The violating states found may differ — the
// reduction legitimately reaches a different first counterexample — but a
// verdict disagreement means the commutativity relation pruned a behavior
// it claimed was redundant, i.e. the reduction is unsound. CI runs this
// agreement check on every push; the mutant tests prove it actually fires
// on a broken relation.)
type ExploreCrossCheck struct {
	Full    ExploreResult
	Reduced ExploreResult
	FullErr error
	RedErr  error
}

// Agree reports verdict agreement between the full and reduced runs.
func (c ExploreCrossCheck) Agree() bool {
	return (c.FullErr == nil) == (c.RedErr == nil)
}

// ReductionRatio is Reduced.States / Full.States — below 1.0 means POR is
// pruning; 1.0 means it found nothing to prune.
func (c ExploreCrossCheck) ReductionRatio() float64 {
	if c.Full.States == 0 {
		return 1
	}
	return float64(c.Reduced.States) / float64(c.Full.States)
}

// ExplorePORCrossCheck runs cfg unreduced and reduced (overriding cfg.POR
// both ways) and returns both outcomes for agreement checking.
func ExplorePORCrossCheck(cfg ExploreConfig) ExploreCrossCheck {
	var c ExploreCrossCheck
	cfg.POR = false
	c.Full, c.FullErr = Explore(cfg)
	cfg.POR = true
	c.Reduced, c.RedErr = Explore(cfg)
	return c
}
