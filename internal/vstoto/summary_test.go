package vstoto

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func lbl(epoch int64, seq int, origin types.ProcID) types.Label {
	return types.Label{ID: types.ViewID{Epoch: epoch, Proc: 0}, Seqno: seq, Origin: origin}
}

func TestSummaryConfirm(t *testing.T) {
	ls := []types.Label{lbl(1, 1, 0), lbl(1, 2, 0), lbl(1, 3, 0)}
	cases := []struct {
		next int
		want int
	}{
		{1, 0}, {2, 1}, {4, 3},
		{9, 3}, // next beyond ord: clipped to length
		{0, 0}, // degenerate
	}
	for _, c := range cases {
		x := &Summary{Ord: ls, Next: c.next}
		if got := len(x.Confirm()); got != c.want {
			t.Errorf("next=%d: confirm length %d, want %d", c.next, got, c.want)
		}
	}
}

func TestGotStateAggregates(t *testing.T) {
	la, lb, lc := lbl(1, 1, 0), lbl(1, 1, 1), lbl(2, 1, 0)
	y := GotState{
		0: {Con: map[types.Label]types.Value{la: "a", lc: "c"}, Ord: []types.Label{la, lc}, Next: 3, High: types.ViewID{Epoch: 2, Proc: 0}},
		1: {Con: map[types.Label]types.Value{lb: "b"}, Ord: []types.Label{lb}, Next: 1, High: types.G0()},
		2: {Con: map[types.Label]types.Value{}, Next: 2, High: types.ViewID{Epoch: 2, Proc: 0}},
	}
	kc := y.KnownContent()
	if len(kc) != 3 || kc[la] != "a" || kc[lb] != "b" || kc[lc] != "c" {
		t.Fatalf("KnownContent = %v", kc)
	}
	if got := y.MaxPrimary(); got != (types.ViewID{Epoch: 2, Proc: 0}) {
		t.Errorf("MaxPrimary = %v", got)
	}
	reps := y.Reps()
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 2 {
		t.Fatalf("Reps = %v", reps)
	}
	// ChosenRep: highest processor id among reps.
	if got := y.ChosenRep(); got != 2 {
		t.Errorf("ChosenRep = %v", got)
	}
	// ShortOrder = chosen rep's ord (empty for p2).
	if got := y.ShortOrder(); len(got) != 0 {
		t.Errorf("ShortOrder = %v", got)
	}
	// FullOrder = shortorder + remaining knowncontent in label order.
	fo := y.FullOrder()
	want := []types.Label{la, lb, lc}
	if len(fo) != 3 {
		t.Fatalf("FullOrder = %v", fo)
	}
	for i := range want {
		if fo[i] != want[i] {
			t.Fatalf("FullOrder = %v, want %v", fo, want)
		}
	}
	if got := y.MaxNextConfirm(); got != 3 {
		t.Errorf("MaxNextConfirm = %d", got)
	}
}

func TestFullOrderKeepsShortOrderPrefixAndDedups(t *testing.T) {
	la, lb := lbl(1, 1, 0), lbl(1, 2, 0)
	// The rep's order deliberately disagrees with label order (lb first).
	y := GotState{
		5: {Con: map[types.Label]types.Value{la: "a", lb: "b"}, Ord: []types.Label{lb, la}, Next: 1, High: types.ViewID{Epoch: 3, Proc: 0}},
		1: {Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la}, Next: 1, High: types.G0()},
	}
	fo := y.FullOrder()
	if len(fo) != 2 || fo[0] != lb || fo[1] != la {
		t.Fatalf("FullOrder = %v, want rep's order [lb la] with no duplicates", fo)
	}
}

func TestChosenRepPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChosenRep of empty gotstate did not panic")
		}
	}()
	GotState{}.ChosenRep()
}

func TestMaxNextConfirmDefaultsToOne(t *testing.T) {
	if got := (GotState{}).MaxNextConfirm(); got != 1 {
		t.Errorf("MaxNextConfirm(empty) = %d, want 1", got)
	}
}

// TestFullOrderProperties: for random gotstates, fullorder (a) starts with
// shortorder, (b) contains every label of knowncontent exactly once, and
// (c) lists the remainder in ascending label order.
func TestFullOrderProperties(t *testing.T) {
	type rawSummary struct {
		OrdSeqs []uint8
		ConSeqs []uint8
		High    uint8
		Next    uint8
	}
	cfg := &quick.Config{MaxCount: 300}
	f := func(raws [3]rawSummary) bool {
		y := GotState{}
		for i, raw := range raws {
			con := map[types.Label]types.Value{}
			var ord []types.Label
			seen := map[types.Label]bool{}
			for _, s := range raw.OrdSeqs {
				l := lbl(1, int(s%8)+1, types.ProcID(s%3))
				if !seen[l] {
					seen[l] = true
					ord = append(ord, l)
					con[l] = "v"
				}
			}
			for _, s := range raw.ConSeqs {
				l := lbl(1, int(s%8)+1, types.ProcID(s%3))
				con[l] = "v"
			}
			y[types.ProcID(i)] = &Summary{
				Con: con, Ord: ord, Next: int(raw.Next), High: types.ViewID{Epoch: int64(raw.High % 4), Proc: 0},
			}
		}
		fo := y.FullOrder()
		short := y.ShortOrder()
		// (a) prefix
		if len(fo) < len(short) {
			return false
		}
		for i := range short {
			if fo[i] != short[i] {
				return false
			}
		}
		// (b) exactly the knowncontent domain, no duplicates
		seen := map[types.Label]bool{}
		for _, l := range fo {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		kc := y.KnownContent()
		if len(seen) != len(kc) {
			return false
		}
		for l := range kc {
			if !seen[l] {
				return false
			}
		}
		// (c) tail sorted
		tail := fo[len(short):]
		for i := 1; i < len(tail); i++ {
			if tail[i].Less(tail[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLabeledValueAndSummaryString(t *testing.T) {
	lv := LabeledValue{L: lbl(1, 1, 0), A: "v"}
	if lv.String() == "" {
		t.Error("empty LabeledValue string")
	}
	x := &Summary{Con: map[types.Label]types.Value{lbl(1, 1, 0): "v"}, Ord: []types.Label{lbl(1, 1, 0)}, Next: 1}
	if x.String() == "" {
		t.Error("empty Summary string")
	}
}
