package vstoto

import (
	"fmt"

	"repro/internal/types"
)

// CheckDeepInvariants verifies the history-dependent invariants of
// Section 6 that need the established/buildorder history variables:
// Lemmas 6.13, 6.14, 6.17, 6.20 and 6.21. They are costlier than
// CheckInvariants (quadratic in places), so the randomized harnesses call
// them per step only for small configurations; the explorer always does.
func (s *System) CheckDeepInvariants() error {
	procs := s.VS.Procs().Members()
	for _, p := range procs {
		if !s.Procs[p].TrackHistory {
			return nil // history variables absent; nothing to check
		}
	}

	// Lemma 6.17: if established[p, v.id] then every member of v has
	// current.id ≥ v.id.
	for _, p := range procs {
		for gid, est := range s.Procs[p].Established {
			if !est {
				continue
			}
			v, ok := s.VS.Created[gid]
			if !ok {
				if gid == types.G0() {
					continue // initial view of a sub-universe P0
				}
				return fmt.Errorf("lemma 6.17: established[%v,%v] but view not created", p, gid)
			}
			for _, q := range v.Set.Members() {
				cur := s.Procs[q].Current.ID
				if cur.IsBottom() || cur.Less(gid) {
					return fmt.Errorf("lemma 6.17: established[%v,%v] but member %v is at %v",
						p, gid, q, cur)
				}
			}
		}
	}

	// Lemmas 6.13/6.14: once p established a primary view v and moved on,
	// p's highprimary (6.13) and every summary of p for higher views
	// (6.14) stay at or above v.id.
	for _, p := range procs {
		proc := s.Procs[p]
		for gid, est := range proc.Established {
			if !est || gid == types.G0() {
				continue
			}
			v, ok := s.VS.Created[gid]
			if !ok || !s.QS.IsQuorumContained(v.Set) {
				continue
			}
			if !proc.Current.ID.IsBottom() && gid.Less(proc.Current.ID) {
				if proc.HighPrimary.Less(gid) {
					return fmt.Errorf("lemma 6.13: %v established primary %v (now at %v) but highprimary=%v",
						p, gid, proc.Current.ID, proc.HighPrimary)
				}
				for _, sa := range s.allStateAll() {
					if sa.P == p && gid.Less(sa.G) && sa.X.High.Less(gid) {
						return fmt.Errorf("lemma 6.14: allstate[%v,%v] has high=%v < established primary %v",
							sa.P, sa.G, sa.X.High, gid)
					}
				}
			}
		}
	}

	// Lemma 6.20: a label in safe-labels_p implies primary_p, and the
	// order_p prefix through that label is a prefix of buildorder[q, g]
	// at every member q of the current view.
	for _, p := range procs {
		proc := s.Procs[p]
		if len(proc.SafeLabels) == 0 {
			continue
		}
		if !proc.Primary() {
			return fmt.Errorf("lemma 6.20: safe-labels_%v nonempty in a non-primary view", p)
		}
		// Longest order prefix terminated by a safe label.
		longest := 0
		for i, l := range proc.Order {
			if proc.SafeLabels[l] {
				longest = i + 1
			}
		}
		if longest == 0 {
			continue
		}
		sigma := proc.Order[:longest]
		// The prefix check applies to positions whose entire preceding
		// prefix is safe — confirmability requires contiguity, so check the
		// contiguous safe prefix only.
		contig := 0
		for _, l := range proc.Order {
			if proc.SafeLabels[l] {
				contig++
			} else {
				break
			}
		}
		sigma = sigma[:contig]
		for _, q := range proc.Current.Set.Members() {
			bo := s.Procs[q].BuildOrder[proc.Current.ID]
			if !isPrefix(sigma, bo) {
				return fmt.Errorf("lemma 6.20: safe prefix of order_%v (len %d) not a prefix of buildorder[%v,%v] (len %d)",
					p, len(sigma), q, proc.Current.ID, len(bo))
			}
		}
	}

	// Lemma 6.21: every summary's ord is closed under
	// sent-before-by-the-same-client with respect to allcontent.
	// Equivalent linear form: for each origin o, the o-labels of ord, read
	// in position order, must be exactly the first k labels of o's sorted
	// allcontent labels, in that sorted order.
	allcontent, err := s.AllContent()
	if err != nil {
		return err
	}
	perOrigin := make(map[types.ProcID][]types.Label)
	for l := range allcontent {
		perOrigin[l.Origin] = append(perOrigin[l.Origin], l)
	}
	for _, ls := range perOrigin {
		types.SortLabels(ls)
	}
	for _, sa := range s.allStateAll() {
		seen := make(map[types.ProcID]int)
		for i, l := range sa.X.Ord {
			want := perOrigin[l.Origin]
			k := seen[l.Origin]
			if k >= len(want) || want[k] != l {
				expected := "none"
				if k < len(want) {
					expected = want[k].String()
				}
				return fmt.Errorf("lemma 6.21: allstate[%v,%v].ord(%d)=%v but origin's next expected label is %s",
					sa.P, sa.G, i+1, l, expected)
			}
			seen[l.Origin] = k + 1
		}
	}
	return nil
}
