package vstoto

import (
	"testing"

	"repro/internal/ioa"
)

// TestRegressionLabelDuringRecovery pins the seed that originally exposed
// the duplicate-ordering bug: with label(a)_p enabled during recovery (the
// literal Figure 10 precondition), a value labeled between newview and
// summary-send is ordered twice — once via fullorder at establishment and
// once when its ordinary message arrives — breaking Lemma 6.21 and the
// forward simulation. The strengthened precondition (status = normal) must
// keep this execution clean.
func TestRegressionLabelDuringRecovery(t *testing.T) {
	exec, _, _ := buildSystem(t, 4, 4, 1, 0.08)
	if err := exec.Run(1500); err != nil {
		t.Fatalf("regression: %v\ntrace tail:\n%v", err, ioa.FormatTrace(tail(exec.Trace(), 20)))
	}
}
