package vstoto

import (
	"testing"

	"repro/internal/types"
)

func gid(epoch int64, proc types.ProcID) types.ViewID {
	return types.ViewID{Epoch: epoch, Proc: proc}
}

func newTestProc(id types.ProcID, n int) *Proc {
	procs := types.RangeProcSet(n)
	p := NewProc(id, types.Majorities{Universe: procs}, procs)
	p.TrackHistory = true
	return p
}

func TestInitialStateInsideAndOutsideP0(t *testing.T) {
	procs := types.RangeProcSet(3)
	qs := types.Majorities{Universe: procs}
	in := NewProc(0, qs, types.NewProcSet(0, 1))
	if in.Current.ID != types.G0() || in.HighPrimary != types.G0() {
		t.Errorf("member of P0: current=%v high=%v", in.Current.ID, in.HighPrimary)
	}
	out := NewProc(2, qs, types.NewProcSet(0, 1))
	if !out.Current.ID.IsBottom() || !out.HighPrimary.IsBottom() {
		t.Errorf("outsider: current=%v high=%v", out.Current.ID, out.HighPrimary)
	}
	if out.Primary() {
		t.Error("⊥-view processor reports primary")
	}
}

func TestLabelAssignsSequentialLabels(t *testing.T) {
	p := newTestProc(0, 3)
	p.Bcast("a")
	p.Bcast("b")
	l1 := p.Label()
	l2 := p.Label()
	if l1 != (types.Label{ID: types.G0(), Seqno: 1, Origin: 0}) {
		t.Errorf("l1 = %v", l1)
	}
	if l2.Seqno != 2 {
		t.Errorf("l2 = %v", l2)
	}
	if p.Content[l1] != "a" || p.Content[l2] != "b" {
		t.Error("content wrong")
	}
	if len(p.Buffer) != 2 || len(p.Delay) != 0 {
		t.Error("buffer/delay wrong")
	}
	if _, ok := p.LabelEnabled(); ok {
		t.Error("label enabled with empty delay")
	}
}

func TestLabelRequiresViewAndNormalStatus(t *testing.T) {
	procs := types.RangeProcSet(3)
	outsider := NewProc(2, types.Majorities{Universe: procs}, types.NewProcSet(0, 1))
	outsider.Bcast("stuck")
	if _, ok := outsider.LabelEnabled(); ok {
		t.Error("label enabled with ⊥ view")
	}
	p := newTestProc(0, 3)
	p.Bcast("x")
	p.Newview(types.View{ID: gid(2, 0), Set: types.RangeProcSet(3)})
	if _, ok := p.LabelEnabled(); ok {
		t.Error("label enabled during recovery (status=send)")
	}
}

func TestGpsndValueRequiresNormalAndBufferHead(t *testing.T) {
	p := newTestProc(0, 3)
	if _, ok := p.GpsndValueEnabled(); ok {
		t.Error("gpsnd enabled with empty buffer")
	}
	p.Bcast("a")
	p.Label()
	lv, ok := p.GpsndValueEnabled()
	if !ok || lv.A != "a" {
		t.Fatalf("gpsnd enabled=%t lv=%v", ok, lv)
	}
	got := p.GpsndValue()
	if got != lv || len(p.Buffer) != 0 {
		t.Error("gpsnd did not consume the buffer head")
	}
}

func TestNewviewResetsPerViewState(t *testing.T) {
	p := newTestProc(0, 3)
	p.Bcast("a")
	p.Label()
	p.SafeLabels[types.Label{ID: types.G0(), Seqno: 1, Origin: 0}] = true
	v2 := types.View{ID: gid(2, 1), Set: types.RangeProcSet(3)}
	p.Newview(v2)
	if p.Status != StatusSend || p.Current.ID != v2.ID {
		t.Errorf("status=%v current=%v", p.Status, p.Current.ID)
	}
	if len(p.Buffer) != 0 || len(p.SafeLabels) != 0 || len(p.GotState) != 0 || len(p.SafeExch) != 0 {
		t.Error("per-view state not reset")
	}
	if p.NextSeqno != 1 {
		t.Error("nextseqno not reset")
	}
	if len(p.Content) == 0 {
		t.Error("content must survive view changes")
	}
}

// runStateExchange drives a full three-member state exchange at p with
// the given peer summaries, returning after establishment.
func runStateExchange(t *testing.T, p *Proc, v types.View, peers map[types.ProcID]*Summary) {
	t.Helper()
	p.Newview(v)
	own := p.GpsndSummary() // send + collect
	p.GprcvSummary(p.ID(), own)
	for q, x := range peers {
		p.GprcvSummary(q, x)
	}
	if p.Status != StatusNormal {
		t.Fatalf("exchange did not establish: status=%v gotstate=%d", p.Status, len(p.GotState))
	}
}

func TestEstablishPrimaryAdoptsFullOrder(t *testing.T) {
	p := newTestProc(0, 3)
	// p labeled two values in g0 and ordered them.
	p.Bcast("a")
	p.Bcast("b")
	la := p.Label()
	lb := p.Label()
	p.GprcvValue(LabeledValue{L: la, A: "a"})
	p.GprcvValue(LabeledValue{L: lb, A: "b"})

	// Peer knows an extra label from g0 that p never saw.
	lc := types.Label{ID: types.G0(), Seqno: 1, Origin: 1}
	peer := &Summary{
		Con:  map[types.Label]types.Value{lc: "c"},
		Ord:  []types.Label{lc},
		Next: 1,
		High: types.G0(),
	}
	other := &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()}

	v2 := types.View{ID: gid(2, 0), Set: types.RangeProcSet(3)}
	runStateExchange(t, p, v2, map[types.ProcID]*Summary{1: peer, 2: other})

	if !p.Primary() {
		t.Fatal("three of three is not primary?")
	}
	if p.HighPrimary != v2.ID {
		t.Errorf("highprimary = %v, want %v", p.HighPrimary, v2.ID)
	}
	// fullorder: chosenrep is the max-procid member with max high (all
	// g0) → p2, whose ord is empty; so everything appears in label order.
	want := []types.Label{lc, la, lb} // lc has origin 1 but seqno... all in g0:
	types.SortLabels(want)
	if len(p.Order) != 3 {
		t.Fatalf("order = %v", p.Order)
	}
	for i := range want {
		if p.Order[i] != want[i] {
			t.Fatalf("order = %v, want %v", p.Order, want)
		}
	}
	if p.Content[lc] != "c" {
		t.Error("peer content not merged")
	}
	if !p.Established[v2.ID] {
		t.Error("established not recorded")
	}
}

func TestEstablishNonPrimaryAdoptsShortOrder(t *testing.T) {
	p := newTestProc(0, 5) // majority of 5 needs 3; view of 2 is non-primary
	lx := types.Label{ID: types.G0(), Seqno: 1, Origin: 1}
	rep := &Summary{
		Con:  map[types.Label]types.Value{lx: "x"},
		Ord:  []types.Label{lx},
		Next: 2,
		High: types.G0(),
	}
	v2 := types.View{ID: gid(2, 0), Set: types.NewProcSet(0, 1)}
	runStateExchange(t, p, v2, map[types.ProcID]*Summary{1: rep})

	if p.Primary() {
		t.Fatal("two of five considered primary")
	}
	// shortorder = chosenrep's ord. chosenrep = max procid among max-high
	// = p1 (p0's high is also g0 but p1 > p0).
	if len(p.Order) != 1 || p.Order[0] != lx {
		t.Fatalf("order = %v, want [%v]", p.Order, lx)
	}
	if p.HighPrimary != types.G0() {
		t.Errorf("highprimary = %v, want g0 (maxprimary)", p.HighPrimary)
	}
	if p.NextConfirm != 2 {
		t.Errorf("nextconfirm = %d, want maxnextconfirm 2", p.NextConfirm)
	}
}

func TestConfirmAndBrcvFlow(t *testing.T) {
	p := newTestProc(0, 3)
	p.Bcast("a")
	la := p.Label()
	p.GpsndValue() // consume the buffer (self-delivery comes back via VS)
	p.GprcvValue(LabeledValue{L: la, A: "a"})
	if p.ConfirmEnabled() {
		t.Fatal("confirm enabled before safe")
	}
	p.SafeValue(LabeledValue{L: la, A: "a"})
	if !p.ConfirmEnabled() {
		t.Fatal("confirm not enabled after safe")
	}
	p.Confirm()
	if p.ConfirmEnabled() {
		t.Fatal("confirm re-enabled past order end")
	}
	from, a, ok := p.BrcvEnabled()
	if !ok || from != 0 || a != "a" {
		t.Fatalf("brcv enabled=%t from=%v a=%q", ok, from, string(a))
	}
	p.Brcv()
	if _, _, ok := p.BrcvEnabled(); ok {
		t.Fatal("brcv re-enabled")
	}
	if !p.Quiescent() {
		t.Error("not quiescent after full flow")
	}
}

func TestNonPrimaryIgnoresOrderingAndSafe(t *testing.T) {
	p := newTestProc(0, 5)
	v2 := types.View{ID: gid(2, 0), Set: types.NewProcSet(0, 1)}
	rep := &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()}
	runStateExchange(t, p, v2, map[types.ProcID]*Summary{1: rep})

	l := types.Label{ID: v2.ID, Seqno: 1, Origin: 1}
	p.GprcvValue(LabeledValue{L: l, A: "v"})
	if len(p.Order) != 0 {
		t.Error("non-primary appended to order")
	}
	p.SafeValue(LabeledValue{L: l, A: "v"})
	if len(p.SafeLabels) != 0 {
		t.Error("non-primary recorded safe label")
	}
	if p.Content[l] != "v" {
		t.Error("content must still be recorded")
	}
}

func TestSafeSummaryCompletionMarksExchangeSafe(t *testing.T) {
	p := newTestProc(0, 3)
	lx := types.Label{ID: types.G0(), Seqno: 1, Origin: 1}
	peer := &Summary{
		Con: map[types.Label]types.Value{lx: "x"}, Ord: []types.Label{lx}, Next: 1, High: types.G0(),
	}
	other := &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()}
	v2 := types.View{ID: gid(2, 0), Set: types.RangeProcSet(3)}
	runStateExchange(t, p, v2, map[types.ProcID]*Summary{1: peer, 2: other})

	p.SafeSummary(0)
	p.SafeSummary(1)
	if len(p.SafeLabels) != 0 {
		t.Fatal("safe labels set before all summaries safe")
	}
	p.SafeSummary(2)
	if !p.SafeLabels[lx] {
		t.Fatal("exchange-safe did not mark recovered labels safe")
	}
	if !p.ConfirmEnabled() {
		t.Fatal("confirm not enabled after exchange safe")
	}
}

func TestSummaryMessageIsSnapshot(t *testing.T) {
	p := newTestProc(0, 3)
	p.Bcast("a")
	la := p.Label()
	x := p.SummaryMessage()
	// Mutating p afterwards must not affect the snapshot.
	p.Bcast("b")
	lb := p.Label()
	p.Order = append(p.Order, lb)
	if len(x.Con) != 1 {
		t.Errorf("snapshot con = %v", x.Con)
	}
	if _, ok := x.Con[la]; !ok {
		t.Error("snapshot missing la")
	}
	if len(x.Ord) != 0 {
		t.Error("snapshot ord grew")
	}
}

func TestDisabledActionsPanic(t *testing.T) {
	p := newTestProc(0, 3)
	for name, f := range map[string]func(){
		"Label":             func() { p.Label() },
		"GpsndValue":        func() { p.GpsndValue() },
		"CommitSummarySend": func() { p.CommitSummarySend() },
		"GpsndSummary":      func() { p.GpsndSummary() },
		"Confirm":           func() { p.Confirm() },
		"Brcv":              func() { p.Brcv() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s while disabled did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConfirmedLabels(t *testing.T) {
	p := newTestProc(0, 3)
	p.Bcast("a")
	la := p.Label()
	p.GprcvValue(LabeledValue{L: la, A: "a"})
	p.SafeValue(LabeledValue{L: la, A: "a"})
	if got := p.ConfirmedLabels(); len(got) != 0 {
		t.Fatalf("confirmed before confirm: %v", got)
	}
	p.Confirm()
	if got := p.ConfirmedLabels(); len(got) != 1 || got[0] != la {
		t.Fatalf("confirmed = %v", got)
	}
}
