package vstoto

import (
	"testing"

	"repro/internal/types"
)

// TestExploreStableGroup exhaustively checks every interleaving of two
// processors in a single stable view with two client values: all schedules
// of labeling, sending, vs-ordering, delivery, safe, confirm, and report
// satisfy the Section 6 invariants and the forward simulation.
func TestExploreStableGroup(t *testing.T) {
	res, err := Explore(ExploreConfig{
		N:         2,
		MaxBcasts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise bounds")
	}
	if res.States < 100 {
		t.Fatalf("suspiciously few states: %d", res.States)
	}
	if res.MaxQueueLen != 2 {
		t.Fatalf("deliveries not exercised: max abstract queue %d, want 2", res.MaxQueueLen)
	}
	t.Logf("stable: %d states, %d edges", res.States, res.Edges)
}

// TestExploreWithViewChange adds one view change to the menu: every
// interleaving of the state exchange with client traffic is covered,
// including schedules where the newview interrupts any stage of a value's
// progress.
func TestExploreWithViewChange(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow; skipped in -short mode")
	}
	res, err := Explore(ExploreConfig{
		N:         2,
		MaxBcasts: 1,
		Views: []types.View{
			{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
	if res.MaxQueueLen < 1 {
		t.Fatal("the value was never confirmed in any schedule")
	}
	t.Logf("view change: %d states, %d edges", res.States, res.Edges)
}

// TestExploreMinorityView covers schedules involving a non-primary view:
// a singleton view of p0 (no quorum of 2-of-2 majorities... with N=2
// majority quorums need 2, so {p0} is non-primary) interleaved with a
// return to a full primary view.
func TestExploreMinorityView(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow; skipped in -short mode")
	}
	res, err := Explore(ExploreConfig{
		N:         2,
		MaxBcasts: 1,
		Views: []types.View{
			{ID: types.ViewID{Epoch: 2, Proc: 0}, Set: types.NewProcSet(0)},
			{ID: types.ViewID{Epoch: 3, Proc: 0}, Set: types.RangeProcSet(2)},
		},
		MaxStates: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("minority: %d states, %d edges, truncated=%t, maxQueue=%d",
		res.States, res.Edges, res.Truncated, res.MaxQueueLen)
}

// TestExploreFindsLiteralLabelBug: with the paper's literal Figure 10
// label precondition (no status check), the exhaustive explorer must find
// an interleaving that breaks the safety argument — the duplicate-ordering
// defect documented in DESIGN.md. This pins both the defect and the
// explorer's ability to catch real bugs.
func TestExploreFindsLiteralLabelBug(t *testing.T) {
	_, err := Explore(ExploreConfig{
		N:         2,
		MaxBcasts: 1,
		Views: []types.View{
			{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(2)},
		},
		LiteralFigure10Label: true,
		MaxStates:            300000,
	})
	if err == nil {
		t.Fatal("exhaustive exploration did not find the literal-Figure-10 defect")
	}
	t.Logf("explorer found the defect: %v", err)
}
