package vstoto

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/types"
)

// Status is the VStoTO_p processing status of Figure 9.
type Status int

// The three statuses: normal (anywhere outside the first recovery phase),
// send (a new view was announced; the state-exchange summary is not yet
// sent), collect (waiting for the remaining members' summaries).
const (
	StatusNormal Status = iota
	StatusSend
	StatusCollect
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNormal:
		return "normal"
	case StatusSend:
		return "send"
	case StatusCollect:
		return "collect"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Proc is the per-processor VStoTO_p automaton: the state of Figure 9 with
// the transitions of Figure 10, exposed as explicit precondition/effect
// method pairs so that both the randomized ioa executor and the timed
// event-driven stack can drive it.
type Proc struct {
	id types.ProcID
	qs types.QuorumSystem

	// Current is the current view (views⊥; ⊥ encoded as ID.IsBottom()).
	Current types.View
	// NextSeqno generates the per-view label sequence numbers, from 1.
	NextSeqno int
	// Buffer holds labels of values labeled but not yet gpsnd'd.
	Buffer []types.Label
	// Order is the tentative total order of labels.
	Order []types.Label
	// NextConfirm is the 1-based index of the next unconfirmed position in
	// Order.
	NextConfirm int
	// NextReport is the 1-based index of the next confirmed position not
	// yet released to the client.
	NextReport int
	// HighPrimary is the highest established-primary view identifier that
	// has affected Order (G⊥).
	HighPrimary types.ViewID
	// Status is normal/send/collect.
	Status Status
	// Delay buffers client values not yet labeled.
	Delay []types.Value
	// Content is the label→value relation (a partial function; Lemma 6.5).
	Content map[types.Label]types.Value
	// GotState accumulates state-exchange summaries in the current view.
	GotState GotState
	// SafeExch is the set of members whose summaries are known safe.
	SafeExch map[types.ProcID]bool
	// SafeLabels is the set of labels reported safe in the current view.
	SafeLabels map[types.Label]bool

	// LiteralFigure10Label reverts label(a)_p to the paper's literal
	// precondition (no status check). It exists to *study* the resulting
	// defect: with it set, a value labeled during recovery is ordered
	// twice, and both the randomized checker and the bounded exhaustive
	// explorer find the violation (see TestExploreFindsLiteralLabelBug).
	// Never set it in real use.
	LiteralFigure10Label bool

	// History variables for the Section 6 proof apparatus (maintained when
	// TrackHistory is set; the timed stack leaves it off).
	TrackHistory bool
	// Established[g] is the paper's established[p, g].
	Established map[types.ViewID]bool
	// BuildOrder[g] is the paper's buildorder[p, g]: the last value of
	// Order while p was in view g.
	BuildOrder map[types.ViewID][]types.Label

	// Observability handles (SetObs; all nil when disabled).
	mLabels      *obs.Counter
	mConfirms    *obs.Counter
	mSummaries   *obs.Counter
	mEstablished *obs.Counter
	gOrderLen    *obs.Gauge
}

// NewProc creates VStoTO_p. Processors in p0 start in the initial view
// ⟨g0, P0⟩ with highprimary g0; the rest start with both ⊥.
func NewProc(id types.ProcID, qs types.QuorumSystem, p0 types.ProcSet) *Proc {
	p := &Proc{
		id:          id,
		qs:          qs,
		NextSeqno:   1,
		NextConfirm: 1,
		NextReport:  1,
		Content:     make(map[types.Label]types.Value),
		GotState:    make(GotState),
		SafeExch:    make(map[types.ProcID]bool),
		SafeLabels:  make(map[types.Label]bool),
		Established: make(map[types.ViewID]bool),
		BuildOrder:  make(map[types.ViewID][]types.Label),
	}
	if p0.Contains(id) {
		p.Current = types.InitialView(p0)
		p.HighPrimary = types.G0()
		p.Established[types.G0()] = true
	}
	return p
}

// ID returns the processor identifier.
func (p *Proc) ID() types.ProcID { return p.id }

// SetObs binds the layer's obs instruments from the registry (nil disables
// at zero cost): vstoto.labels/confirms/summaries/establishments counters
// and the vstoto.order_len high-water gauge.
func (p *Proc) SetObs(reg *obs.Registry) {
	p.mLabels = reg.Counter("vstoto.labels")
	p.mConfirms = reg.Counter("vstoto.confirms")
	p.mSummaries = reg.Counter("vstoto.summaries")
	p.mEstablished = reg.Counter("vstoto.establishments")
	p.gOrderLen = reg.Gauge("vstoto.order_len")
}

// Primary is the derived variable of Figure 9: current ≠ ⊥ and current.set
// contains a quorum.
func (p *Proc) Primary() bool {
	return !p.Current.ID.IsBottom() && p.qs.IsQuorumContained(p.Current.Set)
}

func (p *Proc) recordOrder() {
	if p.TrackHistory && !p.Current.ID.IsBottom() {
		// Share the order's backing array instead of copying: Order is
		// append-only within a view, and the three-index expression caps the
		// stored slice at its current length, so a later append reallocates
		// rather than writing through the shared prefix. The eager copy made
		// every primary-view gprcv O(|Order|), i.e. O(n²) per view
		// (BenchmarkRecordOrderHistory pins the asymptotic difference,
		// TestBuildOrderImmutable the aliasing safety).
		p.BuildOrder[p.Current.ID] = p.Order[:len(p.Order):len(p.Order)]
	}
}

// --- Input actions -------------------------------------------------------

// Bcast applies the input bcast(a)_p: append a to delay.
func (p *Proc) Bcast(a types.Value) { p.Delay = append(p.Delay, a) }

// Newview applies the input newview(v)_p.
func (p *Proc) Newview(v types.View) {
	p.Current = v
	p.NextSeqno = 1
	p.Buffer = nil
	p.GotState = make(GotState)
	p.SafeExch = make(map[types.ProcID]bool)
	p.SafeLabels = make(map[types.Label]bool)
	p.Status = StatusSend
}

// GprcvValue applies the input gprcv(⟨l,a⟩)_{q,p} for an ordinary message.
func (p *Proc) GprcvValue(lv LabeledValue) {
	p.Content[lv.L] = lv.A
	if p.Primary() {
		p.Order = append(p.Order, lv.L)
		p.gOrderLen.Max(int64(len(p.Order)))
		p.recordOrder()
	}
}

// GprcvSummary applies the input gprcv(x)_{q,p} for a state-exchange
// summary; it performs view establishment when the last summary arrives.
func (p *Proc) GprcvSummary(q types.ProcID, x *Summary) {
	for l, a := range x.Con {
		p.Content[l] = a
	}
	p.GotState[q] = x
	if p.GotState.domainEquals(p.Current.Set) && p.Status == StatusCollect {
		p.NextConfirm = p.GotState.MaxNextConfirm()
		if p.Primary() {
			// FullOrder already returns a fresh slice; no defensive copy.
			p.Order = p.GotState.FullOrder()
			p.HighPrimary = p.Current.ID
		} else {
			// ShortOrder aliases the chosen representative's summary; cap the
			// slice at its length so appends in a later primary view
			// reallocate instead of mutating the (immutable) summary.
			short := p.GotState.ShortOrder()
			p.Order = short[:len(short):len(short)]
			p.HighPrimary = p.GotState.MaxPrimary()
		}
		p.Status = StatusNormal
		p.mEstablished.Inc()
		p.gOrderLen.Max(int64(len(p.Order)))
		if p.TrackHistory {
			p.Established[p.Current.ID] = true
		}
		p.recordOrder()
	}
}

// SafeValue applies the input safe(⟨l,a⟩)_{q,p}.
func (p *Proc) SafeValue(lv LabeledValue) {
	if p.Primary() {
		p.SafeLabels[lv.L] = true
	}
}

// SafeSummary applies the input safe(x)_{q,p} for a state-exchange summary.
func (p *Proc) SafeSummary(q types.ProcID) {
	p.SafeExch[q] = true
	if p.safeExchComplete() && p.Primary() {
		for _, l := range p.GotState.FullOrder() {
			p.SafeLabels[l] = true
		}
	}
}

func (p *Proc) safeExchComplete() bool {
	if p.Current.ID.IsBottom() || len(p.SafeExch) != p.Current.Set.Size() {
		return false
	}
	for _, q := range p.Current.Set.Members() {
		if !p.SafeExch[q] {
			return false
		}
	}
	return true
}

// --- Locally controlled actions ------------------------------------------

// LabelEnabled reports whether the internal action label(a)_p is enabled,
// returning the value at the head of delay.
//
// Figure 10 states the precondition as "a is head of delay ∧ current ≠ ⊥";
// we additionally require status = normal. Without it, a value labeled
// between newview and the completion of state exchange enters the sender's
// own summary con, is ordered once at establishment (via fullorder) and
// again when its ordinary message is later delivered — a duplicate that
// breaks Lemma 6.21 and the forward simulation (our randomized checker
// finds this in seconds). The delay queue exists precisely to hold values
// during recovery, so the strengthened precondition matches the paper's
// intent ("normal activity") and restores the proven invariants.
func (p *Proc) LabelEnabled() (types.Value, bool) {
	if len(p.Delay) == 0 || p.Current.ID.IsBottom() {
		return "", false
	}
	if p.Status != StatusNormal && !p.LiteralFigure10Label {
		return "", false
	}
	return p.Delay[0], true
}

// Label performs label(a)_p and returns the label assigned.
func (p *Proc) Label() types.Label {
	a, ok := p.LabelEnabled()
	if !ok {
		panic("vstoto: Label performed while disabled")
	}
	l := types.Label{ID: p.Current.ID, Seqno: p.NextSeqno, Origin: p.id}
	p.mLabels.Inc()
	p.Content[l] = a
	p.Buffer = append(p.Buffer, l)
	p.NextSeqno++
	p.Delay = p.Delay[1:]
	return l
}

// GpsndValueEnabled reports whether gpsnd(⟨l,a⟩)_p is enabled, returning
// the pair to send.
func (p *Proc) GpsndValueEnabled() (LabeledValue, bool) {
	if p.Status != StatusNormal || len(p.Buffer) == 0 {
		return LabeledValue{}, false
	}
	l := p.Buffer[0]
	a, ok := p.Content[l]
	if !ok {
		return LabeledValue{}, false
	}
	return LabeledValue{L: l, A: a}, true
}

// GpsndValue performs gpsnd(⟨l,a⟩)_p, returning the message for the VS
// layer.
func (p *Proc) GpsndValue() LabeledValue {
	lv, ok := p.GpsndValueEnabled()
	if !ok {
		panic("vstoto: GpsndValue performed while disabled")
	}
	p.Buffer = p.Buffer[1:]
	return lv
}

// GpsndSummaryEnabled reports whether the state-exchange gpsnd(x)_p is
// enabled.
func (p *Proc) GpsndSummaryEnabled() bool { return p.Status == StatusSend }

// SummaryMessage builds (without any state change) the summary
// x = ⟨content, order, nextconfirm, highprimary⟩ that the state-exchange
// gpsnd would carry. The summary is an immutable snapshot: Ord shares the
// order's backing array with its capacity clipped (Order is append-only, so
// any later growth reallocates away from the shared prefix — O(1) instead
// of an O(|Order|) copy per send; TestSummaryImmutable pins it). Con must
// still be copied: Content is a map, mutated in place by later labels and
// deliveries, and maps have no copy-on-write prefix to share.
func (p *Proc) SummaryMessage() *Summary {
	con := make(map[types.Label]types.Value, len(p.Content))
	for l, a := range p.Content {
		con[l] = a
	}
	return &Summary{
		Con:  con,
		Ord:  p.Order[:len(p.Order):len(p.Order)],
		Next: p.NextConfirm,
		High: p.HighPrimary,
	}
}

// CommitSummarySend applies the effect of the state-exchange gpsnd(x)_p:
// status moves from send to collect.
func (p *Proc) CommitSummarySend() {
	if !p.GpsndSummaryEnabled() {
		panic("vstoto: CommitSummarySend while not in send status")
	}
	p.mSummaries.Inc()
	p.Status = StatusCollect
}

// GpsndSummary performs the state-exchange gpsnd(x)_p: it builds the
// summary snapshot and moves to collect.
func (p *Proc) GpsndSummary() *Summary {
	if !p.GpsndSummaryEnabled() {
		panic("vstoto: GpsndSummary performed while disabled")
	}
	x := p.SummaryMessage()
	p.CommitSummarySend()
	return x
}

// ConfirmEnabled reports whether the internal action confirm_p is enabled.
func (p *Proc) ConfirmEnabled() bool {
	if !p.Primary() || p.NextConfirm > len(p.Order) {
		return false
	}
	return p.SafeLabels[p.Order[p.NextConfirm-1]]
}

// Confirm performs confirm_p.
func (p *Proc) Confirm() {
	if !p.ConfirmEnabled() {
		panic("vstoto: Confirm performed while disabled")
	}
	p.mConfirms.Inc()
	p.NextConfirm++
}

// BrcvEnabled reports whether the output brcv(a)_{q,p} is enabled,
// returning the origin q and value a.
func (p *Proc) BrcvEnabled() (types.ProcID, types.Value, bool) {
	return p.BrcvEnabledAt(p.NextReport)
}

// BrcvEnabledAt reports whether brcv would be enabled with NextReport at
// pos — the lookahead the pipelined stack uses to write delivery records
// for positions beyond the one currently awaiting its durability callback,
// without committing the automaton state until each release actually
// happens.
func (p *Proc) BrcvEnabledAt(pos int) (types.ProcID, types.Value, bool) {
	if pos >= p.NextConfirm || pos > len(p.Order) {
		return 0, "", false
	}
	l := p.Order[pos-1]
	a, ok := p.Content[l]
	if !ok {
		return 0, "", false
	}
	return l.Origin, a, true
}

// Brcv performs brcv(a)_{q,p}, returning the origin and value released to
// the client.
func (p *Proc) Brcv() (types.ProcID, types.Value) {
	q, a, ok := p.BrcvEnabled()
	if !ok {
		panic("vstoto: Brcv performed while disabled")
	}
	p.NextReport++
	return q, a
}

// Quiescent reports whether no locally controlled action is enabled — used
// by the timed stack, where good processors run enabled actions eagerly.
func (p *Proc) Quiescent() bool {
	if _, ok := p.LabelEnabled(); ok {
		return false
	}
	if _, ok := p.GpsndValueEnabled(); ok {
		return false
	}
	if p.GpsndSummaryEnabled() || p.ConfirmEnabled() {
		return false
	}
	_, _, brcv := p.BrcvEnabled()
	return !brcv
}

// ConfirmedLabels returns the confirmed prefix of Order (the paper's
// order-derived confirm sequence for this processor's own summary).
func (p *Proc) ConfirmedLabels() []types.Label {
	n := p.NextConfirm - 1
	if n > len(p.Order) {
		n = len(p.Order)
	}
	return p.Order[:n]
}

// StateSummary returns the summary whose components are the current local
// state (the x of allstate clause 1), without changing status.
func (p *Proc) StateSummary() *Summary {
	return &Summary{Con: p.Content, Ord: p.Order, Next: p.NextConfirm, High: p.HighPrimary}
}
