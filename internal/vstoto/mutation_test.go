package vstoto

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// The Section 6 invariant checker and the forward-simulation checker are
// only worth their cost if they actually fire on broken states. These
// mutation tests corrupt a healthy composed system in targeted ways and
// require the corresponding check to detect it.

// healthySystem builds a small established system with one confirmed value.
func healthySystem(t *testing.T) (*System, *SimulationChecker) {
	t.Helper()
	procs := types.RangeProcSet(2)
	qs := types.Majorities{Universe: procs}
	vs := vsmachine.New(procs, procs)
	procMap := map[types.ProcID]*Proc{}
	for _, p := range procs.Members() {
		pr := NewProc(p, qs, procs)
		pr.TrackHistory = true
		procMap[p] = pr
	}
	sys := NewSystem(vs, procMap, qs)
	sim := NewSimulationChecker(sys)

	// Drive one value through: bcast at p0, label, gpsnd, vs-order,
	// gprcv everywhere, safe everywhere, confirm, brcv.
	p0, p1 := procMap[0], procMap[1]
	step := func(name string, act ioa.Action, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sys.CheckInvariants(); err != nil {
			t.Fatalf("invariants after %s: %v", name, err)
		}
		if err := sim.AfterStep(act); err != nil {
			t.Fatalf("simulation after %s: %v", name, err)
		}
	}
	step("bcast", tomachine.Bcast{A: "a", P: 0}, func() error { p0.Bcast("a"); return nil })
	step("label", LabelAct{A: "a", P: 0}, func() error { p0.Label(); return nil })
	var lv LabeledValue
	step("gpsnd", vsmachine.Gpsnd{P: 0}, func() error {
		lv = p0.GpsndValue()
		vs.ApplyGpsnd(lv, 0)
		return nil
	})
	step("vs-order", vsmachine.VSOrder{P: 0, G: types.G0()}, func() error {
		return vs.ApplyVSOrder(lv, 0, types.G0())
	})
	step("gprcv@0", vsmachine.Gprcv{P: 0, Q: 0}, func() error {
		if err := vs.ApplyGprcv(lv, 0, 0); err != nil {
			return err
		}
		p0.GprcvValue(lv)
		return nil
	})
	step("gprcv@1", vsmachine.Gprcv{P: 0, Q: 1}, func() error {
		if err := vs.ApplyGprcv(lv, 0, 1); err != nil {
			return err
		}
		p1.GprcvValue(lv)
		return nil
	})
	step("safe@0", vsmachine.Safe{P: 0, Q: 0}, func() error {
		if err := vs.ApplySafe(lv, 0, 0); err != nil {
			return err
		}
		p0.SafeValue(lv)
		return nil
	})
	step("confirm@0", ConfirmAct{P: 0}, func() error { p0.Confirm(); return nil })
	return sys, sim
}

func requireViolation(t *testing.T, sys *System, wantSubstring string) {
	t.Helper()
	err := sys.CheckInvariants()
	if err == nil {
		t.Fatalf("corruption not detected (want %q)", wantSubstring)
	}
	if !strings.Contains(err.Error(), wantSubstring) {
		t.Fatalf("wrong violation: got %v, want substring %q", err, wantSubstring)
	}
}

func TestMutationContentDisagreement(t *testing.T) {
	sys, _ := healthySystem(t)
	// Bind an existing label to a different value at p1: allcontent stops
	// being a function (Lemma 6.5).
	for l := range sys.Procs[0].Content {
		sys.Procs[1].Content[l] = "DIFFERENT"
		break
	}
	requireViolation(t, sys, "lemma 6.5")
}

func TestMutationHighPrimaryAboveView(t *testing.T) {
	sys, _ := healthySystem(t)
	sys.Procs[0].HighPrimary = types.ViewID{Epoch: 99, Proc: 0}
	requireViolation(t, sys, "lemma 6.1")
	// (detected as 6.12/6.11 once views agree; with the current view g0 it
	// shows up through the 6.12 bound on the state summary)
}

func TestMutationStatusWithoutView(t *testing.T) {
	sys, _ := healthySystem(t)
	sys.Procs[1].Current = types.View{}
	requireViolation(t, sys, "lemma 6.1")
}

func TestMutationBufferForeignLabel(t *testing.T) {
	sys, _ := healthySystem(t)
	sys.Procs[0].Buffer = append(sys.Procs[0].Buffer,
		types.Label{ID: types.G0(), Seqno: 9, Origin: 1}) // wrong origin
	requireViolation(t, sys, "lemma 6.3")
}

func TestMutationConfirmBeyondOrder(t *testing.T) {
	sys, _ := healthySystem(t)
	sys.Procs[0].NextConfirm = len(sys.Procs[0].Order) + 5
	requireViolation(t, sys, "lemma 6.22(2)")
}

func TestMutationDivergentConfirms(t *testing.T) {
	sys, _ := healthySystem(t)
	// Give p1 a confirmed order that contradicts p0's.
	alien := types.Label{ID: types.G0(), Seqno: 7, Origin: 1}
	sys.Procs[1].Content[alien] = "z"
	sys.Procs[1].Order = []types.Label{alien}
	sys.Procs[1].NextConfirm = 2
	err := sys.CheckInvariants()
	if err == nil {
		t.Fatal("divergent confirms not detected")
	}
	// Several invariants can fire first (the alien label already violates
	// the Lemma 6.4 label bound); any detection is what matters here.
	t.Logf("detected as: %v", err)
}

func TestMutationSimulationCatchesPhantomDelivery(t *testing.T) {
	sys, sim := healthySystem(t)
	// p1 "delivers" without the value being confirmed at it in order:
	// bump nextreport beyond nextconfirm is caught by the basic bound; so
	// instead deliver a value at the abstract level that was never
	// to-ordered: forge a brcv action for a value not in the shadow queue.
	p1 := sys.Procs[1]
	p1.Order = append([]types.Label(nil), sys.Procs[0].Order...)
	p1.NextConfirm = 2
	p1.NextReport = 2
	// f(x).next[1] = 2 but the shadow machine still has next[1] = 1.
	if err := sim.checkCorrespondence(); err == nil {
		t.Fatal("phantom delivery not detected by the simulation checker")
	}
}

func TestMutationSimulationCatchesReorderedQueue(t *testing.T) {
	sys, sim := healthySystem(t)
	// Inject a second confirmed label at p0 whose value was never
	// submitted through bcast: the shadow's to-order must fail.
	ghost := types.Label{ID: types.G0(), Seqno: 5, Origin: 0}
	p0 := sys.Procs[0]
	p0.Content[ghost] = "ghost"
	p0.Order = append(p0.Order, ghost)
	p0.SafeLabels[ghost] = true
	p0.NextConfirm++
	if err := sim.AfterStep(ConfirmAct{P: 0}); err == nil {
		t.Fatal("unsubmitted confirmed value not detected")
	}
}

func TestMutationDeepLemma621OrderGap(t *testing.T) {
	sys, _ := healthySystem(t)
	// Fabricate an order at p0 that skips an earlier same-origin label
	// known to allcontent.
	p0 := sys.Procs[0]
	skipped := types.Label{ID: types.G0(), Seqno: 5, Origin: 0}
	later := types.Label{ID: types.G0(), Seqno: 6, Origin: 0}
	p0.Content[skipped] = "s"
	p0.Content[later] = "l"
	p0.Order = append(p0.Order, later) // later without skipped
	err := sys.CheckDeepInvariants()
	if err == nil || !strings.Contains(err.Error(), "lemma 6.21") {
		t.Fatalf("order gap not detected: %v", err)
	}
}

func TestMutationDeepLemma620SafeWithoutBuildorder(t *testing.T) {
	sys, _ := healthySystem(t)
	// Mark a label safe at p0 that p1's buildorder does not carry.
	p0, p1 := sys.Procs[0], sys.Procs[1]
	ghost := types.Label{ID: types.G0(), Seqno: 5, Origin: 0}
	p0.Content[ghost] = "g"
	p0.Order = []types.Label{ghost}
	p0.SafeLabels[ghost] = true
	_ = p1
	err := sys.CheckDeepInvariants()
	if err == nil {
		t.Fatal("safe label without member buildorder not detected")
	}
	t.Logf("detected as: %v", err)
}

func TestMutationDeepLemma613HighprimaryRollback(t *testing.T) {
	sys, _ := healthySystem(t)
	p0 := sys.Procs[0]
	// Pretend p0 established a later primary view and moved past it, but
	// with highprimary rolled back below it.
	v2 := types.View{ID: types.ViewID{Epoch: 2, Proc: 0}, Set: types.RangeProcSet(2)}
	v3 := types.View{ID: types.ViewID{Epoch: 3, Proc: 0}, Set: types.RangeProcSet(2)}
	if err := sys.VS.ApplyCreateview(v2); err != nil {
		t.Fatal(err)
	}
	if err := sys.VS.ApplyCreateview(v3); err != nil {
		t.Fatal(err)
	}
	for _, p := range sys.VS.Procs().Members() {
		if err := sys.VS.ApplyNewview(v3, p); err != nil {
			t.Fatal(err)
		}
		sys.Procs[p].Newview(v3)
		sys.Procs[p].Status = StatusNormal
		sys.Procs[p].Established[v3.ID] = true
		sys.Procs[p].HighPrimary = v3.ID
	}
	p0.Established[v2.ID] = true
	p0.HighPrimary = types.G0() // below established primary v2
	err := sys.CheckDeepInvariants()
	if err == nil || !strings.Contains(err.Error(), "lemma 6.13") {
		t.Fatalf("highprimary rollback not detected: %v", err)
	}
}
