package vstoto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Clone returns a deep copy of the processor state. Summaries referenced
// from GotState are shared (immutable once sent).
func (p *Proc) Clone() *Proc {
	out := &Proc{
		id:                   p.id,
		qs:                   p.qs,
		Current:              p.Current,
		NextSeqno:            p.NextSeqno,
		Buffer:               append([]types.Label(nil), p.Buffer...),
		Order:                append([]types.Label(nil), p.Order...),
		NextConfirm:          p.NextConfirm,
		NextReport:           p.NextReport,
		HighPrimary:          p.HighPrimary,
		Status:               p.Status,
		Delay:                append([]types.Value(nil), p.Delay...),
		Content:              make(map[types.Label]types.Value, len(p.Content)),
		GotState:             make(GotState, len(p.GotState)),
		SafeExch:             make(map[types.ProcID]bool, len(p.SafeExch)),
		SafeLabels:           make(map[types.Label]bool, len(p.SafeLabels)),
		TrackHistory:         p.TrackHistory,
		LiteralFigure10Label: p.LiteralFigure10Label,
		Established:          make(map[types.ViewID]bool, len(p.Established)),
		BuildOrder:           make(map[types.ViewID][]types.Label, len(p.BuildOrder)),
		mLabels:              p.mLabels,
		mConfirms:            p.mConfirms,
		mSummaries:           p.mSummaries,
		mEstablished:         p.mEstablished,
		gOrderLen:            p.gOrderLen,
	}
	for k, v := range p.Content {
		out.Content[k] = v
	}
	for k, v := range p.GotState {
		out.GotState[k] = v
	}
	for k, v := range p.SafeExch {
		out.SafeExch[k] = v
	}
	for k, v := range p.SafeLabels {
		out.SafeLabels[k] = v
	}
	for k, v := range p.Established {
		out.Established[k] = v
	}
	for k, v := range p.BuildOrder {
		out.BuildOrder[k] = append([]types.Label(nil), v...)
	}
	return out
}

// Fingerprint returns a canonical string identifying the processor state,
// for the bounded exhaustive explorer's visited set. History variables are
// excluded: they are functions of the reachable state and only consumed by
// the invariant checker.
func (p *Proc) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d{cur=%v#%v seq=%d st=%v conf=%d rep=%d high=%v",
		int(p.id), p.Current.ID, p.Current.Set, p.NextSeqno, p.Status,
		p.NextConfirm, p.NextReport, p.HighPrimary)
	fmt.Fprintf(&b, " buf=%v ord=%v delay=%v", p.Buffer, p.Order, p.Delay)
	b.WriteString(" con={")
	labels := make([]types.Label, 0, len(p.Content))
	for l := range p.Content {
		labels = append(labels, l)
	}
	types.SortLabels(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "%v=%q;", l, string(p.Content[l]))
	}
	b.WriteString("} got={")
	gots := make([]types.ProcID, 0, len(p.GotState))
	for q := range p.GotState {
		gots = append(gots, q)
	}
	sort.Slice(gots, func(i, j int) bool { return gots[i] < gots[j] })
	for _, q := range gots {
		fmt.Fprintf(&b, "%v=%v;", q, p.GotState[q])
	}
	b.WriteString("} safeex={")
	exs := make([]types.ProcID, 0, len(p.SafeExch))
	for q, ok := range p.SafeExch {
		if ok {
			exs = append(exs, q)
		}
	}
	sort.Slice(exs, func(i, j int) bool { return exs[i] < exs[j] })
	fmt.Fprintf(&b, "%v", exs)
	b.WriteString("} safelab={")
	sls := make([]types.Label, 0, len(p.SafeLabels))
	for l, ok := range p.SafeLabels {
		if ok {
			sls = append(sls, l)
		}
	}
	types.SortLabels(sls)
	fmt.Fprintf(&b, "%v}}", sls)
	return b.String()
}
