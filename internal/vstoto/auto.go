package vstoto

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// LabelAct is the internal action label(a)_p.
type LabelAct struct {
	A types.Value
	P types.ProcID
}

// ActionName returns "label".
func (LabelAct) ActionName() string { return "label" }

// String renders the action.
func (l LabelAct) String() string { return fmt.Sprintf("label(%q)_%v", string(l.A), l.P) }

// ConfirmAct is the internal action confirm_p.
type ConfirmAct struct {
	P types.ProcID
}

// ActionName returns "confirm".
func (ConfirmAct) ActionName() string { return "confirm" }

// String renders the action.
func (c ConfirmAct) String() string { return fmt.Sprintf("confirm_%v", c.P) }

// Auto adapts one VStoTO_p to the ioa framework. Its action vocabulary is
// exactly Figure 9's signature: bcast/brcv at the client interface (shared
// with TO-machine's action types) and gpsnd/gprcv/safe/newview at the VS
// interface (shared with VS-machine's action types), plus the internal
// label and confirm.
type Auto struct {
	P *Proc
}

// NewAuto wraps a fresh VStoTO_p with history tracking on (the randomized
// safety checks need it).
func NewAuto(id types.ProcID, qs types.QuorumSystem, p0 types.ProcSet) *Auto {
	p := NewProc(id, qs, p0)
	p.TrackHistory = true
	return &Auto{P: p}
}

// Name returns "VStoTO_pN".
func (a *Auto) Name() string { return fmt.Sprintf("VStoTO_%v", a.P.id) }

// Classify implements Figure 9's signature for this processor.
func (a *Auto) Classify(act ioa.Action) ioa.Kind {
	id := a.P.id
	switch t := act.(type) {
	case tomachine.Bcast:
		if t.P == id {
			return ioa.Input
		}
	case tomachine.Brcv:
		if t.Q == id {
			return ioa.Output
		}
	case vsmachine.Gpsnd:
		if t.P == id {
			return ioa.Output
		}
	case vsmachine.Gprcv:
		if t.Q == id {
			return ioa.Input
		}
	case vsmachine.Safe:
		if t.Q == id {
			return ioa.Input
		}
	case vsmachine.Newview:
		if t.P == id {
			return ioa.Input
		}
	case LabelAct:
		if t.P == id {
			return ioa.Internal
		}
	case ConfirmAct:
		if t.P == id {
			return ioa.Internal
		}
	}
	return ioa.NotInSignature
}

// Input applies an input action.
func (a *Auto) Input(act ioa.Action) {
	switch t := act.(type) {
	case tomachine.Bcast:
		a.P.Bcast(t.A)
	case vsmachine.Gprcv:
		switch m := t.M.(type) {
		case LabeledValue:
			a.P.GprcvValue(m)
		case *Summary:
			a.P.GprcvSummary(t.P, m)
		default:
			panic(fmt.Sprintf("vstoto: unexpected gprcv payload %T", t.M))
		}
	case vsmachine.Safe:
		switch m := t.M.(type) {
		case LabeledValue:
			a.P.SafeValue(m)
		case *Summary:
			a.P.SafeSummary(t.P)
		default:
			panic(fmt.Sprintf("vstoto: unexpected safe payload %T", t.M))
		}
	case vsmachine.Newview:
		a.P.Newview(t.V)
	default:
		panic(fmt.Sprintf("vstoto: unexpected input %v", act))
	}
}

// Enabled enumerates the enabled locally controlled actions of Figure 10.
func (a *Auto) Enabled(buf []ioa.Action) []ioa.Action {
	p := a.P
	if v, ok := p.LabelEnabled(); ok {
		buf = append(buf, LabelAct{A: v, P: p.id})
	}
	if lv, ok := p.GpsndValueEnabled(); ok {
		buf = append(buf, vsmachine.Gpsnd{M: lv, P: p.id})
	}
	if p.GpsndSummaryEnabled() {
		buf = append(buf, vsmachine.Gpsnd{M: p.SummaryMessage(), P: p.id})
	}
	if p.ConfirmEnabled() {
		buf = append(buf, ConfirmAct{P: p.id})
	}
	if q, v, ok := p.BrcvEnabled(); ok {
		buf = append(buf, tomachine.Brcv{A: v, P: q, Q: p.id})
	}
	return buf
}

// Perform applies a locally controlled action.
func (a *Auto) Perform(act ioa.Action) {
	p := a.P
	switch t := act.(type) {
	case LabelAct:
		p.Label()
	case vsmachine.Gpsnd:
		switch t.M.(type) {
		case LabeledValue:
			p.GpsndValue()
		case *Summary:
			p.CommitSummarySend()
		default:
			panic(fmt.Sprintf("vstoto: unexpected gpsnd payload %T", t.M))
		}
	case ConfirmAct:
		p.Confirm()
	case tomachine.Brcv:
		p.Brcv()
	default:
		panic(fmt.Sprintf("vstoto: unexpected locally controlled action %v", act))
	}
}
