package vstoto

import (
	"fmt"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/types"
)

// TimedProc is the Section 7 construction VStoTO′_p: the untimed VStoTO_p
// automaton extended with
//
//   - failure-status input actions good_p / bad_p / ugly_p, recorded in a
//     failure-status variable (initially good);
//   - the precondition "failure-status ≠ bad" on every output and internal
//     action;
//   - time-passage actions ν(t), enabled only when it is NOT the case that
//     the status is good and some output or internal action is enabled —
//     i.e. a good processor performs enabled steps with no time delay, a
//     bad processor is stopped, and an ugly processor may take steps or
//     let time pass, nondeterministically.
//
// The timed stack (package stack) realizes exactly these rules by draining
// enabled actions eagerly for good processors and suspending bad ones;
// TimedProc exists to state the construction explicitly and to let tests
// check the stack's behavior against it.
type TimedProc struct {
	P *Proc
	// Status is the failure-status variable of the construction.
	Status failures.Status
	// Now tracks the local time across ν(t) actions.
	Now sim.Time
}

// NewTimedProc wraps a processor, initially good at time zero.
func NewTimedProc(p *Proc) *TimedProc {
	return &TimedProc{P: p}
}

// SetStatus applies a failure-status input action.
func (tp *TimedProc) SetStatus(s failures.Status) { tp.Status = s }

// LocallyControlledEnabled reports whether any output or internal action
// of the underlying automaton is enabled (label, gpsnd, confirm, brcv).
func (tp *TimedProc) LocallyControlledEnabled() bool { return !tp.P.Quiescent() }

// CanPerform reports whether the processor may take a locally controlled
// step now: the step must be enabled and the status must not be bad.
func (tp *TimedProc) CanPerform() bool {
	return tp.Status != failures.Bad && tp.LocallyControlledEnabled()
}

// CanAdvanceTime reports whether ν(t) is enabled: time may not pass while
// the processor is good and has an enabled output or internal action.
func (tp *TimedProc) CanAdvanceTime() bool {
	if tp.Status == failures.Good && tp.LocallyControlledEnabled() {
		return false
	}
	return true
}

// AdvanceTime performs ν(t). It returns an error if ν is not enabled —
// that is, if a good processor would be sitting on an enabled action.
func (tp *TimedProc) AdvanceTime(t time.Duration) error {
	if t <= 0 {
		return fmt.Errorf("vstoto: ν(%v) with non-positive duration", t)
	}
	if !tp.CanAdvanceTime() {
		return fmt.Errorf("vstoto: ν(%v) while good and enabled (a good processor acts immediately)", t)
	}
	tp.Now = tp.Now.Add(t)
	return nil
}

// Drain performs every enabled locally controlled action, in the stack's
// canonical order, invoking the callbacks for externally visible outputs.
// It returns the number of steps taken; zero when the processor is bad or
// quiescent. This is the "good processors take enabled steps immediately"
// rule packaged for the timed harness.
func (tp *TimedProc) Drain(
	sendVS func(payload any),
	deliver func(from types.ProcID, a types.Value),
) int {
	if tp.Status == failures.Bad {
		return 0
	}
	steps := 0
	for {
		progress := false
		if _, ok := tp.P.LabelEnabled(); ok {
			tp.P.Label()
			progress = true
		}
		if tp.P.GpsndSummaryEnabled() {
			sendVS(tp.P.GpsndSummary())
			progress = true
		}
		if _, ok := tp.P.GpsndValueEnabled(); ok {
			sendVS(tp.P.GpsndValue())
			progress = true
		}
		if tp.P.ConfirmEnabled() {
			tp.P.Confirm()
			progress = true
		}
		if _, _, ok := tp.P.BrcvEnabled(); ok {
			from, a := tp.P.Brcv()
			deliver(from, a)
			progress = true
		}
		if !progress {
			return steps
		}
		steps++
	}
}
