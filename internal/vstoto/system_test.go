package vstoto

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/types"
)

// buildSystem composes VS-machine with VStoTO_p for every p, plus the
// Section 6 derived-variable system view and a forward-simulation checker,
// exactly as in the definition of VStoTO-system.
func buildSystem(t *testing.T, seed int64, n int, p0Size int, churn float64) (*ioa.Executor, *System, *SimulationChecker) {
	t.Helper()
	procs := types.RangeProcSet(n)
	p0 := types.NewProcSet(procs.Members()[:p0Size]...)
	qs := types.Majorities{Universe: procs}

	vsAuto := vsmachine.NewAuto(procs, p0)
	components := []ioa.Automaton{vsAuto}
	procMap := make(map[types.ProcID]*Proc, n)
	for _, p := range procs.Members() {
		a := NewAuto(p, qs, p0)
		procMap[p] = a.P
		components = append(components, a)
	}
	exec := ioa.NewExecutor(seed, components...)
	vsAuto.Proposer = vsmachine.RandomViewProposer(vsAuto, exec.Rand(), churn)

	// The environment always offers a bcast; the executor picks uniformly
	// among it and all enabled actions, so load is continuous and the run
	// never quiesces before its step budget.
	var counter int
	exec.SetEnvironment(ioa.EnvironmentFunc(func(rng *rand.Rand) ioa.Action {
		counter++
		p := types.ProcID(rng.Intn(n))
		// Occasionally submit a duplicate value to exercise value-collision
		// handling in the checkers (labels, not values, are identities).
		if counter > 1 && rng.Intn(5) == 0 {
			return tomachine.Bcast{A: types.Value(fmt.Sprintf("v%d", rng.Intn(counter))), P: p}
		}
		return tomachine.Bcast{A: types.Value(fmt.Sprintf("v%d", counter)), P: p}
	}))
	exec.HideWhere(func(act ioa.Action) bool {
		switch act.(type) {
		case vsmachine.Gpsnd, vsmachine.Gprcv, vsmachine.Safe, vsmachine.Newview:
			return true
		}
		return false
	})

	sys := NewSystem(vsAuto.M, procMap, qs)
	sim := NewSimulationChecker(sys)
	steps := 0
	exec.OnStep(func(ev ioa.TraceEvent) error {
		if err := sys.CheckInvariants(); err != nil {
			return err
		}
		// The history-dependent (deep) lemmas are costlier; sampling every
		// few steps keeps the whole-suite runtime reasonable while the
		// explorer still checks them on every transition of its runs.
		steps++
		if steps%7 == 0 {
			if err := sys.CheckDeepInvariants(); err != nil {
				return err
			}
		}
		return sim.AfterStep(ev.Act)
	})
	return exec, sys, sim
}

// TestRandomizedSystemSafety runs randomized executions of VStoTO-system
// with continual view churn, checking the Section 6 invariants and the
// forward simulation to TO-machine after every single step. This is the
// executable counterpart of Theorem 6.26.
func TestRandomizedSystemSafety(t *testing.T) {
	cases := []struct {
		seed  int64
		n     int
		p0    int
		churn float64
		steps int
	}{
		{seed: 1, n: 3, p0: 3, churn: 0.02, steps: 2000},
		{seed: 2, n: 4, p0: 3, churn: 0.05, steps: 2000},
		{seed: 3, n: 5, p0: 5, churn: 0.10, steps: 1500},
		{seed: 4, n: 4, p0: 1, churn: 0.08, steps: 1500},
		{seed: 5, n: 2, p0: 2, churn: 0.15, steps: 1500},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			exec, _, _ := buildSystem(t, tc.seed, tc.n, tc.p0, tc.churn)
			if err := exec.Run(tc.steps); err != nil {
				t.Fatalf("run failed: %v\ntrace tail:\n%v", err, ioa.FormatTrace(tail(exec.Trace(), 40)))
			}
		})
	}
}

// TestSystemDeliversValues checks that in a churn-free execution values are
// actually confirmed and delivered to every client (liveness smoke test for
// the spec composition: the paper's conditional properties promise this
// under stability, and with no view changes the randomized scheduler must
// eventually drive messages through).
func TestSystemDeliversValues(t *testing.T) {
	exec, sys, _ := buildSystem(t, 42, 3, 3, 0 /* no churn */)
	if err := exec.Run(6000); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var delivered int
	for _, ev := range exec.Trace() {
		if _, ok := ev.Act.(tomachine.Brcv); ok {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatalf("no values delivered in 6000 steps; trace:\n%v", ioa.FormatTrace(tail(exec.Trace(), 40)))
	}
	if conf, err := sys.AllConfirm(); err != nil || len(conf) == 0 {
		t.Fatalf("allconfirm = %v, err = %v; want nonempty", conf, err)
	}
}

func tail(events []ioa.TraceEvent, n int) []ioa.TraceEvent {
	if len(events) <= n {
		return events
	}
	return events[len(events)-n:]
}
