package vstoto

import (
	"math/bits"

	"repro/internal/ioa"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
)

// Partial-order reduction for the bounded explorer. The reduction is the
// classic ample-set construction restricted to singleton ample sets: at a
// state where some enabled action a provably commutes with every other
// enabled action AND belongs to a conservative candidate class (see
// porAmpleIndex), the explorer expands only a — the pruned interleavings
// reorder a against independent actions and rejoin the explored graph.
//
// Soundness here rests on three legs (DESIGN.md §16 for the full sketch):
//
//   - the footprint relation below: two actions commute when their
//     footprints are disjoint, where a footprint names the state atoms an
//     action reads or writes (the VS machine, the environment's bounded
//     bcast/view budgets, and each processor's local state);
//   - pairwise commutation is NOT enough (condition C1 of the ample-set
//     theorem ranges over dependent actions reachable in the future, not
//     just currently enabled ones), so the candidate class is restricted
//     to confirm_p and brcv_p — actions whose execution cannot change any
//     other component's enabledness or future behavior. label_p is
//     deliberately NOT a candidate: labeling drains Delay, and whether a
//     value is still delayed when a newview arrives is exactly the
//     interleaving distinction the Figure 10 literal-precondition defect
//     lives in (forcing label first would mask it — porBrokenAmpleIndex in
//     the mutant tests demonstrates precisely that);
//   - every action strictly increases a monotone counter (bcasts, views,
//     vs-machine indices, per-processor seqnos/report indices), so the
//     explored graph is a DAG and the cycle proviso (C3) is vacuous.
//
// The construction is additionally validated empirically: the POR-off
// cross-check (ExplorePORCrossCheck) reruns the same bounds unreduced and
// gates on verdict agreement, and CI runs it on every push.

// porFootprint is the set of state atoms an action touches: the VS machine,
// the environment budgets, and a bitmask of processors. wide marks an
// action the relation cannot classify (treated as conflicting with
// everything).
type porFootprint struct {
	procs uint64
	vs    bool
	env   bool
	wide  bool
}

// disjoint reports whether no atom is shared (wide footprints are never
// disjoint from anything).
func (f porFootprint) disjoint(g porFootprint) bool {
	if f.wide || g.wide {
		return false
	}
	return !(f.vs && g.vs) && !(f.env && g.env) && f.procs&g.procs == 0
}

// procBit returns the bitmask atom for one processor, widening out of range.
func procBit(p int) porFootprint {
	if p < 0 || p >= 64 {
		return porFootprint{wide: true}
	}
	return porFootprint{procs: 1 << uint(p)}
}

// porFootprintOf classifies every action the explorer can enumerate.
// Receivers count: a gprcv to q writes q's state, a newview to p writes
// p's, and a bcast at p both consumes the shared value budget (the i-th
// bcast's identity depends on how many came before — two bcasts at
// different processors do NOT commute) and writes p's delay queue.
func porFootprintOf(act ioa.Action) porFootprint {
	merge := func(a, b porFootprint) porFootprint {
		return porFootprint{
			procs: a.procs | b.procs,
			vs:    a.vs || b.vs,
			env:   a.env || b.env,
			wide:  a.wide || b.wide,
		}
	}
	env := porFootprint{env: true}
	vs := porFootprint{vs: true}
	switch t := act.(type) {
	case tomachine.Bcast:
		return merge(env, procBit(int(t.P)))
	case tomachine.Brcv:
		return procBit(int(t.Q))
	case vsmachine.Createview:
		return merge(env, vs)
	case vsmachine.VSOrder:
		return vs
	case vsmachine.Newview:
		return merge(vs, procBit(int(t.P)))
	case vsmachine.Gpsnd:
		return merge(vs, procBit(int(t.P)))
	case vsmachine.Gprcv:
		return merge(vs, procBit(int(t.Q)))
	case vsmachine.Safe:
		return merge(vs, procBit(int(t.Q)))
	case LabelAct:
		return procBit(int(t.P))
	case ConfirmAct:
		return procBit(int(t.P))
	default:
		return porFootprint{wide: true}
	}
}

// porCandidate reports whether the action is in the conservative ample
// candidate class: purely processor-local actions whose execution cannot
// enable, disable, or alter any action outside their own processor.
// confirm_p moves a local cursor over an already-ordered prefix; brcv_p
// releases an already-confirmed value to the client. Neither feeds back
// into labeling, sending, or the view machinery.
func porCandidate(act ioa.Action) bool {
	switch act.(type) {
	case ConfirmAct, tomachine.Brcv:
		return true
	default:
		return false
	}
}

// porAmpleIndex returns the index of a singleton ample action among the
// enabled set, or -1 when full expansion is required: the first candidate
// whose footprint is single-processor and disjoint from every other
// enabled action's. "First" is well-defined because the enabled
// enumeration order is a pure function of the state (PR 4), which keeps
// the reduced exploration deterministic.
func porAmpleIndex(acts []ioa.Action) int {
	for i, a := range acts {
		if !porCandidate(a) {
			continue
		}
		fa := porFootprintOf(a)
		if fa.wide || fa.vs || fa.env || bits.OnesCount64(fa.procs) != 1 {
			continue
		}
		ok := true
		for j, b := range acts {
			if j != i && !fa.disjoint(porFootprintOf(b)) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// porBrokenAmpleIndex is the deliberately unsound ample rule used by the
// mutant tests (and referenced by the soundness sketch): it admits every
// single-processor action as a candidate — including label_p — and drops
// the environment atom from bcast, i.e. it claims label_p commutes with
// createview and bcast_p commutes with bcast_q. Both claims are wrong
// (labeling races the view machinery through the delay queue; bcast order
// determines value identity), and on the literal-Figure-10 configuration
// the rule forces every value to be labeled before any view is created,
// pruning exactly the interleavings that exhibit the defect. The POR-off
// cross-check catches it as a verdict disagreement.
func porBrokenAmpleIndex(acts []ioa.Action) int {
	naive := func(act ioa.Action) porFootprint {
		f := porFootprintOf(act)
		switch act.(type) {
		case tomachine.Bcast, LabelAct:
			f.env = false
		}
		return f
	}
	for i, a := range acts {
		fa := naive(a)
		if fa.wide || fa.vs || fa.env || bits.OnesCount64(fa.procs) != 1 {
			continue
		}
		ok := true
		for j, b := range acts {
			if j != i && !fa.disjoint(naive(b)) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}
