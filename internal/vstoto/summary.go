// Package vstoto implements the paper's VStoTO algorithm (Section 5,
// Figures 8–10): one automaton per processor that, running over a
// view-synchronous group communication service VS, implements the totally
// ordered broadcast service TO.
//
// In the normal case a processor labels each client value with a
// system-wide unique label ⟨viewid, seqno, origin⟩, multicasts the
// ⟨label, value⟩ pair through VS, appends labels to its tentative order
// while in a primary view, confirms them once VS reports them safe, and
// releases confirmed values to the client. When VS announces a new view,
// recovery runs: members exchange state summaries, determine the
// representative with the highest established primary, and rebuild a common
// order (extending it with all known labels when the new view is primary).
//
// The package also carries the Section 6 proof apparatus in executable
// form: history variables (established, buildorder), derived variables
// (allstate, allcontent, allconfirm), the invariants of Lemmas 6.1–6.24,
// and the forward simulation relation f to TO-machine.
package vstoto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// LabeledValue is an ordinary VStoTO message: a ⟨label, value⟩ pair. It is
// a comparable struct, so message occurrences match by value across the VS
// layer.
type LabeledValue struct {
	L types.Label
	A types.Value
}

// String renders the pair.
func (lv LabeledValue) String() string { return fmt.Sprintf("⟨%v,%q⟩", lv.L, string(lv.A)) }

// Summary is a state-exchange message: the summaries type of Figure 8,
// P(L×A) × L* × N⁺ × G⊥ with selectors con, ord, next, high. Summaries are
// sent by pointer (comparable by identity) and are immutable once sent.
type Summary struct {
	// Con is the sender's content relation: a partial function from labels
	// to data values (Lemma 6.5 shows it is a function system-wide).
	Con map[types.Label]types.Value
	// Ord is the sender's tentative order of labels.
	Ord []types.Label
	// Next is the sender's nextconfirm value.
	Next int
	// High is the sender's highprimary: the highest established primary
	// view identifier that has affected its order.
	High types.ViewID
}

// Confirm returns x.confirm: the prefix of x.ord of length
// min(x.next−1, length(x.ord)).
func (x *Summary) Confirm() []types.Label {
	n := x.Next - 1
	if n > len(x.Ord) {
		n = len(x.Ord)
	}
	if n < 0 {
		n = 0
	}
	return x.Ord[:n]
}

// String renders the summary canonically: the full con relation in label
// order, then ord, next and high. Canonicality matters — the bounded
// exhaustive explorer fingerprints states via %v, so structurally equal
// summaries must render identically and unequal ones must not collide.
func (x *Summary) String() string {
	labels := make([]types.Label, 0, len(x.Con))
	for l := range x.Con {
		labels = append(labels, l)
	}
	types.SortLabels(labels)
	var b strings.Builder
	b.WriteString("summary{con={")
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v=%q", l, string(x.Con[l]))
	}
	b.WriteString("} ord=[")
	for i, l := range x.Ord {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	fmt.Fprintf(&b, "] next=%d high=%v}", x.Next, x.High)
	return b.String()
}

// GotState is the partial function Y from processor ids to summaries
// accumulated during state exchange (the gotstate variable).
type GotState map[types.ProcID]*Summary

// KnownContent returns knowncontent(Y) = ∪_{q ∈ dom(Y)} Y(q).con as a fresh
// map.
func (y GotState) KnownContent() map[types.Label]types.Value {
	out := make(map[types.Label]types.Value)
	for _, x := range y {
		for l, a := range x.Con {
			out[l] = a
		}
	}
	return out
}

// MaxPrimary returns maxprimary(Y) = max_{q ∈ dom(Y)} Y(q).high.
func (y GotState) MaxPrimary() types.ViewID {
	max := types.Bottom
	for _, x := range y {
		if max.Less(x.High) {
			max = x.High
		}
	}
	return max
}

// Reps returns reps(Y): the members whose summaries carry the maximal
// highprimary, in ascending processor order.
func (y GotState) Reps() []types.ProcID {
	max := y.MaxPrimary()
	var reps []types.ProcID
	for q, x := range y {
		if x.High == max {
			reps = append(reps, q)
		}
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	return reps
}

// ChosenRep returns chosenrep(Y). Any deterministic choice works as long as
// all processors choose identically from identical information; we take the
// representative with the highest processor id, as the paper suggests.
func (y GotState) ChosenRep() types.ProcID {
	reps := y.Reps()
	if len(reps) == 0 {
		panic("vstoto: ChosenRep of empty gotstate")
	}
	return reps[len(reps)-1]
}

// ShortOrder returns shortorder(Y) = Y(chosenrep(Y)).ord.
func (y GotState) ShortOrder() []types.Label {
	return y[y.ChosenRep()].Ord
}

// FullOrder returns fullorder(Y): shortorder(Y) followed by the remaining
// labels of dom(knowncontent(Y)) in ascending label order.
func (y GotState) FullOrder() []types.Label {
	short := y.ShortOrder()
	inShort := make(map[types.Label]bool, len(short))
	for _, l := range short {
		inShort[l] = true
	}
	var rest []types.Label
	for l := range y.KnownContent() {
		if !inShort[l] {
			rest = append(rest, l)
		}
	}
	types.SortLabels(rest)
	out := make([]types.Label, 0, len(short)+len(rest))
	out = append(out, short...)
	return append(out, rest...)
}

// MaxNextConfirm returns maxnextconfirm(Y) = max_{q ∈ dom(Y)} Y(q).next.
func (y GotState) MaxNextConfirm() int {
	max := 1
	for _, x := range y {
		if x.Next > max {
			max = x.Next
		}
	}
	return max
}

// domainEquals reports whether dom(Y) equals the given membership set.
func (y GotState) domainEquals(s types.ProcSet) bool {
	if len(y) != s.Size() {
		return false
	}
	for q := range y {
		if !s.Contains(q) {
			return false
		}
	}
	return true
}
