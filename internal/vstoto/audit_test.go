package vstoto

// Tests for the state-exchange hot-path fix (order prefixes shared via
// capacity-clipped slices instead of eager copies), the N⁺-convention audit
// of Summary.Confirm and GotState.MaxNextConfirm, and permutation/fingerprint
// properties of the GotState aggregate functions.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/types"
)

// primaryWithOrder returns a 3-processor primary-view proc that has
// delivered n labeled values (Order and Content of length n).
func primaryWithOrder(t testing.TB, n int) *Proc {
	p := newTestProc(0, 3)
	for i := 1; i <= n; i++ {
		p.GprcvValue(LabeledValue{L: lbl(0, i, 1), A: types.Value(fmt.Sprintf("v%d", i))})
	}
	if len(p.Order) != n {
		t.Fatalf("setup: order length %d, want %d", len(p.Order), n)
	}
	return p
}

// TestSummaryImmutable pins the aliasing safety of the shared-prefix
// SummaryMessage: the snapshot's Ord must not change when the sender's
// Order grows afterwards (the capacity clip forces the append to
// reallocate).
func TestSummaryImmutable(t *testing.T) {
	p := primaryWithOrder(t, 10)
	p.Status = StatusSend
	x := p.GpsndSummary()
	want := append([]types.Label(nil), x.Ord...)
	p.Status = StatusNormal
	for i := 11; i <= 30; i++ {
		p.GprcvValue(LabeledValue{L: lbl(0, i, 1), A: "late"})
	}
	if len(x.Ord) != 10 || !reflect.DeepEqual(x.Ord, want) {
		t.Fatalf("summary Ord mutated by later appends:\n got %v\nwant %v", x.Ord, want)
	}
}

// TestBuildOrderImmutable is the same property for the buildorder history
// variable: a reference taken at one point must still read the same labels
// after the order grows.
func TestBuildOrderImmutable(t *testing.T) {
	p := primaryWithOrder(t, 5)
	g := p.Current.ID
	held := p.BuildOrder[g]
	want := append([]types.Label(nil), held...)
	for i := 6; i <= 20; i++ {
		p.GprcvValue(LabeledValue{L: lbl(0, i, 1), A: "late"})
	}
	if !reflect.DeepEqual(held, want) {
		t.Fatalf("held buildorder slice mutated:\n got %v\nwant %v", held, want)
	}
	if got := len(p.BuildOrder[g]); got != 20 {
		t.Fatalf("current buildorder length %d, want 20", got)
	}
}

// TestEstablishedOrderImmuneToSummaryAlias: after establishment the
// non-primary branch aliases the chosen representative's summary Ord; a
// later primary-view append at the receiver must not write through into
// that summary.
func TestEstablishedOrderImmuneToSummaryAlias(t *testing.T) {
	procs := types.RangeProcSet(3)
	p := NewProc(0, types.Majorities{Universe: procs}, procs)
	// Non-primary view {0}: establishment takes the short order.
	v := types.View{ID: gid(5, 0), Set: types.NewProcSet(0)}
	p.Newview(v)
	p.GpsndSummary()
	// Summary slice with spare capacity, as a hostile sender might produce.
	ord := make([]types.Label, 2, 8)
	ord[0], ord[1] = lbl(1, 1, 1), lbl(1, 2, 1)
	rep := &Summary{
		Con:  map[types.Label]types.Value{ord[0]: "a", ord[1]: "b"},
		Ord:  ord,
		Next: 1,
		High: types.G0(),
	}
	p.GprcvSummary(0, rep)
	if p.Status != StatusNormal {
		t.Fatal("setup: establishment did not complete")
	}
	// Grow the order (simulate what a primary-view delivery does).
	p.Current = types.View{ID: gid(6, 0), Set: procs} // quorum ⇒ primary
	p.GprcvValue(LabeledValue{L: lbl(6, 1, 2), A: "x"})
	if len(rep.Ord) != 2 || rep.Ord[0] != ord[0] || rep.Ord[1] != ord[1] {
		t.Fatalf("received summary mutated: %v", rep.Ord)
	}
	if cap(ord) > 2 && ord[:3][2] == (types.Label{ID: gid(6, 0), Seqno: 1, Origin: 2}) {
		t.Fatal("append wrote into the summary's spare capacity")
	}
}

// TestConfirmBoundaries audits Summary.Confirm's min(next−1, len(ord))
// clamp against the paper's N⁺ convention: nextconfirm lives in N⁺ (so 1
// means "nothing confirmed"), next−1 may legitimately exceed len(ord) after
// establishment (maxnextconfirm can come from a longer peer order), and a
// zero Next is outside the convention but must still clamp, not panic.
func TestConfirmBoundaries(t *testing.T) {
	ls := []types.Label{lbl(1, 1, 0), lbl(1, 2, 0), lbl(1, 3, 0)}
	cases := []struct {
		name string
		ord  []types.Label
		next int
		want int
	}{
		{"next-0-out-of-convention", ls, 0, 0},
		{"next-1-nothing-confirmed", ls, 1, 0},
		{"next-len", ls, 3, 2},
		{"next-len-plus-1-all-confirmed", ls, 4, 3},
		{"next-beyond-ord-clamped", ls, 5, 3},
		{"empty-ord-next-1", nil, 1, 0},
		{"empty-ord-next-0", nil, 0, 0},
		{"empty-ord-next-beyond", nil, 7, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := &Summary{Ord: c.ord, Next: c.next}
			got := x.Confirm()
			if len(got) != c.want {
				t.Fatalf("confirm length %d, want %d", len(got), c.want)
			}
			for i, l := range got {
				if l != c.ord[i] {
					t.Fatalf("confirm[%d] = %v, want prefix of ord", i, l)
				}
			}
		})
	}
}

// TestMaxNextConfirmBoundaries audits the initial value 1: nextconfirm ∈ N⁺
// everywhere in Figure 9 (NewProc starts it at 1, Confirm only increments),
// so 1 — not 0 — is the identity of the max; an empty GotState must yield
// it, and a summary carrying a sub-convention Next must never pull the max
// below it.
func TestMaxNextConfirmBoundaries(t *testing.T) {
	if got := (GotState{}).MaxNextConfirm(); got != 1 {
		t.Fatalf("empty gotstate: maxnextconfirm = %d, want 1 (N⁺ floor)", got)
	}
	y := GotState{0: {Next: 1}, 1: {Next: 1}}
	if got := y.MaxNextConfirm(); got != 1 {
		t.Fatalf("all-1 gotstate: maxnextconfirm = %d, want 1", got)
	}
	y[2] = &Summary{Next: 0} // out of convention; must not lower the max
	if got := y.MaxNextConfirm(); got != 1 {
		t.Fatalf("gotstate with Next=0: maxnextconfirm = %d, want 1", got)
	}
	y[3] = &Summary{Next: 5}
	if got := y.MaxNextConfirm(); got != 5 {
		t.Fatalf("maxnextconfirm = %d, want 5", got)
	}
}

// mkGotState builds a GotState over n members with deterministic summary
// contents, inserting entries in the given order.
func mkGotState(order []types.ProcID) GotState {
	y := make(GotState, len(order))
	for _, q := range order {
		ls := []types.Label{lbl(int64(q)+1, 1, q), lbl(int64(q)+1, 2, q)}
		y[q] = &Summary{
			Con:  map[types.Label]types.Value{ls[0]: "a", ls[1]: "b"},
			Ord:  ls,
			Next: int(q) + 1,
			High: types.ViewID{Epoch: int64(q % 2), Proc: q},
		}
	}
	return y
}

// TestGotStateAggregatesPermutationInvariant: FullOrder, ShortOrder,
// ChosenRep and MaxNextConfirm are specified on the *set* Y, so they must
// not depend on map insertion order (which perturbs Go's map iteration
// order) nor vary between repeated evaluations of the same map.
func TestGotStateAggregatesPermutationInvariant(t *testing.T) {
	base := []types.ProcID{0, 1, 2, 3, 4}
	ref := mkGotState(base)
	wantRep := ref.ChosenRep()
	wantFull := append([]types.Label(nil), ref.FullOrder()...)
	wantShort := append([]types.Label(nil), ref.ShortOrder()...)
	wantNext := ref.MaxNextConfirm()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		perm := append([]types.ProcID(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		y := mkGotState(perm)
		if got := y.ChosenRep(); got != wantRep {
			t.Fatalf("perm %v: chosenrep = %v, want %v", perm, got, wantRep)
		}
		if got := y.FullOrder(); !reflect.DeepEqual(got, wantFull) {
			t.Fatalf("perm %v: fullorder = %v, want %v", perm, got, wantFull)
		}
		if got := y.ShortOrder(); !reflect.DeepEqual(got, wantShort) {
			t.Fatalf("perm %v: shortorder = %v, want %v", perm, got, wantShort)
		}
		if got := y.MaxNextConfirm(); got != wantNext {
			t.Fatalf("perm %v: maxnextconfirm = %d, want %d", perm, got, wantNext)
		}
		// Repeated evaluation over the same map must also agree.
		if again := y.FullOrder(); !reflect.DeepEqual(again, wantFull) {
			t.Fatalf("perm %v: fullorder unstable across evaluations", perm)
		}
	}
}

// TestSummaryStringNoCollisions: the explorer fingerprints states via
// Summary.String(), so structurally unequal summaries must render
// differently (and structurally equal ones identically, regardless of Con
// insertion order).
func TestSummaryStringNoCollisions(t *testing.T) {
	la, lb := lbl(1, 1, 0), lbl(1, 2, 1)
	distinct := []*Summary{
		{Con: map[types.Label]types.Value{}, Next: 1},
		{Con: map[types.Label]types.Value{la: "a"}, Next: 1},
		{Con: map[types.Label]types.Value{la: "b"}, Next: 1},          // same label, different value
		{Con: map[types.Label]types.Value{lb: "a"}, Next: 1},          // different label, same value
		{Con: map[types.Label]types.Value{la: "a", lb: "b"}, Next: 1}, // two entries
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la}, Next: 1},
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la, lb}, Next: 1},
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{lb, la}, Next: 1}, // order matters
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la}, Next: 2},
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la}, Next: 1, High: types.G0()},
		{Con: map[types.Label]types.Value{la: "a"}, Ord: []types.Label{la}, Next: 1, High: gid(2, 1)},
	}
	seen := make(map[string]int)
	for i, x := range distinct {
		s := x.String()
		if j, dup := seen[s]; dup {
			t.Fatalf("summaries %d and %d collide on %q", j, i, s)
		}
		seen[s] = i
	}
	// Structurally equal summaries render identically whatever the map's
	// insertion history.
	c1 := map[types.Label]types.Value{la: "a", lb: "b"}
	c2 := map[types.Label]types.Value{lb: "b"}
	c2[la] = "a"
	x1 := &Summary{Con: c1, Ord: []types.Label{la}, Next: 2, High: types.G0()}
	x2 := &Summary{Con: c2, Ord: []types.Label{la}, Next: 2, High: types.G0()}
	for trial := 0; trial < 20; trial++ {
		if x1.String() != x2.String() {
			t.Fatalf("structurally equal summaries render differently:\n%s\n%s", x1, x2)
		}
	}
}

// BenchmarkRecordOrderHistory pins the asymptotic fix in recordOrder: with
// the shared-prefix representation, delivering N values into a primary view
// with history tracking is O(N); the old per-delivery copy made it O(N²).
// Compare ns/op across sizes — it should grow ~4× per 4× size, not ~16×.
func BenchmarkRecordOrderHistory(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := newTestProc(0, 3) // TrackHistory on
				b.StartTimer()
				for k := 1; k <= n; k++ {
					p.GprcvValue(LabeledValue{L: lbl(0, k, 1), A: "v"})
				}
			}
		})
	}
}

// BenchmarkSummaryMessage pins the O(1)-in-|Order| summary construction:
// Ord is shared, so ns/op must stay flat as the order grows (Con is kept
// small to isolate the order term).
func BenchmarkSummaryMessage(b *testing.B) {
	for _, n := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := newTestProc(0, 3)
			p.TrackHistory = false
			ord := make([]types.Label, n)
			for i := range ord {
				ord[i] = lbl(0, i+1, 1)
			}
			p.Order = ord
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if x := p.SummaryMessage(); len(x.Ord) != n {
					b.Fatal("bad summary")
				}
			}
		})
	}
}
