package vstoto

import (
	"testing"

	"repro/internal/types"
)

// TestEstablishmentWaitsForOwnSend: Figure 10 requires status = collect
// (own summary sent) for establishment, even if all members' summaries
// have arrived.
func TestEstablishmentWaitsForOwnSend(t *testing.T) {
	p := newTestProc(0, 3)
	v2 := types.View{ID: gid(2, 0), Set: types.RangeProcSet(3)}
	p.Newview(v2)
	if p.Status != StatusSend {
		t.Fatalf("status = %v", p.Status)
	}
	empty := func() *Summary {
		return &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()}
	}
	// All three summaries arrive (including one attributed to p itself, as
	// could happen if VS delivered p's own summary from a previous
	// incarnation of the exchange) — but p has not sent, so no
	// establishment.
	p.GprcvSummary(1, empty())
	p.GprcvSummary(2, empty())
	p.GprcvSummary(0, empty())
	if p.Status != StatusSend {
		t.Fatalf("established while status=send (status now %v)", p.Status)
	}
	// After sending, the next summary receipt completes the exchange.
	p.GpsndSummary()
	if p.Status != StatusCollect {
		t.Fatalf("status = %v after send", p.Status)
	}
	p.GprcvSummary(0, empty())
	if p.Status != StatusNormal {
		t.Fatalf("not established after full exchange (status %v)", p.Status)
	}
}

// TestEstablishmentRequiresExactMembership: the exchange completes exactly
// when dom(gotstate) equals the view's membership — summaries from fewer
// members never complete it. (VS guarantees a non-member's summary can
// never be delivered in the view, so Figure 10 does not guard against it;
// the spec-composition tests exercise that guarantee.)
func TestEstablishmentRequiresExactMembership(t *testing.T) {
	p := newTestProc(0, 4)
	v2 := types.View{ID: gid(2, 0), Set: types.NewProcSet(0, 1, 2)}
	p.Newview(v2)
	p.GpsndSummary()
	empty := func() *Summary {
		return &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()}
	}
	p.GprcvSummary(0, empty())
	p.GprcvSummary(1, empty())
	if p.Status == StatusNormal {
		t.Fatal("established with a member's summary missing")
	}
	p.GprcvSummary(2, empty())
	if p.Status != StatusNormal {
		t.Fatal("not established once all members reported")
	}
}

// TestReestablishmentAcrossViews: a processor can go through several views
// in a row, each time re-running the exchange; order information flows
// forward through its own summaries.
func TestReestablishmentAcrossViews(t *testing.T) {
	p := newTestProc(0, 3)
	// Put one confirmed value into g0's history.
	p.Bcast("a")
	la := p.Label()
	p.GpsndValue()
	p.GprcvValue(LabeledValue{L: la, A: "a"})
	p.SafeValue(LabeledValue{L: la, A: "a"})
	p.Confirm()

	prevHigh := p.HighPrimary
	for epoch := int64(2); epoch <= 5; epoch++ {
		v := types.View{ID: gid(epoch, 0), Set: types.RangeProcSet(3)}
		p.Newview(v)
		own := p.GpsndSummary()
		p.GprcvSummary(0, own)
		// Peers echo p's own knowledge (they received the same messages).
		p.GprcvSummary(1, own)
		p.GprcvSummary(2, own)
		if p.Status != StatusNormal {
			t.Fatalf("epoch %d: not established", epoch)
		}
		if !prevHigh.Less(p.HighPrimary) {
			t.Fatalf("epoch %d: highprimary did not advance (%v → %v)", epoch, prevHigh, p.HighPrimary)
		}
		prevHigh = p.HighPrimary
		// The confirmed prefix survives every exchange.
		if got := p.ConfirmedLabels(); len(got) != 1 || got[0] != la {
			t.Fatalf("epoch %d: confirmed = %v", epoch, got)
		}
		if p.Order[0] != la {
			t.Fatalf("epoch %d: order lost la: %v", epoch, p.Order)
		}
	}
}

// TestNonPrimaryThenPrimaryRecovery: a value ordered only in a minority
// view's content is recovered when a later primary view forms.
func TestNonPrimaryThenPrimaryRecovery(t *testing.T) {
	p := newTestProc(0, 5)
	// Minority view {0,1}: p labels a value; nothing can confirm.
	vMin := types.View{ID: gid(2, 0), Set: types.NewProcSet(0, 1)}
	p.Newview(vMin)
	own := p.GpsndSummary()
	p.GprcvSummary(0, own)
	p.GprcvSummary(1, &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()})
	if p.Status != StatusNormal || p.Primary() {
		t.Fatalf("minority setup wrong: status=%v primary=%t", p.Status, p.Primary())
	}
	p.Bcast("stranded")
	lm := p.Label()
	p.GpsndValue()
	p.GprcvValue(LabeledValue{L: lm, A: "stranded"}) // non-primary: content only
	if len(p.Order) != 0 {
		t.Fatal("minority view ordered a value")
	}

	// Majority view forms; everyone's summaries now include the stranded
	// value through p's summary. Establishment must order it.
	vMaj := types.View{ID: gid(3, 0), Set: types.RangeProcSet(5)}
	p.Newview(vMaj)
	own = p.GpsndSummary()
	p.GprcvSummary(0, own)
	for q := types.ProcID(1); q < 5; q++ {
		p.GprcvSummary(q, &Summary{Con: map[types.Label]types.Value{}, Next: 1, High: types.G0()})
	}
	if p.Status != StatusNormal || !p.Primary() {
		t.Fatalf("majority setup wrong: status=%v primary=%t", p.Status, p.Primary())
	}
	found := false
	for _, l := range p.Order {
		if l == lm {
			found = true
		}
	}
	if !found {
		t.Fatalf("stranded value not recovered into the primary order: %v", p.Order)
	}
	if p.HighPrimary != vMaj.ID {
		t.Errorf("highprimary = %v, want %v", p.HighPrimary, vMaj.ID)
	}
}
