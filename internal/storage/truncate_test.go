package storage

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func filled(t *testing.T) (*sim.Sim, *Stable) {
	t.Helper()
	s := sim.New(1)
	st := New(s, 0)
	st.Append([]byte("aaaa"), nil)
	st.Append([]byte("bbbb"), nil)
	st.Append([]byte("cccc"), nil)
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestTruncatePrefixAdvancesBase(t *testing.T) {
	s, st := filled(t)
	st.TruncatePrefix(4)
	if st.Base() != 4 || st.Size() != 8 {
		t.Fatalf("Base=%d Size=%d, want 4/8", st.Base(), st.Size())
	}
	if !bytes.Equal(st.Contents(), []byte("bbbbcccc")) {
		t.Fatalf("Contents = %q", st.Contents())
	}
	// At or below Base: no-op, never a panic.
	st.TruncatePrefix(4)
	st.TruncatePrefix(2)
	if st.Base() != 4 || st.Size() != 8 {
		t.Fatalf("no-op truncation moved Base=%d Size=%d", st.Base(), st.Size())
	}
	// New appends land after the retained suffix at unchanged logical
	// offsets: compaction never renumbers.
	st.Append([]byte("dd"), nil)
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if st.Base()+st.Size() != 14 {
		t.Fatalf("logical end = %d, want 14", st.Base()+st.Size())
	}
}

func TestTruncatePrefixBeyondEndPanics(t *testing.T) {
	_, st := filled(t)
	defer func() {
		if recover() == nil {
			t.Fatal("TruncatePrefix beyond the durable end did not panic")
		}
	}()
	st.TruncatePrefix(13)
}

// A bare io.Writer mirror cannot honor a prefix truncation; diverging
// silently from it would break crash recovery, so the device must refuse.
func TestTruncatePrefixNeedsTruncatingMirror(t *testing.T) {
	s, st := filled(t)
	st.Mirror = &bytes.Buffer{}
	st.Append([]byte("ee"), nil)
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TruncatePrefix with a non-truncating mirror did not panic")
		}
	}()
	st.TruncatePrefix(4)
}

type fakeMirror struct {
	bytes.Buffer
	truncatedAt []int
}

func (m *fakeMirror) TruncatePrefix(n int) error {
	m.truncatedAt = append(m.truncatedAt, n)
	return nil
}

// Truncations at or below Base still reach the mirror: its image may
// extend further back than the device's (pre-boot incarnations).
func TestTruncatePrefixForwardsToMirror(t *testing.T) {
	_, st := filled(t)
	m := &fakeMirror{}
	st.Mirror = m
	st.TruncatePrefix(4)
	st.TruncatePrefix(2) // device no-op, mirror still told
	if len(m.truncatedAt) != 2 || m.truncatedAt[0] != 4 || m.truncatedAt[1] != 2 {
		t.Fatalf("mirror truncations = %v, want [4 2]", m.truncatedAt)
	}
}

func TestTruncateTailDiscardsTornBytes(t *testing.T) {
	s, st := filled(t)
	st.TruncateTail(10)
	if st.Size() != 10 {
		t.Fatalf("Size = %d, want 10", st.Size())
	}
	// The next incarnation appends where replay will actually read.
	st.Append([]byte("XX"), nil)
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Contents(), []byte("aaaabbbbccXX")) {
		t.Fatalf("Contents = %q", st.Contents())
	}
}

func TestTruncateTailRespectsBase(t *testing.T) {
	_, st := filled(t)
	st.TruncatePrefix(4)
	defer func() {
		if recover() == nil {
			t.Fatal("TruncateTail below Base did not panic")
		}
	}()
	st.TruncateTail(2)
}

func TestSetBaseContinuesExistingImage(t *testing.T) {
	s := sim.New(1)
	st := New(s, 0)
	st.SetBase(100)
	st.Append([]byte("zz"), nil)
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if st.Base() != 100 || st.Base()+st.Size() != 102 {
		t.Fatalf("Base=%d end=%d, want 100/102", st.Base(), st.Base()+st.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetBase on a non-empty device did not panic")
		}
	}()
	st.SetBase(200)
}
