// Package storage simulates stable storage with a configurable write
// latency. The paper's introduction contrasts VStoTO with the algorithms
// of Keidar and Dolev, which "write the message to stable storage before it
// is ordered or acknowledged", trading latency for crash tolerance; this
// package provides the latency-bearing log that the baseline protocol
// writes through, so experiment E5 can expose exactly that trade.
package storage

import (
	"time"

	"repro/internal/sim"
)

// Stable is a simulated stable-storage log. Writes complete after a fixed
// latency; at most one write is in flight at a time (a single log device),
// with further writes queuing behind it.
type Stable struct {
	sim     *sim.Sim
	latency time.Duration

	busy    bool
	queue   []func()
	writes  int
	maxQLen int
}

// New creates a log device with the given write latency.
func New(s *sim.Sim, latency time.Duration) *Stable {
	return &Stable{sim: s, latency: latency}
}

// Latency returns the configured write latency.
func (st *Stable) Latency() time.Duration { return st.latency }

// Writes returns the number of completed writes.
func (st *Stable) Writes() int { return st.writes }

// MaxQueue returns the deepest write queue observed.
func (st *Stable) MaxQueue() int { return st.maxQLen }

// Write persists an entry and calls done when the write is stable. A zero
// latency completes on a deferred event (still asynchronous, preserving
// ordering).
func (st *Stable) Write(done func()) {
	st.queue = append(st.queue, done)
	if len(st.queue) > st.maxQLen {
		st.maxQLen = len(st.queue)
	}
	if !st.busy {
		st.startNext()
	}
}

func (st *Stable) startNext() {
	if len(st.queue) == 0 {
		st.busy = false
		return
	}
	st.busy = true
	done := st.queue[0]
	st.queue = st.queue[1:]
	st.sim.After(st.latency, func() {
		st.writes++
		done()
		st.startNext()
	})
}
