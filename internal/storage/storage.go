// Package storage simulates stable storage with a configurable write
// latency. The paper's introduction contrasts VStoTO with the algorithms
// of Keidar and Dolev, which "write the message to stable storage before it
// is ordered or acknowledged", trading latency for crash tolerance; this
// package provides the latency-bearing log that the baseline protocol
// writes through (experiment E5) and the append-only byte device that the
// crash-recovery WAL of internal/recovery persists into.
//
// The device models exactly the failure surface a recovery layer must
// survive: a single write head (one write in flight, the rest queued), an
// owner crash that tears the in-flight write to a strict prefix and
// silently discards everything queued behind it (Drop), and injectable
// bit flips in the durable image (FlipBit). Durable bytes themselves
// survive every crash — amnesia wipes the owner's volatile state, and the
// write queue is volatile, but the disk is not.
package storage

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Stable is a simulated stable-storage device. Writes complete after a
// fixed latency; at most one write is in flight at a time (a single log
// device), with further writes queuing behind it.
type Stable struct {
	sim     *sim.Sim
	latency time.Duration

	busy     bool
	inFlight []byte // payload of the write under the head (nil for Write)
	queue    []pending
	writes   int
	maxQLen  int

	disk  []byte
	base  int // logical offset of disk[0] (advanced by TruncatePrefix)
	epoch int // bumped by Drop; stale completion events are discarded

	// TornPrefix, when non-nil, decides how many bytes of an n-byte write
	// that is in flight at the instant of a Drop have reached the platter.
	// It must return a value in [0, n). The default keeps half.
	TornPrefix func(n int) int

	// Mirror, when non-nil, receives every byte the moment it becomes
	// durable on the simulated device (completed writes and torn prefixes
	// alike), in durability order. The live daemon points it at a real
	// file, so a restarted process can replay exactly what the simulated
	// device held; a mirror write error panics, because a divergence
	// between the device and its mirror silently breaks crash recovery.
	// A device that will be compacted (TruncatePrefix) needs a mirror
	// that also implements MirrorTruncator.
	Mirror io.Writer

	// Observability handles (Instrument; all nil when disabled).
	mWrites    *obs.Counter
	mBytes     *obs.Counter
	mDrops     *obs.Counter
	mTornBytes *obs.Counter
	mLatency   *obs.Histogram // enqueue → durable, queueing included
	gMaxQueue  *obs.Gauge
}

type pending struct {
	data []byte
	done func()
	at   sim.Time // enqueue instant, for the write-latency histogram
}

// New creates a log device with the given write latency.
func New(s *sim.Sim, latency time.Duration) *Stable {
	return &Stable{sim: s, latency: latency}
}

// Latency returns the configured write latency.
func (st *Stable) Latency() time.Duration { return st.latency }

// Schedule runs fn after d on the device's simulator. Layers above the
// device that need a timing source for write policy — the WAL's
// group-commit window — use this instead of holding their own simulator
// reference, so the device remains the single point where storage timing
// is decided. A crash (Drop) does not cancel scheduled callbacks; callers
// must tolerate a stale firing (the WAL's flush is a no-op on an empty
// batch).
func (st *Stable) Schedule(d time.Duration, fn func()) { st.sim.After(d, fn) }

// Instrument binds the device's obs instruments from the registry (nil
// disables at zero cost): storage.* counters, the enqueue→durable
// storage.write_latency histogram, and the storage.max_queue high-water
// gauge. The instruments are shared across all devices bound to the same
// registry (per-cluster totals).
func (st *Stable) Instrument(reg *obs.Registry) {
	st.mWrites = reg.Counter("storage.writes")
	st.mBytes = reg.Counter("storage.bytes")
	st.mDrops = reg.Counter("storage.drops")
	st.mTornBytes = reg.Counter("storage.torn_bytes")
	st.mLatency = reg.Histogram("storage.write_latency")
	st.gMaxQueue = reg.Gauge("storage.max_queue")
}

// Writes returns the number of completed writes.
func (st *Stable) Writes() int { return st.writes }

// MaxQueue returns the deepest write queue observed.
func (st *Stable) MaxQueue() int { return st.maxQLen }

// Size returns the number of durable bytes.
func (st *Stable) Size() int { return len(st.disk) }

// Contents returns a copy of the durable byte image.
func (st *Stable) Contents() []byte { return append([]byte(nil), st.disk...) }

// Write persists an entry with no payload bytes and calls done when the
// write is stable — the latency-only interface the E5 baseline uses. A
// zero latency completes on a deferred event (still asynchronous,
// preserving ordering).
func (st *Stable) Write(done func()) { st.Append(nil, done) }

// Append persists data at the end of the durable image and calls done once
// the bytes are stable. Appends are serialized through the single write
// head; a crash (Drop) while this write is in flight leaves only a strict
// prefix of data durable, and done never fires.
func (st *Stable) Append(data []byte, done func()) {
	st.queue = append(st.queue, pending{data: data, done: done, at: st.sim.Now()})
	if len(st.queue) > st.maxQLen {
		st.maxQLen = len(st.queue)
	}
	st.gMaxQueue.Max(int64(len(st.queue)))
	if !st.busy {
		st.startNext()
	}
}

func (st *Stable) startNext() {
	if len(st.queue) == 0 {
		st.busy = false
		st.inFlight = nil
		return
	}
	st.busy = true
	w := st.queue[0]
	st.queue = st.queue[1:]
	st.inFlight = w.data
	epoch := st.epoch
	st.sim.After(st.latency, func() {
		if st.epoch != epoch {
			return // the owner crashed while this write was in flight
		}
		st.writes++
		st.mWrites.Inc()
		st.mBytes.Add(int64(len(w.data)))
		st.mLatency.Record(st.sim.Now().Sub(w.at))
		st.persist(w.data)
		st.inFlight = nil
		if w.done != nil {
			w.done()
		}
		st.startNext()
	})
}

// persist appends bytes to the durable image and mirrors them.
func (st *Stable) persist(b []byte) {
	st.disk = append(st.disk, b...)
	if st.Mirror != nil && len(b) > 0 {
		if _, err := st.Mirror.Write(b); err != nil {
			panic(fmt.Sprintf("storage: mirror write: %v", err))
		}
	}
}

// Drop simulates the owner's amnesia crash taking the write path with it:
// the write in flight is torn to a strict prefix of its bytes (TornPrefix
// decides how many; default half), every queued write is silently
// discarded, and no pending done callback ever fires — a wiped processor
// must not observe completions from before its crash. The durable image
// itself survives; a subsequent Append starts a fresh write chain.
func (st *Stable) Drop() {
	st.mDrops.Inc()
	if st.busy && len(st.inFlight) > 0 {
		n := len(st.inFlight)
		k := n / 2
		if st.TornPrefix != nil {
			k = st.TornPrefix(n)
			if k < 0 {
				k = 0
			}
			if k >= n {
				k = n - 1
			}
		}
		st.mTornBytes.Add(int64(k))
		st.persist(st.inFlight[:k])
	}
	st.epoch++
	st.busy = false
	st.inFlight = nil
	st.queue = nil
}

// FlipBit flips one bit of the durable image — the injectable silent-
// corruption fault the recovery layer's checksums must catch. Offsets
// outside the image are ignored.
func (st *Stable) FlipBit(off int, bit uint) {
	if off < 0 || off >= len(st.disk) || bit > 7 {
		return
	}
	st.disk[off] ^= 1 << bit
}

// MirrorTruncator is the extra capability a mirror must provide for a
// device that gets compacted: dropping the first n logical bytes of the
// mirrored image. Offsets are logical (0 = the first byte the log ever
// held at this mirror), matching TruncatePrefix; the mirror tracks how
// much of its own image earlier truncations already removed.
type MirrorTruncator interface {
	io.Writer
	TruncatePrefix(n int) error
}

// Base returns the logical offset of the first retained durable byte:
// 0 until TruncatePrefix advances it. Contents() holds the logical
// range [Base, Base+Size).
func (st *Stable) Base() int { return st.base }

// SetBase declares that the (empty) device logically continues an
// existing image of n bytes held elsewhere — the live daemon's device
// starts empty while the WAL file already holds every prior
// incarnation's records. Only valid before any write.
func (st *Stable) SetBase(n int) {
	if len(st.disk) > 0 || st.busy || len(st.queue) > 0 {
		panic("storage: SetBase on a non-empty device")
	}
	st.base = n
}

// TruncatePrefix discards the durable image before logical offset n —
// the compaction step once a checkpoint record has made the prefix
// redundant. A mirror must implement MirrorTruncator (panic otherwise:
// silently diverging from the mirror breaks crash recovery). Offsets at
// or below Base are a no-op on the device but still forwarded to the
// mirror, whose image may reach further back (pre-boot incarnations).
func (st *Stable) TruncatePrefix(n int) {
	if n > st.base+len(st.disk) {
		panic(fmt.Sprintf("storage: TruncatePrefix(%d) beyond durable end %d", n, st.base+len(st.disk)))
	}
	if n > st.base {
		st.disk = st.disk[n-st.base:]
		st.base = n
	}
	if st.Mirror != nil {
		mt, ok := st.Mirror.(MirrorTruncator)
		if !ok {
			panic("storage: TruncatePrefix with a mirror that cannot truncate")
		}
		if err := mt.TruncatePrefix(n); err != nil {
			panic(fmt.Sprintf("storage: mirror truncate: %v", err))
		}
	}
}

// TruncateTail discards the durable image from logical offset n on — the
// recovery step that removes a torn tail so the next incarnation's
// records are appended where a replay will actually read them (replay
// stops at the first torn record, so bytes after a tear are dead). Only
// meaningful with no write in flight (post-Drop). The live daemon
// truncates its WAL file before the device exists, so a mirror here is
// unsupported.
func (st *Stable) TruncateTail(n int) {
	if st.busy {
		panic("storage: TruncateTail with a write in flight")
	}
	if n < st.base || n > st.base+len(st.disk) {
		panic(fmt.Sprintf("storage: TruncateTail(%d) outside [%d, %d]", n, st.base, st.base+len(st.disk)))
	}
	if st.Mirror != nil {
		panic("storage: TruncateTail with a mirror")
	}
	st.disk = st.disk[:n-st.base]
}
