package storage

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestWriteCompletesAfterLatency(t *testing.T) {
	s := sim.New(1)
	st := New(s, 5*time.Millisecond)
	var doneAt sim.Time
	st.Write(func() { doneAt = s.Now() })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if doneAt != sim.Time(5*time.Millisecond) {
		t.Fatalf("write completed at %v, want 5ms", doneAt)
	}
	if st.Writes() != 1 {
		t.Errorf("Writes = %d", st.Writes())
	}
	if st.Latency() != 5*time.Millisecond {
		t.Errorf("Latency = %v", st.Latency())
	}
}

func TestWritesSerializeThroughOneDevice(t *testing.T) {
	s := sim.New(1)
	st := New(s, 2*time.Millisecond)
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		st.Write(func() { completions = append(completions, s.Now()) })
	}
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{
		sim.Time(2 * time.Millisecond),
		sim.Time(4 * time.Millisecond),
		sim.Time(6 * time.Millisecond),
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
	// The first write starts immediately; the other two queue behind it.
	if st.MaxQueue() != 2 {
		t.Errorf("MaxQueue = %d, want 2", st.MaxQueue())
	}
}

func TestZeroLatencyStillAsynchronous(t *testing.T) {
	s := sim.New(1)
	st := New(s, 0)
	done := false
	st.Write(func() { done = true })
	if done {
		t.Fatal("zero-latency write completed synchronously")
	}
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("write never completed")
	}
}

func TestWriteFromCompletionCallback(t *testing.T) {
	// A write issued from a completion callback (as the baseline's confirm
	// chain does) must queue and run, not deadlock or recurse.
	s := sim.New(1)
	st := New(s, time.Millisecond)
	order := []int{}
	st.Write(func() {
		order = append(order, 1)
		st.Write(func() { order = append(order, 2) })
	})
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != sim.Time(2*time.Millisecond) {
		t.Errorf("chained writes finished at %v, want 2ms", s.Now())
	}
}
