package storage

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestWriteCompletesAfterLatency(t *testing.T) {
	s := sim.New(1)
	st := New(s, 5*time.Millisecond)
	var doneAt sim.Time
	st.Write(func() { doneAt = s.Now() })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if doneAt != sim.Time(5*time.Millisecond) {
		t.Fatalf("write completed at %v, want 5ms", doneAt)
	}
	if st.Writes() != 1 {
		t.Errorf("Writes = %d", st.Writes())
	}
	if st.Latency() != 5*time.Millisecond {
		t.Errorf("Latency = %v", st.Latency())
	}
}

func TestWritesSerializeThroughOneDevice(t *testing.T) {
	s := sim.New(1)
	st := New(s, 2*time.Millisecond)
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		st.Write(func() { completions = append(completions, s.Now()) })
	}
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{
		sim.Time(2 * time.Millisecond),
		sim.Time(4 * time.Millisecond),
		sim.Time(6 * time.Millisecond),
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
	// The first write starts immediately; the other two queue behind it.
	if st.MaxQueue() != 2 {
		t.Errorf("MaxQueue = %d, want 2", st.MaxQueue())
	}
}

func TestZeroLatencyStillAsynchronous(t *testing.T) {
	s := sim.New(1)
	st := New(s, 0)
	done := false
	st.Write(func() { done = true })
	if done {
		t.Fatal("zero-latency write completed synchronously")
	}
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("write never completed")
	}
}

func TestWriteFromCompletionCallback(t *testing.T) {
	// A write issued from a completion callback (as the baseline's confirm
	// chain does) must queue and run, not deadlock or recurse.
	s := sim.New(1)
	st := New(s, time.Millisecond)
	order := []int{}
	st.Write(func() {
		order = append(order, 1)
		st.Write(func() { order = append(order, 2) })
	})
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != sim.Time(2*time.Millisecond) {
		t.Errorf("chained writes finished at %v, want 2ms", s.Now())
	}
}

// TestDropMidWrite crashes the owner while one append is in flight and
// two more are queued: the in-flight write is torn to a strict prefix,
// the queue vanishes, and no done callback ever fires — a wiped processor
// must not observe completions from before its crash.
func TestDropMidWrite(t *testing.T) {
	s := sim.New(1)
	st := New(s, 5*time.Millisecond)
	st.Append([]byte("first!"), nil)
	if err := s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	fired := 0
	st.Append([]byte("inflight"), func() { fired++ })
	st.Append([]byte("queued-1"), func() { fired++ })
	st.Append([]byte("queued-2"), func() { fired++ })
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st.Drop()
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("%d done callbacks fired across the crash", fired)
	}
	got := string(st.Contents())
	if got != "first!"+"infl" { // default tear keeps half of the 8 bytes
		t.Fatalf("disk = %q", got)
	}
	if st.Writes() != 1 {
		t.Errorf("Writes = %d, want only the pre-crash write", st.Writes())
	}

	// The device must accept a fresh write chain after the crash.
	ok := false
	st.Append([]byte("+next"), func() { ok = true })
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !ok || string(st.Contents()) != "first!infl+next" {
		t.Fatalf("post-crash append: ok=%v disk=%q", ok, st.Contents())
	}
}

// TestDropWhenIdleKeepsDisk exercises Drop with nothing in flight.
func TestDropWhenIdleKeepsDisk(t *testing.T) {
	s := sim.New(1)
	st := New(s, time.Millisecond)
	st.Append([]byte("abc"), nil)
	if err := s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st.Drop()
	if string(st.Contents()) != "abc" {
		t.Fatalf("disk = %q, durable bytes must survive a crash", st.Contents())
	}
}

// TestTornPrefixHook checks the injectable tear policy, including
// out-of-range returns being clamped to a strict prefix.
func TestTornPrefixHook(t *testing.T) {
	for _, tc := range []struct {
		ret  int
		want string
	}{
		{0, ""}, {3, "abc"}, {-5, ""}, {99, "abcdefg"}, // 99 clamps to n-1
	} {
		s := sim.New(1)
		st := New(s, 5*time.Millisecond)
		st.TornPrefix = func(n int) int { return tc.ret }
		st.Append([]byte("abcdefgh"), nil)
		if err := s.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
		st.Drop()
		if got := string(st.Contents()); got != tc.want {
			t.Errorf("TornPrefix→%d: disk = %q, want %q", tc.ret, got, tc.want)
		}
	}
}

// TestFlipBitBounds checks the corruption hook flips exactly one bit and
// ignores out-of-range offsets.
func TestFlipBitBounds(t *testing.T) {
	s := sim.New(1)
	st := New(s, 0)
	st.Append([]byte{0x00, 0xff}, nil)
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st.FlipBit(0, 3)
	st.FlipBit(-1, 0) // all ignored
	st.FlipBit(2, 0)
	st.FlipBit(1, 8)
	got := st.Contents()
	if got[0] != 0x08 || got[1] != 0xff {
		t.Fatalf("disk = %x", got)
	}
}
