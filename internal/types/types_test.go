package types

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestViewIDOrder(t *testing.T) {
	cases := []struct {
		a, b ViewID
		less bool
	}{
		{Bottom, G0(), true},
		{G0(), Bottom, false},
		{Bottom, Bottom, false},
		{G0(), G0(), false},
		{ViewID{Epoch: 1, Proc: 0}, ViewID{Epoch: 1, Proc: 1}, true},
		{ViewID{Epoch: 1, Proc: 5}, ViewID{Epoch: 2, Proc: 0}, true},
		{ViewID{Epoch: 3, Proc: 1}, ViewID{Epoch: 2, Proc: 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %t, want %t", c.a, c.b, got, c.less)
		}
	}
}

func TestViewIDLessIsStrictTotalOrder(t *testing.T) {
	gen := func(r *rand.Rand) ViewID {
		return ViewID{Epoch: r.Int63n(4), Proc: ProcID(r.Intn(4))}
	}
	t.Logf("seed 1")
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		// Trichotomy.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			t.Fatalf("trichotomy fails for %v, %v", a, b)
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity fails for %v < %v < %v", a, b, c)
		}
		// Cmp consistency.
		switch a.Cmp(b) {
		case -1:
			if !a.Less(b) {
				t.Fatalf("Cmp=-1 but !Less: %v %v", a, b)
			}
		case 0:
			if a != b {
				t.Fatalf("Cmp=0 but unequal: %v %v", a, b)
			}
		case 1:
			if !b.Less(a) {
				t.Fatalf("Cmp=1 but !greater: %v %v", a, b)
			}
		}
		if a.LessEq(b) != (a.Less(b) || a == b) {
			t.Fatalf("LessEq inconsistent for %v %v", a, b)
		}
	}
}

func TestViewIDBottomAndString(t *testing.T) {
	if !Bottom.IsBottom() || G0().IsBottom() {
		t.Fatal("IsBottom misclassifies")
	}
	if Bottom.String() != "⊥" {
		t.Errorf("Bottom.String() = %q", Bottom.String())
	}
	if got := (ViewID{Epoch: 2, Proc: 3}).String(); got != "g2.3" {
		t.Errorf("String() = %q, want g2.3", got)
	}
}

func TestNewProcSetSortsAndDedups(t *testing.T) {
	s := NewProcSet(3, 1, 3, 2, 1)
	want := []ProcID{1, 2, 3}
	if !reflect.DeepEqual(s.Members(), want) {
		t.Fatalf("Members() = %v, want %v", s.Members(), want)
	}
	if s.Size() != 3 {
		t.Errorf("Size() = %d", s.Size())
	}
}

func TestProcSetOperations(t *testing.T) {
	a := NewProcSet(1, 2, 3)
	b := NewProcSet(3, 4)
	empty := NewProcSet()

	if !a.Contains(2) || a.Contains(4) {
		t.Error("Contains wrong")
	}
	if !a.Intersects(b) || a.Intersects(NewProcSet(9)) {
		t.Error("Intersects wrong")
	}
	if got := a.Union(b); !got.Equal(NewProcSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewProcSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Without(2); !got.Equal(NewProcSet(1, 3)) {
		t.Errorf("Without = %v", got)
	}
	if !empty.SubsetOf(a) || !a.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !empty.IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if a.Min() != 1 {
		t.Errorf("Min = %v", a.Min())
	}
	if a.String() != "{p1,p2,p3}" {
		t.Errorf("String = %q", a.String())
	}
	if a.Key() != a.String() {
		t.Error("Key != String")
	}
}

func TestProcSetMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty set did not panic")
		}
	}()
	NewProcSet().Min()
}

func TestRangeProcSet(t *testing.T) {
	s := RangeProcSet(4)
	if !s.Equal(NewProcSet(0, 1, 2, 3)) {
		t.Fatalf("RangeProcSet(4) = %v", s)
	}
	if !RangeProcSet(0).IsEmpty() {
		t.Error("RangeProcSet(0) not empty")
	}
}

func TestProcSetQuickProperties(t *testing.T) {
	t.Logf("seed 7")
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	mk := func(raw []uint8) ProcSet {
		ids := make([]ProcID, len(raw))
		for i, v := range raw {
			ids[i] = ProcID(v % 16)
		}
		return NewProcSet(ids...)
	}
	// Union is commutative and contains both operands.
	err := quick.Check(func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		u := a.Union(b)
		return u.Equal(b.Union(a)) && a.SubsetOf(u) && b.SubsetOf(u)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
	// Intersect is a subset of both; Intersects agrees with non-emptiness.
	err = quick.Check(func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		i := a.Intersect(b)
		return i.SubsetOf(a) && i.SubsetOf(b) && (a.Intersects(b) == !i.IsEmpty())
	}, cfg)
	if err != nil {
		t.Error(err)
	}
	// Members are strictly sorted (and hence unique).
	err = quick.Check(func(xs []uint8) bool {
		m := mk(xs).Members()
		return sort.SliceIsSorted(m, func(i, j int) bool { return m[i] < m[j] }) &&
			func() bool {
				for i := 1; i < len(m); i++ {
					if m[i] == m[i-1] {
						return false
					}
				}
				return true
			}()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestLabelOrder(t *testing.T) {
	g1 := ViewID{Epoch: 1, Proc: 0}
	g2 := ViewID{Epoch: 2, Proc: 0}
	cases := []struct {
		a, b Label
		less bool
	}{
		{Label{g1, 1, 0}, Label{g2, 1, 0}, true},
		{Label{g1, 1, 0}, Label{g1, 2, 0}, true},
		{Label{g1, 1, 0}, Label{g1, 1, 1}, true},
		{Label{g2, 1, 0}, Label{g1, 9, 9}, false},
		{Label{g1, 1, 1}, Label{g1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %t, want %t", c.a, c.b, got, c.less)
		}
	}
}

func TestSortLabels(t *testing.T) {
	g1 := ViewID{Epoch: 1}
	g2 := ViewID{Epoch: 2}
	ls := []Label{{g2, 1, 0}, {g1, 2, 1}, {g1, 2, 0}, {g1, 1, 3}}
	SortLabels(ls)
	for i := 1; i < len(ls); i++ {
		if ls[i].Less(ls[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, ls)
		}
	}
}

func TestMajorities(t *testing.T) {
	m := Majorities{Universe: RangeProcSet(5)}
	cases := []struct {
		set  ProcSet
		want bool
	}{
		{NewProcSet(0, 1, 2), true},
		{NewProcSet(0, 1), false},
		{NewProcSet(0, 1, 2, 3, 4), true},
		{NewProcSet(), false},
		// Members outside the universe don't count.
		{NewProcSet(7, 8, 9), false},
		{NewProcSet(0, 1, 7, 8, 9), false},
	}
	for _, c := range cases {
		if got := m.IsQuorumContained(c.set); got != c.want {
			t.Errorf("IsQuorumContained(%v) = %t, want %t", c.set, got, c.want)
		}
	}
}

func TestExplicitQuorums(t *testing.T) {
	q, err := NewExplicitQuorums(NewProcSet(0, 1), NewProcSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsQuorumContained(NewProcSet(0, 1, 5)) {
		t.Error("superset of a quorum not recognized")
	}
	if q.IsQuorumContained(NewProcSet(0, 2)) {
		t.Error("non-quorum accepted")
	}
	if _, err := NewExplicitQuorums(NewProcSet(0), NewProcSet(1)); err == nil {
		t.Error("disjoint quorums accepted")
	}
}

func TestInitialView(t *testing.T) {
	v := InitialView(NewProcSet(0, 1))
	if v.ID != G0() || !v.Set.Equal(NewProcSet(0, 1)) {
		t.Fatalf("InitialView = %v", v)
	}
}

// TestMajorityQuorumsPairwiseIntersect is the property the VStoTO
// algorithm's primary-view reasoning rests on: any two majorities of the
// same universe share a member.
func TestMajorityQuorumsPairwiseIntersect(t *testing.T) {
	universe := RangeProcSet(7)
	m := Majorities{Universe: universe}
	members := universe.Members()
	// Enumerate all subsets of a 7-element universe.
	for a := 0; a < 1<<7; a++ {
		setA := subsetOf(members, a)
		if !m.IsQuorumContained(setA) {
			continue
		}
		for b := 0; b < 1<<7; b++ {
			setB := subsetOf(members, b)
			if !m.IsQuorumContained(setB) {
				continue
			}
			if !setA.Intersects(setB) {
				t.Fatalf("majorities %v and %v do not intersect", setA, setB)
			}
		}
	}
}

func subsetOf(members []ProcID, mask int) ProcSet {
	var ids []ProcID
	for i, p := range members {
		if mask&(1<<i) != 0 {
			ids = append(ids, p)
		}
	}
	return NewProcSet(ids...)
}
