// Package types defines the ground vocabulary shared by every layer of the
// reproduction: processor identifiers (the paper's set P), view identifiers
// (the totally ordered set G with initial element g0), views, data values
// (the paper's set A), and the lexicographically ordered labels L used by the
// VStoTO algorithm.
//
// The paper fixes P as a totally ordered finite set and G as a totally
// ordered set of view identifiers with a distinguished minimum g0. Here a
// view identifier is an ⟨epoch, proc⟩ pair ordered lexicographically; this
// matches the Section 8 implementation note that viewids have "a procid as
// low-order part (and a stable sequence number as high-order part)", which
// makes fresh identifiers both unique and larger than any identifier
// previously seen.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// ProcID identifies a processor; the set P of the paper. ProcIDs are totally
// ordered by their integer value.
type ProcID int

// String returns a short human-readable form such as "p3".
func (p ProcID) String() string { return fmt.Sprintf("p%d", int(p)) }

// ViewID is an element of the totally ordered set G of view identifiers.
// The zero value is reserved as the paper's ⊥ (undefined view identifier):
// it is less than every defined identifier, and IsBottom reports it.
// Real identifiers order first by Epoch, then by Proc.
type ViewID struct {
	// Epoch is the high-order component; fresh views pick an epoch larger
	// than any epoch previously observed. The initial view g0 has epoch 1.
	Epoch int64
	// Proc is the low-order tie-breaker, the identifier of the processor
	// that created the view (0 for the distinguished initial view).
	Proc ProcID
}

// Bottom is the paper's ⊥: the undefined view identifier, smaller than all
// defined identifiers.
var Bottom = ViewID{}

// G0 returns the distinguished initial view identifier g0, the minimum of G.
func G0() ViewID { return ViewID{Epoch: 1, Proc: 0} }

// IsBottom reports whether v is the undefined identifier ⊥.
func (v ViewID) IsBottom() bool { return v == ViewID{} }

// Less reports whether v < w in the total order on G extended with ⊥ as the
// minimum element.
func (v ViewID) Less(w ViewID) bool {
	if v.Epoch != w.Epoch {
		return v.Epoch < w.Epoch
	}
	return v.Proc < w.Proc
}

// LessEq reports v ≤ w.
func (v ViewID) LessEq(w ViewID) bool { return v == w || v.Less(w) }

// Cmp returns -1, 0, or +1 according to the order on G⊥.
func (v ViewID) Cmp(w ViewID) int {
	switch {
	case v == w:
		return 0
	case v.Less(w):
		return -1
	default:
		return 1
	}
}

// String renders the identifier; ⊥ prints as "⊥".
func (v ViewID) String() string {
	if v.IsBottom() {
		return "⊥"
	}
	return fmt.Sprintf("g%d.%d", v.Epoch, int(v.Proc))
}

// ProcSet is an immutable, sorted, duplicate-free set of processor
// identifiers. The zero value is the empty set. Construct with NewProcSet;
// never mutate the underlying slice after construction.
type ProcSet struct {
	ids []ProcID // sorted ascending, no duplicates
}

// NewProcSet builds a set from the given identifiers, sorting and removing
// duplicates.
func NewProcSet(ids ...ProcID) ProcSet {
	out := make([]ProcID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			dedup = append(dedup, id)
		}
	}
	return ProcSet{ids: dedup}
}

// RangeProcSet returns the set {0, 1, ..., n-1}, a convenient universe P.
func RangeProcSet(n int) ProcSet {
	ids := make([]ProcID, n)
	for i := range ids {
		ids[i] = ProcID(i)
	}
	return ProcSet{ids: ids}
}

// Size returns |S|.
func (s ProcSet) Size() int { return len(s.ids) }

// IsEmpty reports whether the set has no members.
func (s ProcSet) IsEmpty() bool { return len(s.ids) == 0 }

// Contains reports membership of p in the set.
func (s ProcSet) Contains(p ProcID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= p })
	return i < len(s.ids) && s.ids[i] == p
}

// Members returns the members in ascending order. The returned slice is
// shared; callers must not modify it.
func (s ProcSet) Members() []ProcID { return s.ids }

// Equal reports whether the two sets have identical membership.
func (s ProcSet) Equal(t ProcSet) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of t.
func (s ProcSet) SubsetOf(t ProcSet) bool {
	for _, p := range s.ids {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one member.
func (s ProcSet) Intersects(t ProcSet) bool {
	for _, p := range s.ids {
		if t.Contains(p) {
			return true
		}
	}
	return false
}

// Union returns s ∪ t.
func (s ProcSet) Union(t ProcSet) ProcSet {
	return NewProcSet(append(append([]ProcID{}, s.ids...), t.ids...)...)
}

// Intersect returns s ∩ t.
func (s ProcSet) Intersect(t ProcSet) ProcSet {
	var out []ProcID
	for _, p := range s.ids {
		if t.Contains(p) {
			out = append(out, p)
		}
	}
	return ProcSet{ids: out}
}

// Without returns s \ {p}.
func (s ProcSet) Without(p ProcID) ProcSet {
	var out []ProcID
	for _, q := range s.ids {
		if q != p {
			out = append(out, q)
		}
	}
	return ProcSet{ids: out}
}

// Min returns the smallest member; it panics on the empty set.
func (s ProcSet) Min() ProcID {
	if len(s.ids) == 0 {
		panic("types: Min of empty ProcSet")
	}
	return s.ids[0]
}

// Key returns a canonical comparable representation, usable as a map key.
func (s ProcSet) Key() string { return s.String() }

// String renders the set as "{p0,p2,p5}".
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// View is an element of views = G × P(P): a view identifier paired with a
// membership set.
type View struct {
	ID  ViewID
	Set ProcSet
}

// String renders the view as "⟨g2.1 {p0,p1}⟩".
func (v View) String() string { return fmt.Sprintf("⟨%v %v⟩", v.ID, v.Set) }

// InitialView returns the distinguished initial view v0 = ⟨g0, P0⟩ for a
// given initial membership P0.
func InitialView(p0 ProcSet) View { return View{ID: G0(), Set: p0} }

// Value is an element of the paper's abstract data-value set A. Values are
// immutable and comparable, which the trace checkers rely on.
type Value string

// Label is an element of L = G × N⁺ × P with selectors id, seqno, origin —
// the system-wide unique names the VStoTO algorithm assigns to client values.
// Labels are ordered lexicographically.
type Label struct {
	ID     ViewID // the sender's view identifier when the value arrived
	Seqno  int    // per-(processor, view) sequence number, starting at 1
	Origin ProcID // the processor at which the value was submitted
}

// Less reports l < m in the lexicographic order on L.
func (l Label) Less(m Label) bool {
	if l.ID != m.ID {
		return l.ID.Less(m.ID)
	}
	if l.Seqno != m.Seqno {
		return l.Seqno < m.Seqno
	}
	return l.Origin < m.Origin
}

// String renders the label compactly.
func (l Label) String() string {
	return fmt.Sprintf("⟨%v#%d@%v⟩", l.ID, l.Seqno, l.Origin)
}

// SortLabels sorts the slice in ascending label order, in place.
func SortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
}

// QuorumSystem is the fixed set Q of quorums: subsets of P, any two of which
// intersect. The VStoTO algorithm uses it to decide which views are primary.
type QuorumSystem interface {
	// IsQuorumContained reports whether the membership set contains a quorum.
	IsQuorumContained(s ProcSet) bool
}

// Majorities is the default quorum system: a set contains a quorum iff it
// holds a strict majority of the universe.
type Majorities struct {
	// Universe is the full processor set P.
	Universe ProcSet
}

// IsQuorumContained reports whether s contains a strict majority of the
// universe.
func (m Majorities) IsQuorumContained(s ProcSet) bool {
	return 2*s.Intersect(m.Universe).Size() > m.Universe.Size()
}

// ExplicitQuorums is a quorum system given by an explicit list of quorums.
// Construct with NewExplicitQuorums, which validates pairwise intersection.
type ExplicitQuorums struct {
	quorums []ProcSet
}

// NewExplicitQuorums validates that every pair of quorums intersects and
// returns the quorum system.
func NewExplicitQuorums(quorums ...ProcSet) (ExplicitQuorums, error) {
	for i := range quorums {
		for j := i + 1; j < len(quorums); j++ {
			if !quorums[i].Intersects(quorums[j]) {
				return ExplicitQuorums{}, fmt.Errorf(
					"types: quorums %v and %v do not intersect", quorums[i], quorums[j])
			}
		}
	}
	return ExplicitQuorums{quorums: quorums}, nil
}

// IsQuorumContained reports whether s contains some quorum.
func (e ExplicitQuorums) IsQuorumContained(s ProcSet) bool {
	for _, q := range e.quorums {
		if q.SubsetOf(s) {
			return true
		}
	}
	return false
}
