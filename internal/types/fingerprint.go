package types

import "encoding/binary"

// Binary fingerprint vocabulary. The bounded exhaustive explorer keys its
// visited set by a 64-bit hash of a canonical binary encoding of the
// composed state; these helpers are the shared encoding primitives every
// layer's AppendFingerprint builds on. The encoding is self-delimiting
// (varint-framed) so distinct states cannot encode to the same byte
// sequence, and it is a pure function of the abstract state — never of map
// iteration order, pointer identity, or formatting.

// AppendFingerprintInt appends a signed integer in varint framing.
func AppendFingerprintInt(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendFingerprintString appends a length-prefixed string.
func AppendFingerprintString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendFingerprint appends the identifier's canonical encoding (⊥ encodes
// as the zero pair, below every defined identifier's encoding).
func (v ViewID) AppendFingerprint(buf []byte) []byte {
	buf = binary.AppendVarint(buf, v.Epoch)
	return binary.AppendVarint(buf, int64(v.Proc))
}

// AppendFingerprint appends the label's canonical encoding.
func (l Label) AppendFingerprint(buf []byte) []byte {
	buf = l.ID.AppendFingerprint(buf)
	buf = binary.AppendVarint(buf, int64(l.Seqno))
	return binary.AppendVarint(buf, int64(l.Origin))
}

// AppendFingerprint appends the set's members (already sorted and
// duplicate-free by construction), length-prefixed.
func (s ProcSet) AppendFingerprint(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.ids)))
	for _, p := range s.ids {
		buf = binary.AppendVarint(buf, int64(p))
	}
	return buf
}

// AppendFingerprint appends the view: identifier then membership.
func (v View) AppendFingerprint(buf []byte) []byte {
	buf = v.ID.AppendFingerprint(buf)
	return v.Set.AppendFingerprint(buf)
}

// FNV-1a 64-bit constants (the visited-set hash; FNV is seed-free, so the
// same state hashes identically across runs, machines, and worker counts —
// a requirement for the CI exact-count gates).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashFingerprint hashes an encoded fingerprint to the 64-bit visited-set
// key (FNV-1a).
func HashFingerprint(buf []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}
