package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsValidate regenerates every evaluation table and
// requires each claim to validate. This is the repository's end-to-end
// "reproduction gate"; it runs the same harness as cmd/experiments.
func TestAllExperimentsValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped in -short mode")
	}
	for _, tbl := range All(1) {
		tbl := tbl
		t.Run(tbl.ID, func(t *testing.T) {
			if len(tbl.Failures) > 0 {
				t.Fatalf("%s failed validation:\n%s", tbl.ID, strings.Join(tbl.Failures, "\n"))
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", tbl.ID)
			}
		})
	}
}

// TestExperimentsDeterministic: the same seed regenerates the identical
// tables (the whole harness is simulator-backed).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	a := E4(7).Format()
	b := E4(7).Format()
	if a != b {
		t.Fatalf("E4 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "title", Claim: "claim",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Format()
	for _, want := range []string{"EX — title", "claim: claim", "a note", "result: claim validated"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	tbl.Failures = append(tbl.Failures, "boom")
	if out := tbl.Format(); !strings.Contains(out, "FAIL: boom") || strings.Contains(out, "validated") {
		t.Errorf("failure formatting wrong:\n%s", out)
	}
}
