package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/types"
	"repro/internal/vstoto"
)

// exploreBenchConfig is the fixed configuration behind BENCH_explore.json:
// two processors, two client values, one view change. Big enough to be a
// real capacity signal (~300k states, depth 39 — about 2 bcast/view bounds
// past where the string-fingerprint serial explorer was practical), small
// enough for a CI job. The counts it produces are exact and
// machine-independent (FNV fingerprints, deterministic wave merge), so CI
// pins them against the checked-in artifact.
func exploreBenchConfig() vstoto.ExploreConfig {
	return vstoto.ExploreConfig{
		N:         2,
		MaxBcasts: 2,
		Views: []types.View{
			{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.NewProcSet(0, 1)},
		},
	}
}

// ExploreBenchReport is the machine-readable exploration benchmark
// (BENCH_explore.json): the fixed configuration above explored unreduced
// and reduced, with exact counts (the CI determinism gate), wall-clock
// throughput (the CI states/sec floor), and the POR agreement verdict.
type ExploreBenchReport struct {
	Cores   int `json:"cores"`
	Workers int `json:"workers"`
	// Bounds of the fixed configuration, recorded so the artifact is
	// self-describing.
	N         int `json:"n"`
	MaxBcasts int `json:"max_bcasts"`
	Views     int `json:"views"`

	// Unreduced run: the exact-count fields (states, edges, depth, queue)
	// are pure functions of the configuration — CI fails if they drift.
	States       int     `json:"states"`
	Edges        int     `json:"edges"`
	MaxDepth     int     `json:"max_depth"`
	MaxQueueLen  int     `json:"max_queue_len"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	StatesPerSec float64 `json:"states_per_sec"`

	// Reduced (POR) run plus the agreement cross-check.
	PORStates      int     `json:"por_states"`
	POREdges       int     `json:"por_edges"`
	PORAmpleStates int     `json:"por_ample_states"`
	PORElapsedNS   int64   `json:"por_elapsed_ns"`
	ReductionRatio float64 `json:"por_reduction_ratio"`
	PORAgree       bool    `json:"por_agree"`
	ViolationFull  string  `json:"violation_full,omitempty"`
	ViolationPOR   string  `json:"violation_por,omitempty"`
}

// ExploreBench runs the fixed configuration unreduced then reduced at the
// given worker count and reports both. Wall-clock numbers are the only
// machine-dependent fields; every count is exact.
func ExploreBench(workers int) *ExploreBenchReport {
	cfg := exploreBenchConfig()
	cfg.Workers = workers
	rep := &ExploreBenchReport{
		Cores:     runtime.NumCPU(),
		Workers:   cfg.Workers,
		N:         cfg.N,
		MaxBcasts: cfg.MaxBcasts,
		Views:     len(cfg.Views),
	}

	start := time.Now()
	full, fullErr := vstoto.Explore(cfg)
	rep.ElapsedNS = time.Since(start).Nanoseconds()
	rep.States, rep.Edges = full.States, full.Edges
	rep.MaxDepth, rep.MaxQueueLen = full.MaxDepth, full.MaxQueueLen
	if rep.ElapsedNS > 0 {
		rep.StatesPerSec = float64(full.States) / (float64(rep.ElapsedNS) / 1e9)
	}
	if fullErr != nil {
		rep.ViolationFull = fullErr.Error()
	}

	cfg.POR = true
	start = time.Now()
	red, redErr := vstoto.Explore(cfg)
	rep.PORElapsedNS = time.Since(start).Nanoseconds()
	rep.PORStates, rep.POREdges = red.States, red.Edges
	rep.PORAmpleStates = red.AmpleStates
	if full.States > 0 {
		rep.ReductionRatio = float64(red.States) / float64(full.States)
	}
	rep.PORAgree = (fullErr == nil) == (redErr == nil)
	if redErr != nil {
		rep.ViolationPOR = redErr.Error()
	}
	return rep
}

// E18 validates the parallel explorer the way E17 validates parallel
// apply: on three configurations (a stable group, a view change, and the
// literal Figure 10 mutant) it checks that worker counts 1 and NumCPU
// produce identical results and identical first violations, and that POR
// agrees with the unreduced run on every verdict while pruning states.
// The wall-clock columns are informational; every count is gated.
func E18(_ int64) *Table {
	t := &Table{
		ID:    "E18",
		Title: "parallel model checking: determinism and POR cross-check",
		Claim: "Explore is byte-identical at workers=1 vs NumCPU (counts and first violation), and POR agrees with the unreduced run on every verdict while visiting fewer states",
		Columns: []string{"config", "mode", "states", "edges", "depth", "ample",
			"wall elapsed", "verdict"},
	}

	scenarios := []struct {
		name          string
		cfg           vstoto.ExploreConfig
		wantViolation bool
	}{
		{"n=2 bcasts=2 (stable)", vstoto.ExploreConfig{N: 2, MaxBcasts: 2}, false},
		{"n=2 bcasts=1 views=1", vstoto.ExploreConfig{N: 2, MaxBcasts: 1,
			Views: []types.View{{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.NewProcSet(0, 1)}}}, false},
		{"literal Figure 10 label", vstoto.ExploreConfig{N: 2, MaxBcasts: 1,
			Views:                []types.View{{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.NewProcSet(0, 1)}},
			LiteralFigure10Label: true, MaxStates: 300000}, true},
	}

	verdict := func(err error) string {
		if err == nil {
			return "clean"
		}
		return "violation"
	}
	for _, sc := range scenarios {
		// Determinism: workers=1 is the reference; NumCPU must reproduce it.
		cfg := sc.cfg
		cfg.Workers = 1
		start := time.Now()
		ref, refErr := vstoto.Explore(cfg)
		refElapsed := time.Since(start)
		cfg.Workers = runtime.NumCPU()
		par, parErr := vstoto.Explore(cfg)
		if par != ref {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"%s: workers=%d result %+v diverged from workers=1 %+v", sc.name, cfg.Workers, par, ref))
		}
		if (parErr == nil) != (refErr == nil) ||
			(parErr != nil && parErr.Error() != refErr.Error()) {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"%s: workers=%d violation %v diverged from workers=1 %v", sc.name, cfg.Workers, parErr, refErr))
		}
		if sc.wantViolation != (refErr != nil) {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"%s: want violation=%v, got err=%v", sc.name, sc.wantViolation, refErr))
		}

		// Reduction: POR must agree on the verdict and visit fewer states.
		c := vstoto.ExplorePORCrossCheck(sc.cfg)
		if !c.Agree() {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"%s: POR verdict disagreement: full=%v reduced=%v", sc.name, c.FullErr, c.RedErr))
		}
		if c.Reduced.States >= c.Full.States {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"%s: POR visited %d states vs %d unreduced — no reduction", sc.name, c.Reduced.States, c.Full.States))
		}

		t.Rows = append(t.Rows,
			[]string{sc.name, "full", fmt.Sprint(ref.States), fmt.Sprint(ref.Edges),
				fmt.Sprint(ref.MaxDepth), "-", refElapsed.Round(time.Millisecond).String(), verdict(refErr)},
			[]string{sc.name, "por", fmt.Sprint(c.Reduced.States), fmt.Sprint(c.Reduced.Edges),
				fmt.Sprint(c.Reduced.MaxDepth), fmt.Sprint(c.Reduced.AmpleStates),
				fmt.Sprintf("ratio %.3f", c.ReductionRatio()), verdict(c.RedErr)})
	}
	return t
}
