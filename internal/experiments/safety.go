package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/ioa"
	"repro/internal/props"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/spec/tomachine"
	"repro/internal/spec/vsmachine"
	"repro/internal/stack"
	"repro/internal/types"
	"repro/internal/vstoto"
)

// E6 machine-checks Theorem 6.26 on randomized executions of the
// spec-level VStoTO-system: every Section 6 invariant and the full forward
// simulation to TO-machine are verified after every step.
func E6(seed int64) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Randomized safety check of VStoTO-system (spec composition)",
		Claim:   "Theorem 6.26: every trace of VStoTO-system is a trace of TO-machine (via invariants + forward simulation, checked per step)",
		Columns: []string{"n", "churn", "steps", "views created", "brcv events", "violations"},
	}
	for _, cfg := range []struct {
		n     int
		churn float64
		steps int
	}{
		{3, 0.02, 3000}, {4, 0.05, 3000}, {5, 0.10, 2000},
	} {
		procs := types.RangeProcSet(cfg.n)
		qs := types.Majorities{Universe: procs}
		vsAuto := vsmachine.NewAuto(procs, procs)
		components := []ioa.Automaton{vsAuto}
		procMap := make(map[types.ProcID]*vstoto.Proc, cfg.n)
		for _, p := range procs.Members() {
			a := vstoto.NewAuto(p, qs, procs)
			procMap[p] = a.P
			components = append(components, a)
		}
		exec := ioa.NewExecutor(seed+int64(cfg.n), components...)
		vsAuto.Proposer = vsmachine.RandomViewProposer(vsAuto, exec.Rand(), cfg.churn)
		var counter int
		exec.SetEnvironment(ioa.EnvironmentFunc(func(rng *rand.Rand) ioa.Action {
			counter++
			return tomachine.Bcast{A: types.Value(fmt.Sprintf("v%d", counter)), P: types.ProcID(rng.Intn(cfg.n))}
		}))
		sys := vstoto.NewSystem(vsAuto.M, procMap, qs)
		simrel := vstoto.NewSimulationChecker(sys)
		violations := 0
		exec.OnStep(func(ev ioa.TraceEvent) error {
			if err := sys.CheckInvariants(); err != nil {
				violations++
				return err
			}
			return simrel.AfterStep(ev.Act)
		})
		err := exec.Run(cfg.steps)
		if err != nil {
			violations++
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d churn=%.2f: %v", cfg.n, cfg.churn, err))
		}
		brcvs := 0
		for _, ev := range exec.Trace() {
			if _, ok := ev.Act.(tomachine.Brcv); ok {
				brcvs++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cfg.n), fmt.Sprintf("%.2f", cfg.churn), fmt.Sprint(exec.Steps()),
			fmt.Sprint(len(vsAuto.M.Created)), fmt.Sprint(brcvs), fmt.Sprint(violations),
		})
	}
	return t
}

// E7 checks Lemma 4.2 conformance of the token-ring VS implementation
// under randomized fault injection: every recorded gpsnd/gprcv/safe/newview
// stream must be a trace of VS-machine.
func E7(seed int64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "VS implementation conformance under fault injection",
		Claim:   "Lemma 4.2: the implementation's traces satisfy integrity, no-duplication, no-reordering, per-view prefix total order, and safe semantics",
		Columns: []string{"n", "fault events", "VS events", "violations"},
	}
	for _, n := range []int{3, 5, 7} {
		c := stack.NewCluster(stack.Options{Seed: seed + int64(n), N: n, Delta: time.Millisecond})
		rng := rand.New(rand.NewSource(seed + int64(n)*7))
		faults := 0
		// Random fault schedule: every 150–300ms, either partition into
		// random components, degrade random links to ugly, or heal.
		var schedule func()
		schedule = func() {
			defer c.Sim.After(time.Duration(150+rng.Intn(150))*time.Millisecond, schedule)
			faults++
			switch rng.Intn(3) {
			case 0:
				cutAt := 1 + rng.Intn(n-1)
				perm := rng.Perm(n)
				var left, right []types.ProcID
				for i, idx := range perm {
					if i < cutAt {
						left = append(left, types.ProcID(idx))
					} else {
						right = append(right, types.ProcID(idx))
					}
				}
				c.Oracle.Partition(c.Procs, types.NewProcSet(left...), types.NewProcSet(right...))
			case 1:
				for i := 0; i < 3; i++ {
					from := types.ProcID(rng.Intn(n))
					to := types.ProcID(rng.Intn(n))
					if from != to {
						c.Oracle.SetChannel(from, to, failures.Ugly)
					}
				}
			case 2:
				c.Oracle.Heal(c.Procs)
			}
		}
		c.Sim.After(100*time.Millisecond, schedule)
		var traffic func()
		msgNo := 0
		traffic = func() {
			defer c.Sim.After(30*time.Millisecond, traffic)
			msgNo++
			c.Bcast(types.ProcID(rng.Intn(n)), types.Value(fmt.Sprintf("t%d", msgNo)))
		}
		c.Sim.After(10*time.Millisecond, traffic)
		if err := c.Sim.Run(sim.Time(4 * time.Second)); err != nil {
			panic(err)
		}

		ck := check.NewVSChecker(c.Procs, c.Procs)
		violations := 0
		for _, e := range c.Log.Events {
			var err error
			switch e.Kind {
			case props.VSNewview:
				err = ck.Newview(e.View, e.P)
			case props.VSGpsnd:
				err = ck.Gpsnd(e.Msg)
			case props.VSGprcv:
				err = ck.Gprcv(e.Msg, e.P)
			case props.VSSafe:
				err = ck.Safe(e.Msg, e.P)
			}
			if err != nil {
				violations++
				t.Failures = append(t.Failures, fmt.Sprintf("n=%d: %v", n, err))
				break
			}
		}
		// The TO trace must check out as well (Theorem 6.26 end to end).
		tck := check.NewTOChecker()
		for _, e := range c.Log.Events {
			switch e.Kind {
			case props.TOBcast:
				tck.Bcast(e.Value, e.P)
			case props.TOBrcv:
				if err := tck.Brcv(e.Value, e.From, e.P); err != nil {
					violations++
					t.Failures = append(t.Failures, fmt.Sprintf("n=%d TO: %v", n, err))
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(faults), fmt.Sprint(ck.Events()), fmt.Sprint(violations),
		})
	}
	return t
}

// E8 exercises the footnote-3 replicated memory under partition/heal
// cycles and verifies replica coherence throughout.
func E8(seed int64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Sequentially consistent replicated memory (footnote 3)",
		Claim:   "replicas apply one common operation prefix; reads are local; minority writes recover on merge",
		Columns: []string{"n", "writes", "applied@slowest", "partitions", "coherent"},
	}
	for _, n := range []int{3, 5} {
		c := stack.NewCluster(stack.Options{Seed: seed + int64(n), N: n, Delta: time.Millisecond})
		mem := rsm.New(c)
		rng := rand.New(rand.NewSource(seed + int64(n)))
		writes, partitions := 0, 0
		var churn func()
		churn = func() {
			defer c.Sim.After(300*time.Millisecond, churn)
			if rng.Intn(2) == 0 {
				partitions++
				cutAt := 1 + rng.Intn(n-1)
				members := c.Procs.Members()
				c.Oracle.Partition(c.Procs,
					types.NewProcSet(members[:cutAt]...), types.NewProcSet(members[cutAt:]...))
			} else {
				c.Oracle.Heal(c.Procs)
			}
		}
		c.Sim.After(200*time.Millisecond, churn)
		var load func()
		load = func() {
			defer c.Sim.After(25*time.Millisecond, load)
			writes++
			p := types.ProcID(rng.Intn(n))
			mem.Write(p, fmt.Sprintf("k%d", rng.Intn(8)), fmt.Sprintf("v%d", writes), nil)
		}
		c.Sim.After(10*time.Millisecond, load)
		// End with a heal and a quiet tail so everything settles.
		c.Sim.After(3500*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
		if err := c.Sim.Run(sim.Time(6 * time.Second)); err != nil {
			panic(err)
		}
		coherent := "yes"
		if err := mem.CheckCoherence(); err != nil {
			coherent = "NO"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: %v", n, err))
		}
		slowest := 1 << 30
		for _, p := range c.Procs.Members() {
			if a := mem.AppliedCount(p); a < slowest {
				slowest = a
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(writes), fmt.Sprint(slowest), fmt.Sprint(partitions), coherent,
		})
	}
	return t
}
