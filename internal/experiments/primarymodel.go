package experiments

import (
	"fmt"
	"time"

	"repro/internal/primary"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E12 measures the paper's central design motivation: partitionable
// semantics with reconciliation (VStoTO) versus the classic
// primary-partition model over the same VS service. Both run the identical
// partition/heal scenario with submissions on both sides; the table counts
// how much of the submitted work each model ultimately delivers at every
// processor.
func E12(seed int64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Partitionable VStoTO vs primary-partition model",
		Claim:   "the primary model loses minority submissions and leaves rejoining processors with gaps; VStoTO delivers every value everywhere after stabilization (the paper's point 4 of Section 1)",
		Columns: []string{"model", "submitted", "delivered everywhere", "min node coverage", "lost"},
	}
	const n = 5
	delta := time.Millisecond
	majority := types.NewProcSet(0, 1, 2)
	minority := types.NewProcSet(3, 4)

	type result struct {
		submitted, everywhere, lost int
		minCoverage                 int
	}
	scenario := func(bcast func(types.ProcID, types.Value), run func(sim.Time) error,
		counts func() map[types.ProcID]map[types.Value]bool, partition, heal func()) result {
		submitted := 0
		submit := func(p types.ProcID) {
			submitted++
			bcast(p, types.Value(fmt.Sprintf("w%d", submitted)))
		}
		// Phase 1: stable traffic.
		for _, p := range []types.ProcID{0, 3} {
			submit(p)
		}
		must(run(sim.Time(200 * time.Millisecond)))
		// Phase 2: partition; both sides submit.
		partition()
		must(run(sim.Time(400 * time.Millisecond)))
		for _, p := range []types.ProcID{0, 1, 3, 4} {
			submit(p)
		}
		must(run(sim.Time(900 * time.Millisecond)))
		// Phase 3: heal and settle.
		heal()
		must(run(sim.Time(4 * time.Second)))

		got := counts()
		res := result{submitted: submitted, minCoverage: 1 << 30}
		for v := 0; v < submitted; v++ {
			val := types.Value(fmt.Sprintf("w%d", v+1))
			everywhere, anywhere := true, false
			for _, p := range types.RangeProcSet(n).Members() {
				if got[p][val] {
					anywhere = true
				} else {
					everywhere = false
				}
			}
			if everywhere {
				res.everywhere++
			}
			if !anywhere {
				res.lost++
			}
		}
		for _, p := range types.RangeProcSet(n).Members() {
			if len(got[p]) < res.minCoverage {
				res.minCoverage = len(got[p])
			}
		}
		return res
	}

	// VStoTO stack.
	sc := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta})
	vsRes := scenario(
		sc.Bcast,
		func(until sim.Time) error { return sc.Sim.Run(until) },
		func() map[types.ProcID]map[types.Value]bool {
			out := make(map[types.ProcID]map[types.Value]bool)
			for _, p := range sc.Procs.Members() {
				out[p] = make(map[types.Value]bool)
				for _, d := range sc.Deliveries(p) {
					out[p][d.Value] = true
				}
			}
			return out
		},
		func() { sc.Oracle.Partition(sc.Procs, majority, minority) },
		func() { sc.Oracle.Heal(sc.Procs) },
	)
	t.Rows = append(t.Rows, []string{
		"VStoTO (partitionable)", fmt.Sprint(vsRes.submitted), fmt.Sprint(vsRes.everywhere),
		fmt.Sprint(vsRes.minCoverage), fmt.Sprint(vsRes.lost),
	})

	// Primary-partition model.
	pc := primary.NewCluster(primary.Options{Seed: seed, N: n, Delta: delta})
	prRes := scenario(
		pc.Bcast,
		func(until sim.Time) error { return pc.Sim.Run(until) },
		func() map[types.ProcID]map[types.Value]bool {
			out := make(map[types.ProcID]map[types.Value]bool)
			for _, p := range pc.Procs.Members() {
				out[p] = make(map[types.Value]bool)
				for _, d := range pc.Deliveries(p) {
					out[p][d.Value] = true
				}
			}
			return out
		},
		func() { pc.Oracle.Partition(pc.Procs, majority, minority) },
		func() { pc.Oracle.Heal(pc.Procs) },
	)
	if err := pc.CheckNoDivergence(); err != nil {
		t.Failures = append(t.Failures, fmt.Sprintf("primary model diverged: %v", err))
	}
	t.Rows = append(t.Rows, []string{
		"primary-partition", fmt.Sprint(prRes.submitted), fmt.Sprint(prRes.everywhere),
		fmt.Sprint(prRes.minCoverage), fmt.Sprint(prRes.lost),
	})

	if vsRes.everywhere != vsRes.submitted || vsRes.lost != 0 {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"VStoTO did not deliver everything everywhere (%d/%d, lost %d)",
			vsRes.everywhere, vsRes.submitted, vsRes.lost))
	}
	if prRes.lost == 0 && prRes.everywhere == prRes.submitted {
		t.Failures = append(t.Failures,
			"primary model lost nothing — the scenario no longer demonstrates the trade")
	}
	t.Notes = append(t.Notes,
		"scenario: 2 values before the cut, 4 during the 5→3|2 partition (2 on each side), then heal and settle.",
		"primary model delivers only in quorum views, with no state transfer — minority submissions are lost and rejoiners keep gaps.")
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
