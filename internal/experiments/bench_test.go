package experiments

import (
	"encoding/json"
	"testing"
)

// TestBenchBaseline pins the bench-baseline contract: four scenarios (E1,
// E2, E14, E16), each with live throughput, a sampled delivery-latency
// distribution, and the per-layer counters the baseline diff keys on,
// plus the live floors the live CI gate enforces.
func TestBenchBaseline(t *testing.T) {
	r := BenchBaseline(1)
	if len(r.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(r.Entries))
	}
	if r.Live.RateFraction <= 0 || r.Live.MaxP99MS <= 0 {
		t.Fatalf("live floors unset: %+v", r.Live)
	}
	want := []string{"E1", "E2", "E14", "E16"}
	for i, e := range r.Entries {
		if e.Experiment != want[i] {
			t.Errorf("entry %d experiment = %s, want %s", i, e.Experiment, want[i])
		}
		if e.VirtualNS <= 0 || e.Bcasts <= 0 || e.Deliveries <= 0 || e.DeliveriesPerSec <= 0 {
			t.Errorf("%s: dead scenario: %+v", e.Experiment, e)
		}
		if e.DeliveryLatency.Count <= 0 || e.DeliveryLatency.P99NS < e.DeliveryLatency.P50NS {
			t.Errorf("%s: delivery latency unsampled or inconsistent: %+v",
				e.Experiment, e.DeliveryLatency)
		}
		names := []string{"net.sent", "vs.installs", "vstoto.labels", "wal.records"}
		if e.Experiment == "E16" {
			// No membership churn in the burst scenario (the initial view
			// is sealed, not installed); what must show instead is the
			// batched WAL actually coalescing.
			names = []string{"net.sent", "vstoto.labels", "wal.records", "wal.batches"}
			if b, r := e.Counters["wal.batches"], e.Counters["wal.records"]; b >= r {
				t.Errorf("E16: wal.batches = %d of %d records: no coalescing", b, r)
			}
		}
		for _, name := range names {
			if e.Counters[name] <= 0 {
				t.Errorf("%s: counter %s = %d, want > 0", e.Experiment, name, e.Counters[name])
			}
		}
	}
	// The E14 scenario must actually exercise the crash/recovery path.
	e14 := r.Entries[2]
	if e14.Counters["stack.crashes"] != 1 || e14.Counters["stack.recoveries"] != 1 {
		t.Errorf("E14 crash/recovery counters: crashes=%d recoveries=%d, want 1/1",
			e14.Counters["stack.crashes"], e14.Counters["stack.recoveries"])
	}
	if e14.Counters["recovery.replay_records"] <= 0 {
		t.Errorf("E14 replayed no WAL records")
	}
	// Determinism: the report is a pure function of the seed.
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(BenchBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("bench baseline not deterministic for a fixed seed")
	}
}
