package experiments

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E11 is an engineering ablation of the token representation: the naive
// token carries the view's entire message history, so its size grows
// linearly with traffic; compacting out entries that every member has
// already delivered bounds it by the in-flight window. Correctness is
// unchanged (the soak and conformance suites run with compaction on); this
// table shows the size behavior that makes compaction necessary for long-
// lived views.
func E11(seed int64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Ablation: token compaction vs full-history token",
		Claim:   "without compaction the token grows with the view's history; with it, size stays bounded by the in-flight window",
		Columns: []string{"compaction", "msgs sent", "max token entries", "delivered@p0"},
	}
	for _, compaction := range []bool{true, false} {
		c := stack.NewCluster(stack.Options{Seed: seed, N: 4, Delta: time.Millisecond})
		if !compaction {
			// Rebuild with compaction disabled.
			c = stack.NewCluster(stack.Options{Seed: seed, N: 4, Delta: time.Millisecond, NoTokenCompaction: true})
		}
		msgs := 0
		var load func()
		load = func() {
			if c.Sim.Now() > sim.Time(4*time.Second) {
				return
			}
			defer c.Sim.After(10*time.Millisecond, load)
			msgs++
			c.Bcast(types.ProcID(msgs%4), types.Value(fmt.Sprintf("t%d", msgs)))
		}
		c.Sim.After(10*time.Millisecond, load)
		if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
			panic(err)
		}
		maxTok := 0
		for _, p := range c.Procs.Members() {
			if m := c.Node(p).VS().Stats().MaxTokenEntries; m > maxTok {
				maxTok = m
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%t", compaction), fmt.Sprint(msgs), fmt.Sprint(maxTok),
			fmt.Sprint(len(c.Deliveries(0))),
		})
		if compaction && maxTok > 100 {
			t.Failures = append(t.Failures,
				fmt.Sprintf("compacted token reached %d entries — not bounded by the in-flight window", maxTok))
		}
		if !compaction && maxTok < msgs/2 {
			t.Failures = append(t.Failures,
				fmt.Sprintf("uncompacted token max %d did not grow with history (%d msgs)", maxTok, msgs))
		}
	}
	return t
}
