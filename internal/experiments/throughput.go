package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E16 measures what the hot-path batching work buys: WAL group commit
// (one covering storage write per batch of delivery records instead of
// one λ each), delivery-record pipelining, and eager token rounds. A
// single-origin burst makes the check exact — with one submitter the
// total order is the submission order in every run, so the batched run
// must deliver the byte-identical sequence at every node, just faster.
//
// The seed path serializes one λ per delivered value (write record, wait
// for durability, release, repeat), so at λ = 5ms a 400-value burst
// costs ≥ 2 virtual seconds in storage stalls alone. The batched path
// overlaps those writes behind one in-flight covering write and keeps
// token rounds back-to-back, so throughput must improve by at least the
// issue's 3× floor while the delivered sequences stay digest-identical.
func E16(seed int64) *Table {
	t := &Table{
		ID:    "E16",
		Title: "group commit + pipelined delivery: throughput vs storage latency",
		Claim: "batching the WAL and delivery hot path yields >=3x delivered msgs/sec at lambda=5ms with a byte-identical total order",
		Columns: []string{"mode", "values", "virtual elapsed", "deliveries/sec",
			"order digest"},
	}

	const (
		n      = 3
		values = 400
		lambda = 5 * time.Millisecond
	)
	delta := time.Millisecond
	origin := types.ProcID(0)

	type outcome struct {
		elapsed time.Duration
		rate    float64
		// digests[p] fingerprints node p's delivered (From, Value)
		// sequence; all must agree within a run and across runs.
		digests []string
	}

	run := func(batched bool) outcome {
		opts := stack.Options{
			Seed: seed, N: n, Delta: delta, StorageLatency: lambda,
		}
		if batched {
			opts.GroupCommit = true
			opts.DeliverPipeline = 64
			opts.EagerTokenRounds = true
		}
		c := stack.NewCluster(opts)
		if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
			panic(err)
		}
		// Single-origin burst: all values enter at one node, at one
		// instant, so the total order is pinned to submission order and
		// the two runs are comparable value-for-value.
		start := c.Sim.Now()
		for i := 0; i < values; i++ {
			c.Bcast(origin, types.Value(fmt.Sprintf("v%d", i)))
		}
		for {
			done := true
			for p := 0; p < n; p++ {
				if len(c.Deliveries(types.ProcID(p))) < values {
					done = false
				}
			}
			if done {
				break
			}
			if err := c.Sim.RunFor(10 * time.Millisecond); err != nil {
				panic(err)
			}
			if c.Sim.Now() > sim.Time(300*time.Second) {
				panic("E16: burst never fully delivered")
			}
		}
		elapsed := time.Duration(c.Sim.Now() - start)
		digests := make([]string, n)
		for p := 0; p < n; p++ {
			h := sha256.New()
			for _, d := range c.Deliveries(types.ProcID(p)) {
				fmt.Fprintf(h, "%d:%s\n", d.From, d.Value)
			}
			digests[p] = hex.EncodeToString(h.Sum(nil))
		}
		return outcome{
			elapsed: elapsed,
			rate:    float64(values) / elapsed.Seconds(),
			digests: digests,
		}
	}

	base := run(false)
	fast := run(true)
	for _, r := range []struct {
		mode string
		o    outcome
	}{{"seed (lock-step)", base}, {"batched", fast}} {
		t.Rows = append(t.Rows, []string{
			r.mode, fmt.Sprintf("%d", values),
			r.o.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.o.rate),
			r.o.digests[0][:16],
		})
	}

	for _, o := range []outcome{base, fast} {
		for p := 1; p < n; p++ {
			if o.digests[p] != o.digests[0] {
				t.Failures = append(t.Failures, fmt.Sprintf(
					"E16: node %d delivered a different order than node 0 (%s vs %s)",
					p, o.digests[p][:16], o.digests[0][:16]))
			}
		}
	}
	if base.digests[0] != fast.digests[0] {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"E16: batched run reordered deliveries (digest %s vs seed %s)",
			fast.digests[0][:16], base.digests[0][:16]))
	}
	speedup := fast.rate / base.rate
	if speedup < 3 {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"E16: batched throughput only %.2fx the seed path (floor 3x)", speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("batched path delivers %.1fx the seed path's msgs/sec at lambda=%v", speedup, lambda),
		"identical digests at every node in both runs: batching changed only the timing, not the order")
	return t
}
