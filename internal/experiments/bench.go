package experiments

import (
	"fmt"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/sweep"
	"repro/internal/types"
)

// BenchEntry is one scenario's machine-readable measurement: end-to-end
// throughput and delivery latency plus the full per-layer instrument
// snapshot, so a regression in any layer (extra token rounds, view churn,
// WAL amplification) is visible in a diff of two baseline files even when
// the end-to-end numbers barely move.
type BenchEntry struct {
	// Experiment names the table whose workload this scenario mirrors.
	Experiment string `json:"experiment"`
	Scenario   string `json:"scenario"`
	// VirtualNS is the simulated duration of the run; all throughput and
	// latency figures are in virtual time (deterministic for a given seed).
	VirtualNS  int64 `json:"virtual_ns"`
	Bcasts     int64 `json:"bcasts"`
	Deliveries int64 `json:"deliveries"`
	// DeliveriesPerSec is deliveries (summed over nodes) per virtual second.
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	// DeliveryLatency is the bcast → TO-delivery distribution (the
	// to.deliver_latency histogram).
	DeliveryLatency obs.HistogramSummary            `json:"delivery_latency"`
	Counters        map[string]int64                `json:"counters"`
	Gauges          map[string]int64                `json:"gauges,omitempty"`
	Histograms      map[string]obs.HistogramSummary `json:"histograms"`
}

// LiveFloors are the perf bounds the live-cluster CI job enforces with
// liverun -floors: the real deployment must sustain at least
// RateFraction of the offered load (deliveries summed over nodes per
// wall second, against rate × n offered) and keep p99 submit→delivery
// latency under MaxP99MS. The floors ship inside BENCH_baseline.json so
// the live gate and the simulated baseline regenerate from one file and
// one commit.
type LiveFloors struct {
	// RateFraction is the minimum delivered/offered throughput ratio.
	// Deliberately loose (the live job runs on shared CI runners and
	// kills a node mid-run); it exists to catch order-of-magnitude
	// regressions in the hot path, not to benchmark the runner.
	RateFraction float64 `json:"rate_fraction"`
	// MaxP99MS bounds the 99th-percentile submit→delivery latency in
	// wall milliseconds.
	MaxP99MS float64 `json:"max_p99_ms"`
}

// BenchReport is the whole baseline file (BENCH_baseline.json).
type BenchReport struct {
	Seed    int64        `json:"seed"`
	Entries []BenchEntry `json:"entries"`
	// Live carries the floors the live-cluster CI job enforces.
	Live LiveFloors `json:"live_floors"`
}

func benchEntry(id, scenario string, c *stack.Cluster, reg *obs.Registry) BenchEntry {
	snap := reg.Snapshot()
	virt := c.Sim.Now().Duration()
	e := BenchEntry{
		Experiment:      id,
		Scenario:        scenario,
		VirtualNS:       virt.Nanoseconds(),
		Bcasts:          snap.Counters["to.bcasts"],
		Deliveries:      snap.Counters["to.deliveries"],
		DeliveryLatency: snap.Histograms["to.deliver_latency"],
		Counters:        snap.Counters,
		Gauges:          snap.Gauges,
		Histograms:      snap.Histograms,
	}
	if secs := virt.Seconds(); secs > 0 {
		e.DeliveriesPerSec = float64(e.Deliveries) / secs
	}
	return e
}

// BenchBaseline runs the three bench scenarios — the E1 isolation workload,
// the E2 partition workload, and a compact E14-style crash/recovery
// workload — each on a freshly instrumented cluster, and returns the
// machine-readable report. Deterministic for a given seed: every number is
// in virtual time.
func BenchBaseline(seed int64) *BenchReport { return BenchBaselineWorkers(seed, 1) }

// BenchBaselineWorkers is BenchBaseline with the independent scenarios
// fanned across workers through the sweep engine. Each scenario runs on its
// own cluster, simulator, and registry, and the entries land in submission
// order, so the report is identical to the serial one for any worker count.
func BenchBaselineWorkers(seed int64, workers int) *BenchReport {
	scenarios := []func() BenchEntry{benchE1(seed), benchE2(seed), benchE14(seed), benchE16(seed)}
	return &BenchReport{
		Seed:    seed,
		Entries: sweep.Run(workers, len(scenarios), func(i int) BenchEntry { return scenarios[i]() }),
		Live:    LiveFloors{RateFraction: 0.15, MaxP99MS: 2000},
	}
}

// benchE1: majority isolation with pre- and post-cut traffic.
func benchE1(seed int64) func() BenchEntry {
	return func() BenchEntry {
		reg := obs.New()
		c, _, _ := isolationRun(seed, 5, 3, time.Millisecond, reg)
		return benchEntry("E1",
			"n=5 majority isolation, 11 values through the cut", c, reg)
	}
}

// benchE2: partition with a quorum side, traffic on both sides. The split is
// 4/2 (not the table's symmetric 3/3): TO deliveries only happen in a
// primary component, and the bench needs a live delivery stream.
func benchE2(seed int64) func() BenchEntry {
	return func() BenchEntry {
		reg := obs.New()
		n := 6
		delta := time.Millisecond
		c := stack.NewCluster(stack.Options{Seed: seed + int64(n), N: n, Delta: delta, Obs: reg})
		left := types.NewProcSet(c.Procs.Members()[:4]...)
		right := types.NewProcSet(c.Procs.Members()[4:]...)
		c.Sim.After(50*time.Millisecond, func() { c.Oracle.Partition(c.Procs, left, right) })
		for i := 0; i < 6; i++ {
			i := i
			c.Sim.After(time.Duration(300+50*i)*time.Millisecond, func() {
				c.Bcast(left.Members()[i%left.Size()], types.Value(fmt.Sprintf("l%d", i)))
				c.Bcast(right.Members()[i%right.Size()], types.Value(fmt.Sprintf("r%d", i)))
			})
		}
		if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
			panic(err)
		}
		return benchEntry("E2",
			"n=6 partition into 4/2, 6 values per side", c, reg)
	}
}

// benchE14 (compact): amnesia crash + WAL replay rejoin under λ = δ.
func benchE14(seed int64) func() BenchEntry {
	return func() BenchEntry {
		reg := obs.New()
		const n = 3
		delta := time.Millisecond
		victim := types.ProcID(1)
		c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta,
			StorageLatency: delta, Obs: reg})
		for i := 0; i < 8; i++ {
			i := i
			c.Sim.After(30*time.Millisecond+time.Duration(i)*4*c.Cfg.Pi, func() {
				c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i)))
			})
		}
		c.Sim.At(sim.Time(400*time.Millisecond), func() { c.Oracle.SetProc(victim, failures.Amnesia) })
		c.Sim.At(sim.Time(500*time.Millisecond), func() { c.Oracle.Heal(c.Procs) })
		// Post-heal probes so the rejoin shows up as deliveries at the victim.
		for i := 0; i < 8; i++ {
			i := i
			c.Sim.At(sim.Time(500*time.Millisecond).Add(time.Duration(i)*8*delta), func() {
				c.Bcast(0, types.Value(fmt.Sprintf("probe%d", i)))
			})
		}
		if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
			panic(err)
		}
		return benchEntry("E14",
			"n=3 amnesia crash + WAL-replay rejoin, λ=δ", c, reg)
	}
}

// benchE16: the E16 hot path — a single-origin burst through the batched
// stack (group commit, pipelined delivery, eager token rounds) at λ = 5δ.
// Tracks the throughput the batching work bought, so a regression in any
// batching layer moves this entry's deliveries_per_sec.
func benchE16(seed int64) func() BenchEntry {
	return func() BenchEntry {
		reg := obs.New()
		const n = 3
		delta := time.Millisecond
		c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta,
			StorageLatency: 5 * delta, Obs: reg,
			GroupCommit: true, DeliverPipeline: 64, EagerTokenRounds: true})
		c.Sim.After(30*time.Millisecond, func() {
			for i := 0; i < 400; i++ {
				c.Bcast(0, types.Value(fmt.Sprintf("v%d", i)))
			}
		})
		for len(c.Deliveries(types.ProcID(n-1))) < 400 {
			if err := c.Sim.RunFor(10 * time.Millisecond); err != nil {
				panic(err)
			}
			if c.Sim.Now() > sim.Time(300*time.Second) {
				panic("benchE16: burst never fully delivered")
			}
		}
		return benchEntry("E16",
			"n=3 single-origin 400-value burst, batched hot path, λ=5δ", c, reg)
	}
}
