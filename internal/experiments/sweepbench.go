package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/chaos"
)

// SweepBenchReport is the machine-readable serial-vs-parallel comparison
// (BENCH_sweep.json): the same workload — a full chaos campaign sweep plus
// the bench-baseline scenarios — run once with one worker and once with
// the requested worker count, with a content digest proving the outputs
// are identical and wall-clock plus allocation figures for the two passes.
type SweepBenchReport struct {
	Seed    int64 `json:"seed"`
	Cores   int   `json:"cores"`
	Workers int   `json:"workers"`
	// Runs is the number of independent deterministic runs in the workload
	// (campaign configs + bench scenarios).
	Runs       int   `json:"runs"`
	SerialNS   int64 `json:"serial_ns"`
	ParallelNS int64 `json:"parallel_ns"`
	// Speedup is serial wall-clock over parallel wall-clock. On a
	// single-core host (or with -workers 1) it hovers around 1.0 and is not
	// a meaningful signal; the CI gate only applies on multi-core runners.
	Speedup float64 `json:"speedup"`
	// Identical reports that the serial and parallel passes produced
	// byte-identical output digests — the determinism claim, checked on
	// every invocation rather than trusted.
	Identical      bool   `json:"identical"`
	SerialDigest   string `json:"serial_digest"`
	ParallelDigest string `json:"parallel_digest"`
	// SerialAllocsPerRun / ParallelAllocsPerRun are heap allocations
	// (runtime MemStats Mallocs delta) divided by Runs, the coarse per-run
	// allocation cost the hot-path pooling work keeps down.
	SerialAllocsPerRun   uint64 `json:"serial_allocs_per_run"`
	ParallelAllocsPerRun uint64 `json:"parallel_allocs_per_run"`
}

// sweepWorkload runs the benchmark workload at the given worker count and
// digests everything an observer can see: per-run chaos outcomes, the
// merged metric snapshot, and the full bench-baseline report. Two passes
// with different worker counts must digest identically.
func sweepWorkload(seed int64, workers int) (digest string, runs int) {
	cfgs := make([]chaos.Config, 0, len(chaos.Campaigns))
	for _, ct := range chaos.Campaigns {
		cfgs = append(cfgs, chaos.Config{
			Campaign: ct, Seed: seed, N: 5, Window: 2 * time.Second,
		})
	}
	results := chaos.Sweep(cfgs, workers)

	type runSummary struct {
		Campaign  string `json:"campaign"`
		Seed      int64  `json:"seed"`
		Events    int    `json:"events"`
		Msgs      int    `json:"msgs"`
		Delivered int    `json:"delivered"`
		Violation string `json:"violation,omitempty"`
	}
	summaries := make([]runSummary, len(results))
	for i, r := range results {
		summaries[i] = runSummary{
			Campaign:  string(r.Config.Campaign),
			Seed:      r.Config.Seed,
			Events:    len(r.Schedule),
			Msgs:      r.Msgs,
			Delivered: r.Deliveries,
		}
		if r.Failed() {
			summaries[i].Violation = r.Violation.Check
		}
	}

	bench := BenchBaselineWorkers(seed, workers)

	blob, err := json.Marshal(struct {
		Chaos  []runSummary `json:"chaos"`
		Merged any          `json:"merged"`
		Bench  *BenchReport `json:"bench"`
	}{summaries, chaos.MergedSnapshot(results), bench})
	if err != nil {
		panic(err) // all fields are plain data; cannot happen
	}
	return fmt.Sprintf("%x", sha256.Sum256(blob)), len(cfgs) + len(bench.Entries)
}

// SweepBench measures the sweep engine: the workload above, serial then
// parallel, with digests compared. Wall-clock numbers are real time (the
// only nondeterministic quantity this repository reports, and the point of
// the measurement); everything inside the runs stays virtual-time
// deterministic.
func SweepBench(seed int64, workers int) *SweepBenchReport {
	rep := &SweepBenchReport{Seed: seed, Cores: runtime.NumCPU(), Workers: workers}

	measure := func(w int) (string, int64, uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		digest, runs := sweepWorkload(seed, w)
		elapsed := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		rep.Runs = runs
		return digest, elapsed, after.Mallocs - before.Mallocs
	}

	var serialAllocs, parAllocs uint64
	rep.SerialDigest, rep.SerialNS, serialAllocs = measure(1)
	rep.ParallelDigest, rep.ParallelNS, parAllocs = measure(workers)
	rep.Identical = rep.SerialDigest == rep.ParallelDigest
	if rep.ParallelNS > 0 {
		rep.Speedup = float64(rep.SerialNS) / float64(rep.ParallelNS)
	}
	if rep.Runs > 0 {
		rep.SerialAllocsPerRun = serialAllocs / uint64(rep.Runs)
		rep.ParallelAllocsPerRun = parAllocs / uint64(rep.Runs)
	}
	return rep
}
