// Package experiments implements the evaluation harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E8), each regenerating
// the measurements that validate the paper's claims — the conditional
// properties TO-property and VS-property (Figures 5 and 7, Theorems 7.1 and
// 7.2), the Section 8 analytic bounds, and the introduction's comparison
// against a stable-storage baseline. Both cmd/experiments and the
// repository benchmarks drive these functions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Table is one experiment's report.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being validated
	Columns []string
	Rows    [][]string
	Notes   []string
	// Failures collects bound violations or check failures; empty means
	// the run validated the claim.
	Failures []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, f := range t.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	if len(t.Failures) == 0 {
		b.WriteString("result: claim validated\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row then data rows),
// for plotting the experiment series outside Go.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(cell string) string {
		if strings.ContainsAny(cell, ",\"\n") {
			return "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
		}
		return cell
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// isolationRun drives one cluster run: isolate component Q at cutAt, send
// periodic traffic from Q before and after, run until the horizon with a
// quiet tail, and return the cluster. A non-nil reg instruments every
// layer (the bench baseline uses this; the tables pass nil).
func isolationRun(seed int64, n, qSize int, delta time.Duration, reg *obs.Registry) (*stack.Cluster, types.ProcSet, sim.Time) {
	c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta, Obs: reg})
	q := types.NewProcSet(c.Procs.Members()[:qSize]...)

	var cut sim.Time
	c.Sim.After(50*time.Millisecond, func() {
		c.Oracle.Isolate(q, c.Procs)
		cut = c.Sim.Now()
	})
	// Pre-cut and post-cut traffic from members of Q.
	c.Sim.After(20*time.Millisecond, func() { c.Bcast(q.Members()[0], "pre-cut") })
	for i := 0; i < 10; i++ {
		i := i
		c.Sim.After(time.Duration(200+40*i)*time.Millisecond, func() {
			p := q.Members()[i%q.Size()]
			c.Bcast(p, types.Value(fmt.Sprintf("v%d", i)))
		})
	}
	// Horizon: generous, with a quiet tail so every safe/delivery lands.
	if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
		panic(err)
	}
	return c, q, cut
}

// E1 validates TO-property(b+d, d, Q) (Figure 5, Theorem 7.2) across
// system sizes: after a component stabilizes, every value — including
// values sent before the partition — reaches every member of Q within the
// analytic bounds.
func E1(seed int64) *Table { return e1(seed, 1) }

func e1(seed int64, workers int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "TO service stabilization and delivery bounds",
		Claim:   "Theorem 7.2: the stack satisfies TO(b+d, d, Q) with b = 9δ+max{π+(n+3)δ, μ}, d = 2π+nδ",
		Columns: []string{"n", "|Q|", "δ", "l' meas", "b+d_impl", "send lag", "relay lag", "d paper", "d_impl", "values", "ok"},
	}
	ns := []int{3, 5, 7, 9}
	appendTrials(t, workers, len(ns), func(i int) trial {
		n := ns[i]
		var tr trial
		qSize := n/2 + 1
		delta := time.Millisecond
		c, q, cut := isolationRun(seed+int64(n), n, qSize, delta, nil)
		b := c.Cfg.AnalyticB(qSize)
		dPaper := c.Cfg.AnalyticD(qSize)
		dImpl := c.Cfg.AnalyticDImpl(qSize)
		vs := props.MeasureVS(c.Log, q, cut)
		to := props.MeasureTO(c.Log, q, cut, vs.LPrime+dImpl)
		ok := "yes"
		if err := props.CheckTOProperty(c.Log, q, cut, b+dImpl, dImpl); err != nil {
			ok = "NO"
			tr.failures = append(tr.failures, fmt.Sprintf("n=%d: %v", n, err))
		}
		tr.rows = append(tr.rows, []string{
			fmt.Sprint(n), fmt.Sprint(qSize), ms(delta),
			ms(vs.LPrime), ms(b + dImpl),
			ms(to.MaxSendLag), ms(to.MaxRelayLag), ms(dPaper), ms(dImpl),
			fmt.Sprint(to.ValuesMeasured), ok,
		})
		return tr
	})
	t.Notes = append(t.Notes,
		"l' measured as the last newview at a member of Q after the cut; lags measured against max(send, l+l').",
		"d_impl = 3(π+nδ) is this token discipline's worst case; the paper quotes d = 2π+nδ for the protocol of [19] — same linear shape, smaller constant.")
	return t
}

// E2 validates VS-property(b, d, Q) (Figure 7): view convergence within b
// and safe indications within d, for both sides of a partition.
func E2(seed int64) *Table { return e2(seed, 1) }

func e2(seed int64, workers int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "VS service view convergence and safe latency",
		Claim:   "VS-property(b, d, Q): views converge to exactly Q within b; messages sent in the final view are safe everywhere within d",
		Columns: []string{"n", "component", "l' meas", "b bound", "safe lag", "d paper", "d_impl", "msgs", "ok"},
	}
	ns := []int{4, 6, 8}
	appendTrials(t, workers, len(ns), func(i int) trial {
		n := ns[i]
		var tr trial
		delta := time.Millisecond
		c := stack.NewCluster(stack.Options{Seed: seed + int64(n), N: n, Delta: delta})
		left := types.NewProcSet(c.Procs.Members()[:n/2]...)
		right := types.NewProcSet(c.Procs.Members()[n/2:]...)
		var cut sim.Time
		c.Sim.After(50*time.Millisecond, func() {
			c.Oracle.Partition(c.Procs, left, right)
			cut = c.Sim.Now()
		})
		for i := 0; i < 6; i++ {
			i := i
			c.Sim.After(time.Duration(300+50*i)*time.Millisecond, func() {
				c.Bcast(left.Members()[i%left.Size()], types.Value(fmt.Sprintf("l%d", i)))
				c.Bcast(right.Members()[i%right.Size()], types.Value(fmt.Sprintf("r%d", i)))
			})
		}
		if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
			panic(err)
		}
		for _, side := range []struct {
			name string
			q    types.ProcSet
		}{{"left", left}, {"right", right}} {
			q := side.q
			b := c.Cfg.AnalyticB(q.Size())
			dPaper := c.Cfg.AnalyticD(q.Size())
			dImpl := c.Cfg.AnalyticDImpl(q.Size())
			m := props.MeasureVS(c.Log, q, cut)
			ok := "yes"
			if err := props.CheckVSProperty(c.Log, q, cut, b, dImpl); err != nil {
				ok = "NO"
				tr.failures = append(tr.failures, fmt.Sprintf("n=%d %s: %v", n, side.name, err))
			}
			tr.rows = append(tr.rows, []string{
				fmt.Sprint(n), fmt.Sprintf("%s %v", side.name, q),
				ms(m.LPrime), ms(b), ms(m.MaxSafeLag), ms(dPaper), ms(dImpl),
				fmt.Sprint(m.MsgsMeasured), ok,
			})
		}
		return tr
	})
	return t
}

// E3 reproduces the Figure 12 phase decomposition: the TO stabilization
// interval splits into the VS stabilization (≤ b) plus the state-exchange
// safe phase (≤ d), after which deliveries complete within a further d.
func E3(seed int64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Phase decomposition of the Theorem 7.1 argument",
		Claim:   "Figure 12: l'_TO = l'_VS + (state-exchange phase ≤ d); subsequent deliveries within d",
		Columns: []string{"n", "l'_VS", "b", "exch phase", "d_impl", "delivery lag", "ok"},
	}
	for _, n := range []int{3, 5, 7} {
		qSize := n/2 + 1
		delta := time.Millisecond
		c, q, cut := isolationRun(seed+int64(n), n, qSize, delta, nil)
		b := c.Cfg.AnalyticB(qSize)
		d := c.Cfg.AnalyticDImpl(qSize)
		ph := props.MeasurePhases(c.Log, q, cut)
		ok := "yes"
		if ph.VS.LPrime > b {
			ok = "NO"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: l'_VS %v > b %v", n, ph.VS.LPrime, b))
		}
		if ph.ExchangePhase > d {
			ok = "NO"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: exchange phase %v > d %v", n, ph.ExchangePhase, d))
		}
		if ph.PostLag > d || ph.Incomplete > 0 {
			ok = "NO"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: post-exchange delivery lag %v > d %v (incomplete %d)",
				n, ph.PostLag, d, ph.Incomplete))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(ph.VS.LPrime), ms(b), ms(ph.ExchangePhase), ms(d), ms(ph.PostLag), ok,
		})
	}
	t.Notes = append(t.Notes,
		"exchange phase: from the last newview in Q until every member's state-exchange summary is safe at every member.",
		"final column: worst post-stabilization delivery lag, bounded by a further d (clause 2 of VStoTO-property).")
	return t
}

// E4 sweeps n and δ and compares measured stabilization and safe latency
// against the Section 8 analytic formulas.
func E4(seed int64) *Table { return e4(seed, 1) }

func e4(seed int64, workers int) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Section 8 analytic bounds vs measured (token-ring VS)",
		Claim:   "b = 9δ + max{π+(n+3)δ, μ} and d = 2π + nδ bound measured stabilization and safe latency; both grow linearly in n and δ",
		Columns: []string{"n", "δ", "π", "merge l'", "b bound", "safe lag", "d paper", "d_impl", "ok"},
	}
	type cfg struct {
		n     int
		delta time.Duration
	}
	var cfgs []cfg
	for _, n := range []int{3, 4, 5, 6, 8} {
		for _, delta := range []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond} {
			cfgs = append(cfgs, cfg{n, delta})
		}
	}
	appendTrials(t, workers, len(cfgs), func(i int) trial {
		n, delta := cfgs[i].n, cfgs[i].delta
		var tr trial
		{
			c := stack.NewCluster(stack.Options{Seed: seed + int64(n*1000) + int64(delta), N: n, Delta: delta})
			left := types.NewProcSet(c.Procs.Members()[:n/2]...)
			right := types.NewProcSet(c.Procs.Members()[n/2:]...)
			// Partition, then heal: the measured quantity is the merge time,
			// the hardest stabilization case (detection via probes).
			c.Sim.After(sim.Time(50*delta).Duration(), func() { c.Oracle.Partition(c.Procs, left, right) })
			var heal sim.Time
			c.Sim.After(sim.Time(400*delta).Duration(), func() {
				c.Oracle.Heal(c.Procs)
				heal = c.Sim.Now()
			})
			for i := 0; i < 5; i++ {
				i := i
				c.Sim.After(sim.Time(600*delta).Duration()+time.Duration(i)*c.Cfg.Pi, func() {
					c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("m%d", i)))
				})
			}
			if err := c.Sim.Run(sim.Time(2000 * delta)); err != nil {
				panic(err)
			}
			b := c.Cfg.AnalyticB(n)
			dPaper := c.Cfg.AnalyticD(n)
			dImpl := c.Cfg.AnalyticDImpl(n)
			m := props.MeasureVS(c.Log, c.Procs, heal)
			ok := "yes"
			switch {
			case !m.Converged:
				ok = "NO"
				tr.failures = append(tr.failures, fmt.Sprintf("n=%d δ=%v: no convergence after heal", n, delta))
			case m.LPrime > b:
				ok = "NO"
				tr.failures = append(tr.failures, fmt.Sprintf("n=%d δ=%v: merge %v > b %v", n, delta, m.LPrime, b))
			case m.IncompleteSafe > 0:
				ok = "NO"
				tr.failures = append(tr.failures, fmt.Sprintf("n=%d δ=%v: %d incomplete safe", n, delta, m.IncompleteSafe))
			case m.MaxSafeLag > dImpl:
				ok = "NO"
				tr.failures = append(tr.failures, fmt.Sprintf("n=%d δ=%v: safe lag %v > d_impl %v", n, delta, m.MaxSafeLag, dImpl))
			}
			tr.rows = append(tr.rows, []string{
				fmt.Sprint(n), ms(delta), ms(c.Cfg.Pi),
				ms(m.LPrime), ms(b), ms(m.MaxSafeLag), ms(dPaper), ms(dImpl), ok,
			})
		}
		return tr
	})
	return t
}

// E5 compares steady-state delivery latency of the VStoTO stack against
// the stable-storage baseline as storage latency grows.
func E5(seed int64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "VStoTO vs stable-storage (Keidar–Dolev-style) baseline",
		Claim:   "the introduction's trade-off: the baseline pays per-message log latency; VStoTO's steady-state latency is independent of storage",
		Columns: []string{"protocol", "storage latency", "burst completion", "per-msg mean", "per-msg p99", "stable writes/node"},
	}
	const n, k = 3, 8
	delta := time.Millisecond

	// Paced submissions (one per 2π) so per-message latency reflects the
	// protocol, not queueing behind the burst.
	runStack := func() (time.Duration, props.LatencyStats) {
		c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta})
		if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
			panic(err)
		}
		start := c.Sim.Now()
		for i := 0; i < k; i++ {
			i := i
			c.Sim.After(time.Duration(i)*2*c.Cfg.Pi, func() {
				c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i)))
			})
		}
		for {
			if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
				panic(err)
			}
			done := true
			for _, p := range c.Procs.Members() {
				if len(c.Deliveries(p)) < k {
					done = false
				}
			}
			if done {
				return c.Sim.Now().Sub(start), props.MeasureDeliveryLatency(c.Log, c.Procs)
			}
			if c.Sim.Now() > sim.Time(30*time.Second) {
				panic("stack burst never completed")
			}
		}
	}
	stackTime, stackLat := runStack()
	t.Rows = append(t.Rows, []string{
		"VStoTO stack", "–", ms(stackTime), ms(stackLat.Mean), ms(stackLat.P99), "0",
	})

	var prev time.Duration
	for _, lat := range []time.Duration{0, delta, 5 * delta, 20 * delta} {
		c := baseline.NewCluster(baseline.Options{Seed: seed, N: n, Delta: delta, StorageLatency: lat})
		if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
			panic(err)
		}
		start := c.Sim.Now()
		for i := 0; i < k; i++ {
			i := i
			c.Sim.After(time.Duration(i)*2*c.Cfg.Pi, func() {
				c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i)))
			})
		}
		var took time.Duration
		for {
			if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
				panic(err)
			}
			done := true
			for _, p := range c.Procs.Members() {
				if len(c.Deliveries(p)) < k {
					done = false
				}
			}
			if done {
				took = c.Sim.Now().Sub(start)
				break
			}
			if c.Sim.Now() > sim.Time(60*time.Second) {
				panic("baseline burst never completed")
			}
		}
		blat := props.MeasureDeliveryLatency(c.Log, c.Procs)
		if took < prev {
			t.Failures = append(t.Failures,
				fmt.Sprintf("baseline latency not monotone in storage latency (%v at %v)", took, lat))
		}
		prev = took
		if lat >= 5*delta && blat.Mean <= stackLat.Mean {
			t.Failures = append(t.Failures,
				fmt.Sprintf("baseline per-message mean (%v at storage %v) not above stack (%v)", blat.Mean, lat, stackLat.Mean))
		}
		t.Rows = append(t.Rows, []string{
			"baseline", ms(lat), ms(took), ms(blat.Mean), ms(blat.P99), fmt.Sprint(c.StorageWrites(0)),
		})
	}
	if prev <= stackTime {
		t.Failures = append(t.Failures, "baseline with 20δ storage not slower than stack")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d values over %d nodes, one submission per 2π; completion = all values delivered at all nodes.", k, n),
		"per-msg latency: bcast → last delivery at any node (distribution over values).")
	return t
}

// All runs every experiment in order (serially; AllWorkers fans them out).
func All(seed int64) []*Table { return AllWorkers(seed, 1) }
