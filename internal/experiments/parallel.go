package experiments

import (
	"strings"

	"repro/internal/sweep"
)

// trial is one independent experiment configuration's contribution to a
// table: its rows plus any bound violations. Trials are produced
// concurrently by the sweep engine and appended in submission order, so a
// parallel table is byte-for-byte the serial one.
type trial struct {
	rows     [][]string
	failures []string
}

// appendTrials runs n independent trials across the given worker count and
// folds their rows and failures into t in submission order. run must be a
// pure function of its index (each trial builds its own cluster and
// simulator), which is what makes the fan-out sound: no trial observes
// another, so scheduling order cannot leak into the output.
func appendTrials(t *Table, workers, n int, run func(i int) trial) {
	for _, tr := range sweep.Run(workers, n, run) {
		t.Rows = append(t.Rows, tr.rows...)
		t.Failures = append(t.Failures, tr.failures...)
	}
}

// runner is one entry of the experiment index: an ID plus a
// workers-parameterized table generator.
type runner struct {
	id string
	fn func(seed int64, workers int) *Table
}

// runnerList is the experiment index in report order. Only the experiments
// with sweep-parallel trial loops take a meaningful workers argument; the
// rest adapt their serial form.
var runnerList = []runner{
	{"E1", e1},
	{"E2", e2},
	{"E3", func(s int64, _ int) *Table { return E3(s) }},
	{"E4", e4},
	{"E5", func(s int64, _ int) *Table { return E5(s) }},
	{"E6", func(s int64, _ int) *Table { return E6(s) }},
	{"E7", func(s int64, _ int) *Table { return E7(s) }},
	{"E8", func(s int64, _ int) *Table { return E8(s) }},
	{"E9", func(s int64, _ int) *Table { return E9(s) }},
	{"E10", func(s int64, _ int) *Table { return E10(s) }},
	{"E11", func(s int64, _ int) *Table { return E11(s) }},
	{"E12", func(s int64, _ int) *Table { return E12(s) }},
	{"E13", func(s int64, _ int) *Table { return E13(s) }},
	{"E14", func(s int64, _ int) *Table { return E14(s) }},
	{"E15", func(s int64, _ int) *Table { return E15(s) }},
	{"E16", func(s int64, _ int) *Table { return E16(s) }},
	{"E17", func(s int64, _ int) *Table { return E17(s) }},
	{"E18", func(s int64, _ int) *Table { return E18(s) }},
}

// Runner looks up one experiment by ID ("E1".."E18", case-insensitive) as a
// workers-parameterized function.
func Runner(id string) (func(seed int64, workers int) *Table, bool) {
	id = strings.ToUpper(id)
	for _, r := range runnerList {
		if r.id == id {
			return r.fn, true
		}
	}
	return nil, false
}

// IDs returns the experiment IDs in report order.
func IDs() []string {
	ids := make([]string, len(runnerList))
	for i, r := range runnerList {
		ids[i] = r.id
	}
	return ids
}

// AllWorkers runs every experiment, fanning the independent experiments
// across the given number of workers (the per-experiment trial loops stay
// serial here — the outer fan-out already saturates the cores). The tables
// come back in report order and are identical to All's regardless of
// workers.
func AllWorkers(seed int64, workers int) []*Table {
	return sweep.Run(workers, len(runnerList), func(i int) *Table {
		return runnerList[i].fn(seed, 1)
	})
}
