package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E17 measures the commutativity-aware parallel apply (internal/rsm +
// internal/sweep.ApplyOrdered): with the default conflict relation a
// write-heavy burst over many distinct keys plans into wide antichains,
// and the per-op apply work fans across worker goroutines while replica
// state and client-ack order stay byte-identical to serial apply.
//
// Two phases:
//
//   - Correctness: one seeded live workload (writes + atomic reads,
//     acked) re-run at workers = 1, 2, 4 on identical clusters. Replica
//     digests and the ack sequence must match the serial run exactly —
//     the digest-equality discipline of BENCH_sweep.json applied to the
//     rsm layer.
//
//   - Throughput: one delivered burst of writes over distinct keys,
//     applied offline by fresh memories at each worker count under a
//     deliberately CPU-heavy ApplyFunc. The wall-clock speedup at 4
//     workers is the gated claim (>=2x vs workers=1), enforced only on
//     >=4-core runners — on smaller hosts the gate SKIPs with an
//     attributable note (the bench job asserts core count separately).
func E17(seed int64) *Table {
	t := &Table{
		ID:    "E17",
		Title: "commutativity-aware parallel apply: throughput vs workers",
		Claim: "antichain-parallel apply yields >=2x apply throughput at 4 workers on a write-heavy multi-key workload, with byte-identical replica state and ack order at every worker count",
		Columns: []string{"phase", "workers", "ops", "wall elapsed", "ops/sec",
			"state digest"},
	}

	const n = 3

	// --- Phase A: live correctness at every worker count. ---------------
	type outcome struct {
		digest string // replica states + applied counts, all procs
		acks   string // client-ack sequence digest
		ops    int
	}
	live := func(workers int) outcome {
		c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: time.Millisecond})
		m := rsm.New(c)
		m.SetWorkers(workers)
		ah := sha256.New()
		for i := 0; i < 96; i++ {
			i := i
			p := types.ProcID(i % n)
			c.Sim.After(time.Duration(5+i)*time.Millisecond, func() {
				key := fmt.Sprintf("k%d", i%17)
				if i%8 == 7 {
					m.ReadAtomic(p, key, func(v string) { fmt.Fprintf(ah, "r%d=%q\n", i, v) })
				} else {
					m.Write(p, key, fmt.Sprintf("v%d", i), func() { fmt.Fprintf(ah, "w%d\n", i) })
				}
			})
		}
		if err := m.WaitSettle(sim.Time(5 * time.Second)); err != nil {
			panic(err)
		}
		if err := m.CheckCoherence(); err != nil {
			panic(err)
		}
		h := sha256.New()
		ops := 0
		for _, p := range c.Procs.Members() {
			rep := m.Replica(p)
			keys := make([]string, 0, len(rep))
			for k := range rep {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(h, "p%v applied=%d\n", p, m.AppliedCount(p))
			for _, k := range keys {
				fmt.Fprintf(h, "%q=%q\n", k, rep[k])
			}
			ops += m.AppliedCount(p)
		}
		return outcome{
			digest: hex.EncodeToString(h.Sum(nil)),
			acks:   hex.EncodeToString(ah.Sum(nil)),
			ops:    ops,
		}
	}
	serial := live(1)
	for _, w := range []int{1, 2, 4} {
		o := serial
		if w != 1 {
			o = live(w)
		}
		t.Rows = append(t.Rows, []string{
			"correctness", fmt.Sprintf("%d", w), fmt.Sprintf("%d", o.ops),
			"-", "-", o.digest[:16],
		})
		if o.digest != serial.digest {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"E17: workers=%d replica state diverged from serial (digest %s vs %s)",
				w, o.digest[:16], serial.digest[:16]))
		}
		if o.acks != serial.acks {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"E17: workers=%d client-ack order diverged from serial", w))
		}
	}

	// --- Phase B: offline apply throughput on one delivered burst. ------
	const (
		burst = 1536
		keys  = 512
	)
	c := stack.NewCluster(stack.Options{Seed: seed + 1, N: n, Delta: time.Millisecond})
	if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
		panic(err)
	}
	for i := 0; i < burst; i++ {
		op := rsm.Op{Kind: "w", Key: fmt.Sprintf("k%d", i%keys), Val: fmt.Sprintf("v%d", i), Nonce: i + 1}
		c.Bcast(types.ProcID(i%n), op.Encode())
	}
	for c.TotalDeliveries() < n*burst {
		if err := c.Sim.RunFor(50 * time.Millisecond); err != nil {
			panic(err)
		}
		if c.Sim.Now() > sim.Time(600*time.Second) {
			panic("E17: burst never fully delivered")
		}
	}

	// heavyApply stands in for a real state machine's per-op work: ~2k
	// hash rounds, pure in (op, cur), so the only variable across worker
	// counts is scheduling.
	heavyApply := func(op rsm.Op, cur string) string {
		sum := sha256.Sum256([]byte(op.Key + op.Val + cur))
		for i := 0; i < 32; i++ {
			sum = sha256.Sum256(sum[:])
		}
		return hex.EncodeToString(sum[:8])
	}

	apply := func(workers int) (wall time.Duration, digest string) {
		m := rsm.New(c)
		m.SetWorkers(workers)
		m.SetApply(heavyApply)
		start := time.Now()
		if err := m.Pump(); err != nil {
			panic(err)
		}
		wall = time.Since(start)
		h := sha256.New()
		for _, p := range c.Procs.Members() {
			rep := m.Replica(p)
			ks := make([]string, 0, len(rep))
			for k := range rep {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			fmt.Fprintf(h, "p%v applied=%d\n", p, m.AppliedCount(p))
			for _, k := range ks {
				fmt.Fprintf(h, "%q=%q\n", k, rep[k])
			}
		}
		return wall, hex.EncodeToString(h.Sum(nil))
	}

	walls := map[int]time.Duration{}
	var serialDigest string
	for _, w := range []int{1, 2, 4} {
		wall, digest := apply(w)
		walls[w] = wall
		if w == 1 {
			serialDigest = digest
		} else if digest != serialDigest {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"E17: workers=%d offline apply diverged from serial (digest %s vs %s)",
				w, digest[:16], serialDigest[:16]))
		}
		t.Rows = append(t.Rows, []string{
			"throughput", fmt.Sprintf("%d", w), fmt.Sprintf("%d", n*burst),
			wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n*burst)/wall.Seconds()),
			digest[:16],
		})
	}

	speedup := walls[1].Seconds() / walls[4].Seconds()
	cores := runtime.NumCPU()
	if cores >= 4 {
		if speedup < 2 {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"E17: 4-worker apply only %.2fx serial on %d cores (floor 2x)", speedup, cores))
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"4-worker apply is %.2fx serial on %d cores (floor 2x enforced)", speedup, cores))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SKIP: speedup floor not enforced — nproc=%d (< 4 cores); measured %.2fx at 4 workers",
			cores, speedup))
	}
	t.Notes = append(t.Notes,
		"identical replica digests and ack order at every worker count: parallelism changed only wall-clock time")
	return t
}
