package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/sweep"
)

// TestSuiteParallelMatchesSerial is the experiment-suite half of the
// parallel-determinism gate: the suite sweep and the bench baseline at
// workers=1 and workers=NumCPU must serialize identically — same tables,
// same rows, same metric snapshots in the bench entries. Run under -race
// in CI.
//
// E6 is excluded from the two sweep passes: it alone is ~10x the rest of
// the suite combined (8000 spec-level steps with every invariant and the
// forward simulation checked per step), which blows the package's -race
// budget when run twice on top of TestAllExperimentsValidate. Its
// determinism root cause (sorted enabled-action enumeration) is pinned
// directly by TestEnabledEnumerationStable in spec/vsmachine, and the
// engine-level property this test checks is runner-agnostic.
//
// E17 is excluded because its throughput phase reports wall-clock apply
// timings — measurements, not deterministic outputs — so its JSON can
// never be byte-stable across passes. The determinism E17 actually
// claims (replica digests and ack order across apply worker counts) is
// enforced inside the experiment itself: any divergence lands in
// Table.Failures and fails TestAllExperimentsValidate.
//
// E18 is excluded for the same reason (its "wall elapsed" column is a
// measurement) plus cost: it explores six full state spaces. Its
// determinism claim — identical Explore results and violations at
// workers=1 vs NumCPU — is checked inside the experiment (failures land
// in Table.Failures) and pinned again by TestExploreParallelDeterminism
// in internal/vstoto under -race.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs most of the suite twice; skipped in -short mode")
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 4 // still exercises the concurrent path on one core
	}
	const seed = 1

	var gate []runner
	for _, r := range runnerList {
		if r.id != "E6" && r.id != "E17" && r.id != "E18" {
			gate = append(gate, r)
		}
	}
	suite := func(workers int) []*Table {
		return sweep.Run(workers, len(gate), func(i int) *Table {
			return gate[i].fn(seed, 1)
		})
	}

	serial, err := json.Marshal(suite(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := json.Marshal(suite(workers))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("experiment suite diverges between workers=1 and workers=%d", workers)
	}

	sb, err := json.Marshal(BenchBaselineWorkers(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(BenchBaselineWorkers(seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatalf("bench baseline diverges between workers=1 and workers=%d:\nserial:  %s\nparallel: %s",
			workers, sb, pb)
	}
}

// TestParallelTrialLoopsMatchSerial pins the per-experiment fan-out (the
// E1/E2/E4 trial loops) at several worker counts against the serial
// rendering — cheaper than the full-suite gate, so it runs even in -short.
func TestParallelTrialLoopsMatchSerial(t *testing.T) {
	for _, f := range []struct {
		id string
		fn func(int64, int) *Table
	}{{"E1", e1}, {"E2", e2}, {"E4", e4}} {
		want := f.fn(3, 1).Format()
		for _, workers := range []int{2, 5} {
			if got := f.fn(3, workers).Format(); got != want {
				t.Fatalf("%s diverges at workers=%d:\n%s\nvs serial:\n%s", f.id, workers, got, want)
			}
		}
	}
}
