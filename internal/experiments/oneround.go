package experiments

import (
	"fmt"
	"time"

	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E10 compares the 3-round membership protocol against the one-round
// variant of footnote 7 ("a different implementation could use the
// one-round protocol of [19]; however, this would stabilize less
// quickly"). Both run the same crash-and-survive scenario; the one-round
// protocol reacts faster when nothing is wrong but pays extra timeout
// cycles after failures while its reachability estimate is stale.
func E10(seed int64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "3-round vs one-round membership (footnote 7)",
		Claim:   "both converge, and the one-round protocol stabilizes less quickly after failures (stale reachability estimates cost extra timeout cycles)",
		Columns: []string{"n", "protocol", "crash l'", "merge l'", "converged"},
	}
	delta := time.Millisecond
	for _, n := range []int{4, 6} {
		type result struct {
			crash, merge time.Duration
			ok           bool
		}
		run := func(oneRound bool) result {
			c := stack.NewCluster(stack.Options{
				Seed: seed + int64(n), N: n, Delta: delta, OneRound: oneRound,
			})
			survivors := types.NewProcSet(c.Procs.Members()[1:]...)
			// Crash the leader, then later heal: measure both stabilizations.
			var crashAt, healAt sim.Time
			c.Sim.After(60*time.Millisecond, func() {
				c.Oracle.Isolate(survivors, c.Procs)
				crashAt = c.Sim.Now()
			})
			c.Sim.After(800*time.Millisecond, func() {
				c.Oracle.Heal(c.Procs)
				healAt = c.Sim.Now()
			})
			if err := c.Sim.Run(sim.Time(4 * time.Second)); err != nil {
				panic(err)
			}
			mCrash := props.MeasureVS(c.Log.Until(healAt), survivors, crashAt)
			mMerge := props.MeasureVS(c.Log, c.Procs, healAt)
			return result{
				crash: mCrash.LPrime,
				merge: mMerge.LPrime,
				ok:    mCrash.Converged && mMerge.Converged,
			}
		}
		three := run(false)
		one := run(true)
		for _, row := range []struct {
			name string
			r    result
		}{{"3-round", three}, {"one-round", one}} {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), row.name, ms(row.r.crash), ms(row.r.merge), fmt.Sprintf("%t", row.r.ok),
			})
			if !row.r.ok {
				t.Failures = append(t.Failures, fmt.Sprintf("n=%d %s did not converge", n, row.name))
			}
		}
		if one.ok && three.ok && one.crash < three.crash {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"n=%d: one-round recovered from the crash faster (%v vs %v) — the trade shows in the merge column",
				n, one.crash, three.crash))
		}
		if one.ok && three.ok && one.crash+one.merge <= three.crash+three.merge {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"n=%d: one-round total stabilization (%v) not slower than 3-round (%v) — footnote 7's trade not reproduced",
				n, one.crash+one.merge, three.crash+three.merge))
		}
	}
	return t
}
