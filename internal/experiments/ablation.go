package experiments

import (
	"fmt"
	"time"

	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E9 is an ablation of the membership protocol's collection window: the
// accept round trip takes up to 2δ, so windows ≤ 2δ miss worst-case
// replies and views collapse to singletons, which (through probe-triggered
// re-formation) never converge. The experiment sweeps the window and
// reports whether a partition's components converge and how much view
// churn occurs — the cliff sits exactly at 2δ.
func E9(seed int64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Ablation: membership collection window vs the 2δ round trip",
		Claim:   "windows > 2δ converge with minimal churn; windows ≤ 2δ churn without converging (design choice called out in DESIGN.md)",
		Columns: []string{"collect window", "converged", "merge l'", "views installed@p0", "timeouts@p0"},
	}
	const n = 5
	delta := time.Millisecond
	for _, factor := range []float64{1.0, 2.0, 2.5, 4.0} {
		window := time.Duration(factor * float64(delta))
		c := stack.NewCluster(stack.Options{
			Seed: seed, N: n, Delta: delta, CollectWait: window,
		})
		left := types.NewProcSet(0, 1, 2)
		right := types.NewProcSet(3, 4)
		c.Sim.After(40*time.Millisecond, func() { c.Oracle.Partition(c.Procs, left, right) })
		var heal sim.Time
		c.Sim.After(300*time.Millisecond, func() {
			c.Oracle.Heal(c.Procs)
			heal = c.Sim.Now()
		})
		if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
			panic(err)
		}
		m := props.MeasureVS(c.Log, c.Procs, heal)
		lp := "—"
		if m.Converged {
			lp = ms(m.LPrime)
		}
		st := c.Node(0).VS().FormerStats()
		vs := c.Node(0).VS().Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fδ", factor),
			fmt.Sprintf("%t", m.Converged),
			lp,
			fmt.Sprint(st.Installed),
			fmt.Sprint(vs.Timeouts),
		})
		// The claim: the healthy windows converge, the broken ones do not.
		if factor > 2.0 && !m.Converged {
			t.Failures = append(t.Failures, fmt.Sprintf("window %.1fδ failed to converge", factor))
		}
		if factor <= 2.0 && m.Converged {
			t.Failures = append(t.Failures,
				fmt.Sprintf("window %.1fδ converged — the ablation no longer demonstrates the cliff", factor))
		}
	}
	t.Notes = append(t.Notes,
		"with worst-case δ delivery, accepts arrive exactly at 2δ and lose the tie against the collection deadline.")
	return t
}
