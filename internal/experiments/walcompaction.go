package experiments

import (
	"fmt"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E15 measures what WAL snapshot/compaction buys at rejoin: the replay
// cost of the k-th crash as the log's total appended length grows with
// repeated crash/recover cycles. Each cycle appends a full round of
// traffic plus the establish records of the rejoin churn — and every
// establish re-records the complete order, so without compaction the log
// grows superlinearly in history and the k-th replay reads all of it.
// With compaction the retained log is a recent checkpoint plus a bounded
// suffix: replayed records stay flat in the number of cycles while total
// appended bytes keep climbing.
//
// E14 shows rejoin *latency* is flat in WAL length because replay is a
// local read costing no virtual time; E15 is the complementary claim
// about the size of that local read, which in a live deployment (where
// reading is real work — see the live matrix) is the rejoin cost.
func E15(seed int64) *Table {
	t := &Table{
		ID:    "E15",
		Title: "WAL compaction: replay cost of the k-th crash vs total log length",
		Claim: "with checkpoint/compaction the k-th crash replays a checkpoint plus a bounded suffix (flat in k); without, it replays the whole history (growing in k)",
		Columns: []string{"crash cycles", "compaction", "total WAL appended", "bytes replayed at last crash",
			"records replayed", "checkpoints"},
	}

	type outcome struct {
		appended, replayBytes, replayRecords, checkpoints int
	}
	const n = 3
	const perCycle = 6 // values per cycle
	delta := time.Millisecond
	victim := types.ProcID(1)

	run := func(cycles, ckptBytes int) outcome {
		c := stack.NewCluster(stack.Options{
			Seed: seed, N: n, Delta: delta, CheckpointBytes: ckptBytes,
		})
		if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
			panic(err)
		}
		bound := c.Cfg.AnalyticB(n) + 2*c.Cfg.AnalyticDImpl(n)
		pace := 2 * c.Cfg.Pi
		seq := 0
		for cyc := 0; cyc < cycles; cyc++ {
			// One round of traffic, submitted at the never-crashed node 0.
			for i := 0; i < perCycle; i++ {
				seq++
				v := types.Value(fmt.Sprintf("v%d", seq))
				c.Sim.After(time.Duration(i)*pace, func() { c.Bcast(0, v) })
			}
			want := perCycle * (cyc + 1)
			for len(c.Deliveries(0)) < want {
				if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
					panic(err)
				}
				if c.Sim.Now() > sim.Time(120*time.Second) {
					panic("E15: burst never delivered")
				}
			}
			// Wipe the victim, heal, and let it rejoin (replaying its WAL)
			// before the next round.
			c.Oracle.SetProc(victim, failures.Amnesia)
			if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
				panic(err)
			}
			c.Oracle.Heal(c.Procs)
			for c.Node(victim).Recoveries() < cyc+1 {
				if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
					panic(err)
				}
				if c.Sim.Now() > sim.Time(120*time.Second) {
					panic("E15: victim never recovered")
				}
			}
			if err := c.Sim.RunFor(bound); err != nil {
				panic(err)
			}
		}
		snap := c.Node(victim).LastReplay()
		return outcome{
			appended:      c.Node(victim).WAL().EndOffset(),
			replayBytes:   snap.TruncatedAt,
			replayRecords: snap.Records,
			checkpoints:   c.Node(victim).Checkpoints(),
		}
	}

	const ckptBytes = 2048
	results := map[bool]map[int]outcome{true: {}, false: {}}
	for _, cycles := range []int{2, 4, 8} {
		for _, compact := range []bool{false, true} {
			ck := 0
			label := "off"
			if compact {
				ck, label = ckptBytes, fmt.Sprintf("every %dB", ckptBytes)
			}
			o := run(cycles, ck)
			results[compact][cycles] = o
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", cycles), label, fmt.Sprintf("%d", o.appended),
				fmt.Sprintf("%d", o.replayBytes), fmt.Sprintf("%d", o.replayRecords),
				fmt.Sprintf("%d", o.checkpoints),
			})
		}
	}

	// The claim, as ratios over a 4× increase in crash cycles: replayed
	// records must grow with history when compaction is off and stay
	// essentially flat when it is on.
	off2, off8 := results[false][2], results[false][8]
	on2, on8 := results[true][2], results[true][8]
	if off8.replayRecords < 3*off2.replayRecords {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"without compaction, replay should track history: %d records at 8 cycles vs %d at 2",
			off8.replayRecords, off2.replayRecords))
	}
	if on8.replayRecords > 2*on2.replayRecords {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"with compaction, replay should be flat: %d records at 8 cycles vs %d at 2",
			on8.replayRecords, on2.replayRecords))
	}
	if 2*on8.replayRecords > off8.replayRecords {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"at 8 cycles compaction should at least halve the replay: %d records vs %d without",
			on8.replayRecords, off8.replayRecords))
	}
	if on8.checkpoints == 0 {
		t.Failures = append(t.Failures, "compacted run never checkpointed")
	}

	t.Notes = append(t.Notes,
		"replay cost is records/bytes read at the final crash's recovery; total appended is the log's logical end offset (compaction never renumbers)",
		"establish records re-record the full order, so the uncompacted log grows superlinearly in delivered history; the checkpoint records the same state once and the prefix before the previous checkpoint is discarded",
		"compare E14: same crash, complementary axis — E14 pins rejoin latency (replay is a local read), E15 pins the size of that read")
	return t
}
