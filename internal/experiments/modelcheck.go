package experiments

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/vstoto"
)

// E13 records the bounded exhaustive model-checking results: for tiny
// configurations, every reachable state of the spec-level VStoTO-system is
// checked against the Section 6 invariants (shallow and deep) and every
// transition against the forward-simulation step condition — Theorem 6.26
// over all interleavings within the bounds, not a sample. The final row
// reverts label(a)_p to the paper's literal Figure 10 precondition and
// requires the explorer to FIND the resulting violation.
func E13(seed int64) *Table {
	_ = seed // exploration is exhaustive; no randomness to seed
	t := &Table{
		ID:      "E13",
		Title:   "Bounded exhaustive model checking of VStoTO-system",
		Claim:   "every interleaving within the bounds satisfies Theorem 6.26; the literal Figure 10 label rule is refuted by a concrete schedule",
		Columns: []string{"scenario", "states", "edges", "verdict"},
	}
	type scenario struct {
		name string
		cfg  vstoto.ExploreConfig
		// expectViolation: the run must FIND a bug (the literal-label row).
		expectViolation bool
	}
	full2 := types.View{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(2)}
	scenarios := []scenario{
		{"n=2, 2 values, stable view", vstoto.ExploreConfig{N: 2, MaxBcasts: 2}, false},
		{"n=2, 1 value, 1 view change", vstoto.ExploreConfig{N: 2, MaxBcasts: 1, Views: []types.View{full2}}, false},
		{"n=2, literal Figure 10 label", vstoto.ExploreConfig{
			N: 2, MaxBcasts: 1, Views: []types.View{full2}, LiteralFigure10Label: true, MaxStates: 300000,
		}, true},
	}
	for _, sc := range scenarios {
		res, err := vstoto.Explore(sc.cfg)
		verdict := "all interleavings safe"
		switch {
		case sc.expectViolation && err != nil:
			verdict = "defect found (as expected)"
		case sc.expectViolation && err == nil:
			verdict = "NO DEFECT FOUND"
			t.Failures = append(t.Failures, fmt.Sprintf("%s: literal rule unexpectedly survived", sc.name))
		case err != nil:
			verdict = "VIOLATION"
			t.Failures = append(t.Failures, fmt.Sprintf("%s: %v", sc.name, err))
		case res.Truncated:
			verdict = "TRUNCATED"
			t.Failures = append(t.Failures, fmt.Sprintf("%s: state budget exhausted", sc.name))
		}
		t.Rows = append(t.Rows, []string{
			sc.name, fmt.Sprint(res.States), fmt.Sprint(res.Edges), verdict,
		})
	}
	return t
}
