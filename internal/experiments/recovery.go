package experiments

import (
	"fmt"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// E14 measures crash recovery: the latency for an amnesia-crashed
// processor to rejoin and deliver again, as a function of (a) how much WAL
// it must replay and (b) the stable-storage write latency λ — the same λ
// axis as the E5 baseline comparison. The claim under test: replay is a
// local read and the WAL is written off the critical path, so rejoin
// latency stays within the analytic post-heal budget b + 2·d_impl plus a
// small number of serialized post-heal writes (the recovery marker, the
// rejoin view record, and the first delivery record — each λ), regardless
// of how long the log has grown. Contrast with the E5 baseline, which pays
// λ per message in steady state.
func E14(seed int64) *Table {
	t := &Table{
		ID:    "E14",
		Title: "crash recovery: rejoin latency vs WAL length and storage latency",
		Claim: "WAL replay is local: rejoin latency is bounded by b + 2·d_impl + 3λ independent of WAL length; WAL size grows with traffic, rejoin latency does not",
		Columns: []string{"pre-crash msgs", "storage latency", "WAL bytes", "WAL records replayed",
			"rejoin latency", "budget"},
	}
	const n = 3
	delta := time.Millisecond
	victim := types.ProcID(1)

	run := func(k int, lat time.Duration) {
		c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: delta, StorageLatency: lat})
		if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
			panic(err)
		}
		// Pre-crash traffic grows the victim's WAL: k values, paced so the
		// serialized write head (λ per record) keeps up.
		pace := 2 * c.Cfg.Pi
		if 4*lat > pace {
			pace = 4 * lat
		}
		for i := 0; i < k; i++ {
			i := i
			c.Sim.After(time.Duration(i)*pace, func() {
				c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i)))
			})
		}
		for {
			if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
				panic(err)
			}
			done := true
			for _, p := range c.Procs.Members() {
				if len(c.Deliveries(p)) < k {
					done = false
				}
			}
			if done {
				break
			}
			if c.Sim.Now() > sim.Time(60*time.Second) {
				panic("E14: pre-crash burst never completed")
			}
		}
		// Quiesce so the WAL tail is durable, then wipe the victim.
		if err := c.Sim.RunFor(time.Duration(k+4) * lat); err != nil {
			panic(err)
		}
		walBytes := c.Node(victim).WAL().Storage().Size()
		c.Oracle.SetProc(victim, failures.Amnesia)
		if err := c.Sim.RunFor(5 * time.Millisecond); err != nil {
			panic(err)
		}
		healT := c.Sim.Now()
		c.Oracle.Heal(c.Procs)
		// Probe traffic from a survivor: the victim's first post-heal
		// delivery marks its rejoin. The first probe leaves at the heal
		// itself, so rejoin latency is not probe-limited. Pacing must
		// respect the write head: each value costs several WAL records at
		// the origin, so probes arriving faster than ~8λ saturate the
		// device, its queued view records delay installations, and view
		// formation churns instead of converging.
		probePace := c.Cfg.Pi
		if 8*lat > probePace {
			probePace = 8 * lat
		}
		for i := 0; i < 200; i++ {
			i := i
			c.Sim.At(healT.Add(time.Duration(i)*probePace), func() {
				c.Bcast(0, types.Value(fmt.Sprintf("probe%d", i)))
			})
		}
		budget := c.Cfg.AnalyticB(n) + 2*c.Cfg.AnalyticDImpl(n) + 3*lat
		var rejoin time.Duration
		for {
			if err := c.Sim.RunFor(time.Millisecond); err != nil {
				panic(err)
			}
			found := false
			for _, d := range c.Deliveries(victim) {
				if d.Time > healT {
					rejoin = d.Time.Sub(healT)
					found = true
					break
				}
			}
			if found {
				break
			}
			if c.Sim.Now().Sub(healT) > 10*budget {
				t.Failures = append(t.Failures, fmt.Sprintf(
					"k=%d λ=%v: victim never rejoined within 10× budget", k, lat))
				return
			}
		}
		snap := c.Node(victim).LastReplay()
		records := 0
		if snap != nil {
			records = snap.Records
		}
		if c.Node(victim).Recoveries() != 1 {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"k=%d λ=%v: %d recoveries, want 1", k, lat, c.Node(victim).Recoveries()))
		}
		if records == 0 || walBytes == 0 {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"k=%d λ=%v: empty WAL at crash (bytes=%d records=%d)", k, lat, walBytes, records))
		}
		if rejoin > budget {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"k=%d λ=%v: rejoin latency %v exceeds budget %v", k, lat, rejoin, budget))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), ms(lat), fmt.Sprintf("%d", walBytes),
			fmt.Sprintf("%d", records), ms(rejoin), ms(budget),
		})
	}

	// (a) WAL length sweep at a fixed latency of δ.
	for _, k := range []int{4, 16, 64} {
		run(k, delta)
	}
	// (b) storage-latency sweep at fixed traffic — the E5 λ axis.
	for _, lat := range []time.Duration{0, 5 * delta, 20 * delta} {
		run(16, lat)
	}
	t.Notes = append(t.Notes,
		"budget = b + 2·d_impl + 3λ: the recovery-liveness bound the chaos harness enforces, plus the three serialized post-heal writes (recovery marker, rejoin view record, first delivery record)",
		"compare E5: the stable-storage baseline pays λ per message in steady state; here λ appears only at rejoin, and replay itself is a local read costing no virtual time")
	return t
}
