// Package prof is the tiny shared pprof plumbing for the CLIs: start a CPU
// profile and register a heap profile to be written at exit, behind two
// flags. See DESIGN.md ("Profiling recipe") for how to drive it.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two file paths (either may be empty) and
// returns an idempotent stop function that finishes the CPU profile and
// writes the heap profile. Call stop before every exit path — including
// os.Exit, which skips deferred calls.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
