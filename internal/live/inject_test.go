package live

import (
	"errors"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/types"
)

// sleeper spawns a throwaway real process (sleep) wrapped as a Proc.
func sleeper(t *testing.T, seconds string) *Proc {
	t.Helper()
	cmd := exec.Command("sleep", seconds)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sleep: %v", err)
	}
	p := &Proc{ID: types.ProcID(0), Cmd: cmd}
	t.Cleanup(func() {
		if !p.Exited() {
			_ = p.Kill()
		}
	})
	return p
}

func TestProcKillReaps(t *testing.T) {
	p := sleeper(t, "60")
	if p.Exited() {
		t.Fatal("exited before any signal")
	}
	if err := p.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if !p.Exited() {
		t.Fatal("not reaped after Kill returned")
	}
}

// Apply on a process that is already dead and reaped must surface
// os.ErrProcessDone, not hang or panic — the matrix runner records it as
// an injector error and moves on.
func TestApplyOnDeadProcess(t *testing.T) {
	p := sleeper(t, "60")
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	for _, st := range []failures.Status{failures.Bad, failures.Good, failures.Amnesia} {
		if err := p.Apply(st); !errors.Is(err, os.ErrProcessDone) {
			t.Errorf("Apply(%v) on dead process = %v, want ErrProcessDone", st, err)
		}
	}
}

// SIGKILL kills even a SIGSTOPped process: the stop-then-kill sequence
// (a stopped node being wiped) must reap within the bound.
func TestKillStoppedProcess(t *testing.T) {
	p := sleeper(t, "60")
	if err := p.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if err := p.Kill(); err != nil {
		t.Fatalf("Kill after Pause: %v", err)
	}
}

// WaitExit on a process that will never exit must escalate to SIGKILL at
// the deadline and report the escalation — never return a clean nil, and
// never leak the process.
func TestWaitExitEscalates(t *testing.T) {
	p := sleeper(t, "60")
	start := time.Now()
	err := p.WaitExit(100 * time.Millisecond)
	if err == nil {
		t.Fatal("WaitExit returned nil for a process that never exits")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitExit took %v, want prompt escalation", elapsed)
	}
	if !p.Exited() {
		t.Fatal("process leaked after escalation")
	}
}

func TestWaitExitClean(t *testing.T) {
	p := sleeper(t, "0.05")
	if err := p.WaitExit(10 * time.Second); err != nil {
		t.Fatalf("WaitExit on a clean exit: %v", err)
	}
	if !p.Exited() {
		t.Fatal("Exited false after clean WaitExit")
	}
}

// A SIGSTOP→SIGCONT round trip leaves the process running: resume must
// not be mistaken for an exit, and a later kill still reaps it.
func TestPauseResumeKill(t *testing.T) {
	p := sleeper(t, "60")
	if err := p.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
	if p.Exited() {
		t.Fatal("resume reaped the process")
	}
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
}
