package live

import (
	"fmt"
	"os"

	"repro/internal/recovery"
)

// walMirror is the real file behind a live node's stable-storage mirror.
// Beyond plain appends it implements storage.MirrorTruncator, so WAL
// compaction can discard the file's prefix: the retained suffix is
// written to a temp file and renamed over the original, leaving either
// the old or the new image after a kill at any instant, never a
// half-rewritten one.
//
// Offsets are the log's logical offsets for this boot (0 = the file's
// first byte at open time); origin tracks how much earlier truncations
// already removed from the front.
type walMirror struct {
	path   string
	f      *os.File
	origin int // logical offset of the file's first byte
	size   int // current file size
}

// openWALMirror opens (creating if absent) the WAL file for mirroring,
// first discarding any torn tail a kill mid-write left behind: replay
// stops at the first torn record, so bytes past the tear are dead — and
// new records must be appended where the next replay will actually read
// them. Returns the retained contents (what this boot replays) and the
// mirror positioned to append after them.
func openWALMirror(path string) ([]byte, *walMirror, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	if snap := recovery.Replay(data); snap.TruncatedAt < len(data) {
		data = data[:snap.TruncatedAt]
		if err := os.Truncate(path, int64(snap.TruncatedAt)); err != nil {
			return nil, nil, fmt.Errorf("live: truncate torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return data, &walMirror{path: path, f: f, size: len(data)}, nil
}

func (m *walMirror) Write(b []byte) (int, error) {
	n, err := m.f.Write(b)
	m.size += n
	return n, err
}

// TruncatePrefix drops the file's bytes before logical offset n
// (storage.MirrorTruncator).
func (m *walMirror) TruncatePrefix(n int) error {
	if n <= m.origin {
		return nil
	}
	if n > m.origin+m.size {
		return fmt.Errorf("live: wal mirror: truncate to %d beyond end %d", n, m.origin+m.size)
	}
	data, err := os.ReadFile(m.path)
	if err != nil {
		return err
	}
	if len(data) != m.size {
		return fmt.Errorf("live: wal mirror: file size %d, tracked %d", len(data), m.size)
	}
	drop := n - m.origin
	tmp := m.path + ".compact"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data[drop:]); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.path); err != nil {
		return err
	}
	f, err := os.OpenFile(m.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	m.f.Close()
	m.f = f
	m.origin = n
	m.size -= drop
	return nil
}

func (m *walMirror) Close() error { return m.f.Close() }
