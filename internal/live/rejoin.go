package live

import (
	"fmt"
	"os"

	"repro/internal/props"
	"repro/internal/recovery"
)

// CheckRejoinWAL verifies one node's traced deliveries against its final
// WAL file — the live analogue of props.CheckRejoinSafety, with the real
// file standing in for the simulated device. The write-ahead discipline
// makes the WAL the authority: every delivery is durable before its trace
// line is written, so the node's traced brcv stream (across all
// incarnations, in boot order) must embed order-preservingly into the
// replayed Delivered prefix:
//
//   - within one incarnation's trace, brcvs match consecutive Delivered
//     records exactly (position, origin, per-origin index, value) — a
//     skip, rewind, or re-delivery after a restart shows up here;
//   - at an incarnation boundary the match may skip forward: deliveries
//     durable but untraced (SIGKILL between the WAL write and the trace
//     write, or a torn final trace line) leave a gap the next
//     incarnation's trace resumes after;
//   - a trailing WAL gap is fine — the last records before the final
//     stop may never have been traced.
//
// Works identically with compaction on: a checkpoint record encodes the
// full order and delivered count, so Replay reconstructs the complete
// Delivered history even after the log's prefix is discarded.
func CheckRejoinWAL(walPath string, traceFiles []string) error {
	data, err := os.ReadFile(walPath)
	if err != nil {
		return fmt.Errorf("live: rejoin: %w", err)
	}
	snap := recovery.Replay(data)
	delivered := snap.Delivered

	match := func(d recovery.DeliveredRecord, e props.Event) bool {
		return d.From == e.From && d.FromSeq == e.ValueSeq && d.Value == e.Value
	}

	cursor := 0
	for fi, f := range traceFiles {
		lg, err := ReadTraceFiles(f)
		if err != nil {
			return fmt.Errorf("live: rejoin: %w", err)
		}
		// The first incarnation has no predecessor whose kill could have
		// swallowed trace lines: its first brcv must be WAL position 1.
		atBoundary := fi > 0
		for _, e := range lg.Events {
			if e.Kind != props.TOBrcv {
				continue
			}
			if atBoundary {
				// Scan forward over durable-but-untraced deliveries the
				// previous incarnation's kill swallowed. FromSeq is unique
				// per origin, so the first match is the only one.
				j := cursor
				for j < len(delivered) && !match(delivered[j], e) {
					j++
				}
				if j == len(delivered) {
					return fmt.Errorf(
						"live: rejoin: %s: brcv %q from %v#%d has no WAL record at or after position %d — re-delivery or rewind across restart",
						f, e.Value, e.From, e.ValueSeq, cursor+1)
				}
				cursor = j
				atBoundary = false
			} else if cursor >= len(delivered) || !match(delivered[cursor], e) {
				got := "end of WAL"
				if cursor < len(delivered) {
					d := delivered[cursor]
					got = fmt.Sprintf("%q from %v#%d", d.Value, d.From, d.FromSeq)
				}
				return fmt.Errorf(
					"live: rejoin: %s: brcv %q from %v#%d does not match WAL position %d (%s) — delivery stream diverged from the durable order",
					f, e.Value, e.From, e.ValueSeq, cursor+1, got)
			}
			cursor++
		}
	}
	return nil
}
