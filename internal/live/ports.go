package live

import (
	"fmt"
	stdnet "net"
)

// probeBasePort finds a base port whose whole 2n-port block (peer +
// client listener per node) is currently bindable, starting at want and
// advancing by whole blocks. Parallel CI jobs and leftover daemons from
// an aborted run otherwise collide on the fixed defaults, and the
// resulting EADDRINUSE surfaces deep inside a daemon's boot log with no
// hint of which scenario owned the port — so the error here names both
// the busy port and the owning scenario.
//
// The probe is advisory (the port could be taken between probe and
// bind), but it converts the common collisions — a previous scenario's
// TIME_WAIT-free leftovers, a concurrent matrix — into a clean skip to
// the next block.
func probeBasePort(want, n, attempts int, owner string) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("live: probeBasePort: n must be positive")
	}
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	lastPort := 0
	for a := 0; a < attempts; a++ {
		base := want + a*2*n
		if ok, port, err := blockFree(base, 2*n); ok {
			return base, nil
		} else {
			lastErr, lastPort = err, port
		}
	}
	return 0, fmt.Errorf("live: scenario %s: no free 2x%d-port block in [%d,%d): port %d busy: %w",
		owner, n, want, want+attempts*2*n, lastPort, lastErr)
}

// blockFree reports whether every port in [base, base+count) is
// bindable right now; on failure it returns the first busy port and the
// bind error (typically EADDRINUSE).
func blockFree(base, count int) (bool, int, error) {
	for p := base; p < base+count; p++ {
		ln, err := stdnet.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
		if err != nil {
			return false, p, err
		}
		ln.Close()
	}
	return true, 0, nil
}
