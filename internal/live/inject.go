package live

import (
	"fmt"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/failures"
	"repro/internal/types"
)

// Proc is a handle on one spawned daemon process, exposing the failures
// vocabulary (Figure 4) as real process faults:
//
//	Bad     → SIGSTOP  (the processor stops taking steps, state intact)
//	Good    → SIGCONT  (resumes exactly where it stopped)
//	Amnesia → SIGKILL  (volatile state gone; the WAL file survives, and
//	                    the next boot runs the recovery path)
//
// Channel faults map to the daemon's listener controls (LPAUSE/LRESUME
// over the control connection; see Client), not to signals.
type Proc struct {
	ID  types.ProcID
	Cmd *exec.Cmd

	// The process may only be Wait()ed once; every reap path funnels
	// through the single background reaper waitChan starts.
	waitOnce sync.Once
	waitDone chan struct{}
	waitErr  error
}

// Apply maps a processor status onto the live process. Good after a
// SIGSTOP resumes; reviving a SIGKILLed process needs a restart, which
// only the orchestrator can do (it owns the spawn parameters) — Apply
// reports that case as an error so callers route it there. Signalling an
// already-exited process reports os.ErrProcessDone.
func (p *Proc) Apply(status failures.Status) error {
	switch status {
	case failures.Bad:
		return p.signal(syscall.SIGSTOP)
	case failures.Good:
		return p.signal(syscall.SIGCONT)
	case failures.Amnesia:
		return p.signal(syscall.SIGKILL)
	default:
		return fmt.Errorf("live: no process realization for status %v", status)
	}
}

// Pause delivers SIGSTOP (failures.Bad).
func (p *Proc) Pause() error { return p.signal(syscall.SIGSTOP) }

// Resume delivers SIGCONT (failures.Good after Bad).
func (p *Proc) Resume() error { return p.signal(syscall.SIGCONT) }

// Kill delivers SIGKILL (failures.Amnesia) and reaps the process,
// bounded: SIGKILL cannot be caught or blocked (it kills even a stopped
// process), so a reap that still times out means the process is wedged
// in the kernel — reported rather than leaked.
func (p *Proc) Kill() error {
	if err := p.signal(syscall.SIGKILL); err != nil {
		return err
	}
	select {
	case <-p.waitChan():
		return nil // exit status is necessarily "killed"
	case <-time.After(10 * time.Second):
		return fmt.Errorf("live: node %v: unreaped 10s after SIGKILL", p.ID)
	}
}

// WaitExit reaps the process within timeout, escalating to SIGKILL at
// the deadline (a SIGSTOPped or wedged daemon never exits on its own)
// and bounding the post-kill reap too, so no reaper goroutine can leak
// forever on a wedged process. A clean or killed exit returns nil; an
// escalation or an unreapable process is an error the caller surfaces —
// a daemon that had to be SIGKILLed out of a graceful stop may have torn
// its final trace lines.
func (p *Proc) WaitExit(timeout time.Duration) error {
	select {
	case <-p.waitChan():
		return nil
	case <-time.After(timeout):
	}
	if err := p.signal(syscall.SIGKILL); err == nil {
		select {
		case <-p.waitChan():
			return fmt.Errorf("live: node %v: not exited after %v; SIGKILLed", p.ID, timeout)
		case <-time.After(10 * time.Second):
			return fmt.Errorf("live: node %v: unreaped 10s after SIGKILL escalation", p.ID)
		}
	}
	// The signal failing means the process exited in the race window;
	// the reaper observes it promptly.
	select {
	case <-p.waitChan():
		return nil
	case <-time.After(10 * time.Second):
		return fmt.Errorf("live: node %v: unreaped after exit race", p.ID)
	}
}

// Exited reports whether the process has been reaped.
func (p *Proc) Exited() bool {
	select {
	case <-p.waitChan():
		return true
	default:
		return false
	}
}

// waitChan starts (once) the background reaper and returns the channel
// it closes when the process has exited and been reaped.
func (p *Proc) waitChan() <-chan struct{} {
	p.waitOnce.Do(func() {
		p.waitDone = make(chan struct{})
		go func() {
			p.waitErr = p.Cmd.Wait()
			close(p.waitDone)
		}()
	})
	return p.waitDone
}

func (p *Proc) signal(sig syscall.Signal) error {
	if p.Cmd.Process == nil {
		return fmt.Errorf("live: node %v: process not started", p.ID)
	}
	return p.Cmd.Process.Signal(sig)
}
