package live

import (
	"fmt"
	"os/exec"
	"syscall"

	"repro/internal/failures"
	"repro/internal/types"
)

// Proc is a handle on one spawned daemon process, exposing the failures
// vocabulary (Figure 4) as real process faults:
//
//	Bad     → SIGSTOP  (the processor stops taking steps, state intact)
//	Good    → SIGCONT  (resumes exactly where it stopped)
//	Amnesia → SIGKILL  (volatile state gone; the WAL file survives, and
//	                    the next boot runs the recovery path)
//
// Channel faults map to the daemon's listener controls (LPAUSE/LRESUME
// over the control connection; see Client), not to signals.
type Proc struct {
	ID  types.ProcID
	Cmd *exec.Cmd
}

// Apply maps a processor status onto the live process. Good after a
// SIGSTOP resumes; reviving a SIGKILLed process needs a restart, which
// only the orchestrator can do (it owns the spawn parameters) — Apply
// reports that case as an error so callers route it there.
func (p *Proc) Apply(status failures.Status) error {
	switch status {
	case failures.Bad:
		return p.signal(syscall.SIGSTOP)
	case failures.Good:
		return p.signal(syscall.SIGCONT)
	case failures.Amnesia:
		return p.signal(syscall.SIGKILL)
	default:
		return fmt.Errorf("live: no process realization for status %v", status)
	}
}

// Pause delivers SIGSTOP (failures.Bad).
func (p *Proc) Pause() error { return p.signal(syscall.SIGSTOP) }

// Resume delivers SIGCONT (failures.Good after Bad).
func (p *Proc) Resume() error { return p.signal(syscall.SIGCONT) }

// Kill delivers SIGKILL (failures.Amnesia) and reaps the process.
func (p *Proc) Kill() error {
	if err := p.signal(syscall.SIGKILL); err != nil {
		return err
	}
	p.Cmd.Wait() // reap; exit status is necessarily "killed"
	return nil
}

func (p *Proc) signal(sig syscall.Signal) error {
	if p.Cmd.Process == nil {
		return fmt.Errorf("live: node %v: process not started", p.ID)
	}
	return p.Cmd.Process.Signal(sig)
}
