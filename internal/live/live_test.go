package live

import (
	"fmt"
	stdnet "net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/props"
	"repro/internal/types"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func testConfig(t *testing.T, n int) *Config {
	t.Helper()
	cfg := &Config{DeltaMS: 5, Seed: 7}
	for i := 0; i < n; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			ID: i, Addr: freePort(t), ClientAddr: freePort(t),
		})
	}
	return cfg
}

func startTestEngine(t *testing.T, cfg *Config, id int, run int) *Engine {
	t.Helper()
	dir := t.TempDir()
	e, err := StartEngine(EngineOptions{
		Config:    cfg,
		Self:      types.ProcID(id),
		WALPath:   filepath.Join(dir, "wal"),
		TracePath: filepath.Join(dir, fmt.Sprintf("trace.r%d.jsonl", run)),
		Tick:      time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLiveClusterInProcess boots a three-node cluster of real engines
// (real sockets, wall-clock pacing) in one process, drives it through
// the client protocol, and checks the merged trace for TO conformance.
func TestLiveClusterInProcess(t *testing.T) {
	cfg := testConfig(t, 3)
	engines := make([]*Engine, 3)
	for i := range engines {
		engines[i] = startTestEngine(t, cfg, i, 0)
	}

	// The client protocol end to end: readiness, submission, streaming.
	c, err := DialClient(engines[0].ClientAddr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := c.Submit(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		// Interleave with direct submissions at another node.
		engines[1].Bcast(types.Value(fmt.Sprintf("w%d", i)))
	}

	// Every node must deliver all 2·total values.
	for i, e := range engines {
		e := e
		waitFor(t, 20*time.Second, fmt.Sprintf("node %d deliveries", i), func() bool {
			return len(e.Deliveries()) == 2*total
		})
	}
	// The streamed delivery lines match node 0's delivery sequence.
	streamed := 0
	for streamed < 2*total {
		select {
		case d, ok := <-c.Deliveries():
			if !ok {
				t.Fatal("delivery stream closed early")
			}
			want := engines[0].Deliveries()[streamed]
			if string(want.Value) != d.Value || want.From != d.From {
				t.Fatalf("stream line %d: got %v %q, want %v %q",
					streamed, d.From, d.Value, want.From, want.Value)
			}
			streamed++
		case <-time.After(10 * time.Second):
			t.Fatalf("streamed only %d/%d deliveries", streamed, 2*total)
		}
	}

	if m, err := c.Metrics(5 * time.Second); err != nil || !strings.Contains(m, "to.deliveries") {
		t.Fatalf("metrics: %q, %v", m, err)
	}

	// Graceful stop flushes the traces; then the merged conformance check.
	logs := make(map[types.ProcID]*props.Log, 3)
	for i, e := range engines {
		e.Close()
		lg, err := ReadTraceFiles(e.opts.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		logs[types.ProcID(i)] = lg
	}
	chk, err := CheckMergedTO(logs)
	if err != nil {
		t.Fatal(err)
	}
	if chk.OrderLen() != 2*total {
		t.Fatalf("merged order has %d values, want %d", chk.OrderLen(), 2*total)
	}
}

// TestLiveRestartFromWAL stops a node, restarts a fresh engine over the
// same WAL file, and verifies it rejoins one incarnation up and the
// cluster keeps delivering — the process-restart analogue of the
// simulated amnesia-recovery tests.
func TestLiveRestartFromWAL(t *testing.T) {
	cfg := testConfig(t, 3)
	dir := t.TempDir()
	engines := make([]*Engine, 3)
	start := func(id, run int) *Engine {
		e, err := StartEngine(EngineOptions{
			Config:    cfg,
			Self:      types.ProcID(id),
			WALPath:   filepath.Join(dir, fmt.Sprintf("node%d.wal", id)),
			TracePath: filepath.Join(dir, fmt.Sprintf("node%d.r%d.jsonl", id, run)),
			Tick:      time.Millisecond,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for i := range engines {
		engines[i] = start(i, 0)
		defer func(i int) { engines[i].Close() }(i)
	}

	engines[0].Bcast("before")
	for i, e := range engines {
		e := e
		waitFor(t, 20*time.Second, fmt.Sprintf("node %d first delivery", i), func() bool {
			return len(e.Deliveries()) == 1
		})
	}

	// Stop node 2 and restart it over its WAL.
	engines[2].Close()
	engines[2] = start(2, 1)
	if n := engines[2].node.Recoveries(); n != 1 {
		t.Fatalf("restarted node reports %d recoveries, want 1", n)
	}

	// The restarted node must rejoin and deliver values submitted both
	// elsewhere and at itself.
	engines[0].Bcast("after-0")
	waitFor(t, 30*time.Second, "restarted node catches up", func() bool {
		return len(engines[2].Deliveries()) >= 1
	})
	engines[2].Bcast("after-2")
	for i, e := range engines {
		e := e
		waitFor(t, 30*time.Second, fmt.Sprintf("node %d full delivery", i), func() bool {
			ds := e.Deliveries()
			return len(ds) >= 1 && string(ds[len(ds)-1].Value) == "after-2"
		})
	}

	// Merged conformance across incarnation files.
	logs := make(map[types.ProcID]*props.Log, 3)
	for i, e := range engines {
		e.Close()
		var files []string
		if i == 2 {
			files = []string{
				filepath.Join(dir, "node2.r0.jsonl"),
				filepath.Join(dir, "node2.r1.jsonl"),
			}
		} else {
			files = []string{filepath.Join(dir, fmt.Sprintf("node%d.r0.jsonl", i))}
		}
		lg, err := ReadTraceFiles(files...)
		if err != nil {
			t.Fatal(err)
		}
		logs[types.ProcID(i)] = lg
	}
	if _, err := CheckMergedTO(logs); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeJSONLTornTail(t *testing.T) {
	good := `{"kind":"bcast","p":0,"value":"a","value_seq":1}` + "\n"
	torn := good + `{"kind":"brcv","p":0,"fr`
	clean, err := sanitizeJSONL("x", []byte(torn))
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != strings.TrimSuffix(good, "\n") {
		t.Fatalf("got %q", clean)
	}

	// A torn line mid-file is corruption, not a tail: error.
	bad := torn + "\n" + good
	if _, err := sanitizeJSONL("x", []byte(bad)); err == nil {
		t.Fatal("mid-file corruption not detected")
	}

	// Intact input passes through unchanged.
	clean, err = sanitizeJSONL("x", []byte(good+good))
	if err != nil || string(clean) != good+good {
		t.Fatalf("intact input mangled: %q, %v", clean, err)
	}
}

func TestCheckMergedTODetectsViolations(t *testing.T) {
	mk := func(events ...props.Event) *props.Log {
		return &props.Log{Events: events}
	}
	bcast := func(p types.ProcID, v string) props.Event {
		return props.Event{Kind: props.TOBcast, P: p, Value: types.Value(v)}
	}
	brcv := func(p, from types.ProcID, v string) props.Event {
		return props.Event{Kind: props.TOBrcv, P: p, From: from, Value: types.Value(v)}
	}

	// Consistent: both nodes deliver the same cross-origin order.
	logs := map[types.ProcID]*props.Log{
		0: mk(bcast(0, "a"), brcv(0, 0, "a"), brcv(0, 1, "b")),
		1: mk(bcast(1, "b"), brcv(1, 0, "a"), brcv(1, 1, "b")),
	}
	if _, err := CheckMergedTO(logs); err != nil {
		t.Fatalf("consistent logs rejected: %v", err)
	}

	// Order violation: the nodes disagree on the global order.
	logs = map[types.ProcID]*props.Log{
		0: mk(bcast(0, "a"), brcv(0, 0, "a"), brcv(0, 1, "b")),
		1: mk(bcast(1, "b"), brcv(1, 1, "b"), brcv(1, 0, "a")),
	}
	if _, err := CheckMergedTO(logs); err == nil {
		t.Fatal("order disagreement not detected")
	}

	// Integrity violation: a delivery with no matching submission.
	logs = map[types.ProcID]*props.Log{
		0: mk(brcv(0, 1, "ghost")),
		1: mk(),
	}
	if _, err := CheckMergedTO(logs); err == nil {
		t.Fatal("integrity violation not detected")
	}
}

// TestLoadgenAgainstInProcessCluster runs the load generator library
// against in-process engines, checking the report's accounting.
func TestLoadgenAgainstInProcessCluster(t *testing.T) {
	cfg := testConfig(t, 3)
	engines := make([]*Engine, 3)
	for i := range engines {
		engines[i] = startTestEngine(t, cfg, i, 0)
	}
	addrs := make([]string, 3)
	for i, n := range cfg.Nodes {
		addrs[i] = n.ClientAddr
	}
	entry, err := RunLoad(LoadOptions{
		Addrs:    addrs,
		Rate:     200,
		Duration: 2 * time.Second,
		Drain:    15 * time.Second,
		RunID:    "test",
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Bcasts == 0 {
		t.Fatal("no submissions")
	}
	// Every submission is eventually delivered at every node.
	if want := 3 * entry.Bcasts; entry.Deliveries != want {
		t.Errorf("observed %d delivery lines, want %d", entry.Deliveries, want)
	}
	if entry.Counters["loadgen.unresolved"] != 0 {
		t.Errorf("%d submissions never delivered at their origin", entry.Counters["loadgen.unresolved"])
	}
	if entry.DeliveryLatency.Count != entry.Bcasts {
		t.Errorf("latency samples %d, want %d", entry.DeliveryLatency.Count, entry.Bcasts)
	}
}
