package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	stdnet "net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/transport"
	"repro/internal/types"
)

// EngineOptions configures one daemon engine (one processor's stack).
type EngineOptions struct {
	Config *Config
	Self   types.ProcID
	// WALPath is the node's write-ahead-log file. Read at boot (a
	// non-empty file routes the boot through the recovery path) and
	// appended to for every newly durable record.
	WALPath string
	// TracePath is this incarnation's JSONL trace file. The orchestrator
	// names it per restart (node<i>.r<k>.jsonl) so a SIGKILL can tear at
	// most the final line of the final file.
	TracePath string
	// MetricsPath, when non-empty, receives a JSON metrics snapshot on
	// Close.
	MetricsPath string
	// CheckpointBytes arms WAL snapshot/compaction: every so many bytes
	// of log growth the node appends a checkpoint record and the WAL
	// file's prefix before the previous checkpoint is discarded, so a
	// daemon killed hours into a soak replays the last checkpoint plus a
	// bounded suffix instead of its whole history. 0 disables.
	CheckpointBytes int
	// MaxPending bounds the node's accepted-but-undelivered submission
	// backlog; a submission past the bound is answered "BUSY <value>" on
	// the line protocol instead of accepted, so a stalled (no-primary)
	// daemon degrades by pushing back rather than buffering without
	// limit. 0 disables.
	MaxPending int
	// CommitWindow arms WAL group commit with the given commit window
	// (negative disables group commit entirely; 0 is pure pipelined
	// coalescing — see stack.Options.GroupCommit/CommitWindow). The
	// daemon's flag default is 0: group commit on, no added latency.
	CommitWindow time.Duration
	// GroupCommitOff disables WAL group commit (and the delivery
	// pipelining default) regardless of CommitWindow.
	GroupCommitOff bool
	// DeliverPipeline bounds delivery records in flight ahead of the
	// release point (stack.Options.DeliverPipeline); 0 picks the engine
	// default: 64 with group commit on, 1 (legacy lock-step) off.
	DeliverPipeline int
	// BatchMsgs/BatchBytes tune transport frame batching
	// (transport.TCPConfig.MaxBatchMsgs/MaxBatchBytes); 0 keeps the
	// transport defaults, BatchMsgs 1 disables batching.
	BatchMsgs  int
	BatchBytes int
	// Tick is the pacer granularity (default 2ms wall time).
	Tick time.Duration
	// Logf logs progress (default: silent).
	Logf func(string, ...any)
}

// Engine is a running daemon: one stack.Node paced against the wall
// clock, a TCP transport to its peers, and a client/control listener.
//
// Locking: everything that touches the simulator — the pacer, inbound
// transport deliveries, client submissions — runs under mu, so protocol
// code executes exactly as single-threaded as it does in simulation.
type Engine struct {
	mu   sync.Mutex
	sim  *sim.Sim
	node *stack.Node
	tr   *transport.TCP
	reg  *obs.Registry
	opts EngineOptions

	origin time.Time // wall instant of sim time zero

	walFile   *walMirror
	traceFile *os.File
	traceW    *bufio.Writer

	clientLn stdnet.Listener
	conns    map[*clientConn]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// Stopped closes when the engine has fully shut down (STOP command or
	// Close): the daemon main blocks on it.
	Stopped chan struct{}
}

// clientConn is one client/control connection; deliveries fan out to its
// outbox, drained by a dedicated writer goroutine so a slow client never
// stalls the pacer.
type clientConn struct {
	conn stdnet.Conn
	mu   sync.Mutex
	box  []string
	cond *sync.Cond
	dead bool
}

func (cc *clientConn) push(line string) {
	cc.mu.Lock()
	cc.box = append(cc.box, line)
	cc.cond.Signal()
	cc.mu.Unlock()
}

func (cc *clientConn) kill() {
	cc.mu.Lock()
	cc.dead = true
	cc.cond.Signal()
	cc.mu.Unlock()
	cc.conn.Close()
}

func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriter(cc.conn)
	for {
		cc.mu.Lock()
		for len(cc.box) == 0 && !cc.dead {
			cc.cond.Wait()
		}
		if cc.dead && len(cc.box) == 0 {
			cc.mu.Unlock()
			return
		}
		batch := cc.box
		cc.box = nil
		cc.mu.Unlock()
		for _, line := range batch {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// StartEngine boots the engine: WAL replayed (if present), transport and
// listeners bound, pacer running. The returned engine is live; call Close
// (or send STOP on the control connection) to shut down.
func StartEngine(opts EngineOptions) (*Engine, error) {
	if opts.Tick <= 0 {
		opts.Tick = 2 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	nc, ok := opts.Config.Node(opts.Self)
	if !ok {
		return nil, fmt.Errorf("live: node %v not in config", opts.Self)
	}

	e := &Engine{
		sim:     sim.New(opts.Config.Seed + int64(opts.Self)),
		reg:     obs.New(),
		opts:    opts,
		conns:   make(map[*clientConn]struct{}),
		stop:    make(chan struct{}),
		Stopped: make(chan struct{}),
	}

	// WAL: prior contents (torn tail physically discarded) route the boot
	// through recovery; the mirror appends every newly durable byte and
	// rewrites the file when compaction discards the prefix.
	walData, walFile, err := openWALMirror(opts.WALPath)
	if err != nil {
		return nil, fmt.Errorf("live: open WAL: %w", err)
	}
	e.walFile = walFile

	e.traceFile, err = os.Create(opts.TracePath)
	if err != nil {
		e.walFile.Close()
		return nil, fmt.Errorf("live: create trace: %w", err)
	}
	e.traceW = bufio.NewWriter(e.traceFile)

	e.tr = transport.NewTCP(transport.TCPConfig{
		Self:          opts.Self,
		Addrs:         opts.Config.Addrs(),
		Delta:         opts.Config.Delta(),
		Encode:        codec.Encode,
		Decode:        codec.Decode,
		AppendEncode:  codec.AppendEncode,
		MaxBatchMsgs:  opts.BatchMsgs,
		MaxBatchBytes: opts.BatchBytes,
		Submit:        e.submit,
		Obs:           e.reg,
		Logf:          opts.Logf,
	})
	if err := e.tr.Start(); err != nil {
		e.walFile.Close()
		e.traceFile.Close()
		return nil, err
	}

	// The trace log streams to disk as it grows; a torn final line after
	// SIGKILL is tolerated by the merge reader. TO events flush
	// immediately: a bcast/brcv line follows its WAL record's durability,
	// and a restarted node resumes after its durable delivery prefix — if
	// a kill could lose a whole buffer of delivery lines, the merged
	// per-node stream would show a gap the conformance checker (rightly)
	// rejects. VS events are diagnostic only and stay buffered.
	lg := &props.Log{
		Sink: func(ev props.Event) {
			props.AppendEventJSONL(e.traceW, ev)
			if ev.Kind == props.TOBcast || ev.Kind == props.TOBrcv {
				e.traceW.Flush()
			}
		},
		InitialSink: func(p types.ProcID, v types.View) { props.AppendInitialJSONL(e.traceW, p, v) },
	}

	groupCommit := !opts.GroupCommitOff && opts.CommitWindow >= 0
	pipeline := opts.DeliverPipeline
	if pipeline <= 0 {
		pipeline = 1
		if groupCommit {
			pipeline = 64
		}
	}
	e.mu.Lock()
	e.node = stack.NewLiveNode(stack.LiveOptions{
		Self:             opts.Self,
		Universe:         opts.Config.Universe(),
		P0:               opts.Config.P0Set(),
		Delta:            opts.Config.Delta(),
		Sim:              e.sim,
		Transport:        e.tr,
		WALData:          walData,
		WALMirror:        e.walFile,
		CheckpointBytes:  opts.CheckpointBytes,
		MaxPendingBcasts: opts.MaxPending,
		GroupCommit:      groupCommit,
		CommitWindow:     opts.CommitWindow,
		DeliverPipeline:  pipeline,
		EagerTokenRounds: groupCommit,
		Log:              lg,
		Obs:              e.reg,
		OnDeliver:        e.onDeliver,
	})
	e.mu.Unlock()
	if len(walData) > 0 {
		opts.Logf("node %v: recovered from %d WAL bytes", opts.Self, len(walData))
	}

	e.clientLn, err = stdnet.Listen("tcp", nc.ClientAddr)
	if err != nil {
		e.tr.Close()
		e.walFile.Close()
		e.traceFile.Close()
		return nil, fmt.Errorf("live: client listen: %w", err)
	}

	e.origin = time.Now()
	e.wg.Add(2)
	go e.pace()
	go e.acceptClients()
	return e, nil
}

// submit runs fn under the engine lock — the transport's delivery
// serialization hook.
func (e *Engine) submit(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-e.stop:
		return
	default:
	}
	fn()
}

// pace advances the simulator to track the wall clock: each tick runs the
// sim up to the total wall time elapsed since boot, so virtual time
// equals wall time regardless of tick jitter.
func (e *Engine) pace() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.mu.Lock()
			target := sim.Time(time.Since(e.origin))
			if d := time.Duration(target - e.sim.Now()); d > 0 {
				if err := e.sim.RunFor(d); err != nil {
					e.mu.Unlock()
					e.opts.Logf("node %v: sim error: %v", e.opts.Self, err)
					go e.Close()
					return
				}
			}
			e.traceW.Flush()
			e.mu.Unlock()
		}
	}
}

// onDeliver streams each local TO delivery to every client connection.
// Runs under mu (from the pacer or a submit).
func (e *Engine) onDeliver(d stack.Delivery) {
	line := fmt.Sprintf("D %d %s", int(d.From), string(d.Value))
	for cc := range e.conns {
		cc.push(line)
	}
}

func (e *Engine) acceptClients() {
	defer e.wg.Done()
	for {
		conn, err := e.clientLn.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		cc := &clientConn{conn: conn}
		cc.cond = sync.NewCond(&cc.mu)
		e.mu.Lock()
		e.conns[cc] = struct{}{}
		e.mu.Unlock()
		go cc.writeLoop()
		e.wg.Add(1)
		go e.serveClient(cc)
	}
}

// serveClient handles the line protocol: S <value> submits a broadcast
// (answered "BUSY <value>" when the backpressure bound rejects it),
// STATUS reports "ST <OK|STALLED> <pending> <delivered>" — STALLED means
// the node is not in an established primary component, so submissions
// queue without delivery — PING/PONG probes readiness, LPAUSE/LRESUME
// sever and restore the peer listener (the injector's channel fault),
// METRICS returns a one-line JSON snapshot, STOP shuts the daemon down.
func (e *Engine) serveClient(cc *clientConn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.conns, cc)
		e.mu.Unlock()
		cc.kill()
	}()
	sc := bufio.NewScanner(cc.conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "S":
			e.mu.Lock()
			ok := e.node.TryBcast(types.Value(rest))
			e.mu.Unlock()
			if !ok {
				cc.push("BUSY " + rest)
			}
		case "STATUS":
			e.mu.Lock()
			stalled := e.node.Stalled()
			pending := e.node.PendingBcasts()
			delivered := e.node.DeliveredCount()
			e.mu.Unlock()
			state := "OK"
			if stalled {
				state = "STALLED"
			}
			cc.push(fmt.Sprintf("ST %s %d %d", state, pending, delivered))
		case "PING":
			cc.push("PONG")
		case "LPAUSE":
			e.tr.PauseListener()
			cc.push("OK")
		case "LRESUME":
			if err := e.tr.ResumeListener(); err != nil {
				cc.push("ERR " + err.Error())
			} else {
				cc.push("OK")
			}
		case "METRICS":
			b, err := json.Marshal(e.reg.Snapshot())
			if err != nil {
				cc.push("ERR " + err.Error())
			} else {
				cc.push("M " + string(b))
			}
		case "STOP":
			cc.push("OK")
			go e.Close()
			return
		default:
			cc.push("ERR unknown command " + cmd)
		}
	}
}

// Close shuts the engine down: pacer stopped, transport drained, trace
// flushed, metrics written. Idempotent.
func (e *Engine) Close() error {
	e.stopOnce.Do(func() {
		close(e.stop)
		e.clientLn.Close()
		e.mu.Lock()
		for cc := range e.conns {
			cc.kill()
		}
		e.mu.Unlock()
		e.tr.Close() // drains queued frames to reachable peers

		e.mu.Lock()
		e.traceW.Flush()
		e.traceFile.Close()
		e.walFile.Close()
		if e.opts.MetricsPath != "" {
			if b, err := json.MarshalIndent(e.reg.Snapshot(), "", "  "); err == nil {
				os.WriteFile(e.opts.MetricsPath, append(b, '\n'), 0o644)
			}
		}
		e.mu.Unlock()
		e.wg.Wait()
		close(e.Stopped)
	})
	return nil
}

// Bcast submits a value at this node (in-process callers; clients use the
// line protocol).
func (e *Engine) Bcast(v types.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.node.Bcast(v)
}

// Deliveries snapshots everything delivered at this node so far.
func (e *Engine) Deliveries() []stack.Delivery {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]stack.Delivery(nil), e.node.Deliveries()...)
}

// ClientAddr returns the bound client/control address.
func (e *Engine) ClientAddr() string { return e.clientLn.Addr().String() }

// Metrics snapshots the engine's registry.
func (e *Engine) Metrics() *obs.Snapshot { return e.reg.Snapshot() }
