package live

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/experiments"
)

// ScenarioOptions configures one chaos-driven live scenario: a real
// N-process cluster under load while a generated fault schedule drives
// the process/socket injector.
type ScenarioOptions struct {
	Dir       string
	PgcsdPath string
	N         int
	Delta     time.Duration
	Seed      int64
	BasePort  int
	// Rate drives the loadgen for the whole scenario (window + settle).
	Rate int
	// Window is the fault schedule's active interval (default 12s). After
	// it the runner heals everything and lets the cluster settle under
	// continuing load before the graceful stop.
	Window time.Duration
	// Settle is the post-heal load interval (default 5s) — the traffic
	// that proves the healed cluster delivers again.
	Settle time.Duration
	// CheckpointBytes arms WAL compaction at every daemon (0 disables).
	CheckpointBytes int
	// MaxPending is the per-daemon TryBcast backpressure bound (default
	// 4096; quorum-loss scenarios rely on it so stalled daemons push
	// back instead of buffering without limit).
	MaxPending int
	// LossGrace is the primary-loss detector's per-epoch grace prefix
	// (default 750ms): survivors forming a minority view may legitimately
	// release already-ordered values for this long after loss onset.
	LossGrace time.Duration
	// RecoveryBound is the bounded-recovery gate: delivery must resume
	// within this long after the final heal (default 12s — inside
	// Settle + the loadgen drain, with ~2x headroom over the worst
	// observed re-formation: split-rejoin at n=10 resumes in ~6s
	// because the heal cascades through several pairwise view merges).
	RecoveryBound time.Duration
	// Profile / Arrival / OpenLoop select the loadgen shape (see
	// LoadOptions); empty strings mean uniform/steady.
	Profile  string
	Arrival  string
	OpenLoop bool
	Logf     func(string, ...any)
}

// ScenarioResult is one scenario's replayable artifact: the exact fault
// schedule that ran plus every check's verdict and the evidence the run
// was not vacuous.
type ScenarioResult struct {
	Scenario Scenario               `json:"scenario"`
	Entry    experiments.BenchEntry `json:"entry"`
	OrderLen int                    `json:"order_len"`
	// Injected counts executed actions per kind; InjectErrs lists
	// injection failures (an action against a node that died first is
	// recorded, not fatal).
	Injected   map[string]int `json:"injected"`
	InjectErrs []string       `json:"inject_errs,omitempty"`
	// Restarts counts post-boot incarnations summed over nodes.
	Restarts int `json:"restarts"`
	// StopErrs lists nodes whose graceful exit had to be escalated.
	StopErrs []string `json:"stop_errs,omitempty"`
	CheckOK  bool     `json:"check_ok"`
	CheckErr string   `json:"check_err,omitempty"`
	// RejoinOK is the per-node WAL/trace rejoin-safety verdict
	// (CheckRejoinWAL over every node's final WAL and incarnation
	// traces).
	RejoinOK  bool   `json:"rejoin_ok"`
	RejoinErr string `json:"rejoin_err,omitempty"`
	// BasePort is the port block the scenario actually ran on (the probe
	// may have advanced it past busy blocks).
	BasePort int `json:"base_port,omitempty"`

	// Quorum-loss gates (set only for QuorumLoss scenario kinds).
	// PrimaryLossOK is the inverted non-vacuity guard: delivery provably
	// flatlined cluster-wide during every loss epoch. RecoveryOK is the
	// bounded-recovery gate, with RecoveryMS the observed resumption
	// offset after the final heal (at HealMS). HardFailures counts
	// loadgen ops that exhausted their retry budget — zero on a passing
	// quorum-loss run; stalls must be attributed, not fatal.
	PrimaryLossOK  bool             `json:"primary_loss_ok,omitempty"`
	PrimaryLossErr string           `json:"primary_loss_err,omitempty"`
	RecoveryOK     bool             `json:"recovery_ok,omitempty"`
	RecoveryMS     int64            `json:"recovery_ms,omitempty"`
	RecoveryErr    string           `json:"recovery_err,omitempty"`
	HealMS         int64            `json:"heal_ms,omitempty"`
	HardFailures   int64            `json:"hard_failures,omitempty"`
	Samples        []DeliverySample `json:"samples,omitempty"`
}

// Passed reports whether every check held and the run was non-vacuous.
func (r *ScenarioResult) Passed() bool {
	if !r.CheckOK || !r.RejoinOK {
		return false
	}
	if r.Scenario.Kind.QuorumLoss() {
		return r.PrimaryLossOK && r.RecoveryOK && r.HardFailures == 0
	}
	return true
}

// RunScenario generates the scenario deterministically from (kind, Seed,
// N, Window), runs it against a fresh cluster in opts.Dir, and writes the
// artifact to <Dir>/scenario.json. The returned error covers
// infrastructure failures and check violations alike: nil means the
// cluster survived the schedule, the merged trace is a TO-machine trace,
// every restarted node rejoined against its WAL safely, and traffic
// actually flowed.
func RunScenario(kind ScenarioKind, opts ScenarioOptions) (*ScenarioResult, error) {
	if opts.Window <= 0 {
		opts.Window = 12 * time.Second
	}
	if opts.Settle <= 0 {
		opts.Settle = 5 * time.Second
	}
	if opts.BasePort <= 0 {
		opts.BasePort = 23600
	}
	if opts.Rate <= 0 {
		opts.Rate = 100
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 4096
	}
	if opts.LossGrace <= 0 {
		opts.LossGrace = 750 * time.Millisecond
	}
	if opts.RecoveryBound <= 0 {
		opts.RecoveryBound = 12 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sc, err := GenerateScenario(kind, opts.Seed, opts.N, opts.Window)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{Scenario: sc, Injected: make(map[string]int)}

	basePort, err := probeBasePort(opts.BasePort, opts.N, 8, string(kind))
	if err != nil {
		return nil, err
	}
	if basePort != opts.BasePort {
		logf("scenario %s: base port %d busy; using %d", kind, opts.BasePort, basePort)
	}
	res.BasePort = basePort

	cfg := makeConfig(opts.N, opts.Delta, opts.Seed, basePort)
	cl, err := newCluster(opts.Dir, opts.PgcsdPath, cfg, opts.CheckpointBytes, opts.MaxPending, logf)
	if err != nil {
		return nil, err
	}
	defer cl.killAll()
	if err := cl.spawnAll(); err != nil {
		return nil, err
	}
	if err := cl.readyAll(); err != nil {
		return nil, err
	}
	logf("scenario %s: %d nodes ready, %d actions over %v", kind, opts.N, len(sc.Actions), opts.Window)

	// Load runs for the whole scenario plus the settle tail; the injector
	// walks the schedule concurrently. Quorum-loss scenarios additionally
	// run the status sampler on the injector's clock: its wall-offset
	// samples are the evidence for the primary-loss and bounded-recovery
	// gates, which trace timestamps (per-incarnation sim time) cannot
	// provide.
	start := time.Now()
	var sampler *statusSampler
	if kind.QuorumLoss() {
		sampler = startStatusSampler(cl.clientAddrs(), start, 200*time.Millisecond, logf)
	}

	type loadOut struct {
		entry experiments.BenchEntry
		err   error
	}
	loadDone := make(chan loadOut, 1)
	go func() {
		entry, err := RunLoad(LoadOptions{
			Addrs:    cl.clientAddrs(),
			Rate:     opts.Rate,
			Duration: opts.Window + opts.Settle,
			RunID:    fmt.Sprintf("%s-s%d", kind, opts.Seed),
			Profile:  opts.Profile,
			Arrival:  opts.Arrival,
			OpenLoop: opts.OpenLoop,
			Seed:     opts.Seed,
			Logf:     logf,
		})
		loadDone <- loadOut{entry, err}
	}()

	injectErr := cl.inject(sc, start, res, logf)
	cl.healSweep(res, logf)
	// The final-heal instant anchors the recovery bound. Measuring it
	// when healSweep returns (not at the schedule's nominal end) absorbs
	// injection lag: a late heal only shortens the guarded interval,
	// never blames the cluster for the injector's delay.
	res.HealMS = time.Since(start).Milliseconds()
	logf("scenario %s: schedule done (%d actions), settling", kind, len(sc.Actions))

	load := <-loadDone
	if sampler != nil {
		res.Samples = sampler.stopAndSamples()
	}
	if load.err != nil {
		return nil, fmt.Errorf("live: loadgen: %w", load.err)
	}
	res.Entry = load.entry
	res.HardFailures = load.entry.Counters["loadgen.hard_failures"]
	if injectErr != nil {
		return nil, injectErr // unrecoverable injection failure (e.g. respawn)
	}

	for _, err := range cl.stopAll(10 * time.Second) {
		res.StopErrs = append(res.StopErrs, err.Error())
	}

	logs, err := cl.mergedLogs()
	if err != nil {
		return nil, err
	}
	chk, checkErr := CheckMergedTO(logs)
	res.OrderLen = chk.OrderLen()
	res.CheckOK = checkErr == nil
	if checkErr != nil {
		res.CheckErr = checkErr.Error()
	}

	res.RejoinOK = true
	for i := 0; i < opts.N; i++ {
		if err := CheckRejoinWAL(cl.walPath(i), cl.traceFiles(i)); err != nil {
			res.RejoinOK = false
			res.RejoinErr = err.Error()
			break
		}
	}

	cl.mu.Lock()
	for _, r := range cl.restarts {
		res.Restarts += r - 1
	}
	cl.mu.Unlock()

	// Quorum-loss gates. CheckPrimaryLoss doubles as the non-vacuity
	// guard for these kinds: the old quorum-alive guard is meaningless
	// here (the schedule deliberately destroys the quorum), and the
	// interesting property is the opposite one — delivery provably
	// flatlined while no primary could exist, then provably resumed
	// within the bound after the final heal.
	if kind.QuorumLoss() {
		lossErr := CheckPrimaryLoss(res.Samples, sc.LossEpochs, opts.LossGrace.Milliseconds())
		res.PrimaryLossOK = lossErr == nil
		if lossErr != nil {
			res.PrimaryLossErr = lossErr.Error()
		}
		resume, recErr := CheckBoundedRecovery(res.Samples, res.HealMS, opts.RecoveryBound.Milliseconds())
		res.RecoveryOK = recErr == nil
		res.RecoveryMS = resume
		if recErr != nil {
			res.RecoveryErr = recErr.Error()
		}
	}

	if b, err := json.MarshalIndent(res, "", "  "); err == nil {
		os.WriteFile(filepath.Join(opts.Dir, "scenario.json"), append(b, '\n'), 0o644)
	}

	if checkErr != nil {
		return res, fmt.Errorf("live: %s: TO conformance: %w", kind, checkErr)
	}
	if !res.RejoinOK {
		return res, fmt.Errorf("live: %s: rejoin safety: %s", kind, res.RejoinErr)
	}
	// Non-vacuity: traffic flowed, an order formed, faults actually
	// landed, and the kinds that promise restarts produced them.
	total := 0
	for _, c := range res.Injected {
		total += c
	}
	if res.Entry.Deliveries == 0 || res.OrderLen == 0 || total == 0 {
		return res, fmt.Errorf("live: %s: vacuous run: deliveries=%d order=%d injected=%d",
			kind, res.Entry.Deliveries, res.OrderLen, total)
	}
	switch kind {
	case KillWaves, LeaderKill, RollingRestart, MajorityKill, CascadingFailure:
		if res.Restarts == 0 {
			return res, fmt.Errorf("live: %s: vacuous run: no node ever restarted", kind)
		}
	}
	if kind.QuorumLoss() {
		if !res.PrimaryLossOK {
			return res, fmt.Errorf("live: %s: primary-loss guard: %s", kind, res.PrimaryLossErr)
		}
		if !res.RecoveryOK {
			return res, fmt.Errorf("live: %s: bounded recovery: %s", kind, res.RecoveryErr)
		}
		if res.HardFailures > 0 {
			return res, fmt.Errorf("live: %s: %d loadgen ops failed hard (retry budget exhausted); stalls must be attributed, not fatal",
				kind, res.HardFailures)
		}
	}
	return res, nil
}

// inject walks the schedule in time order against the live cluster.
// Per-action failures (a kill racing an already-dead process, a control
// connection to a paused node) are recorded in res and injection
// continues; only a failed respawn aborts, because the cluster can no
// longer reach the healed end state the checks assume.
func (cl *cluster) inject(sc Scenario, start time.Time, res *ScenarioResult, logf func(string, ...any)) error {
	actions := append([]Action(nil), sc.Actions...)
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].AtMS < actions[j].AtMS })
	for _, a := range actions {
		if d := time.Until(start.Add(time.Duration(a.AtMS) * time.Millisecond)); d > 0 {
			time.Sleep(d)
		}
		if err := cl.apply(a, logf); err != nil {
			if a.Kind == ActRestart || a.Kind == ActCycle {
				return fmt.Errorf("live: inject %s node %d: %w", a.Kind, a.Node, err)
			}
			res.InjectErrs = append(res.InjectErrs, fmt.Sprintf("%s node %d at %dms: %v", a.Kind, a.Node, a.AtMS, err))
			continue
		}
		res.Injected[string(a.Kind)]++
	}
	return nil
}

// apply executes one action.
func (cl *cluster) apply(a Action, logf func(string, ...any)) error {
	p := cl.proc(a.Node)
	switch a.Kind {
	case ActSigstop:
		logf("inject: SIGSTOP node %d", a.Node)
		return p.Pause()
	case ActSigcont:
		logf("inject: SIGCONT node %d", a.Node)
		return p.Resume()
	case ActSigkill:
		logf("inject: SIGKILL node %d", a.Node)
		return p.Kill()
	case ActRestart:
		if p != nil && !p.Exited() {
			return nil // node never died; nothing to revive
		}
		logf("inject: restart node %d", a.Node)
		return cl.spawn(a.Node)
	case ActLpause:
		logf("inject: LPAUSE node %d", a.Node)
		return cl.control(a.Node, (*Client).PauseListener)
	case ActLresume:
		logf("inject: LRESUME node %d", a.Node)
		return cl.control(a.Node, (*Client).ResumeListener)
	case ActCycle:
		logf("inject: cycle node %d", a.Node)
		if c, err := DialClient(cl.cfg.Nodes[a.Node].ClientAddr, 5*time.Second); err == nil {
			c.Stop()
			c.Close()
		}
		if err := p.WaitExit(10 * time.Second); err != nil {
			return err
		}
		return cl.spawn(a.Node)
	default:
		return fmt.Errorf("unknown action %q", a.Kind)
	}
}

// control runs one listener command over a short-lived client connection.
func (cl *cluster) control(id int, fn func(*Client) error) error {
	c, err := DialClient(cl.cfg.Nodes[id].ClientAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	return fn(c)
}

// healSweep forces the fully-healed end state the checks assume,
// regardless of what the schedule left behind: every process running
// (SIGCONT is a no-op on a running one, dead nodes are respawned) and
// every listener accepting. Errors against healthy nodes are expected
// (LRESUME on a never-paused listener is still OK; a redundant SIGCONT
// is too) and ignored; a failed respawn is counted so non-vacuity can
// catch a cluster that never fully healed.
func (cl *cluster) healSweep(res *ScenarioResult, logf func(string, ...any)) {
	for i := range cl.cfg.Nodes {
		p := cl.proc(i)
		if p == nil || p.Exited() {
			logf("heal: respawning node %d", i)
			if err := cl.spawn(i); err != nil {
				res.InjectErrs = append(res.InjectErrs, fmt.Sprintf("heal respawn node %d: %v", i, err))
			}
			continue
		}
		p.Resume()
	}
	for i := range cl.cfg.Nodes {
		cl.control(i, (*Client).ResumeListener)
	}
}

// MatrixOptions configures a full scenario-matrix run.
type MatrixOptions struct {
	Dir       string
	PgcsdPath string
	N         int
	Delta     time.Duration
	Seed      int64
	BasePort  int
	Rate      int
	Window    time.Duration
	Settle    time.Duration
	// CheckpointBytes arms WAL compaction in every scenario (0 disables).
	CheckpointBytes int
	// MaxPending / LossGrace / RecoveryBound pass through to every
	// scenario (see ScenarioOptions).
	MaxPending    int
	LossGrace     time.Duration
	RecoveryBound time.Duration
	// Kinds defaults to the full ScenarioKinds matrix.
	Kinds []ScenarioKind
	Logf  func(string, ...any)
}

// MatrixResult is the whole matrix's outcome.
type MatrixResult struct {
	Scenarios []*ScenarioResult `json:"scenarios"`
	// Failed names the scenarios whose run or checks failed.
	Failed []string `json:"failed,omitempty"`
}

// loadShapes rotates the loadgen profile across the matrix so every
// scenario family meets more than one traffic shape over the seeds.
var loadShapes = []struct {
	profile, arrival string
	open             bool
}{
	{"uniform", "steady", false},
	{"zipfian", "steady", false},
	{"uniform", "bursty", false},
	{"zipfian", "bursty", true},
}

// RunMatrix runs every scenario kind, each in its own subdirectory and
// port range, writing one replayable scenario.json artifact per scenario
// and matrix.json at the top. Scenarios run sequentially (each wants the
// machine to itself); a failing scenario doesn't stop the rest. The
// returned error summarizes the failures, if any.
func RunMatrix(opts MatrixOptions) (*MatrixResult, error) {
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = ScenarioKinds
	}
	if opts.BasePort <= 0 {
		// Below the kernel's ephemeral range (net.ipv4.ip_local_port_range,
		// 32768+ by default): an outbound dial must never be handed one of
		// our listen ports as its source port, or the daemon's bind fails
		// with EADDRINUSE.
		opts.BasePort = 23600
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	res := &MatrixResult{}
	for i, kind := range kinds {
		shape := loadShapes[i%len(loadShapes)]
		logf("=== scenario %d/%d: %s (load %s/%s) ===", i+1, len(kinds), kind, shape.profile, shape.arrival)
		sr, err := RunScenario(kind, ScenarioOptions{
			Dir:             filepath.Join(opts.Dir, string(kind)),
			PgcsdPath:       opts.PgcsdPath,
			N:               opts.N,
			Delta:           opts.Delta,
			Seed:            opts.Seed + int64(i),
			BasePort:        opts.BasePort + i*2*opts.N, // fresh ports: no TIME_WAIT collisions
			Rate:            opts.Rate,
			Window:          opts.Window,
			Settle:          opts.Settle,
			CheckpointBytes: opts.CheckpointBytes,
			MaxPending:      opts.MaxPending,
			LossGrace:       opts.LossGrace,
			RecoveryBound:   opts.RecoveryBound,
			Profile:         shape.profile,
			Arrival:         shape.arrival,
			OpenLoop:        shape.open,
			Logf:            logf,
		})
		if sr != nil {
			res.Scenarios = append(res.Scenarios, sr)
		}
		if err != nil {
			logf("scenario %s FAILED: %v", kind, err)
			res.Failed = append(res.Failed, fmt.Sprintf("%s: %v", kind, err))
		} else if kind.QuorumLoss() {
			logf("scenario %s ok: %d deliveries, order %d, %d restarts, %d loss epochs, recovery %dms after heal",
				kind, sr.Entry.Deliveries, sr.OrderLen, sr.Restarts, len(sr.Scenario.LossEpochs), sr.RecoveryMS)
		} else {
			logf("scenario %s ok: %d deliveries, order %d, %d restarts",
				kind, sr.Entry.Deliveries, sr.OrderLen, sr.Restarts)
		}
	}

	if b, err := json.MarshalIndent(res, "", "  "); err == nil {
		os.WriteFile(filepath.Join(opts.Dir, "matrix.json"), append(b, '\n'), 0o644)
	}
	if len(res.Failed) > 0 {
		return res, fmt.Errorf("live: %d/%d scenarios failed: %v", len(res.Failed), len(kinds), res.Failed)
	}
	return res, nil
}
