package live

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildPgcsd compiles the real daemon into a temp dir; the matrix runs
// actual processes, not in-process engines.
func buildPgcsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pgcsd")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/pgcsd").CombinedOutput()
	if err != nil {
		t.Fatalf("build pgcsd: %v\n%s", err, out)
	}
	return bin
}

// TestRunScenarioSmoke runs one real chaos scenario end to end: a
// 4-process cluster under load, link flapping from the generated
// schedule, WAL compaction armed, all checks on. This is the PR-gate
// slice of what CI's nightly matrix runs at 10 nodes across all kinds.
func TestRunScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real cluster for several seconds; skipped in -short mode")
	}
	bin := buildPgcsd(t)
	res, err := RunScenario(FlappingLinks, ScenarioOptions{
		Dir:             filepath.Join(t.TempDir(), "flapping-links"),
		PgcsdPath:       bin,
		N:               4,
		Seed:            1,
		BasePort:        23810,
		Rate:            60,
		Window:          3 * time.Second,
		Settle:          2 * time.Second,
		CheckpointBytes: 32 << 10,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("scenario failed: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("checks failed: check=%q rejoin=%q", res.CheckErr, res.RejoinErr)
	}
	if res.Entry.Deliveries == 0 || res.OrderLen == 0 {
		t.Fatalf("vacuous run: deliveries=%d order=%d", res.Entry.Deliveries, res.OrderLen)
	}
	if res.Injected[string(ActLpause)] == 0 {
		t.Fatalf("no link faults injected: %v", res.Injected)
	}
}

// TestRunScenarioRestartKind exercises the kill/restart injector path
// end to end (SIGKILL mid-load, WAL replay on respawn, rejoin-safety
// check across incarnation traces).
func TestRunScenarioRestartKind(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real cluster for several seconds; skipped in -short mode")
	}
	bin := buildPgcsd(t)
	res, err := RunScenario(KillWaves, ScenarioOptions{
		Dir:             filepath.Join(t.TempDir(), "kill-waves"),
		PgcsdPath:       bin,
		N:               4,
		Seed:            2,
		BasePort:        23830,
		Rate:            60,
		Window:          4 * time.Second,
		Settle:          3 * time.Second,
		CheckpointBytes: 32 << 10,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("scenario failed: %v", err)
	}
	if res.Restarts == 0 {
		t.Fatal("kill waves produced no restarts")
	}
}

func TestRunLoadRejectsUnknownShapes(t *testing.T) {
	if _, err := RunLoad(LoadOptions{Profile: "bogus"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := RunLoad(LoadOptions{Arrival: "sawtooth"}); err == nil {
		t.Error("unknown arrival accepted")
	}
}
