package live

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/props"
	"repro/internal/types"
)

// RunOptions configures an orchestrated live-cluster run: N daemon
// processes on localhost, a load-generation phase, an optional mid-run
// kill/restart of one node, and a final merged conformance check.
type RunOptions struct {
	// Dir receives everything the run produces: cluster config, WAL
	// files, per-incarnation trace files, daemon stdout logs, metric
	// snapshots, and the final report.json.
	Dir string
	// PgcsdPath is the compiled daemon binary.
	PgcsdPath string
	N         int
	Delta     time.Duration
	Seed      int64
	BasePort  int // first of 2N consecutive localhost ports (default 42600)
	// Rate and Duration drive the load phase (see LoadOptions).
	Rate     int
	Duration time.Duration
	// KillNode is SIGKILLed halfway through the load phase and restarted
	// RestartDelay later (default 2s), rejoining from its WAL file.
	// Negative disables the fault.
	KillNode     int
	RestartDelay time.Duration
	Logf         func(string, ...any)
}

// RunResult is the orchestrated run's outcome. CheckErr carries the
// conformance violation, if any — the run itself completing is not a
// pass.
type RunResult struct {
	Entry    experiments.BenchEntry `json:"entry"`
	OrderLen int                    `json:"order_len"`
	CheckOK  bool                   `json:"check_ok"`
	CheckErr string                 `json:"check_err,omitempty"`
}

// Run executes the full live pipeline and writes report.json into Dir.
// The returned error covers infrastructure failures AND conformance
// violations: a nil error means the cluster ran, delivered traffic, and
// the merged trace is a TO-machine trace.
func Run(opts RunOptions) (*RunResult, error) {
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 2 * time.Second
	}
	if opts.BasePort <= 0 {
		opts.BasePort = 42600
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}

	cfg := &Config{DeltaMS: int(opts.Delta / time.Millisecond), Seed: opts.Seed}
	if cfg.DeltaMS <= 0 {
		cfg.DeltaMS = 5
	}
	for i := 0; i < opts.N; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			ID:         i,
			Addr:       fmt.Sprintf("127.0.0.1:%d", opts.BasePort+2*i),
			ClientAddr: fmt.Sprintf("127.0.0.1:%d", opts.BasePort+2*i+1),
		})
	}
	cfgPath := filepath.Join(opts.Dir, "cluster.json")
	cfgBytes, _ := json.MarshalIndent(cfg, "", "  ")
	if err := os.WriteFile(cfgPath, cfgBytes, 0o644); err != nil {
		return nil, err
	}

	// Per-node spawn state: restart counter and the trace files every
	// incarnation wrote, in boot order.
	var mu sync.Mutex
	procs := make(map[int]*Proc, opts.N)
	restarts := make(map[int]int, opts.N)
	traces := make(map[int][]string, opts.N)

	spawn := func(id int) error {
		mu.Lock()
		defer mu.Unlock()
		r := restarts[id]
		trace := filepath.Join(opts.Dir, fmt.Sprintf("node%d.r%d.jsonl", id, r))
		stdout, err := os.Create(filepath.Join(opts.Dir, fmt.Sprintf("node%d.r%d.log", id, r)))
		if err != nil {
			return err
		}
		cmd := exec.Command(opts.PgcsdPath,
			"-config", cfgPath,
			"-id", fmt.Sprint(id),
			"-wal", filepath.Join(opts.Dir, fmt.Sprintf("node%d.wal", id)),
			"-trace", trace,
			"-metrics", filepath.Join(opts.Dir, fmt.Sprintf("node%d.r%d.metrics.json", id, r)),
		)
		cmd.Stdout = stdout
		cmd.Stderr = stdout
		if err := cmd.Start(); err != nil {
			stdout.Close()
			return err
		}
		procs[id] = &Proc{ID: types.ProcID(id), Cmd: cmd}
		traces[id] = append(traces[id], trace)
		restarts[id] = r + 1
		logf("node %d up (incarnation %d, pid %d)", id, r, cmd.Process.Pid)
		return nil
	}

	cleanup := func() {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range procs {
			p.Cmd.Process.Kill()
			p.Cmd.Wait()
		}
	}
	defer cleanup()

	for i := 0; i < opts.N; i++ {
		if err := spawn(i); err != nil {
			return nil, fmt.Errorf("live: spawn node %d: %w", i, err)
		}
	}

	// Readiness: every daemon's event loop answers a ping.
	for _, n := range cfg.Nodes {
		c, err := DialClient(n.ClientAddr, 30*time.Second)
		if err != nil {
			return nil, fmt.Errorf("live: node %d never came up: %w", n.ID, err)
		}
		err = c.Ping(10 * time.Second)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("live: node %d not ready: %w", n.ID, err)
		}
	}
	logf("all %d nodes ready", opts.N)

	// The mid-run fault: SIGKILL (amnesia — volatile state gone, WAL
	// intact) halfway through, restart after RestartDelay.
	faultDone := make(chan error, 1)
	if opts.KillNode >= 0 && opts.KillNode < opts.N {
		go func() {
			time.Sleep(opts.Duration / 2)
			mu.Lock()
			p := procs[opts.KillNode]
			mu.Unlock()
			logf("killing node %d", opts.KillNode)
			if err := p.Kill(); err != nil {
				faultDone <- err
				return
			}
			time.Sleep(opts.RestartDelay)
			logf("restarting node %d", opts.KillNode)
			faultDone <- spawn(opts.KillNode)
		}()
	} else {
		faultDone <- nil
	}

	addrs := make([]string, opts.N)
	for i, n := range cfg.Nodes {
		addrs[i] = n.ClientAddr
	}
	entry, err := RunLoad(LoadOptions{
		Addrs:    addrs,
		Rate:     opts.Rate,
		Duration: opts.Duration,
		RunID:    fmt.Sprintf("s%d", opts.Seed),
		Logf:     logf,
	})
	if err != nil {
		return nil, fmt.Errorf("live: loadgen: %w", err)
	}
	if err := <-faultDone; err != nil {
		return nil, fmt.Errorf("live: fault injection: %w", err)
	}

	// Graceful stop: daemons flush traces and write metric snapshots.
	for _, n := range cfg.Nodes {
		if c, err := DialClient(n.ClientAddr, 5*time.Second); err == nil {
			c.Stop()
			c.Close()
		}
	}
	mu.Lock()
	ps := make([]*Proc, 0, len(procs))
	for _, p := range procs {
		ps = append(ps, p)
	}
	mu.Unlock()
	for _, p := range ps {
		waitProc(p, 10*time.Second)
	}

	// Merge per-node logs and check TO conformance.
	logs := make(map[types.ProcID]*props.Log, opts.N)
	for i := 0; i < opts.N; i++ {
		mu.Lock()
		files := append([]string(nil), traces[i]...)
		mu.Unlock()
		lg, err := ReadTraceFiles(files...)
		if err != nil {
			return nil, fmt.Errorf("live: node %d trace: %w", i, err)
		}
		logs[types.ProcID(i)] = lg
	}
	chk, checkErr := CheckMergedTO(logs)

	res := &RunResult{Entry: entry, OrderLen: chk.OrderLen(), CheckOK: checkErr == nil}
	if checkErr != nil {
		res.CheckErr = checkErr.Error()
	}
	if b, err := json.MarshalIndent(res, "", "  "); err == nil {
		os.WriteFile(filepath.Join(opts.Dir, "report.json"), append(b, '\n'), 0o644)
	}
	if checkErr != nil {
		return res, fmt.Errorf("live: TO conformance: %w", checkErr)
	}
	if entry.Deliveries == 0 || chk.OrderLen() == 0 {
		return res, fmt.Errorf("live: vacuous run: %d deliveries, order length %d",
			entry.Deliveries, chk.OrderLen())
	}
	return res, nil
}

// waitProc reaps p, SIGKILLing if it outlives the timeout.
func waitProc(p *Proc, timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		p.Cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		p.Cmd.Process.Kill()
		<-done
	}
}
