package live

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

// RunOptions configures an orchestrated live-cluster run: N daemon
// processes on localhost, a load-generation phase, an optional mid-run
// kill/restart of one node, and a final merged conformance check.
type RunOptions struct {
	// Dir receives everything the run produces: cluster config, WAL
	// files, per-incarnation trace files, daemon stdout logs, metric
	// snapshots, and the final report.json.
	Dir string
	// PgcsdPath is the compiled daemon binary.
	PgcsdPath string
	N         int
	Delta     time.Duration
	Seed      int64
	BasePort  int // first of 2N consecutive localhost ports (default 23600, below the ephemeral range)
	// Rate and Duration drive the load phase (see LoadOptions).
	Rate     int
	Duration time.Duration
	// KillNode is SIGKILLed halfway through the load phase and restarted
	// RestartDelay later (default 2s), rejoining from its WAL file.
	// Negative disables the fault.
	KillNode     int
	RestartDelay time.Duration
	// CheckpointBytes arms WAL snapshot/compaction at every daemon
	// (0 disables).
	CheckpointBytes int
	// MaxPending passes the TryBcast backpressure bound to every daemon
	// (0 disables).
	MaxPending int
	Logf       func(string, ...any)
}

// RunResult is the orchestrated run's outcome. CheckErr carries the
// conformance violation, if any — the run itself completing is not a
// pass.
type RunResult struct {
	Entry    experiments.BenchEntry `json:"entry"`
	OrderLen int                    `json:"order_len"`
	CheckOK  bool                   `json:"check_ok"`
	CheckErr string                 `json:"check_err,omitempty"`
	// StopErrs lists nodes whose graceful exit had to be SIGKILLed —
	// tolerated (the merge reader handles torn trace tails) but surfaced.
	StopErrs []string `json:"stop_errs,omitempty"`
}

// Run executes the full live pipeline and writes report.json into Dir.
// The returned error covers infrastructure failures AND conformance
// violations: a nil error means the cluster ran, delivered traffic, and
// the merged trace is a TO-machine trace.
func Run(opts RunOptions) (*RunResult, error) {
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 2 * time.Second
	}
	if opts.BasePort <= 0 {
		opts.BasePort = 23600
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	basePort, err := probeBasePort(opts.BasePort, opts.N, 8, "single-run")
	if err != nil {
		return nil, err
	}
	if basePort != opts.BasePort {
		logf("base port %d busy; using %d", opts.BasePort, basePort)
	}
	cfg := makeConfig(opts.N, opts.Delta, opts.Seed, basePort)
	cl, err := newCluster(opts.Dir, opts.PgcsdPath, cfg, opts.CheckpointBytes, opts.MaxPending, logf)
	if err != nil {
		return nil, err
	}
	defer cl.killAll()
	if err := cl.spawnAll(); err != nil {
		return nil, err
	}
	if err := cl.readyAll(); err != nil {
		return nil, err
	}
	logf("all %d nodes ready", opts.N)

	// The mid-run fault: SIGKILL (amnesia — volatile state gone, WAL
	// intact) halfway through, restart after RestartDelay.
	faultDone := make(chan error, 1)
	if opts.KillNode >= 0 && opts.KillNode < opts.N {
		go func() {
			time.Sleep(opts.Duration / 2)
			logf("killing node %d", opts.KillNode)
			if err := cl.proc(opts.KillNode).Kill(); err != nil {
				faultDone <- err
				return
			}
			time.Sleep(opts.RestartDelay)
			logf("restarting node %d", opts.KillNode)
			faultDone <- cl.spawn(opts.KillNode)
		}()
	} else {
		faultDone <- nil
	}

	entry, err := RunLoad(LoadOptions{
		Addrs:    cl.clientAddrs(),
		Rate:     opts.Rate,
		Duration: opts.Duration,
		RunID:    fmt.Sprintf("s%d", opts.Seed),
		Logf:     logf,
	})
	if err != nil {
		return nil, fmt.Errorf("live: loadgen: %w", err)
	}
	if err := <-faultDone; err != nil {
		return nil, fmt.Errorf("live: fault injection: %w", err)
	}

	// Graceful stop: daemons flush traces and write metric snapshots. An
	// escalated exit is surfaced, not fatal.
	res := &RunResult{Entry: entry}
	for _, err := range cl.stopAll(10 * time.Second) {
		logf("stop: %v", err)
		res.StopErrs = append(res.StopErrs, err.Error())
	}

	// Merge per-node logs and check TO conformance.
	logs, err := cl.mergedLogs()
	if err != nil {
		return nil, err
	}
	chk, checkErr := CheckMergedTO(logs)

	res.OrderLen = chk.OrderLen()
	res.CheckOK = checkErr == nil
	if checkErr != nil {
		res.CheckErr = checkErr.Error()
	}
	if b, err := json.MarshalIndent(res, "", "  "); err == nil {
		os.WriteFile(filepath.Join(opts.Dir, "report.json"), append(b, '\n'), 0o644)
	}
	if checkErr != nil {
		return res, fmt.Errorf("live: TO conformance: %w", checkErr)
	}
	if entry.Deliveries == 0 || chk.OrderLen() == 0 {
		return res, fmt.Errorf("live: vacuous run: %d deliveries, order length %d",
			entry.Deliveries, chk.OrderLen())
	}
	return res, nil
}
