package live

import (
	"fmt"
	"sync"
	"time"
)

// This file is the live analogue of props.CheckRecoveryLiveness for the
// quorum-loss scenario families: while at least QuorumLossThreshold(n)
// nodes are simultaneously faulted no primary component can exist, so
// the total order cannot grow anywhere — no node's delivered prefix may
// exceed the pre-epoch cluster-wide high-water (CheckPrimaryLoss — the
// non-vacuity guard turned inside out: the interesting runs are the
// ones where ordering provably stopped); and once the final heal lands,
// a primary must re-form and the order must grow again within a
// configured bound (CheckBoundedRecovery — the paper's conditional
// liveness, timed against the wall clock).
//
// Evidence comes from live STATUS sampling, not from the traces: trace
// timestamps are per-incarnation simulated time and cannot be compared
// across restarts, while the sampler's wall clock is shared with the
// injector's schedule offsets.

// DeliverySample is one cluster-wide snapshot of per-node delivered
// counts, taken by the status sampler. Delivered[i] is -1 while node i
// is unreachable (dead, SIGSTOPped past the poll timeout, or between
// incarnations). Gen[i] increments every time the sampler's connection
// to node i is re-established; the checks compare prefix lengths (which
// are valid across reconnects and incarnations), but the generation is
// recorded in the artifact so a surprising count can be attributed to a
// redial — e.g. a SIGSTOPped daemon answering its queued STATUS backlog
// all at once on SIGCONT — when diagnosing a failed run offline.
type DeliverySample struct {
	AtMS      int64   `json:"at_ms"`
	Delivered []int64 `json:"delivered"`
	Gen       []int   `json:"gen"`
}

// highWaterBefore returns the largest delivered count observed at any
// node in any sample at or before cutMS. Delivered counts are prefix
// lengths of the one shared total order, so this is the length of the
// longest established prefix the sampler has evidence for by cutMS —
// comparable across nodes, reconnects, and incarnations alike.
func highWaterBefore(samples []DeliverySample, cutMS int64) int64 {
	var high int64
	for _, s := range samples {
		if s.AtMS > cutMS {
			break // samples are recorded in time order
		}
		for _, d := range s.Delivered {
			if d > high {
				high = d
			}
		}
	}
	return high
}

// CheckPrimaryLoss verifies that the total order did not grow during
// any loss epoch: inside an epoch's guarded interval (start+grace, end],
// no node's delivered count may exceed the cluster-wide high-water
// observed up to start+grace.
//
// The predicate is a high-water mark, not per-node flatlining, because
// the paper permits a non-primary component to keep *releasing* the
// established prefix: survivors exchange summaries on a view event and
// re-deliver values the lost primary had already ordered, restarted
// nodes re-report their replayed durable prefix, and a node whose
// WAL-gated release pipeline lags may drain pre-epoch confirmations
// well into the outage. All of that legitimate catch-up stays at or
// below the longest prefix some node already held — only extending the
// order requires a primary. The grace prefix folds boundary effects
// (injection lag, confirmations in flight when the fault lands) into
// the baseline rather than counting them as growth.
//
// This gate checks liveness semantics (no new ordering), not safety: a
// divergent minority order would show up as delivered counts, but it is
// the merged-trace TO conformance check that convicts it.
//
// Too few guarded samples make the run inconclusive, which is an error:
// the guard exists to prove the scenario genuinely exercised the
// no-primary regime, so "could not observe it" must not pass.
func CheckPrimaryLoss(samples []DeliverySample, epochs []Epoch, graceMS int64) error {
	if len(epochs) == 0 {
		return fmt.Errorf("primary-loss: no loss epochs in schedule")
	}
	guarded := 0
	for _, e := range epochs {
		lo := e.StartMS + graceMS
		high := highWaterBefore(samples, lo)
		for _, s := range samples {
			if s.AtMS <= lo || s.AtMS > e.EndMS {
				continue
			}
			guarded++
			for p, d := range s.Delivered {
				if d > high {
					return fmt.Errorf("primary-loss: node %d delivered %d values at %dms, past the pre-epoch high-water %d — the order grew during loss epoch [%d,%d]ms",
						p, d, s.AtMS, high, e.StartMS, e.EndMS)
				}
			}
		}
	}
	if guarded < 1 {
		return fmt.Errorf("primary-loss: inconclusive: no sample inside any guarded loss interval (%d samples, %d epochs, grace %dms)",
			len(samples), len(epochs), graceMS)
	}
	return nil
}

// CheckBoundedRecovery verifies the live conditional-liveness bound:
// after the final heal at healMS, some node's delivered count must
// exceed the pre-heal cluster-wide high-water — the order must actually
// grow, so a laggard draining its backlog or a restarted node
// re-reporting its replayed prefix does not count as recovery — no
// later than boundMS past the heal. It returns the observed resumption
// offset from healMS.
func CheckBoundedRecovery(samples []DeliverySample, healMS, boundMS int64) (int64, error) {
	high := highWaterBefore(samples, healMS)
	for _, s := range samples {
		if s.AtMS <= healMS {
			continue
		}
		for _, d := range s.Delivered {
			if d > high {
				resume := s.AtMS - healMS
				if resume > boundMS {
					return resume, fmt.Errorf("recovery: order growth resumed %dms after heal, bound %dms", resume, boundMS)
				}
				return resume, nil
			}
		}
	}
	return -1, fmt.Errorf("recovery: the order never grew past its pre-heal high-water %d after the heal at %dms (bound %dms, %d samples)",
		high, healMS, boundMS, len(samples))
}

// statusSampler polls every daemon's STATUS over dedicated client
// connections and accumulates cluster-wide DeliverySamples on a fixed
// wall-clock cadence (offsets relative to the injection start, the same
// clock the schedule's AtMS offsets run on).
type statusSampler struct {
	start    time.Time
	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup

	mu      sync.Mutex
	latest  []int64 // last delivered count per node, -1 if unreachable
	gen     []int   // connection generation per node
	samples []DeliverySample
}

// startStatusSampler begins polling. Offsets in the recorded samples are
// measured from start.
func startStatusSampler(addrs []string, start time.Time, interval time.Duration, logf func(string, ...any)) *statusSampler {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	sm := &statusSampler{
		start:    start,
		interval: interval,
		stop:     make(chan struct{}),
		latest:   make([]int64, len(addrs)),
		gen:      make([]int, len(addrs)),
	}
	for i := range sm.latest {
		sm.latest[i] = -1
	}
	for i, addr := range addrs {
		sm.wg.Add(1)
		go sm.pollNode(i, addr, logf)
	}
	sm.wg.Add(1)
	go sm.snapshotLoop()
	return sm
}

// pollNode keeps one node's latest count fresh. Any error — dial
// failure, reply timeout — marks the node unreachable, drops the
// connection, and redials under a new generation: a reply that was
// queued behind a timeout (a SIGSTOPped daemon answers everything at
// once on SIGCONT) must never be attributed to the old connection.
func (sm *statusSampler) pollNode(i int, addr string, logf func(string, ...any)) {
	defer sm.wg.Done()
	var c *Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for {
		select {
		case <-sm.stop:
			return
		default:
		}
		if c == nil {
			nc, err := DialClient(addr, sm.interval)
			if err != nil {
				// A dead node refuses instantly; pace the redial loop.
				sm.record(i, -1, false)
				select {
				case <-sm.stop:
					return
				case <-time.After(sm.interval):
				}
				continue
			}
			c = nc
			sm.record(i, -1, true) // fresh generation, no count yet
		}
		st, err := c.Status(sm.interval)
		if err != nil {
			c.Close()
			c = nil
			sm.record(i, -1, false)
			continue
		}
		sm.record(i, st.Delivered, false)
		select {
		case <-sm.stop:
			return
		case <-time.After(sm.interval):
		}
	}
}

func (sm *statusSampler) record(i int, delivered int64, newGen bool) {
	sm.mu.Lock()
	sm.latest[i] = delivered
	if newGen {
		sm.gen[i]++
	}
	sm.mu.Unlock()
}

func (sm *statusSampler) snapshotLoop() {
	defer sm.wg.Done()
	ticker := time.NewTicker(sm.interval)
	defer ticker.Stop()
	for {
		select {
		case <-sm.stop:
			return
		case <-ticker.C:
			sm.mu.Lock()
			s := DeliverySample{
				AtMS:      time.Since(sm.start).Milliseconds(),
				Delivered: append([]int64(nil), sm.latest...),
				Gen:       append([]int(nil), sm.gen...),
			}
			sm.samples = append(sm.samples, s)
			sm.mu.Unlock()
		}
	}
}

// stopAndSamples ends polling and returns everything recorded.
func (sm *statusSampler) stopAndSamples() []DeliverySample {
	close(sm.stop)
	sm.wg.Wait()
	return sm.samples
}
