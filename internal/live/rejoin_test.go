package live

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/props"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// rejoinFixture writes a WAL file with three durable deliveries and
// returns its path plus the three delivery events (as a trace template).
func rejoinFixture(t *testing.T) (walPath string, deliveries []props.Event) {
	t.Helper()
	s := sim.New(1)
	w := recovery.New(storage.New(s, 0))
	view := types.View{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(3)}
	vals := []struct {
		label types.Label
		from  types.ProcID
		seq   int
		val   types.Value
	}{
		{types.Label{ID: view.ID, Seqno: 1, Origin: 1}, 1, 1, "a"},
		{types.Label{ID: view.ID, Seqno: 2, Origin: 2}, 2, 1, "b"},
		{types.Label{ID: view.ID, Seqno: 3, Origin: 1}, 1, 2, "c"},
	}
	w.View(view, nil)
	for i, v := range vals {
		w.OrderAppend(v.label, v.val, nil)
		w.Deliver(i+1, v.label, v.from, v.seq, v.val, nil)
		deliveries = append(deliveries, props.Event{
			T: sim.Time(time.Duration(i+1) * time.Millisecond), Kind: props.TOBrcv,
			P: 0, From: v.from, Value: v.val, ValueSeq: v.seq,
		})
	}
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	walPath = filepath.Join(t.TempDir(), "node.wal")
	if err := os.WriteFile(walPath, w.Storage().Contents(), 0o644); err != nil {
		t.Fatal(err)
	}
	return walPath, deliveries
}

func writeTrace(t *testing.T, dir, name string, events []props.Event) string {
	t.Helper()
	lg := &props.Log{Events: events}
	var b strings.Builder
	if err := lg.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckRejoinWALAcceptsCleanRun(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	tr := writeTrace(t, dir, "r0.jsonl", ds)
	if err := CheckRejoinWAL(wal, []string{tr}); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
}

// A SIGKILL between the WAL write and the trace write leaves a delivery
// durable but untraced; the next incarnation's trace resumes after the
// gap. Both the boundary skip and a trailing WAL gap must be accepted.
func TestCheckRejoinWALAcceptsBoundaryGap(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	// Incarnation 0 traced only delivery 1; delivery 2 was durable but its
	// trace line was swallowed by the kill; incarnation 1 traced delivery 3.
	r0 := writeTrace(t, dir, "r0.jsonl", ds[:1])
	r1 := writeTrace(t, dir, "r1.jsonl", ds[2:])
	if err := CheckRejoinWAL(wal, []string{r0, r1}); err != nil {
		t.Fatalf("boundary gap rejected: %v", err)
	}
}

// Within one incarnation a gap is NOT allowed: a skipped delivery means
// the node's live stream diverged from its own durable order.
func TestCheckRejoinWALRejectsMidIncarnationSkip(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	tr := writeTrace(t, dir, "r0.jsonl", []props.Event{ds[0], ds[2]}) // skips ds[1]
	err := CheckRejoinWAL(wal, []string{tr})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("mid-incarnation skip accepted: %v", err)
	}
}

// A restarted node re-delivering something already delivered (amnesia
// recovery gone wrong) must be rejected at the boundary scan.
func TestCheckRejoinWALRejectsRedelivery(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	r0 := writeTrace(t, dir, "r0.jsonl", ds)
	r1 := writeTrace(t, dir, "r1.jsonl", ds[:1]) // delivers "a" again
	err := CheckRejoinWAL(wal, []string{r0, r1})
	if err == nil || !strings.Contains(err.Error(), "re-delivery or rewind") {
		t.Fatalf("re-delivery accepted: %v", err)
	}
}

// The first incarnation has no predecessor: its trace must start at WAL
// position 1, not scan forward.
func TestCheckRejoinWALFirstIncarnationAnchored(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	tr := writeTrace(t, dir, "r0.jsonl", ds[1:]) // starts at position 2
	if err := CheckRejoinWAL(wal, []string{tr}); err == nil {
		t.Fatal("first-incarnation gap accepted")
	}
}

// A value the WAL never recorded at all must fail, whichever incarnation
// it appears in.
func TestCheckRejoinWALRejectsPhantomDelivery(t *testing.T) {
	wal, ds := rejoinFixture(t)
	dir := filepath.Dir(wal)
	phantom := ds[0]
	phantom.Value = "never-ordered"
	phantom.ValueSeq = 9
	r0 := writeTrace(t, dir, "r0.jsonl", ds[:1])
	r1 := writeTrace(t, dir, "r1.jsonl", []props.Event{phantom})
	if err := CheckRejoinWAL(wal, []string{r0, r1}); err == nil {
		t.Fatal("phantom delivery accepted")
	}
}
