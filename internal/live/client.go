package live

import (
	"bufio"
	"fmt"
	stdnet "net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/types"
)

// DeliveryLine is one delivery streamed by a daemon to a client.
type DeliveryLine struct {
	From  types.ProcID
	Value string
}

// Client speaks the daemon's client/control line protocol. Submissions
// and control commands go out on one connection; a background reader
// splits the inbound stream into delivery lines and command replies.
type Client struct {
	conn stdnet.Conn

	wmu sync.Mutex // serializes writes

	deliveries chan DeliveryLine
	rejects    chan string // values bounced by backpressure (BUSY ...)
	replies    chan string // PONG / OK / ERR ... / M ... / ST ...

	closeOnce sync.Once
}

// NodeStatus is one daemon's STATUS reply: whether the node is stalled
// (not in an established primary component), its accepted-but-undelivered
// submission backlog, and its delivered count.
type NodeStatus struct {
	Stalled   bool
	Pending   int64
	Delivered int64
}

// DialClient connects to a daemon's client address, retrying until the
// timeout elapses (daemons come up asynchronously).
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := stdnet.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c := &Client{
				conn:       conn,
				deliveries: make(chan DeliveryLine, 1<<16),
				rejects:    make(chan string, 1<<12),
				replies:    make(chan string, 16),
			}
			go c.readLoop()
			return c, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("live: dial %s: %w", addr, lastErr)
}

func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "D "); ok {
			fromStr, value, _ := strings.Cut(rest, " ")
			from, err := strconv.Atoi(fromStr)
			if err != nil {
				continue
			}
			select {
			case c.deliveries <- DeliveryLine{From: types.ProcID(from), Value: value}:
			default: // consumer far behind: shed rather than stall the reader
			}
			continue
		}
		if value, ok := strings.CutPrefix(line, "BUSY "); ok {
			// Backpressure bounces ride their own channel: the replies
			// channel is small and drop-on-overflow, and a burst of BUSY
			// lines must neither displace command replies nor be lost to
			// the loadgen's retry accounting.
			select {
			case c.rejects <- value:
			default:
			}
			continue
		}
		select {
		case c.replies <- line:
		default:
		}
	}
	close(c.deliveries)
}

func (c *Client) send(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := fmt.Fprintf(c.conn, "%s\n", line)
	return err
}

// reply waits for the next command reply.
func (c *Client) reply(timeout time.Duration) (string, error) {
	select {
	case r := <-c.replies:
		return r, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("live: reply timeout")
	}
}

// Submit broadcasts a value at the daemon's node. Fire-and-forget: the
// delivery stream is the acknowledgement.
func (c *Client) Submit(value string) error { return c.send("S " + value) }

// Deliveries returns the channel of streamed deliveries. Closed when the
// connection drops.
func (c *Client) Deliveries() <-chan DeliveryLine { return c.deliveries }

// Rejects returns the channel of values the daemon bounced with BUSY
// (backpressure: the node's pending-submission bound was hit). A bounced
// value never entered the system, so retrying it verbatim is safe.
func (c *Client) Rejects() <-chan string { return c.rejects }

// Status round-trips a STATUS command: stalled/OK, pending backlog,
// delivered count. Non-ST replies arriving in between (stale PONGs, OKs)
// are consumed and skipped until the deadline.
func (c *Client) Status(timeout time.Duration) (NodeStatus, error) {
	if err := c.send("STATUS"); err != nil {
		return NodeStatus{}, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return NodeStatus{}, fmt.Errorf("live: status timeout")
		}
		r, err := c.reply(remain)
		if err != nil {
			return NodeStatus{}, err
		}
		rest, ok := strings.CutPrefix(r, "ST ")
		if !ok {
			continue
		}
		f := strings.Fields(rest)
		if len(f) != 3 {
			return NodeStatus{}, fmt.Errorf("live: status reply %q", r)
		}
		pending, err1 := strconv.ParseInt(f[1], 10, 64)
		delivered, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil {
			return NodeStatus{}, fmt.Errorf("live: status reply %q", r)
		}
		return NodeStatus{Stalled: f[0] == "STALLED", Pending: pending, Delivered: delivered}, nil
	}
}

// Ping round-trips a PING, confirming the daemon's event loop is live.
func (c *Client) Ping(timeout time.Duration) error {
	if err := c.send("PING"); err != nil {
		return err
	}
	r, err := c.reply(timeout)
	if err != nil {
		return err
	}
	if r != "PONG" {
		return fmt.Errorf("live: ping reply %q", r)
	}
	return nil
}

// PauseListener severs the daemon's inbound peer links (channel fault).
func (c *Client) PauseListener() error { return c.command("LPAUSE") }

// ResumeListener restores the daemon's peer listener.
func (c *Client) ResumeListener() error { return c.command("LRESUME") }

// Metrics fetches a JSON metrics snapshot from the daemon.
func (c *Client) Metrics(timeout time.Duration) (string, error) {
	if err := c.send("METRICS"); err != nil {
		return "", err
	}
	r, err := c.reply(timeout)
	if err != nil {
		return "", err
	}
	if rest, ok := strings.CutPrefix(r, "M "); ok {
		return rest, nil
	}
	return "", fmt.Errorf("live: metrics reply %q", r)
}

// Stop asks the daemon to shut down gracefully.
func (c *Client) Stop() error { return c.send("STOP") }

func (c *Client) command(cmd string) error {
	if err := c.send(cmd); err != nil {
		return err
	}
	r, err := c.reply(5 * time.Second)
	if err != nil {
		return err
	}
	if r != "OK" {
		return fmt.Errorf("live: %s reply %q", cmd, r)
	}
	return nil
}

// Close drops the connection.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.conn.Close() })
	return err
}
