package live

import (
	"reflect"
	"testing"
	"time"
)

func TestGenerateScenarioDeterministic(t *testing.T) {
	for _, kind := range ScenarioKinds {
		a, err := GenerateScenario(kind, 7, 10, 12*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := GenerateScenario(kind, 7, 10, 12*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different schedules", kind)
		}
		if kind == RollingRestart {
			continue // seed-free by design: one cycle per node, fixed spacing
		}
		c, err := GenerateScenario(kind, 8, 10, 12*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if reflect.DeepEqual(a.Actions, c.Actions) {
			t.Errorf("%s: seeds 7 and 8 generated identical schedules", kind)
		}
	}
}

// TestScenarioBudgetAndWindow replays every generated schedule as a
// fault-set simulation. Budgeted families: at no instant may more than
// (n-1)/2 nodes be faulted (the primary component must survive — the
// non-vacuity guarantee is by construction). Quorum-loss families invert
// that: at some instant at least QuorumLossThreshold(n) nodes must be
// faulted at once, and the recorded LossEpochs must match a replay of
// the actions. Both: every fault must be healed by the end, and every
// action must land strictly inside the window.
func TestScenarioBudgetAndWindow(t *testing.T) {
	for _, kind := range ScenarioKinds {
		for _, n := range []int{3, 5, 10} {
			for _, window := range []time.Duration{2 * time.Second, 5 * time.Second, 12 * time.Second} {
				for seed := int64(1); seed <= 5; seed++ {
					sc, err := GenerateScenario(kind, seed, n, window)
					if kind.QuorumLoss() && window < 4*time.Second {
						if err == nil {
							t.Errorf("%s w=%v: short window accepted for quorum-loss kind", kind, window)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%s n=%d w=%v seed=%d: %v", kind, n, window, seed, err)
					}
					if len(sc.Actions) == 0 {
						t.Errorf("%s n=%d w=%v seed=%d: empty schedule", kind, n, window, seed)
						continue
					}
					budget := (n - 1) / 2
					threshold := QuorumLossThreshold(n)
					peak := 0
					faulted := map[int]bool{}
					last := int64(0)
					for _, a := range sc.Actions {
						if a.AtMS < 0 || a.AtMS >= sc.WindowMS {
							t.Errorf("%s n=%d w=%v seed=%d: action at %dms outside [0, %d)",
								kind, n, window, seed, a.AtMS, sc.WindowMS)
						}
						if a.AtMS < last {
							t.Errorf("%s n=%d w=%v seed=%d: schedule not sorted", kind, n, window, seed)
						}
						last = a.AtMS
						if a.Node < 0 || a.Node >= n {
							t.Errorf("%s n=%d w=%v seed=%d: node %d out of range", kind, n, window, seed, a.Node)
						}
						switch a.Kind {
						case ActSigstop, ActSigkill, ActLpause:
							faulted[a.Node] = true
						case ActSigcont, ActRestart, ActLresume:
							delete(faulted, a.Node)
						case ActCycle:
							// Graceful in-place cycle: down and back within the
							// runner's bounded wait, never concurrent with another
							// cycle by construction (one per node, spaced).
						default:
							t.Fatalf("%s: unknown action kind %q", kind, a.Kind)
						}
						if len(faulted) > peak {
							peak = len(faulted)
						}
						if !kind.QuorumLoss() && len(faulted) > budget {
							t.Fatalf("%s n=%d w=%v seed=%d: %d nodes faulted at %dms, budget %d",
								kind, n, window, seed, len(faulted), a.AtMS, budget)
						}
					}
					if len(faulted) != 0 {
						t.Errorf("%s n=%d w=%v seed=%d: %d nodes still faulted at window end: %v",
							kind, n, window, seed, len(faulted), faulted)
					}
					if kind.QuorumLoss() {
						if peak < threshold {
							t.Errorf("%s n=%d w=%v seed=%d: peak %d faulted never reached quorum-loss threshold %d",
								kind, n, window, seed, peak, threshold)
						}
						if kind != TotalPartition && peak >= n {
							// TotalPartition alone faults everyone (a symmetric
							// partition into singletons); the kill-based families
							// always keep one survivor so restarts have a peer.
							t.Errorf("%s n=%d w=%v seed=%d: all %d nodes faulted at once (generators keep one survivor)",
								kind, n, window, seed, n)
						}
						if len(sc.LossEpochs) == 0 {
							t.Errorf("%s n=%d w=%v seed=%d: quorum-loss schedule with no loss epochs", kind, n, window, seed)
						}
						if want := ComputeLossEpochs(sc.Actions, n); !reflect.DeepEqual(sc.LossEpochs, want) {
							t.Errorf("%s n=%d w=%v seed=%d: LossEpochs %v != replay %v",
								kind, n, window, seed, sc.LossEpochs, want)
						}
						for _, ep := range sc.LossEpochs {
							if ep.StartMS < 0 || ep.EndMS > sc.WindowMS || ep.EndMS <= ep.StartMS {
								t.Errorf("%s n=%d w=%v seed=%d: malformed loss epoch %+v", kind, n, window, seed, ep)
							}
						}
					} else if len(sc.LossEpochs) != 0 {
						t.Errorf("%s n=%d w=%v seed=%d: budgeted schedule recorded loss epochs %v",
							kind, n, window, seed, sc.LossEpochs)
					}
				}
			}
		}
	}
}

func TestRollingRestartCyclesEveryNodeOnce(t *testing.T) {
	sc, err := GenerateScenario(RollingRestart, 1, 10, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, a := range sc.Actions {
		if a.Kind != ActCycle {
			t.Fatalf("rolling restart emitted %q", a.Kind)
		}
		seen[a.Node]++
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("node %d cycled %d times, want exactly once", i, seen[i])
		}
	}
}

func TestGenerateScenarioRejects(t *testing.T) {
	if _, err := GenerateScenario(StopWaves, 1, 2, 12*time.Second); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := GenerateScenario(StopWaves, 1, 5, time.Second); err == nil {
		t.Error("1s window accepted")
	}
	if _, err := GenerateScenario(ScenarioKind("bogus"), 1, 5, 12*time.Second); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseScenarioKind(t *testing.T) {
	for _, k := range ScenarioKinds {
		got, err := ParseScenarioKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseScenarioKind(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseScenarioKind("nope"); err == nil {
		t.Error("bad kind parsed")
	}
}
