package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// LoadOptions configures a load-generation run against a live cluster.
type LoadOptions struct {
	// Addrs are the client addresses of every node; submissions round-robin
	// across them and each connection's delivery stream is consumed.
	Addrs []string
	// Rate is the target submission rate across the cluster, per second.
	Rate int
	// Duration is the submission window; deliveries are consumed for up to
	// Drain longer (default 10s) while outstanding values land.
	Duration time.Duration
	Drain    time.Duration
	// RunID uniquifies values across runs (checker integrity relies on
	// value uniqueness).
	RunID string
	// MaxOutstanding caps submitted-but-undelivered values per connection
	// (closed-loop backpressure; default 256). When a connection is at its
	// cap the generator skips its turn rather than queueing unboundedly
	// into a partitioned or killed node.
	MaxOutstanding int
	// Profile picks which node each submission targets: "uniform"
	// (default) round-robins; "zipfian" skews toward low-index nodes
	// (rand.Zipf, s=1.2), concentrating load the way real clients pile
	// onto a few frontends — a skewed origin mix stresses the total-order
	// path differently than a uniform one.
	Profile string
	// Arrival shapes submission timing: "steady" (default) paces at Rate;
	// "bursty" alternates 500ms at 4×Rate with 1.5s of silence (same
	// average), hammering flow control and timer slack at the burst edges.
	Arrival string
	// OpenLoop disables the MaxOutstanding backpressure: submissions keep
	// coming at the arrival schedule regardless of delivery progress, the
	// way an open-loop client population would. Skips then only count dead
	// connections.
	OpenLoop bool
	// Seed fixes the profile's randomness (zipfian node choice). 0 means 1.
	Seed int64
	Logf  func(string, ...any)
}

// connSlot is one node's client connection; reconnects replace c.
type connSlot struct {
	addr string
	mu   sync.Mutex
	c    *Client

	outstanding atomic.Int64
	submitted   atomic.Int64
}

func (s *connSlot) client() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// RunLoad drives the cluster at the target rate and reports throughput
// and delivery latency in the benchmark baseline's entry shape. Delivery
// latency is measured closed-loop at the submitting connection: value
// submitted at node i, timestamp taken; first sighting of that value in
// node i's delivery stream closes the sample. A killed node's connection
// is redialed until the run ends, so a mid-run restart shows up as a
// latency tail rather than a generator failure.
func RunLoad(opts LoadOptions) (experiments.BenchEntry, error) {
	if opts.Rate <= 0 {
		opts.Rate = 100
	}
	if opts.Drain <= 0 {
		opts.Drain = 10 * time.Second
	}
	if opts.MaxOutstanding <= 0 {
		opts.MaxOutstanding = 256
	}
	if opts.Profile == "" {
		opts.Profile = "uniform"
	}
	if opts.Arrival == "" {
		opts.Arrival = "steady"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Node choice per submission slot.
	var pick func(seq int) int
	switch opts.Profile {
	case "uniform":
		pick = func(seq int) int { return seq % len(opts.Addrs) }
	case "zipfian":
		rng := rand.New(rand.NewSource(opts.Seed))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(opts.Addrs)-1))
		pick = func(int) int { return int(zipf.Uint64()) }
	default:
		return experiments.BenchEntry{}, fmt.Errorf("loadgen: unknown profile %q", opts.Profile)
	}

	// Submission schedule: offset from start for the seq'th submission.
	var schedule func(seq int) time.Duration
	switch opts.Arrival {
	case "steady":
		interval := time.Second / time.Duration(opts.Rate)
		schedule = func(seq int) time.Duration { return time.Duration(seq) * interval }
	case "bursty":
		// 2s cycle: all of the cycle's submissions land in the first
		// 500ms (4× the average rate), then 1.5s of silence.
		const cycle, burst = 2 * time.Second, 500 * time.Millisecond
		perCycle := opts.Rate * 2
		if perCycle < 1 {
			perCycle = 1
		}
		schedule = func(seq int) time.Duration {
			return time.Duration(seq/perCycle)*cycle +
				time.Duration(seq%perCycle)*(burst/time.Duration(perCycle))
		}
	default:
		return experiments.BenchEntry{}, fmt.Errorf("loadgen: unknown arrival %q", opts.Arrival)
	}

	var (
		submitTimes sync.Map // value → time.Time
		latency     = obs.New().Histogram("loadgen.delivery_latency")
		delivered   atomic.Int64 // delivery lines observed, all connections
		samples     atomic.Int64
		skips       atomic.Int64 // backpressure + dead-connection skips
		stop        = make(chan struct{})
		wg          sync.WaitGroup
	)

	slots := make([]*connSlot, len(opts.Addrs))
	for i, addr := range opts.Addrs {
		c, err := DialClient(addr, 30*time.Second)
		if err != nil {
			close(stop)
			return experiments.BenchEntry{}, err
		}
		if err := c.Ping(10 * time.Second); err != nil {
			close(stop)
			return experiments.BenchEntry{}, fmt.Errorf("node %d not ready: %w", i, err)
		}
		slots[i] = &connSlot{addr: addr, c: c}
	}

	// One consumer per node: counts every delivery, closes the latency
	// sample for values this generator submitted on the same connection,
	// and redials when the daemon dies mid-run.
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s *connSlot) {
			defer wg.Done()
			// Only values this generator submitted on this same connection
			// close a sample here: the value's g<i>- prefix names its origin,
			// so the latency measured is submit → delivery at the origin.
			mine := fmt.Sprintf("g%d-", i)
			for {
				c := s.client()
				for d := range c.Deliveries() {
					delivered.Add(1)
					if len(d.Value) >= len(mine) && d.Value[:len(mine)] == mine {
						if at, ok := submitTimes.LoadAndDelete(d.Value); ok {
							latency.Record(time.Since(at.(time.Time)))
							samples.Add(1)
							s.outstanding.Add(-1)
						}
					}
				}
				// Stream closed: daemon gone. Redial until it returns or
				// the run ends. Outstanding values at the dead node may
				// have been lost pre-durability; reset the cap so the
				// restarted node gets traffic again.
				s.outstanding.Store(0)
				select {
				case <-stop:
					return
				default:
				}
				logf("connection to %s lost; redialing", s.addr)
				c.Close()
				nc, err := DialClient(s.addr, 60*time.Second)
				if err != nil {
					logf("redial %s failed: %v", s.addr, err)
					return
				}
				s.mu.Lock()
				s.c = nc
				s.mu.Unlock()
				logf("reconnected to %s", s.addr)
			}
		}(i, s)
	}

	// Submission loop: profile picks the node, the arrival schedule paces,
	// and (closed-loop only) per-connection backpressure skips a full node.
	start := time.Now()
	deadline := start.Add(opts.Duration)
	seq := 0
	for time.Now().Before(deadline) {
		node := pick(seq)
		s := slots[node]
		if !opts.OpenLoop && s.outstanding.Load() >= int64(opts.MaxOutstanding) {
			skips.Add(1)
		} else {
			value := fmt.Sprintf("g%d-%d-%s", node, seq, opts.RunID)
			submitTimes.Store(value, time.Now())
			s.outstanding.Add(1)
			if err := s.client().Submit(value); err != nil {
				submitTimes.Delete(value)
				s.outstanding.Add(-1)
				skips.Add(1)
			} else {
				s.submitted.Add(1)
			}
		}
		seq++
		next := start.Add(schedule(seq))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	// Drain: wait for outstanding values, up to the drain budget. Values
	// submitted into a node that died pre-durability are permanently lost
	// (no client lives at a wiped processor) — that bounds the wait.
	drainDeadline := time.Now().Add(opts.Drain)
	for time.Now().Before(drainDeadline) {
		var out int64
		for _, s := range slots {
			out += s.outstanding.Load()
		}
		if out == 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	for _, s := range slots {
		s.client().Close()
	}
	wg.Wait()

	var totalSubmitted, lost int64
	for _, s := range slots {
		totalSubmitted += s.submitted.Load()
	}
	submitTimes.Range(func(any, any) bool { lost++; return true })
	elapsed := time.Since(start)

	entry := experiments.BenchEntry{
		Experiment:      "live",
		Scenario:        fmt.Sprintf("loadgen-n%d-rate%d-%s-%s", len(opts.Addrs), opts.Rate, opts.Profile, opts.Arrival),
		VirtualNS:       elapsed.Nanoseconds(), // wall time: live runs have no virtual clock
		Bcasts:          totalSubmitted,
		Deliveries:      delivered.Load(),
		DeliveryLatency: latency.Summary(),
		Counters: map[string]int64{
			"loadgen.submitted":       totalSubmitted,
			"loadgen.delivered_lines": delivered.Load(),
			"loadgen.latency_samples": samples.Load(),
			"loadgen.skips":           skips.Load(),
			"loadgen.unresolved":      lost,
		},
		Histograms: map[string]obs.HistogramSummary{
			"loadgen.delivery_latency": latency.Summary(),
		},
	}
	if secs := elapsed.Seconds(); secs > 0 {
		entry.DeliveriesPerSec = float64(entry.Deliveries) / secs
	}
	return entry, nil
}
