package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// LoadOptions configures a load-generation run against a live cluster.
type LoadOptions struct {
	// Addrs are the client addresses of every node; submissions round-robin
	// across them and each connection's delivery stream is consumed.
	Addrs []string
	// Rate is the target submission rate across the cluster, per second.
	Rate int
	// Duration is the submission window; deliveries are consumed for up to
	// Drain longer (default 10s) while outstanding values land.
	Duration time.Duration
	Drain    time.Duration
	// RunID uniquifies values across runs (checker integrity relies on
	// value uniqueness).
	RunID string
	// MaxOutstanding caps submitted-but-undelivered values per connection
	// (closed-loop backpressure; default 256). When a connection is at its
	// cap the generator skips its turn rather than queueing unboundedly
	// into a partitioned or killed node.
	MaxOutstanding int
	// Profile picks which node each submission targets: "uniform"
	// (default) round-robins; "zipfian" skews toward low-index nodes
	// (rand.Zipf, s=1.2), concentrating load the way real clients pile
	// onto a few frontends — a skewed origin mix stresses the total-order
	// path differently than a uniform one.
	Profile string
	// Arrival shapes submission timing: "steady" (default) paces at Rate;
	// "bursty" alternates 500ms at 4×Rate with 1.5s of silence (same
	// average), hammering flow control and timer slack at the burst edges.
	Arrival string
	// OpenLoop disables the MaxOutstanding backpressure: submissions keep
	// coming at the arrival schedule regardless of delivery progress, the
	// way an open-loop client population would. Skips then only count dead
	// connections.
	OpenLoop bool
	// OpTimeout reclassifies a submission still undelivered after this
	// long as stalled (default 5s): it stops holding a closed-loop
	// outstanding slot and its eventual delivery counts as a stalled
	// recovery instead of a latency sample. Quorum-loss epochs stall
	// every op cluster-wide; the attribution is what lets a passing run
	// distinguish "rode out a stall" from "failed".
	OpTimeout time.Duration
	// RetryBase/RetryMax/Retries shape the jittered exponential backoff
	// applied to submissions the daemon bounced with BUSY (backpressure)
	// or that failed to send (dead connection). Both cases are safe to
	// retry verbatim: a bounced value never entered the system, and a
	// failed write never left the client. An op is a hard failure only
	// when its retry budget is exhausted. Defaults: 100ms base, 2s cap,
	// 10 retries.
	RetryBase time.Duration
	RetryMax  time.Duration
	Retries   int
	// Seed fixes the profile's randomness (zipfian node choice, retry
	// jitter). 0 means 1.
	Seed int64
	Logf func(string, ...any)
}

// connSlot is one node's client connection; reconnects replace c.
type connSlot struct {
	addr string
	mu   sync.Mutex
	c    *Client

	outstanding atomic.Int64
	submitted   atomic.Int64
}

func (s *connSlot) client() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// opState tracks one submitted value from first send to resolution.
type opState struct {
	node     int
	firstAt  time.Time
	attempts int
	// stalled marks an op past OpTimeout: its outstanding slot has been
	// released and its delivery (if any) counts as a stalled recovery.
	stalled bool
}

// retryItem is one value awaiting resubmission after backoff.
type retryItem struct {
	value string
	node  int
	dueAt time.Time
}

// RunLoad drives the cluster at the target rate and reports throughput
// and delivery latency in the benchmark baseline's entry shape. Delivery
// latency is measured closed-loop at the submitting connection: value
// submitted at node i, timestamp taken; first sighting of that value in
// node i's delivery stream closes the sample. A killed node's connection
// is redialed until the run ends, so a mid-run restart shows up as a
// latency tail rather than a generator failure; a stalled (no-primary)
// cluster shows up as BUSY retries and stalled-op attribution rather
// than hard failures.
func RunLoad(opts LoadOptions) (experiments.BenchEntry, error) {
	if opts.Rate <= 0 {
		opts.Rate = 100
	}
	if opts.Drain <= 0 {
		opts.Drain = 10 * time.Second
	}
	if opts.MaxOutstanding <= 0 {
		opts.MaxOutstanding = 256
	}
	if opts.Profile == "" {
		opts.Profile = "uniform"
	}
	if opts.Arrival == "" {
		opts.Arrival = "steady"
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = 5 * time.Second
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 10
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Node choice per submission slot.
	var pick func(seq int) int
	switch opts.Profile {
	case "uniform":
		pick = func(seq int) int { return seq % len(opts.Addrs) }
	case "zipfian":
		rng := rand.New(rand.NewSource(opts.Seed))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(opts.Addrs)-1))
		pick = func(int) int { return int(zipf.Uint64()) }
	default:
		return experiments.BenchEntry{}, fmt.Errorf("loadgen: unknown profile %q", opts.Profile)
	}

	// Submission schedule: offset from start for the seq'th submission.
	var schedule func(seq int) time.Duration
	switch opts.Arrival {
	case "steady":
		interval := time.Second / time.Duration(opts.Rate)
		schedule = func(seq int) time.Duration { return time.Duration(seq) * interval }
	case "bursty":
		// 2s cycle: all of the cycle's submissions land in the first
		// 500ms (4× the average rate), then 1.5s of silence.
		const cycle, burst = 2 * time.Second, 500 * time.Millisecond
		perCycle := opts.Rate * 2
		if perCycle < 1 {
			perCycle = 1
		}
		schedule = func(seq int) time.Duration {
			return time.Duration(seq/perCycle)*cycle +
				time.Duration(seq%perCycle)*(burst/time.Duration(perCycle))
		}
	default:
		return experiments.BenchEntry{}, fmt.Errorf("loadgen: unknown arrival %q", opts.Arrival)
	}

	var (
		latency   = obs.New().Histogram("loadgen.delivery_latency")
		delivered atomic.Int64 // delivery lines observed, all connections
		samples   atomic.Int64
		skips     atomic.Int64 // backpressure + dead-connection skips

		rejected         atomic.Int64 // BUSY bounces observed
		retries          atomic.Int64 // resubmissions performed
		stalledOps       atomic.Int64 // ops reclassified past OpTimeout
		stalledRecovered atomic.Int64 // stalled ops that delivered anyway
		hardFailures     atomic.Int64 // retry budget exhausted

		stop = make(chan struct{})
		wg   sync.WaitGroup
	)

	slots := make([]*connSlot, len(opts.Addrs))
	for i, addr := range opts.Addrs {
		c, err := DialClient(addr, 30*time.Second)
		if err != nil {
			close(stop)
			return experiments.BenchEntry{}, err
		}
		if err := c.Ping(10 * time.Second); err != nil {
			close(stop)
			return experiments.BenchEntry{}, fmt.Errorf("node %d not ready: %w", i, err)
		}
		slots[i] = &connSlot{addr: addr, c: c}
	}

	// Op tracking and the retry queue, shared between the submission
	// loop, the consumers, and the timeout scanner.
	var (
		opsMu sync.Mutex
		ops   = make(map[string]*opState)
		queue []retryItem
		// jitter rng, guarded by opsMu (low-rate: retries only).
		rng = rand.New(rand.NewSource(opts.Seed + 0x10ad))
	)
	backoff := func(attempts int) time.Duration {
		d := opts.RetryBase << uint(attempts-1)
		if d > opts.RetryMax || d <= 0 {
			d = opts.RetryMax
		}
		// Jitter to 50–150%: a thousand clients bounced by the same
		// stall must not retry in lockstep.
		return d/2 + time.Duration(rng.Int63n(int64(d)))
	}
	// requeue schedules one more attempt for a value that never entered
	// the system, or declares it a hard failure. Caller holds opsMu.
	requeue := func(value string, st *opState) {
		st.attempts++
		if st.attempts > opts.Retries {
			hardFailures.Add(1)
			if !st.stalled {
				slots[st.node].outstanding.Add(-1)
			}
			delete(ops, value)
			return
		}
		queue = append(queue, retryItem{value: value, node: st.node, dueAt: time.Now().Add(backoff(st.attempts))})
	}

	// One consumer per node: counts every delivery, closes the latency
	// sample for values this generator submitted on the same connection,
	// routes BUSY bounces into the retry queue, and redials when the
	// daemon dies mid-run.
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s *connSlot) {
			defer wg.Done()
			// Only values this generator submitted on this same connection
			// close a sample here: the value's g<i>- prefix names its origin,
			// so the latency measured is submit → delivery at the origin.
			mine := fmt.Sprintf("g%d-", i)
			for {
				c := s.client()
				alive := true
				for alive {
					select {
					case d, ok := <-c.Deliveries():
						if !ok {
							alive = false
							break
						}
						delivered.Add(1)
						if len(d.Value) < len(mine) || d.Value[:len(mine)] != mine {
							break
						}
						opsMu.Lock()
						if st, ok := ops[d.Value]; ok {
							if st.stalled {
								stalledRecovered.Add(1)
							} else {
								latency.Record(time.Since(st.firstAt))
								samples.Add(1)
								s.outstanding.Add(-1)
							}
							delete(ops, d.Value)
						}
						opsMu.Unlock()
					case v := <-c.Rejects():
						rejected.Add(1)
						opsMu.Lock()
						if st, ok := ops[v]; ok {
							requeue(v, st)
						}
						opsMu.Unlock()
					}
				}
				// Stream closed: daemon gone. Redial until it returns or
				// the run ends. Outstanding values at the dead node may
				// have been lost pre-durability; reset the cap so the
				// restarted node gets traffic again.
				s.outstanding.Store(0)
				select {
				case <-stop:
					return
				default:
				}
				logf("connection to %s lost; redialing", s.addr)
				c.Close()
				nc, err := DialClient(s.addr, 60*time.Second)
				if err != nil {
					logf("redial %s failed: %v", s.addr, err)
					return
				}
				s.mu.Lock()
				s.c = nc
				s.mu.Unlock()
				logf("reconnected to %s", s.addr)
			}
		}(i, s)
	}

	// Timeout scanner: past OpTimeout an op stops holding its closed-loop
	// slot and is attributed as stalled — during a quorum-loss epoch this
	// is every op in flight, and it is precisely what lets the generator
	// keep probing a stalled cluster instead of wedging at MaxOutstanding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				now := time.Now()
				opsMu.Lock()
				for _, st := range ops {
					if !st.stalled && now.Sub(st.firstAt) > opts.OpTimeout {
						st.stalled = true
						stalledOps.Add(1)
						slots[st.node].outstanding.Add(-1)
					}
				}
				opsMu.Unlock()
			}
		}
	}()

	// sendValue submits (or resubmits) a tracked value; a send error
	// requeues it — the write never left the client, so the value is not
	// in the system and a verbatim retry is safe.
	sendValue := func(value string, node int, isRetry bool) {
		if err := slots[node].client().Submit(value); err != nil {
			opsMu.Lock()
			if st, ok := ops[value]; ok {
				requeue(value, st)
			}
			opsMu.Unlock()
			return
		}
		if isRetry {
			retries.Add(1)
		} else {
			slots[node].submitted.Add(1)
		}
	}
	// pumpRetries resubmits every due retry item.
	pumpRetries := func() {
		now := time.Now()
		opsMu.Lock()
		var due []retryItem
		kept := queue[:0]
		for _, it := range queue {
			if it.dueAt.Before(now) {
				due = append(due, it)
			} else {
				kept = append(kept, it)
			}
		}
		queue = kept
		opsMu.Unlock()
		for _, it := range due {
			sendValue(it.value, it.node, true)
		}
	}

	// Submission loop: profile picks the node, the arrival schedule paces,
	// and (closed-loop only) per-connection backpressure skips a full node.
	start := time.Now()
	deadline := start.Add(opts.Duration)
	seq := 0
	for time.Now().Before(deadline) {
		pumpRetries()
		node := pick(seq)
		s := slots[node]
		if !opts.OpenLoop && s.outstanding.Load() >= int64(opts.MaxOutstanding) {
			skips.Add(1)
		} else {
			value := fmt.Sprintf("g%d-%d-%s", node, seq, opts.RunID)
			opsMu.Lock()
			ops[value] = &opState{node: node, firstAt: time.Now()}
			opsMu.Unlock()
			s.outstanding.Add(1)
			sendValue(value, node, false)
		}
		seq++
		next := start.Add(schedule(seq))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	// Drain: keep pumping retries and wait for outstanding values, up to
	// the drain budget. Values submitted into a node that died
	// pre-durability are permanently lost (no client lives at a wiped
	// processor) — that bounds the wait.
	drainDeadline := time.Now().Add(opts.Drain)
	for time.Now().Before(drainDeadline) {
		pumpRetries()
		var out int64
		for _, s := range slots {
			out += s.outstanding.Load()
		}
		opsMu.Lock()
		queued := len(queue)
		opsMu.Unlock()
		if out <= 0 && queued == 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	for _, s := range slots {
		s.client().Close()
	}
	wg.Wait()

	var totalSubmitted, unresolved int64
	for _, s := range slots {
		totalSubmitted += s.submitted.Load()
	}
	opsMu.Lock()
	unresolved = int64(len(ops))
	opsMu.Unlock()
	elapsed := time.Since(start)

	entry := experiments.BenchEntry{
		Experiment:      "live",
		Scenario:        fmt.Sprintf("loadgen-n%d-rate%d-%s-%s", len(opts.Addrs), opts.Rate, opts.Profile, opts.Arrival),
		VirtualNS:       elapsed.Nanoseconds(), // wall time: live runs have no virtual clock
		Bcasts:          totalSubmitted,
		Deliveries:      delivered.Load(),
		DeliveryLatency: latency.Summary(),
		Counters: map[string]int64{
			"loadgen.submitted":         totalSubmitted,
			"loadgen.delivered_lines":   delivered.Load(),
			"loadgen.latency_samples":   samples.Load(),
			"loadgen.skips":             skips.Load(),
			"loadgen.unresolved":        unresolved,
			"loadgen.rejected":          rejected.Load(),
			"loadgen.retries":           retries.Load(),
			"loadgen.stalled_ops":       stalledOps.Load(),
			"loadgen.stalled_recovered": stalledRecovered.Load(),
			"loadgen.hard_failures":     hardFailures.Load(),
		},
		Histograms: map[string]obs.HistogramSummary{
			"loadgen.delivery_latency": latency.Summary(),
		},
	}
	if secs := elapsed.Seconds(); secs > 0 {
		entry.DeliveriesPerSec = float64(entry.Deliveries) / secs
	}
	return entry, nil
}
