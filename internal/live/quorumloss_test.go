package live

import (
	"strings"
	"testing"
)

// sampleRow is one DeliverySample in shorthand: a nil gen means one
// connection generation throughout.
type sampleRow struct {
	at  int64
	d   []int64
	gen []int
}

func mkSamples(rows []sampleRow) []DeliverySample {
	out := make([]DeliverySample, len(rows))
	for i, r := range rows {
		gen := r.gen
		if gen == nil {
			gen = make([]int, len(r.d))
		}
		out[i] = DeliverySample{AtMS: r.at, Delivered: r.d, Gen: gen}
	}
	return out
}

func TestCheckPrimaryLoss(t *testing.T) {
	epochs := []Epoch{{StartMS: 1000, EndMS: 3000}}
	const grace = 500 // guarded interval: (1500, 3000]

	cases := []struct {
		name    string
		samples []sampleRow
		epochs  []Epoch
		wantErr string // substring; "" = pass
	}{
		{
			name: "flatline passes",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}},
				{at: 1800, d: []int64{10, 12, -1}},
				{at: 2000, d: []int64{10, 12, -1}},
			},
			epochs: epochs,
		},
		{
			name: "order growth past the high-water fails",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}},
				{at: 1800, d: []int64{10, 13, -1}},
			},
			epochs:  epochs,
			wantErr: "past the pre-epoch high-water 12",
		},
		{
			name: "catch-up release below the high-water passes",
			// Node 0 drains its lagging release pipeline up to the longest
			// pre-epoch prefix (12) during the outage — the paper permits
			// releasing the established order, only extending it needs a
			// primary. This is the split-rejoin shape that must not trip.
			samples: []sampleRow{
				{at: 800, d: []int64{5, 12, 11}},
				{at: 1800, d: []int64{8, 12, -1}},
				{at: 2000, d: []int64{12, 12, -1}},
			},
			epochs: epochs,
		},
		{
			name: "growth inside the grace prefix raises the baseline",
			samples: []sampleRow{
				{at: 1100, d: []int64{10, 12, 9}},
				{at: 1400, d: []int64{10, 15, 9}}, // in-flight confirms land pre-guard
				{at: 1700, d: []int64{10, 15, 9}},
				{at: 1900, d: []int64{12, 15, 9}}, // catch-up to 15 stays legal
			},
			epochs: epochs,
		},
		{
			name: "growth after epoch end passes",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}},
				{at: 1600, d: []int64{10, 12, -1}},
				{at: 1900, d: []int64{10, 12, -1}},
				{at: 3300, d: []int64{14, 16, 8}}, // recovery, outside the epoch
			},
			epochs: epochs,
		},
		{
			name: "restart re-report below high-water passes across gens",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}, gen: []int{1, 1, 1}},
				{at: 1600, d: []int64{10, 12, -1}, gen: []int{1, 1, 1}},
				{at: 1800, d: []int64{10, 12, 7}, gen: []int{1, 1, 2}}, // replayed prefix
				{at: 2000, d: []int64{10, 12, 7}, gen: []int{1, 1, 2}},
			},
			epochs: epochs,
		},
		{
			name: "restarted node growing past high-water fails",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}, gen: []int{1, 1, 1}},
				{at: 1800, d: []int64{10, 12, 7}, gen: []int{1, 1, 2}},
				{at: 2000, d: []int64{10, 12, 14}, gen: []int{1, 1, 2}},
			},
			epochs:  epochs,
			wantErr: "past the pre-epoch high-water 12",
		},
		{
			name: "no guarded sample is inconclusive",
			samples: []sampleRow{
				{at: 200, d: []int64{1, 2, 3}},
				{at: 400, d: []int64{2, 3, 4}},
				{at: 3500, d: []int64{5, 6, 7}},
			},
			epochs:  epochs,
			wantErr: "inconclusive",
		},
		{
			name: "no epochs is an error",
			samples: []sampleRow{
				{at: 1600, d: []int64{10}},
				{at: 1800, d: []int64{10}},
			},
			epochs:  nil,
			wantErr: "no loss epochs",
		},
		{
			name: "unreachable cluster never violates",
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}},
				{at: 1600, d: []int64{-1, -1, -1}},
				{at: 1800, d: []int64{-1, -1, -1}},
			},
			epochs: epochs,
		},
		{
			name: "second epoch gets its own baseline",
			// Ordering between the epochs (the healed interlude) raises the
			// high-water for the second epoch but not the first.
			samples: []sampleRow{
				{at: 800, d: []int64{10, 12, 11}},
				{at: 1800, d: []int64{12, 12, 11}},
				{at: 3500, d: []int64{40, 41, 39}}, // healed: order grows freely
				{at: 4800, d: []int64{41, 41, 41}},
				{at: 5000, d: []int64{41, 41, 41}},
			},
			epochs: []Epoch{{StartMS: 1000, EndMS: 3000}, {StartMS: 4000, EndMS: 5500}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckPrimaryLoss(mkSamples(tc.samples), tc.epochs, grace)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestCheckBoundedRecovery(t *testing.T) {
	const heal, bound = 5000, 2000

	cases := []struct {
		name       string
		samples    []sampleRow
		wantResume int64
		wantErr    string
	}{
		{
			name: "immediate growth passes",
			samples: []sampleRow{
				{at: 4900, d: []int64{10, 10}},
				{at: 5200, d: []int64{11, 10}},
			},
			wantResume: 200,
		},
		{
			name: "growth exactly at bound passes",
			samples: []sampleRow{
				{at: 4900, d: []int64{10, 10}},
				{at: 7000, d: []int64{10, 12}},
			},
			wantResume: 2000,
		},
		{
			name: "growth past bound fails",
			samples: []sampleRow{
				{at: 4900, d: []int64{10, 10}},
				{at: 7000, d: []int64{10, 10}},
				{at: 7400, d: []int64{11, 10}},
			},
			wantResume: 2400,
			wantErr:    "bound 2000ms",
		},
		{
			name: "never grows fails",
			samples: []sampleRow{
				{at: 4900, d: []int64{10, 10}},
				{at: 5600, d: []int64{10, 10}},
				{at: 6000, d: []int64{10, 10}},
			},
			wantResume: -1,
			wantErr:    "never grew",
		},
		{
			name: "catch-up to the pre-heal high-water is not recovery",
			// Node 1 drains its backlog up to node 0's pre-heal prefix; the
			// order itself never grows.
			samples: []sampleRow{
				{at: 4900, d: []int64{10, 4}},
				{at: 5600, d: []int64{10, 8}},
				{at: 6000, d: []int64{10, 10}},
			},
			wantResume: -1,
			wantErr:    "never grew",
		},
		{
			name: "replayed prefix re-report is not recovery",
			samples: []sampleRow{
				{at: 4900, d: []int64{10, -1}, gen: []int{1, 1}},
				{at: 5600, d: []int64{10, 8}, gen: []int{1, 2}}, // WAL replay re-report
				{at: 6000, d: []int64{10, 8}, gen: []int{1, 2}},
			},
			wantResume: -1,
			wantErr:    "never grew",
		},
		{
			name: "pre-heal growth only raises the baseline",
			samples: []sampleRow{
				{at: 4000, d: []int64{5, 5}},
				{at: 4400, d: []int64{9, 9}}, // before the final heal: not recovery
				{at: 5400, d: []int64{9, 9}},
				{at: 5800, d: []int64{10, 9}}, // first growth past 9 after the heal
			},
			wantResume: 800,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resume, err := CheckBoundedRecovery(mkSamples(tc.samples), heal, bound)
			if resume != tc.wantResume {
				t.Errorf("resume = %d, want %d", resume, tc.wantResume)
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}
