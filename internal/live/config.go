// Package live deploys the TO stack as real processes on real sockets:
// the pgcsd daemon engine (one full processor stack paced against the
// wall clock over the TCP transport), the line-protocol client the load
// generator speaks, per-node delivery-log merging with offline TO
// conformance checking, and process-level fault injection for the CI
// live-cluster pipeline.
//
// The split of responsibilities with the rest of the repository: the
// protocol itself still runs on the deterministic simulator (the daemon
// advances it in step with the wall clock, exactly like
// internal/runtime), internal/transport carries the packets, and the
// stack's WAL mirrors to a real file so a killed-and-restarted daemon
// rejoins through the ordinary amnesia-recovery path.
package live

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/types"
)

// NodeConfig is one processor's addressing.
type NodeConfig struct {
	ID int `json:"id"`
	// Addr is the peer-to-peer transport listen address.
	Addr string `json:"addr"`
	// ClientAddr is the client/control listen address (the loadgen and the
	// orchestrator speak the line protocol of client.go here).
	ClientAddr string `json:"client_addr"`
}

// Config is the JSON cluster configuration every daemon and the load
// generator share.
type Config struct {
	// DeltaMS is the paper's δ in milliseconds. Live timers derive from it
	// exactly as simulated ones do; it must generously cover real network
	// latency plus the daemon's pacer granularity (localhost: 5 is ample).
	DeltaMS int `json:"delta_ms"`
	// Seed seeds each daemon's simulator (per-node offset added). Live
	// runs are not deterministic — the wall clock and the kernel
	// scheduler see to that — but a recorded seed keeps the protocol's
	// internal randomness reproducible per node.
	Seed  int64        `json:"seed"`
	Nodes []NodeConfig `json:"nodes"`
	// P0 lists the processors in the initial view; empty means all.
	P0 []int `json:"p0,omitempty"`
}

// LoadConfig reads and validates a cluster config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("live: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("live: %s: %w", path, err)
	}
	return &c, nil
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("no nodes")
	}
	if c.DeltaMS <= 0 {
		return fmt.Errorf("delta_ms must be positive")
	}
	seen := map[int]bool{}
	for _, n := range c.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		if n.Addr == "" || n.ClientAddr == "" {
			return fmt.Errorf("node %d: addr and client_addr are required", n.ID)
		}
	}
	for _, p := range c.P0 {
		if !seen[p] {
			return fmt.Errorf("p0 member %d is not a node", p)
		}
	}
	return nil
}

// Delta returns δ as a duration.
func (c *Config) Delta() time.Duration { return time.Duration(c.DeltaMS) * time.Millisecond }

// Universe returns the processor set of all nodes.
func (c *Config) Universe() types.ProcSet {
	ids := make([]types.ProcID, len(c.Nodes))
	for i, n := range c.Nodes {
		ids[i] = types.ProcID(n.ID)
	}
	return types.NewProcSet(ids...)
}

// P0Set returns the initial view's membership (all nodes when P0 is
// empty).
func (c *Config) P0Set() types.ProcSet {
	if len(c.P0) == 0 {
		return c.Universe()
	}
	ids := make([]types.ProcID, len(c.P0))
	for i, p := range c.P0 {
		ids[i] = types.ProcID(p)
	}
	return types.NewProcSet(ids...)
}

// Node returns the config entry for p.
func (c *Config) Node(p types.ProcID) (NodeConfig, bool) {
	for _, n := range c.Nodes {
		if types.ProcID(n.ID) == p {
			return n, true
		}
	}
	return NodeConfig{}, false
}

// Addrs returns the transport address map the TCP transport consumes.
func (c *Config) Addrs() map[types.ProcID]string {
	m := make(map[types.ProcID]string, len(c.Nodes))
	for _, n := range c.Nodes {
		m[types.ProcID(n.ID)] = n.Addr
	}
	return m
}
