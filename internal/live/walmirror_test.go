package live

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// walImage builds a small valid WAL image (via a real WAL on a
// zero-latency simulated device) and the offset of its last record.
func walImage(t *testing.T) (img []byte, lastRec int) {
	t.Helper()
	s := sim.New(1)
	w := recovery.New(storage.New(s, 0))
	view := types.View{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(3)}
	la := types.Label{ID: view.ID, Seqno: 1, Origin: 1}
	w.View(view, nil)
	w.Establish([]types.Label{la}, 1, view.ID, nil)
	w.Bcast(1, "a", nil)
	w.Label(1, la, "a", nil)
	lastRec = w.EndOffset()
	w.Deliver(1, la, 1, 1, "a", nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	return w.Storage().Contents(), lastRec
}

func TestOpenWALMirrorDiscardsTornTail(t *testing.T) {
	img, lastRec := walImage(t)
	path := filepath.Join(t.TempDir(), "node.wal")
	// Tear the final record: keep its header plus part of the payload,
	// then add garbage the next boot must never append after.
	torn := append(append([]byte(nil), img[:lastRec+10]...), "garbage"...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	data, m, err := openWALMirror(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(data, img[:lastRec]) {
		t.Fatalf("retained %d bytes, want the clean prefix of %d", len(data), lastRec)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, img[:lastRec]) {
		t.Fatalf("file holds %d bytes, want physical truncation to %d", len(onDisk), lastRec)
	}
	// Appends land right after the retained prefix: the next replay reads
	// them (bytes after a tear would have been dead).
	if _, err := m.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	onDisk, _ = os.ReadFile(path)
	if len(onDisk) != lastRec+2 {
		t.Fatalf("file is %d bytes after append, want %d", len(onDisk), lastRec+2)
	}
}

func TestOpenWALMirrorFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	data, m, err := openWALMirror(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(data) != 0 {
		t.Fatalf("fresh file returned %d bytes", len(data))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file not created: %v", err)
	}
}

func TestWALMirrorTruncatePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	_, m, err := openWALMirror(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Write([]byte("aaaabbbb")); err != nil {
		t.Fatal(err)
	}
	if err := m.TruncatePrefix(4); err != nil {
		t.Fatal(err)
	}
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, []byte("bbbb")) {
		t.Fatalf("file = %q, want the suffix", onDisk)
	}
	// At or below origin: no-op. Beyond the end: refused.
	if err := m.TruncatePrefix(2); err != nil {
		t.Fatalf("no-op truncation errored: %v", err)
	}
	if err := m.TruncatePrefix(100); err == nil {
		t.Fatal("truncation beyond the end accepted")
	}
	// The append handle survives the rename; offsets stay logical.
	if _, err := m.Write([]byte("cc")); err != nil {
		t.Fatal(err)
	}
	if err := m.TruncatePrefix(8); err != nil {
		t.Fatal(err)
	}
	onDisk, _ = os.ReadFile(path)
	if !bytes.Equal(onDisk, []byte("cc")) {
		t.Fatalf("file = %q after second truncation, want %q", onDisk, "cc")
	}
	// No half-rewritten temp file left behind.
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("compact temp file left behind: %v", err)
	}
}

// The full loop a live node runs: a WAL over a mirrored device,
// compaction armed; after checkpoints truncate the prefix, a fresh boot
// over the file must replay to a valid snapshot whose head is a
// checkpoint.
func TestWALMirrorCompactionSurvivesReboot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	_, m, err := openWALMirror(path)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	st := storage.New(s, 0)
	st.Mirror = m
	w := recovery.New(st)
	w.SetCompact(true)
	view := types.View{ID: types.ViewID{Epoch: 2, Proc: 1}, Set: types.RangeProcSet(3)}
	la := types.Label{ID: view.ID, Seqno: 1, Origin: 1}
	lb := types.Label{ID: view.ID, Seqno: 2, Origin: 2}
	w.View(view, nil)
	w.Establish([]types.Label{la}, 1, view.ID, nil)
	cs := recovery.CheckpointState{
		HasView: true, View: view,
		Order:       []types.Label{la},
		Content:     map[types.Label]types.Value{la: "a"},
		NextConfirm: 2, HighPrimary: view.ID, DeliveredCount: 1,
		Incarnations: 1,
	}
	c1 := w.EndOffset()
	w.Checkpoint(cs, nil)
	w.OrderAppend(lb, "b", nil)
	cs2 := cs
	cs2.Order = []types.Label{la, lb}
	cs2.Content = map[types.Label]types.Value{la: "a", lb: "b"}
	w.Checkpoint(cs2, nil)
	if err := s.Run(s.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Base() != c1 {
		t.Fatalf("device Base = %d, want compaction at %d", st.Base(), c1)
	}
	onDisk, _ := os.ReadFile(path)
	if len(onDisk) != st.Size() {
		t.Fatalf("file %d bytes, device %d: mirror diverged", len(onDisk), st.Size())
	}

	// Reboot: the retained file must open clean and replay from the first
	// checkpoint through the second.
	data, m2, err := openWALMirror(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	snap := recovery.Replay(data)
	if snap.Truncated != "" {
		t.Fatalf("rebooted replay truncated: %s", snap.Truncated)
	}
	if snap.Checkpoints != 2 || len(snap.Order) != 2 {
		t.Errorf("rebooted replay: checkpoints=%d order=%v", snap.Checkpoints, snap.Order)
	}
	// Two-generation discipline: the head of the retained log is itself a
	// valid checkpoint (the older of the two).
	if snap.PrevCheckpointAt != 0 {
		t.Errorf("retained log's first checkpoint at %d, want the head (0)", snap.PrevCheckpointAt)
	}
}
