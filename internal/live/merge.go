package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/check"
	"repro/internal/props"
	"repro/internal/types"
)

// ReadTraceFiles reads one node's trace across its incarnation files, in
// boot order, into a single log. A torn final line (the write a SIGKILL
// interrupted) is dropped; invalid JSON anywhere else is an error,
// because per-incarnation files guarantee tearing only ever happens at a
// file's end.
func ReadTraceFiles(files ...string) (*props.Log, error) {
	var buf bytes.Buffer
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		clean, err := sanitizeJSONL(f, data)
		if err != nil {
			return nil, err
		}
		buf.Write(clean)
		if len(clean) > 0 && clean[len(clean)-1] != '\n' {
			buf.WriteByte('\n')
		}
	}
	return props.ReadJSONL(&buf)
}

// sanitizeJSONL drops a torn trailing line; any other invalid line is an
// error.
func sanitizeJSONL(name string, data []byte) ([]byte, error) {
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if json.Valid(line) {
			continue
		}
		for j := i + 1; j < len(lines); j++ {
			if len(bytes.TrimSpace(lines[j])) != 0 {
				return nil, fmt.Errorf("live: %s: invalid JSON on line %d (not a torn tail)", name, i+1)
			}
		}
		return bytes.Join(lines[:i], []byte("\n")), nil
	}
	return data, nil
}

// CheckMergedTO runs the TO conformance check over per-node logs merged
// interleaving-invariantly. A live run has no global event order — each
// node timestamps against its own clock — but TO-machine conformance
// doesn't need one: submissions from distinct origins commute, and only
// (a) each origin's own submission order and (b) each node's own delivery
// order constrain the witness. So the checker is fed every bcast first
// (per origin, in the origin's local order — a bcast appears only in its
// origin's log) and then each node's brcv stream in local order. If this
// merged order admits no TO-machine execution, no interleaving does.
//
// Returns the checker (for order-length and delivery-count reporting)
// alongside the first violation, if any.
func CheckMergedTO(logs map[types.ProcID]*props.Log) (*check.TOChecker, error) {
	ids := make([]types.ProcID, 0, len(logs))
	for p := range logs {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	chk := check.NewTOChecker()
	for _, p := range ids {
		for _, e := range logs[p].Events {
			if e.Kind == props.TOBcast {
				if e.P != p {
					return chk, fmt.Errorf("live: node %v's log contains a bcast at %v", p, e.P)
				}
				chk.Bcast(e.Value, e.P)
			}
		}
	}
	for _, p := range ids {
		for _, e := range logs[p].Events {
			if e.Kind == props.TOBrcv {
				if e.P != p {
					return chk, fmt.Errorf("live: node %v's log contains a brcv at %v", p, e.P)
				}
				if err := chk.Brcv(e.Value, e.From, e.P); err != nil {
					return chk, err
				}
			}
		}
	}
	return chk, nil
}
