package live

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/props"
	"repro/internal/types"
)

// cluster owns the daemon processes of one live run: spawn parameters,
// per-node restart counters, and the trace files every incarnation
// wrote, in boot order. Both the single-scenario Run and the matrix
// runner drive the same helper, so fault injectors always respawn with
// identical parameters (same WAL file, next trace file).
type cluster struct {
	dir     string
	pgcsd   string
	cfg     *Config
	cfgPath string
	// checkpointBytes > 0 passes -checkpoint-bytes to every daemon.
	checkpointBytes int
	// maxPending > 0 passes -max-pending to every daemon (TryBcast
	// backpressure bound).
	maxPending int
	logf       func(string, ...any)

	mu       sync.Mutex
	procs    map[int]*Proc
	restarts map[int]int
	traces   map[int][]string
}

// newCluster writes cluster.json into dir and returns the (not yet
// spawned) cluster.
func newCluster(dir, pgcsd string, cfg *Config, checkpointBytes, maxPending int, logf func(string, ...any)) (*cluster, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfgPath := filepath.Join(dir, "cluster.json")
	cfgBytes, _ := json.MarshalIndent(cfg, "", "  ")
	if err := os.WriteFile(cfgPath, cfgBytes, 0o644); err != nil {
		return nil, err
	}
	return &cluster{
		dir: dir, pgcsd: pgcsd, cfg: cfg, cfgPath: cfgPath,
		checkpointBytes: checkpointBytes, maxPending: maxPending, logf: logf,
		procs:    make(map[int]*Proc, len(cfg.Nodes)),
		restarts: make(map[int]int, len(cfg.Nodes)),
		traces:   make(map[int][]string, len(cfg.Nodes)),
	}, nil
}

func (cl *cluster) walPath(id int) string {
	return filepath.Join(cl.dir, fmt.Sprintf("node%d.wal", id))
}

// spawn boots node id's next incarnation (same WAL file, fresh trace
// file named after the restart counter).
func (cl *cluster) spawn(id int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r := cl.restarts[id]
	trace := filepath.Join(cl.dir, fmt.Sprintf("node%d.r%d.jsonl", id, r))
	stdout, err := os.Create(filepath.Join(cl.dir, fmt.Sprintf("node%d.r%d.log", id, r)))
	if err != nil {
		return err
	}
	args := []string{
		"-config", cl.cfgPath,
		"-id", fmt.Sprint(id),
		"-wal", cl.walPath(id),
		"-trace", trace,
		"-metrics", filepath.Join(cl.dir, fmt.Sprintf("node%d.r%d.metrics.json", id, r)),
	}
	if cl.checkpointBytes > 0 {
		args = append(args, "-checkpoint-bytes", fmt.Sprint(cl.checkpointBytes))
	}
	if cl.maxPending > 0 {
		args = append(args, "-max-pending", fmt.Sprint(cl.maxPending))
	}
	cmd := exec.Command(cl.pgcsd, args...)
	cmd.Stdout = stdout
	cmd.Stderr = stdout
	if err := cmd.Start(); err != nil {
		stdout.Close()
		return err
	}
	cl.procs[id] = &Proc{ID: types.ProcID(id), Cmd: cmd}
	cl.traces[id] = append(cl.traces[id], trace)
	cl.restarts[id] = r + 1
	cl.logf("node %d up (incarnation %d, pid %d)", id, r, cmd.Process.Pid)
	return nil
}

func (cl *cluster) spawnAll() error {
	for i := range cl.cfg.Nodes {
		if err := cl.spawn(i); err != nil {
			return fmt.Errorf("live: spawn node %d: %w", i, err)
		}
	}
	return nil
}

// readyAll confirms every daemon's event loop answers a ping.
func (cl *cluster) readyAll() error {
	for _, n := range cl.cfg.Nodes {
		c, err := DialClient(n.ClientAddr, 30*time.Second)
		if err != nil {
			return fmt.Errorf("live: node %d never came up: %w", n.ID, err)
		}
		err = c.Ping(10 * time.Second)
		c.Close()
		if err != nil {
			return fmt.Errorf("live: node %d not ready: %w", n.ID, err)
		}
	}
	return nil
}

func (cl *cluster) proc(id int) *Proc {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.procs[id]
}

func (cl *cluster) traceFiles(id int) []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.traces[id]...)
}

func (cl *cluster) clientAddrs() []string {
	addrs := make([]string, len(cl.cfg.Nodes))
	for i, n := range cl.cfg.Nodes {
		addrs[i] = n.ClientAddr
	}
	return addrs
}

// stopAll asks every daemon to stop gracefully (SIGCONT first: a stopped
// process can't process STOP) and reaps them all, escalating to SIGKILL
// on the deadline. The returned errors name nodes whose exit was not
// clean — their final trace lines may be torn, which the merge reader
// tolerates but the caller should surface.
func (cl *cluster) stopAll(timeout time.Duration) []error {
	var errs []error
	for _, n := range cl.cfg.Nodes {
		if p := cl.proc(n.ID); p != nil && !p.Exited() {
			p.Resume() // no-op unless SIGSTOPped
			if c, err := DialClient(n.ClientAddr, 5*time.Second); err == nil {
				c.Stop()
				c.Close()
			}
		}
	}
	cl.mu.Lock()
	ps := make([]*Proc, 0, len(cl.procs))
	for _, p := range cl.procs {
		ps = append(ps, p)
	}
	cl.mu.Unlock()
	for _, p := range ps {
		if err := p.WaitExit(timeout); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// killAll is the deferred cleanup: SIGKILL and reap whatever is left.
func (cl *cluster) killAll() {
	cl.mu.Lock()
	ps := make([]*Proc, 0, len(cl.procs))
	for _, p := range cl.procs {
		ps = append(ps, p)
	}
	cl.mu.Unlock()
	for _, p := range ps {
		if !p.Exited() {
			p.Kill()
		}
	}
}

// mergedLogs reads every node's trace files into per-node logs.
func (cl *cluster) mergedLogs() (map[types.ProcID]*props.Log, error) {
	logs := make(map[types.ProcID]*props.Log, len(cl.cfg.Nodes))
	for i := range cl.cfg.Nodes {
		lg, err := ReadTraceFiles(cl.traceFiles(i)...)
		if err != nil {
			return nil, fmt.Errorf("live: node %d trace: %w", i, err)
		}
		logs[types.ProcID(i)] = lg
	}
	return logs, nil
}

// makeConfig lays out N nodes on consecutive localhost ports.
func makeConfig(n int, delta time.Duration, seed int64, basePort int) *Config {
	cfg := &Config{DeltaMS: int(delta / time.Millisecond), Seed: seed}
	if cfg.DeltaMS <= 0 {
		cfg.DeltaMS = 5
	}
	for i := 0; i < n; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			ID:         i,
			Addr:       fmt.Sprintf("127.0.0.1:%d", basePort+2*i),
			ClientAddr: fmt.Sprintf("127.0.0.1:%d", basePort+2*i+1),
		})
	}
	return cfg
}
