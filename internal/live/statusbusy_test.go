package live

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/types"
)

// TestStatusAndBusyRoundTrip drives the graceful-degradation surface of
// the line protocol end to end: a node booted without its peers never
// establishes a primary component, so STATUS reports STALLED, accepted
// submissions pile up as pending, and the -max-pending bound answers
// further submissions with BUSY. Once the peers arrive, the node turns
// OK, drains its backlog into the total order, and the rejected value
// never appears.
func TestStatusAndBusyRoundTrip(t *testing.T) {
	cfg := testConfig(t, 3)
	dir := t.TempDir()
	const maxPending = 2
	lone, err := StartEngine(EngineOptions{
		Config:     cfg,
		Self:       0,
		WALPath:    filepath.Join(dir, "wal0"),
		TracePath:  filepath.Join(dir, "trace0.jsonl"),
		MaxPending: maxPending,
		Tick:       time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lone.Close() })

	c, err := DialClient(lone.ClientAddr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The initial view is primary by construction (it contains a quorum),
	// so the lone node only turns STALLED once membership times out the
	// absent peers and reconfigures to a singleton view.
	waitFor(t, 30*time.Second, "lone node to notice its missing peers", func() bool {
		st, err := c.Status(2 * time.Second)
		return err == nil && st.Stalled && st.Pending == 0 && st.Delivered == 0
	})

	// Fill the backlog, then one more: the excess comes back as BUSY.
	for i := 0; i < maxPending; i++ {
		if err := c.Submit(fmt.Sprintf("held-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Submit("bounced"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-c.Rejects():
		if got != "bounced" {
			t.Fatalf("BUSY carried %q, want %q", got, "bounced")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no BUSY for the over-bound submission")
	}
	st, err := c.Status(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stalled || st.Pending != maxPending {
		t.Fatalf("over-bound status = %+v, want stalled with pending %d", st, maxPending)
	}

	// The peers arrive; a primary establishes and the backlog drains.
	for i := 1; i < 3; i++ {
		e, err := StartEngine(EngineOptions{
			Config:    cfg,
			Self:      types.ProcID(i),
			WALPath:   filepath.Join(dir, fmt.Sprintf("wal%d", i)),
			TracePath: filepath.Join(dir, fmt.Sprintf("trace%d.jsonl", i)),
			Tick:      time.Millisecond,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
	}
	waitFor(t, 30*time.Second, "backlog drain into a primary", func() bool {
		st, err := c.Status(2 * time.Second)
		return err == nil && !st.Stalled && st.Pending == 0 && st.Delivered == maxPending
	})

	// The drained node accepts again, and the bounced value stayed out.
	if err := c.Submit("after-heal"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "post-heal delivery", func() bool {
		st, err := c.Status(2 * time.Second)
		return err == nil && st.Delivered == maxPending+1
	})
	deliveredValues := map[string]bool{}
drain:
	for {
		select {
		case d := <-c.Deliveries():
			deliveredValues[d.Value] = true
		default:
			break drain
		}
	}
	if deliveredValues["bounced"] {
		t.Error("BUSY-rejected value was delivered")
	}
	if !deliveredValues["held-0"] || !deliveredValues["held-1"] || !deliveredValues["after-heal"] {
		t.Errorf("missing deliveries: %v", deliveredValues)
	}
}
