package live

import (
	"fmt"
	"math/rand"
	"time"
)

// ScenarioKind names one family of live fault scenarios. These port the
// chaos campaign shapes (internal/chaos) from the simulated failure
// oracle to real faults against real processes: the Figure 4 statuses
// become signals (Bad→SIGSTOP, Good→SIGCONT, Amnesia→SIGKILL+restart)
// and channel faults become listener pauses (LPAUSE severs every inbound
// link to a node — a coarse one-way fault: the node still sends, but
// hears nothing).
type ScenarioKind string

const (
	// StopWaves: waves of minority SIGSTOPs with staggered SIGCONTs —
	// the live analogue of chaos.CrashRestart's Bad/Good waves. State
	// survives intact; only timing is violated.
	StopWaves ScenarioKind = "stop-waves"
	// KillWaves: waves of minority SIGKILLs with staggered restarts —
	// the live analogue of chaos.Amnesia. Every restart replays the WAL
	// file and rejoins one incarnation up.
	KillWaves ScenarioKind = "kill-waves"
	// RollingIsolation: a sequence of shifting minority LPAUSE sets,
	// each replacing the previous — the live analogue of
	// chaos.RollingPartition.
	RollingIsolation ScenarioKind = "rolling-isolation"
	// NestedIsolation: one set isolated, then a second inside the
	// remainder, healed inner-first — the live analogue of
	// chaos.NestedPartition.
	NestedIsolation ScenarioKind = "nested-isolation"
	// FlappingLinks: one or two victims toggling LPAUSE/LRESUME at
	// periods far below the membership timescale — chaos.Flapping.
	FlappingLinks ScenarioKind = "flapping-links"
	// AsymmetricLinks: per phase, one victim's listener is paused while
	// its own sends still flow — a genuinely one-way fault, rotated
	// across victims — chaos.Asymmetric.
	AsymmetricLinks ScenarioKind = "asymmetric-links"
	// LeaderKill: SIGKILL targeted at the lowest-ID live node (the ring
	// leader), restarted, then the strike cascades to the next leader —
	// chaos.LeaderCrash.
	LeaderKill ScenarioKind = "leader-kill"
	// RollingRestart: every node gracefully cycled (STOP, exit, respawn)
	// exactly once under load — the operational upgrade drill; no chaos
	// analogue, the oracle cannot express an orderly stop.
	RollingRestart ScenarioKind = "rolling-restart"
	// MixedFaults: the soak adversary — every few hundred ms one of
	// SIGSTOP / SIGKILL / LPAUSE against a random node, each healed
	// before the next strike — chaos.Mixed.
	MixedFaults ScenarioKind = "mixed-faults"

	// The quorum-loss families below deliberately exceed the ⌊(n-1)/2⌋
	// budget every other family respects: they fault enough nodes at once
	// that no quorum stays mutually connected, so no primary component can
	// exist until the heal. The paper's conditional-liveness claim (the
	// Section 6 lemma chain) only promises delivery after the pattern
	// stabilizes with a majority component; these scenarios drive the
	// before/after of that condition against real processes. Their
	// non-vacuity gate is inverted: instead of proving a primary survived,
	// the runner proves delivery flatlined during every loss epoch and
	// resumed within a bound after the final heal.

	// MajorityKill: one simultaneous SIGKILL wave large enough that no
	// quorum survives, held, then staggered restarts — correlated machine
	// failure taking the primary down with it.
	MajorityKill ScenarioKind = "majority-kill"
	// TotalPartition: every node's peer listener paused at once — a total
	// symmetric partition into n singleton components — healed together.
	TotalPartition ScenarioKind = "total-partition"
	// CascadingFailure: nodes SIGKILLed one at a time until just past the
	// quorum-loss threshold, held, then restarted in reverse order — the
	// slow-motion loss and recovery of a primary.
	CascadingFailure ScenarioKind = "cascading-failure"
	// SplitRejoinSoak: repeated rounds of isolating a different majority
	// subset (LPAUSE) and rejoining it — each round loses and re-forms the
	// primary.
	SplitRejoinSoak ScenarioKind = "split-rejoin"
)

// ScenarioKinds lists every scenario kind, in the matrix's fixed order.
var ScenarioKinds = []ScenarioKind{
	StopWaves, KillWaves, RollingIsolation, NestedIsolation, FlappingLinks,
	AsymmetricLinks, LeaderKill, RollingRestart, MixedFaults,
	MajorityKill, TotalPartition, CascadingFailure, SplitRejoinSoak,
}

// QuorumLossKinds lists the families that exceed the quorum budget.
var QuorumLossKinds = []ScenarioKind{
	MajorityKill, TotalPartition, CascadingFailure, SplitRejoinSoak,
}

// QuorumLoss reports whether this family deliberately exceeds the
// quorum budget (and is therefore gated on primary-loss detection and
// bounded recovery instead of the quorum-alive non-vacuity guard).
func (k ScenarioKind) QuorumLoss() bool {
	switch k {
	case MajorityKill, TotalPartition, CascadingFailure, SplitRejoinSoak:
		return true
	}
	return false
}

// QuorumLossThreshold returns the minimum number of simultaneously
// faulted nodes that makes a primary impossible: with k faulted, only
// n−k nodes remain mutually connected, and a primary view must contain
// a quorum (a majority, ⌊n/2⌋+1). k = ⌈n/2⌉ leaves ⌊n/2⌋ alive — one
// short of every quorum.
func QuorumLossThreshold(n int) int { return (n + 1) / 2 }

// ParseScenarioKind validates a scenario name.
func ParseScenarioKind(s string) (ScenarioKind, error) {
	for _, k := range ScenarioKinds {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("live: unknown scenario %q (have %v)", s, ScenarioKinds)
}

// ActionKind is one injector primitive.
type ActionKind string

const (
	// ActSigstop / ActSigcont / ActSigkill deliver the signal to the
	// node's process (Proc.Pause/Resume/Kill).
	ActSigstop ActionKind = "sigstop"
	ActSigcont ActionKind = "sigcont"
	ActSigkill ActionKind = "sigkill"
	// ActRestart respawns a killed node's daemon (same WAL file, fresh
	// incarnation); a no-op if the node is alive.
	ActRestart ActionKind = "restart"
	// ActLpause / ActLresume toggle the node's peer listener over the
	// control connection (transport.TCP.PauseListener/ResumeListener):
	// paused, the node accepts no inbound peer traffic but still sends.
	ActLpause  ActionKind = "lpause"
	ActLresume ActionKind = "lresume"
	// ActCycle gracefully cycles the node: STOP over the control
	// connection, bounded wait for exit, respawn.
	ActCycle ActionKind = "cycle"
)

// Action is one timed fault primitive against one node.
type Action struct {
	AtMS int64      `json:"at_ms"` // offset from scenario start
	Node int        `json:"node"`
	Kind ActionKind `json:"kind"`
}

// Epoch is one interval of scheduled quorum loss: from StartMS at least
// QuorumLossThreshold(n) nodes are faulted simultaneously, until EndMS
// heals enough of them that a quorum could re-form. Times are schedule
// offsets, like Action.AtMS.
type Epoch struct {
	StartMS int64 `json:"start_ms"`
	EndMS   int64 `json:"end_ms"`
}

// Scenario is one replayable fault schedule: (Kind, Seed, N, WindowMS)
// regenerate Actions exactly, and Actions alone replay without the
// generator. The matrix runner writes the whole struct into each
// artifact. LossEpochs is derived from Actions (ComputeLossEpochs) and
// carried so the artifact records exactly which intervals the
// primary-loss detector guarded.
type Scenario struct {
	Kind       ScenarioKind `json:"kind"`
	Seed       int64        `json:"seed"`
	N          int          `json:"n"`
	WindowMS   int64        `json:"window_ms"`
	Actions    []Action     `json:"actions"`
	LossEpochs []Epoch      `json:"loss_epochs,omitempty"`
}

// ComputeLossEpochs replays the schedule and returns the intervals during
// which at least QuorumLossThreshold(n) nodes are faulted at once — no
// primary can exist inside them. A node counts as faulted while
// SIGSTOPped, SIGKILLed (until its restart action), or listener-paused;
// an ActCycle is a transient (sub-second graceful bounce) and does not
// count. Same-instant actions are applied together before the count is
// evaluated, so a heal tied with a fault never opens a zero-length
// epoch. An epoch still open after the last action closes at that
// action's time (generators never emit such schedules; the defensive
// heal sweep would close it in practice).
func ComputeLossEpochs(actions []Action, n int) []Epoch {
	sorted := append([]Action(nil), actions...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].AtMS < sorted[j-1].AtMS; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	threshold := QuorumLossThreshold(n)
	type state struct{ stopped, killed, paused bool }
	nodes := make([]state, n)
	faulted := func() int {
		k := 0
		for _, s := range nodes {
			if s.stopped || s.killed || s.paused {
				k++
			}
		}
		return k
	}
	var epochs []Epoch
	open := int64(-1)
	for i := 0; i < len(sorted); {
		at := sorted[i].AtMS
		for ; i < len(sorted) && sorted[i].AtMS == at; i++ {
			a := sorted[i]
			if a.Node < 0 || a.Node >= n {
				continue
			}
			s := &nodes[a.Node]
			switch a.Kind {
			case ActSigstop:
				s.stopped = true
			case ActSigcont:
				s.stopped = false
			case ActSigkill:
				s.killed = true
			case ActRestart:
				s.killed = false
			case ActLpause:
				s.paused = true
			case ActLresume:
				s.paused = false
			}
		}
		k := faulted()
		if open < 0 && k >= threshold {
			open = at
		} else if open >= 0 && k < threshold {
			if at > open {
				epochs = append(epochs, Epoch{StartMS: open, EndMS: at})
			}
			open = -1
		}
	}
	if open >= 0 && len(sorted) > 0 {
		if last := sorted[len(sorted)-1].AtMS; last > open {
			epochs = append(epochs, Epoch{StartMS: open, EndMS: last})
		}
	}
	return epochs
}

// GenerateScenario produces the fault schedule of the given kind,
// deterministically from (kind, seed, n, window). The budgeted families
// keep the concurrently-faulted node count at or below (n-1)/2, so a
// strict majority stays mutually connected throughout — the primary
// component survives and the run cannot be vacuous by construction. The
// quorum-loss families (k.QuorumLoss()) invert that: they push past the
// threshold on purpose and record the resulting LossEpochs for the
// primary-loss detector. Every generator emits every heal strictly
// inside the window (the runner adds a defensive heal sweep after it
// regardless).
func GenerateScenario(kind ScenarioKind, seed int64, n int, window time.Duration) (Scenario, error) {
	if n < 3 {
		return Scenario{}, fmt.Errorf("live: scenarios need n >= 3, have %d", n)
	}
	if window < 2*time.Second {
		return Scenario{}, fmt.Errorf("live: scenario window %v too short (need >= 2s)", window)
	}
	if kind.QuorumLoss() && window < 4*time.Second {
		// The loss epoch must outlast the detector's grace interval plus at
		// least two sampling periods, and the heal still has to land inside
		// the window; below 4s the shapes can't fit.
		return Scenario{}, fmt.Errorf("live: quorum-loss scenario %s needs window >= 4s, have %v", kind, window)
	}
	g := &sgen{
		rng:    rand.New(rand.NewSource(seed)),
		n:      n,
		window: window,
		budget: (n - 1) / 2,
	}
	switch kind {
	case StopWaves:
		g.waves(ActSigstop, ActSigcont)
	case KillWaves:
		g.waves(ActSigkill, ActRestart)
	case RollingIsolation:
		g.rollingIsolation()
	case NestedIsolation:
		g.nestedIsolation()
	case FlappingLinks:
		g.flappingLinks()
	case AsymmetricLinks:
		g.asymmetricLinks()
	case LeaderKill:
		g.leaderKill()
	case RollingRestart:
		g.rollingRestart()
	case MixedFaults:
		g.mixedFaults()
	case MajorityKill:
		g.majorityKill()
	case TotalPartition:
		g.totalPartition()
	case CascadingFailure:
		g.cascadingFailure()
	case SplitRejoinSoak:
		g.splitRejoin()
	default:
		return Scenario{}, fmt.Errorf("live: unknown scenario %q", kind)
	}
	g.sort()
	return Scenario{
		Kind: kind, Seed: seed, N: n,
		WindowMS:   window.Milliseconds(),
		Actions:    g.out,
		LossEpochs: ComputeLossEpochs(g.out, n),
	}, nil
}

type sgen struct {
	rng    *rand.Rand
	n      int
	window time.Duration
	budget int // max concurrently faulted nodes: (n-1)/2
	out    []Action
}

// act emits one action, clamped strictly inside the window.
func (g *sgen) act(t time.Duration, node int, kind ActionKind) {
	if t < 0 {
		t = 0
	}
	if t >= g.window {
		t = g.window - time.Millisecond
	}
	g.out = append(g.out, Action{AtMS: t.Milliseconds(), Node: node, Kind: kind})
}

// sort orders actions by time, stably: same-instant actions keep their
// emission order (heals before the next wave's faults when tied).
func (g *sgen) sort() {
	// Insertion sort: schedules are tens of actions and stability matters.
	for i := 1; i < len(g.out); i++ {
		for j := i; j > 0 && g.out[j].AtMS < g.out[j-1].AtMS; j-- {
			g.out[j], g.out[j-1] = g.out[j-1], g.out[j]
		}
	}
}

// victims picks k distinct nodes.
func (g *sgen) victims(k int) []int {
	return g.rng.Perm(g.n)[:k]
}

// dwell picks a duration in [lo, hi); a window too tight to leave room
// (hi <= lo) degenerates to lo rather than panicking.
func (g *sgen) dwell(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.rng.Int63n(int64(hi-lo)))
}

// waves is the shared shape of StopWaves and KillWaves: each wave faults
// a random minority, heals it before the next wave starts.
func (g *sgen) waves(fault, heal ActionKind) {
	waves := 3 + g.rng.Intn(3)
	spacing := g.window / time.Duration(waves+1)
	maxDwell := 800 * time.Millisecond
	if half := spacing / 2; maxDwell > half {
		maxDwell = half
	}
	for i := 0; i < waves; i++ {
		start := time.Duration(i+1) * spacing
		k := 1 + g.rng.Intn(g.budget)
		for _, v := range g.victims(k) {
			at := start + g.dwell(0, 100*time.Millisecond)
			g.act(at, v, fault)
			g.act(at+g.dwell(200*time.Millisecond, maxDwell), v, heal)
		}
	}
}

func (g *sgen) rollingIsolation() {
	t := g.window / 8
	for t < g.window-1500*time.Millisecond {
		k := 1 + g.rng.Intn(g.budget)
		hold := g.dwell(400*time.Millisecond, time.Second)
		for _, v := range g.victims(k) {
			g.act(t, v, ActLpause)
			g.act(t+hold, v, ActLresume)
		}
		t += hold + g.dwell(200*time.Millisecond, 500*time.Millisecond)
	}
}

func (g *sgen) nestedIsolation() {
	w := g.window
	k1 := 1 + g.rng.Intn(max(1, g.budget/2))
	// The inner cut only exists if the budget leaves room beside the outer
	// one; at budget 1 (n=3) the shape degrades to a single held isolation.
	k2 := 0
	if g.budget > k1 {
		k2 = 1 + g.rng.Intn(g.budget-k1)
	}
	perm := g.victims(k1 + k2)
	s1, s2 := perm[:k1], perm[k1:]
	for _, v := range s1 {
		g.act(w/6, v, ActLpause)
	}
	for _, v := range s2 {
		g.act(2*w/6, v, ActLpause) // nested cut while s1 is still isolated
	}
	for _, v := range s2 {
		g.act(4*w/6, v, ActLresume) // heal inner-first
	}
	for _, v := range s1 {
		g.act(5*w/6, v, ActLresume)
	}
}

func (g *sgen) flappingLinks() {
	w := g.window
	victims := 1 + g.rng.Intn(2)
	if victims > g.budget {
		victims = g.budget
	}
	for _, v := range g.victims(victims) {
		t := g.dwell(0, w/4)
		for t < w-time.Second {
			g.act(t, v, ActLpause)
			t += g.dwell(150*time.Millisecond, 400*time.Millisecond)
			g.act(t, v, ActLresume)
			t += g.dwell(150*time.Millisecond, 400*time.Millisecond)
		}
	}
}

func (g *sgen) asymmetricLinks() {
	w := g.window
	phases := 3 + g.rng.Intn(3)
	span := w / time.Duration(phases)
	for i := 0; i < phases; i++ {
		start := time.Duration(i) * span
		v := g.rng.Intn(g.n)
		at := start + g.dwell(0, span/4)
		g.act(at, v, ActLpause) // v still sends; hears nothing
		g.act(start+span-100*time.Millisecond, v, ActLresume)
	}
}

func (g *sgen) leaderKill() {
	w := g.window
	strikes := 2 + g.rng.Intn(2)
	spacing := w / time.Duration(strikes+1)
	// The leader is the minimum live processor; a strike always hits the
	// current leader and the restart lands before the next strike, so
	// leadership cascades down the ring one node at a time.
	downUntil := make([]time.Duration, g.n)
	for i := 0; i < strikes; i++ {
		at := time.Duration(i+1) * spacing
		leader := -1
		for p := 0; p < g.n; p++ {
			if downUntil[p] <= at {
				leader = p
				break
			}
		}
		if leader < 0 {
			continue
		}
		g.act(at, leader, ActSigkill)
		lo, hi := time.Second, spacing-500*time.Millisecond
		if hi <= lo {
			// Tight window: restart mid-gap so the next strike still finds
			// this node back up (one leader down at a time, always).
			lo, hi = spacing/4, spacing/2
		}
		up := at + g.dwell(lo, hi)
		g.act(up, leader, ActRestart)
		downUntil[leader] = up
	}
}

func (g *sgen) rollingRestart() {
	spacing := g.window / time.Duration(g.n+1)
	for i := 0; i < g.n; i++ {
		g.act(time.Duration(i+1)*spacing, i, ActCycle)
	}
}

// minLossHold is the floor every quorum-loss generator keeps a loss
// epoch open for: long enough that the runner's detector — which skips
// a grace interval after the loss onset (in-flight deliveries, minority
// view-formation catch-up, injection lag) and then needs at least two
// delivery samples — can attest the flatline even at the 4s minimum
// window.
const minLossHold = 1350 * time.Millisecond

// lossHold picks a loss-epoch hold in [lo, hi) but never below
// minLossHold.
func (g *sgen) lossHold(lo, hi time.Duration) time.Duration {
	h := g.dwell(lo, hi)
	if h < minLossHold {
		h = minLossHold
	}
	return h
}

// lossSize picks how many nodes to fault at once: at least the
// quorum-loss threshold, at most n-1 (one node always survives so the
// cluster directory keeps a live daemon answering clients).
func (g *sgen) lossSize() int {
	th := QuorumLossThreshold(g.n)
	return th + g.rng.Intn(g.n-th)
}

func (g *sgen) majorityKill() {
	w := g.window
	at := w / 4
	vs := g.victims(g.lossSize())
	for _, v := range vs {
		g.act(at+g.dwell(0, 100*time.Millisecond), v, ActSigkill)
	}
	up := at + g.lossHold(w/5, w/4)
	for i, v := range vs {
		g.act(up+time.Duration(i)*g.dwell(80*time.Millisecond, 160*time.Millisecond), v, ActRestart)
	}
}

func (g *sgen) totalPartition() {
	w := g.window
	at := w / 4
	for v := 0; v < g.n; v++ {
		g.act(at+g.dwell(0, 50*time.Millisecond), v, ActLpause)
	}
	up := at + g.lossHold(w/5, w/4)
	for v := 0; v < g.n; v++ {
		g.act(up+g.dwell(0, 80*time.Millisecond), v, ActLresume)
	}
}

func (g *sgen) cascadingFailure() {
	w := g.window
	k := QuorumLossThreshold(g.n) + 1
	if k > g.n-1 {
		k = g.n - 1
	}
	vs := g.victims(k)
	t := w / 6
	stride := g.dwell(w/40, w/30)
	for _, v := range vs {
		g.act(t, v, ActSigkill)
		t += stride
	}
	t += g.lossHold(w/6, w/5) // hold the cluster past the quorum-loss point
	for i := len(vs) - 1; i >= 0; i-- {
		g.act(t, vs[i], ActRestart)
		t += stride
	}
}

func (g *sgen) splitRejoin() {
	w := g.window
	rounds := 2
	if w < 6*time.Second {
		rounds = 1 // minLossHold-floored rounds would spill past a short window
	} else if w >= 16*time.Second {
		rounds += g.rng.Intn(2)
	}
	t := w / 8
	// Shape scales with the round count so the final rejoin always lands
	// well inside the window.
	holdLo, holdHi := w/time.Duration(4*rounds), w/time.Duration(3*rounds)
	gapLo, gapHi := w/time.Duration(5*rounds), w/time.Duration(4*rounds)
	for r := 0; r < rounds; r++ {
		vs := g.victims(g.lossSize())
		hold := g.lossHold(holdLo, holdHi)
		for _, v := range vs {
			g.act(t+g.dwell(0, 50*time.Millisecond), v, ActLpause)
		}
		for _, v := range vs {
			g.act(t+hold+g.dwell(0, 80*time.Millisecond), v, ActLresume)
		}
		t += hold + g.dwell(gapLo, gapHi)
	}
}

func (g *sgen) mixedFaults() {
	w := g.window
	t := w / 8
	for t < w-1500*time.Millisecond {
		v := g.rng.Intn(g.n)
		hold := g.dwell(300*time.Millisecond, 900*time.Millisecond)
		switch g.rng.Intn(3) {
		case 0:
			g.act(t, v, ActSigstop)
			g.act(t+hold, v, ActSigcont)
		case 1:
			g.act(t, v, ActSigkill)
			g.act(t+hold, v, ActRestart)
		case 2:
			g.act(t, v, ActLpause)
			g.act(t+hold, v, ActLresume)
		}
		t += hold + g.dwell(200*time.Millisecond, 600*time.Millisecond)
	}
}
