package ioa

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// ping/pong: a minimal two-automaton composition. pinger outputs ping(i),
// ponger inputs it and then has pong(i) enabled as an output back.
type pingAct struct{ I int }

func (pingAct) ActionName() string { return "ping" }
func (a pingAct) String() string   { return fmt.Sprintf("ping(%d)", a.I) }

type pongAct struct{ I int }

func (pongAct) ActionName() string { return "pong" }
func (a pongAct) String() string   { return fmt.Sprintf("pong(%d)", a.I) }

type pinger struct {
	next    int
	max     int
	gotPong []int
}

func (p *pinger) Name() string { return "pinger" }
func (p *pinger) Classify(act Action) Kind {
	switch act.(type) {
	case pingAct:
		return Output
	case pongAct:
		return Input
	}
	return NotInSignature
}
func (p *pinger) Input(act Action) { p.gotPong = append(p.gotPong, act.(pongAct).I) }
func (p *pinger) Enabled(buf []Action) []Action {
	if p.next < p.max {
		buf = append(buf, pingAct{I: p.next})
	}
	return buf
}
func (p *pinger) Perform(act Action) { p.next++ }

type ponger struct {
	pending []int
	broken  bool // when set, CheckInvariants fails
}

func (p *ponger) Name() string { return "ponger" }
func (p *ponger) Classify(act Action) Kind {
	switch act.(type) {
	case pingAct:
		return Input
	case pongAct:
		return Output
	}
	return NotInSignature
}
func (p *ponger) Input(act Action) { p.pending = append(p.pending, act.(pingAct).I) }
func (p *ponger) Enabled(buf []Action) []Action {
	if len(p.pending) > 0 {
		buf = append(buf, pongAct{I: p.pending[0]})
	}
	return buf
}
func (p *ponger) Perform(act Action) { p.pending = p.pending[1:] }
func (p *ponger) CheckInvariants() error {
	if p.broken {
		return errors.New("deliberately broken")
	}
	return nil
}

func TestCompositionSynchronizesOutputsToInputs(t *testing.T) {
	pi := &pinger{max: 5}
	po := &ponger{}
	exec := NewExecutor(1, pi, po)
	if err := exec.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(pi.gotPong) != 5 {
		t.Fatalf("pinger got %d pongs, want 5", len(pi.gotPong))
	}
	for i, v := range pi.gotPong {
		if v != i {
			t.Fatalf("pong order wrong: %v", pi.gotPong)
		}
	}
	// Both pings and pongs are external outputs: 10 trace events.
	if got := len(exec.Trace()); got != 10 {
		t.Fatalf("trace has %d events, want 10", got)
	}
	if exec.Steps() != 10 {
		t.Fatalf("Steps = %d", exec.Steps())
	}
}

func TestRunStopsAtQuiescence(t *testing.T) {
	pi := &pinger{max: 1}
	exec := NewExecutor(1, pi, &ponger{})
	if err := exec.Run(100); err != nil {
		t.Fatal(err)
	}
	if exec.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2 (ping + pong then quiescent)", exec.Steps())
	}
}

func TestHideWhere(t *testing.T) {
	pi := &pinger{max: 3}
	exec := NewExecutor(1, pi, &ponger{})
	exec.HideWhere(func(act Action) bool { _, isPing := act.(pingAct); return isPing })
	if err := exec.Run(100); err != nil {
		t.Fatal(err)
	}
	for _, ev := range exec.Trace() {
		if _, isPing := ev.Act.(pingAct); isPing {
			t.Fatal("hidden action in trace")
		}
	}
	if len(exec.Trace()) != 3 {
		t.Fatalf("trace = %v", exec.Trace())
	}
}

func TestInvariantFailureAborts(t *testing.T) {
	pi := &pinger{max: 3}
	po := &ponger{broken: true}
	exec := NewExecutor(1, pi, po)
	err := exec.Run(100)
	if err == nil || !strings.Contains(err.Error(), "deliberately broken") {
		t.Fatalf("err = %v", err)
	}
	// Disabling invariant checking suppresses it.
	pi2 := &pinger{max: 3}
	exec2 := NewExecutor(1, pi2, &ponger{broken: true})
	exec2.SetInvariantChecking(false)
	if err := exec2.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestStepHookErrorAborts(t *testing.T) {
	exec := NewExecutor(1, &pinger{max: 3}, &ponger{})
	calls := 0
	exec.OnStep(func(ev TraceEvent) error {
		calls++
		if calls == 2 {
			return errors.New("hook says stop")
		}
		return nil
	})
	err := exec.Run(100)
	if err == nil || !strings.Contains(err.Error(), "hook says stop") {
		t.Fatalf("err = %v", err)
	}
	if exec.Steps() != 2 {
		t.Fatalf("Steps = %d", exec.Steps())
	}
}

func TestEnvironmentInjection(t *testing.T) {
	po := &ponger{}
	exec := NewExecutor(1, po)
	injected := 0
	exec.SetEnvironment(EnvironmentFunc(func(rng *rand.Rand) Action {
		if injected >= 4 {
			return nil
		}
		injected++
		return pingAct{I: injected}
	}))
	if err := exec.Run(100); err != nil {
		t.Fatal(err)
	}
	// Every injected ping reached the ponger and was ponged.
	pongs := 0
	for _, ev := range exec.Trace() {
		if ev.Source == "env" {
			if _, ok := ev.Act.(pingAct); !ok {
				t.Fatalf("env event %v", ev)
			}
		}
		if _, ok := ev.Act.(pongAct); ok {
			pongs++
		}
	}
	if pongs != 4 {
		t.Fatalf("pongs = %d, want 4", pongs)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	run := func(seed int64) string {
		exec := NewExecutor(seed, &pinger{max: 10}, &ponger{})
		if err := exec.Run(1000); err != nil {
			t.Fatal(err)
		}
		return FormatTrace(exec.Trace())
	}
	if run(7) != run(7) {
		t.Error("same seed, different traces")
	}
	// Different seeds normally interleave differently (not guaranteed, but
	// with 20 steps of 2-way choice the chance of collision is tiny).
	if run(1) == run(2) {
		t.Log("warning: seeds 1 and 2 produced identical traces")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		NotInSignature: "none", Input: "input", Output: "output", Internal: "internal",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestFormatTrace(t *testing.T) {
	s := FormatTrace([]TraceEvent{{Source: "x", Act: pingAct{I: 1}}})
	if !strings.Contains(s, "x:ping(1)") {
		t.Errorf("FormatTrace = %q", s)
	}
}
