// Package ioa is a small executable rendition of the I/O automaton model of
// Lynch and Tuttle, the formal substrate of the paper. An automaton has a
// signature partitioning its actions into input, output, and internal;
// inputs are always enabled; outputs and internal actions carry
// preconditions. Automata compose by synchronizing each output action with
// the same-valued input action of every other component.
//
// The package provides composition, a seeded nondeterministic executor that
// generates executions and external traces, per-step invariant checking,
// and hooks for checking forward simulation relations — enough to machine-
// check the paper's safety claims on millions of randomized steps.
package ioa

import (
	"fmt"
	"math/rand"
	"strings"
)

// Action is a single transition label. Concrete actions are comparable
// structs defined by each layer (for example vsmachine.Gpsnd). The dynamic
// value, not just the name, is what synchronizes components during
// composition.
type Action interface {
	// ActionName returns the schema name, e.g. "gpsnd".
	ActionName() string
	// String renders the action with its parameters.
	String() string
}

// Kind classifies an action relative to one automaton's signature.
type Kind int

// Action classifications. NotInSignature means the automaton ignores the
// action entirely.
const (
	NotInSignature Kind = iota
	Input
	Output
	Internal
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case NotInSignature:
		return "none"
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Automaton is an executable I/O automaton. Implementations must be
// input-enabled: Input must accept any action the signature classifies as
// Input, in any state.
type Automaton interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Classify reports how the automaton's signature treats the action.
	Classify(act Action) Kind
	// Input applies an input action (always enabled).
	Input(act Action)
	// Enabled appends the locally controlled (output and internal) actions
	// currently enabled, and returns the extended slice. For action schemas
	// with unbounded parameter spaces, implementations enumerate a
	// representative bounded subset; the executor's Environment hook can
	// inject further choices.
	Enabled(buf []Action) []Action
	// Perform applies a locally controlled action; the caller guarantees it
	// was reported enabled in the current state.
	Perform(act Action)
}

// InvariantChecker is implemented by automata that can check their own
// state invariants; the executor calls it after every step when invariant
// checking is on.
type InvariantChecker interface {
	CheckInvariants() error
}

// TraceEvent is one external action occurrence in an execution, tagged with
// the component that controlled it ("env" for environment injections).
type TraceEvent struct {
	Source string
	Act    Action
}

// String renders the event.
func (e TraceEvent) String() string { return fmt.Sprintf("%s:%v", e.Source, e.Act) }

// Environment injects input actions from outside the composition (the
// clients of the paper's Figure 1) and proposes choices for unbounded
// internal nondeterminism (such as VS-machine's createview). Next returns
// nil when the environment has nothing to offer this round.
type Environment interface {
	Next(rng *rand.Rand) Action
}

// EnvironmentFunc adapts a function to the Environment interface.
type EnvironmentFunc func(rng *rand.Rand) Action

// Next calls the function.
func (f EnvironmentFunc) Next(rng *rand.Rand) Action { return f(rng) }

// Executor runs a composition of automata, resolving nondeterminism with a
// seeded random source. At each step it gathers every enabled locally
// controlled action across components (plus at most one environment
// injection), picks one uniformly, performs it at its owner, and feeds it
// as input to every component whose signature accepts it.
type Executor struct {
	components []Automaton
	env        Environment
	rng        *rand.Rand
	trace      []TraceEvent
	hidden     func(Action) bool
	invariants bool
	stepHooks  []func(TraceEvent) error
	steps      int

	scratch []Action // reused enabled-action buffer
	owners  []int    // owner index per scratch entry, -1 = environment
}

// NewExecutor creates an executor over the given components.
func NewExecutor(seed int64, components ...Automaton) *Executor {
	return &Executor{
		components: components,
		rng:        rand.New(rand.NewSource(seed)),
		invariants: true,
	}
}

// SetEnvironment installs the environment hook.
func (e *Executor) SetEnvironment(env Environment) { e.env = env }

// HideWhere marks actions as hidden: they still synchronize components but
// are omitted from the external trace (the paper's composition-with-hiding).
func (e *Executor) HideWhere(pred func(Action) bool) { e.hidden = pred }

// SetInvariantChecking toggles per-step invariant checks (on by default).
func (e *Executor) SetInvariantChecking(on bool) { e.invariants = on }

// OnStep registers a hook called after every performed step with the event
// (including hidden and internal ones). Hooks returning an error abort the
// run; simulation-relation checkers hang off this.
func (e *Executor) OnStep(fn func(TraceEvent) error) {
	e.stepHooks = append(e.stepHooks, fn)
}

// Trace returns the external trace accumulated so far. The returned slice
// is shared; callers must not modify it.
func (e *Executor) Trace() []TraceEvent { return e.trace }

// Steps returns the number of steps performed.
func (e *Executor) Steps() int { return e.steps }

// Rand exposes the executor's randomness source (for environments that want
// to share it).
func (e *Executor) Rand() *rand.Rand { return e.rng }

// Step performs one randomly chosen step. It returns false when no action
// is enabled anywhere and the environment offers nothing (quiescence).
func (e *Executor) Step() (bool, error) {
	e.scratch = e.scratch[:0]
	e.owners = e.owners[:0]
	for i, c := range e.components {
		before := len(e.scratch)
		e.scratch = c.Enabled(e.scratch)
		for range e.scratch[before:] {
			e.owners = append(e.owners, i)
		}
	}
	var envAct Action
	if e.env != nil {
		envAct = e.env.Next(e.rng)
	}
	total := len(e.scratch)
	if envAct != nil {
		total++
	}
	if total == 0 {
		return false, nil
	}
	pick := e.rng.Intn(total)
	var act Action
	var source string
	if pick == len(e.scratch) {
		act, source = envAct, "env"
	} else {
		owner := e.components[e.owners[pick]]
		act, source = e.scratch[pick], owner.Name()
		owner.Perform(act)
	}
	// Deliver as input to every other accepting component. (The owner does
	// not also receive its own output; none of our automata are wired that
	// way, matching the paper's compositions.)
	for i, c := range e.components {
		if source != "env" && i == e.owners[pick] {
			continue
		}
		if c.Classify(act) == Input {
			c.Input(act)
		}
	}
	e.steps++
	ev := TraceEvent{Source: source, Act: act}
	external := source == "env" || e.isExternalOutput(act, source)
	if external && (e.hidden == nil || !e.hidden(act)) {
		e.trace = append(e.trace, ev)
	}
	if e.invariants {
		for _, c := range e.components {
			if ic, ok := c.(InvariantChecker); ok {
				if err := ic.CheckInvariants(); err != nil {
					return false, fmt.Errorf("ioa: invariant violated in %s after step %d (%v): %w",
						c.Name(), e.steps, act, err)
				}
			}
		}
	}
	for _, hook := range e.stepHooks {
		if err := hook(ev); err != nil {
			return false, fmt.Errorf("ioa: step hook failed after step %d (%v): %w", e.steps, act, err)
		}
	}
	return true, nil
}

func (e *Executor) isExternalOutput(act Action, source string) bool {
	for _, c := range e.components {
		if c.Name() == source {
			return c.Classify(act) == Output
		}
	}
	return false
}

// Run performs up to maxSteps steps, stopping early at quiescence or on the
// first error.
func (e *Executor) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		ok, err := e.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// FormatTrace renders a trace one event per line, for debugging failures.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for i, ev := range events {
		fmt.Fprintf(&b, "%4d  %s\n", i, ev)
	}
	return b.String()
}
