package vsimpl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestThreeWayPartition: three disjoint components each converge to a view
// of exactly their members, and the VS trace stays conformant.
func TestThreeWayPartition(t *testing.T) {
	const n = 7
	c := newCluster(71, n, n, time.Millisecond, false)
	comps := []types.ProcSet{
		types.NewProcSet(0, 1, 2),
		types.NewProcSet(3, 4),
		types.NewProcSet(5, 6),
	}
	var cut sim.Time
	c.sim.After(40*time.Millisecond, func() {
		c.oracle.Partition(c.procs, comps...)
		cut = c.sim.Now()
	})
	if err := c.sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)
	for _, q := range comps {
		m := props.MeasureVS(c.log, q, cut)
		if !m.Converged {
			t.Errorf("component %v did not converge", q)
		}
	}
}

// TestSingletonViewOperation: a fully isolated node forms a singleton view
// and can send to itself — gpsnd, gprcv, and safe all work with one member.
func TestSingletonViewOperation(t *testing.T) {
	const n = 3
	c := newCluster(73, n, n, time.Millisecond, false)
	loner := types.NewProcSet(2)
	c.sim.After(30*time.Millisecond, func() {
		c.oracle.Partition(c.procs, types.NewProcSet(0, 1), loner)
	})
	c.sim.After(200*time.Millisecond, func() { c.nodes[2].Gpsnd("note-to-self") })
	if err := c.sim.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)
	v, ok := c.nodes[2].View()
	if !ok || !v.Set.Equal(loner) {
		t.Fatalf("loner's view = %v %t", v, ok)
	}
	st := c.nodes[2].Stats()
	if st.Delivered == 0 || st.SafeEmitted == 0 {
		t.Errorf("singleton view did not deliver/safe its own message: %+v", st)
	}
}

// TestTokenLossViaUglyLinkRecovers: an ugly link can swallow the token;
// the timeout machinery must form a new view and delivery must continue —
// with the trace still conformant throughout.
func TestTokenLossViaUglyLinkRecovers(t *testing.T) {
	const n = 4
	c := newCluster(75, n, n, time.Millisecond, false)
	c.sim.After(20*time.Millisecond, func() {
		// The ring is 0→1→2→3→0; make 1→2 ugly so tokens get lost there.
		c.oracle.SetChannel(1, 2, failures.Ugly)
	})
	var sent int
	var load func()
	load = func() {
		defer c.sim.After(40*time.Millisecond, load)
		sent++
		c.nodes[types.ProcID(sent%n)].Gpsnd(fmt.Sprintf("m%d", sent))
	}
	c.sim.After(30*time.Millisecond, load)
	c.sim.After(800*time.Millisecond, func() { c.oracle.Heal(c.procs) })
	if err := c.sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)
	// Progress continued: every node kept delivering after the heal.
	for _, p := range c.procs.Members() {
		if c.nodes[p].Stats().Delivered == 0 {
			t.Errorf("%v delivered nothing", p)
		}
	}
	// The disruption was actually exercised: someone timed out or dropped
	// packets on the ugly link.
	timeouts := 0
	for _, p := range c.procs.Members() {
		timeouts += c.nodes[p].Stats().Timeouts
	}
	if timeouts == 0 && c.net.Stats().DroppedUgly == 0 {
		t.Error("scenario exercised nothing (no timeouts, no ugly drops)")
	}
}

// TestStatsAccounting: basic sanity of the per-node counters in a stable
// run.
func TestStatsAccounting(t *testing.T) {
	const n = 3
	c := newCluster(77, n, n, time.Millisecond, false)
	c.sim.After(20*time.Millisecond, func() {
		c.nodes[0].Gpsnd("a")
		c.nodes[1].Gpsnd("b")
	})
	if err := c.sim.Run(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.procs.Members() {
		st := c.nodes[p].Stats()
		if st.Delivered != 2 {
			t.Errorf("%v delivered %d, want 2", p, st.Delivered)
		}
		if st.SafeEmitted != 2 {
			t.Errorf("%v safe-emitted %d, want 2", p, st.SafeEmitted)
		}
		if st.Timeouts != 0 {
			t.Errorf("%v timed out %d times in a stable run", p, st.Timeouts)
		}
		if p != 0 && st.TokenHops == 0 {
			t.Errorf("%v saw no token hops", p)
		}
		fs := c.nodes[p].FormerStats()
		if fs.Initiated != 0 {
			t.Errorf("%v initiated %d formations in a stable run", p, fs.Initiated)
		}
	}
	if c.nodes[0].ID() != 0 {
		t.Error("ID accessor wrong")
	}
}

// TestAnalyticHelpers: the Config bound formulas.
func TestAnalyticHelpers(t *testing.T) {
	cfg := Config{Delta: time.Millisecond, Pi: 5 * time.Millisecond, Mu: 20 * time.Millisecond}
	if got := cfg.TokenTimeout(3); got != 11*time.Millisecond {
		t.Errorf("TokenTimeout = %v, want 11ms", got)
	}
	// b = 9δ + max{π+(n+3)δ, μ} = 9 + max{11, 20} = 29ms.
	if got := cfg.AnalyticB(3); got != 29*time.Millisecond {
		t.Errorf("AnalyticB = %v, want 29ms", got)
	}
	// d = 2π + nδ = 13ms.
	if got := cfg.AnalyticD(3); got != 13*time.Millisecond {
		t.Errorf("AnalyticD = %v, want 13ms", got)
	}
	// d_impl = 3(π + nδ) = 24ms.
	if got := cfg.AnalyticDImpl(3); got != 24*time.Millisecond {
		t.Errorf("AnalyticDImpl = %v, want 24ms", got)
	}
	// Default config: π = (n+2)δ, μ = 2π.
	def := DefaultConfig(time.Millisecond, 4)
	if def.Pi != 6*time.Millisecond || def.Mu != 12*time.Millisecond {
		t.Errorf("DefaultConfig = %+v", def)
	}
}

// TestBadConfigPanics: timing parameters must be positive.
func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero config accepted")
		}
	}()
	c := newCluster(79, 2, 2, time.Millisecond, false)
	NewNode(9, c.procs, c.procs, c.sim, c.net, c.oracle, Config{}, Handlers{})
}

// TestJitterConformance: randomized per-packet delays never break the
// Lemma 4.2 trace properties.
func TestJitterConformance(t *testing.T) {
	const n = 4
	c := newCluster(91, n, n, time.Millisecond, true /* jitter */)
	var i int
	var load func()
	load = func() {
		if c.sim.Now() > sim.Time(600*time.Millisecond) {
			return
		}
		defer c.sim.After(15*time.Millisecond, load)
		i++
		c.nodes[types.ProcID(i%n)].Gpsnd(fmt.Sprintf("j%d", i))
	}
	c.sim.After(5*time.Millisecond, load)
	c.sim.After(200*time.Millisecond, func() {
		c.oracle.Partition(c.procs, types.NewProcSet(0, 1), types.NewProcSet(2, 3))
	})
	c.sim.After(450*time.Millisecond, func() { c.oracle.Heal(c.procs) })
	if err := c.sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)
	if c.nodes[0].Stats().Delivered == 0 {
		t.Fatal("nothing delivered under jitter")
	}
}

// TestCompactionDisabledStillConformant: the E11 ablation mode must not
// change behavior, only token size.
func TestCompactionDisabledStillConformant(t *testing.T) {
	run := func(noCompact bool) []check.MsgID {
		s := sim.New(93)
		oracle := failures.NewOracle(s.Now)
		nw := net.New(s, oracle, net.Config{Delta: time.Millisecond})
		procs := types.RangeProcSet(3)
		cfg := DefaultConfig(time.Millisecond, 3)
		cfg.NoTokenCompaction = noCompact
		log := &props.Log{}
		nodes := make([]*Node, 3)
		for i := range nodes {
			nodes[i] = NewNode(types.ProcID(i), procs, procs, s, nw, oracle, cfg, Handlers{})
			nodes[i].Log = log
		}
		for _, nd := range nodes {
			nd.Start()
		}
		for i := 0; i < 6; i++ {
			i := i
			s.After(time.Duration(5+10*i)*time.Millisecond, func() {
				nodes[i%3].Gpsnd(fmt.Sprintf("m%d", i))
			})
		}
		if err := s.Run(sim.Time(500 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		var order []check.MsgID
		for _, e := range log.Events {
			if e.Kind == props.VSGprcv && e.P == 0 {
				order = append(order, e.Msg)
			}
		}
		return order
	}
	with := run(false)
	without := run(true)
	if len(with) != 6 || len(without) != 6 {
		t.Fatalf("deliveries: %d with, %d without", len(with), len(without))
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("delivery order differs at %d", i)
		}
	}
}
