package vsimpl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// cluster is a test fixture: n VS nodes over a simulated network with a
// shared timed event log.
type cluster struct {
	sim    *sim.Sim
	oracle *failures.Oracle
	net    *net.Network
	nodes  map[types.ProcID]*Node
	log    *props.Log
	procs  types.ProcSet
	cfg    Config
}

func newCluster(seed int64, n int, p0Size int, delta time.Duration, jitter bool) *cluster {
	s := sim.New(seed)
	oracle := failures.NewOracle(s.Now)
	nw := net.New(s, oracle, net.Config{Delta: delta, Jitter: jitter, UglyLossProb: 0.5, UglyMaxDelayFactor: 10})
	procs := types.RangeProcSet(n)
	p0 := types.NewProcSet(procs.Members()[:p0Size]...)
	cfg := DefaultConfig(delta, n)
	c := &cluster{
		sim: s, oracle: oracle, net: nw,
		nodes: make(map[types.ProcID]*Node),
		log:   &props.Log{},
		procs: procs,
		cfg:   cfg,
	}
	for _, p := range procs.Members() {
		node := NewNode(p, procs, p0, s, nw, oracle, cfg, Handlers{})
		node.Log = c.log
		c.nodes[p] = node
	}
	for _, p := range procs.Members() {
		c.nodes[p].Start()
	}
	return c
}

// conformance replays the recorded VS events through the Lemma 4.2
// checker.
func (c *cluster) conformance(t *testing.T, p0 types.ProcSet) {
	t.Helper()
	ck := check.NewVSChecker(c.procs, p0)
	for _, e := range c.log.Events {
		var err error
		switch e.Kind {
		case props.VSNewview:
			err = ck.Newview(e.View, e.P)
		case props.VSGpsnd:
			err = ck.Gpsnd(e.Msg)
		case props.VSGprcv:
			err = ck.Gprcv(e.Msg, e.P)
		case props.VSSafe:
			err = ck.Safe(e.Msg, e.P)
		}
		if err != nil {
			t.Fatalf("VS conformance: %v\nevent: %v", err, e)
		}
	}
}

func (c *cluster) p0(size int) types.ProcSet {
	return types.NewProcSet(c.procs.Members()[:size]...)
}

// TestStableViewDelivery: all processors good, everyone in the initial
// view; messages sent are delivered everywhere and become safe within the
// analytic d bound.
func TestStableViewDelivery(t *testing.T) {
	const n = 5
	delta := time.Millisecond
	c := newCluster(7, n, n, delta, false)

	// Send a burst of messages from every node shortly after start.
	c.sim.After(2*c.cfg.Pi, func() {
		for _, p := range c.procs.Members() {
			c.nodes[p].Gpsnd(fmt.Sprintf("hello-from-%v", p))
		}
	})
	if err := c.sim.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)

	m := props.MeasureVS(c.log, c.procs, 0)
	if !m.Converged {
		t.Fatalf("views did not converge: %+v", m)
	}
	if m.FinalView.ID != types.G0() {
		t.Errorf("stable run changed views: final %v", m.FinalView)
	}
	if m.IncompleteSafe > 0 {
		t.Fatalf("%d/%d messages missing safe events", m.IncompleteSafe, m.MsgsMeasured)
	}
	if want := c.cfg.AnalyticD(n); m.MaxSafeLag > want {
		t.Errorf("safe lag %v exceeds analytic d=%v", m.MaxSafeLag, want)
	}
	if m.MsgsMeasured != n {
		t.Errorf("measured %d messages, want %d", m.MsgsMeasured, n)
	}
}

// TestPartitionFormsTwoViews: cutting the network in two must produce two
// disjoint views, each holding its component exactly, within the analytic
// stabilization bound b.
func TestPartitionFormsTwoViews(t *testing.T) {
	const n = 6
	delta := time.Millisecond
	c := newCluster(11, n, n, delta, false)
	left := types.NewProcSet(0, 1, 2)
	right := types.NewProcSet(3, 4, 5)

	var cut sim.Time
	c.sim.After(50*time.Millisecond, func() {
		c.oracle.Partition(c.procs, left, right)
		cut = c.sim.Now()
	})
	if err := c.sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)

	b := c.cfg.AnalyticB(n)
	for _, q := range []types.ProcSet{left, right} {
		m := props.MeasureVS(c.log, q, cut)
		if !m.Converged {
			t.Fatalf("component %v did not converge to its own view", q)
		}
		if m.LPrime > b {
			t.Errorf("component %v stabilized in %v, exceeding analytic b=%v", q, m.LPrime, b)
		}
	}
}

// TestMergeAfterHeal: healing a partition must merge the components back
// into one view over the full universe.
func TestMergeAfterHeal(t *testing.T) {
	const n = 5
	delta := time.Millisecond
	c := newCluster(13, n, n, delta, false)
	left := types.NewProcSet(0, 1, 2)
	right := types.NewProcSet(3, 4)

	c.sim.After(50*time.Millisecond, func() { c.oracle.Partition(c.procs, left, right) })
	var heal sim.Time
	c.sim.After(400*time.Millisecond, func() {
		c.oracle.Heal(c.procs)
		heal = c.sim.Now()
	})
	if err := c.sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)

	m := props.MeasureVS(c.log, c.procs, heal)
	if !m.Converged {
		for _, p := range c.procs.Members() {
			v, ok := c.nodes[p].View()
			t.Logf("%v: view %v (defined %t)", p, v, ok)
		}
		t.Fatalf("universe did not merge after heal")
	}
	if b := c.cfg.AnalyticB(n); m.LPrime > b {
		t.Errorf("merge took %v, exceeding analytic b=%v", m.LPrime, b)
	}
}

// TestCrashAndRecovery: a stopped leader must be excluded within the
// stabilization bound, and reintegrated after it recovers.
func TestCrashAndRecovery(t *testing.T) {
	const n = 4
	delta := time.Millisecond
	c := newCluster(17, n, n, delta, false)
	survivors := types.NewProcSet(1, 2, 3)

	var crash sim.Time
	c.sim.After(40*time.Millisecond, func() {
		// Processor 0 is the initial leader: stopping it also kills the
		// token.
		c.oracle.SetProc(0, failures.Bad)
		// Channels to and from it are bad too (a stopped endpoint).
		for _, p := range survivors.Members() {
			c.oracle.SetChannel(0, p, failures.Bad)
			c.oracle.SetChannel(p, 0, failures.Bad)
		}
		crash = c.sim.Now()
	})
	var recover sim.Time
	c.sim.After(500*time.Millisecond, func() {
		c.oracle.Heal(c.procs)
		recover = c.sim.Now()
	})
	if err := c.sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.procs)

	mSurv := props.MeasureVS(c.log.Until(recover), survivors, crash)
	if !mSurv.Converged {
		t.Fatalf("survivors did not form their own view after the crash")
	}
	if b := c.cfg.AnalyticB(n); mSurv.LPrime > b {
		t.Errorf("survivor convergence took %v, exceeding analytic b=%v", mSurv.LPrime, b)
	}
	// Note survivors converge and later merge with the recovered node, so
	// measure survivor convergence against the pre-recovery portion: the
	// final view over everyone must exist after recovery.
	mAll := props.MeasureVS(c.log, c.procs, recover)
	if !mAll.Converged {
		t.Fatalf("recovered processor was not reintegrated")
	}
}

// TestSendWithoutViewIgnored: a processor outside any view may gpsnd;
// the message must be ignored, never delivered.
func TestSendWithoutViewIgnored(t *testing.T) {
	const n = 3
	c := newCluster(19, n, 2 /* p2 starts with no view */, time.Millisecond, false)
	outsider := c.nodes[types.ProcID(2)]
	outsider.Gpsnd("orphan")
	if err := c.sim.Run(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	c.conformance(t, c.p0(2))
	for _, e := range c.log.Events {
		if e.Kind == props.VSGprcv && e.Msg.Sender == 2 && e.Msg.Seq == 0 {
			t.Fatalf("orphan message delivered: %v", e)
		}
	}
	if outsider.Stats().Sent != 0 {
		t.Errorf("gpsnd with no view counted as sent")
	}
}
