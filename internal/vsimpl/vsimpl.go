// Package vsimpl implements the VS service sketched in Section 8: the
// Cristian–Schmuck-style membership protocol of package membership holds a
// view together with a circulating token that carries the per-view message
// sequence and per-member delivery counts.
//
// Once a view is installed, a deterministically chosen leader (the minimum
// member) launches a token around the logical ring of members, spacing
// launches by π. Each member, when the token passes: appends its buffered
// client messages to the token's sequence, delivers (gprcv) every message
// of the sequence it has not yet delivered, records its delivery count in
// the token, and emits safe events for the prefix of the sequence that
// every member's recorded count covers. A member that sees no token
// activity for the timeout π + (n+3)δ initiates a view change, as does a
// member contacted by a processor outside its membership (probes are sent
// to non-members every μ).
//
// Under the physical assumptions of Section 8 (good processors act
// immediately, good channels deliver within δ) this implements
// VS(b, d, Q) with b = 9δ + max{π + (n+3)δ, μ} and d = 2π + nδ, which
// experiment E4 measures.
package vsimpl

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config holds the protocol's timing parameters.
type Config struct {
	// Delta is δ, the good-channel delivery bound (must match the network).
	Delta time.Duration
	// Pi is π, the spacing of token launches by the ring leader; the
	// analysis requires π > nδ.
	Pi time.Duration
	// Mu is μ, the spacing of probes to processors outside the membership.
	Mu time.Duration
	// CollectWait overrides the membership collection window when positive.
	// The default is 2.5δ: the accept round trip takes up to 2δ exactly,
	// and windows at or below 2δ lose worst-case replies (the E9 ablation
	// demonstrates the cliff).
	CollectWait time.Duration
	// OneRound switches membership to the one-round protocol of footnote
	// 7: views are announced directly from a reachability estimate. Saves
	// a round trip in the stable case, stabilizes more slowly after
	// failures (experiment E10 quantifies the trade).
	OneRound bool
	// NoTokenCompaction disables dropping all-delivered entries from the
	// circulating token (the E11 ablation: without compaction the token
	// grows with the view's entire history).
	NoTokenCompaction bool
	// ReachWindow is the staleness horizon of the one-round reachability
	// estimate (default 2μ).
	ReachWindow time.Duration
	// EagerRelaunch makes the leader relaunch the token immediately when
	// the returning rotation shows work still queued — messages buffered
	// anywhere, or a sequence suffix not yet emitted safe — instead of
	// pacing every launch at π. An idle ring still launches at the π
	// cadence, and a rotation costs at least nδ of wire time, so eager
	// rounds cannot spin; they just stop a loaded ring from idling between
	// rotations while TOBcasts queue up.
	EagerRelaunch bool
	// InstallSlack stretches the patience windows that implicitly assume a
	// view installation is instantaneous: the token-loss timeout and the
	// formation hold-off. With write-ahead install gating (internal/
	// recovery), an accepted view commits only once its WAL record is
	// durable — a λ-latency storage write — so the leader launches the new
	// view's first token up to λ late; detectors calibrated for immediate
	// installs would declare the token lost and re-form forever. The stack
	// sets this to its storage latency.
	InstallSlack time.Duration
	// Obs, when non-nil, receives the layer's metrics (vs.* instruments,
	// mb.* via the membership Former) and trace events. Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
}

// DefaultConfig derives π and μ from δ for an n-processor universe:
// π = (n+2)δ (comfortably above the nδ requirement) and μ = 2π.
func DefaultConfig(delta time.Duration, n int) Config {
	pi := time.Duration(n+2) * delta
	return Config{Delta: delta, Pi: pi, Mu: 2 * pi}
}

// TokenTimeout returns the token-loss detection bound π + (n+3)δ used by
// the paper's analysis for a view of n members, stretched by InstallSlack
// when installations are gated on stable storage.
func (c Config) TokenTimeout(n int) time.Duration {
	return c.Pi + time.Duration(n+3)*c.Delta + c.InstallSlack
}

// AnalyticB returns the paper's stabilization bound
// b = 9δ + max{π + (n+3)δ, μ}.
func (c Config) AnalyticB(n int) time.Duration {
	detect := c.TokenTimeout(n)
	if c.Mu > detect {
		detect = c.Mu
	}
	return 9*c.Delta + detect
}

// AnalyticD returns the paper's delivery bound d = 2π + nδ, quoted from
// the [19] analysis of the Section 8 protocol.
func (c Config) AnalyticD(n int) time.Duration {
	return 2*c.Pi + time.Duration(n)*c.Delta
}

// AnalyticDImpl returns the worst-case safe-latency bound for *this*
// package's token discipline, d_impl = 3(π + nδ): a message can wait one
// full token period for pickup, needs one rotation to reach every member,
// and one more for the members' delivery counts to propagate back through
// the token before safe can be announced everywhere. The paper quotes
// d = 2π + nδ for the exact protocol of [19]; ours has the same linear
// shape in π, n and δ with a larger constant, and measured values usually
// fall between the two (experiment E4 reports both).
func (c Config) AnalyticDImpl(n int) time.Duration {
	return 3 * (c.Pi + time.Duration(n)*c.Delta)
}

// Handlers is the upward-facing VS interface: the events of Figure 6
// delivered to the layer above (VStoTO in the paper's Figure 1).
type Handlers struct {
	Newview func(v types.View)
	Gprcv   func(from types.ProcID, payload any)
	Safe    func(from types.ProcID, payload any)
}

// TokenMsg is one entry of a token's per-view message sequence. Exported
// so the wire codec can serialize tokens crossing the simulated network.
type TokenMsg struct {
	ID      check.MsgID
	From    types.ProcID
	Payload any
}

// TokenPkt is the circulating token.
type TokenPkt struct {
	View types.View
	// Base is the number of leading entries of the view's total order
	// compacted out of the token: Msgs[i] is the view's (Base+i+1)-th
	// message. Entries may be dropped once every member's Delivered count
	// covers them (they can never need re-delivery), which keeps the token
	// bounded by the in-flight window instead of growing with the view's
	// whole history. The E11 ablation measures the difference.
	Base      int
	Msgs      []TokenMsg // entries Base+1 .. Base+len(Msgs) of the total order
	Delivered map[types.ProcID]int
}

// ProbePkt is the periodic contact attempt to non-members.
type ProbePkt struct {
	ViewID types.ViewID // sender's current view id (⊥ if none), for Observe
}

type bufMsg struct {
	ID      check.MsgID
	Payload any
	View    types.ViewID
}

// Node is one processor's VS endpoint.
type Node struct {
	id       types.ProcID
	universe types.ProcSet
	sim      *sim.Sim
	net      transport.Transport
	oracle   *failures.Oracle
	cfg      Config
	handlers Handlers
	former   *membership.Former

	// Log, when non-nil, records timed VS events for property evaluation
	// and conformance checking.
	Log *props.Log

	cur     types.View
	hasView bool
	dead    bool

	lastHeard map[types.ProcID]sim.Time

	sendSeq int
	buffer  []bufMsg

	// Per-view delivery state.
	seq        []TokenMsg // messages of the current view delivered here
	safeSent   int        // prefix of seq for which safe was emitted
	counts     map[types.ProcID]int
	lastLaunch sim.Time
	launchNo   int
	tokenTimer sim.Timer
	holdTimer  sim.Timer

	stats Stats

	// Observability handles (bound from cfg.Obs; all nil when disabled).
	mTokenLaunches   *obs.Counter
	mTokenHops       *obs.Counter
	mTokenTimeouts   *obs.Counter
	mProbes          *obs.Counter
	mInstalls        *obs.Counter
	mTokenRound      *obs.Histogram
	mMaxTokenEntries *obs.Gauge
	mBuffered        *obs.Gauge // current client messages awaiting token pickup
	tracer           *obs.Tracer
}

// Stats counts node activity for the experiment reports.
type Stats struct {
	Sent        int
	Delivered   int
	SafeEmitted int
	TokenHops   int
	Timeouts    int
	ProbesSent  int
	// MaxTokenEntries is the largest token (entry count) this node handled.
	MaxTokenEntries int
}

// NewNode creates the VS endpoint for processor id. Processors in p0 start
// in the initial view ⟨g0, P0⟩; others start with no view. Call Start once
// the whole system is wired.
func NewNode(id types.ProcID, universe, p0 types.ProcSet, s *sim.Sim, nw transport.Transport,
	oracle *failures.Oracle, cfg Config, handlers Handlers) *Node {
	if cfg.Pi <= 0 || cfg.Delta <= 0 || cfg.Mu <= 0 {
		panic(fmt.Sprintf("vsimpl: non-positive timing parameter %+v", cfg))
	}
	n := &Node{
		id:        id,
		universe:  universe,
		sim:       s,
		net:       nw,
		oracle:    oracle,
		cfg:       cfg,
		handlers:  handlers,
		counts:    make(map[types.ProcID]int),
		lastHeard: make(map[types.ProcID]sim.Time),
	}
	var initial types.View
	if p0.Contains(id) {
		initial = types.InitialView(p0)
		n.cur = initial
		n.hasView = true
	}
	// The accept round trip takes up to 2δ exactly; collect slightly longer
	// so worst-case replies are not lost to event-ordering ties.
	collectWait := cfg.CollectWait
	if collectWait <= 0 {
		collectWait = 2*cfg.Delta + cfg.Delta/2
	}
	n.former = membership.NewFormer(id, universe, s, nw, collectWait, initial, n.install)
	n.former.Instrument(cfg.Obs)
	// Hold off competing initiations for one full formation (call δ +
	// collect + newview δ) plus slack, plus the install-gating latency.
	n.former.HoldOff = collectWait + 4*cfg.Delta + cfg.InstallSlack
	n.mTokenLaunches = cfg.Obs.Counter("vs.token_launches")
	n.mTokenHops = cfg.Obs.Counter("vs.token_hops")
	n.mTokenTimeouts = cfg.Obs.Counter("vs.token_timeouts")
	n.mProbes = cfg.Obs.Counter("vs.probes")
	n.mInstalls = cfg.Obs.Counter("vs.installs")
	n.mTokenRound = cfg.Obs.Histogram("vs.token_round")
	n.mMaxTokenEntries = cfg.Obs.Gauge("vs.max_token_entries")
	n.mBuffered = cfg.Obs.Gauge("vs.buffered")
	n.tracer = cfg.Obs.Tracer()
	if cfg.OneRound {
		window := cfg.ReachWindow
		if window <= 0 {
			window = 2 * cfg.Mu
		}
		n.former.SetOneRound(func() types.ProcSet { return n.reachableWithin(window) })
	}
	nw.Register(id, n.receive)
	return n
}

// Resume parameterizes a node rebuilt after an amnesia crash, from the
// floors its predecessor persisted (see internal/recovery).
type Resume struct {
	// ViewFloor is the identifier of the last view durably installed
	// before the crash (⊥ if none): the rebuilt node only installs or
	// proposes views strictly above it, preserving local monotonicity
	// across incarnations.
	ViewFloor types.ViewID
	// SendSeqFloor is the base of the new incarnation's send-sequence
	// space: MsgIDs start strictly above it. The stack derives it from the
	// durable incarnation number, partitioning the sequence space so that
	// identifiers never repeat across restarts regardless of how far the
	// wiped incarnation's volatile counter had advanced.
	SendSeqFloor int
}

// NewRecoveredNode creates the VS endpoint for a processor restarting
// after an amnesia crash: it holds no view (membership pulls it back in,
// respecting the floors) and must replace a predecessor that has been
// Stopped. Call Start once wired.
func NewRecoveredNode(id types.ProcID, universe types.ProcSet, s *sim.Sim, nw transport.Transport,
	oracle *failures.Oracle, cfg Config, res Resume, handlers Handlers) *Node {
	n := NewNode(id, universe, types.ProcSet{}, s, nw, oracle, cfg, handlers)
	n.sendSeq = res.SendSeqFloor
	if !res.ViewFloor.IsBottom() {
		collectWait := cfg.CollectWait
		if collectWait <= 0 {
			collectWait = 2*cfg.Delta + cfg.Delta/2
		}
		n.former = membership.NewFormer(id, universe, s, nw, collectWait,
			types.View{ID: res.ViewFloor}, n.install)
		n.former.Instrument(cfg.Obs)
		n.former.HoldOff = collectWait + 4*cfg.Delta + cfg.InstallSlack
		if cfg.OneRound {
			window := cfg.ReachWindow
			if window <= 0 {
				window = 2 * cfg.Mu
			}
			n.former.SetOneRound(func() types.ProcSet { return n.reachableWithin(window) })
		}
	}
	return n
}

// Stop permanently deactivates the node: timers are cancelled, the
// membership layer is stopped, and every later packet or input is
// ignored. An amnesia crash calls this on the wiped incarnation before
// NewRecoveredNode re-registers a replacement with the network.
func (n *Node) Stop() {
	n.dead = true
	n.tokenTimer.Cancel()
	n.tokenTimer = sim.Timer{}
	n.holdTimer.Cancel()
	n.holdTimer = sim.Timer{}
	n.former.Stop()
}

// reachableWithin returns the processors heard from within the window —
// the one-round protocol's membership estimate.
func (n *Node) reachableWithin(window time.Duration) types.ProcSet {
	var ids []types.ProcID
	now := n.sim.Now()
	for p, at := range n.lastHeard {
		if now.Sub(at) <= window {
			ids = append(ids, p)
		}
	}
	return types.NewProcSet(ids...)
}

// ID returns the processor identifier.
func (n *Node) ID() types.ProcID { return n.id }

// View returns the current view; ok is false while the view is ⊥.
func (n *Node) View() (types.View, bool) { return n.cur, n.hasView }

// Stats returns the activity counters.
func (n *Node) Stats() Stats { return n.stats }

// FormerStats returns the membership layer's counters.
func (n *Node) FormerStats() membership.Stats { return n.former.Stats() }

// SetInstallGate interposes on view installation at the membership layer
// (see membership.Former.Gate). The stack's recovery layer uses it to make
// installations write-ahead: the view record is durable before the view
// takes effect, so a restart can always restore a floor at or above every
// installation the previous incarnation announced. Set before Start.
func (n *Node) SetInstallGate(gate func(types.View, func())) { n.former.Gate = gate }

// Start arms the node's timers; in the initial view the leader launches
// the first token immediately.
func (n *Node) Start() {
	if n.Log != nil && n.hasView {
		n.Log.SetInitial(n.id, n.cur)
	}
	if n.hasView {
		n.armTokenTimer()
		if n.isLeader() {
			n.launchToken()
		}
	} else {
		// A processor outside P0 knows nothing; its probe/timeout machinery
		// will pull it into a view.
		n.tokenTimer = n.sim.After(n.cfg.TokenTimeout(n.universe.Size()), n.onTokenTimeout)
	}
	n.sim.After(n.cfg.Mu, n.probeTick)
}

// Gpsnd accepts a client message. Sent while the view is ⊥, the message is
// ignored, exactly as VS-machine specifies.
func (n *Node) Gpsnd(payload any) {
	if n.dead || n.down() {
		return
	}
	if !n.hasView {
		return
	}
	n.sendSeq++
	n.stats.Sent++
	id := check.MsgID{Sender: n.id, Seq: n.sendSeq}
	n.buffer = append(n.buffer, bufMsg{ID: id, Payload: payload, View: n.cur.ID})
	n.mBuffered.Set(int64(len(n.buffer)))
	if n.Log != nil {
		n.Log.Append(props.Event{T: n.sim.Now(), Kind: props.VSGpsnd, P: n.id, Msg: id})
	}
}

// BufferedLen returns how many accepted client messages are waiting for
// token pickup in the current view — observational only; labeled values
// are never dropped on its account (the TryBcast bound upstream in
// internal/stack is the only admission control).
func (n *Node) BufferedLen() int { return len(n.buffer) }

// down reports whether this processor is currently stopped (bad or
// amnesiac).
func (n *Node) down() bool { return n.oracle.Proc(n.id).Down() }

func (n *Node) isLeader() bool { return n.hasView && n.cur.Set.Min() == n.id }

// install is the membership layer's callback: a new view takes effect.
func (n *Node) install(v types.View) {
	n.mInstalls.Inc()
	n.tracer.Emit("vs", "newview", n.id, obs.NoPeer, v.ID.Epoch, "")
	n.cur = v
	n.hasView = true
	n.seq = nil
	n.safeSent = 0
	n.counts = make(map[types.ProcID]int)
	n.launchNo = 0
	n.lastLaunch = 0
	// Messages buffered for older views are dropped: VS delivers a message
	// only in its sending view, and undelivered suffixes are permitted.
	kept := n.buffer[:0]
	for _, m := range n.buffer {
		if m.View == v.ID {
			kept = append(kept, m)
		}
	}
	n.buffer = kept
	n.mBuffered.Set(int64(len(n.buffer)))
	n.holdTimer.Cancel()
	n.holdTimer = sim.Timer{}
	if n.Log != nil {
		n.Log.Append(props.Event{T: n.sim.Now(), Kind: props.VSNewview, P: n.id, View: v})
	}
	if n.handlers.Newview != nil {
		n.handlers.Newview(v)
	}
	n.armTokenTimer()
	if n.isLeader() {
		n.launchToken()
	}
}

// receive dispatches an incoming packet.
func (n *Node) receive(pkt transport.Packet) {
	if n.dead || n.down() {
		return
	}
	n.lastHeard[pkt.From] = n.sim.Now()
	switch p := pkt.Payload.(type) {
	case membership.CallPkt:
		n.former.HandleCall(pkt.From, p)
	case membership.AcceptPkt:
		n.former.HandleAccept(pkt.From, p)
	case membership.NewviewPkt:
		n.former.HandleNewview(p)
	case *TokenPkt:
		n.handleToken(p)
	case ProbePkt:
		n.former.Observe(p.ViewID)
		n.handleProbe(pkt.From)
	default:
		panic(fmt.Sprintf("vsimpl: unexpected payload %T", pkt.Payload))
	}
}

// handleProbe reacts to contact from a processor outside the current
// membership: a new view is needed (Section 8's merge trigger).
func (n *Node) handleProbe(from types.ProcID) {
	if n.hasView && n.cur.Set.Contains(from) {
		return // routine contact from a fellow member
	}
	n.former.Initiate()
}

// launchToken starts a fresh circulation of the token from the leader.
func (n *Node) launchToken() {
	if !n.isLeader() || n.down() {
		return
	}
	n.launchNo++
	n.mTokenLaunches.Inc()
	n.lastLaunch = n.sim.Now()
	tok := &TokenPkt{
		View:      n.cur,
		Msgs:      append([]TokenMsg(nil), n.seq...),
		Delivered: copyCounts(n.counts),
	}
	n.compactToken(tok)
	// A launch counts as token activity; in a singleton view it is the only
	// activity, and must keep the loss detector quiet.
	n.armTokenTimer()
	n.mergeToken(tok)
	n.forwardToken(tok)
}

func copyCounts(m map[types.ProcID]int) map[types.ProcID]int {
	out := make(map[types.ProcID]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// handleToken processes a token arriving over the ring.
func (n *Node) handleToken(tok *TokenPkt) {
	if !n.hasView || tok.View.ID != n.cur.ID {
		n.former.Observe(tok.View.ID)
		return // stale token from a view we have left (or never joined)
	}
	n.stats.TokenHops++
	n.mTokenHops.Inc()
	n.armTokenTimer()
	n.mergeToken(tok)
	if n.isLeader() {
		// The token is home: one full ring rotation has completed.
		n.mTokenRound.Record(n.sim.Now().Sub(n.lastLaunch))
		// With eager relaunch, a rotation that comes home with work still
		// queued — buffered messages or a sequence suffix not yet safe —
		// starts the next rotation immediately: the queued messages and
		// the count propagation they are waiting on ride the very next
		// round instead of idling out the rest of the π window. The ring's
		// nδ wire time paces consecutive rounds, so this cannot spin.
		if n.cfg.EagerRelaunch && (len(n.buffer) > 0 || n.safeSent < len(n.seq)) {
			n.holdTimer.Cancel()
			n.launchToken()
			return
		}
		// Hold it and relaunch π after the previous launch (the paper's
		// "spacing of token creation").
		next := n.lastLaunch.Add(n.cfg.Pi)
		n.holdTimer.Cancel()
		if next <= n.sim.Now() {
			n.launchToken()
		} else {
			launch := n.launchNo
			n.holdTimer = n.sim.At(next, func() {
				if n.launchNo == launch { // no view change in between
					n.launchToken()
				}
			})
		}
		return
	}
	n.forwardToken(tok)
}

// mergeToken appends this node's buffered messages to the token, delivers
// everything not yet delivered here, updates counts, and emits safe events
// for the all-members-delivered prefix.
func (n *Node) mergeToken(tok *TokenPkt) {
	// Pick up buffered client messages for this view.
	for _, m := range n.buffer {
		tok.Msgs = append(tok.Msgs, TokenMsg{ID: m.ID, From: n.id, Payload: m.Payload})
	}
	n.buffer = n.buffer[:0]
	n.mBuffered.Set(0)
	if len(tok.Msgs) > n.stats.MaxTokenEntries {
		n.stats.MaxTokenEntries = len(tok.Msgs)
	}
	n.mMaxTokenEntries.Max(int64(len(tok.Msgs)))
	// Deliver the sequence suffix we have not delivered yet. Compaction
	// guarantees Base ≤ every member's count ≤ len(n.seq), so the suffix
	// beyond our count is always present in the token.
	for i := len(n.seq) - tok.Base; i < len(tok.Msgs); i++ {
		m := tok.Msgs[i]
		n.seq = append(n.seq, m)
		n.stats.Delivered++
		if n.Log != nil {
			n.Log.Append(props.Event{T: n.sim.Now(), Kind: props.VSGprcv, P: n.id, From: m.From, Msg: m.ID})
		}
		if n.handlers.Gprcv != nil {
			n.handlers.Gprcv(m.From, m.Payload)
		}
	}
	// Merge delivery counts (ours is now len(seq)).
	for p, c := range tok.Delivered {
		if c > n.counts[p] {
			n.counts[p] = c
		}
	}
	n.counts[n.id] = len(n.seq)
	tok.Delivered = copyCounts(n.counts)
	n.compactToken(tok)
	// Safe prefix: every member's count covers it.
	safeUpTo := len(n.seq)
	for _, p := range n.cur.Set.Members() {
		if c := n.counts[p]; c < safeUpTo {
			safeUpTo = c
		}
	}
	for ; n.safeSent < safeUpTo; n.safeSent++ {
		m := n.seq[n.safeSent]
		n.stats.SafeEmitted++
		if n.Log != nil {
			n.Log.Append(props.Event{T: n.sim.Now(), Kind: props.VSSafe, P: n.id, From: m.From, Msg: m.ID})
		}
		if n.handlers.Safe != nil {
			n.handlers.Safe(m.From, m.Payload)
		}
	}
}

// compactToken drops token entries already delivered at every member of
// the view (per the counts the token carries). Counts only grow, so a
// conservative (stale) minimum is always safe.
func (n *Node) compactToken(tok *TokenPkt) {
	if n.cfg.NoTokenCompaction {
		return
	}
	minCount := int(^uint(0) >> 1)
	for _, p := range tok.View.Set.Members() {
		if c := tok.Delivered[p]; c < minCount {
			minCount = c
		}
	}
	if minCount > tok.Base {
		tok.Msgs = append([]TokenMsg(nil), tok.Msgs[minCount-tok.Base:]...)
		tok.Base = minCount
	}
}

// forwardToken sends the token to the next member around the ring.
func (n *Node) forwardToken(tok *TokenPkt) {
	members := n.cur.Set.Members()
	if len(members) == 1 {
		// Singleton view: the token never travels, so the homecoming path
		// in handleToken never runs. Schedule the relaunch here, or the
		// node would starve its own messages and churn on token timeouts.
		n.holdTimer.Cancel()
		launch := n.launchNo
		n.holdTimer = n.sim.At(n.lastLaunch.Add(n.cfg.Pi), func() {
			if n.launchNo == launch {
				n.launchToken()
			}
		})
		return
	}
	next := members[0]
	for i, p := range members {
		if p == n.id {
			next = members[(i+1)%len(members)]
			break
		}
	}
	n.net.Send(n.id, next, tok)
}

// armTokenTimer (re)arms token-loss detection.
func (n *Node) armTokenTimer() {
	n.tokenTimer.Cancel()
	size := n.universe.Size()
	if n.hasView {
		size = n.cur.Set.Size()
	}
	n.tokenTimer = n.sim.After(n.cfg.TokenTimeout(size), n.onTokenTimeout)
}

func (n *Node) onTokenTimeout() {
	if n.dead {
		return
	}
	if n.down() {
		// A stopped processor keeps a timer armed so it reintegrates after
		// recovery, but takes no action now.
		n.armTokenTimer()
		return
	}
	n.stats.Timeouts++
	n.mTokenTimeouts.Inc()
	n.tracer.Emit("vs", "token_timeout", n.id, obs.NoPeer, 0, "")
	n.former.Initiate()
	n.armTokenTimer()
}

// probeTick sends probes to processors outside the membership and re-arms.
func (n *Node) probeTick() {
	if n.dead {
		return // a stopped incarnation re-arms nothing
	}
	defer n.sim.After(n.cfg.Mu, n.probeTick)
	if n.down() {
		return
	}
	vid := types.Bottom
	if n.hasView {
		vid = n.cur.ID
	}
	for _, p := range n.universe.Members() {
		if p == n.id {
			continue
		}
		// In one-round mode probes double as heartbeats: the reachability
		// estimate needs fresh lastHeard entries for members too.
		if !n.cfg.OneRound && n.hasView && n.cur.Set.Contains(p) {
			continue
		}
		n.stats.ProbesSent++
		n.mProbes.Inc()
		n.net.Send(n.id, p, ProbePkt{ViewID: vid})
	}
}
