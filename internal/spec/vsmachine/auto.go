package vsmachine

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Auto adapts Machine to the ioa framework so it composes with the VStoTO
// automata (Section 6's VStoTO-system) and with randomized environments.
type Auto struct {
	M *Machine
	// Proposer, when non-nil, supplies candidate views for the unbounded
	// createview nondeterminism; enabled candidates are offered to the
	// executor as internal actions.
	Proposer func() []types.View
}

// NewAuto wraps a fresh machine.
func NewAuto(procs, p0 types.ProcSet) *Auto { return &Auto{M: New(procs, p0)} }

// NewWeakAuto wraps a fresh WeakVS-machine.
func NewWeakAuto(procs, p0 types.ProcSet) *Auto { return &Auto{M: NewWeak(procs, p0)} }

// Name returns "VS-machine".
func (a *Auto) Name() string { return "VS-machine" }

// Classify implements the signature of Figure 6.
func (a *Auto) Classify(act ioa.Action) ioa.Kind {
	switch act.(type) {
	case Gpsnd:
		return ioa.Input
	case Gprcv, Safe, Newview:
		return ioa.Output
	case Createview, VSOrder:
		return ioa.Internal
	default:
		return ioa.NotInSignature
	}
}

// Input applies gpsnd.
func (a *Auto) Input(act ioa.Action) {
	g, ok := act.(Gpsnd)
	if !ok {
		panic(fmt.Sprintf("vsmachine: unexpected input %v", act))
	}
	a.M.ApplyGpsnd(g.M, g.P)
}

// Enabled enumerates the enabled locally controlled actions. The unbounded
// createview nondeterminism is resolved externally (see ViewProposer); this
// enumeration covers newview, vs-order, gprcv and safe, which are all
// finitely enabled.
func (a *Auto) Enabled(buf []ioa.Action) []ioa.Action {
	m := a.M
	if a.Proposer != nil {
		for _, v := range a.Proposer() {
			if m.CreateviewEnabled(v) {
				buf = append(buf, Createview{V: v})
			}
		}
	}
	// Iterate both maps in sorted key order: the executor resolves its
	// nondeterminism by drawing a random index into this slice, so the
	// enumeration order must be a pure function of the state — Go's
	// randomized map order would otherwise leak into seeded runs.
	for _, id := range m.CreatedViewIDs() {
		v := m.Created[id]
		for _, p := range v.Set.Members() {
			cur := m.CurrentViewID[p]
			if cur.IsBottom() || cur.Less(v.ID) {
				buf = append(buf, Newview{V: v, P: p})
			}
		}
	}
	keys := make([]pg, 0, len(m.pending))
	for k := range m.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].P != keys[j].P {
			return keys[i].P < keys[j].P
		}
		return keys[i].G.Less(keys[j].G)
	})
	for _, k := range keys {
		if pend := m.pending[k]; len(pend) > 0 {
			buf = append(buf, VSOrder{M: pend[0], P: k.P, G: k.G})
		}
	}
	for _, q := range m.procs.Members() {
		g := m.CurrentViewID[q]
		if g.IsBottom() {
			continue
		}
		queue := m.Queue[g]
		if n := m.nextIdx(q, g); n <= len(queue) {
			e := queue[n-1]
			buf = append(buf, Gprcv{M: e.M, P: e.P, Q: q})
		}
		if ns := m.nextSafeIdx(q, g); ns <= len(queue) {
			e := queue[ns-1]
			if m.SafeEnabled(e.M, e.P, q) {
				buf = append(buf, Safe{M: e.M, P: e.P, Q: q})
			}
		}
	}
	return buf
}

// Perform applies a locally controlled action.
func (a *Auto) Perform(act ioa.Action) {
	var err error
	switch t := act.(type) {
	case Createview:
		err = a.M.ApplyCreateview(t.V)
	case Newview:
		err = a.M.ApplyNewview(t.V, t.P)
	case VSOrder:
		err = a.M.ApplyVSOrder(t.M, t.P, t.G)
	case Gprcv:
		err = a.M.ApplyGprcv(t.M, t.P, t.Q)
	case Safe:
		err = a.M.ApplySafe(t.M, t.P, t.Q)
	default:
		err = fmt.Errorf("vsmachine: unexpected locally controlled action %v", act)
	}
	if err != nil {
		panic(err)
	}
}

// CheckInvariants defers to the machine (Lemma 4.1).
func (a *Auto) CheckInvariants() error { return a.M.CheckInvariants() }

// RandomViewProposer returns a Proposer that, with probability rate per
// round, offers one fresh view with random nonempty membership and an
// identifier above everything created so far. It resolves the unbounded
// createview nondeterminism in randomized safety runs.
func RandomViewProposer(a *Auto, rng *rand.Rand, rate float64) func() []types.View {
	return func() []types.View {
		if rng.Float64() >= rate {
			return nil
		}
		procs := a.M.procs.Members()
		var members []types.ProcID
		for _, p := range procs {
			if rng.Intn(2) == 0 {
				members = append(members, p)
			}
		}
		if len(members) == 0 {
			members = append(members, procs[rng.Intn(len(procs))])
		}
		max := a.M.MaxCreatedViewID()
		v := types.View{
			ID:  types.ViewID{Epoch: max.Epoch + 1, Proc: members[rng.Intn(len(members))]},
			Set: types.NewProcSet(members...),
		}
		return []types.View{v}
	}
}
