package vsmachine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/ioa"
	"repro/internal/types"
)

// TestWeakVSTracesAreVSTraces is the executable form of the remark after
// Lemma 4.2: WeakVS-machine (createview requires only a fresh identifier,
// not a maximal one) allows exactly the same finite traces as VS-machine.
// We drive WeakVS with deliberately out-of-order view creation and verify
// that every resulting external trace passes the VS-machine trace checker
// (createview is internal, so traces cannot reveal creation order).
func TestWeakVSTracesAreVSTraces(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const n = 4
			procs := types.RangeProcSet(n)
			p0 := types.NewProcSet(0, 1)
			auto := NewWeakAuto(procs, p0)
			exec := ioa.NewExecutor(seed, auto)

			// Out-of-order proposer: random epochs in a band, many below
			// the current maximum — exactly what the strong machine
			// forbids and the weak machine allows.
			rng := exec.Rand()
			auto.Proposer = func() []types.View {
				if rng.Float64() >= 0.08 {
					return nil
				}
				members := []types.ProcID{types.ProcID(rng.Intn(n))}
				for _, p := range procs.Members() {
					if rng.Intn(2) == 0 {
						members = append(members, p)
					}
				}
				return []types.View{{
					ID:  types.ViewID{Epoch: 2 + rng.Int63n(30), Proc: members[0]},
					Set: types.NewProcSet(members...),
				}}
			}
			var counter int
			exec.SetEnvironment(ioa.EnvironmentFunc(func(rng *rand.Rand) ioa.Action {
				counter++
				return Gpsnd{M: counter, P: types.ProcID(rng.Intn(n))}
			}))
			if err := exec.Run(3000); err != nil {
				t.Fatal(err)
			}

			// Replay the external trace through the Lemma 4.2 checker,
			// assigning MsgIDs per gpsnd (payloads are unique ints).
			ck := check.NewVSChecker(procs, p0)
			ids := make(map[any]check.MsgID)
			seqs := make(map[types.ProcID]int)
			outOfOrderCreations := 0
			maxSeen := types.Bottom
			for _, v := range auto.M.Created {
				if v.ID.Less(maxSeen) {
					outOfOrderCreations++
				}
				if maxSeen.Less(v.ID) {
					maxSeen = v.ID
				}
			}
			for _, ev := range exec.Trace() {
				var err error
				switch a := ev.Act.(type) {
				case Gpsnd:
					seqs[a.P]++
					id := check.MsgID{Sender: a.P, Seq: seqs[a.P]}
					ids[a.M] = id
					err = ck.Gpsnd(id)
				case Gprcv:
					err = ck.Gprcv(ids[a.M], a.Q)
				case Safe:
					err = ck.Safe(ids[a.M], a.Q)
				case Newview:
					err = ck.Newview(a.V, a.P)
				}
				if err != nil {
					t.Fatalf("WeakVS trace rejected by the VS checker: %v", err)
				}
			}
			if len(auto.M.Created) < 3 {
				t.Skipf("run created only %d views; weak behavior not exercised", len(auto.M.Created))
			}
		})
	}
}
