package vsmachine

import (
	"fmt"

	"repro/internal/types"
)

// CheckInvariants verifies all fourteen parts of Lemma 4.1 on the current
// state, returning a descriptive error naming the violated part.
//
// Part numbering follows the paper:
//  1. created view identifiers are unique
//  2. non-⊥ current-viewid[p] ∈ created-viewids
//  3. p is a member of its current view
//  4. pending[p,g] ≠ λ ⇒ g ∈ created-viewids
//  5. pending[p,g] ≠ λ ⇒ current-viewid[p] ≠ ⊥
//  6. pending[p,g] ≠ λ ⇒ g ≤ current-viewid[p]
//  7. queue[g] ≠ λ ⇒ g ∈ created-viewids
//  8. ⟨m,p⟩ ∈ queue[g] ⇒ current-viewid[p] ≠ ⊥
//  9. ⟨m,p⟩ ∈ queue[g] ⇒ g ≤ current-viewid[p]
//  10. next[p,g] ≤ length(queue[g]) + 1
//  11. next-safe[p,g] ≤ length(queue[g]) + 1
//  12. next-safe[p,g] ≤ next[p,g]
//  13. ⟨g,S⟩ ∈ created ∧ next[p,g] ≠ 1 ⇒ p ∈ S
//  14. ⟨g,S⟩ ∈ created ∧ next-safe[p,g] ≠ 1 ⇒ p ∈ S
func (m *Machine) CheckInvariants() error {
	// Part 1 holds by construction: Created is keyed by identifier.

	for _, p := range m.procs.Members() {
		cur := m.CurrentViewID[p]
		if cur.IsBottom() {
			continue
		}
		v, ok := m.Created[cur]
		if !ok {
			return fmt.Errorf("lemma 4.1(2): current-viewid[%v]=%v not created", p, cur)
		}
		if !v.Set.Contains(p) {
			return fmt.Errorf("lemma 4.1(3): %v not a member of its current view %v", p, v)
		}
	}

	for k, pend := range m.pending {
		if len(pend) == 0 {
			continue
		}
		if _, ok := m.Created[k.G]; !ok {
			return fmt.Errorf("lemma 4.1(4): pending[%v,%v] nonempty but %v not created", k.P, k.G, k.G)
		}
		cur := m.CurrentViewID[k.P]
		if cur.IsBottom() {
			return fmt.Errorf("lemma 4.1(5): pending[%v,%v] nonempty but current-viewid[%v]=⊥", k.P, k.G, k.P)
		}
		if cur.Less(k.G) {
			return fmt.Errorf("lemma 4.1(6): pending[%v,%v] nonempty but %v > current-viewid[%v]=%v",
				k.P, k.G, k.G, k.P, cur)
		}
	}

	for g, queue := range m.Queue {
		if len(queue) == 0 {
			continue
		}
		if _, ok := m.Created[g]; !ok {
			return fmt.Errorf("lemma 4.1(7): queue[%v] nonempty but %v not created", g, g)
		}
		for _, e := range queue {
			cur := m.CurrentViewID[e.P]
			if cur.IsBottom() {
				return fmt.Errorf("lemma 4.1(8): ⟨%v,%v⟩ in queue[%v] but current-viewid[%v]=⊥", e.M, e.P, g, e.P)
			}
			if cur.Less(g) {
				return fmt.Errorf("lemma 4.1(9): ⟨%v,%v⟩ in queue[%v] but %v > current-viewid[%v]=%v",
					e.M, e.P, g, g, e.P, cur)
			}
		}
	}

	for k, n := range m.next {
		if n > len(m.Queue[k.G])+1 {
			return fmt.Errorf("lemma 4.1(10): next[%v,%v]=%d > len(queue[%v])+1=%d",
				k.P, k.G, n, k.G, len(m.Queue[k.G])+1)
		}
		if v, ok := m.Created[k.G]; ok && n != 1 && !v.Set.Contains(k.P) {
			return fmt.Errorf("lemma 4.1(13): next[%v,%v]=%d but %v ∉ %v", k.P, k.G, n, k.P, v.Set)
		}
	}
	for k, ns := range m.nextSafe {
		if ns > len(m.Queue[k.G])+1 {
			return fmt.Errorf("lemma 4.1(11): next-safe[%v,%v]=%d > len(queue[%v])+1=%d",
				k.P, k.G, ns, k.G, len(m.Queue[k.G])+1)
		}
		if ns > m.nextIdx(k.P, k.G) {
			return fmt.Errorf("lemma 4.1(12): next-safe[%v,%v]=%d > next=%d", k.P, k.G, ns, m.nextIdx(k.P, k.G))
		}
		if v, ok := m.Created[k.G]; ok && ns != 1 && !v.Set.Contains(k.P) {
			return fmt.Errorf("lemma 4.1(14): next-safe[%v,%v]=%d but %v ∉ %v", k.P, k.G, ns, k.P, v.Set)
		}
	}
	return nil
}

// CurrentView returns p's current view, or ok=false when it is ⊥.
func (m *Machine) CurrentView(p types.ProcID) (types.View, bool) {
	g := m.CurrentViewID[p]
	if g.IsBottom() {
		return types.View{}, false
	}
	v, ok := m.Created[g]
	return v, ok
}
