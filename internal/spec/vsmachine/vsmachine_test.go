package vsmachine

import (
	"math/rand"
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

func v(epoch int64, proc types.ProcID, members ...types.ProcID) types.View {
	return types.View{ID: types.ViewID{Epoch: epoch, Proc: proc}, Set: types.NewProcSet(members...)}
}

func TestInitialState(t *testing.T) {
	m := New(types.RangeProcSet(3), types.NewProcSet(0, 1))
	if got := m.CurrentViewID[0]; got != types.G0() {
		t.Errorf("p0 starts in %v, want g0", got)
	}
	if got := m.CurrentViewID[2]; !got.IsBottom() {
		t.Errorf("p2 starts in %v, want ⊥", got)
	}
	if _, ok := m.Created[types.G0()]; !ok {
		t.Error("initial view not created")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateviewRequiresIncreasingIDs(t *testing.T) {
	m := New(types.RangeProcSet(3), types.RangeProcSet(3))
	v2 := v(2, 0, 0, 1)
	if !m.CreateviewEnabled(v2) {
		t.Fatal("higher view not creatable")
	}
	if err := m.ApplyCreateview(v2); err != nil {
		t.Fatal(err)
	}
	// Strong machine: ids must strictly increase, even if unique.
	if m.CreateviewEnabled(v(2, 0, 0)) {
		t.Error("duplicate id creatable")
	}
	if m.CreateviewEnabled(v(1, 5, 0)) {
		t.Error("id below max creatable in strong machine")
	}
	if err := m.ApplyCreateview(v(1, 5, 0)); err == nil {
		t.Error("ApplyCreateview below max succeeded")
	}
	// Bottom id never creatable.
	if m.CreateviewEnabled(types.View{ID: types.Bottom, Set: types.NewProcSet(0)}) {
		t.Error("⊥ view creatable")
	}
}

func TestWeakMachineOnlyRequiresUniqueIDs(t *testing.T) {
	m := NewWeak(types.RangeProcSet(3), types.RangeProcSet(3))
	if err := m.ApplyCreateview(v(5, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order creation is fine as long as the id is fresh.
	if !m.CreateviewEnabled(v(3, 0, 0, 2)) {
		t.Error("weak machine rejects out-of-order fresh id")
	}
	if m.CreateviewEnabled(v(5, 0, 1, 2)) {
		t.Error("weak machine accepts duplicate id")
	}
}

func TestNewviewRules(t *testing.T) {
	m := New(types.RangeProcSet(3), types.NewProcSet(0, 1))
	v2 := v(2, 0, 0, 2)
	if err := m.ApplyCreateview(v2); err != nil {
		t.Fatal(err)
	}
	// Non-member may not learn the view (signature).
	if m.NewviewEnabled(v2, 1) {
		t.Error("newview enabled for non-member")
	}
	// Member with ⊥ current view may.
	if !m.NewviewEnabled(v2, 2) {
		t.Error("newview not enabled for ⊥ member")
	}
	if err := m.ApplyNewview(v2, 2); err != nil {
		t.Fatal(err)
	}
	if m.CurrentViewID[2] != v2.ID {
		t.Error("current view not updated")
	}
	// Monotonicity: cannot install an older view.
	if m.NewviewEnabled(types.View{ID: types.G0(), Set: types.NewProcSet(0, 1, 2)}, 2) {
		t.Error("newview to older id enabled")
	}
	// A view value must match what was created.
	forged := types.View{ID: v2.ID, Set: types.NewProcSet(0, 1, 2)}
	if m.NewviewEnabled(forged, 0) {
		t.Error("newview enabled for forged membership")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGpsndWhileBottomIsIgnored(t *testing.T) {
	m := New(types.RangeProcSet(2), types.NewProcSet(0))
	m.ApplyGpsnd("orphan", 1) // p1 has ⊥
	for g := range m.Queue {
		if len(m.Queue[g]) != 0 {
			t.Fatal("orphan message queued")
		}
	}
	if len(m.Pending(1, types.G0())) != 0 {
		t.Fatal("orphan message pending")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSendOrderDeliverSafeLifecycle(t *testing.T) {
	p0 := types.RangeProcSet(2)
	m := New(p0, p0)
	g := types.G0()

	m.ApplyGpsnd("m1", 0)
	m.ApplyGpsnd("m2", 0)
	if !m.VSOrderEnabled("m1", 0, g) || m.VSOrderEnabled("m2", 0, g) {
		t.Fatal("vs-order enabling wrong (FIFO per sender)")
	}
	if err := m.ApplyVSOrder("m1", 0, g); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyVSOrder("m2", 0, g); err != nil {
		t.Fatal(err)
	}

	// Safe requires every member's next to pass the message; initially no
	// one has received anything.
	if m.SafeEnabled("m1", 0, 0) {
		t.Fatal("safe enabled before any delivery")
	}
	if err := m.ApplyGprcv("m1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if m.SafeEnabled("m1", 0, 0) {
		t.Fatal("safe enabled before all members received")
	}
	if err := m.ApplyGprcv("m1", 0, 1); err != nil {
		t.Fatal(err)
	}
	if !m.SafeEnabled("m1", 0, 0) {
		t.Fatal("safe not enabled after all members received")
	}
	// Safe is per-receiver and ordered: m2 cannot be safe before m1.
	if m.SafeEnabled("m2", 0, 1) {
		t.Fatal("safe out of order enabled")
	}
	if err := m.ApplySafe("m1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if m.NextSafe(0, g) != 2 {
		t.Errorf("next-safe = %d", m.NextSafe(0, g))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGprcvOnlyInCurrentView(t *testing.T) {
	p0 := types.RangeProcSet(2)
	m := New(p0, p0)
	m.ApplyGpsnd("old", 0)
	if err := m.ApplyVSOrder("old", 0, types.G0()); err != nil {
		t.Fatal(err)
	}
	// p1 moves to a newer view; the old-view message is no longer
	// deliverable to it.
	v2 := v(2, 1, 0, 1)
	if err := m.ApplyCreateview(v2); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyNewview(v2, 1); err != nil {
		t.Fatal(err)
	}
	if m.GprcvEnabled("old", 0, 1) {
		t.Fatal("delivery enabled outside the sending view")
	}
	// p0 (still in g0) can receive it.
	if !m.GprcvEnabled("old", 0, 0) {
		t.Fatal("delivery not enabled in the sending view")
	}
}

func TestDerivedViewHelpers(t *testing.T) {
	m := New(types.RangeProcSet(2), types.RangeProcSet(2))
	if err := m.ApplyCreateview(v(2, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyCreateview(v(3, 0, 0)); err != nil {
		t.Fatal(err)
	}
	ids := m.CreatedViewIDs()
	if len(ids) != 3 || !ids[0].Less(ids[1]) || !ids[1].Less(ids[2]) {
		t.Fatalf("CreatedViewIDs = %v", ids)
	}
	if got := m.MaxCreatedViewID(); got != (types.ViewID{Epoch: 3, Proc: 0}) {
		t.Errorf("MaxCreatedViewID = %v", got)
	}
	cv, ok := m.CurrentView(0)
	if !ok || cv.ID != types.G0() {
		t.Errorf("CurrentView(0) = %v, %t", cv, ok)
	}
}

// TestRandomizedSpecSelfConformance runs the spec automaton under its own
// random view proposals and random client sends, with the Lemma 4.1
// invariants checked after every step by the executor.
func TestRandomizedSpecSelfConformance(t *testing.T) {
	procs := types.RangeProcSet(4)
	auto := NewAuto(procs, types.NewProcSet(0, 1))
	exec := ioa.NewExecutor(11, auto)
	auto.Proposer = RandomViewProposer(auto, exec.Rand(), 0.05)
	var counter int
	exec.SetEnvironment(ioa.EnvironmentFunc(func(rng *rand.Rand) ioa.Action {
		counter++
		return Gpsnd{M: counter, P: types.ProcID(rng.Intn(4))}
	}))
	if err := exec.Run(4000); err != nil {
		t.Fatalf("spec execution violated its own invariants: %v", err)
	}
	if len(auto.M.Created) < 2 {
		t.Error("no views were proposed/created during the run")
	}
}
