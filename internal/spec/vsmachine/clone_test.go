package vsmachine

import (
	"testing"

	"repro/internal/types"
)

// populate drives a machine into a nontrivial state.
func populate(t *testing.T, m *Machine) {
	t.Helper()
	g := types.G0()
	m.ApplyGpsnd("m1", 0)
	m.ApplyGpsnd("m2", 0)
	if err := m.ApplyVSOrder("m1", 0, g); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyGprcv("m1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyGprcv("m1", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplySafe("m1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyCreateview(v(2, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	m := New(types.RangeProcSet(2), types.RangeProcSet(2))
	populate(t, m)
	c := m.Clone()
	if m.Fingerprint() != c.Fingerprint() {
		t.Fatalf("clone fingerprint differs:\n%s\nvs\n%s", m.Fingerprint(), c.Fingerprint())
	}
	// Mutating the clone must not affect the original.
	c.ApplyGpsnd("extra", 1)
	if err := c.ApplyNewview(v(2, 1, 0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() == c.Fingerprint() {
		t.Fatal("mutating the clone changed nothing observable")
	}
	if m.CurrentViewID[1] != types.G0() {
		t.Fatal("clone mutation leaked into the original")
	}
	if len(m.Pending(1, types.G0())) != 0 {
		t.Fatal("clone gpsnd leaked into the original's pending")
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	base := func() *Machine { return New(types.RangeProcSet(2), types.RangeProcSet(2)) }
	a := base()
	variants := []func(*Machine){
		func(m *Machine) { m.ApplyGpsnd("x", 0) },
		func(m *Machine) {
			m.ApplyGpsnd("x", 0)
			if err := m.ApplyVSOrder("x", 0, types.G0()); err != nil {
				panic(err)
			}
		},
		func(m *Machine) {
			if err := m.ApplyCreateview(v(2, 0, 0, 1)); err != nil {
				panic(err)
			}
		},
		func(m *Machine) {
			if err := m.ApplyCreateview(v(2, 0, 0, 1)); err != nil {
				panic(err)
			}
			if err := m.ApplyNewview(v(2, 0, 0, 1), 0); err != nil {
				panic(err)
			}
		},
	}
	seen := map[string]int{a.Fingerprint(): -1}
	for i, mutate := range variants {
		m := base()
		mutate(m)
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variants %d and %d share a fingerprint", prev, i)
		}
		seen[fp] = i
	}
}

func TestFingerprintCanonicalAcrossInsertionOrder(t *testing.T) {
	// Two machines reaching the same state through different map insertion
	// orders must fingerprint identically.
	a := New(types.RangeProcSet(3), types.RangeProcSet(3))
	b := New(types.RangeProcSet(3), types.RangeProcSet(3))
	a.ApplyGpsnd("m", 0)
	a.ApplyGpsnd("n", 2)
	b.ApplyGpsnd("n", 2)
	b.ApplyGpsnd("m", 0)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
}

// --- GapMachine direct tests ----------------------------------------------

func gapFixture(t *testing.T) *GapMachine {
	t.Helper()
	m := NewGap(types.RangeProcSet(2), types.RangeProcSet(2))
	g := types.G0()
	for _, msg := range []string{"a", "b", "c"} {
		m.ApplyGpsnd(msg, 0)
		if err := m.ApplyVSOrder(msg, 0, g); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestGapDeliveryAllowsSkips(t *testing.T) {
	m := gapFixture(t)
	if !m.GprcvAtEnabled(0, 2) {
		t.Fatal("skip-ahead delivery not enabled")
	}
	e, err := m.ApplyGprcvAt(0, 2) // skip "a", take "b"
	if err != nil {
		t.Fatal(err)
	}
	if e.M != "b" {
		t.Fatalf("delivered %v, want b", e.M)
	}
	// The skipped index is gone for good.
	if m.GprcvAtEnabled(0, 1) {
		t.Fatal("skipped index deliverable again")
	}
	// Beyond the queue is disabled.
	if m.GprcvAtEnabled(0, 4) {
		t.Fatal("past-end delivery enabled")
	}
	if _, err := m.ApplyGprcvAt(0, 1); err == nil {
		t.Fatal("ApplyGprcvAt on skipped index succeeded")
	}
}

func TestGapSafeRequiresContiguousPrefixEverywhere(t *testing.T) {
	m := gapFixture(t)
	// p0 receives 1 then 3 (skipping 2); p1 receives 1, 2, 3.
	mustAt(t, m, 0, 1)
	mustAt(t, m, 0, 3)
	mustAt(t, m, 1, 1)
	mustAt(t, m, 1, 2)
	mustAt(t, m, 1, 3)
	// Index 1 is contiguous at both: safe.
	if !m.SafeAtEnabled(1, 1) {
		t.Fatal("safe(1) not enabled")
	}
	if _, err := m.ApplySafeAt(1, 1); err != nil {
		t.Fatal(err)
	}
	// Index 2 was skipped at p0: its contiguous prefix froze at 1, so
	// safe(2) can never fire.
	if m.SafeAtEnabled(1, 2) {
		t.Fatal("safe(2) enabled despite p0's gap")
	}
	// Safe must proceed in order: even if 2 were fine, 3 cannot come first.
	if m.SafeAtEnabled(1, 3) {
		t.Fatal("out-of-order safe enabled")
	}
	if _, err := m.ApplySafeAt(0, 2); err == nil {
		t.Fatal("ApplySafeAt on gapped prefix succeeded")
	}
}

func TestGapPerSenderGapFreeRestriction(t *testing.T) {
	m := gapFixture(t) // three messages, all from p0
	m.PerSenderGapFree = true
	// Skipping within the same sender is forbidden: index 2 would skip
	// index 1 from the same sender.
	if m.GprcvAtEnabled(0, 2) {
		t.Fatal("same-sender skip enabled in PerSenderGapFree mode")
	}
	mustAt(t, m, 0, 1)
	if !m.GprcvAtEnabled(0, 2) {
		t.Fatal("in-order delivery blocked")
	}
	// Mixed senders: add a message from p1, then skipping p0's message to
	// reach p1's is allowed, but p0 is then dead to this receiver.
	m2 := NewGap(types.RangeProcSet(2), types.RangeProcSet(2))
	m2.PerSenderGapFree = true
	g := types.G0()
	m2.ApplyGpsnd("a0", 0)
	m2.ApplyGpsnd("b0", 0)
	m2.ApplyGpsnd("a1", 1)
	for _, msg := range []struct {
		m Msg
		p types.ProcID
	}{{"a0", 0}, {"b0", 0}, {"a1", 1}} {
		if err := m2.ApplyVSOrder(msg.m, msg.p, g); err != nil {
			t.Fatal(err)
		}
	}
	if !m2.GprcvAtEnabled(0, 3) {
		t.Fatal("cross-sender skip not enabled")
	}
	if _, err := m2.ApplyGprcvAt(0, 3); err != nil {
		t.Fatal(err)
	}
	// p0's sender was skipped; nothing more from p0 may be delivered here.
	m2.ApplyGpsnd("c0", 0)
	if err := m2.ApplyVSOrder("c0", 0, g); err != nil {
		t.Fatal(err)
	}
	if m2.GprcvAtEnabled(0, 4) {
		t.Fatal("delivery from a skipped sender enabled")
	}
}

func mustAt(t *testing.T, m *GapMachine, q types.ProcID, k int) {
	t.Helper()
	if _, err := m.ApplyGprcvAt(q, k); err != nil {
		t.Fatal(err)
	}
}
