package vsmachine

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// TestEnabledEnumerationStable pins the enumeration order of Enabled as a
// pure function of the machine state. The seeded executor resolves its
// nondeterminism by drawing a random index into this slice, so if Go's
// randomized map iteration leaked into the order, identical seeds would
// take different runs (this is exactly the E6 divergence the parallel
// determinism gate caught). The state below puts several entries in both
// maps Enabled walks (Created, pending); with unsorted iteration, 100
// re-enumerations of the same state disagree with overwhelming
// probability.
func TestEnabledEnumerationStable(t *testing.T) {
	procs := types.NewProcSet(0, 1, 2, 3)
	m := New(procs, procs)
	// Several created-but-nowhere-installed views: each contributes one
	// newview action per member, enumerated from the Created map.
	for e := int64(2); e <= 5; e++ {
		v := types.View{ID: types.ViewID{Epoch: e, Proc: types.ProcID(e % 4)}, Set: procs}
		m.Created[v.ID] = v
	}
	// A pending queue per processor: each contributes one vs-order action,
	// enumerated from the pending map.
	for _, p := range procs.Members() {
		m.ApplyGpsnd(fmt.Sprintf("m%v", p), p)
	}
	a := &Auto{M: m}
	want := fmt.Sprint(a.Enabled(nil))
	if want == "[]" {
		t.Fatal("state enables no actions; the test is vacuous")
	}
	for i := 0; i < 100; i++ {
		if got := fmt.Sprint(a.Enabled(nil)); got != want {
			t.Fatalf("enumeration %d diverged:\n%s\nvs first:\n%s", i, got, want)
		}
	}
}
