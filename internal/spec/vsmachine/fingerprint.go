package vsmachine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// MsgFingerprinter is implemented by message payloads that can append a
// canonical binary encoding of themselves. Payload types sent by pointer
// (summaries) must encode content, not identity: the explorer's visited
// set must treat structurally equal states as equal even when they were
// reached through distinct message allocations.
type MsgFingerprinter interface {
	AppendFingerprint([]byte) []byte
}

// appendMsgFingerprint appends one message with a leading type tag so a
// string payload can never alias a structured one.
func appendMsgFingerprint(buf []byte, m Msg) []byte {
	switch t := m.(type) {
	case MsgFingerprinter:
		buf = append(buf, 0x01)
		return t.AppendFingerprint(buf)
	case string:
		buf = append(buf, 0x02)
		return types.AppendFingerprintString(buf, t)
	default:
		// Tests drive the machine with small comparable payloads (ints);
		// %v renders those canonically, as the string Fingerprint assumed.
		buf = append(buf, 0x03)
		return types.AppendFingerprintString(buf, fmt.Sprintf("%v", m))
	}
}

// AppendFingerprint appends a canonical binary encoding of the machine
// state — the compact replacement for the string Fingerprint on the
// explorer's allocation hot path. Every section is count-prefixed and maps
// are walked in sorted key order, so the encoding is a pure function of
// the state. next/next-safe entries at their default value 1 are omitted
// (an absent key and an explicit 1 are the same abstract state).
func (m *Machine) AppendFingerprint(buf []byte) []byte {
	created := m.CreatedViewIDs()
	buf = binary.AppendUvarint(buf, uint64(len(created)))
	for _, id := range created {
		buf = m.Created[id].AppendFingerprint(buf)
	}
	for _, p := range m.procs.Members() {
		buf = m.CurrentViewID[p].AppendFingerprint(buf)
	}
	queues := sortedViewIDs(m.Queue)
	buf = binary.AppendUvarint(buf, uint64(len(queues)))
	for _, g := range queues {
		buf = g.AppendFingerprint(buf)
		q := m.Queue[g]
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, e := range q {
			buf = appendMsgFingerprint(buf, e.M)
			buf = binary.AppendVarint(buf, int64(e.P))
		}
	}
	pgs := sortedPGs(m.pending)
	nonEmpty := 0
	for _, k := range pgs {
		if len(m.pending[k]) > 0 {
			nonEmpty++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(nonEmpty))
	for _, k := range pgs {
		pend := m.pending[k]
		if len(pend) == 0 {
			continue
		}
		buf = binary.AppendVarint(buf, int64(k.P))
		buf = k.G.AppendFingerprint(buf)
		buf = binary.AppendUvarint(buf, uint64(len(pend)))
		for _, msg := range pend {
			buf = appendMsgFingerprint(buf, msg)
		}
	}
	for _, idx := range []map[pg]int{m.next, m.nextSafe} {
		ks := sortedPGKeys(idx)
		nonDefault := 0
		for _, k := range ks {
			if idx[k] != 1 {
				nonDefault++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(nonDefault))
		for _, k := range ks {
			if idx[k] == 1 {
				continue
			}
			buf = binary.AppendVarint(buf, int64(k.P))
			buf = k.G.AppendFingerprint(buf)
			buf = binary.AppendVarint(buf, int64(idx[k]))
		}
	}
	return buf
}
