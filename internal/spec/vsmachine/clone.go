package vsmachine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Clone returns a deep copy of the machine. Message values themselves are
// not copied (they are immutable by the package's conventions).
func (m *Machine) Clone() *Machine {
	out := &Machine{
		procs:         m.procs,
		weak:          m.weak,
		Created:       make(map[types.ViewID]types.View, len(m.Created)),
		CurrentViewID: make(map[types.ProcID]types.ViewID, len(m.CurrentViewID)),
		Queue:         make(map[types.ViewID][]Entry, len(m.Queue)),
		pending:       make(map[pg][]Msg, len(m.pending)),
		next:          make(map[pg]int, len(m.next)),
		nextSafe:      make(map[pg]int, len(m.nextSafe)),
	}
	for k, v := range m.Created {
		out.Created[k] = v
	}
	for k, v := range m.CurrentViewID {
		out.CurrentViewID[k] = v
	}
	for k, v := range m.Queue {
		out.Queue[k] = append([]Entry(nil), v...)
	}
	for k, v := range m.pending {
		out.pending[k] = append([]Msg(nil), v...)
	}
	for k, v := range m.next {
		out.next[k] = v
	}
	for k, v := range m.nextSafe {
		out.nextSafe[k] = v
	}
	return out
}

// Fingerprint returns a canonical string identifying the machine state,
// for use as a visited-set key in bounded exhaustive exploration. Message
// values are rendered with %v; explorer configurations use small
// comparable payloads (ints, strings), which render canonically.
func (m *Machine) Fingerprint() string {
	var b strings.Builder
	b.WriteString("created:")
	for _, id := range m.CreatedViewIDs() {
		fmt.Fprintf(&b, "%v=%v;", id, m.Created[id].Set)
	}
	b.WriteString("|cur:")
	for _, p := range m.procs.Members() {
		fmt.Fprintf(&b, "%v;", m.CurrentViewID[p])
	}
	b.WriteString("|queues:")
	for _, g := range sortedViewIDs(m.Queue) {
		fmt.Fprintf(&b, "%v=[", g)
		for _, e := range m.Queue[g] {
			fmt.Fprintf(&b, "%v@%v,", e.M, e.P)
		}
		b.WriteString("];")
	}
	b.WriteString("|pending:")
	for _, k := range sortedPGs(m.pending) {
		if len(m.pending[k]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%v/%v=%v;", k.P, k.G, m.pending[k])
	}
	b.WriteString("|next:")
	for _, k := range sortedPGKeys(m.next) {
		if m.next[k] != 1 {
			fmt.Fprintf(&b, "%v/%v=%d;", k.P, k.G, m.next[k])
		}
	}
	b.WriteString("|nextsafe:")
	for _, k := range sortedPGKeys(m.nextSafe) {
		if m.nextSafe[k] != 1 {
			fmt.Fprintf(&b, "%v/%v=%d;", k.P, k.G, m.nextSafe[k])
		}
	}
	return b.String()
}

func sortedViewIDs(m map[types.ViewID][]Entry) []types.ViewID {
	ids := make([]types.ViewID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

func pgLess(a, b pg) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return a.G.Less(b.G)
}

func sortedPGs(m map[pg][]Msg) []pg {
	ks := make([]pg, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return pgLess(ks[i], ks[j]) })
	return ks
}

func sortedPGKeys(m map[pg]int) []pg {
	ks := make([]pg, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return pgLess(ks[i], ks[j]) })
	return ks
}
