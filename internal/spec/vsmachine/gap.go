package vsmachine

import (
	"fmt"

	"repro/internal/types"
)

// GapMachine is the footnote-5 weakening of VS-machine: within each view
// messages are still placed in one total order, but a receiver may *skip*
// messages — its delivery sequence is an increasing subsequence of the
// view's queue rather than a prefix. The safe notification is
// correspondingly strengthened to fire for a message only when the entire
// prefix up to it has been delivered at every member ("the safe
// notification for a message holds for the prefix of the messages up to
// that message").
//
// Footnote 5 observes that VStoTO remains correct over this weaker
// service because it updates the stable order only after messages become
// safe; the test TestVStoTOOverGapVS machine-checks exactly that claim —
// the external bcast/brcv trace still conforms to TO-machine even though
// the per-receiver prefix property (and with it some Section 6 internal
// invariants) no longer holds.
type GapMachine struct {
	*Machine
	// PerSenderGapFree strengthens the gap property so that a receiver may
	// never deliver a message from a sender after having skipped an
	// earlier message from that same sender in the same view (per-sender
	// deliveries remain prefixes even though the cross-sender interleaving
	// has gaps).
	//
	// The randomized tests show this strengthening is NOT optional: with
	// arbitrary gaps, a receiver's tentative order can hold a sender's
	// k+1-st message without its k-th; a later view's state exchange
	// adopts that order as the representative's and the recovery safe path
	// confirms it — delivering the sender's messages out of submission
	// order, which no TO-machine trace allows. Footnote 5's condition on
	// safe notifications constrains the in-view confirm path but not this
	// recovery path.
	PerSenderGapFree bool

	// nextIndex[p,g] is 1 + the index of the last message p received in
	// view g (skipped messages are gone for good: delivery stays an
	// increasing subsequence).
	nextIndex map[pg]int
	// contiguous[p,g] is the length of the gap-free prefix p has received;
	// it freezes at the first skip and drives safe.
	contiguous map[pg]int
	// skippedSender[p,g] records senders from which p has skipped a
	// message in g (consulted only in PerSenderGapFree mode).
	skippedSender map[pg]map[types.ProcID]bool
}

// NewGap creates a footnote-5 machine over procs with initial membership
// p0.
func NewGap(procs, p0 types.ProcSet) *GapMachine {
	return &GapMachine{
		Machine:       New(procs, p0),
		nextIndex:     make(map[pg]int),
		contiguous:    make(map[pg]int),
		skippedSender: make(map[pg]map[types.ProcID]bool),
	}
}

func (m *GapMachine) nextIdxGap(p types.ProcID, g types.ViewID) int {
	if n, ok := m.nextIndex[pg{p, g}]; ok {
		return n
	}
	return 1
}

// GprcvAtEnabled reports whether q may receive the message at 1-based
// queue index k in its current view: k exists and is at or beyond q's
// next index (everything in between is skipped).
func (m *GapMachine) GprcvAtEnabled(q types.ProcID, k int) bool {
	g := m.CurrentViewID[q]
	if g.IsBottom() {
		return false
	}
	if k < m.nextIdxGap(q, g) || k > len(m.Queue[g]) {
		return false
	}
	if m.PerSenderGapFree {
		sender := m.Queue[g][k-1].P
		if m.skippedSender[pg{q, g}][sender] {
			return false // an earlier message from this sender was skipped
		}
		for j := m.nextIdxGap(q, g); j < k; j++ {
			if m.Queue[g][j-1].P == sender {
				return false // this delivery would itself skip the sender
			}
		}
	}
	return true
}

// ApplyGprcvAt performs the (possibly skipping) delivery of index k at q,
// returning the entry delivered.
func (m *GapMachine) ApplyGprcvAt(q types.ProcID, k int) (Entry, error) {
	if !m.GprcvAtEnabled(q, k) {
		return Entry{}, fmt.Errorf("vsmachine: gap gprcv at %d not enabled for %v", k, q)
	}
	g := m.CurrentViewID[q]
	key := pg{q, g}
	wasNext := m.nextIdxGap(q, g)
	for j := wasNext; j < k; j++ {
		if m.skippedSender[key] == nil {
			m.skippedSender[key] = make(map[types.ProcID]bool)
		}
		m.skippedSender[key][m.Queue[g][j-1].P] = true
	}
	m.nextIndex[key] = k + 1
	// The contiguous prefix grows only when nothing was skipped.
	if k == wasNext && m.contiguous[key] == wasNext-1 {
		m.contiguous[key] = k
	}
	return m.Queue[g][k-1], nil
}

// SafeAtEnabled reports whether the footnote-5 safe for index k is enabled
// at q: it must be the next safe position, and every member's contiguous
// prefix must cover k.
func (m *GapMachine) SafeAtEnabled(q types.ProcID, k int) bool {
	g := m.CurrentViewID[q]
	if g.IsBottom() {
		return false
	}
	v, ok := m.Created[g]
	if !ok {
		return false
	}
	if k != m.nextSafeIdx(q, g) || k > len(m.Queue[g]) {
		return false
	}
	for _, r := range v.Set.Members() {
		if m.contiguous[pg{r, g}] < k {
			return false
		}
	}
	return true
}

// ApplySafeAt performs the safe notification for index k at q.
func (m *GapMachine) ApplySafeAt(q types.ProcID, k int) (Entry, error) {
	if !m.SafeAtEnabled(q, k) {
		return Entry{}, fmt.Errorf("vsmachine: gap safe at %d not enabled for %v", k, q)
	}
	g := m.CurrentViewID[q]
	m.nextSafe[pg{q, g}] = k + 1
	return m.Queue[g][k-1], nil
}
