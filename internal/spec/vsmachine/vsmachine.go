// Package vsmachine implements VS-machine, the paper's Figure 6: the
// abstract state machine specifying a partitionable view-synchronous group
// communication service. Views are created globally in increasing
// identifier order (createview); each processor is told of some of the
// views containing it (newview), always with increasing identifiers;
// messages sent in a view (gpsnd) are placed into a per-view total order
// (vs-order) and each member receives a prefix of that order (gprcv) while
// it is in that same view; safe(m)_{p,q} tells q that every member of its
// current view has received m.
//
// The package also provides WeakVS-machine (the remark after Lemma 4.2),
// which only requires createview identifiers to be unique, and executable
// checks of all fourteen invariants of Lemma 4.1.
package vsmachine

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// Msg is a message of the alphabet M. Concrete message values must be
// comparable (the executor and checkers match occurrences by value);
// layers that send composite payloads use pointers, which are comparable
// by identity.
type Msg any

// Gpsnd is the input action gpsnd(m)_p: the client at p sends m to the
// group.
type Gpsnd struct {
	M Msg
	P types.ProcID
}

// ActionName returns "gpsnd".
func (Gpsnd) ActionName() string { return "gpsnd" }

// String renders the action.
func (g Gpsnd) String() string { return fmt.Sprintf("gpsnd(%v)_%v", g.M, g.P) }

// Gprcv is the output action gprcv(m)_{p,q}: delivery to q of m sent by p.
type Gprcv struct {
	M Msg
	P types.ProcID // sender
	Q types.ProcID // receiver
}

// ActionName returns "gprcv".
func (Gprcv) ActionName() string { return "gprcv" }

// String renders the action.
func (g Gprcv) String() string { return fmt.Sprintf("gprcv(%v)_{%v,%v}", g.M, g.P, g.Q) }

// Safe is the output action safe(m)_{p,q}: notification to q that m (sent
// earlier by p) has been received by every member of q's current view.
type Safe struct {
	M Msg
	P types.ProcID
	Q types.ProcID
}

// ActionName returns "safe".
func (Safe) ActionName() string { return "safe" }

// String renders the action.
func (s Safe) String() string { return fmt.Sprintf("safe(%v)_{%v,%v}", s.M, s.P, s.Q) }

// Newview is the output action newview(v)_p; the signature guarantees
// p ∈ v.set.
type Newview struct {
	V types.View
	P types.ProcID
}

// ActionName returns "newview".
func (Newview) ActionName() string { return "newview" }

// String renders the action.
func (n Newview) String() string { return fmt.Sprintf("newview(%v)_%v", n.V, n.P) }

// Createview is the internal action createview(v).
type Createview struct {
	V types.View
}

// ActionName returns "createview".
func (Createview) ActionName() string { return "createview" }

// String renders the action.
func (c Createview) String() string { return fmt.Sprintf("createview(%v)", c.V) }

// VSOrder is the internal action vs-order(m, p, g): move the head of
// pending[p, g] to the end of queue[g].
type VSOrder struct {
	M Msg
	P types.ProcID
	G types.ViewID
}

// ActionName returns "vs-order".
func (VSOrder) ActionName() string { return "vs-order" }

// String renders the action.
func (o VSOrder) String() string { return fmt.Sprintf("vs-order(%v,%v,%v)", o.M, o.P, o.G) }

// Entry is one element of a per-view queue: a message paired with its
// sender.
type Entry struct {
	M Msg
	P types.ProcID
}

type pg struct {
	P types.ProcID
	G types.ViewID
}

// Machine is the VS-machine state of Figure 6.
type Machine struct {
	procs types.ProcSet
	weak  bool // WeakVS-machine: createview only requires a fresh id

	// Created is the set of created views, keyed by identifier (unique by
	// Lemma 4.1 part 1, enforced here by construction).
	Created map[types.ViewID]types.View
	// CurrentViewID[p] ∈ G⊥ is p's current view identifier.
	CurrentViewID map[types.ProcID]types.ViewID
	// Queue[g] is the per-view total order of ⟨message, sender⟩ pairs.
	Queue map[types.ViewID][]Entry
	// pending[p,g], next[p,g], nextSafe[p,g] as in Figure 6.
	pending  map[pg][]Msg
	next     map[pg]int
	nextSafe map[pg]int
}

// New creates a VS-machine over procs whose distinguished initial view is
// ⟨g0, p0⟩. Processors in p0 start with current view g0; the rest start
// with ⊥.
func New(procs types.ProcSet, p0 types.ProcSet) *Machine {
	m := &Machine{
		procs:         procs,
		Created:       make(map[types.ViewID]types.View),
		CurrentViewID: make(map[types.ProcID]types.ViewID, procs.Size()),
		Queue:         make(map[types.ViewID][]Entry),
		pending:       make(map[pg][]Msg),
		next:          make(map[pg]int),
		nextSafe:      make(map[pg]int),
	}
	v0 := types.InitialView(p0)
	m.Created[v0.ID] = v0
	for _, p := range procs.Members() {
		if p0.Contains(p) {
			m.CurrentViewID[p] = v0.ID
		} else {
			m.CurrentViewID[p] = types.Bottom
		}
	}
	return m
}

// NewWeak creates a WeakVS-machine, identical except that createview only
// requires the new identifier to be unique rather than maximal.
func NewWeak(procs types.ProcSet, p0 types.ProcSet) *Machine {
	m := New(procs, p0)
	m.weak = true
	return m
}

// Procs returns the processor universe.
func (m *Machine) Procs() types.ProcSet { return m.procs }

// nextIdx returns next[p,g], defaulting to 1.
func (m *Machine) nextIdx(p types.ProcID, g types.ViewID) int {
	if n, ok := m.next[pg{p, g}]; ok {
		return n
	}
	return 1
}

// nextSafeIdx returns next-safe[p,g], defaulting to 1.
func (m *Machine) nextSafeIdx(p types.ProcID, g types.ViewID) int {
	if n, ok := m.nextSafe[pg{p, g}]; ok {
		return n
	}
	return 1
}

// Next exposes next[p,g] for invariant checks and tests.
func (m *Machine) Next(p types.ProcID, g types.ViewID) int { return m.nextIdx(p, g) }

// NextSafe exposes next-safe[p,g].
func (m *Machine) NextSafe(p types.ProcID, g types.ViewID) int { return m.nextSafeIdx(p, g) }

// Pending exposes pending[p,g] (shared slice; do not modify).
func (m *Machine) Pending(p types.ProcID, g types.ViewID) []Msg { return m.pending[pg{p, g}] }

// CreateviewEnabled reports whether createview(v) is enabled.
func (m *Machine) CreateviewEnabled(v types.View) bool {
	if v.ID.IsBottom() {
		return false
	}
	if m.weak {
		_, exists := m.Created[v.ID]
		return !exists
	}
	for id := range m.Created {
		if !id.Less(v.ID) {
			return false
		}
	}
	return true
}

// ApplyCreateview performs createview(v).
func (m *Machine) ApplyCreateview(v types.View) error {
	if !m.CreateviewEnabled(v) {
		return fmt.Errorf("vsmachine: createview(%v) not enabled", v)
	}
	m.Created[v.ID] = v
	return nil
}

// NewviewEnabled reports whether newview(v)_p is enabled.
func (m *Machine) NewviewEnabled(v types.View, p types.ProcID) bool {
	if !v.Set.Contains(p) { // signature constraint
		return false
	}
	created, ok := m.Created[v.ID]
	if !ok || !created.Set.Equal(v.Set) {
		return false
	}
	cur := m.CurrentViewID[p]
	return cur.IsBottom() || cur.Less(v.ID)
}

// ApplyNewview performs newview(v)_p.
func (m *Machine) ApplyNewview(v types.View, p types.ProcID) error {
	if !m.NewviewEnabled(v, p) {
		return fmt.Errorf("vsmachine: newview(%v)_%v not enabled (current %v)", v, p, m.CurrentViewID[p])
	}
	m.CurrentViewID[p] = v.ID
	return nil
}

// ApplyGpsnd applies the input gpsnd(m)_p. A send while the sender's view
// is ⊥ is silently ignored, as in Figure 6.
func (m *Machine) ApplyGpsnd(msg Msg, p types.ProcID) {
	g := m.CurrentViewID[p]
	if g.IsBottom() {
		return
	}
	k := pg{p, g}
	m.pending[k] = append(m.pending[k], msg)
}

// VSOrderEnabled reports whether vs-order(m, p, g) is enabled.
func (m *Machine) VSOrderEnabled(msg Msg, p types.ProcID, g types.ViewID) bool {
	pend := m.pending[pg{p, g}]
	return len(pend) > 0 && pend[0] == msg
}

// ApplyVSOrder performs vs-order(m, p, g).
func (m *Machine) ApplyVSOrder(msg Msg, p types.ProcID, g types.ViewID) error {
	if !m.VSOrderEnabled(msg, p, g) {
		return fmt.Errorf("vsmachine: vs-order(%v,%v,%v) not enabled", msg, p, g)
	}
	k := pg{p, g}
	m.pending[k] = m.pending[k][1:]
	m.Queue[g] = append(m.Queue[g], Entry{M: msg, P: p})
	return nil
}

// GprcvEnabled reports whether gprcv(m)_{p,q} is enabled in q's current
// view.
func (m *Machine) GprcvEnabled(msg Msg, p, q types.ProcID) bool {
	g := m.CurrentViewID[q]
	if g.IsBottom() {
		return false
	}
	n := m.nextIdx(q, g)
	queue := m.Queue[g]
	return n <= len(queue) && queue[n-1].M == msg && queue[n-1].P == p
}

// ApplyGprcv performs gprcv(m)_{p,q}.
func (m *Machine) ApplyGprcv(msg Msg, p, q types.ProcID) error {
	if !m.GprcvEnabled(msg, p, q) {
		return fmt.Errorf("vsmachine: gprcv(%v)_{%v,%v} not enabled", msg, p, q)
	}
	g := m.CurrentViewID[q]
	m.next[pg{q, g}] = m.nextIdx(q, g) + 1
	return nil
}

// SafeEnabled reports whether safe(m)_{p,q} is enabled: q's current view
// ⟨g,S⟩ is created, queue[g](next-safe[q,g]) = ⟨m,p⟩, and every r ∈ S has
// next[r,g] > next-safe[q,g].
func (m *Machine) SafeEnabled(msg Msg, p, q types.ProcID) bool {
	g := m.CurrentViewID[q]
	if g.IsBottom() {
		return false
	}
	v, ok := m.Created[g]
	if !ok {
		return false
	}
	ns := m.nextSafeIdx(q, g)
	queue := m.Queue[g]
	if ns > len(queue) || queue[ns-1].M != msg || queue[ns-1].P != p {
		return false
	}
	for _, r := range v.Set.Members() {
		if m.nextIdx(r, g) <= ns {
			return false
		}
	}
	return true
}

// ApplySafe performs safe(m)_{p,q}.
func (m *Machine) ApplySafe(msg Msg, p, q types.ProcID) error {
	if !m.SafeEnabled(msg, p, q) {
		return fmt.Errorf("vsmachine: safe(%v)_{%v,%v} not enabled", msg, p, q)
	}
	g := m.CurrentViewID[q]
	m.nextSafe[pg{q, g}] = m.nextSafeIdx(q, g) + 1
	return nil
}

// CreatedViewIDs returns the derived variable created-viewids, sorted
// ascending.
func (m *Machine) CreatedViewIDs() []types.ViewID {
	ids := make([]types.ViewID, 0, len(m.Created))
	for id := range m.Created {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// MaxCreatedViewID returns the largest created view identifier.
func (m *Machine) MaxCreatedViewID() types.ViewID {
	max := types.Bottom
	for id := range m.Created {
		if max.Less(id) {
			max = id
		}
	}
	return max
}
