// Package tomachine implements TO-machine, the paper's Figure 3: the
// abstract, global state machine specifying a totally ordered broadcast
// service. Clients submit data values with bcast(a)_p; the machine
// nondeterministically moves pending values into a single global queue
// (to-order), and delivers each location a prefix of that queue via
// brcv(a)_{p,q}.
//
// The machine is executable: it exposes the paper's precondition/effect
// transitions directly, adapts to the ioa framework for composition, and
// doubles as the test oracle for the forward-simulation check of Section 6.
package tomachine

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Bcast is the input action bcast(a)_p: the client at p submits value a.
type Bcast struct {
	A types.Value
	P types.ProcID
}

// ActionName returns "bcast".
func (Bcast) ActionName() string { return "bcast" }

// String renders the action.
func (b Bcast) String() string { return fmt.Sprintf("bcast(%q)_%v", string(b.A), b.P) }

// Brcv is the output action brcv(a)_{p,q}: delivery to the client at q of a
// value originally submitted at p.
type Brcv struct {
	A types.Value
	P types.ProcID // origin
	Q types.ProcID // destination
}

// ActionName returns "brcv".
func (Brcv) ActionName() string { return "brcv" }

// String renders the action.
func (b Brcv) String() string { return fmt.Sprintf("brcv(%q)_{%v,%v}", string(b.A), b.P, b.Q) }

// ToOrder is the internal action to-order(a, p): move the head of
// pending[p] to the end of the global queue.
type ToOrder struct {
	A types.Value
	P types.ProcID
}

// ActionName returns "to-order".
func (ToOrder) ActionName() string { return "to-order" }

// String renders the action.
func (t ToOrder) String() string { return fmt.Sprintf("to-order(%q,%v)", string(t.A), t.P) }

// Entry is one element of the global queue: a data value paired with the
// location at which it originated.
type Entry struct {
	A types.Value
	P types.ProcID
}

// Machine is the TO-machine state of Figure 3.
type Machine struct {
	procs types.ProcSet

	// Queue is the global totally ordered sequence of ⟨value, origin⟩ pairs.
	Queue []Entry
	// Pending[p] holds values submitted at p not yet placed in Queue.
	Pending map[types.ProcID][]types.Value
	// Next[p] is the 1-based index in Queue of the next entry to deliver
	// at p.
	Next map[types.ProcID]int
}

// New creates a TO-machine over the given processor universe, in the
// initial state of Figure 3.
func New(procs types.ProcSet) *Machine {
	m := &Machine{
		procs:   procs,
		Pending: make(map[types.ProcID][]types.Value, procs.Size()),
		Next:    make(map[types.ProcID]int, procs.Size()),
	}
	for _, p := range procs.Members() {
		m.Next[p] = 1
	}
	return m
}

// Procs returns the processor universe.
func (m *Machine) Procs() types.ProcSet { return m.procs }

// ApplyBcast applies the input bcast(a)_p (always enabled).
func (m *Machine) ApplyBcast(a types.Value, p types.ProcID) {
	m.Pending[p] = append(m.Pending[p], a)
}

// ToOrderEnabled reports whether to-order(a, p) is enabled: a is the head
// of pending[p].
func (m *Machine) ToOrderEnabled(a types.Value, p types.ProcID) bool {
	pend := m.Pending[p]
	return len(pend) > 0 && pend[0] == a
}

// ApplyToOrder performs to-order(a, p). It returns an error if the
// precondition fails, so callers that use the machine as an oracle get a
// diagnosis rather than silent corruption.
func (m *Machine) ApplyToOrder(a types.Value, p types.ProcID) error {
	if !m.ToOrderEnabled(a, p) {
		return fmt.Errorf("tomachine: to-order(%q,%v) not enabled: pending=%v", string(a), p, m.Pending[p])
	}
	m.Pending[p] = m.Pending[p][1:]
	m.Queue = append(m.Queue, Entry{A: a, P: p})
	return nil
}

// BrcvEnabled reports whether brcv(a)_{p,q} is enabled:
// queue(next[q]) = ⟨a, p⟩.
func (m *Machine) BrcvEnabled(a types.Value, p, q types.ProcID) bool {
	n := m.Next[q]
	return n >= 1 && n <= len(m.Queue) && m.Queue[n-1] == Entry{A: a, P: p}
}

// ApplyBrcv performs brcv(a)_{p,q}, erroring if disabled.
func (m *Machine) ApplyBrcv(a types.Value, p, q types.ProcID) error {
	if !m.BrcvEnabled(a, p, q) {
		return fmt.Errorf("tomachine: brcv(%q)_{%v,%v} not enabled: next[%v]=%d queue len %d",
			string(a), p, q, q, m.Next[q], len(m.Queue))
	}
	m.Next[q]++
	return nil
}

// Delivered returns the prefix of the queue already delivered at q.
func (m *Machine) Delivered(q types.ProcID) []Entry {
	return m.Queue[:m.Next[q]-1]
}

// CheckInvariants verifies the machine's basic structural invariants:
// next pointers stay within queue bounds.
func (m *Machine) CheckInvariants() error {
	for _, p := range m.procs.Members() {
		if n := m.Next[p]; n < 1 || n > len(m.Queue)+1 {
			return fmt.Errorf("tomachine: next[%v]=%d out of range 1..%d", p, n, len(m.Queue)+1)
		}
	}
	return nil
}

// Auto adapts Machine to the ioa framework.
type Auto struct {
	M *Machine
}

// NewAuto wraps a fresh machine over procs.
func NewAuto(procs types.ProcSet) *Auto { return &Auto{M: New(procs)} }

// Name returns "TO-machine".
func (a *Auto) Name() string { return "TO-machine" }

// Classify implements the signature of Figure 3.
func (a *Auto) Classify(act ioa.Action) ioa.Kind {
	switch act.(type) {
	case Bcast:
		return ioa.Input
	case Brcv:
		return ioa.Output
	case ToOrder:
		return ioa.Internal
	default:
		return ioa.NotInSignature
	}
}

// Input applies an input action.
func (a *Auto) Input(act ioa.Action) {
	b, ok := act.(Bcast)
	if !ok {
		panic(fmt.Sprintf("tomachine: unexpected input %v", act))
	}
	a.M.ApplyBcast(b.A, b.P)
}

// Enabled enumerates the enabled to-order and brcv actions.
func (a *Auto) Enabled(buf []ioa.Action) []ioa.Action {
	for _, p := range a.M.procs.Members() {
		if pend := a.M.Pending[p]; len(pend) > 0 {
			buf = append(buf, ToOrder{A: pend[0], P: p})
		}
		if n := a.M.Next[p]; n <= len(a.M.Queue) {
			e := a.M.Queue[n-1]
			buf = append(buf, Brcv{A: e.A, P: e.P, Q: p})
		}
	}
	return buf
}

// Perform applies a locally controlled action.
func (a *Auto) Perform(act ioa.Action) {
	var err error
	switch t := act.(type) {
	case ToOrder:
		err = a.M.ApplyToOrder(t.A, t.P)
	case Brcv:
		err = a.M.ApplyBrcv(t.A, t.P, t.Q)
	default:
		err = fmt.Errorf("tomachine: unexpected locally controlled action %v", act)
	}
	if err != nil {
		panic(err) // the executor only performs actions it was told are enabled
	}
}

// CheckInvariants defers to the machine.
func (a *Auto) CheckInvariants() error { return a.M.CheckInvariants() }
