package tomachine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

func TestBcastToOrderBrcvFlow(t *testing.T) {
	m := New(types.RangeProcSet(2))
	m.ApplyBcast("a", 0)
	m.ApplyBcast("b", 0)

	if !m.ToOrderEnabled("a", 0) {
		t.Fatal("to-order of head not enabled")
	}
	if m.ToOrderEnabled("b", 0) {
		t.Fatal("to-order of non-head enabled")
	}
	if err := m.ApplyToOrder("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyToOrder("b", 0); err != nil {
		t.Fatal(err)
	}
	if len(m.Queue) != 2 || m.Queue[0] != (Entry{A: "a", P: 0}) {
		t.Fatalf("queue = %v", m.Queue)
	}

	// Deliveries follow the queue in order, per processor.
	if !m.BrcvEnabled("a", 0, 1) {
		t.Fatal("first delivery not enabled")
	}
	if m.BrcvEnabled("b", 0, 1) {
		t.Fatal("out-of-order delivery enabled")
	}
	if err := m.ApplyBrcv("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyBrcv("b", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyBrcv("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Delivered(1); len(got) != 2 {
		t.Fatalf("Delivered(1) = %v", got)
	}
	if got := m.Delivered(0); len(got) != 1 {
		t.Fatalf("Delivered(0) = %v", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledActionsError(t *testing.T) {
	m := New(types.RangeProcSet(2))
	if err := m.ApplyToOrder("x", 0); err == nil {
		t.Error("to-order with empty pending succeeded")
	}
	if err := m.ApplyBrcv("x", 0, 1); err == nil {
		t.Error("brcv with empty queue succeeded")
	}
	m.ApplyBcast("x", 0)
	if err := m.ApplyToOrder("y", 0); err == nil {
		t.Error("to-order of wrong value succeeded")
	}
}

func TestPerSenderFIFO(t *testing.T) {
	m := New(types.RangeProcSet(2))
	m.ApplyBcast("first", 1)
	m.ApplyBcast("second", 1)
	if m.ToOrderEnabled("second", 1) {
		t.Fatal("second value orderable before first")
	}
	if err := m.ApplyToOrder("first", 1); err != nil {
		t.Fatal(err)
	}
	if !m.ToOrderEnabled("second", 1) {
		t.Fatal("second value not orderable after first")
	}
}

// TestAutoRandomExecution drives the ioa adapter with random clients and
// verifies the fundamental TO trace properties on the external trace.
func TestAutoRandomExecution(t *testing.T) {
	const n = 3
	auto := NewAuto(types.RangeProcSet(n))
	exec := ioa.NewExecutor(5, auto)
	var counter int
	exec.SetEnvironment(ioa.EnvironmentFunc(func(rng *rand.Rand) ioa.Action {
		counter++
		return Bcast{A: types.Value(fmt.Sprintf("v%d", counter)), P: types.ProcID(rng.Intn(n))}
	}))
	if err := exec.Run(3000); err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-processor delivery sequences; they must be prefixes
	// of one another (one total order) and each sender's values must be
	// delivered in submission order.
	perProc := make(map[types.ProcID][]Brcv)
	sent := make(map[types.ProcID][]types.Value)
	for _, ev := range exec.Trace() {
		switch a := ev.Act.(type) {
		case Bcast:
			sent[a.P] = append(sent[a.P], a.A)
		case Brcv:
			perProc[a.Q] = append(perProc[a.Q], a)
		}
	}
	var longest []Brcv
	for _, ds := range perProc {
		if len(ds) > len(longest) {
			longest = ds
		}
	}
	for q, ds := range perProc {
		for i := range ds {
			if ds[i].A != longest[i].A || ds[i].P != longest[i].P {
				t.Fatalf("%v's deliveries diverge at %d", q, i)
			}
		}
	}
	// Per-sender order within the common sequence.
	idx := make(map[types.ProcID]int)
	for _, d := range longest {
		want := sent[d.P][idx[d.P]]
		if d.A != want {
			t.Fatalf("delivery %q from %v out of submission order (want %q)", string(d.A), d.P, string(want))
		}
		idx[d.P]++
	}
	if len(longest) == 0 {
		t.Fatal("no deliveries in 3000 random steps")
	}
}

func TestAutoClassify(t *testing.T) {
	auto := NewAuto(types.RangeProcSet(2))
	if auto.Classify(Bcast{A: "x", P: 0}) != ioa.Input {
		t.Error("Bcast not input")
	}
	if auto.Classify(Brcv{A: "x", P: 0, Q: 1}) != ioa.Output {
		t.Error("Brcv not output")
	}
	if auto.Classify(ToOrder{A: "x", P: 0}) != ioa.Internal {
		t.Error("ToOrder not internal")
	}
	type other struct{ ioa.Action }
	if auto.Classify(other{}) != ioa.NotInSignature {
		t.Error("foreign action classified")
	}
}

func TestActionStrings(t *testing.T) {
	for _, c := range []struct {
		act  ioa.Action
		want string
	}{
		{Bcast{A: "x", P: 1}, `bcast("x")_p1`},
		{Brcv{A: "x", P: 1, Q: 2}, `brcv("x")_{p1,p2}`},
		{ToOrder{A: "x", P: 1}, `to-order("x",p1)`},
	} {
		if got := c.act.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
