// Package sim is a deterministic discrete-event simulator: a virtual clock,
// a pending-event priority queue, and a seeded randomness source. Every
// timed experiment in this repository runs on it, so all measured times are
// exact functions of the scenario parameters and the seed — which is what
// lets the experiment harness check the paper's analytic bounds precisely.
//
// The scheduling hot path is allocation-free in steady state: fired and
// cancelled events return to a per-simulator free list and are reused by
// later Schedule calls. Timer handles carry a generation number so a stale
// handle (held across its event's firing) can never cancel the recycled
// event now occupying the same slot.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, expressed as the duration elapsed since
// the start of the run.
type Time time.Duration

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the absolute time to a duration since the origin.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders the time like a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Never is a sentinel far-future time, useful for disabled deadlines.
const Never = Time(1<<63 - 1)

// event is one queued callback. Events are pooled: when an event fires or
// is cancelled it returns to the simulator's free list with its generation
// bumped, invalidating every outstanding Timer that pointed at it.
type event struct {
	when  Time
	seq   uint64 // FIFO tie-break among simultaneous events
	fn    func()
	index int    // heap index, -1 when not queued
	gen   uint64 // bumped on recycle; Timer handles must match
}

// Timer is a cancelable handle on a scheduled callback, returned by the
// Schedule-family methods. The zero Timer is valid and inert. Timer is a
// value type: copies are equivalent, and a handle outliving its event is
// harmless — the generation check makes Cancel on a fired, cancelled, or
// recycled event a no-op.
type Timer struct {
	s    *Sim
	e    *event
	gen  uint64
	when Time
}

// When returns the virtual time at which the event fires (or fired, or
// would have fired had it not been cancelled).
func (t Timer) When() Time { return t.when }

// Pending reports whether the event is still queued to fire.
func (t Timer) Pending() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.index >= 0
}

// Cancel prevents the event from firing and removes it from the queue
// immediately, so mass cancellation cannot grow the heap (cancelled
// events used to linger until their fire time). Cancelling an
// already-fired, already-cancelled, or zero Timer is a no-op.
func (t Timer) Cancel() {
	if !t.Pending() {
		return
	}
	heap.Remove(&t.s.queue, t.e.index)
	t.s.release(t.e)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is the simulator: clock, event queue, and seeded randomness.
// It is not safe for concurrent use; the whole simulation is single-threaded
// by design (determinism). Independent simulations are fully isolated and
// may run concurrently with each other (the sweep engine does).
type Sim struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	steps  uint64
	budget uint64   // max events to process, 0 = unlimited
	free   []*event // recycled events for allocation-free scheduling
}

// New creates a simulator with the given seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's seeded randomness source. All nondeterminism
// in a run must come from here.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// SetBudget bounds the total number of events a Run may process; 0 means
// unlimited. Exceeding the budget makes Run return ErrBudget.
func (s *Sim) SetBudget(n uint64) { s.budget = n }

// ErrBudget is returned by Run when the event budget is exhausted, which in
// a correct scenario indicates a livelock (e.g. endless view churn).
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// release returns a dead event to the free list. Bumping the generation
// first invalidates every outstanding Timer on it; dropping fn releases
// the callback's captures to the GC even while the event sits pooled.
func (s *Sim) release(e *event) {
	e.gen++
	e.fn = nil
	e.index = -1
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	var e *event
	if k := len(s.free); k > 0 {
		e = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		e = &event{}
	}
	e.when, e.seq, e.fn, e.index = t, s.seq, fn, -1
	s.seq++
	heap.Push(&s.queue, e)
	return Timer{s: s, e: e, gen: e.gen, when: t}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Defer schedules fn to run at the current time, after all callbacks already
// scheduled for the current time. It models a zero-delay local step.
func (s *Sim) Defer(fn func()) Timer { return s.After(0, fn) }

// Run processes events in time order until the queue is empty, the deadline
// passes, or the budget is exhausted. The deadline is an absolute virtual
// time; pass Never to run to quiescence. Events scheduled exactly at the
// deadline still fire.
func (s *Sim) Run(deadline Time) error {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			s.now = deadline
			return nil
		}
		heap.Pop(&s.queue)
		if s.budget != 0 && s.steps >= s.budget {
			return ErrBudget
		}
		s.steps++
		s.now = next.when
		// Recycle before calling: fn may itself schedule (reusing this
		// slot) or hold a stale Timer on it — the generation bump makes
		// both safe.
		fn := next.fn
		s.release(next)
		fn()
	}
	if deadline != Never && deadline > s.now {
		s.now = deadline
	}
	return nil
}

// RunFor processes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) error { return s.Run(s.now.Add(d)) }

// Pending returns the number of events currently queued. Cancelled events
// are removed eagerly, so they never count.
func (s *Sim) Pending() int { return len(s.queue) }
