// Package sim is a deterministic discrete-event simulator: a virtual clock,
// a pending-event priority queue, and a seeded randomness source. Every
// timed experiment in this repository runs on it, so all measured times are
// exact functions of the scenario parameters and the seed — which is what
// lets the experiment harness check the paper's analytic bounds precisely.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, expressed as the duration elapsed since
// the start of the run.
type Time time.Duration

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the absolute time to a duration since the origin.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders the time like a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Never is a sentinel far-future time, useful for disabled deadlines.
const Never = Time(1<<63 - 1)

// Event is a scheduled callback. It is returned by Schedule-family methods
// and can be cancelled.
type Event struct {
	when     Time
	seq      uint64 // FIFO tie-break among simultaneous events
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// When returns the virtual time at which the event fires (or was scheduled
// to fire).
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is the simulator: clock, event queue, and seeded randomness.
// It is not safe for concurrent use; the whole simulation is single-threaded
// by design (determinism).
type Sim struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	steps  uint64
	budget uint64 // max events to process, 0 = unlimited
}

// New creates a simulator with the given seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's seeded randomness source. All nondeterminism
// in a run must come from here.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// SetBudget bounds the total number of events a Run may process; 0 means
// unlimited. Exceeding the budget makes Run return ErrBudget.
func (s *Sim) SetBudget(n uint64) { s.budget = n }

// ErrBudget is returned by Run when the event budget is exhausted, which in
// a correct scenario indicates a livelock (e.g. endless view churn).
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Defer schedules fn to run at the current time, after all callbacks already
// scheduled for the current time. It models a zero-delay local step.
func (s *Sim) Defer(fn func()) *Event { return s.After(0, fn) }

// Run processes events in time order until the queue is empty, the deadline
// passes, or the budget is exhausted. The deadline is an absolute virtual
// time; pass Never to run to quiescence. Events scheduled exactly at the
// deadline still fire.
func (s *Sim) Run(deadline Time) error {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			s.now = deadline
			return nil
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		if s.budget != 0 && s.steps >= s.budget {
			return ErrBudget
		}
		s.steps++
		s.now = next.when
		next.fn()
	}
	if deadline != Never && deadline > s.now {
		s.now = deadline
	}
	return nil
}

// RunFor processes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) error { return s.Run(s.now.Add(d)) }

// Pending returns the number of events currently queued (including
// cancelled events not yet discarded).
func (s *Sim) Pending() int { return len(s.queue) }
