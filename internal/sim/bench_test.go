package sim

import (
	"testing"
	"time"
)

// BenchmarkSimScheduleFire measures the schedule→fire cycle, the innermost
// hot path of every simulated run: one event scheduled and processed per
// iteration. With the event free list this is allocation-free in steady
// state.
func BenchmarkSimScheduleFire(b *testing.B) {
	fn := func() {}
	b.Run("fire", func(b *testing.B) {
		s := New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.After(time.Microsecond, fn)
			if err := s.Run(Never); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Schedule-then-cancel: the timer-rearm pattern (vsimpl cancels and
	// re-arms its token-loss timer on every token hop).
	b.Run("cancel", func(b *testing.B) {
		s := New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := s.After(time.Microsecond, fn)
			t.Cancel()
		}
		if err := s.Run(Never); err != nil {
			b.Fatal(err)
		}
	})
	// A deeper queue: 64 pending events per fire, closer to a busy cluster.
	b.Run("fire-depth64", func(b *testing.B) {
		s := New(1)
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i+1)*time.Hour, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.After(time.Microsecond, fn)
			if err := s.RunFor(time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}
