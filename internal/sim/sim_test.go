package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []time.Duration{30, 10, 20, 10, 40} {
		s.After(d*time.Millisecond, func() { fired = append(fired, s.Now()) })
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if fired[len(fired)-1] != Time(40*time.Millisecond) {
		t.Errorf("last event at %v, want 40ms", fired[len(fired)-1])
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	e.Cancel()
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling a zero Timer and double-cancelling are no-ops.
	var zero Timer
	zero.Cancel()
	e.Cancel()
}

// TestCancelRemovesEagerly pins the queue-growth fix: cancelled events
// leave the heap immediately instead of lingering until their fire time,
// so mass cancellation keeps the queue bounded.
func TestCancelRemovesEagerly(t *testing.T) {
	s := New(1)
	const rounds, batch = 200, 50
	for r := 0; r < rounds; r++ {
		timers := make([]Timer, batch)
		for i := range timers {
			// Far-future events: under lazy deletion these would pile up
			// for the whole test.
			timers[i] = s.After(time.Hour, func() { t.Fatal("cancelled event fired") })
		}
		if s.Pending() != batch {
			t.Fatalf("round %d: Pending = %d, want %d", r, s.Pending(), batch)
		}
		for _, tm := range timers {
			tm.Cancel()
		}
		if s.Pending() != 0 {
			t.Fatalf("round %d: Pending = %d after mass cancel, want 0", r, s.Pending())
		}
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
}

// TestStaleTimerCannotCancelRecycledEvent pins the generation check: a
// handle held across its event's firing must not cancel the pooled event
// object's next occupant.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	s := New(1)
	stale := s.After(time.Millisecond, func() {})
	if err := s.Run(Never); err != nil {
		t.Fatal(err) // stale's event fired and was recycled
	}
	fired := false
	fresh := s.After(time.Millisecond, func() { fired = true })
	stale.Cancel() // must be a no-op even if fresh reuses stale's slot
	if !fresh.Pending() {
		t.Fatal("stale Cancel knocked out the recycled event")
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if stale.Pending() || fresh.Pending() {
		t.Fatal("fired timers still pending")
	}
}

// TestScheduleFireAllocFree pins the free-list pool: steady-state
// schedule→fire cycles do not allocate.
func TestScheduleFireAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		if err := s.Run(Never); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule→fire allocates %v/op, want 0", allocs)
	}
	// Schedule→cancel is allocation-free too.
	allocs = testing.AllocsPerRun(1000, func() {
		s.After(time.Hour, fn).Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule→cancel allocates %v/op, want 0", allocs)
	}
}

func TestDeferRunsAtCurrentTimeAfterQueued(t *testing.T) {
	s := New(1)
	var order []string
	s.At(0, func() {
		s.Defer(func() { order = append(order, "deferred") })
		order = append(order, "first")
	})
	s.At(0, func() { order = append(order, "second-at-0") })
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second-at-0", "deferred"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 0 {
		t.Errorf("Defer advanced time to %v", s.Now())
	}
}

func TestRunDeadlineStopsAndAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(10*time.Millisecond, func() { fired++ })
	s.After(30*time.Millisecond, func() { fired++ })
	if err := s.Run(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if s.Now() != Time(20*time.Millisecond) {
		t.Fatalf("Now() = %v, want 20ms", s.Now())
	}
	// Events exactly at the deadline still fire.
	s2 := New(1)
	hit := false
	s2.After(20*time.Millisecond, func() { hit = true })
	if err := s2.Run(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("event at deadline did not fire")
	}
}

func TestRunForAccumulates(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(10*time.Millisecond, tick)
	}
	s.After(10*time.Millisecond, tick)
	for i := 0; i < 5; i++ {
		if err := s.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != Time(50*time.Millisecond) {
		t.Fatalf("Now() = %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.After(10*time.Millisecond, func() {})
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-time.Millisecond, func() {})
}

func TestBudgetExhaustion(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.Defer(loop)
	s.SetBudget(100)
	err := s.Run(Never)
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if s.Steps() != 100 {
		t.Errorf("Steps() = %d, want 100", s.Steps())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(s.Now())+s.Rand().Int63n(1000))
			if len(out) < 50 {
				s.After(time.Duration(1+s.Rand().Intn(5))*time.Millisecond, step)
			}
		}
		s.Defer(step)
		if err := s.Run(Never); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(10 * time.Millisecond)
	if a.Add(5*time.Millisecond) != Time(15*time.Millisecond) {
		t.Error("Add wrong")
	}
	if a.Sub(Time(4*time.Millisecond)) != 6*time.Millisecond {
		t.Error("Sub wrong")
	}
	if a.Duration() != 10*time.Millisecond {
		t.Error("Duration wrong")
	}
	if a.String() != "10ms" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	if s.Pending() != 0 {
		t.Fatal("fresh sim has pending events")
	}
	s.After(time.Millisecond, func() {})
	s.After(time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
}

// TestHeapStress drives a large random schedule and checks global
// time-monotonicity of callbacks.
func TestHeapStress(t *testing.T) {
	t.Logf("seed 9")
	s := New(9)
	rng := rand.New(rand.NewSource(9))
	var last Time
	checks := 0
	var spawn func()
	spawn = func() {
		now := s.Now()
		if now < last {
			t.Fatalf("time went backwards: %v after %v", now, last)
		}
		last = now
		checks++
		if checks < 5000 {
			for i := 0; i < rng.Intn(3); i++ {
				s.After(time.Duration(rng.Intn(100))*time.Microsecond, spawn)
			}
		}
	}
	for i := 0; i < 100; i++ {
		s.After(time.Duration(rng.Intn(1000))*time.Microsecond, spawn)
	}
	if err := s.Run(Never); err != nil {
		t.Fatal(err)
	}
	if checks < 100 {
		t.Fatalf("only %d callbacks ran", checks)
	}
}
