package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	mrand "math/rand"
	stdnet "net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// Frame layout: a fixed 8-byte header — u32 payload length, u32 sender
// ProcID, both little-endian — followed by the payload bytes produced by
// the injected Encode. The header carries the sender so connections need no
// handshake: any process may dial any other and start framing.
//
// When the sender field carries senderBatchFlag the frame is a batch: its
// payload is a sequence of [u32 sub-length | sub-payload] messages encoded
// back to back, all from the same sender. Batches form on the send side
// while the writer is busy (messages coalesce into the queue's tail entry)
// and amortize both the encode allocations and the write syscalls.
const frameHeader = 8

// senderBatchFlag marks a batch frame in the header's sender field. ProcIDs
// are small non-negative integers, so bit 31 is always free.
const senderBatchFlag = 1 << 31

// maxWriteBatch bounds how many queued frames the writer goroutine drains
// per wake-up into one vectored write.
const maxWriteBatch = 32

// TCPConfig configures a TCP transport endpoint (one per process).
type TCPConfig struct {
	// Self is the local processor; inbound frames are delivered to its
	// registered handler.
	Self types.ProcID
	// Addrs maps every processor of the universe to its listen address.
	// Self's entry is the local listen address.
	Addrs map[types.ProcID]string
	// Delta is the advertised δ the protocol timers are calibrated against.
	// On a real network it is a deployment choice, not a guarantee: pick it
	// comfortably above the observed p99 one-way latency (see DESIGN.md §11).
	Delta time.Duration
	// Encode/Decode are the wire codec (internal/codec's Encode and Decode
	// in every real deployment; injected to keep this package below codec in
	// the dependency order). Encode errors panic — an unencodable payload is
	// a programming error, same contract as the simulated net's transcode.
	Encode func(any) ([]byte, error)
	Decode func([]byte) (any, error)
	// AppendEncode, when non-nil, appends a payload's encoding to dst and
	// returns the extended slice (internal/codec's AppendEncode). The send
	// path uses it to encode straight into the forming batch buffer — one
	// growing allocation per batch instead of one per message. Nil falls
	// back to Encode plus a copy.
	AppendEncode func(dst []byte, v any) ([]byte, error)
	// MaxBatchMsgs bounds how many messages coalesce into one batch frame
	// (default 64). 1 disables batching entirely: every message travels as
	// a legacy single-payload frame.
	MaxBatchMsgs int
	// MaxBatchBytes bounds a batch frame's payload size (default 256 KiB);
	// a batch at or past the bound stops accepting messages and the next
	// message opens a fresh frame.
	MaxBatchBytes int
	// Submit serializes handler invocations: every inbound delivery is
	// wrapped in a closure and passed to Submit, which must run closures one
	// at a time (the daemon runs them under its event-loop mutex). Nil runs
	// handlers inline on the reader goroutine (only safe for tests that do
	// their own locking).
	Submit func(fn func())
	// QueueLimit bounds each peer's send queue in frames; when full the
	// OLDEST queued frame is dropped (the protocol tolerates loss — stale
	// tokens and probes are worthless, the newest traffic is not). Default
	// 1024.
	QueueLimit int
	// DialMin/DialMax bound the exponential dial backoff (defaults
	// 20ms/2s); each wait is jittered to ±50% so a cluster-wide restart
	// does not produce synchronized dial storms.
	DialMin, DialMax time.Duration
	// WriteTimeout is the per-frame write deadline (default 5s): a peer
	// that stalls longer forfeits the connection and the writer redials.
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for queued frames to flush
	// over established connections (default 3s).
	DrainTimeout time.Duration
	// MaxFrame bounds accepted inbound frames (default 16 MiB); an
	// oversized header is treated as a corrupt stream and the connection is
	// dropped.
	MaxFrame int
	// Obs, when non-nil, receives the transport.* instruments. Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
	// Logf, when non-nil, receives connection-lifecycle diagnostics.
	Logf func(format string, args ...any)
}

type tcpMetrics struct {
	sent, delivered *obs.Counter
	bytes           *obs.Counter
	connects        *obs.Counter
	reconnects      *obs.Counter
	accepts         *obs.Counter
	dropOverflow     *obs.Counter // drop-oldest evictions, in frames
	dropOverflowMsgs *obs.Counter // messages lost to those evictions
	dropUnknown      *obs.Counter
	readErrors       *obs.Counter
	decodeErrors     *obs.Counter
	writeLatency     *obs.Histogram
	queueDepth       *obs.Gauge // high-water mark across all peer queues
	// queueDepthNow samples the current queued-message total across all
	// peers after every change — the decaying companion to queueDepth's
	// high-water Max, so a dashboard shows recovery, not just the worst
	// moment ever.
	queueDepthNow *obs.Gauge
}

// TCP is the real-socket Transport: one listener for inbound frames, one
// managed connection (dial + backoff + reconnect) per outbound peer.
type TCP struct {
	cfg  TCPConfig
	self types.ProcID
	m    tcpMetrics

	mu       sync.Mutex
	handlers map[types.ProcID]func(Packet)
	peers    map[types.ProcID]*peer
	ln       stdnet.Listener
	inbound  map[stdnet.Conn]struct{}
	closed   bool
	paused   bool

	stop     chan struct{}
	writerWG sync.WaitGroup

	// qNow is the current queued-message total across all peer queues,
	// feeding the transport.queue_depth_now gauge.
	qNow atomic.Int64
}

// NewTCP creates the endpoint. Call Start to bind the listener and begin
// dialing peers.
func NewTCP(cfg TCPConfig) *TCP {
	if cfg.Delta <= 0 {
		panic("transport: non-positive delta")
	}
	if cfg.Encode == nil || cfg.Decode == nil {
		panic("transport: Encode and Decode are required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	if cfg.DialMin <= 0 {
		cfg.DialMin = 20 * time.Millisecond
	}
	if cfg.DialMax <= 0 {
		cfg.DialMax = 2 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 3 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 16 << 20
	}
	if cfg.MaxBatchMsgs == 0 {
		cfg.MaxBatchMsgs = 64
	}
	if cfg.MaxBatchMsgs < 1 {
		cfg.MaxBatchMsgs = 1
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 256 << 10
	}
	t := &TCP{
		cfg:      cfg,
		self:     cfg.Self,
		handlers: make(map[types.ProcID]func(Packet)),
		peers:    make(map[types.ProcID]*peer),
		inbound:  make(map[stdnet.Conn]struct{}),
		stop:     make(chan struct{}),
		m: tcpMetrics{
			sent:         cfg.Obs.Counter("transport.sent"),
			delivered:    cfg.Obs.Counter("transport.delivered"),
			bytes:        cfg.Obs.Counter("transport.bytes"),
			connects:     cfg.Obs.Counter("transport.connects"),
			reconnects:   cfg.Obs.Counter("transport.reconnects"),
			accepts:      cfg.Obs.Counter("transport.accepts"),
			dropOverflow:     cfg.Obs.Counter("transport.drops_overflow"),
			dropOverflowMsgs: cfg.Obs.Counter("transport.drops_overflow_msgs"),
			dropUnknown:      cfg.Obs.Counter("transport.drops_unknown_peer"),
			readErrors:       cfg.Obs.Counter("transport.read_errors"),
			decodeErrors:     cfg.Obs.Counter("transport.decode_errors"),
			writeLatency:     cfg.Obs.Histogram("transport.write_latency"),
			queueDepth:       cfg.Obs.Gauge("transport.queue_depth"),
			queueDepthNow:    cfg.Obs.Gauge("transport.queue_depth_now"),
		},
	}
	return t
}

func (t *TCP) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Start binds the listener and launches one writer goroutine per peer.
func (t *TCP) Start() error {
	addr, ok := t.cfg.Addrs[t.self]
	if !ok {
		return fmt.Errorf("transport: no address for self %v", t.self)
	}
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.ln = ln
	for id, a := range t.cfg.Addrs {
		if id == t.self {
			continue
		}
		p := newPeer(t, id, a)
		t.peers[id] = p
		t.writerWG.Add(1)
		go p.run()
	}
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (useful with ":0" configs).
func (t *TCP) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Register installs the delivery handler for local processor p.
func (t *TCP) Register(p types.ProcID, h func(Packet)) {
	t.mu.Lock()
	t.handlers[p] = h
	t.mu.Unlock()
}

// Delta returns the advertised δ.
func (t *TCP) Delta() time.Duration { return t.cfg.Delta }

// Send encodes and transmits payload from→to. A self-send loops back
// locally, still through an encode/decode round trip so no pointer crosses
// the hop. Outbound messages coalesce into the peer queue's tail batch
// frame while the writer is busy (up to MaxBatchMsgs/MaxBatchBytes), so a
// burst leaves in a handful of vectored writes instead of one syscall per
// message.
func (t *TCP) Send(from, to types.ProcID, payload any) {
	t.m.sent.Inc()
	if to == t.self {
		b, err := t.cfg.Encode(payload)
		if err != nil {
			panic(fmt.Sprintf("transport: encode %T: %v", payload, err))
		}
		t.m.bytes.Add(int64(len(b)))
		v, err := t.cfg.Decode(b)
		if err != nil {
			panic(fmt.Sprintf("transport: loopback decode %T: %v", payload, err))
		}
		t.deliver(Packet{From: from, To: to, Payload: v})
		return
	}
	t.mu.Lock()
	p := t.peers[to]
	t.mu.Unlock()
	if p == nil {
		t.m.dropUnknown.Inc()
		return
	}
	enc := t.cfg.AppendEncode
	if enc == nil {
		enc = func(dst []byte, v any) ([]byte, error) {
			b, err := t.cfg.Encode(v)
			if err != nil {
				return nil, err
			}
			return append(dst, b...), nil
		}
	}
	res, err := p.q.push(from, payload, enc, t.cfg.MaxBatchMsgs, t.cfg.MaxBatchBytes)
	if err != nil {
		panic(fmt.Sprintf("transport: encode %T: %v", payload, err))
	}
	t.m.bytes.Add(int64(res.bytes))
	if res.evictedMsgs > 0 {
		t.m.dropOverflow.Inc()
		t.m.dropOverflowMsgs.Add(int64(res.evictedMsgs))
	}
	if res.queued {
		t.qNow.Add(int64(1 - res.evictedMsgs))
		t.m.queueDepth.Max(int64(res.depth))
		t.m.queueDepthNow.Set(t.qNow.Load())
	}
}

// Broadcast sends payload from→each member of dst except from itself.
func (t *TCP) Broadcast(from types.ProcID, dst types.ProcSet, payload any) {
	for _, to := range dst.Members() {
		if to != from {
			t.Send(from, to, payload)
		}
	}
}

// deliver hands a packet to the registered handler through Submit.
func (t *TCP) deliver(pkt Packet) {
	t.mu.Lock()
	h := t.handlers[pkt.To]
	t.mu.Unlock()
	if h == nil {
		return
	}
	t.m.delivered.Inc()
	if t.cfg.Submit != nil {
		t.cfg.Submit(func() { h(pkt) })
		return
	}
	h(pkt)
}

// closing reports whether Close has begun.
func (t *TCP) closing() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// Close shuts the transport down: the listener closes, queued frames drain
// over already-established connections for up to DrainTimeout, then every
// connection is torn down. Idempotent.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	ln := t.ln
	t.ln = nil
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]stdnet.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, p := range peers {
		p.q.close()
	}
	done := make(chan struct{})
	go func() {
		t.writerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(t.cfg.DrainTimeout):
		t.logf("transport: drain timeout, forcing close")
	}
	for _, p := range peers {
		p.closeConn()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// PauseListener severs every inbound link: the listener closes and all
// accepted connections are dropped, so no frame reaches this processor
// until ResumeListener. This is the live-fault realization of turning every
// channel *into* this processor bad (internal/live maps the failures
// vocabulary onto it).
func (t *TCP) PauseListener() {
	t.mu.Lock()
	if t.paused || t.closed {
		t.mu.Unlock()
		return
	}
	t.paused = true
	ln := t.ln
	t.ln = nil
	conns := make([]stdnet.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// ResumeListener re-binds the listener after PauseListener; peers
// reconnect through their ordinary backoff machinery.
func (t *TCP) ResumeListener() error {
	t.mu.Lock()
	if !t.paused || t.closed {
		t.mu.Unlock()
		return nil
	}
	t.paused = false
	t.mu.Unlock()
	ln, err := stdnet.Listen("tcp", t.cfg.Addrs[t.self])
	if err != nil {
		return fmt.Errorf("transport: relisten: %w", err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return nil
	}
	t.ln = ln
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return nil
}

func (t *TCP) acceptLoop(ln stdnet.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown or pause)
		}
		t.mu.Lock()
		if t.closed || t.paused {
			t.mu.Unlock()
			conn.Close()
			continue
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.m.accepts.Inc()
		go t.readLoop(conn)
	}
}

// readLoop parses frames off one inbound connection. A partial frame at
// connection close — the header or payload cut mid-read — is a read error:
// the fragment is discarded, never delivered, and the connection ends. A
// frame that parses but fails to decode is dropped alone (the stream
// framing is still sound, so later frames remain usable).
func (t *TCP) readLoop(conn stdnet.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if err != io.EOF {
				t.m.readErrors.Inc()
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sender := binary.LittleEndian.Uint32(hdr[4:8])
		isBatch := sender&senderBatchFlag != 0
		from := types.ProcID(int32(sender &^ senderBatchFlag))
		if int(n) > t.cfg.MaxFrame {
			t.m.readErrors.Inc()
			t.logf("transport: oversized frame (%d bytes) from %v, dropping connection", n, from)
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.m.readErrors.Inc()
			return
		}
		if !isBatch {
			t.decodeAndDeliver(from, buf)
			continue
		}
		// Batch frame: a sequence of [u32 len | payload] messages. A
		// malformed sub-header means the framing itself is unsound, so the
		// connection is dropped like any other corrupt stream.
		for off := 0; off < len(buf); {
			if len(buf)-off < 4 {
				t.m.readErrors.Inc()
				t.logf("transport: torn batch sub-header from %v, dropping connection", from)
				return
			}
			ln := int(binary.LittleEndian.Uint32(buf[off : off+4]))
			if ln <= 0 || ln > len(buf)-off-4 {
				t.m.readErrors.Inc()
				t.logf("transport: bad batch sub-length %d from %v, dropping connection", ln, from)
				return
			}
			t.decodeAndDeliver(from, buf[off+4:off+4+ln])
			off += 4 + ln
		}
	}
}

// decodeAndDeliver decodes one message payload and hands it to the local
// handler; an undecodable payload is dropped alone (the stream framing is
// still sound, so later messages remain usable).
func (t *TCP) decodeAndDeliver(from types.ProcID, b []byte) {
	v, err := t.cfg.Decode(b)
	if err != nil {
		t.m.decodeErrors.Inc()
		t.logf("transport: undecodable frame from %v: %v", from, err)
		return
	}
	t.deliver(Packet{From: from, To: t.self, Payload: v})
}

// --- outbound peer ---------------------------------------------------------

// peer manages the single outbound connection to one remote processor: a
// bounded drop-oldest frame queue and a writer goroutine that dials with
// jittered exponential backoff and redials on any write failure.
type peer struct {
	t    *TCP
	id   types.ProcID
	addr string
	q    *sendq

	mu        sync.Mutex
	conn      stdnet.Conn
	everConn  bool
	connected bool
}

func newPeer(t *TCP, id types.ProcID, addr string) *peer {
	return &peer{t: t, id: id, addr: addr, q: newSendq(t.cfg.QueueLimit)}
}

func (p *peer) setConn(c stdnet.Conn) {
	p.mu.Lock()
	p.conn = c
	p.connected = c != nil
	if c != nil {
		p.everConn = true
	}
	p.mu.Unlock()
}

// closeConn force-closes the current connection (shutdown path; the writer
// goroutine owns reconnection).
func (p *peer) closeConn() {
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.connected = false
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// run is the writer goroutine: pop everything queued (up to maxWriteBatch
// frames), ensure a connection, flush the lot in one vectored write. After
// Close begins it drains whatever remains over an already-established
// connection but never dials anew.
func (p *peer) run() {
	defer p.t.writerWG.Done()
	defer p.closeConn()
	for {
		frames, msgs, ok := p.q.popBatch(maxWriteBatch)
		if !ok {
			return
		}
		p.t.qNow.Add(-int64(msgs))
		p.t.m.queueDepthNow.Set(p.t.qNow.Load())
		p.write(frames)
	}
}

// write flushes a run of frames, redialing as needed. Returns once the
// frames are written or abandoned (transport closing with no usable
// connection). On a write error the WHOLE run is retried from the original
// frame slices on a fresh connection: a partial vectored write may have
// cut a frame mid-stream, and the new connection must start at a frame
// boundary — receivers tolerate the duplicated frames exactly as they
// tolerated the legacy path's whole-frame retries.
func (p *peer) write(frames [][]byte) {
	for {
		p.mu.Lock()
		conn := p.conn
		p.mu.Unlock()
		if conn == nil {
			if p.t.closing() {
				return // drain phase: no new dials
			}
			conn = p.dial()
			if conn == nil {
				return // transport closed while dialing
			}
			p.setConn(conn)
		}
		start := time.Now()
		conn.SetWriteDeadline(start.Add(p.t.cfg.WriteTimeout))
		// Buffers consumes its slice headers as it writes, so hand it a
		// copy and keep frames intact for a retry.
		bufs := stdnet.Buffers(append([][]byte(nil), frames...))
		if _, err := bufs.WriteTo(conn); err == nil {
			p.t.m.writeLatency.Record(time.Since(start))
			return
		}
		p.closeConn()
		if p.t.closing() {
			return
		}
	}
}

// dial connects to the peer, backing off exponentially with ±50% jitter
// between attempts. Returns nil only when the transport is closing.
func (p *peer) dial() stdnet.Conn {
	backoff := p.t.cfg.DialMin
	for {
		if p.t.closing() {
			return nil
		}
		conn, err := stdnet.DialTimeout("tcp", p.addr, p.t.cfg.DialMax)
		if err == nil {
			p.t.m.connects.Inc()
			p.mu.Lock()
			again := p.everConn
			p.mu.Unlock()
			if again {
				p.t.m.reconnects.Inc()
				p.t.logf("transport: reconnected to %v (%s)", p.id, p.addr)
			}
			return conn
		}
		wait := backoff/2 + time.Duration(mrand.Int63n(int64(backoff)+1))
		select {
		case <-p.t.stop:
			return nil
		case <-time.After(wait):
		}
		backoff *= 2
		if backoff > p.t.cfg.DialMax {
			backoff = p.t.cfg.DialMax
		}
	}
}

// --- bounded drop-oldest send queue ----------------------------------------

// sendEntry is one queued frame: the full wire bytes (8-byte header,
// finalized at pop time, then the payload) and the number of messages the
// frame carries. A batch entry at the tail keeps growing as messages
// coalesce into it; entries are only mutated or handed to the writer under
// the queue mutex, so membership in buf is ownership.
type sendEntry struct {
	from  types.ProcID
	buf   []byte
	msgs  int
	batch bool
}

// finalize stamps the header now that the entry has stopped growing.
func (e *sendEntry) finalize() []byte {
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(e.buf)-frameHeader))
	sender := uint32(int32(e.from))
	if e.batch {
		sender |= senderBatchFlag
	}
	binary.LittleEndian.PutUint32(e.buf[4:8], sender)
	return e.buf
}

// pushResult reports what one push did, for the caller's accounting.
type pushResult struct {
	depth       int  // resulting queue depth, in messages
	bytes       int  // payload bytes appended (0 when discarded)
	evictedMsgs int  // messages lost to a drop-oldest eviction
	queued      bool // false when the queue is closed (message discarded)
}

// sendq is a bounded FIFO of encoded frames. The bound is in frames; when
// full, push evicts the OLDEST frame: under sustained overload the
// receiver sees the freshest window of traffic, which is what a
// timeout-driven protocol can actually use (an ancient token only triggers
// the stale-view path anyway).
type sendq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []sendEntry
	msgs   int // total messages across buf
	limit  int
	closed bool
}

func newSendq(limit int) *sendq {
	q := &sendq{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push encodes payload (via enc, appending to the chosen buffer) into the
// queue: into the tail batch entry when batching allows — same sender,
// under maxMsgs messages and maxBytes payload — otherwise as a new frame,
// evicting the oldest frame if the queue is full. Encoding under the
// mutex is what makes the tail append safe and keeps allocation amortized:
// one growing buffer per batch, not one per message. Pushing after close
// discards the message (not an overflow: the transport is shutting down).
func (q *sendq) push(from types.ProcID, payload any, enc func([]byte, any) ([]byte, error), maxMsgs, maxBytes int) (pushResult, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return pushResult{depth: q.msgs}, nil
	}
	batching := maxMsgs > 1
	if batching && len(q.buf) > 0 {
		e := &q.buf[len(q.buf)-1]
		if e.batch && e.from == from && e.msgs < maxMsgs && len(e.buf)-frameHeader < maxBytes {
			off := len(e.buf)
			grown, err := enc(append(e.buf, 0, 0, 0, 0), payload)
			if err != nil {
				return pushResult{}, err
			}
			binary.LittleEndian.PutUint32(grown[off:off+4], uint32(len(grown)-off-4))
			e.buf = grown
			e.msgs++
			q.msgs++
			q.cond.Signal()
			return pushResult{depth: q.msgs, bytes: len(grown) - off - 4, queued: true}, nil
		}
	}
	buf := make([]byte, frameHeader, frameHeader+64)
	if batching {
		buf = append(buf, 0, 0, 0, 0)
	}
	grown, err := enc(buf, payload)
	if err != nil {
		return pushResult{}, err
	}
	payloadLen := len(grown) - len(buf)
	if batching {
		binary.LittleEndian.PutUint32(grown[frameHeader:frameHeader+4], uint32(payloadLen))
	}
	entry := sendEntry{from: from, buf: grown, msgs: 1, batch: batching}
	evicted := 0
	if len(q.buf) >= q.limit {
		evicted = q.buf[0].msgs
		q.msgs -= evicted
		copy(q.buf, q.buf[1:])
		q.buf[len(q.buf)-1] = entry
	} else {
		q.buf = append(q.buf, entry)
	}
	q.msgs++
	q.cond.Signal()
	return pushResult{depth: q.msgs, bytes: payloadLen, evictedMsgs: evicted, queued: true}, nil
}

// popBatch blocks until at least one frame is available or the queue is
// closed AND empty, then removes up to max frames, finalizes their headers
// (they stop growing the moment they leave buf), and returns them with
// their total message count. After close, remaining frames still drain in
// order.
func (q *sendq) popBatch(max int) ([][]byte, int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return nil, 0, false
	}
	n := len(q.buf)
	if n > max {
		n = max
	}
	frames := make([][]byte, 0, n)
	msgs := 0
	for i := 0; i < n; i++ {
		frames = append(frames, q.buf[i].finalize())
		msgs += q.buf[i].msgs
		q.buf[i] = sendEntry{} // release the buffer once written
	}
	q.buf = q.buf[n:]
	q.msgs -= msgs
	return frames, msgs, true
}

// depth returns the current queue length in messages.
func (q *sendq) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.msgs
}

func (q *sendq) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

var _ Transport = (*TCP)(nil)
