package transport_test

import (
	"encoding/binary"
	"fmt"
	stdnet "net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/codec"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// freePort reserves an ephemeral localhost port and returns its address.
// There is a tiny window between releasing and rebinding, acceptable in
// tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// sink collects delivered packets thread-safely.
type sink struct {
	mu   sync.Mutex
	pkts []transport.Packet
}

func (s *sink) handle(p transport.Packet) {
	s.mu.Lock()
	s.pkts = append(s.pkts, p)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkts)
}

func (s *sink) snapshot() []transport.Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]transport.Packet(nil), s.pkts...)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTCP(t *testing.T, self types.ProcID, addrs map[types.ProcID]string, reg *obs.Registry, tune func(*transport.TCPConfig)) *transport.TCP {
	t.Helper()
	cfg := transport.TCPConfig{
		Self:   self,
		Addrs:  addrs,
		Delta:  5 * time.Millisecond,
		Encode: codec.Encode,
		Decode: codec.Decode,
		Obs:    reg,
	}
	if tune != nil {
		tune(&cfg)
	}
	tr := transport.NewTCP(cfg)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestWireTypesOverSocket round-trips every wire type the codec knows
// across a real socket pair and asserts exact fidelity — the live
// equivalent of the codec's in-memory round-trip tests.
func TestWireTypesOverSocket(t *testing.T) {
	addrs := map[types.ProcID]string{0: freePort(t), 1: freePort(t)}
	regA, regB := obs.New(), obs.New()
	a := newTCP(t, 0, addrs, regA, nil)
	b := newTCP(t, 1, addrs, regB, nil)

	var got sink
	b.Register(1, got.handle)

	label := types.Label{ID: types.ViewID{Epoch: 3, Proc: 2}, Seqno: 7, Origin: 2}
	view := types.View{ID: types.ViewID{Epoch: 5, Proc: 1}, Set: types.NewProcSet(0, 1, 2)}
	payloads := []any{
		vstoto.LabeledValue{L: label, A: types.Value("hello")},
		&vstoto.Summary{
			Con:  map[types.Label]types.Value{label: "v"},
			Ord:  []types.Label{label},
			Next: 2,
			High: types.ViewID{Epoch: 4, Proc: 0},
		},
		membership.CallPkt{ID: types.ViewID{Epoch: 9, Proc: 1}},
		membership.AcceptPkt{ID: types.ViewID{Epoch: 9, Proc: 1}},
		membership.NewviewPkt{V: view},
		&vsimpl.TokenPkt{
			View: view,
			Base: 1,
			Msgs: []vsimpl.TokenMsg{{
				ID:      check.MsgID{Sender: 2, Seq: 1<<33 + 5},
				From:    2,
				Payload: vstoto.LabeledValue{L: label, A: "tok"},
			}},
			Delivered: map[types.ProcID]int{0: 1, 1: 2, 2: 2},
		},
		vsimpl.ProbePkt{ViewID: types.ViewID{Epoch: 2, Proc: 0}},
		"raw string payload",
	}
	for _, p := range payloads {
		a.Send(0, 1, p)
	}
	waitFor(t, 5*time.Second, "all payloads", func() bool { return got.len() == len(payloads) })

	for i, pkt := range got.snapshot() {
		if pkt.From != 0 || pkt.To != 1 {
			t.Errorf("packet %d: from/to = %v/%v", i, pkt.From, pkt.To)
		}
		if !reflect.DeepEqual(pkt.Payload, payloads[i]) {
			t.Errorf("payload %d: got %#v, want %#v", i, pkt.Payload, payloads[i])
		}
	}
	// Loopback self-send also round-trips through the codec.
	var self sink
	a.Register(0, self.handle)
	a.Send(0, 0, payloads[0])
	waitFor(t, time.Second, "loopback", func() bool { return self.len() == 1 })
	if !reflect.DeepEqual(self.snapshot()[0].Payload, payloads[0]) {
		t.Errorf("loopback payload mismatch")
	}
}

// TestReconnectAfterPeerRestart kills and restarts the receiving endpoint
// on the same address and asserts the sender's connection management heals
// the link (and counts the reconnect).
func TestReconnectAfterPeerRestart(t *testing.T) {
	addrs := map[types.ProcID]string{0: freePort(t), 1: freePort(t)}
	regA := obs.New()
	a := newTCP(t, 0, addrs, regA, func(c *transport.TCPConfig) {
		c.DialMin = 5 * time.Millisecond
	})

	var got1 sink
	b1 := newTCP(t, 1, addrs, obs.New(), nil)
	b1.Register(1, got1.handle)
	a.Send(0, 1, "before-restart")
	waitFor(t, 5*time.Second, "first delivery", func() bool { return got1.len() == 1 })

	b1.Close()

	var got2 sink
	b2 := newTCP(t, 1, addrs, obs.New(), nil)
	b2.Register(1, got2.handle)
	// The sender's established connection is dead but it cannot know until
	// a write fails; a real protocol retries (tokens relaunch, probes
	// repeat), so the test does too.
	waitFor(t, 10*time.Second, "delivery after restart", func() bool {
		a.Send(0, 1, "after-restart")
		return got2.len() > 0
	})
	if regA.Counter("transport.reconnects").Value() < 1 {
		t.Errorf("reconnects = %d, want >= 1", regA.Counter("transport.reconnects").Value())
	}
	for _, pkt := range got2.snapshot() {
		if pkt.Payload != "after-restart" {
			t.Errorf("unexpected payload after restart: %#v", pkt.Payload)
		}
	}
}

// TestSendQueueOverflow fills a tiny send queue against an unreachable
// peer and asserts drop-oldest accounting: the overflow counter matches
// exactly what is missing, and the frames that survive are the newest.
func TestSendQueueOverflow(t *testing.T) {
	peerAddr := freePort(t) // nothing listens here yet
	addrs := map[types.ProcID]string{0: freePort(t), 1: peerAddr}
	regA := obs.New()
	a := newTCP(t, 0, addrs, regA, func(c *transport.TCPConfig) {
		c.QueueLimit = 4
		// One message per frame: this test pins the legacy drop-oldest
		// accounting (batching would coalesce the burst into one frame and
		// nothing would ever overflow — TestSendQueueOverflowBatched covers
		// that path).
		c.MaxBatchMsgs = 1
		// Long backoff: the first dial fails instantly (connection refused)
		// and the writer then sits in backoff while the test overflows the
		// queue.
		c.DialMin = 300 * time.Millisecond
		c.DialMax = 500 * time.Millisecond
	})

	const total = 10
	for i := 0; i < total; i++ {
		a.Send(0, 1, fmt.Sprintf("m%d", i))
	}
	// Everything is either queued (≤ limit), held by the writer (≤ 1), or
	// dropped; wait for the accounting to settle.
	drops := regA.Counter("transport.drops_overflow")
	waitFor(t, 2*time.Second, "overflow drops", func() bool { return drops.Value() >= total-4-1 })
	if d := drops.Value(); d > total-4 {
		t.Fatalf("drops_overflow = %d, want at most %d", d, total-4)
	}
	dropped := int(drops.Value())

	// Bring the peer up; the survivors must all arrive.
	var got sink
	b := newTCP(t, 1, addrs, obs.New(), nil)
	b.Register(1, got.handle)
	want := total - dropped
	waitFor(t, 10*time.Second, "survivors", func() bool { return got.len() >= want })
	time.Sleep(50 * time.Millisecond)
	pkts := got.snapshot()
	if len(pkts) != want {
		t.Fatalf("delivered %d frames, want %d (dropped %d)", len(pkts), want, dropped)
	}
	// Drop-oldest: the newest 4 sends always survive, in order, at the tail.
	tail := pkts[len(pkts)-4:]
	for i, pkt := range tail {
		want := fmt.Sprintf("m%d", total-4+i)
		if pkt.Payload != want {
			t.Errorf("tail[%d] = %#v, want %q", i, pkt.Payload, want)
		}
	}
	if g := regA.Gauge("transport.queue_depth").Value(); g != 4 {
		t.Errorf("queue_depth high-water = %d, want 4", g)
	}
}

// TestSendQueueOverflowBatched is the batching-mode twin of
// TestSendQueueOverflow: entries coalesce up to MaxBatchMsgs messages, so
// drop-oldest evicts multi-message frames and the frame-granular counter
// alone would undercount the loss. Asserts the message-granular
// accounting conserves every message (delivered + dropped = sent), that
// survivors arrive in submission order, and that the current-depth gauge
// decays to zero once the queue drains.
func TestSendQueueOverflowBatched(t *testing.T) {
	peerAddr := freePort(t) // nothing listens here yet
	addrs := map[types.ProcID]string{0: freePort(t), 1: peerAddr}
	regA := obs.New()
	a := newTCP(t, 0, addrs, regA, func(c *transport.TCPConfig) {
		c.QueueLimit = 2
		c.MaxBatchMsgs = 2
		c.DialMin = 300 * time.Millisecond
		c.DialMax = 500 * time.Millisecond
	})

	const total = 10
	for i := 0; i < total; i++ {
		a.Send(0, 1, fmt.Sprintf("m%d", i))
	}
	// Evictions happen synchronously inside Send, so the drop counters
	// are final here. Every evicted entry holds exactly MaxBatchMsgs
	// messages (an entry only stops being the coalescing tail once full),
	// so the message-granular counter must be exactly 2x the frame one.
	dropsFrames := regA.Counter("transport.drops_overflow").Value()
	dropsMsgs := regA.Counter("transport.drops_overflow_msgs").Value()
	if dropsFrames < 1 {
		t.Fatalf("burst never overflowed the queue (drops_overflow = %d)", dropsFrames)
	}
	if dropsMsgs != 2*dropsFrames {
		t.Fatalf("drops_overflow_msgs = %d, want 2x drops_overflow (%d)", dropsMsgs, dropsFrames)
	}

	// Bring the peer up; everything not dropped must arrive, in order.
	var got sink
	b := newTCP(t, 1, addrs, obs.New(), nil)
	b.Register(1, got.handle)
	want := total - int(dropsMsgs)
	waitFor(t, 10*time.Second, "survivors", func() bool { return got.len() >= want })
	time.Sleep(50 * time.Millisecond)
	pkts := got.snapshot()
	if len(pkts) != want {
		t.Fatalf("delivered %d messages, want %d (dropped %d)", len(pkts), want, dropsMsgs)
	}
	// Submission order survives batching and drop-oldest: the delivered
	// indices are strictly increasing and end with the newest message.
	last := -1
	for i, pkt := range pkts {
		var idx int
		if _, err := fmt.Sscanf(pkt.Payload.(string), "m%d", &idx); err != nil {
			t.Fatalf("pkts[%d] = %#v", i, pkt.Payload)
		}
		if idx <= last {
			t.Fatalf("out of order: m%d after m%d", idx, last)
		}
		last = idx
	}
	if last != total-1 {
		t.Errorf("newest message m%d did not survive (last = m%d)", total-1, last)
	}
	// High-water depth is message-granular (2 entries x 2 msgs max); the
	// current-depth gauge must have decayed with the drain.
	if g := regA.Gauge("transport.queue_depth").Value(); g < 2 || g > 4 {
		t.Errorf("queue_depth high-water = %d, want within [2,4]", g)
	}
	waitFor(t, 2*time.Second, "queue_depth_now decay", func() bool {
		return regA.Gauge("transport.queue_depth_now").Value() == 0
	})
}

// TestPartialFrameAtClose cuts a connection mid-frame and asserts the
// fragment is discarded (read error, no delivery) without poisoning the
// endpoint: a later well-formed connection still delivers.
func TestPartialFrameAtClose(t *testing.T) {
	addrs := map[types.ProcID]string{1: freePort(t)}
	regB := obs.New()
	b := newTCP(t, 1, addrs, regB, nil)
	var got sink
	b.Register(1, got.handle)

	readErrs := regB.Counter("transport.read_errors")

	// Payload cut short: header claims 100 bytes, only 10 follow.
	conn, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	binary.LittleEndian.PutUint32(hdr[4:8], 0)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 10))
	conn.Close()
	waitFor(t, 2*time.Second, "payload read error", func() bool { return readErrs.Value() >= 1 })

	// Header itself cut short.
	conn2, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write(hdr[:3])
	conn2.Close()
	waitFor(t, 2*time.Second, "header read error", func() bool { return readErrs.Value() >= 2 })

	// Oversized length field: corrupt stream, connection dropped.
	conn3, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	conn3.Write(hdr[:])
	waitFor(t, 2*time.Second, "oversized-frame error", func() bool { return readErrs.Value() >= 3 })
	conn3.Close()

	if got.len() != 0 {
		t.Fatalf("partial frames delivered %d packets, want 0", got.len())
	}

	// The endpoint is still healthy: a well-formed frame goes through.
	payload, err := codec.Encode("healthy")
	if err != nil {
		t.Fatal(err)
	}
	conn4, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn4.Close()
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(0))
	copy(frame[8:], payload)
	conn4.Write(frame)
	waitFor(t, 2*time.Second, "healthy delivery", func() bool { return got.len() == 1 })
	if p := got.snapshot()[0]; p.Payload != "healthy" || p.From != 0 {
		t.Errorf("got %#v from %v, want \"healthy\" from p0", p.Payload, p.From)
	}
}

// TestListenerPauseResume severs all inbound links (the live injector's
// channel-fault realization) and verifies traffic resumes after the
// listener comes back.
func TestListenerPauseResume(t *testing.T) {
	addrs := map[types.ProcID]string{0: freePort(t), 1: freePort(t)}
	a := newTCP(t, 0, addrs, obs.New(), func(c *transport.TCPConfig) {
		c.DialMin = 5 * time.Millisecond
	})
	b := newTCP(t, 1, addrs, obs.New(), nil)
	var got sink
	b.Register(1, got.handle)

	a.Send(0, 1, "up")
	waitFor(t, 5*time.Second, "delivery while up", func() bool { return got.len() == 1 })

	b.PauseListener()
	time.Sleep(50 * time.Millisecond)
	a.Send(0, 1, "lost") // dead conn or refused dial: must not arrive
	time.Sleep(100 * time.Millisecond)

	if err := b.ResumeListener(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "delivery after resume", func() bool {
		a.Send(0, 1, "back")
		for _, p := range got.snapshot() {
			if p.Payload == "back" {
				return true
			}
		}
		return false
	})
}

// TestPauseDuringInFlightFrame pauses the listener while a frame is cut
// mid-write on an accepted connection: the fragment must be discarded
// (partial-frame close), never delivered — and the endpoint must serve
// complete frames again after resume. This is the exact race the live
// injector's LPAUSE creates when it lands between a peer's header and
// payload writes.
func TestPauseDuringInFlightFrame(t *testing.T) {
	addrs := map[types.ProcID]string{1: freePort(t)}
	regB := obs.New()
	b := newTCP(t, 1, addrs, regB, nil)
	var got sink
	b.Register(1, got.handle)
	readErrs := regB.Counter("transport.read_errors")

	payload, err := codec.Encode("in-flight")
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], 0)
	copy(frame[8:], payload)

	// Header and half the payload, then LPAUSE with the rest unwritten:
	// the reader is blocked mid-frame when the pause closes its
	// connection out from under it.
	conn, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	half := 8 + len(payload)/2
	if _, err := conn.Write(frame[:half]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the read loop consume the fragment
	b.PauseListener()
	waitFor(t, 2*time.Second, "mid-frame read error", func() bool { return readErrs.Value() >= 1 })

	// Completing the write now goes nowhere: the connection is dead and
	// the fragment was discarded, not buffered.
	conn.Write(frame[half:])
	time.Sleep(100 * time.Millisecond)
	if got.len() != 0 {
		t.Fatalf("torn frame delivered %d packets, want 0", got.len())
	}

	// After resume, a complete frame on a fresh connection goes through.
	if err := b.ResumeListener(); err != nil {
		t.Fatal(err)
	}
	conn2, err := stdnet.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	payload2, err := codec.Encode("after-resume")
	if err != nil {
		t.Fatal(err)
	}
	frame2 := make([]byte, 8+len(payload2))
	binary.LittleEndian.PutUint32(frame2[0:4], uint32(len(payload2)))
	binary.LittleEndian.PutUint32(frame2[4:8], 0)
	copy(frame2[8:], payload2)
	conn2.Write(frame2)
	waitFor(t, 5*time.Second, "post-resume delivery", func() bool { return got.len() == 1 })
	if p := got.snapshot()[0]; p.Payload != "after-resume" {
		t.Errorf("got %#v, want \"after-resume\"", p.Payload)
	}
}
