// Package transport defines the point-to-point message transport that the
// VS implementation runs over, and provides the real-socket realization of
// it (tcp.go). The interface is extracted from what internal/vsimpl,
// internal/membership, and internal/stack actually demand of the simulated
// network: register one delivery handler per local processor, then fire
// Send/Broadcast at will.
//
// Two implementations exist:
//
//   - internal/net.Network — the deterministic simulated network driven by
//     the failure oracle of Figure 4. Every spec, chaos, and experiment run
//     uses it; it is the default everywhere.
//   - TCP (this package) — a length-prefixed framing over real sockets, one
//     process per processor, used by the pgcsd daemon. Real transports have
//     real faults (resets, refused connections, slow peers), so this side
//     carries connection management the simulation never needed: dial
//     backoff with jitter, reconnection, bounded drop-oldest send queues,
//     and graceful drain on shutdown.
//
// The package deliberately does not import internal/codec (which sits above
// vsimpl in the dependency order): the wire encoding is injected as a pair
// of function values, so the same framing could carry any self-contained
// payload encoding.
package transport

import (
	"time"

	"repro/internal/types"
)

// Packet is one point-to-point message as seen by a receiver.
type Packet struct {
	From, To types.ProcID
	Payload  any
}

// Transport is the send/deliver contract shared by the simulated network
// and the TCP transport. Implementations deliver packets by invoking the
// handler registered for the destination; packets to a processor with no
// registered handler are dropped.
//
// Handlers must be invoked one at a time per receiving processor: the
// protocol layers above are single-threaded by design. The simulated
// network gets this for free from the event loop; the TCP transport
// serializes deliveries through its Submit hook.
type Transport interface {
	// Register installs the delivery handler for local processor p.
	Register(p types.ProcID, h func(Packet))
	// Send transmits payload from→to. Sending to oneself must loop back
	// locally (still through the wire encoding, where one is configured, so
	// no in-memory pointer survives the hop).
	Send(from, to types.ProcID, payload any)
	// Broadcast sends payload from→each member of dst except from itself.
	Broadcast(from types.ProcID, dst types.ProcSet, payload any)
	// Delta returns the advertised good-path delivery bound δ that the
	// protocol timers are calibrated against.
	Delta() time.Duration
}
