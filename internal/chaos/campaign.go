// Package chaos is the adversarial fault-injection harness: it generates
// typed campaigns of failure schedules against a stack.Cluster, runs each
// under continuous traffic with full TO/VS trace conformance plus a
// recovery-liveness check, shrinks any failing schedule to a minimal
// counterexample by delta debugging, and serializes counterexamples into
// JSON artifacts that cmd/chaos can replay byte for byte.
//
// Everything is deterministic: a campaign is a pure function of its type,
// seed, and spec; a run is a pure function of its Config. The same seed
// therefore always produces the same schedule, the same trace, the same
// verdict, and the same artifact bytes — which is what makes a CI failure
// reproducible from the artifact alone.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/types"
)

// CampaignType names one family of adversarial failure schedules.
type CampaignType string

// The campaign families. Each stresses a different hypothesis of the
// paper's conditional properties (Figures 5 and 7): what survives crashes,
// partitions, timing-free (ugly) links, and combinations thereof.
const (
	// CrashRestart: waves of processor crashes and staggered restarts,
	// sometimes leaving processors down until the final heal.
	CrashRestart CampaignType = "crash-restart"
	// RollingPartition: a sequence of random partitions, each replacing
	// the previous one, with occasional full heals between.
	RollingPartition CampaignType = "rolling-partition"
	// NestedPartition: a partition whose larger side is sub-partitioned,
	// then healed inner-first — views must shrink and re-grow monotonically.
	NestedPartition CampaignType = "nested-partition"
	// Flapping: a few links and one processor toggle good↔bad at periods
	// close to δ, far faster than membership can stabilize.
	Flapping CampaignType = "flapping"
	// Asymmetric: one-way ugly/bad links (a→b afflicted while b→a stays
	// good), rotated across pairs — the "ugly" timing-free regime.
	Asymmetric CampaignType = "asymmetric"
	// LeaderCrash: crashes targeted at the current ring leader (the
	// minimum live processor), timed just before token-launch instants,
	// cascading leadership down the ring.
	LeaderCrash CampaignType = "leader-crash"
	// Mixed: the soak-test adversary — every 200–500ms one of partition /
	// crash / ugly links / heal, uniformly at random.
	Mixed CampaignType = "mixed"
	// Amnesia: waves of amnesia crashes (failures.Amnesia — stop plus loss
	// of all volatile state), occasionally wiping the whole universe at
	// once, with staggered restarts that force a WAL replay and rejoin.
	Amnesia CampaignType = "amnesia"
	// TornWrite: rapid-fire amnesia strikes under positive stable-storage
	// write latency, so crashes land while WAL records are in flight and
	// tear the log's tail (the runner defaults StorageLatency to δ/4 for
	// this campaign).
	TornWrite CampaignType = "torn-write"
)

// Campaigns lists every campaign type, in a fixed order.
var Campaigns = []CampaignType{
	CrashRestart, RollingPartition, NestedPartition, Flapping, Asymmetric, LeaderCrash, Mixed,
	Amnesia, TornWrite,
}

// ParseCampaign validates a campaign name.
func ParseCampaign(s string) (CampaignType, error) {
	for _, c := range Campaigns {
		if string(c) == s {
			return c, nil
		}
	}
	return "", fmt.Errorf("chaos: unknown campaign %q (have %v)", s, Campaigns)
}

// Spec parameterizes schedule generation.
type Spec struct {
	// N is the number of processors (IDs 0..N-1).
	N int
	// Delta is the network's δ; fault timing scales with it.
	Delta time.Duration
	// Window is the adversary's active interval [0, Window): every
	// generated event falls strictly inside it. The runner force-heals the
	// world at the end of the window, establishing the recovery-liveness
	// hypothesis.
	Window time.Duration
	// Pi is the token-launch period π, used to time leader-targeted
	// crashes against token circulation.
	Pi time.Duration
}

// Generate produces the failure schedule of the given campaign type,
// deterministically from (ct, seed, spec).
func Generate(ct CampaignType, seed int64, spec Spec) (failures.Schedule, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("chaos: need at least 2 processors, have %d", spec.N)
	}
	if spec.Delta <= 0 || spec.Window <= 0 {
		return nil, fmt.Errorf("chaos: Delta and Window must be positive")
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(seed)),
		spec: spec,
		all:  types.RangeProcSet(spec.N),
	}
	switch ct {
	case CrashRestart:
		g.crashRestart()
	case RollingPartition:
		g.rollingPartition()
	case NestedPartition:
		g.nestedPartition()
	case Flapping:
		g.flapping()
	case Asymmetric:
		g.asymmetric()
	case LeaderCrash:
		g.leaderCrash()
	case Mixed:
		g.mixed()
	case Amnesia:
		g.amnesia()
	case TornWrite:
		g.tornWrite()
	default:
		return nil, fmt.Errorf("chaos: unknown campaign %q", ct)
	}
	g.out.Sort()
	return g.out, nil
}

type gen struct {
	rng  *rand.Rand
	spec Spec
	all  types.ProcSet
	out  failures.Schedule
}

// inWindow clamps t strictly inside the adversary window.
func (g *gen) inWindow(t time.Duration) sim.Time {
	if t < 0 {
		t = 0
	}
	if t >= g.spec.Window {
		t = g.spec.Window - 1
	}
	return sim.Time(t)
}

func (g *gen) proc(t time.Duration, p types.ProcID, s failures.Status) {
	g.out = append(g.out, failures.Event{Time: g.inWindow(t), Proc: p, Status: s})
}

func (g *gen) channel(t time.Duration, from, to types.ProcID, s failures.Status) {
	g.out = append(g.out, failures.Event{
		Time: g.inWindow(t), Channel: true,
		Pair: failures.Pair{From: from, To: to}, Status: s,
	})
}

// partition emits the event-list form of Oracle.Partition: all processors
// good, channels good within a component and bad across (processors in no
// component are fully cut off).
func (g *gen) partition(t time.Duration, components ...types.ProcSet) {
	comp := make(map[types.ProcID]int)
	for i, c := range components {
		for _, p := range c.Members() {
			comp[p] = i + 1
		}
	}
	for _, p := range g.all.Members() {
		g.proc(t, p, failures.Good)
		for _, r := range g.all.Members() {
			if p == r {
				continue
			}
			if comp[p] != 0 && comp[p] == comp[r] {
				g.channel(t, p, r, failures.Good)
			} else {
				g.channel(t, p, r, failures.Bad)
			}
		}
	}
}

// heal emits the event-list form of Oracle.Heal.
func (g *gen) heal(t time.Duration) {
	g.partition(t, g.all)
}

// randomSplit partitions the universe into k non-empty components.
func (g *gen) randomSplit(k int) []types.ProcSet {
	n := g.spec.N
	if k > n {
		k = n
	}
	perm := g.rng.Perm(n)
	// k-1 distinct cut points define k non-empty runs of the permutation.
	sets := make([][]types.ProcID, k)
	for i, idx := range perm {
		// Assign the first k elements one per component (non-emptiness),
		// the rest uniformly.
		c := i
		if i >= k {
			c = g.rng.Intn(k)
		}
		sets[c] = append(sets[c], types.ProcID(idx))
	}
	out := make([]types.ProcSet, k)
	for i, s := range sets {
		out[i] = types.NewProcSet(s...)
	}
	return out
}

func (g *gen) crashRestart() {
	w := g.spec.Window
	waves := 2 + g.rng.Intn(3)
	for i := 0; i < waves; i++ {
		start := time.Duration(i+1) * w / time.Duration(waves+1)
		k := 1 + g.rng.Intn(g.spec.N-1) // crash 1..N-1, never the whole world at once
		for _, idx := range g.rng.Perm(g.spec.N)[:k] {
			p := types.ProcID(idx)
			at := start + time.Duration(g.rng.Int63n(int64(20*g.spec.Delta)))
			g.proc(at, p, failures.Bad)
			// Two thirds restart before the window closes; the rest stay
			// down until the forced heal.
			if g.rng.Intn(3) < 2 {
				up := at + time.Duration(g.rng.Int63n(int64(w/4)))
				g.proc(up, p, failures.Good)
			}
		}
	}
}

func (g *gen) rollingPartition() {
	w := g.spec.Window
	t := w / 8
	for t < w {
		switch g.rng.Intn(5) {
		case 0:
			g.heal(t)
		case 1:
			g.partition(t, g.randomSplit(3)...)
		default:
			g.partition(t, g.randomSplit(2)...)
		}
		t += time.Duration(int64(w)/8 + g.rng.Int63n(int64(w)/8))
	}
}

func (g *gen) nestedPartition() {
	w := g.spec.Window
	outer := g.randomSplit(2)
	big, small := outer[0], outer[1]
	if small.Size() > big.Size() {
		big, small = small, big
	}
	g.partition(w/6, big, small)
	if big.Size() >= 2 {
		// Sub-partition the larger side, hold, then heal inner-first.
		members := big.Members()
		cut := 1 + g.rng.Intn(len(members)-1)
		inner1 := types.NewProcSet(members[:cut]...)
		inner2 := types.NewProcSet(members[cut:]...)
		g.partition(2*w/6, inner1, inner2, small)
		g.partition(4*w/6, big, small) // inner heal: big reunites, outer cut remains
	}
	if g.rng.Intn(2) == 0 {
		g.heal(5 * w / 6) // sometimes heal the outer cut early, too
	}
}

func (g *gen) flapping() {
	w := g.spec.Window
	// A few directed links flap…
	links := 2 + g.rng.Intn(3)
	for i := 0; i < links; i++ {
		a := types.ProcID(g.rng.Intn(g.spec.N))
		b := types.ProcID(g.rng.Intn(g.spec.N))
		if a == b {
			b = types.ProcID((int(b) + 1) % g.spec.N)
		}
		down := failures.Bad
		if g.rng.Intn(2) == 0 {
			down = failures.Ugly
		}
		t := time.Duration(g.rng.Int63n(int64(w / 4)))
		for t < w {
			g.channel(t, a, b, down)
			t += g.spec.Delta + time.Duration(g.rng.Int63n(int64(8*g.spec.Delta)))
			g.channel(t, a, b, failures.Good)
			t += g.spec.Delta + time.Duration(g.rng.Int63n(int64(8*g.spec.Delta)))
		}
	}
	// …and one processor flaps more slowly (close to the membership
	// timescale, the nastiest regime for view agreement).
	p := types.ProcID(g.rng.Intn(g.spec.N))
	period := 10 * g.spec.Delta
	t := w / 4
	for t < w {
		g.proc(t, p, failures.Bad)
		t += period + time.Duration(g.rng.Int63n(int64(period)))
		g.proc(t, p, failures.Good)
		t += 4*period + time.Duration(g.rng.Int63n(int64(4*period)))
	}
}

func (g *gen) asymmetric() {
	w := g.spec.Window
	phases := 3 + g.rng.Intn(3)
	for i := 0; i < phases; i++ {
		start := time.Duration(i) * w / time.Duration(phases)
		end := time.Duration(i+1) * w / time.Duration(phases)
		// Afflict 1..3 ordered pairs one-way for the phase.
		pairs := 1 + g.rng.Intn(3)
		for j := 0; j < pairs; j++ {
			a := types.ProcID(g.rng.Intn(g.spec.N))
			b := types.ProcID(g.rng.Intn(g.spec.N))
			if a == b {
				b = types.ProcID((int(b) + 1) % g.spec.N)
			}
			st := failures.Ugly
			if g.rng.Intn(3) == 0 {
				st = failures.Bad
			}
			at := start + time.Duration(g.rng.Int63n(int64(end-start)))
			g.channel(at, a, b, st)
			// The reverse direction is explicitly good: strictly one-way.
			g.channel(at, b, a, failures.Good)
			if g.rng.Intn(2) == 0 {
				g.channel(end-1, a, b, failures.Good)
			}
		}
	}
}

func (g *gen) leaderCrash() {
	w, pi := g.spec.Window, g.spec.Pi
	if pi <= 0 {
		pi = time.Duration(g.spec.N+2) * g.spec.Delta
	}
	// downUntil[p] is the instant p comes back up (forever for crashes with
	// no scheduled restart); liveness is evaluated at each strike's time,
	// since a restart scheduled earlier may land after a later strike.
	const forever = time.Duration(1<<62 - 1)
	downUntil := make([]time.Duration, g.spec.N)
	// Strike just before token-launch instants (multiples of π), so the
	// token in flight is orphaned and the next launch never happens.
	k := int64(2)
	for {
		at := time.Duration(k)*pi - g.spec.Delta/2
		if at >= w {
			break
		}
		leader, alive := types.ProcID(0), 0
		for i := g.spec.N - 1; i >= 0; i-- {
			if downUntil[i] <= at {
				alive++
				leader = types.ProcID(i)
			}
		}
		if alive > 1 { // keep at least one processor alive
			g.proc(at, leader, failures.Bad)
			downUntil[leader] = forever
			// Restart after a few token periods, usually.
			if g.rng.Intn(4) > 0 {
				upAt := at + time.Duration(2+g.rng.Intn(3))*pi
				if upAt < w {
					g.proc(upAt, leader, failures.Good)
					downUntil[leader] = upAt
				}
			}
		}
		k += 2 + int64(g.rng.Intn(3))
	}
}

func (g *gen) amnesia() {
	w := g.spec.Window
	waves := 2 + g.rng.Intn(3)
	for i := 0; i < waves; i++ {
		start := time.Duration(i+1) * w / time.Duration(waves+1)
		k := 1 + g.rng.Intn(g.spec.N-1)
		if g.rng.Intn(3) == 0 {
			// Total amnesia: every processor forgets at once, and the group
			// must be rebuilt entirely from stable storage.
			k = g.spec.N
		}
		for _, idx := range g.rng.Perm(g.spec.N)[:k] {
			p := types.ProcID(idx)
			at := start + time.Duration(g.rng.Int63n(int64(20*g.spec.Delta)))
			g.proc(at, p, failures.Amnesia)
			// Two thirds restart (and replay their WAL) before the window
			// closes; the rest stay wiped until the forced heal.
			if g.rng.Intn(3) < 2 {
				up := at + time.Duration(g.rng.Int63n(int64(w/4)))
				g.proc(up, p, failures.Good)
			}
		}
	}
}

func (g *gen) tornWrite() {
	w := g.spec.Window
	pi := g.spec.Pi
	if pi <= 0 {
		pi = time.Duration(g.spec.N+2) * g.spec.Delta
	}
	// Many short outages at random instants: with λ > 0 some strikes land
	// while a WAL record is in flight, tearing the log's tail; quick
	// restarts make the truncated replay rejoin under ongoing traffic.
	strikes := 6 + g.rng.Intn(7)
	for i := 0; i < strikes; i++ {
		p := types.ProcID(g.rng.Intn(g.spec.N))
		at := w/8 + time.Duration(g.rng.Int63n(int64(w-w/8)))
		g.proc(at, p, failures.Amnesia)
		up := at + time.Duration(1+g.rng.Intn(4))*pi
		g.proc(up, p, failures.Good)
	}
}

func (g *gen) mixed() {
	w := g.spec.Window
	t := 150 * time.Millisecond
	if t >= w {
		t = w / 8
	}
	for t < w {
		switch g.rng.Intn(4) {
		case 0:
			g.partition(t, g.randomSplit(2)...)
		case 1:
			p := types.ProcID(g.rng.Intn(g.spec.N))
			g.proc(t, p, failures.Bad)
			for _, q := range g.all.Members() {
				if q != p {
					g.channel(t, p, q, failures.Bad)
					g.channel(t, q, p, failures.Bad)
				}
			}
		case 2:
			for i := 0; i < 4; i++ {
				a := types.ProcID(g.rng.Intn(g.spec.N))
				b := types.ProcID(g.rng.Intn(g.spec.N))
				if a != b {
					g.channel(t, a, b, failures.Ugly)
				}
			}
		case 3:
			g.heal(t)
		}
		t += 200*time.Millisecond + time.Duration(g.rng.Int63n(int64(300*time.Millisecond)))
	}
}
