package chaos

import (
	"testing"
)

// TestAmnesiaCampaignsWithCompaction reruns the amnesia and torn-write
// campaigns with WAL snapshot/compaction armed: every rejoin now replays
// a checkpoint plus a suffix (possibly of a prefix-truncated log) instead
// of the full history, and every built-in check — conformance, recovery
// liveness, rejoin safety, non-vacuity — must still pass. The campaign is
// only evidence if checkpoints actually happen and the prefix is actually
// discarded somewhere, so both are asserted across the seeds.
func TestAmnesiaCampaignsWithCompaction(t *testing.T) {
	checkpoints, compacted := 0, 0
	for seed := int64(1); seed <= 5; seed++ {
		for _, ct := range []CampaignType{Amnesia, TornWrite} {
			r := Run(Config{Campaign: ct, Seed: seed, CheckpointBytes: 1024})
			if r.Failed() {
				t.Errorf("%s seed=%d ckpt=1024: %v", ct, seed, r.Violation)
				continue
			}
			if len(r.Cluster.Crashes) == 0 {
				t.Errorf("%s seed=%d: no amnesia crash — campaign is vacuous", ct, seed)
			}
			for _, p := range r.Cluster.Procs.Members() {
				n := r.Cluster.Node(p)
				checkpoints += n.Checkpoints()
				if n.WAL().Storage().Base() > 0 {
					compacted++
				}
			}
		}
	}
	if checkpoints == 0 {
		t.Error("no node ever checkpointed across the compaction campaigns — threshold never reached")
	}
	if compacted == 0 {
		t.Error("no node ever discarded a WAL prefix — compaction never fired")
	}
}
