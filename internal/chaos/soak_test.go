package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestSoakRandomFaults is the long randomized end-to-end burn-in, formerly
// internal/stack's inline soak, now running on the chaos harness: many
// seeds, continuous traffic, and the mixed adversary (partitions, crashes,
// ugly links, heals) over tens of simulated seconds, with full VS and TO
// trace conformance plus the recovery-liveness and non-vacuity checks on
// every run. Gated behind -short.
func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			t.Logf("seed %d", seed)
			n := 3 + int(seed)%4 // 3..6 nodes
			wire := seed%2 == 0  // alternate wire mode for coverage
			r := Run(Config{
				Campaign: Mixed, Seed: seed, N: n, Wire: wire,
				Window: 12 * time.Second,
			})
			if r.Failed() {
				min, st := ShrinkResult(r, 400)
				data, _ := NewArtifact(min).Encode()
				t.Fatalf("violation: %v\nminimized to %d events in %d runs; replay artifact:\n%s",
					r.Violation, st.To, st.Runs, data)
			}
			t.Logf("soak seed %d: n=%d wire=%t msgs=%d deliveries=%d VS events=%d max recovery lag %v (bound %v)",
				seed, n, wire, r.Msgs, r.Deliveries, r.VSEvents, r.Recovery.MaxLag, r.Bound)
		})
	}
}

// TestCampaignSweep runs every campaign type at moderate scale — larger
// clusters and windows than the -short gate, several seeds each. Not
// gated: it is the tier-1 evidence that every adversary family passes.
func TestCampaignSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep skipped in -short mode")
	}
	for _, ct := range Campaigns {
		ct := ct
		t.Run(string(ct), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				t.Logf("seed %d", seed)
				n := 3 + int(seed)%3
				r := Run(Config{Campaign: ct, Seed: seed, N: n, Window: 4 * time.Second, Wire: seed%2 == 1})
				if r.Failed() {
					min, st := ShrinkResult(r, 400)
					data, _ := NewArtifact(min).Encode()
					t.Fatalf("seed %d: %v\nminimized to %d events in %d runs; replay artifact:\n%s",
						seed, r.Violation, st.To, st.Runs, data)
				}
			}
		})
	}
}
