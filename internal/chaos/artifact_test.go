package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestArtifactRoundTrip(t *testing.T) {
	r := Run(Config{Campaign: CrashRestart, Seed: 11, N: 4, Window: 1200 * time.Millisecond})
	a := NewArtifact(r)
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := back.Config()
	if cfg.Campaign != CrashRestart || cfg.Seed != 11 || cfg.N != 4 ||
		cfg.Delta != time.Millisecond || cfg.Window != 1200*time.Millisecond {
		t.Fatalf("decoded config = %+v", cfg)
	}
	if cfg.RecoveryBound != r.Bound {
		t.Errorf("artifact lost the effective bound: %v vs %v", cfg.RecoveryBound, r.Bound)
	}
	if len(cfg.Schedule) != len(r.Schedule) {
		t.Fatalf("schedule length %d, want %d", len(cfg.Schedule), len(r.Schedule))
	}
	for i := range cfg.Schedule {
		if cfg.Schedule[i] != r.Schedule[i] {
			t.Fatalf("event %d: %v vs %v", i, cfg.Schedule[i], r.Schedule[i])
		}
	}
}

// TestSameSeedSameArtifactBytes is the CLI determinism criterion: the same
// seed and campaign produce byte-identical artifacts across independent
// runs.
func TestSameSeedSameArtifactBytes(t *testing.T) {
	for _, ct := range Campaigns {
		cfg := Config{Campaign: ct, Seed: 5, N: 4, Window: 1200 * time.Millisecond}
		a, err := NewArtifact(Run(cfg)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewArtifact(Run(cfg)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: artifacts differ across identical runs", ct)
		}
	}
}

// TestReplayedRunMatchesOriginal: a run reconstructed from an artifact
// reproduces the original's observable outcome exactly, including when the
// artifact's schedule is used verbatim rather than regenerated.
func TestReplayedRunMatchesOriginal(t *testing.T) {
	orig := Run(Config{Campaign: LeaderCrash, Seed: 2, N: 4, Window: 1200 * time.Millisecond})
	data, err := NewArtifact(orig).Encode()
	if err != nil {
		t.Fatal(err)
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	replay := Run(art.Config())
	if replay.Msgs != orig.Msgs || replay.Deliveries != orig.Deliveries ||
		replay.Net != orig.Net || replay.Recovery != orig.Recovery {
		t.Fatalf("replay diverged:\noriginal %+v\nreplay   %+v", orig, replay)
	}
	if replay.Failed() != orig.Failed() {
		t.Fatalf("verdicts differ: %v vs %v", replay.Violation, orig.Violation)
	}
}

func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "}{",
		"wrong version": `{"version":99,"campaign":"mixed","seed":1,"n":4,"delta_ns":1000000,"window_ns":1000000000,"recovery_bound_ns":1,"events":[]}`,
		"bad n":         `{"version":1,"campaign":"mixed","seed":1,"n":1,"delta_ns":1000000,"window_ns":1000000000,"recovery_bound_ns":1,"events":[]}`,
		"bad delta":     `{"version":1,"campaign":"mixed","seed":1,"n":4,"delta_ns":0,"window_ns":1000000000,"recovery_bound_ns":1,"events":[]}`,
		"bad event":     `{"version":1,"campaign":"mixed","seed":1,"n":4,"delta_ns":1000000,"window_ns":1000000000,"recovery_bound_ns":1,"events":[{"t_ns":1,"status":"great","proc":0}]}`,
	}
	for name, data := range cases {
		if _, err := DecodeArtifact([]byte(data)); err == nil {
			t.Errorf("%s: accepted %s", name, data)
		}
	}
}

func TestViolationString(t *testing.T) {
	var v *Violation
	if v.String() != "ok" {
		t.Errorf("nil violation = %q", v.String())
	}
	v = &Violation{Check: "conformance", Detail: "boom"}
	if !strings.Contains(v.String(), "conformance") || !strings.Contains(v.String(), "boom") {
		t.Errorf("violation = %q", v.String())
	}
}

// TestFailingArtifactCarriesDiagnostics: a failing run's artifact dumps the
// per-layer metric snapshot and the trace ring buffer (the causal tail of
// protocol incidents), while a passing run's artifact carries neither. The
// diagnostics must not perturb replay: Config() ignores them.
func TestFailingArtifactCarriesDiagnostics(t *testing.T) {
	cfg := Config{Campaign: RollingPartition, Seed: 3, N: 4, Window: 1200 * time.Millisecond}
	pass := NewArtifact(Run(cfg))
	if pass.Check != "" {
		t.Fatalf("expected a passing run, got violation %s: %s", pass.Check, pass.Detail)
	}
	if pass.Metrics != nil || pass.Trace != nil {
		t.Fatal("passing artifact carries diagnostics")
	}

	cfg.ExtraCheck = func(r *Result) *Violation {
		return &Violation{Check: "injected", Detail: "forced failure for diagnostics test"}
	}
	fail := NewArtifact(Run(cfg))
	if fail.Check != "injected" {
		t.Fatalf("violation = %q, want injected", fail.Check)
	}
	if fail.Metrics == nil || len(fail.Metrics.Counters) == 0 {
		t.Fatal("failing artifact has no metric snapshot")
	}
	for _, name := range []string{"net.sent", "to.deliveries", "vs.installs", "wal.records"} {
		if fail.Metrics.Counters[name] <= 0 {
			t.Errorf("metrics missing layer counter %s: %v", name, fail.Metrics.Counters[name])
		}
	}
	if len(fail.Trace) == 0 {
		t.Fatal("failing artifact has no trace dump")
	}
	sawFault, sawView := false, false
	for _, e := range fail.Trace {
		if e.Layer == "fault" {
			sawFault = true
		}
		if e.Layer == "vs" && e.Kind == "newview" {
			sawView = true
		}
	}
	if !sawFault || !sawView {
		t.Fatalf("trace lacks fault/view incidents (fault=%v view=%v, %d events)",
			sawFault, sawView, len(fail.Trace))
	}
	// Diagnostics survive the JSON round trip but never reach the replay
	// config.
	data, err := fail.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics == nil || len(back.Trace) != len(fail.Trace) {
		t.Fatal("diagnostics lost in round trip")
	}
	if back.Metrics.Counters["net.sent"] != fail.Metrics.Counters["net.sent"] {
		t.Fatal("metric snapshot corrupted in round trip")
	}
}
