package chaos

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
)

// ArtifactVersion is bumped whenever the artifact wire format changes.
const ArtifactVersion = 1

// Artifact is the serialized form of a (usually minimized) failing run:
// everything needed to reproduce it byte for byte — the effective config
// and the exact fault event list. The only derived data it stores beyond
// the violation text are the diagnostic Metrics and Trace dumps; Config()
// ignores both, so a replay cannot drift from the original.
type Artifact struct {
	Version  int          `json:"version"`
	Campaign CampaignType `json:"campaign"`
	Seed     int64        `json:"seed"`
	N        int          `json:"n"`
	DeltaNS  int64        `json:"delta_ns"`
	WindowNS int64        `json:"window_ns"`
	Wire     bool         `json:"wire,omitempty"`
	// StorageLatencyNS is the effective stable-storage write latency λ
	// (defaults already resolved, so replays survive changes to the
	// torn-write campaign's default).
	StorageLatencyNS int64 `json:"storage_latency_ns,omitempty"`
	// RecoveryBoundNS is the explicit liveness deadline; always recorded
	// (never 0) so replays survive changes to the analytic default.
	RecoveryBoundNS int64 `json:"recovery_bound_ns"`
	// Check and Detail describe the violation that produced the artifact.
	Check  string `json:"check,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Events is the (minimized) fault schedule.
	Events failures.Schedule `json:"events"`
	// Metrics is the failing run's per-layer instrument snapshot
	// (diagnostic only; replays ignore it).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Trace is the failing run's ring-buffer event trace: the causal tail
	// of protocol-level incidents (view changes, token timeouts, faults,
	// crashes) leading up to the violation. TraceDropped counts earlier
	// events the ring overwrote. Diagnostic only; replays ignore both.
	Trace        []obs.TraceEvent `json:"trace,omitempty"`
	TraceDropped int64            `json:"trace_dropped,omitempty"`
}

// NewArtifact captures a run into an artifact.
func NewArtifact(r *Result) Artifact {
	a := Artifact{
		Version:          ArtifactVersion,
		Campaign:         r.Config.Campaign,
		Seed:             r.Config.Seed,
		N:                r.Config.N,
		DeltaNS:          int64(r.Config.Delta),
		WindowNS:         int64(r.Config.Window),
		Wire:             r.Config.Wire,
		StorageLatencyNS: int64(r.Config.StorageLatency),
		RecoveryBoundNS:  int64(r.Bound),
		Events:           r.Schedule,
	}
	if a.Events == nil {
		a.Events = failures.Schedule{}
	}
	if r.Violation != nil {
		a.Check = r.Violation.Check
		a.Detail = r.Violation.Detail
		// Dump the diagnostics only for failing runs: passing artifacts (if
		// ever written) stay small, and the trace is failure-scoped by
		// construction — whatever the ring holds is the causal tail.
		a.Metrics = r.Obs.Snapshot()
		a.Trace = r.Obs.Tracer().Events()
		a.TraceDropped = r.Obs.Tracer().Dropped()
	}
	return a
}

// Config reconstructs the replay configuration: the artifact's schedule is
// used verbatim (even when empty), never regenerated.
func (a Artifact) Config() Config {
	sched := a.Events
	if sched == nil {
		sched = failures.Schedule{}
	}
	return Config{
		Campaign:       a.Campaign,
		Seed:           a.Seed,
		N:              a.N,
		Delta:          time.Duration(a.DeltaNS),
		Wire:           a.Wire,
		StorageLatency: time.Duration(a.StorageLatencyNS),
		Window:         time.Duration(a.WindowNS),
		RecoveryBound:  time.Duration(a.RecoveryBoundNS),
		Schedule:       sched,
	}
}

// Encode renders the artifact as stable, human-diffable JSON: the same
// artifact always encodes to identical bytes.
func (a Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeArtifact parses and validates an artifact.
func DecodeArtifact(data []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("chaos: bad artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return a, fmt.Errorf("chaos: artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	if a.N < 2 || a.DeltaNS <= 0 || a.WindowNS <= 0 {
		return a, fmt.Errorf("chaos: artifact has implausible parameters (n=%d δ=%dns window=%dns)",
			a.N, a.DeltaNS, a.WindowNS)
	}
	return a, nil
}
