package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/failures"
)

func testSpec() Spec {
	return Spec{N: 4, Delta: time.Millisecond, Window: 1200 * time.Millisecond}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, ct := range Campaigns {
		for seed := int64(1); seed <= 3; seed++ {
			a, err := Generate(ct, seed, testSpec())
			if err != nil {
				t.Fatalf("%s: %v", ct, err)
			}
			b, err := Generate(ct, seed, testSpec())
			if err != nil {
				t.Fatalf("%s: %v", ct, err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: lengths %d vs %d", ct, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s seed %d: event %d differs: %v vs %v", ct, seed, i, a[i], b[i])
				}
			}
			c, err := Generate(ct, seed+100, testSpec())
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) == fmt.Sprint(c) && len(a) > 0 {
				t.Errorf("%s: different seeds produced identical non-empty schedules", ct)
			}
		}
	}
}

func TestGeneratedSchedulesStayInWindow(t *testing.T) {
	spec := testSpec()
	for _, ct := range Campaigns {
		for seed := int64(1); seed <= 5; seed++ {
			s, err := Generate(ct, seed, spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(s) == 0 {
				t.Errorf("%s seed %d: empty schedule (vacuous campaign)", ct, seed)
			}
			for i, e := range s {
				if e.Time < 0 || e.Time.Duration() >= spec.Window {
					t.Errorf("%s seed %d: event %d at %v outside [0, %v)", ct, seed, i, e.Time, spec.Window)
				}
				if i > 0 && e.Time < s[i-1].Time {
					t.Errorf("%s seed %d: schedule not sorted at %d", ct, seed, i)
				}
				if !e.Channel && int(e.Proc) >= spec.N {
					t.Errorf("%s seed %d: event %d names processor %v outside the universe", ct, seed, i, e.Proc)
				}
				if e.Channel && (int(e.Pair.From) >= spec.N || int(e.Pair.To) >= spec.N) {
					t.Errorf("%s seed %d: event %d names channel %v outside the universe", ct, seed, i, e.Pair)
				}
			}
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(Mixed, 1, Spec{N: 1, Delta: time.Millisecond, Window: time.Second}); err == nil {
		t.Error("accepted single-processor universe")
	}
	if _, err := Generate(Mixed, 1, Spec{N: 3, Window: time.Second}); err == nil {
		t.Error("accepted zero delta")
	}
	if _, err := Generate(CampaignType("nonsense"), 1, testSpec()); err == nil {
		t.Error("accepted unknown campaign")
	}
	if _, err := ParseCampaign("nonsense"); err == nil {
		t.Error("ParseCampaign accepted nonsense")
	}
	if ct, err := ParseCampaign("leader-crash"); err != nil || ct != LeaderCrash {
		t.Errorf("ParseCampaign(leader-crash) = %v, %v", ct, err)
	}
}

// TestLeaderCrashTargetsRingLeaders checks the campaign's defining bias:
// its first crash hits processor 0 (the initial leader), and crashes only
// ever hit the minimum currently-live processor.
func TestLeaderCrashTargetsRingLeaders(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s, err := Generate(LeaderCrash, seed, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		down := map[int]bool{}
		first := true
		for _, e := range s {
			if e.Channel {
				t.Fatalf("seed %d: leader-crash emitted a channel event %v", seed, e)
			}
			if e.Status == failures.Bad {
				if first && e.Proc != 0 {
					t.Errorf("seed %d: first crash hit %v, want the initial leader p0", seed, e.Proc)
				}
				first = false
				for q := 0; q < int(e.Proc); q++ {
					if !down[q] {
						t.Errorf("seed %d: crashed %v while %d (a lower live processor) led", seed, e.Proc, q)
					}
				}
				down[int(e.Proc)] = true
			} else {
				down[int(e.Proc)] = false
			}
		}
	}
}

// TestAllCampaignsPassQuick is the short-mode gate: every campaign type,
// run end to end with conformance + recovery-liveness checking, passes on
// a small cluster and window.
func TestAllCampaignsPassQuick(t *testing.T) {
	for _, ct := range Campaigns {
		ct := ct
		t.Run(string(ct), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				t.Logf("seed %d", seed)
				r := Run(Config{Campaign: ct, Seed: seed, N: 4, Window: 1200 * time.Millisecond})
				if r.Failed() {
					t.Fatalf("seed %d: %v", seed, r.Violation)
				}
				if r.Msgs == 0 || r.Deliveries == 0 {
					t.Fatalf("seed %d: vacuous run (msgs=%d deliveries=%d)", seed, r.Msgs, r.Deliveries)
				}
				if r.Recovery.MaxLag > r.Bound {
					t.Fatalf("seed %d: lag %v exceeds bound %v without a violation", seed, r.Recovery.MaxLag, r.Bound)
				}
			}
		})
	}
}

// TestRunIsDeterministic: the same config yields the identical result —
// message counts, delivery counts, network totals, and measured lag.
func TestRunIsDeterministic(t *testing.T) {
	cfg := Config{Campaign: Mixed, Seed: 7, N: 4, Window: 1200 * time.Millisecond}
	a, b := Run(cfg), Run(cfg)
	if a.Msgs != b.Msgs || a.Deliveries != b.Deliveries || a.Net != b.Net ||
		a.VSEvents != b.VSEvents || a.Recovery != b.Recovery || a.HealTime != b.HealTime {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}
