package chaos

import (
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Sweep executes every config as an independent chaos run, fanned across
// the given number of workers by the sweep engine. Run is a pure function
// of its config (own simulator, own cluster, own registry), so the results
// land in submission order and are identical to running the configs
// serially — workers only changes wall-clock time.
func Sweep(cfgs []Config, workers int) []*Result {
	return sweep.Run(workers, len(cfgs), func(i int) *Result {
		return Run(cfgs[i])
	})
}

// MergedSnapshot folds the per-run observability registries of a sweep's
// results into one aggregate snapshot: counters add, gauges take the
// maximum, histograms combine bucket-wise. Every merge operation is
// commutative and associative, so the aggregate is independent of both the
// worker count and the completion order of the runs.
func MergedSnapshot(results []*Result) *obs.Snapshot {
	agg := obs.New()
	for _, r := range results {
		if r != nil {
			agg.Merge(r.Obs)
		}
	}
	return agg.Snapshot()
}
