package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Config fully determines one chaos run. Zero values get defaults from
// withDefaults; the effective (defaulted) config is recorded in the Result
// and in any artifact, so replays never depend on default drift.
type Config struct {
	Campaign CampaignType
	Seed     int64
	// N is the cluster size (default 5).
	N int
	// Delta is the network δ (default 1ms).
	Delta time.Duration
	// Wire turns on wire-codec transcoding of every payload.
	Wire bool
	// Window is the adversary's active interval (default 4s). The runner
	// force-heals the world at the end of the window (or just after the
	// schedule's last event, whichever is later), independent of the
	// schedule — the heal is part of the harness hypothesis, not of the
	// shrinkable adversary.
	Window time.Duration
	// RecoveryBound overrides the recovery-liveness deadline after the
	// final heal; 0 means the analytic default b + 2·d_impl for the
	// cluster's configuration.
	RecoveryBound time.Duration
	// StorageLatency is each node's stable-storage write latency λ (see
	// stack.Options.StorageLatency). Zero keeps λ = 0, except for the
	// torn-write campaign, which defaults it to δ/4 so amnesia strikes can
	// land while WAL records are in flight.
	StorageLatency time.Duration
	// CheckpointBytes passes stack.Options.CheckpointBytes through: WAL
	// snapshot/compaction every so many log bytes (0 disables). The
	// amnesia campaigns run with it set in tests, proving recovery from a
	// compacted log preserves rejoin safety.
	CheckpointBytes int
	// SkipRecoveryReplay passes stack.Options.SkipRecoveryReplay through:
	// amnesia recovery restarts from an empty snapshot instead of a WAL
	// replay. Tests use it to verify the harness catches (and shrinks to) a
	// broken recovery path. Never set it otherwise.
	SkipRecoveryReplay bool
	// Schedule, when non-nil, is used verbatim instead of generating the
	// campaign from the seed (replay and shrinking paths).
	Schedule failures.Schedule
	// ExtraCheck, when non-nil, runs after the built-in checks and may
	// report an additional violation. Tests use it to inject deliberately
	// broken oracles and verify the shrinking pipeline end to end.
	ExtraCheck func(*Result) *Violation
}

func (c Config) withDefaults() Config {
	if c.Campaign == "" {
		c.Campaign = Mixed
	}
	if c.N == 0 {
		c.N = 5
	}
	if c.Delta == 0 {
		c.Delta = time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 4 * time.Second
	}
	if c.StorageLatency == 0 && c.Campaign == TornWrite {
		c.StorageLatency = c.Delta / 4
	}
	return c
}

// Violation describes one failed check.
type Violation struct {
	// Check names the failed oracle: "conformance", "recovery-liveness",
	// "no-traffic", "rejoin-safety", "sim", or an ExtraCheck-defined name.
	Check string
	// Detail is the human-readable diagnosis.
	Detail string
}

func (v *Violation) String() string {
	if v == nil {
		return "ok"
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// Result is the outcome of one run.
type Result struct {
	// Config is the effective configuration (defaults resolved).
	Config Config
	// Schedule is the fault schedule that ran (generated or supplied).
	Schedule failures.Schedule
	// HealTime is when the runner force-healed the world.
	HealTime sim.Time
	// Bound is the effective recovery-liveness deadline after HealTime.
	Bound time.Duration
	// Msgs counts client submissions; Deliveries counts TO deliveries
	// summed over all nodes.
	Msgs, Deliveries int
	// Net is the final network activity; PostHeal is the activity in the
	// window after the final heal (the non-vacuity evidence).
	Net, PostHeal net.Stats
	// VSEvents counts VS-layer events that passed through the checker.
	VSEvents int
	// Recovery is the recovery-liveness measurement.
	Recovery props.RecoveryMeasure
	// Violation is nil iff every check passed.
	Violation *Violation
	// Cluster is the finished cluster, for ExtraCheck and tests; nil after
	// artifact round trips.
	Cluster *stack.Cluster
	// Obs is the run's observability registry (per-layer metrics plus the
	// ring-buffer event trace); a failing run's artifact dumps both.
	Obs *obs.Registry
}

// Failed reports whether any check failed.
func (r *Result) Failed() bool { return r.Violation != nil }

// Run executes one chaos run to completion and checks it. It never calls
// the wall clock or global randomness: the result is a pure function of
// the config.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}

	sched := cfg.Schedule
	if sched == nil {
		spec := Spec{N: cfg.N, Delta: cfg.Delta, Window: cfg.Window}
		spec.Pi = time.Duration(cfg.N+2) * cfg.Delta // mirrors vsimpl.DefaultConfig
		var err error
		sched, err = Generate(cfg.Campaign, cfg.Seed, spec)
		if err != nil {
			res.Violation = &Violation{Check: "config", Detail: err.Error()}
			return res
		}
	}
	res.Schedule = sched

	// Every run is instrumented: the metrics are cheap atomics and the
	// trace ring holds the causal tail a failing run's artifact dumps.
	reg := obs.New()
	reg.EnableTrace(obs.DefaultTraceCapacity)
	res.Obs = reg
	c := stack.NewCluster(stack.Options{
		Seed: cfg.Seed, N: cfg.N, Delta: cfg.Delta, Wire: cfg.Wire,
		StorageLatency:     cfg.StorageLatency,
		CheckpointBytes:    cfg.CheckpointBytes,
		SkipRecoveryReplay: cfg.SkipRecoveryReplay,
		Obs:                reg,
	})
	res.Cluster = c
	bound := cfg.RecoveryBound
	if bound == 0 {
		bound = c.Cfg.AnalyticB(cfg.N) + 2*c.Cfg.AnalyticDImpl(cfg.N)
	}
	res.Bound = bound

	// The forced final heal establishes the recovery-liveness hypothesis.
	// It always lands strictly after the schedule's last event.
	healT := sim.Time(cfg.Window)
	if end := sched.End(); end >= healT {
		healT = end + 1
	}
	res.HealTime = healT

	c.ApplySchedule(sched)
	c.Sim.At(healT, func() {
		res.PostHeal = c.Net.Snapshot() // baseline; subtracted below
		c.Oracle.Heal(c.Procs)
	})

	// Continuous traffic from an rng independent of the schedule's, so a
	// shrunk schedule faces the identical workload.
	traffic := rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + 1))
	var load func()
	load = func() {
		if c.Sim.Now() >= healT {
			return
		}
		c.Sim.After(time.Duration(20+traffic.Intn(40))*time.Millisecond, load)
		res.Msgs++
		c.Bcast(types.ProcID(traffic.Intn(cfg.N)), types.Value(fmt.Sprintf("c%d", res.Msgs)))
	}
	c.Sim.After(10*time.Millisecond, load)

	// Run past the recovery deadline so a late delivery is observed as
	// late rather than missing.
	c.Sim.SetBudget(50_000_000)
	if err := c.Sim.Run(healT.Add(bound + bound/2)); err != nil {
		res.Violation = &Violation{Check: "sim", Detail: err.Error()}
		return res
	}
	res.Net = c.Net.Snapshot()
	res.PostHeal = res.Net.Sub(res.PostHeal)
	res.Deliveries = c.TotalDeliveries()

	// Check 1: full TO/VS trace conformance (safety).
	vsEvents, err := Conformance(c.Log, c.Procs, c.Procs)
	res.VSEvents = vsEvents
	if err != nil {
		res.Violation = &Violation{Check: "conformance", Detail: err.Error()}
		return res
	}

	// Check 2: recovery liveness — after the forced heal the whole
	// universe is a consistently good (hence quorum) component, so
	// everything ever submitted must be delivered everywhere within the
	// bound.
	res.Recovery = props.MeasureRecovery(c.Log, c.Procs, healT, bound)
	if res.Recovery.FirstViolation != "" {
		res.Violation = &Violation{Check: "recovery-liveness", Detail: res.Recovery.FirstViolation}
		return res
	}

	// Check 3: non-vacuity — traffic must actually have flowed. A
	// schedule (or harness bug) that blackholes everything passes the
	// safety checks without testing anything.
	if res.Msgs == 0 || res.PostHeal.Delivered == 0 || res.Deliveries == 0 {
		res.Violation = &Violation{Check: "no-traffic", Detail: fmt.Sprintf(
			"msgs=%d post-heal packets=%d deliveries=%d: run is vacuous",
			res.Msgs, res.PostHeal.Delivered, res.Deliveries)}
		return res
	}

	// Check 4: rejoin safety — a processor rebuilt from its WAL after an
	// amnesia crash never re-delivers, rewinds, or skips relative to the
	// delivery prefix it persisted before the crash.
	if err := props.CheckRejoinSafety(c.Log, c.Crashes); err != nil {
		res.Violation = &Violation{Check: "rejoin-safety", Detail: err.Error()}
		return res
	}

	if cfg.ExtraCheck != nil {
		res.Violation = cfg.ExtraCheck(res)
	}
	return res
}

// Conformance replays a recorded log through the VS and TO trace checkers
// and returns the number of VS events checked plus the first violation, if
// any. p0 is the initial-view membership (the stack starts every processor
// inside it unless Options.P0Size says otherwise).
func Conformance(log *props.Log, universe, p0 types.ProcSet) (int, error) {
	vck := check.NewVSChecker(universe, p0)
	tck := check.NewTOChecker()
	for _, e := range log.Events {
		var err error
		switch e.Kind {
		case props.VSNewview:
			err = vck.Newview(e.View, e.P)
		case props.VSGpsnd:
			err = vck.Gpsnd(e.Msg)
		case props.VSGprcv:
			err = vck.Gprcv(e.Msg, e.P)
		case props.VSSafe:
			err = vck.Safe(e.Msg, e.P)
		case props.TOBcast:
			tck.Bcast(e.Value, e.P)
		case props.TOBrcv:
			err = tck.Brcv(e.Value, e.From, e.P)
		}
		if err != nil {
			return vck.Events(), fmt.Errorf("%v (event: %v)", err, e)
		}
	}
	return vck.Events(), nil
}
