package chaos

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
)

func syntheticSchedule(n int) failures.Schedule {
	s := make(failures.Schedule, n)
	for i := range s {
		s[i] = failures.Event{Time: sim.Time(i + 1), Proc: 0, Status: failures.Bad}
		if i%2 == 1 {
			s[i] = failures.Event{Time: sim.Time(i + 1), Channel: true,
				Pair: failures.Pair{From: 0, To: 1}, Status: failures.Ugly}
		}
	}
	return s
}

func TestShrinkToSingleEvent(t *testing.T) {
	s := syntheticSchedule(37)
	target := s[19]
	min, st := Shrink(s, func(c failures.Schedule) bool {
		for _, e := range c {
			if e == target {
				return true
			}
		}
		return false
	}, 0)
	if len(min) != 1 || min[0] != target {
		t.Fatalf("minimized to %v, want exactly [%v]", min, target)
	}
	if st.From != 37 || st.To != 1 || st.Runs == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestShrinkToEventPair(t *testing.T) {
	// The failure needs two widely separated events: ddmin must keep both
	// and drop the other 58.
	s := syntheticSchedule(60)
	a, b := s[3], s[51]
	min, _ := Shrink(s, func(c failures.Schedule) bool {
		hasA, hasB := false, false
		for _, e := range c {
			hasA = hasA || e == a
			hasB = hasB || e == b
		}
		return hasA && hasB
	}, 0)
	if len(min) != 2 || min[0] != a || min[1] != b {
		t.Fatalf("minimized to %v, want [%v %v]", min, a, b)
	}
}

func TestShrinkPreservesOrderAndSubsequence(t *testing.T) {
	s := syntheticSchedule(24)
	min, _ := Shrink(s, func(c failures.Schedule) bool { return len(c) >= 5 }, 0)
	if len(min) != 5 {
		t.Fatalf("minimized to %d events, want 5", len(min))
	}
	// Subsequence check: every kept event appears in the original, in order.
	j := 0
	for _, e := range min {
		for j < len(s) && s[j] != e {
			j++
		}
		if j == len(s) {
			t.Fatalf("minimized schedule is not a subsequence: %v", min)
		}
		j++
	}
}

func TestShrinkFaultIndependentBug(t *testing.T) {
	// A predicate true even on the empty schedule: the minimal
	// counterexample is "no faults at all".
	min, st := Shrink(syntheticSchedule(10), func(failures.Schedule) bool { return true }, 0)
	if len(min) != 0 {
		t.Fatalf("want empty schedule, got %v", min)
	}
	if st.Runs != 2 {
		t.Errorf("expected exactly 2 probe runs, got %d", st.Runs)
	}
}

func TestShrinkUnreproducibleReturnsInput(t *testing.T) {
	s := syntheticSchedule(10)
	min, st := Shrink(s, func(failures.Schedule) bool { return false }, 0)
	if len(min) != len(s) {
		t.Fatalf("unreproducible failure was 'minimized' to %v", min)
	}
	if st.Runs != 1 {
		t.Errorf("expected a single probe run, got %d", st.Runs)
	}
}

func TestShrinkRespectsRunCap(t *testing.T) {
	s := syntheticSchedule(64)
	runs := 0
	min, st := Shrink(s, func(c failures.Schedule) bool {
		runs++
		return len(c) > 0 // any non-empty subset fails: would shrink to 1 given budget
	}, 5)
	if st.Runs > 5 {
		t.Fatalf("evaluated %d candidates, cap was 5", st.Runs)
	}
	if runs != st.Runs {
		t.Errorf("stats runs %d != observed %d", st.Runs, runs)
	}
	if len(min) == 0 {
		t.Error("cap of 5 cannot reach the empty schedule from 64 events")
	}
}

// TestInjectedBugShrinksToMinimalReplayableCounterexample is the
// acceptance-criteria pipeline, end to end: a deliberately broken checker
// (it declares any run in which processor 1 ever crashed a violation) trips
// on a full mixed campaign; delta debugging shrinks the schedule to the
// single crash event; the minimized run serializes to an artifact; the
// artifact replays byte for byte with the identical violation.
func TestInjectedBugShrinksToMinimalReplayableCounterexample(t *testing.T) {
	brokenChecker := func(r *Result) *Violation {
		for _, e := range r.Cluster.Oracle.History() {
			if !e.Channel && e.Proc == 1 && e.Status == failures.Bad {
				return &Violation{Check: "injected-bug", Detail: "processor 1 crashed during the run"}
			}
		}
		return nil
	}
	// Find a seed whose mixed campaign crashes processor 1 at some point.
	var first *Result
	for seed := int64(1); seed <= 20; seed++ {
		t.Logf("seed %d", seed)
		r := Run(Config{Campaign: Mixed, Seed: seed, N: 4,
			Window: 1200 * time.Millisecond, ExtraCheck: brokenChecker})
		if r.Failed() {
			if r.Violation.Check != "injected-bug" {
				t.Fatalf("seed %d: real violation before the injected one: %v", seed, r.Violation)
			}
			first = r
			break
		}
	}
	if first == nil {
		t.Fatal("no mixed campaign crashed processor 1 in 20 seeds")
	}

	min, st := ShrinkResult(first, 0)
	t.Logf("shrunk %d → %d events in %d runs", st.From, st.To, st.Runs)
	if !min.Failed() || min.Violation.Check != "injected-bug" {
		t.Fatalf("minimized run lost the violation: %v", min.Violation)
	}
	if len(min.Schedule) != 1 {
		t.Fatalf("minimal counterexample has %d events, want exactly the one crash: %v",
			len(min.Schedule), min.Schedule)
	}
	e := min.Schedule[0]
	if e.Channel || e.Proc != 1 || e.Status != failures.Bad {
		t.Fatalf("minimal event is %v, want bad_p1", e)
	}

	// Artifact round trip and byte-for-byte replay.
	art := NewArtifact(min)
	enc, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := back.Config()
	cfg.ExtraCheck = brokenChecker
	replay := Run(cfg)
	if !replay.Failed() || replay.Violation.Check != "injected-bug" {
		t.Fatalf("replay lost the violation: %v", replay.Violation)
	}
	if replay.Msgs != min.Msgs || replay.Deliveries != min.Deliveries || replay.Net != min.Net {
		t.Fatalf("replay diverged: %+v vs %+v", replay, min)
	}
	enc2, err := NewArtifact(replay).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("replayed artifact differs from the original:\n%s\n%s", enc, enc2)
	}
}

// TestBrokenLivenessBoundShrinksToEmpty: with an absurd 1ns recovery
// bound, even a fault-free run violates liveness — the shrinker must
// report the empty schedule, diagnosing the bug as fault-independent.
func TestBrokenLivenessBoundShrinksToEmpty(t *testing.T) {
	r := Run(Config{Campaign: Mixed, Seed: 3, N: 4,
		Window: 1200 * time.Millisecond, RecoveryBound: time.Nanosecond})
	if !r.Failed() || r.Violation.Check != "recovery-liveness" {
		t.Fatalf("absurd bound did not trip liveness: %v", r.Violation)
	}
	min, _ := ShrinkResult(r, 0)
	if len(min.Schedule) != 0 {
		t.Fatalf("fault-independent bug minimized to %d events, want 0", len(min.Schedule))
	}
	if !min.Failed() || min.Violation.Check != "recovery-liveness" {
		t.Fatalf("minimized run lost the violation: %v", min.Violation)
	}
}
