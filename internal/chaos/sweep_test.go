package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/failures"
)

// sweepConfigs is the determinism workload: every campaign family, two
// seeds each, short windows so the whole sweep runs twice in a test.
func sweepConfigs() []Config {
	var cfgs []Config
	for _, ct := range Campaigns {
		for seed := int64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, Config{
				Campaign: ct, Seed: seed, N: 4, Window: 2 * time.Second,
				Wire: seed%2 == 0,
			})
		}
	}
	return cfgs
}

// TestSweepMatchesSerial is the parallel-determinism gate: the full
// campaign sweep at workers=1 and workers=NumCPU must produce, run for
// run, byte-identical replay artifacts, identical check results, and an
// identical merged metric snapshot. Run under -race in CI, this also
// exercises the engine's cross-goroutine result handoff.
func TestSweepMatchesSerial(t *testing.T) {
	cfgs := sweepConfigs()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 4 // still exercises the concurrent path on one core
	}
	serial := Sweep(cfgs, 1)
	parallel := Sweep(cfgs, workers)
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result counts: serial=%d parallel=%d want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		s, p := serial[i], parallel[i]
		if (s.Violation == nil) != (p.Violation == nil) {
			t.Fatalf("run %d (%s seed %d): check results differ: serial=%v parallel=%v",
				i, cfgs[i].Campaign, cfgs[i].Seed, s.Violation, p.Violation)
		}
		sa, err := NewArtifact(s).Encode()
		if err != nil {
			t.Fatal(err)
		}
		pa, err := NewArtifact(p).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa, pa) {
			t.Fatalf("run %d (%s seed %d): artifacts differ:\nserial:  %s\nparallel: %s",
				i, cfgs[i].Campaign, cfgs[i].Seed, sa, pa)
		}
	}
	sm, err := json.Marshal(MergedSnapshot(serial))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := json.Marshal(MergedSnapshot(parallel))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sm, pm) {
		t.Fatalf("merged metric snapshots differ:\nserial:  %s\nparallel: %s", sm, pm)
	}
}

// TestShrinkNMatchesSerial: with an ample budget, the wave-parallel ddmin
// must minimize to exactly the schedule the serial algorithm finds, at any
// worker count — the lowest-index failing candidate wins each round either
// way. workers=1 must also reproduce the serial run count exactly.
func TestShrinkNMatchesSerial(t *testing.T) {
	s := syntheticSchedule(41)
	a, b := s[5], s[33]
	fails := func(c failures.Schedule) bool {
		hasA, hasB := false, false
		for _, e := range c {
			hasA = hasA || e == a
			hasB = hasB || e == b
		}
		return hasA && hasB
	}
	want, wantStats := Shrink(s, fails, 0)
	for _, workers := range []int{1, 2, 3, 8} {
		got, st := ShrinkN(s, fails, 0, workers)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: minimized to %v, serial got %v", workers, got, want)
		}
		if workers == 1 && st != wantStats {
			t.Fatalf("workers=1 stats %+v differ from serial %+v", st, wantStats)
		}
		if st.To != wantStats.To || st.From != wantStats.From {
			t.Fatalf("workers=%d: stats %+v, serial %+v", workers, st, wantStats)
		}
	}
}
