package chaos

import (
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// TestAmnesiaCampaignsPass runs the amnesia and torn-write campaigns over
// several seeds and requires every check — conformance, recovery liveness,
// non-vacuity, rejoin safety — to pass, with the campaigns actually doing
// their job: amnesia crashes occur and WAL replays bring processors back.
func TestAmnesiaCampaignsPass(t *testing.T) {
	tears := 0
	for seed := int64(1); seed <= 3; seed++ {
		for _, ct := range []CampaignType{Amnesia, TornWrite} {
			r := Run(Config{Campaign: ct, Seed: seed})
			if r.Failed() {
				t.Errorf("%s seed=%d: %v", ct, seed, r.Violation)
				continue
			}
			if len(r.Cluster.Crashes) == 0 {
				t.Errorf("%s seed=%d: no amnesia crash recorded — campaign is vacuous", ct, seed)
			}
			recovered := 0
			for _, p := range r.Cluster.Procs.Members() {
				n := r.Cluster.Node(p)
				recovered += n.Recoveries()
				if ct == TornWrite && n.LastReplay() != nil && n.LastReplay().Truncated != "" {
					tears++
				}
			}
			if recovered == 0 {
				t.Errorf("%s seed=%d: crashes but no recovery — restarts never happened", ct, seed)
			}
			t.Logf("%s seed=%d: crashes=%d recoveries=%d deliveries=%d",
				ct, seed, len(r.Cluster.Crashes), recovered, r.Deliveries)
		}
	}
	// The torn-write campaign runs with λ = δ/4 precisely so that some
	// crashes land mid-write; across the seeds at least one replay must
	// have truncated a torn tail, or the campaign is not testing tearing.
	if tears == 0 {
		t.Error("torn-write campaign produced no torn-tail truncation across seeds 1–3")
	}
}

// TestAmnesiaBrokenRecoveryCaughtAndShrunk deliberately breaks the
// recovery path (restart from an empty snapshot instead of a WAL replay)
// and requires the harness to catch the corruption and delta-debug the
// schedule down to a smaller counterexample with the same violation.
func TestAmnesiaBrokenRecoveryCaughtAndShrunk(t *testing.T) {
	var first *Result
	for seed := int64(1); seed <= 10; seed++ {
		r := Run(Config{Campaign: Amnesia, Seed: seed,
			Window: 1500 * time.Millisecond, SkipRecoveryReplay: true})
		if r.Failed() {
			first = r
			break
		}
	}
	if first == nil {
		t.Fatal("broken recovery survived 10 amnesia campaigns undetected")
	}
	check := first.Violation.Check
	if check != "conformance" && check != "rejoin-safety" && check != "recovery-liveness" {
		t.Fatalf("unexpected violation class for broken recovery: %v", first.Violation)
	}
	t.Logf("caught: %v", first.Violation)

	min, st := ShrinkResult(first, 0)
	t.Logf("shrunk %d → %d events in %d runs", st.From, st.To, st.Runs)
	if !min.Failed() || min.Violation.Check != check {
		t.Fatalf("minimized run lost the violation: %v", min.Violation)
	}
	if st.To == 0 || st.To >= st.From {
		t.Fatalf("shrink did not reduce the schedule: %d → %d", st.From, st.To)
	}
	// A broken-recovery counterexample needs an amnesia event — the fault
	// the bug lives in — in its minimal schedule.
	hasAmnesia := false
	for _, e := range min.Schedule {
		if !e.Channel && e.Status == failures.Amnesia {
			hasAmnesia = true
		}
	}
	if !hasAmnesia {
		t.Fatalf("minimal schedule has no amnesia event: %v", min.Schedule)
	}
}

// TestAmnesiaTornTailTruncatesAndReconverges is the deterministic
// torn-tail regression: with λ = 5ms, a submission's WAL record is still
// in flight when the origin crashes 1ms later, so the device tears it.
// The replay must truncate (never panic), the processor must rejoin, and
// the full trace must still pass conformance and rejoin safety — the torn
// record cost only an unacknowledged submission, never a client-visible
// regression.
func TestAmnesiaTornTailTruncatesAndReconverges(t *testing.T) {
	c := stack.NewCluster(stack.Options{Seed: 7, N: 3, Delta: time.Millisecond,
		StorageLatency: 5 * time.Millisecond})
	victim := types.ProcID(1)
	healT := sim.Time(400 * time.Millisecond)

	c.Sim.At(sim.Time(200*time.Millisecond), func() { c.Bcast(victim, "torn-victim") })
	c.Sim.At(sim.Time(201*time.Millisecond), func() { c.Oracle.SetProc(victim, failures.Amnesia) })
	c.Sim.At(healT, func() { c.Oracle.SetProc(victim, failures.Good) })
	// Traffic from another node so the rejoined victim has something to
	// deliver after the heal.
	for i := 0; i < 10; i++ {
		v := types.Value("bg" + string(rune('a'+i)))
		c.Sim.At(sim.Time((100+50*time.Duration(i))*time.Millisecond), func() { c.Bcast(0, v) })
	}
	c.Sim.SetBudget(5_000_000)
	if err := c.Sim.Run(sim.Time(1500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	n := c.Node(victim)
	if n.Recoveries() != 1 {
		t.Fatalf("victim recovered %d times, want 1", n.Recoveries())
	}
	snap := n.LastReplay()
	if snap == nil || snap.Truncated == "" {
		t.Fatalf("crash 1ms into a 5ms write did not tear the WAL tail: %+v", snap)
	}
	t.Logf("replay truncated: %s (kept %d records)", snap.Truncated, snap.Records)
	if len(c.Crashes) == 0 {
		t.Fatal("no crash snapshot recorded")
	}
	if _, err := Conformance(c.Log, c.Procs, c.Procs); err != nil {
		t.Fatalf("conformance after torn-tail recovery: %v", err)
	}
	if err := props.CheckRejoinSafety(c.Log, c.Crashes); err != nil {
		t.Fatalf("rejoin safety after torn-tail recovery: %v", err)
	}
	post := 0
	for _, d := range c.Deliveries(victim) {
		if d.Time > healT {
			post++
		}
	}
	if post == 0 {
		t.Fatal("rejoined victim delivered nothing after the heal")
	}
}
