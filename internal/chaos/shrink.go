package chaos

import (
	"repro/internal/failures"
)

// ShrinkStats reports what a shrink did.
type ShrinkStats struct {
	// Runs is the number of candidate schedules evaluated.
	Runs int
	// From and To are the event counts before and after minimization.
	From, To int
}

// Shrink minimizes a failing schedule by delta debugging (Zeller's ddmin,
// complement-elimination variant): it repeatedly removes chunks of fault
// events, keeping any candidate on which fails still reports true, until
// no single event can be removed — a 1-minimal counterexample. fails must
// be deterministic (the chaos runner is); maxRuns caps the number of
// candidate evaluations (≤ 0 means a generous default).
//
// The returned schedule is always a subsequence of the input (event order
// and times preserved), and fails(returned) is true whenever fails(input)
// was — if the predicate is not reproducible even on the unmodified input,
// the input is returned unchanged.
func Shrink(sched failures.Schedule, fails func(failures.Schedule) bool, maxRuns int) (failures.Schedule, ShrinkStats) {
	if maxRuns <= 0 {
		maxRuns = 2000
	}
	st := ShrinkStats{From: len(sched)}
	try := func(cand failures.Schedule) bool {
		if st.Runs >= maxRuns {
			return false
		}
		st.Runs++
		return fails(cand)
	}

	if !try(sched) {
		// Not reproducible: refuse to "minimize" noise.
		st.To = len(sched)
		return sched, st
	}
	// An empty schedule failing means the bug is independent of the
	// adversary — the minimal counterexample is "no faults at all".
	if try(failures.Schedule{}) {
		st.To = 0
		return failures.Schedule{}, st
	}

	cur := sched
	n := 2
	for len(cur) >= 2 {
		reduced := false
		chunk := (len(cur) + n - 1) / n
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make(failures.Schedule, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if try(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // 1-minimal: no single event is removable
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
		if st.Runs >= maxRuns {
			break
		}
	}
	st.To = len(cur)
	return cur, st
}

// ShrinkResult minimizes the schedule of a failing run so that re-running
// it still yields a violation of the same check, and returns the minimized
// run. If the result did not fail, it is returned as is.
func ShrinkResult(r *Result, maxRuns int) (*Result, ShrinkStats) {
	if !r.Failed() {
		return r, ShrinkStats{From: len(r.Schedule), To: len(r.Schedule)}
	}
	wanted := r.Violation.Check
	rerun := func(s failures.Schedule) *Result {
		cfg := r.Config
		cfg.Schedule = s
		return Run(cfg)
	}
	min, st := Shrink(r.Schedule, func(s failures.Schedule) bool {
		rr := rerun(s)
		return rr.Failed() && rr.Violation.Check == wanted
	}, maxRuns)
	return rerun(min), st
}
