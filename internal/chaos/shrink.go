package chaos

import (
	"repro/internal/failures"
	"repro/internal/sweep"
)

// ShrinkStats reports what a shrink did.
type ShrinkStats struct {
	// Runs is the number of candidate schedules evaluated. With workers > 1
	// whole waves are evaluated at once, so Runs may exceed what a serial
	// shrink would have spent to find the same candidate.
	Runs int
	// From and To are the event counts before and after minimization.
	From, To int
}

// Shrink minimizes a failing schedule by delta debugging (Zeller's ddmin,
// complement-elimination variant): it repeatedly removes chunks of fault
// events, keeping any candidate on which fails still reports true, until
// no single event can be removed — a 1-minimal counterexample. fails must
// be deterministic (the chaos runner is); maxRuns caps the number of
// candidate evaluations (≤ 0 means a generous default).
//
// The returned schedule is always a subsequence of the input (event order
// and times preserved), and fails(returned) is true whenever fails(input)
// was — if the predicate is not reproducible even on the unmodified input,
// the input is returned unchanged.
func Shrink(sched failures.Schedule, fails func(failures.Schedule) bool, maxRuns int) (failures.Schedule, ShrinkStats) {
	return ShrinkN(sched, fails, maxRuns, 1)
}

// ShrinkN is Shrink with the candidate evaluations of each ddmin round
// fanned across workers: every round's candidates are evaluated in waves
// of up to workers concurrent runs, and the lowest-index failing candidate
// wins the round — exactly the candidate a serial shrink would have
// chosen, so the minimized schedule is independent of the worker count
// whenever the run budget does not bite (a full wave is spent even when an
// early candidate in it fails, so a tight maxRuns can cut a parallel
// shrink short at a different point than a serial one). workers == 1 is
// byte-for-byte the serial algorithm, budget accounting included.
func ShrinkN(sched failures.Schedule, fails func(failures.Schedule) bool, maxRuns, workers int) (failures.Schedule, ShrinkStats) {
	if maxRuns <= 0 {
		maxRuns = 2000
	}
	workers = sweep.Workers(workers)
	st := ShrinkStats{From: len(sched)}
	tryOne := func(cand failures.Schedule) bool {
		if st.Runs >= maxRuns {
			return false
		}
		st.Runs++
		return fails(cand)
	}

	if !tryOne(sched) {
		// Not reproducible: refuse to "minimize" noise.
		st.To = len(sched)
		return sched, st
	}
	// An empty schedule failing means the bug is independent of the
	// adversary — the minimal counterexample is "no faults at all".
	if tryOne(failures.Schedule{}) {
		st.To = 0
		return failures.Schedule{}, st
	}

	// without returns cur with the chunk [starts[k], starts[k]+chunk) cut
	// out (clamped to len(cur)).
	without := func(cur failures.Schedule, start, chunk int) failures.Schedule {
		end := start + chunk
		if end > len(cur) {
			end = len(cur)
		}
		cand := make(failures.Schedule, 0, len(cur)-(end-start))
		cand = append(cand, cur[:start]...)
		cand = append(cand, cur[end:]...)
		return cand
	}
	// firstFailing evaluates the round's candidates (complement of each
	// chunk) in submission-order waves and returns the index of the first
	// failing one, or -1. Each wave burns its full width from the budget.
	firstFailing := func(cur failures.Schedule, chunk int) int {
		var starts []int
		for s := 0; s < len(cur); s += chunk {
			starts = append(starts, s)
		}
		for lo := 0; lo < len(starts); lo += workers {
			wave := len(starts) - lo
			if wave > workers {
				wave = workers
			}
			if left := maxRuns - st.Runs; wave > left {
				wave = left
			}
			if wave == 0 {
				return -1
			}
			st.Runs += wave
			verdicts := sweep.Run(workers, wave, func(j int) bool {
				return fails(without(cur, starts[lo+j], chunk))
			})
			for j, failed := range verdicts {
				if failed {
					return starts[lo+j]
				}
			}
		}
		return -1
	}

	cur := sched
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		if start := firstFailing(cur, chunk); start >= 0 {
			cur = without(cur, start, chunk)
			if n > 2 {
				n--
			}
		} else {
			if n >= len(cur) {
				break // 1-minimal: no single event is removable
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
		if st.Runs >= maxRuns {
			break
		}
	}
	st.To = len(cur)
	return cur, st
}

// ShrinkResult minimizes the schedule of a failing run so that re-running
// it still yields a violation of the same check, and returns the minimized
// run. If the result did not fail, it is returned as is.
func ShrinkResult(r *Result, maxRuns int) (*Result, ShrinkStats) {
	return ShrinkResultN(r, maxRuns, 1)
}

// ShrinkResultN is ShrinkResult with candidate evaluations fanned across
// workers (see ShrinkN).
func ShrinkResultN(r *Result, maxRuns, workers int) (*Result, ShrinkStats) {
	if !r.Failed() {
		return r, ShrinkStats{From: len(r.Schedule), To: len(r.Schedule)}
	}
	wanted := r.Violation.Check
	rerun := func(s failures.Schedule) *Result {
		cfg := r.Config
		cfg.Schedule = s
		return Run(cfg)
	}
	min, st := ShrinkN(r.Schedule, func(s failures.Schedule) bool {
		rr := rerun(s)
		return rr.Failed() && rr.Violation.Check == wanted
	}, maxRuns, workers)
	return rerun(min), st
}
