package rsm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// TestSequentialConsistencyUnderChurn drives random writes and logged
// reads across partition/heal cycles, then checks the full history for
// sequential consistency against an independent replay of the total order.
// This is the executable claim of footnote 3.
func TestSequentialConsistencyUnderChurn(t *testing.T) {
	const n = 4
	t.Logf("seed 61")
	m, c := newMemory(61, n)
	h := NewHistoryChecker(m)
	rng := rand.New(rand.NewSource(61))

	keys := []string{"x", "y", "z"}
	writes := 0
	var load func()
	load = func() {
		defer c.Sim.After(15*time.Millisecond, load)
		p := types.ProcID(rng.Intn(n))
		if rng.Intn(3) == 0 {
			writes++
			m.Write(p, keys[rng.Intn(len(keys))], fmt.Sprintf("w%d", writes), nil)
		} else {
			h.ReadLogged(p, keys[rng.Intn(len(keys))])
		}
	}
	c.Sim.After(5*time.Millisecond, load)

	var churn func()
	churn = func() {
		defer c.Sim.After(250*time.Millisecond, churn)
		if rng.Intn(2) == 0 {
			cut := 1 + rng.Intn(n-1)
			members := c.Procs.Members()
			c.Oracle.Partition(c.Procs,
				types.NewProcSet(members[:cut]...), types.NewProcSet(members[cut:]...))
		} else {
			c.Oracle.Heal(c.Procs)
		}
	}
	c.Sim.After(100*time.Millisecond, churn)
	c.Sim.After(2500*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(h.Reads()) < 20 || writes < 10 {
		t.Fatalf("weak workload: %d reads, %d writes", len(h.Reads()), writes)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("sequential consistency violated: %v", err)
	}
}

// TestHistoryCheckerDetectsCorruption: a fabricated read of a value that
// never matches its prefix must be rejected (the checker is not vacuous).
func TestHistoryCheckerDetectsCorruption(t *testing.T) {
	m, _ := newMemory(63, 3)
	h := NewHistoryChecker(m)
	m.Write(0, "k", "real", nil)
	if err := m.WaitSettle(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	h.ReadLogged(1, "k")
	// Corrupt the logged value.
	h.reads[0].Value = "forged"
	if err := h.Check(); err == nil {
		t.Fatal("forged read accepted")
	}
}

// TestHistoryCheckerDetectsShrunkPrefix: program-order violations are
// rejected.
func TestHistoryCheckerDetectsShrunkPrefix(t *testing.T) {
	m, c := newMemory(65, 3)
	h := NewHistoryChecker(m)
	m.Write(0, "k", "v", nil)
	if err := m.WaitSettle(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	h.ReadLogged(1, "k")
	h.ReadLogged(1, "k")
	h.reads[1].Applied = h.reads[0].Applied - 1 // pretend the replica went backwards
	if err := h.Check(); err == nil {
		t.Fatal("shrinking prefix accepted")
	}
	_ = c
}
