package rsm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// TestAtomicLinearizability drives random checked writes and atomic reads
// across a partition/heal cycle and verifies linearizability against the
// TO order. This is the footnote's second construction ("an atomic shared
// memory") made checkable.
func TestAtomicLinearizability(t *testing.T) {
	const n = 3
	t.Logf("seed 81")
	m, c := newMemory(81, n)
	ck := NewAtomicChecker(m)
	rng := rand.New(rand.NewSource(81))

	ops := 0
	var load func()
	load = func() {
		if c.Sim.Now() > sim.Time(1500*time.Millisecond) {
			return
		}
		defer c.Sim.After(time.Duration(15+rng.Intn(30))*time.Millisecond, load)
		ops++
		p := types.ProcID(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ck.Write(p, fmt.Sprintf("k%d", rng.Intn(3)), fmt.Sprintf("v%d", ops))
		} else {
			ck.Read(p, fmt.Sprintf("k%d", rng.Intn(3)))
		}
	}
	c.Sim.After(10*time.Millisecond, load)
	c.Sim.After(400*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1), types.NewProcSet(2))
	})
	c.Sim.After(900*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if ck.Completed() < 20 {
		t.Fatalf("only %d ops completed; workload too weak", ck.Completed())
	}
	if err := ck.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicCheckerDetectsForgedRead: a read record claiming a value the
// order never justified must be rejected.
func TestAtomicCheckerDetectsForgedRead(t *testing.T) {
	m, c := newMemory(83, 3)
	ck := NewAtomicChecker(m)
	ck.Write(0, "k", "real")
	ck.Read(1, "k")
	if err := m.WaitSettle(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	_ = c
	for _, op := range ck.ops {
		if op.kind == "r" {
			op.observed = "forged"
		}
	}
	if err := ck.Check(); err == nil {
		t.Fatal("forged atomic read accepted")
	}
}

// TestAtomicCheckerDetectsRealTimeInversion: fabricated timestamps that
// invert real time against the order must be rejected.
func TestAtomicCheckerDetectsRealTimeInversion(t *testing.T) {
	m, _ := newMemory(85, 3)
	ck := NewAtomicChecker(m)
	ck.Write(0, "k", "first")
	ck.Write(1, "k", "second")
	if err := m.WaitSettle(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	// Find order positions and forge timestamps so the later-ordered op
	// "responded" before the earlier-ordered one was "invoked".
	if len(ck.ops) != 2 || !ck.ops[0].done || !ck.ops[1].done {
		t.Fatal("setup failed")
	}
	ck.ops[1].responded = 1
	ck.ops[0].invoked = 1000
	ck.ops[1].invoked = 0
	ck.ops[0].responded = 2000
	// One of the two orderings now contradicts real time.
	if err := ck.Check(); err == nil {
		// Maybe op0 was ordered first; flip the forgery.
		ck.ops[0].responded = 1
		ck.ops[0].invoked = 0
		ck.ops[1].invoked = 1000
		ck.ops[1].responded = 2000
		if err := ck.Check(); err == nil {
			t.Fatal("real-time inversion accepted both ways")
		}
	}
}
