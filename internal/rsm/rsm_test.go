package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

func newMemory(seed int64, n int) (*Memory, *stack.Cluster) {
	c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: time.Millisecond})
	return New(c), c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Op{
		{Kind: "w", Key: "k", Val: "v", Nonce: 1},
		{Kind: "r", Key: "k", Nonce: 2},
		{Kind: "w", Key: "weird|key:with:colons", Val: "val|ue", Nonce: 39},
		{Kind: "w", Key: "", Val: "", Nonce: 0},
		{Kind: "w", Key: "12:34", Val: "56|78", Nonce: 7},
	}
	for _, op := range cases {
		got, err := DecodeOp(op.Encode())
		if err != nil {
			t.Fatalf("DecodeOp(%q): %v", op.Encode(), err)
		}
		if got != op {
			t.Errorf("round trip: got %+v, want %+v", got, op)
		}
	}
}

func TestDecodeOpMalformed(t *testing.T) {
	for _, raw := range []string{"", "w", "w|1", "w|x|1:k", "w|1|zz:k", "w|1|99:k"} {
		if _, err := DecodeOp(types.Value(raw)); err == nil {
			t.Errorf("DecodeOp(%q) succeeded; want error", raw)
		}
	}
}

// TestWriteVisibleEverywhere: a write becomes visible at every replica.
func TestWriteVisibleEverywhere(t *testing.T) {
	m, c := newMemory(21, 3)
	acked := false
	c.Sim.After(10*time.Millisecond, func() {
		m.Write(0, "x", "1", func() { acked = true })
	})
	if err := m.WaitSettle(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !acked {
		t.Fatal("write never acknowledged")
	}
	for _, p := range c.Procs.Members() {
		if got := m.Read(p, "x"); got != "1" {
			t.Errorf("replica %v reads %q, want \"1\"", p, got)
		}
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// TestConcurrentWritersConverge: interleaved writers at different nodes
// leave every replica with identical state — the last writer in the total
// order wins everywhere.
func TestConcurrentWritersConverge(t *testing.T) {
	m, c := newMemory(23, 4)
	for i := 0; i < 10; i++ {
		i := i
		p := types.ProcID(i % 4)
		c.Sim.After(time.Duration(10+i)*time.Millisecond, func() {
			m.Write(p, "cell", fmt.Sprintf("w%d", i), nil)
		})
	}
	if err := m.WaitSettle(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	ref := m.Read(0, "cell")
	if ref == "" {
		t.Fatal("no write applied")
	}
	for _, p := range c.Procs.Members() {
		if got := m.Read(p, "cell"); got != ref {
			t.Errorf("replica %v reads %q, want %q", p, got, ref)
		}
	}
}

// TestAtomicRead: a broadcast read observes the value at its place in the
// total order.
func TestAtomicRead(t *testing.T) {
	m, c := newMemory(25, 3)
	var observed string
	gotValue := false
	c.Sim.After(10*time.Millisecond, func() { m.Write(1, "k", "before", nil) })
	c.Sim.After(200*time.Millisecond, func() {
		m.ReadAtomic(2, "k", func(v string) { observed = v; gotValue = true })
	})
	if err := m.WaitSettle(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !gotValue {
		t.Fatal("atomic read never completed")
	}
	if observed != "before" {
		t.Errorf("atomic read observed %q, want \"before\"", observed)
	}
}

// TestPartitionedMemory: during a partition the minority replica serves
// stale (but sequentially consistent) reads and cannot ack writes; after
// healing everything converges.
func TestPartitionedMemory(t *testing.T) {
	m, c := newMemory(27, 5)
	majority := types.NewProcSet(0, 1, 2)
	minority := types.NewProcSet(3, 4)

	c.Sim.After(20*time.Millisecond, func() { c.Oracle.Partition(c.Procs, majority, minority) })
	minorityAcked := false
	c.Sim.After(150*time.Millisecond, func() {
		m.Write(0, "k", "maj", nil)
		m.Write(3, "k", "min", func() { minorityAcked = true })
	})
	var staleRead string
	c.Sim.After(800*time.Millisecond, func() {
		staleRead = m.Read(3, "k")
		if minorityAcked {
			t.Error("minority write acked during partition")
		}
	})
	c.Sim.After(900*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := m.WaitSettle(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if staleRead != "" {
		t.Errorf("minority read %q during partition; want stale empty value", staleRead)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if !minorityAcked {
		t.Error("minority write never acked after heal")
	}
	ref := m.Read(0, "k")
	for _, p := range c.Procs.Members() {
		if got := m.Read(p, "k"); got != ref {
			t.Errorf("replica %v reads %q, want %q after heal", p, got, ref)
		}
	}
}
