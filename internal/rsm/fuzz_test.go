package rsm

import (
	"testing"

	"repro/internal/types"
)

// FuzzDecodeOp feeds arbitrary strings to the op decoder; malformed input
// must error, and well-formed input must round-trip.
func FuzzDecodeOp(f *testing.F) {
	f.Add(string(Op{Kind: "w", Key: "k", Val: "v", Nonce: 1}.Encode()))
	f.Add("w|1|2:ab")
	f.Add("")
	f.Add("r|0|0:")
	// Binary wire-format seeds: reads, weird keys, custom kinds, and
	// truncations/corruptions of a valid encoding.
	binary := string(Op{Kind: "w", Key: "key|with:bytes", Val: "val\x00", Nonce: 42}.Encode())
	f.Add(binary)
	f.Add(string(Op{Kind: "r", Key: "k", Nonce: 7}.Encode()))
	f.Add(string(Op{Kind: "custom", Key: "k", Val: "v", Nonce: -1}.Encode()))
	f.Add(binary[:1])
	f.Add(binary[:len(binary)/2])
	f.Add(binary + "trailing")
	f.Add("\x01\xff junk after unknown kind byte")
	f.Fuzz(func(t *testing.T, s string) {
		op, err := DecodeOp(types.Value(s))
		if err != nil {
			return
		}
		// A successfully decoded op re-encodes to something that decodes
		// back to itself (the encoding is canonical for decoded values).
		round, err := DecodeOp(op.Encode())
		if err != nil {
			t.Fatalf("re-encode of %+v failed to decode: %v", op, err)
		}
		if round != op {
			t.Fatalf("round trip changed op: %+v vs %+v", round, op)
		}
	})
}
