package rsm

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/types"
)

// Op is one memory operation carried through the TO service.
type Op struct {
	// Kind is "w" for writes, "r" for broadcast (atomic) reads.
	Kind string
	// Key and Val are the target cell and, for writes, the new value.
	Key, Val string
	// Nonce distinguishes operations submitted at the same processor.
	Nonce int
}

// Op wire format (the internal/codec building blocks, like the WAL's
// records): one tag byte that can never open a legacy encoding — legacy
// ops begin with the printable kind letter 'w' or 'r' — then the kind as
// a byte, the nonce, and length-prefixed key and value. DecodeOp falls
// back to the legacy "kind|nonce|klen:keyval" string parse when the tag
// is absent, so old traces (and WALs carrying old-format submissions)
// still decode.
const (
	opWireTag   byte = 0x01
	opKindWrite byte = 'w'
	opKindRead  byte = 'r'
)

// opEncPool recycles the codec writers Encode frames ops through; the
// only allocation left on the encode path is the string conversion of
// the framed bytes (types.Value is a string).
var opEncPool = sync.Pool{New: func() any { return codec.NewWriter() }}

// Encode renders the op as a TO data value in the binary wire format.
// Keys and values may contain any bytes (both are length-prefixed).
func (o Op) Encode() types.Value {
	w := opEncPool.Get().(*codec.Writer)
	w.Reset()
	w.U8(opWireTag)
	switch o.Kind {
	case "w":
		w.U8(opKindWrite)
	case "r":
		w.U8(opKindRead)
	default:
		// Preserve arbitrary kinds byte-for-byte (tests construct them);
		// DecodeOp surfaces them, and Memory apply rejects them with an
		// error rather than a panic.
		w.U8(0)
		w.Str(o.Kind)
	}
	w.I64(int64(o.Nonce))
	w.Str(o.Key)
	w.Str(o.Val)
	v := types.Value(w.Data())
	opEncPool.Put(w)
	return v
}

// DecodeOp parses an encoded op: the binary wire format when the leading
// tag byte is present, the legacy string format otherwise. Malformed
// input of either format errors; it never panics.
func DecodeOp(v types.Value) (Op, error) {
	if len(v) > 0 && v[0] == opWireTag {
		return decodeOpWire(v)
	}
	return decodeOpLegacy(v)
}

func decodeOpWire(v types.Value) (Op, error) {
	r := codec.NewReader([]byte(v))
	r.U8() // tag, already checked
	var op Op
	switch k := r.U8(); k {
	case opKindWrite:
		op.Kind = "w"
	case opKindRead:
		op.Kind = "r"
	case 0:
		op.Kind = r.Str()
	default:
		return Op{}, fmt.Errorf("rsm: malformed op: unknown kind byte %d", k)
	}
	op.Nonce = int(r.I64())
	op.Key = r.Str()
	op.Val = r.Str()
	if err := r.Err(); err != nil {
		return Op{}, fmt.Errorf("rsm: malformed op: %w", err)
	}
	if r.Rest() != 0 {
		return Op{}, fmt.Errorf("rsm: malformed op: %d trailing bytes", r.Rest())
	}
	return op, nil
}

// decodeOpLegacy parses the pre-wire "kind|nonce|klen:keyval" string
// format, kept so recorded traces and WAL images from before the codec
// migration still decode.
func decodeOpLegacy(v types.Value) (Op, error) {
	s := string(v)
	parts := strings.SplitN(s, "|", 3)
	if len(parts) != 3 {
		return Op{}, fmt.Errorf("rsm: malformed op %q", s)
	}
	nonce, err := strconv.Atoi(parts[1])
	if err != nil {
		return Op{}, fmt.Errorf("rsm: malformed nonce in %q: %w", s, err)
	}
	body := parts[2]
	i := strings.IndexByte(body, ':')
	if i < 0 {
		return Op{}, fmt.Errorf("rsm: malformed body in %q", s)
	}
	klen, err := strconv.Atoi(body[:i])
	if err != nil || klen < 0 || i+1+klen > len(body) {
		return Op{}, fmt.Errorf("rsm: malformed key length in %q", s)
	}
	return Op{
		Kind:  parts[0],
		Nonce: nonce,
		Key:   body[i+1 : i+1+klen],
		Val:   body[i+1+klen:],
	}, nil
}
