// Package rsm implements the application of the paper's footnote 3: a
// sequentially consistent read/write shared memory built on the totally
// ordered broadcast service ("Replicated State Machine" approach, Lamport /
// Schneider). Each processor maintains a full replica; a read returns the
// local copy immediately; an update is broadcast through TO and applied at
// every replica (including the submitter) when delivered, at which point
// the submitting processor acknowledges its client.
//
// The package also provides the atomic variant mentioned in the footnote:
// sending reads through the broadcast service as well yields an atomic
// (linearizable) memory.
package rsm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Op is one memory operation carried through the TO service.
type Op struct {
	// Kind is "w" for writes, "r" for broadcast (atomic) reads.
	Kind string
	// Key and Val are the target cell and, for writes, the new value.
	Key, Val string
	// Nonce distinguishes operations submitted at the same processor.
	Nonce int
}

// Encode renders the op as a TO data value. The encoding is
// length-prefixed, so keys and values may contain any bytes.
func (o Op) Encode() types.Value {
	return types.Value(fmt.Sprintf("%s|%d|%d:%s%s", o.Kind, o.Nonce, len(o.Key), o.Key, o.Val))
}

// DecodeOp parses an encoded op.
func DecodeOp(v types.Value) (Op, error) {
	s := string(v)
	parts := strings.SplitN(s, "|", 3)
	if len(parts) != 3 {
		return Op{}, fmt.Errorf("rsm: malformed op %q", s)
	}
	nonce, err := strconv.Atoi(parts[1])
	if err != nil {
		return Op{}, fmt.Errorf("rsm: malformed nonce in %q: %w", s, err)
	}
	body := parts[2]
	i := strings.IndexByte(body, ':')
	if i < 0 {
		return Op{}, fmt.Errorf("rsm: malformed body in %q", s)
	}
	klen, err := strconv.Atoi(body[:i])
	if err != nil || klen < 0 || i+1+klen > len(body) {
		return Op{}, fmt.Errorf("rsm: malformed key length in %q", s)
	}
	return Op{
		Kind:  parts[0],
		Nonce: nonce,
		Key:   body[i+1 : i+1+klen],
		Val:   body[i+1+klen:],
	}, nil
}

// Memory is a replicated key-value memory over a TO cluster. All methods
// take the processor at which the client operates.
type Memory struct {
	cluster  *stack.Cluster
	replicas map[types.ProcID]map[string]string
	applied  map[types.ProcID]int // ops applied per replica
	nonces   map[types.ProcID]int
	waiters  map[opKey]func(val string)
}

type opKey struct {
	P     types.ProcID
	Nonce int
}

// New attaches a replicated memory to a TO cluster. Deliveries are applied
// to the replicas eagerly, as they happen, via a cluster delivery observer;
// Pump also applies any deliveries that occurred before New was called.
func New(c *stack.Cluster) *Memory {
	m := &Memory{
		cluster:  c,
		replicas: make(map[types.ProcID]map[string]string),
		applied:  make(map[types.ProcID]int),
		nonces:   make(map[types.ProcID]int),
		waiters:  make(map[opKey]func(string)),
	}
	for _, p := range c.Procs.Members() {
		m.replicas[p] = make(map[string]string)
	}
	c.OnDeliver(func(p types.ProcID, _ stack.Delivery) { m.pumpProc(p) })
	return m
}

// Write submits an update at processor p. onApplied, if non-nil, runs when
// the update has been applied at p's replica (the client's ack).
func (m *Memory) Write(p types.ProcID, key, val string, onApplied func()) {
	m.nonces[p]++
	op := Op{Kind: "w", Key: key, Val: val, Nonce: m.nonces[p]}
	if onApplied != nil {
		m.waiters[opKey{p, op.Nonce}] = func(string) { onApplied() }
	}
	m.cluster.Bcast(p, op.Encode())
}

// Read returns the local replica's value immediately (the sequentially
// consistent read of footnote 3).
func (m *Memory) Read(p types.ProcID, key string) string {
	m.Pump()
	return m.replicas[p][key]
}

// ReadAtomic submits the read through the broadcast service; onValue runs
// with the value the read observes in the total order (the atomic variant).
func (m *Memory) ReadAtomic(p types.ProcID, key string, onValue func(val string)) {
	m.nonces[p]++
	op := Op{Kind: "r", Key: key, Nonce: m.nonces[p]}
	if onValue != nil {
		m.waiters[opKey{p, op.Nonce}] = onValue
	}
	m.cluster.Bcast(p, op.Encode())
}

// Pump applies every not-yet-applied delivery to the replicas. With the
// delivery observer installed by New this is normally a no-op; it remains
// useful when a Memory is attached to a cluster that already delivered.
func (m *Memory) Pump() {
	for _, p := range m.cluster.Procs.Members() {
		m.pumpProc(p)
	}
}

func (m *Memory) pumpProc(p types.ProcID) {
	ds := m.cluster.Deliveries(p)
	for ; m.applied[p] < len(ds); m.applied[p]++ {
		d := ds[m.applied[p]]
		op, err := DecodeOp(d.Value)
		if err != nil {
			panic(err) // only Memory submits values on this cluster
		}
		rep := m.replicas[p]
		var observed string
		switch op.Kind {
		case "w":
			rep[op.Key] = op.Val
			observed = op.Val
		case "r":
			observed = rep[op.Key]
		default:
			panic(fmt.Sprintf("rsm: unknown op kind %q", op.Kind))
		}
		if d.From == p {
			if cb, ok := m.waiters[opKey{p, op.Nonce}]; ok {
				delete(m.waiters, opKey{p, op.Nonce})
				cb(observed)
			}
		}
	}
}

// Replica returns a copy of p's current replica contents.
func (m *Memory) Replica(p types.ProcID) map[string]string {
	m.Pump()
	out := make(map[string]string, len(m.replicas[p]))
	for k, v := range m.replicas[p] {
		out[k] = v
	}
	return out
}

// AppliedCount returns the number of operations applied at p's replica.
func (m *Memory) AppliedCount(p types.ProcID) int {
	m.Pump()
	return m.applied[p]
}

// CheckCoherence verifies that all replicas have applied a common prefix
// of one operation sequence (the defining property the TO order provides).
// It returns an error naming the first divergence.
func (m *Memory) CheckCoherence() error {
	m.Pump()
	procs := m.cluster.Procs.Members()
	var longest []stack.Delivery
	for _, p := range procs {
		if ds := m.cluster.Deliveries(p); len(ds) > len(longest) {
			longest = ds
		}
	}
	for _, p := range procs {
		ds := m.cluster.Deliveries(p)
		for i := range ds {
			if ds[i].Value != longest[i].Value || ds[i].From != longest[i].From {
				return fmt.Errorf("rsm: replica %v diverges at op %d: %v vs %v", p, i, ds[i], longest[i])
			}
		}
	}
	return nil
}

// WaitSettle is a convenience for tests: runs the simulator for d and
// pumps.
func (m *Memory) WaitSettle(d sim.Time) error {
	if err := m.cluster.Sim.Run(m.cluster.Sim.Now() + d); err != nil {
		return err
	}
	m.Pump()
	return nil
}
