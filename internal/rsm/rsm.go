// Package rsm implements the application of the paper's footnote 3: a
// sequentially consistent read/write shared memory built on the totally
// ordered broadcast service ("Replicated State Machine" approach, Lamport /
// Schneider). Each processor maintains a full replica; a read returns the
// local copy immediately; an update is broadcast through TO and applied at
// every replica (including the submitter) when delivered, at which point
// the submitting processor acknowledges its client.
//
// The package also provides the atomic variant mentioned in the footnote:
// sending reads through the broadcast service as well yields an atomic
// (linearizable) memory.
//
// Apply is commutativity-aware: an application-declared conflict relation
// (ConflictFunc, parallel.go) lets each replica cut a delivered batch into
// antichains of commuting operations and fan the per-op work across worker
// goroutines, while effects and client acks are installed serially in
// delivery order — replica state stays byte-identical to serial apply at
// every worker count.
package rsm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Memory is a replicated key-value memory over a TO cluster. All methods
// take the processor at which the client operates.
type Memory struct {
	cluster  *stack.Cluster
	replicas map[types.ProcID]map[string]string
	applied  map[types.ProcID]int // ops applied per replica
	nonces   map[types.ProcID]int
	waiters  map[opKey]func(val string)
	errs     map[types.ProcID]error // sticky per-replica apply halt (malformed op)

	conflict ConflictFunc
	apply    ApplyFunc
	workers  int
	maxSpan  int
	pumping  bool // reentrancy guard: waiter callbacks may call Read/Pump
	met      memMetrics

	// Test-only planner/executor sabotage; see applyBatch.
	forceCommute    bool
	permuteSegments bool
}

type opKey struct {
	P     types.ProcID
	Nonce int
}

// New attaches a replicated memory to a TO cluster. Deliveries are applied
// to the replicas eagerly, batch by batch as the stack releases them, via a
// cluster batch observer; Pump also applies any deliveries that occurred
// before New was called.
func New(c *stack.Cluster) *Memory {
	m := &Memory{
		cluster:  c,
		replicas: make(map[types.ProcID]map[string]string),
		applied:  make(map[types.ProcID]int),
		nonces:   make(map[types.ProcID]int),
		waiters:  make(map[opKey]func(string)),
		errs:     make(map[types.ProcID]error),
		conflict: DefaultConflict,
		apply:    func(op Op, _ string) string { return op.Val },
		workers:  1,
		maxSpan:  defaultMaxSpan,
	}
	for _, p := range c.Procs.Members() {
		m.replicas[p] = make(map[string]string)
	}
	m.bindMetrics(c.Obs)
	c.OnDeliverBatch(func(p types.ProcID, _ []stack.Delivery) { m.pumpProc(p) })
	return m
}

// Write submits an update at processor p. onApplied, if non-nil, runs when
// the update has been applied at p's replica (the client's ack).
func (m *Memory) Write(p types.ProcID, key, val string, onApplied func()) {
	m.nonces[p]++
	op := Op{Kind: "w", Key: key, Val: val, Nonce: m.nonces[p]}
	if onApplied != nil {
		m.waiters[opKey{p, op.Nonce}] = func(string) { onApplied() }
	}
	m.cluster.Bcast(p, op.Encode())
}

// Read returns the local replica's value immediately (the sequentially
// consistent read of footnote 3).
func (m *Memory) Read(p types.ProcID, key string) string {
	m.Pump()
	return m.replicas[p][key]
}

// ReadAtomic submits the read through the broadcast service; onValue runs
// with the value the read observes in the total order (the atomic variant).
func (m *Memory) ReadAtomic(p types.ProcID, key string, onValue func(val string)) {
	m.nonces[p]++
	op := Op{Kind: "r", Key: key, Nonce: m.nonces[p]}
	if onValue != nil {
		m.waiters[opKey{p, op.Nonce}] = onValue
	}
	m.cluster.Bcast(p, op.Encode())
}

// Pump applies every not-yet-applied delivery to the replicas. With the
// batch observer installed by New this is normally a no-op; it remains
// useful when a Memory is attached to a cluster that already delivered.
// It returns the first replica's sticky apply error, if any (see Err).
func (m *Memory) Pump() error {
	var first error
	for _, p := range m.cluster.Procs.Members() {
		if err := m.pumpProc(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Err returns p's sticky apply error: non-nil once a malformed operation
// halted the replica. Every replica halts at the same position in the TO
// order (the prefix before the bad op is applied everywhere), so a halt
// never diverges replica contents.
func (m *Memory) Err(p types.ProcID) error { return m.errs[p] }

// pumpProc applies p's backlog of deliveries as one batch. Decoding stops
// at the first malformed op: the good prefix is applied (identically at
// every replica — the TO order places the bad op at the same index
// everywhere), then the replica halts with a sticky error.
func (m *Memory) pumpProc(p types.ProcID) error {
	if err := m.errs[p]; err != nil {
		return err
	}
	if m.pumping {
		// A waiter callback re-entered via Read/Pump mid-install; the
		// outer applyBatch owns the backlog.
		return nil
	}
	ds := m.cluster.Deliveries(p)
	lo := m.applied[p]
	if lo >= len(ds) {
		return nil
	}
	batch := ds[lo:]
	ops := make([]Op, 0, len(batch))
	var decErr error
	for i, d := range batch {
		op, err := DecodeOp(d.Value)
		if err == nil && op.Kind != "w" && op.Kind != "r" {
			err = fmt.Errorf("rsm: unknown op kind %q", op.Kind)
		}
		if err != nil {
			decErr = fmt.Errorf("rsm: replica %v halted at delivery %d: %w", p, lo+i, err)
			break
		}
		ops = append(ops, op)
	}
	if len(ops) > 0 {
		m.pumping = true
		func() {
			defer func() { m.pumping = false }()
			m.applyBatch(p, batch[:len(ops)], ops)
		}()
	}
	m.applied[p] += len(ops)
	if decErr != nil {
		m.errs[p] = decErr
	}
	return decErr
}

// Replica returns a copy of p's current replica contents.
func (m *Memory) Replica(p types.ProcID) map[string]string {
	m.Pump()
	out := make(map[string]string, len(m.replicas[p]))
	for k, v := range m.replicas[p] {
		out[k] = v
	}
	return out
}

// AppliedCount returns the number of operations applied at p's replica.
func (m *Memory) AppliedCount(p types.ProcID) int {
	m.Pump()
	return m.applied[p]
}

// CheckCoherence verifies that all replicas have applied a common prefix
// of one operation sequence (the defining property the TO order provides).
// It returns an error naming the first divergence.
func (m *Memory) CheckCoherence() error {
	m.Pump()
	procs := m.cluster.Procs.Members()
	var longest []stack.Delivery
	for _, p := range procs {
		if ds := m.cluster.Deliveries(p); len(ds) > len(longest) {
			longest = ds
		}
	}
	for _, p := range procs {
		ds := m.cluster.Deliveries(p)
		for i := range ds {
			if ds[i].Value != longest[i].Value || ds[i].From != longest[i].From {
				return fmt.Errorf("rsm: replica %v diverges at op %d: %v vs %v", p, i, ds[i], longest[i])
			}
		}
	}
	return nil
}

// WaitSettle is a convenience for tests: runs the simulator for d and
// pumps.
func (m *Memory) WaitSettle(d sim.Time) error {
	if err := m.cluster.Sim.Run(m.cluster.Sim.Now() + d); err != nil {
		return err
	}
	return m.Pump()
}
