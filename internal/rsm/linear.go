package rsm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/types"
)

// AtomicChecker verifies linearizability of the atomic variant of the
// footnote-3 memory (every operation — including reads — routed through
// the total order). An execution is linearizable iff each operation can
// be assigned a single point between its invocation and response such
// that the points' order is a legal sequential history. Here the natural
// candidate point is the operation's position in the TO order; the checker
// verifies that this assignment respects real time: whenever op1's
// response precedes op2's invocation, op1 precedes op2 in the order.
// (Sequential legality of the order itself is what HistoryChecker and
// CheckCoherence establish; atomic read values are additionally checked to
// match a replay of the order prefix.)
type AtomicChecker struct {
	mem *Memory
	ops []*atomicOp
}

type atomicOp struct {
	p         types.ProcID
	encoded   types.Value
	kind      string
	key       string
	observed  string
	invoked   sim.Time
	responded sim.Time
	done      bool
}

// NewAtomicChecker wraps a memory for checked atomic operation.
func NewAtomicChecker(m *Memory) *AtomicChecker {
	return &AtomicChecker{mem: m}
}

func (c *AtomicChecker) now() sim.Time { return c.mem.cluster.Sim.Now() }

// Write submits a checked write at p.
func (c *AtomicChecker) Write(p types.ProcID, key, val string) {
	c.mem.nonces[p]++
	op := Op{Kind: "w", Key: key, Val: val, Nonce: c.mem.nonces[p]}
	rec := &atomicOp{p: p, encoded: op.Encode(), kind: "w", key: key, invoked: c.now()}
	c.ops = append(c.ops, rec)
	c.mem.waiters[opKey{p, op.Nonce}] = func(observed string) {
		rec.observed = observed
		rec.responded = c.now()
		rec.done = true
	}
	c.mem.cluster.Bcast(p, op.Encode())
}

// Read submits a checked atomic read at p.
func (c *AtomicChecker) Read(p types.ProcID, key string) {
	c.mem.nonces[p]++
	op := Op{Kind: "r", Key: key, Nonce: c.mem.nonces[p]}
	rec := &atomicOp{p: p, encoded: op.Encode(), kind: "r", key: key, invoked: c.now()}
	c.ops = append(c.ops, rec)
	c.mem.waiters[opKey{p, op.Nonce}] = func(observed string) {
		rec.observed = observed
		rec.responded = c.now()
		rec.done = true
	}
	c.mem.cluster.Bcast(p, op.Encode())
}

// Completed returns how many checked operations have responded.
func (c *AtomicChecker) Completed() int {
	n := 0
	for _, op := range c.ops {
		if op.done {
			n++
		}
	}
	return n
}

// Check verifies linearizability of the completed operations.
func (c *AtomicChecker) Check() error {
	if err := c.mem.CheckCoherence(); err != nil {
		return err
	}
	// Canonical order positions by (origin, encoded value).
	type ident struct {
		P types.ProcID
		V types.Value
	}
	pos := make(map[ident]int)
	var longest []struct {
		id ident
	}
	for _, p := range c.mem.cluster.Procs.Members() {
		ds := c.mem.cluster.Deliveries(p)
		if len(ds) > len(longest) {
			longest = longest[:0]
			for _, d := range ds {
				longest = append(longest, struct{ id ident }{ident{d.From, d.Value}})
			}
		}
	}
	for i, e := range longest {
		pos[e.id] = i + 1
	}
	// Replay the order to validate atomic read values.
	state := make(map[string]string)
	for _, e := range longest {
		op, err := DecodeOp(e.id.V)
		if err != nil {
			return err
		}
		if op.Kind == "w" {
			state[op.Key] = op.Val
		}
		for _, rec := range c.ops {
			if rec.done && rec.p == e.id.P && rec.encoded == e.id.V && rec.kind == "r" {
				if rec.observed != state[op.Key] {
					return fmt.Errorf("rsm: atomic read(%q) at %v observed %q, order says %q",
						rec.key, rec.p, rec.observed, state[op.Key])
				}
			}
		}
	}
	// Real-time order: response(op1) < invoke(op2) ⇒ pos(op1) < pos(op2).
	for _, op1 := range c.ops {
		if !op1.done {
			continue
		}
		p1, ok1 := pos[ident{op1.p, op1.encoded}]
		if !ok1 {
			return fmt.Errorf("rsm: completed op at %v missing from the order", op1.p)
		}
		for _, op2 := range c.ops {
			if op1 == op2 {
				continue
			}
			p2, ok2 := pos[ident{op2.p, op2.encoded}]
			if !ok2 {
				continue // op2 not yet ordered; real-time pairs need both
			}
			if op1.responded < op2.invoked && p1 >= p2 {
				return fmt.Errorf(
					"rsm: linearizability violated: op@%v responded %v before op@%v invoked %v, but order positions %d ≥ %d",
					op1.p, op1.responded, op2.p, op2.invoked, p1, p2)
			}
		}
	}
	return nil
}
