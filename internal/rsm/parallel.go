package rsm

import (
	"time"

	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/sweep"
	"repro/internal/types"
)

// ConflictFunc is an application-declared conflict relation over memory
// operations: Conflict(a, b) reports whether a and b do NOT commute —
// i.e. applying them in either order can change the resulting state or
// any observed value. Only conflicting operations need the serial apply
// discipline; runs of pairwise non-conflicting operations (maximal
// antichains of the delivered stream) are applied with their per-op work
// fanned across worker goroutines.
//
// The planner symmetrizes the relation — a pair conflicts if the
// relation says so in either argument order — so an accidentally
// asymmetric user relation degrades safely to its symmetric closure
// instead of licensing a reorder one direction forbade. Reflexive pairs
// are never queried (an operation is never planned against itself).
//
// A sound relation must satisfy: if Conflict(a, b) is false, then
// applying a and b from any common state in either order yields the same
// state and the same observed values. The planner preserves
// byte-identical-to-serial results for any sound relation; an unsound
// relation (e.g. declaring same-key writes commuting) still yields the
// same deterministic state on every replica at every worker count —
// effects are computed against the segment-entry state and installed in
// stream order — but that state may differ from a strictly serial apply.
type ConflictFunc func(a, b Op) bool

// DefaultConflict is the sound relation for the footnote-3 memory: reads
// commute with reads regardless of key, and any two operations on
// different keys commute; same-key pairs involving a write conflict.
func DefaultConflict(a, b Op) bool {
	if a.Kind == "r" && b.Kind == "r" {
		return false
	}
	return a.Key == b.Key
}

// AlwaysConflict declares every pair conflicting: the planner degenerates
// to single-op segments and the apply loop is exactly the legacy serial
// one. This is the conservative mode for applications that cannot state
// a commutativity relation.
func AlwaysConflict(a, b Op) bool { return true }

// ApplyFunc computes the value a write stores: given the write op and the
// cell's current value as of the op's segment boundary, it returns the
// new cell value. The default stores op.Val verbatim. A non-trivial
// ApplyFunc is where per-op CPU work lives — it is the function the
// parallel apply fans across cores — and it must be a pure function of
// its arguments (it may run concurrently with other ops' ApplyFuncs and
// is never retried).
//
// Note cur is the value at the segment boundary: under a sound conflict
// relation no other op in the segment writes this key, so cur equals the
// serial pre-state. The trace checkers (HistoryChecker, AtomicChecker)
// replay writes as stores of op.Val and therefore assume the default
// ApplyFunc.
type ApplyFunc func(op Op, cur string) string

// defaultMaxSpan caps planned antichain length: the greedy planner costs
// O(len²) conflict queries per segment, so an uncapped commuting burst
// would plan quadratically. 256 keeps planning linear-ish while leaving
// far more width than the worker pool can use.
const defaultMaxSpan = 256

// memMetrics holds the rsm-layer obs handles (all nil when the cluster's
// registry is disabled).
type memMetrics struct {
	applyBatches *obs.Counter   // rsm.apply_batches: delivered batches applied
	applyOps     *obs.Counter   // rsm.apply_ops: operations applied
	parallelOps  *obs.Counter   // rsm.apply_parallel_ops: ops in multi-op antichains
	antichain    *obs.Histogram // rsm.antichain_size: planned segment widths (unit: ops, not ns)
	batchWall    *obs.Histogram // rsm.apply_batch_wall_ns: wall-clock apply latency per batch
	utilization  *obs.Gauge     // rsm.apply_utilization_pct: % of last batch's ops in multi-op antichains
	workers      *obs.Gauge     // rsm.apply_workers: configured worker count
}

func (m *Memory) bindMetrics(reg *obs.Registry) {
	m.met = memMetrics{
		applyBatches: reg.Counter("rsm.apply_batches"),
		applyOps:     reg.Counter("rsm.apply_ops"),
		parallelOps:  reg.Counter("rsm.apply_parallel_ops"),
		antichain:    reg.Histogram("rsm.antichain_size"),
		batchWall:    reg.Histogram("rsm.apply_batch_wall_ns"),
		utilization:  reg.Gauge("rsm.apply_utilization_pct"),
		workers:      reg.Gauge("rsm.apply_workers"),
	}
	m.met.workers.Set(int64(sweep.Workers(m.workers)))
}

// SetConflict installs the conflict relation consulted by the batch
// planner. Passing nil restores DefaultConflict. Call before load; the
// relation must stay fixed for the lifetime of the memory (all replicas
// of one memory must plan identically).
func (m *Memory) SetConflict(f ConflictFunc) {
	if f == nil {
		f = DefaultConflict
	}
	m.conflict = f
}

// SetWorkers sets the worker-goroutine count for parallel apply: 1 (the
// default) is the reference serial apply, n <= 0 means all cores
// (GOMAXPROCS). Results are byte-identical at every setting; workers only
// changes wall-clock time.
func (m *Memory) SetWorkers(n int) {
	m.workers = n
	m.met.workers.Set(int64(sweep.Workers(n)))
}

// SetApply installs the write-apply function (nil restores the default
// store-op.Val). See ApplyFunc for the purity contract.
func (m *Memory) SetApply(f ApplyFunc) {
	if f == nil {
		f = func(op Op, _ string) string { return op.Val }
	}
	m.apply = f
}

// applyBatch applies one decoded batch of deliveries to p's replica:
// the stream is cut into maximal antichains under the (symmetrized)
// conflict relation, each antichain's effects are computed across the
// worker pool, and effects, acks, and read observations are installed
// serially in delivery order — so replica state and client-ack order are
// byte-identical to the legacy serial loop at every worker count.
func (m *Memory) applyBatch(p types.ProcID, ds []stack.Delivery, ops []Op) {
	rep := m.replicas[p]
	n := len(ops)
	conflicts := func(i, j int) bool {
		if m.forceCommute {
			// Test-only broken planner: pretend everything commutes.
			return false
		}
		return m.conflict(ops[i], ops[j]) || m.conflict(ops[j], ops[i])
	}
	eff := make([]string, n)
	compute := func(i int) {
		// Reads observe, and writes transform, the segment-boundary state:
		// under a sound relation no op in the same segment writes this key,
		// so rep[key] is stable for the duration of the segment's computes
		// (concurrent map reads only; installs happen after the barrier).
		if ops[i].Kind == "w" {
			eff[i] = m.apply(ops[i], rep[ops[i].Key])
		} else {
			eff[i] = rep[ops[i].Key]
		}
	}
	install := func(i int) {
		if ops[i].Kind == "w" {
			rep[ops[i].Key] = eff[i]
		}
		if ds[i].From == p {
			if cb, ok := m.waiters[opKey{p, ops[i].Nonce}]; ok {
				delete(m.waiters, opKey{p, ops[i].Nonce})
				cb(eff[i])
			}
		}
	}

	var start time.Time
	if m.met.batchWall != nil {
		start = time.Now()
	}
	var spans []sweep.Span
	if m.permuteSegments {
		// Test-only adversarial executor: install each antichain in
		// reversed order. Legal for commuting segments (the checkers must
		// still pass); combined with forceCommute it deliberately reorders
		// conflicting ops (the checkers must catch it).
		spans = sweep.PlanSegments(n, m.maxSpan, conflicts)
		for _, sp := range spans {
			for i := sp.Lo; i < sp.Hi; i++ {
				compute(i)
			}
			for i := sp.Hi - 1; i >= sp.Lo; i-- {
				install(i)
			}
		}
	} else {
		spans = sweep.ApplyOrdered(m.workers, n, m.maxSpan, conflicts, compute, install)
	}

	m.met.applyBatches.Inc()
	m.met.applyOps.Add(int64(n))
	if m.met.antichain != nil {
		parallel := 0
		for _, sp := range spans {
			m.met.antichain.Record(time.Duration(sp.Len()))
			if sp.Len() > 1 {
				parallel += sp.Len()
			}
		}
		m.met.parallelOps.Add(int64(parallel))
		m.met.utilization.Set(int64(100 * parallel / n))
		m.met.batchWall.Record(time.Since(start))
	}
}
