package rsm

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// replicaDigest hashes p's replica contents plus applied count into a
// comparable fingerprint.
func replicaDigest(m *Memory, p types.ProcID) string {
	rep := m.Replica(p)
	keys := make([]string, 0, len(rep))
	for k := range rep {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "applied=%d\n", m.AppliedCount(p))
	for _, k := range keys {
		fmt.Fprintf(h, "%q=%q\n", k, rep[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runWorkload drives a seeded multi-key workload (writes at every proc,
// atomic reads sprinkled in) against a fresh cluster with the given apply
// worker count, returning the per-replica digests and the client-ack order.
func runWorkload(t *testing.T, workers int) (digests []string, acks []string) {
	t.Helper()
	const n = 4
	c := stack.NewCluster(stack.Options{Seed: 99, N: n, Delta: time.Millisecond})
	m := New(c)
	m.SetWorkers(workers)
	for i := 0; i < 48; i++ {
		i := i
		p := types.ProcID(i % n)
		c.Sim.After(time.Duration(5+i)*time.Millisecond, func() {
			key := fmt.Sprintf("k%d", i%7)
			if i%6 == 5 {
				m.ReadAtomic(p, key, func(v string) {
					acks = append(acks, fmt.Sprintf("r%d@%v=%q", i, p, v))
				})
			} else {
				m.Write(p, key, fmt.Sprintf("v%d", i), func() {
					acks = append(acks, fmt.Sprintf("w%d@%v", i, p))
				})
			}
		})
	}
	if err := m.WaitSettle(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs.Members() {
		digests = append(digests, replicaDigest(m, p))
	}
	return digests, acks
}

// TestParallelApplyDeterminism is the CI-gated digest check: the same
// seeded workload applied at workers=1 (the serial reference), workers=2,
// and workers=NumCPU yields byte-identical replica state and identical
// client-ack order.
func TestParallelApplyDeterminism(t *testing.T) {
	wantDigests, wantAcks := runWorkload(t, 1)
	if len(wantAcks) == 0 {
		t.Fatal("workload produced no acks; test is vacuous")
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		digests, acks := runWorkload(t, w)
		if fmt.Sprint(digests) != fmt.Sprint(wantDigests) {
			t.Errorf("workers=%d replica digests diverged from serial:\n  %v\nvs\n  %v", w, digests, wantDigests)
		}
		if fmt.Sprint(acks) != fmt.Sprint(wantAcks) {
			t.Errorf("workers=%d ack order diverged from serial:\n  %v\nvs\n  %v", w, acks, wantAcks)
		}
	}
}

// backlogCluster broadcasts the given encoded values, settles, and returns
// the cluster: attaching a Memory afterwards sees the whole stream as one
// batch on the first Pump — the way tests force wide antichains.
func backlogCluster(t *testing.T, vals []types.Value) *stack.Cluster {
	t.Helper()
	c := stack.NewCluster(stack.Options{Seed: 7, N: 3, Delta: time.Millisecond})
	for i, v := range vals {
		v := v
		c.Sim.After(time.Duration(5+i)*time.Millisecond, func() { c.Bcast(0, v) })
	}
	if err := c.Sim.Run(c.Sim.Now() + sim.Time(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestConflictRelationTable: asymmetric user relations are symmetrized —
// a conflict declared in either argument order forces serial application.
// The workload is same-key writes under an appending ApplyFunc, where a
// missed conflict would visibly lose an append; every relation variant
// must reproduce the exact serial result at every worker count.
func TestConflictRelationTable(t *testing.T) {
	const nOps = 8
	var vals []types.Value
	want := "" // serial result of appending applies
	for i := 0; i < nOps; i++ {
		vals = append(vals, Op{Kind: "w", Key: "k", Val: fmt.Sprintf("+%d", i), Nonce: i + 1}.Encode())
		want += fmt.Sprintf("+%d", i)
	}
	relations := []struct {
		name string
		f    ConflictFunc
	}{
		{"default", nil}, // DefaultConflict
		{"always", AlwaysConflict},
		// Asymmetric: conflicts only when the first argument's nonce is
		// smaller. The planner queries both orders, so this must behave
		// like its symmetric closure (= same-key conflict).
		{"asym-forward", func(a, b Op) bool { return a.Key == b.Key && a.Nonce < b.Nonce }},
		// Asymmetric the other way: stream order from one origin has
		// increasing nonces, so the i<j query alone would never fire.
		{"asym-reverse", func(a, b Op) bool { return a.Key == b.Key && a.Nonce > b.Nonce }},
		// Reflexive-only-plus: conflicts also on a==b; reflexive pairs are
		// never queried, so this is just the same-key relation.
		{"reflexive", func(a, b Op) bool { return a.Key == b.Key || a == b }},
	}
	for _, rel := range relations {
		for _, workers := range []int{1, 4} {
			c := backlogCluster(t, vals)
			m := New(c)
			m.SetConflict(rel.f)
			m.SetWorkers(workers)
			m.SetApply(func(op Op, cur string) string { return cur + op.Val })
			if err := m.Pump(); err != nil {
				t.Fatalf("%s/workers=%d: %v", rel.name, workers, err)
			}
			for _, p := range c.Procs.Members() {
				if got := m.Read(p, "k"); got != want {
					t.Errorf("%s/workers=%d: replica %v has %q, want %q", rel.name, workers, p, got, want)
				}
			}
		}
	}
}

// TestEmptyAndAllConflictingBatches: pumping with no deliveries is a
// no-op, and an all-conflicting batch degenerates to exact serial
// behavior (single-op segments).
func TestEmptyAndAllConflictingBatches(t *testing.T) {
	c := stack.NewCluster(stack.Options{Seed: 3, N: 3, Delta: time.Millisecond})
	m := New(c)
	m.SetWorkers(4)
	if err := m.Pump(); err != nil {
		t.Fatalf("empty pump: %v", err)
	}
	if got := m.AppliedCount(0); got != 0 {
		t.Fatalf("empty pump applied %d ops", got)
	}

	var vals []types.Value
	for i := 0; i < 6; i++ {
		vals = append(vals, Op{Kind: "w", Key: "k", Val: fmt.Sprintf("v%d", i), Nonce: i + 1}.Encode())
	}
	c2 := backlogCluster(t, vals)
	m2 := New(c2)
	m2.SetConflict(AlwaysConflict)
	m2.SetWorkers(4)
	if err := m2.Pump(); err != nil {
		t.Fatal(err)
	}
	for _, p := range c2.Procs.Members() {
		if got := m2.Read(p, "k"); got != "v5" {
			t.Errorf("replica %v has %q, want last write \"v5\"", p, got)
		}
		if got := m2.AppliedCount(p); got != 6 {
			t.Errorf("replica %v applied %d ops, want 6", p, got)
		}
	}
}

// TestMalformedOpsHaltNotPanic sweeps malformed encodings (the
// FuzzDecodeOp seed shapes, legacy and binary) through Memory apply: every
// replica must apply exactly the good prefix, halt with a sticky error,
// and never panic or diverge.
func TestMalformedOpsHaltNotPanic(t *testing.T) {
	good := Op{Kind: "w", Key: "k", Val: "ok", Nonce: 1}.Encode()
	binary := string(Op{Kind: "w", Key: "key", Val: "val", Nonce: 2}.Encode())
	malformed := []string{
		"",                    // legacy: no separators
		"w",                   // legacy: too few fields
		"w|x|1:k",             // legacy: bad nonce
		"w|1|99:k",            // legacy: key length past end
		"q|1|1:kv",            // well-formed legacy encoding, unknown kind
		binary[:1],            // binary: tag only
		binary[:4],            // binary: truncated mid-varint
		binary + "x",          // binary: trailing bytes
		"\x01\xff" + "rest",   // binary: unknown kind byte
		"\x01\x00",            // binary: custom-kind marker, kind string missing
		"\x01w\x02\x03key123", // binary: key length runs past end
	}
	for _, bad := range malformed {
		bad := bad
		t.Run(fmt.Sprintf("%q", bad), func(t *testing.T) {
			c := backlogCluster(t, []types.Value{good, types.Value(bad), good})
			m := New(c)
			m.SetWorkers(4)
			err := m.Pump()
			if err == nil {
				t.Fatalf("Pump succeeded through malformed op %q", bad)
			}
			ref := m.AppliedCount(0)
			if ref != 1 {
				t.Errorf("applied %d ops, want exactly the good prefix (1)", ref)
			}
			for _, p := range c.Procs.Members() {
				if m.Err(p) == nil {
					t.Errorf("replica %v has no sticky error", p)
				}
				if got := m.AppliedCount(p); got != ref {
					t.Errorf("replica %v applied %d, replica 0 applied %d (diverged)", p, got, ref)
				}
				if got := m.Read(p, "k"); got != "ok" {
					t.Errorf("replica %v has k=%q, want \"ok\"", p, got)
				}
			}
			if err := m.CheckCoherence(); err != nil {
				t.Errorf("replicas incoherent after halt: %v", err)
			}
		})
	}
}

// TestPermutedCommutingBatchesPassCheckers: an adversarial executor that
// installs each antichain in reversed order is still sequentially
// consistent — permuting commuting operations is exactly what the conflict
// relation licenses — and both trace checkers accept the execution.
func TestPermutedCommutingBatchesPassCheckers(t *testing.T) {
	var vals []types.Value
	for i := 0; i < 24; i++ {
		// Distinct keys: the whole backlog is one wide commuting antichain.
		vals = append(vals, Op{Kind: "w", Key: fmt.Sprintf("k%d", i), Val: fmt.Sprintf("v%d", i), Nonce: i + 1}.Encode())
	}
	c := backlogCluster(t, vals)
	m := New(c)
	m.permuteSegments = true
	h := NewHistoryChecker(m)
	for _, p := range c.Procs.Members() {
		for i := 0; i < 24; i += 5 {
			if got, want := h.ReadLogged(p, fmt.Sprintf("k%d", i)), fmt.Sprintf("v%d", i); got != want {
				t.Errorf("replica %v reads %q, want %q", p, got, want)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Errorf("permuted commuting batches failed the history checker: %v", err)
	}

	// The atomic checker over a live run: distinct keys per writer so
	// batches stay commuting, with permuted installs throughout.
	c2 := stack.NewCluster(stack.Options{Seed: 31, N: 3, Delta: time.Millisecond})
	m2 := New(c2)
	m2.permuteSegments = true
	ac := NewAtomicChecker(m2)
	for i := 0; i < 12; i++ {
		i := i
		p := types.ProcID(i % 3)
		c2.Sim.After(time.Duration(5+i)*time.Millisecond, func() {
			if i%4 == 3 {
				ac.Read(p, fmt.Sprintf("k%d", i-1))
			} else {
				ac.Write(p, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
			}
		})
	}
	if err := m2.WaitSettle(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if ac.Completed() == 0 {
		t.Fatal("no atomic ops completed; test is vacuous")
	}
	if err := ac.Check(); err != nil {
		t.Errorf("permuted commuting batches failed the atomic checker: %v", err)
	}
}

// TestBrokenPlannerCaughtByCheckers is the regression safety net: a
// deliberately broken planner (forceCommute pretends everything commutes)
// combined with the permuting executor reorders *conflicting* ops, and the
// history checker must reject the execution.
func TestBrokenPlannerCaughtByCheckers(t *testing.T) {
	mk := func() (*Memory, *stack.Cluster) {
		vals := []types.Value{
			Op{Kind: "w", Key: "k", Val: "first", Nonce: 1}.Encode(),
			Op{Kind: "w", Key: "k", Val: "second", Nonce: 2}.Encode(),
		}
		c := backlogCluster(t, vals)
		return New(c), c
	}

	// Sanity: the honest planner on the same stream passes.
	m, _ := mk()
	m.permuteSegments = true // legal permutation only (conflicts respected)
	h := NewHistoryChecker(m)
	if got := h.ReadLogged(0, "k"); got != "second" {
		t.Fatalf("honest planner left k=%q, want \"second\"", got)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("honest planner rejected: %v", err)
	}

	// Broken planner: same-key writes land in one "commuting" segment and
	// the permuting executor installs them in reverse.
	mb, _ := mk()
	mb.forceCommute = true
	mb.permuteSegments = true
	hb := NewHistoryChecker(mb)
	if got := hb.ReadLogged(0, "k"); got != "first" {
		// If the reorder didn't happen the regression test is vacuous.
		t.Fatalf("broken planner left k=%q; expected the reorder to leave \"first\"", got)
	}
	if err := hb.Check(); err == nil {
		t.Fatal("history checker accepted a reorder of conflicting ops")
	} else if !strings.Contains(err.Error(), "replay says") {
		t.Fatalf("unexpected checker error: %v", err)
	}
}

// TestApplyObservability: the rsm obs instruments count batches, ops and
// antichain sizes when the cluster's registry is enabled.
func TestApplyObservability(t *testing.T) {
	reg := obs.New()
	c := stack.NewCluster(stack.Options{Seed: 13, N: 3, Delta: time.Millisecond, Obs: reg})
	m := New(c)
	m.SetWorkers(2)
	for i := 0; i < 10; i++ {
		i := i
		c.Sim.After(time.Duration(5+i)*time.Millisecond, func() {
			m.Write(types.ProcID(i%3), fmt.Sprintf("k%d", i), "v", nil)
		})
	}
	if err := m.WaitSettle(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ops := reg.Counter("rsm.apply_ops").Value()
	batches := reg.Counter("rsm.apply_batches").Value()
	if ops != int64(c.TotalDeliveries()) {
		t.Errorf("rsm.apply_ops = %d, want %d (total deliveries)", ops, c.TotalDeliveries())
	}
	if batches == 0 || batches > ops {
		t.Errorf("rsm.apply_batches = %d (ops %d); want within (0, ops]", batches, ops)
	}
	// One histogram sample per planned span, at least one span per batch.
	if n := reg.Histogram("rsm.antichain_size").Count(); n < batches {
		t.Errorf("antichain histogram has %d samples, fewer than %d batches", n, batches)
	}
	if n := reg.Histogram("rsm.apply_batch_wall_ns").Count(); n != batches {
		t.Errorf("apply latency histogram has %d samples, want %d (one per batch)", n, batches)
	}
}
