package rsm

import (
	"fmt"

	"repro/internal/types"
)

// ReadRecord is one logged read operation: which client (processor) read,
// what it saw, and the length of the operation prefix its replica had
// applied at that moment.
type ReadRecord struct {
	P       types.ProcID
	Key     string
	Value   string
	Applied int // ops applied at p's replica when the read occurred
	Seq     int // per-process operation counter, program order
}

// HistoryChecker verifies sequential consistency of a logged execution.
//
// Footnote 3's construction makes the witness explicit: all writes are
// applied everywhere in the single TO order, and a read at p observes the
// state after some prefix of that order (exactly p's applied prefix). The
// execution is sequentially consistent iff
//
//  1. every logged read returns the value of the last write to its key in
//     the prefix it observed (replayed independently here from node 0's
//     delivery sequence — the canonical order);
//  2. the prefixes observed by one process never shrink (program order at
//     each client is respected by the serialization).
//
// The checker replays the order from scratch, so a bug in Memory's apply
// logic (not just in the TO layer) would be caught.
type HistoryChecker struct {
	mem   *Memory
	reads []ReadRecord
	seqs  map[types.ProcID]int
}

// NewHistoryChecker attaches a checker to a memory.
func NewHistoryChecker(m *Memory) *HistoryChecker {
	return &HistoryChecker{mem: m, seqs: make(map[types.ProcID]int)}
}

// ReadLogged performs a local read at p and logs it for checking.
func (h *HistoryChecker) ReadLogged(p types.ProcID, key string) string {
	val := h.mem.Read(p, key) // pumps
	h.seqs[p]++
	h.reads = append(h.reads, ReadRecord{
		P: p, Key: key, Value: val, Applied: h.mem.applied[p], Seq: h.seqs[p],
	})
	return val
}

// Reads returns the logged read records.
func (h *HistoryChecker) Reads() []ReadRecord { return h.reads }

// Check verifies sequential consistency of the logged reads against the
// canonical total order. Call after the run settles (it replays the
// longest delivery sequence available).
func (h *HistoryChecker) Check() error {
	if err := h.mem.CheckCoherence(); err != nil {
		return err
	}
	// Canonical order: the longest delivery sequence (all are prefixes of
	// it by coherence).
	var order []types.Value
	for _, p := range h.mem.cluster.Procs.Members() {
		ds := h.mem.cluster.Deliveries(p)
		if len(ds) > len(order) {
			order = order[:0]
			for _, d := range ds {
				order = append(order, d.Value)
			}
		}
	}
	// Replay prefix states lazily: prefixVal(k, key) = value of key after
	// k ops.
	state := make(map[string]string)
	replayed := 0
	replayTo := func(k int) error {
		if k < replayed {
			// Reads are checked in increasing Applied order after sorting;
			// a backwards jump restarts the replay.
			state = make(map[string]string)
			replayed = 0
		}
		for ; replayed < k; replayed++ {
			if replayed >= len(order) {
				return fmt.Errorf("rsm: read observed prefix %d beyond order length %d", k, len(order))
			}
			op, err := DecodeOp(order[replayed])
			if err != nil {
				return err
			}
			if op.Kind == "w" {
				state[op.Key] = op.Val
			}
		}
		return nil
	}
	// Program order per process: Applied must be non-decreasing in Seq.
	lastApplied := make(map[types.ProcID]int)
	lastSeq := make(map[types.ProcID]int)
	for _, r := range h.reads {
		if r.Seq <= lastSeq[r.P] {
			return fmt.Errorf("rsm: read records for %v out of program order", r.P)
		}
		lastSeq[r.P] = r.Seq
		if r.Applied < lastApplied[r.P] {
			return fmt.Errorf("rsm: %v's observed prefix shrank from %d to %d (program order violated)",
				r.P, lastApplied[r.P], r.Applied)
		}
		lastApplied[r.P] = r.Applied
	}
	// Read values match the replayed prefix state. Process reads sorted by
	// prefix length to keep the replay forward-only in the common case.
	sorted := append([]ReadRecord(nil), h.reads...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Applied < sorted[j-1].Applied; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, r := range sorted {
		if err := replayTo(r.Applied); err != nil {
			return err
		}
		if want := state[r.Key]; r.Value != want {
			return fmt.Errorf("rsm: read(%q) at %v (prefix %d) returned %q, replay says %q",
				r.Key, r.P, r.Applied, r.Value, want)
		}
	}
	return nil
}
