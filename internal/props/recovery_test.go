package props

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

func ms(d int) sim.Time { return sim.Time(time.Duration(d) * time.Millisecond) }

func recoveryLog(events ...Event) *Log {
	l := &Log{}
	for _, e := range events {
		l.Append(e)
	}
	return l
}

func TestRecoveryLivenessHolds(t *testing.T) {
	q := types.NewProcSet(0, 1)
	// Value submitted before the heal at 10ms, delivered everywhere by 14ms;
	// value submitted after the heal delivered within its own deadline.
	l := recoveryLog(
		Event{T: ms(2), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(13), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(14), Kind: TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(20), Kind: TOBcast, P: 1, Value: "b", ValueSeq: 1},
		Event{T: ms(24), Kind: TOBrcv, P: 0, From: 1, Value: "b", ValueSeq: 1},
		Event{T: ms(24), Kind: TOBrcv, P: 1, From: 1, Value: "b", ValueSeq: 1},
	)
	if err := CheckRecoveryLiveness(l, q, ms(10), 5*time.Millisecond); err != nil {
		t.Fatalf("liveness should hold: %v", err)
	}
	m := MeasureRecovery(l, q, ms(10), 5*time.Millisecond)
	if m.Values != 2 || m.Missing != 0 {
		t.Errorf("measure = %+v", m)
	}
	// Worst lag: "a" at p1 delivered 4ms after the heal.
	if m.MaxLag != 4*time.Millisecond {
		t.Errorf("MaxLag = %v, want 4ms", m.MaxLag)
	}
}

func TestRecoveryLivenessMissingDelivery(t *testing.T) {
	q := types.NewProcSet(0, 1)
	l := recoveryLog(
		Event{T: ms(2), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(12), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1},
		// p1 never receives it.
	)
	err := CheckRecoveryLiveness(l, q, ms(10), 5*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "never delivered") {
		t.Fatalf("want missing-delivery violation, got %v", err)
	}
	if m := MeasureRecovery(l, q, ms(10), 5*time.Millisecond); m.Missing != 1 {
		t.Errorf("Missing = %d, want 1", m.Missing)
	}
}

func TestRecoveryLivenessLateDelivery(t *testing.T) {
	q := types.NewProcSet(0, 1)
	l := recoveryLog(
		Event{T: ms(2), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(12), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1},
		Event{T: ms(30), Kind: TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1}, // 15ms past deadline
	)
	err := CheckRecoveryLiveness(l, q, ms(10), 5*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "past the") {
		t.Fatalf("want late-delivery violation, got %v", err)
	}
	// The same log passes under a looser bound.
	if err := CheckRecoveryLiveness(l, q, ms(10), 25*time.Millisecond); err != nil {
		t.Fatalf("loose bound should pass: %v", err)
	}
}

func TestRecoveryLivenessIgnoresOutsiders(t *testing.T) {
	q := types.NewProcSet(0, 1)
	// A bcast at processor 5 (outside q) with no deliveries anywhere must
	// not enter the measurement.
	l := recoveryLog(
		Event{T: ms(2), Kind: TOBcast, P: 5, Value: "x", ValueSeq: 1},
	)
	if err := CheckRecoveryLiveness(l, q, ms(10), time.Millisecond); err != nil {
		t.Fatalf("outsider bcast should be ignored: %v", err)
	}
	if m := MeasureRecovery(l, q, ms(10), time.Millisecond); m.Values != 0 {
		t.Errorf("Values = %d, want 0", m.Values)
	}
}
