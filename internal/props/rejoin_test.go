package props

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

func brcvAt(t sim.Time, p, from types.ProcID, seq int, v types.Value) Event {
	return Event{T: t, Kind: TOBrcv, P: p, From: from, ValueSeq: seq, Value: v}
}

func pd(from types.ProcID, seq int, v types.Value) PersistedDelivery {
	return PersistedDelivery{From: from, Seq: seq, Value: v}
}

func TestCheckRejoinSafety(t *testing.T) {
	p, q := types.ProcID(1), types.ProcID(0)
	base := []Event{
		brcvAt(ms(10), p, q, 1, "a"),
		brcvAt(ms(20), p, q, 2, "b"),
		brcvAt(ms(30), p, p, 1, "x"),
	}
	crash := CrashSnapshot{P: p, T: ms(40), Persisted: []PersistedDelivery{
		pd(q, 1, "a"), pd(q, 2, "b"), pd(p, 1, "x"),
	}}

	mk := func(extra ...Event) *Log {
		l := &Log{}
		for _, e := range append(append([]Event(nil), base...), extra...) {
			l.Append(e)
		}
		return l
	}

	t.Run("no crashes is trivially safe", func(t *testing.T) {
		if err := CheckRejoinSafety(mk(), nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("correct continuation passes", func(t *testing.T) {
		log := mk(
			brcvAt(ms(100), p, q, 3, "c"),
			brcvAt(ms(110), p, p, 2, "y"),
			brcvAt(ms(120), p, 2, 1, "z"), // origin with no persisted history
		)
		if err := CheckRejoinSafety(log, []CrashSnapshot{crash}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("missing persisted delivery fails", func(t *testing.T) {
		short := crash
		short.Persisted = crash.Persisted[:2] // "x" was released but not durable
		err := CheckRejoinSafety(mk(), []CrashSnapshot{short})
		if err == nil || !strings.Contains(err.Error(), "3 deliveries released, 2 persisted") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("persisted value mismatch fails", func(t *testing.T) {
		bad := crash
		bad.Persisted = []PersistedDelivery{pd(q, 1, "a"), pd(q, 2, "WRONG"), pd(p, 1, "x")}
		err := CheckRejoinSafety(mk(), []CrashSnapshot{bad})
		if err == nil || !strings.Contains(err.Error(), "delivery 2") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("re-delivery after rejoin fails", func(t *testing.T) {
		log := mk(brcvAt(ms(100), p, q, 2, "b"))
		err := CheckRejoinSafety(log, []CrashSnapshot{crash})
		if err == nil || !strings.Contains(err.Error(), "re-delivered") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("skip after rejoin fails", func(t *testing.T) {
		log := mk(brcvAt(ms(100), p, q, 4, "d")) // q's index 3 skipped
		err := CheckRejoinSafety(log, []CrashSnapshot{crash})
		if err == nil || !strings.Contains(err.Error(), "resume at index 4, want 3") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("second crash takes over the window", func(t *testing.T) {
		// Between the crashes p delivers q#3; the second snapshot persists
		// it, and the post-second-crash deliveries continue from there. A
		// re-delivery of q#3 after the second crash is the second crash's
		// violation, not the first's.
		log := mk(
			brcvAt(ms(100), p, q, 3, "c"),
			brcvAt(ms(200), p, q, 4, "d"),
		)
		crash2 := CrashSnapshot{P: p, T: ms(150), Persisted: append(
			append([]PersistedDelivery(nil), crash.Persisted...), pd(q, 3, "c"))}
		if err := CheckRejoinSafety(log, []CrashSnapshot{crash, crash2}); err != nil {
			t.Fatal(err)
		}
		bad := mk(
			brcvAt(ms(100), p, q, 3, "c"),
			brcvAt(ms(200), p, q, 3, "c"),
		)
		err := CheckRejoinSafety(bad, []CrashSnapshot{crash, crash2})
		if err == nil || !strings.Contains(err.Error(), "crash of p1 at 150ms") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("other processors unaffected", func(t *testing.T) {
		log := mk(brcvAt(ms(5), q, q, 1, "a"), brcvAt(ms(100), q, q, 1, "a"))
		if err := CheckRejoinSafety(log, []CrashSnapshot{crash}); err != nil {
			t.Fatal(err)
		}
	})
}
