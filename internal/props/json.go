package props

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/types"
)

// eventJSON is the wire form of a timed trace line, used by tosim (write)
// and vscheck (read). One JSON object per line; "initial" lines declare
// initial-view membership and precede all events.
type eventJSON struct {
	Kind      string `json:"kind"`
	TNanos    int64  `json:"t_ns,omitempty"`
	P         int    `json:"p"`
	From      int    `json:"from,omitempty"`
	Value     string `json:"value,omitempty"`
	ValueSeq  int    `json:"value_seq,omitempty"`
	MsgSender int    `json:"msg_sender,omitempty"`
	MsgSeq    int    `json:"msg_seq,omitempty"`
	ViewEpoch int64  `json:"view_epoch,omitempty"`
	ViewProc  int    `json:"view_proc,omitempty"`
	ViewSet   []int  `json:"view_set,omitempty"`
}

func kindString(k Kind) string {
	switch k {
	case TOBcast:
		return "bcast"
	case TOBrcv:
		return "brcv"
	case VSGpsnd:
		return "gpsnd"
	case VSGprcv:
		return "gprcv"
	case VSSafe:
		return "safe"
	case VSNewview:
		return "newview"
	}
	return "?"
}

func kindFromString(s string) (Kind, error) {
	switch s {
	case "bcast":
		return TOBcast, nil
	case "brcv":
		return TOBrcv, nil
	case "gpsnd":
		return VSGpsnd, nil
	case "gprcv":
		return VSGprcv, nil
	case "safe":
		return VSSafe, nil
	case "newview":
		return VSNewview, nil
	default:
		return 0, fmt.Errorf("props: unknown event kind %q", s)
	}
}

// AppendInitialJSONL writes one "initial" JSONL line declaring that p
// starts in view v.
func AppendInitialJSONL(w io.Writer, p types.ProcID, v types.View) error {
	set := make([]int, 0, v.Set.Size())
	for _, m := range v.Set.Members() {
		set = append(set, int(m))
	}
	return json.NewEncoder(w).Encode(eventJSON{
		Kind: "initial", P: int(p),
		ViewEpoch: v.ID.Epoch, ViewProc: int(v.ID.Proc), ViewSet: set,
	})
}

// AppendEventJSONL writes one event as a JSONL line.
func AppendEventJSONL(w io.Writer, e Event) error {
	j := eventJSON{
		Kind:   kindString(e.Kind),
		TNanos: int64(e.T),
		P:      int(e.P),
		From:   int(e.From),
	}
	switch e.Kind {
	case TOBcast, TOBrcv:
		j.Value = string(e.Value)
		j.ValueSeq = e.ValueSeq
	case VSGpsnd, VSGprcv, VSSafe:
		j.MsgSender = int(e.Msg.Sender)
		j.MsgSeq = e.Msg.Seq
	case VSNewview:
		j.ViewEpoch = e.View.ID.Epoch
		j.ViewProc = int(e.View.ID.Proc)
		for _, m := range e.View.Set.Members() {
			j.ViewSet = append(j.ViewSet, int(m))
		}
	}
	return json.NewEncoder(w).Encode(j)
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for p, v := range l.Initial {
		if err := AppendInitialJSONL(bw, p, v); err != nil {
			return err
		}
	}
	for _, e := range l.Events {
		if err := AppendEventJSONL(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON-lines trace back into a Log.
func ReadJSONL(r io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j eventJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, fmt.Errorf("props: line %d: %w", lineNo, err)
		}
		if j.Kind == "initial" {
			set := make([]types.ProcID, len(j.ViewSet))
			for i, m := range j.ViewSet {
				set[i] = types.ProcID(m)
			}
			log.SetInitial(types.ProcID(j.P), types.View{
				ID:  types.ViewID{Epoch: j.ViewEpoch, Proc: types.ProcID(j.ViewProc)},
				Set: types.NewProcSet(set...),
			})
			continue
		}
		kind, err := kindFromString(j.Kind)
		if err != nil {
			return nil, fmt.Errorf("props: line %d: %w", lineNo, err)
		}
		e := Event{
			T:    sim.Time(j.TNanos),
			Kind: kind,
			P:    types.ProcID(j.P),
			From: types.ProcID(j.From),
		}
		switch kind {
		case TOBcast, TOBrcv:
			e.Value = types.Value(j.Value)
			e.ValueSeq = j.ValueSeq
		case VSGpsnd, VSGprcv, VSSafe:
			e.Msg = check.MsgID{Sender: types.ProcID(j.MsgSender), Seq: j.MsgSeq}
		case VSNewview:
			set := make([]types.ProcID, len(j.ViewSet))
			for i, m := range j.ViewSet {
				set[i] = types.ProcID(m)
			}
			e.View = types.View{
				ID:  types.ViewID{Epoch: j.ViewEpoch, Proc: types.ProcID(j.ViewProc)},
				Set: types.NewProcSet(set...),
			}
		}
		log.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}
