package props

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// VSMeasure is the outcome of evaluating VS-property's conclusion over a
// recorded execution, for a stabilized component Q isolated from time l.
type VSMeasure struct {
	// Converged reports whether the latest views of all members of Q agree
	// and have membership exactly Q.
	Converged bool
	// FinalView is the agreed view (valid when Converged).
	FinalView types.View
	// LastNewview is the time of the last newview at any member of Q.
	LastNewview sim.Time
	// LPrime is the measured stabilization interval l′ =
	// max(0, LastNewview − l); VS-property demands l′ ≤ b.
	LPrime time.Duration
	// MaxSafeLag is, over every message sent from a member of Q in the
	// final view at time t, the worst (time of last safe at a member of Q)
	// − max(t, l+l′); VS-property demands it ≤ d.
	MaxSafeLag time.Duration
	// MsgsMeasured counts the messages entering the lag measurement;
	// IncompleteSafe counts those missing a safe event at some member by
	// the end of the log (they make the verdict fail).
	MsgsMeasured   int
	IncompleteSafe int
}

// MeasureVS evaluates the conclusion of VS-property(·, ·, Q) over the log,
// taking l as the time the hypothesis began to hold (Q isolated, statuses
// frozen).
func MeasureVS(log *Log, q types.ProcSet, l sim.Time) VSMeasure {
	var m VSMeasure
	latest := make(map[types.ProcID]types.View)
	for p, v := range log.Initial {
		latest[p] = v
	}
	for _, e := range log.Events {
		if e.Kind == VSNewview && q.Contains(e.P) {
			latest[e.P] = e.View
			if e.T > m.LastNewview {
				m.LastNewview = e.T
			}
		}
	}
	m.Converged = true
	var final types.View
	for i, p := range q.Members() {
		v, ok := latest[p]
		if !ok || !v.Set.Equal(q) {
			m.Converged = false
			break
		}
		if i == 0 {
			final = v
		} else if v.ID != final.ID {
			m.Converged = false
			break
		}
	}
	if !m.Converged {
		return m
	}
	m.FinalView = final
	if m.LastNewview > l {
		m.LPrime = m.LastNewview.Sub(l)
	}
	stab := l.Add(m.LPrime)

	// Messages sent in the final view from members of Q: senders are in
	// the final view from their newview(final) time onward (no later
	// newview exists at them).
	inFinal := make(map[types.ProcID]bool)
	for p, v := range log.Initial {
		if q.Contains(p) && v.ID == final.ID {
			inFinal[p] = true
		}
	}
	sendTime := make(map[msgKey]sim.Time)
	safeTimes := make(map[msgKey]map[types.ProcID]sim.Time)
	for _, e := range log.Events {
		switch e.Kind {
		case VSNewview:
			if q.Contains(e.P) {
				inFinal[e.P] = e.View.ID == final.ID
			}
		case VSGpsnd:
			if q.Contains(e.P) && inFinal[e.P] {
				sendTime[msgKey{e.Msg.Sender, e.Msg.Seq}] = e.T
			}
		case VSSafe:
			if q.Contains(e.P) {
				k := msgKey{e.Msg.Sender, e.Msg.Seq}
				if _, sent := sendTime[k]; sent {
					if safeTimes[k] == nil {
						safeTimes[k] = make(map[types.ProcID]sim.Time)
					}
					safeTimes[k][e.P] = e.T
				}
			}
		}
	}
	for k, t := range sendTime {
		m.MsgsMeasured++
		got := safeTimes[k]
		complete := true
		var last sim.Time
		for _, p := range q.Members() {
			ts, ok := got[p]
			if !ok {
				complete = false
				break
			}
			if ts > last {
				last = ts
			}
		}
		if !complete {
			m.IncompleteSafe++
			continue
		}
		ref := t
		if stab > ref {
			ref = stab
		}
		if lag := last.Sub(ref); lag > m.MaxSafeLag {
			m.MaxSafeLag = lag
		}
	}
	return m
}

// CheckVSProperty returns nil iff the recorded execution satisfies the
// conclusion of VS-property(b, d, Q) for stabilization time l.
func CheckVSProperty(log *Log, q types.ProcSet, l sim.Time, b, d time.Duration) error {
	m := MeasureVS(log, q, l)
	if !m.Converged {
		return fmt.Errorf("props: VS-property: views of %v did not converge to membership %v", q, q)
	}
	if m.LPrime > b {
		return fmt.Errorf("props: VS-property: stabilization l′=%v exceeds b=%v", m.LPrime, b)
	}
	if m.IncompleteSafe > 0 {
		return fmt.Errorf("props: VS-property: %d of %d messages missing safe events at some member",
			m.IncompleteSafe, m.MsgsMeasured)
	}
	if m.MaxSafeLag > d {
		return fmt.Errorf("props: VS-property: safe lag %v exceeds d=%v", m.MaxSafeLag, d)
	}
	return nil
}

// TOMeasure is the outcome of evaluating TO-property's conclusion.
type TOMeasure struct {
	// LPrime is the stabilization interval used as the split point (the
	// caller typically passes the VS-measured value, matching the proof of
	// Theorem 7.1 where l′_TO ≤ b + d).
	LPrime time.Duration
	// MaxSendLag is, over every value sent from a member of Q anywhere in
	// the execution, the worst (last delivery at a member of Q) −
	// max(sendTime, l+l′): clause 2(b) of Figure 5.
	MaxSendLag time.Duration
	// MaxRelayLag is the same for clause 2(c): values delivered to any
	// member of Q must reach all members.
	MaxRelayLag time.Duration
	// ValuesMeasured counts values entering the measurement; Incomplete
	// counts those not delivered at every member of Q by the end.
	ValuesMeasured int
	Incomplete     int
}

type valKey struct {
	Origin types.ProcID
	Seq    int
}

// msgKey identifies a VS message by sender and send sequence.
type msgKey struct {
	Sender types.ProcID
	Seq    int
}

// MeasureTO evaluates the conclusion of TO-property(·, ·, Q) over the log,
// splitting at l + lPrime.
func MeasureTO(log *Log, q types.ProcSet, l sim.Time, lPrime time.Duration) TOMeasure {
	m := TOMeasure{LPrime: lPrime}
	stab := l.Add(lPrime)

	sent := make(map[valKey]sim.Time)      // values sent from Q
	firstRecv := make(map[valKey]sim.Time) // first delivery at a member of Q
	recvAt := make(map[valKey]map[types.ProcID]sim.Time)
	for _, e := range log.Events {
		switch e.Kind {
		case TOBcast:
			if q.Contains(e.P) {
				sent[valKey{e.P, e.ValueSeq}] = e.T
			}
		case TOBrcv:
			if q.Contains(e.P) {
				k := valKey{e.From, e.ValueSeq}
				if _, ok := firstRecv[k]; !ok {
					firstRecv[k] = e.T
				}
				if recvAt[k] == nil {
					recvAt[k] = make(map[types.ProcID]sim.Time)
				}
				if _, dup := recvAt[k][e.P]; !dup {
					recvAt[k][e.P] = e.T
				}
			}
		}
	}
	measure := func(k valKey, ref sim.Time) (time.Duration, bool) {
		got := recvAt[k]
		var last sim.Time
		for _, p := range q.Members() {
			ts, ok := got[p]
			if !ok {
				return 0, false
			}
			if ts > last {
				last = ts
			}
		}
		if stab > ref {
			ref = stab
		}
		return last.Sub(ref), true
	}
	for k, t := range sent {
		m.ValuesMeasured++
		lag, ok := measure(k, t)
		if !ok {
			m.Incomplete++
			continue
		}
		if lag > m.MaxSendLag {
			m.MaxSendLag = lag
		}
	}
	for k, t := range firstRecv {
		if _, own := sent[k]; own {
			continue // already counted with the (earlier) send reference
		}
		m.ValuesMeasured++
		lag, ok := measure(k, t)
		if !ok {
			m.Incomplete++
			continue
		}
		if lag > m.MaxRelayLag {
			m.MaxRelayLag = lag
		}
	}
	return m
}

// CheckTOProperty returns nil iff the recorded execution satisfies the
// conclusion of TO-property(b, d, Q) for stabilization time l, using the
// smallest stabilization split not exceeding b that the log supports.
func CheckTOProperty(log *Log, q types.ProcSet, l sim.Time, b, d time.Duration) error {
	m := MeasureTO(log, q, l, b)
	if m.Incomplete > 0 {
		return fmt.Errorf("props: TO-property: %d of %d values not delivered at every member of %v",
			m.Incomplete, m.ValuesMeasured, q)
	}
	if m.MaxSendLag > d || m.MaxRelayLag > d {
		return fmt.Errorf("props: TO-property: delivery lag send=%v relay=%v exceeds d=%v",
			m.MaxSendLag, m.MaxRelayLag, d)
	}
	return nil
}
