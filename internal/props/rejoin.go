package props

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/types"
)

// PersistedDelivery identifies one client delivery as restorable from a
// processor's stable storage: the origin, the origin's submission index,
// and the value.
type PersistedDelivery struct {
	From  types.ProcID
	Seq   int
	Value types.Value
}

// CrashSnapshot records, at one amnesia crash, the delivery prefix the
// crashed processor's stable storage will restore (after the device tears
// its in-flight write). The stack collects one per crash; CheckRejoinSafety
// compares them against the recorded trace.
type CrashSnapshot struct {
	P         types.ProcID
	T         sim.Time
	Persisted []PersistedDelivery
}

// CheckRejoinSafety verifies that amnesia recovery never rewinds or skips
// a client-visible delivery. For every crash of processor p at time t with
// persisted prefix D:
//
//  1. prefix equality — the deliveries released at p before t are exactly
//     D, pairwise (origin, submission index, value). Write-ahead delivery
//     gating promises the durable prefix equals the delivered prefix;
//     this is the direct check of that promise, in both directions: a
//     delivery missing from D was released before it was durable, and an
//     entry of D beyond the released prefix means storage ran ahead of
//     the client (possible only if a delivery record became durable while
//     the processor was paused Bad and it then crashed before resuming —
//     an interleaving the generated campaigns never produce, and one this
//     check deliberately rejects rather than excuses);
//
//  2. no re-delivery — no delivery at p after t (and before p's next
//     crash, whose own snapshot takes over) repeats an (origin, index)
//     pair of D: the rejoined processor continues after its persisted
//     prefix, it does not replay it to the client;
//
//  3. continuation — for each origin with entries in D, the first
//     delivery from that origin at p after t carries the next submission
//     index after D's highest: the rejoined processor neither rewinds
//     behind nor skips over the position its persisted prefix ends at.
//
// The error reports the first violation found.
func CheckRejoinSafety(log *Log, crashes []CrashSnapshot) error {
	if len(crashes) == 0 {
		return nil
	}
	// Deliveries per processor, in trace order (the log is in time order).
	delivs := make(map[types.ProcID][]Event)
	for _, e := range log.Events {
		if e.Kind == TOBrcv {
			delivs[e.P] = append(delivs[e.P], e)
		}
	}
	byProc := make(map[types.ProcID][]CrashSnapshot)
	for _, cs := range crashes {
		byProc[cs.P] = append(byProc[cs.P], cs)
	}
	for p, list := range byProc {
		sort.SliceStable(list, func(i, j int) bool { return list[i].T < list[j].T })
		seq := delivs[p]
		for k, cs := range list {
			// 1. Prefix equality against everything delivered before the crash.
			pre := 0
			for pre < len(seq) && seq[pre].T < cs.T {
				pre++
			}
			if pre != len(cs.Persisted) {
				return fmt.Errorf("props: rejoin safety: crash of %v at %v: %d deliveries released, %d persisted",
					p, cs.T, pre, len(cs.Persisted))
			}
			for i := 0; i < pre; i++ {
				got, want := seq[i], cs.Persisted[i]
				if got.From != want.From || got.ValueSeq != want.Seq || got.Value != want.Value {
					return fmt.Errorf("props: rejoin safety: crash of %v at %v: delivery %d released as (%v,%d,%q) but persisted as (%v,%d,%q)",
						p, cs.T, i+1, got.From, got.ValueSeq, got.Value, want.From, want.Seq, want.Value)
				}
			}
			// The crash's jurisdiction ends at p's next crash (whose own
			// snapshot takes over).
			end := sim.Never
			if k+1 < len(list) {
				end = list[k+1].T
			}
			persisted := make(map[PersistedDelivery]bool, len(cs.Persisted))
			maxSeq := make(map[types.ProcID]int)
			for _, d := range cs.Persisted {
				persisted[PersistedDelivery{From: d.From, Seq: d.Seq}] = true
				if d.Seq > maxSeq[d.From] {
					maxSeq[d.From] = d.Seq
				}
			}
			// 2 and 3 over the post-crash window.
			firstFrom := make(map[types.ProcID]bool)
			for _, e := range seq[pre:] {
				if e.T >= end {
					break
				}
				if persisted[PersistedDelivery{From: e.From, Seq: e.ValueSeq}] {
					return fmt.Errorf("props: rejoin safety: crash of %v at %v: persisted delivery (%v,%d) re-delivered at %v",
						p, cs.T, e.From, e.ValueSeq, e.T)
				}
				if !firstFrom[e.From] {
					firstFrom[e.From] = true
					if want, ok := maxSeq[e.From]; ok && e.ValueSeq != want+1 {
						return fmt.Errorf("props: rejoin safety: crash of %v at %v: deliveries from %v resume at index %d, want %d",
							p, cs.T, e.From, e.ValueSeq, want+1)
					}
				}
			}
		}
	}
	return nil
}
