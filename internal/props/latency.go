package props

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// LatencyStats summarizes a latency distribution.
type LatencyStats struct {
	Count      int
	Incomplete int // values not delivered at every processor by log end
	Min, Max   time.Duration
	Mean       time.Duration
	P50, P99   time.Duration
}

// String renders the summary compactly.
func (s LatencyStats) String() string {
	if s.Count == 0 {
		return fmt.Sprintf("no complete samples (%d incomplete)", s.Incomplete)
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P99, s.Max)
}

// MeasureDeliveryLatency computes, for every value submitted anywhere in
// the log, the latency from its bcast to its last delivery among the given
// processors, and summarizes the distribution. Values missing a delivery
// at some processor are counted as Incomplete and excluded from the
// distribution.
func MeasureDeliveryLatency(log *Log, procs types.ProcSet) LatencyStats {
	sent := make(map[valKey]sim.Time)
	last := make(map[valKey]sim.Time)
	got := make(map[valKey]map[types.ProcID]bool)
	for _, e := range log.Events {
		switch e.Kind {
		case TOBcast:
			sent[valKey{e.P, e.ValueSeq}] = e.T
		case TOBrcv:
			if !procs.Contains(e.P) {
				continue
			}
			k := valKey{e.From, e.ValueSeq}
			if got[k] == nil {
				got[k] = make(map[types.ProcID]bool)
			}
			got[k][e.P] = true
			if e.T > last[k] {
				last[k] = e.T
			}
		}
	}
	var stats LatencyStats
	var samples []time.Duration
	for k, t0 := range sent {
		complete := true
		for _, p := range procs.Members() {
			if !got[k][p] {
				complete = false
				break
			}
		}
		if !complete {
			stats.Incomplete++
			continue
		}
		samples = append(samples, last[k].Sub(t0))
	}
	if len(samples) == 0 {
		return stats
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	stats.Count = len(samples)
	stats.Min = samples[0]
	stats.Max = samples[len(samples)-1]
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	stats.Mean = sum / time.Duration(len(samples))
	stats.P50 = samples[len(samples)/2]
	idx99 := (len(samples)*99 + 99) / 100
	if idx99 >= len(samples) {
		idx99 = len(samples) - 1
	}
	stats.P99 = samples[idx99]
	return stats
}
