// Package props records timed external traces and evaluates the paper's
// conditional performance and fault-tolerance properties over them:
// TO-property(b, d, Q) of Figure 5, VS-property(b, d, Q) of Figure 7, and
// the phase decomposition of the Section 7 argument (Figure 12).
//
// The evaluators do two jobs: (a) verdicts — does a recorded execution
// satisfy the property for given parameters; and (b) measurement — the
// smallest stabilization interval l′ and delivery bound d that make the
// property hold, which is what the experiment tables report against the
// analytic bounds.
package props

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/types"
)

// Kind discriminates timed trace events.
type Kind int

// Event kinds: client-level TO events, VS-interface events, and failure
// status changes are kept in one log so the evaluators can split executions
// at stabilization points.
const (
	TOBcast Kind = iota
	TOBrcv
	VSGpsnd
	VSGprcv
	VSSafe
	VSNewview
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case TOBcast:
		return "bcast"
	case TOBrcv:
		return "brcv"
	case VSGpsnd:
		return "gpsnd"
	case VSGprcv:
		return "gprcv"
	case VSSafe:
		return "safe"
	case VSNewview:
		return "newview"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed external event.
type Event struct {
	T    sim.Time
	Kind Kind
	// P is the location at which the event occurs (sender for bcast/gpsnd,
	// receiver for brcv/gprcv/safe, installer for newview).
	P types.ProcID
	// From is the originating location for brcv/gprcv/safe.
	From types.ProcID
	// Value carries the client data value for TO events.
	Value types.Value
	// ValueSeq disambiguates repeated values: the per-origin submission
	// index assigned at bcast and propagated to the matching brcv events.
	ValueSeq int
	// Msg identifies the VS message for gpsnd/gprcv/safe.
	Msg check.MsgID
	// View carries the installed view for newview events.
	View types.View
}

// String renders the event.
func (e Event) String() string {
	switch e.Kind {
	case TOBcast:
		return fmt.Sprintf("%v bcast(%q#%d)_%v", e.T, string(e.Value), e.ValueSeq, e.P)
	case TOBrcv:
		return fmt.Sprintf("%v brcv(%q#%d)_{%v,%v}", e.T, string(e.Value), e.ValueSeq, e.From, e.P)
	case VSGpsnd:
		return fmt.Sprintf("%v gpsnd(%v)_%v", e.T, e.Msg, e.P)
	case VSGprcv:
		return fmt.Sprintf("%v gprcv(%v)_{%v,%v}", e.T, e.Msg, e.From, e.P)
	case VSSafe:
		return fmt.Sprintf("%v safe(%v)_{%v,%v}", e.T, e.Msg, e.From, e.P)
	case VSNewview:
		return fmt.Sprintf("%v newview(%v)_%v", e.T, e.View, e.P)
	default:
		return fmt.Sprintf("%v ?", e.T)
	}
}

// Log accumulates timed events in occurrence order. Initial records the
// distinguished initial view of the processors that start inside it (there
// is no newview event for the initial view, but the property evaluators
// need to know it).
type Log struct {
	Events  []Event
	Initial map[types.ProcID]types.View

	// Sink and InitialSink, when non-nil, additionally observe every
	// Append/SetInitial as it happens. The live daemon streams each event
	// to its on-disk JSONL delivery log this way, so the trace survives a
	// process kill up to the last flushed line.
	Sink        func(Event)
	InitialSink func(types.ProcID, types.View)
}

// Append adds an event.
func (l *Log) Append(e Event) {
	l.Events = append(l.Events, e)
	if l.Sink != nil {
		l.Sink(e)
	}
}

// SetInitial records that p starts in view v.
func (l *Log) SetInitial(p types.ProcID, v types.View) {
	if l.Initial == nil {
		l.Initial = make(map[types.ProcID]types.View)
	}
	l.Initial[p] = v
	if l.InitialSink != nil {
		l.InitialSink(p, v)
	}
}

// Until returns a log view containing only events strictly before t,
// sharing the initial-view table. Use it to evaluate a property over a
// window of a longer execution.
func (l *Log) Until(t sim.Time) *Log {
	out := &Log{Initial: l.Initial}
	for _, e := range l.Events {
		if e.T < t {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Filter returns the events satisfying pred, in order.
func (l *Log) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.Events) }
