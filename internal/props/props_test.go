package props

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/types"
)

func msAt(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func viewOf(epoch int64, members ...types.ProcID) types.View {
	return types.View{ID: types.ViewID{Epoch: epoch, Proc: members[0]}, Set: types.NewProcSet(members...)}
}

// buildVSLog constructs a log in which Q = {0,1} partitions away at l=10ms,
// converges at 14ms, and one message (sent 20ms) becomes safe at both
// members by 25ms.
func buildVSLog() (*Log, types.ProcSet, sim.Time) {
	q := types.NewProcSet(0, 1)
	final := viewOf(2, 0, 1)
	log := &Log{}
	for _, p := range types.RangeProcSet(3).Members() {
		log.SetInitial(p, types.InitialView(types.RangeProcSet(3)))
	}
	log.Append(Event{T: msAt(12), Kind: VSNewview, P: 0, View: final})
	log.Append(Event{T: msAt(14), Kind: VSNewview, P: 1, View: final})
	m := check.MsgID{Sender: 0, Seq: 1}
	log.Append(Event{T: msAt(20), Kind: VSGpsnd, P: 0, Msg: m})
	log.Append(Event{T: msAt(22), Kind: VSGprcv, P: 0, From: 0, Msg: m})
	log.Append(Event{T: msAt(22), Kind: VSGprcv, P: 1, From: 0, Msg: m})
	log.Append(Event{T: msAt(24), Kind: VSSafe, P: 0, From: 0, Msg: m})
	log.Append(Event{T: msAt(25), Kind: VSSafe, P: 1, From: 0, Msg: m})
	return log, q, msAt(10)
}

func TestMeasureVSConvergedAndLags(t *testing.T) {
	log, q, l := buildVSLog()
	m := MeasureVS(log, q, l)
	if !m.Converged {
		t.Fatal("not converged")
	}
	if m.LPrime != 4*time.Millisecond {
		t.Errorf("l' = %v, want 4ms", m.LPrime)
	}
	if m.MsgsMeasured != 1 || m.IncompleteSafe != 0 {
		t.Errorf("msgs=%d incomplete=%d", m.MsgsMeasured, m.IncompleteSafe)
	}
	// Lag: last safe 25ms − max(send 20ms, stab 14ms) = 5ms.
	if m.MaxSafeLag != 5*time.Millisecond {
		t.Errorf("safe lag = %v, want 5ms", m.MaxSafeLag)
	}
	if err := CheckVSProperty(log, q, l, 4*time.Millisecond, 5*time.Millisecond); err != nil {
		t.Errorf("property at exact bounds failed: %v", err)
	}
	if err := CheckVSProperty(log, q, l, 3*time.Millisecond, 5*time.Millisecond); err == nil {
		t.Error("b below measured accepted")
	}
	if err := CheckVSProperty(log, q, l, 4*time.Millisecond, 4*time.Millisecond); err == nil {
		t.Error("d below measured accepted")
	}
}

func TestMeasureVSNotConvergedCases(t *testing.T) {
	q := types.NewProcSet(0, 1)
	// Case: one member never gets a view with membership exactly Q.
	log := &Log{}
	log.Append(Event{T: msAt(5), Kind: VSNewview, P: 0, View: viewOf(2, 0, 1)})
	log.Append(Event{T: msAt(6), Kind: VSNewview, P: 1, View: viewOf(3, 0, 1, 2)})
	if m := MeasureVS(log, q, 0); m.Converged {
		t.Error("converged despite wrong membership")
	}
	// Case: members in different views with the right membership.
	log2 := &Log{}
	log2.Append(Event{T: msAt(5), Kind: VSNewview, P: 0, View: viewOf(2, 0, 1)})
	log2.Append(Event{T: msAt(6), Kind: VSNewview, P: 1, View: viewOf(4, 0, 1)})
	if m := MeasureVS(log2, q, 0); m.Converged {
		t.Error("converged despite different ids")
	}
	// Case: missing safe events count as incomplete.
	log3, q3, l3 := buildVSLog()
	log3.Events = log3.Events[:len(log3.Events)-1] // drop p1's safe
	m := MeasureVS(log3, q3, l3)
	if m.IncompleteSafe != 1 {
		t.Errorf("IncompleteSafe = %d", m.IncompleteSafe)
	}
	if err := CheckVSProperty(log3, q3, l3, time.Second, time.Second); err == nil {
		t.Error("incomplete safe accepted")
	}
}

func TestMeasureVSInitialViewIsFinal(t *testing.T) {
	// No newview events at all: the initial view is the final view, l'=0.
	q := types.RangeProcSet(2)
	log := &Log{}
	for _, p := range q.Members() {
		log.SetInitial(p, types.InitialView(q))
	}
	m := check.MsgID{Sender: 0, Seq: 1}
	log.Append(Event{T: msAt(1), Kind: VSGpsnd, P: 0, Msg: m})
	log.Append(Event{T: msAt(2), Kind: VSSafe, P: 0, From: 0, Msg: m})
	log.Append(Event{T: msAt(3), Kind: VSSafe, P: 1, From: 0, Msg: m})
	got := MeasureVS(log, q, 0)
	if !got.Converged || got.LPrime != 0 {
		t.Fatalf("measure = %+v", got)
	}
	if got.MsgsMeasured != 1 || got.MaxSafeLag != 2*time.Millisecond {
		t.Errorf("msgs=%d lag=%v", got.MsgsMeasured, got.MaxSafeLag)
	}
}

func TestMeasureTO(t *testing.T) {
	q := types.NewProcSet(0, 1)
	log := &Log{}
	// Value sent from inside Q before stabilization.
	log.Append(Event{T: msAt(5), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1})
	// Value from outside Q delivered into Q (clause c).
	log.Append(Event{T: msAt(18), Kind: TOBrcv, P: 0, From: 2, Value: "x", ValueSeq: 1})
	log.Append(Event{T: msAt(26), Kind: TOBrcv, P: 1, From: 2, Value: "x", ValueSeq: 1})
	// Deliveries of "a".
	log.Append(Event{T: msAt(21), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1})
	log.Append(Event{T: msAt(23), Kind: TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1})

	l, lp := msAt(10), 5*time.Millisecond // stab = 15ms
	m := MeasureTO(log, q, l, lp)
	if m.ValuesMeasured != 2 || m.Incomplete != 0 {
		t.Fatalf("measure = %+v", m)
	}
	// "a": last delivery 23 − max(5, 15) = 8ms.
	if m.MaxSendLag != 8*time.Millisecond {
		t.Errorf("send lag = %v, want 8ms", m.MaxSendLag)
	}
	// "x": first recv at 18 → last 26 − max(18, 15) = 8ms.
	if m.MaxRelayLag != 8*time.Millisecond {
		t.Errorf("relay lag = %v, want 8ms", m.MaxRelayLag)
	}
	if err := CheckTOProperty(log, q, l, lp, 8*time.Millisecond); err != nil {
		t.Errorf("property at exact bound failed: %v", err)
	}
	if err := CheckTOProperty(log, q, l, lp, 7*time.Millisecond); err == nil {
		t.Error("d below measured accepted")
	}
}

func TestMeasureTOIncomplete(t *testing.T) {
	q := types.NewProcSet(0, 1)
	log := &Log{}
	log.Append(Event{T: msAt(5), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1})
	log.Append(Event{T: msAt(7), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1})
	// p1 never delivers.
	m := MeasureTO(log, q, 0, 0)
	if m.Incomplete != 1 {
		t.Fatalf("Incomplete = %d", m.Incomplete)
	}
	if err := CheckTOProperty(log, q, 0, 0, time.Hour); err == nil {
		t.Error("incomplete delivery accepted")
	}
}

func TestLogUntilAndFilter(t *testing.T) {
	log := &Log{}
	log.SetInitial(0, types.InitialView(types.RangeProcSet(1)))
	log.Append(Event{T: msAt(1), Kind: TOBcast, P: 0, Value: "a"})
	log.Append(Event{T: msAt(5), Kind: TOBcast, P: 0, Value: "b"})
	cut := log.Until(msAt(5))
	if cut.Len() != 1 || cut.Initial == nil {
		t.Fatalf("Until = %d events, initial %v", cut.Len(), cut.Initial)
	}
	got := log.Filter(func(e Event) bool { return e.Value == "b" })
	if len(got) != 1 || got[0].T != msAt(5) {
		t.Fatalf("Filter = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	log := &Log{}
	log.SetInitial(0, types.InitialView(types.NewProcSet(0, 1)))
	log.Append(Event{T: msAt(1), Kind: TOBcast, P: 0, Value: "v|with|bars", ValueSeq: 3})
	log.Append(Event{T: msAt(2), Kind: TOBrcv, P: 1, From: 0, Value: "v|with|bars", ValueSeq: 3})
	log.Append(Event{T: msAt(3), Kind: VSGpsnd, P: 0, Msg: check.MsgID{Sender: 0, Seq: 7}})
	log.Append(Event{T: msAt(4), Kind: VSGprcv, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 7}})
	log.Append(Event{T: msAt(5), Kind: VSSafe, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 7}})
	log.Append(Event{T: msAt(6), Kind: VSNewview, P: 1, View: viewOf(2, 0, 1)})

	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != log.Len() {
		t.Fatalf("round trip lost events: %d vs %d", got.Len(), log.Len())
	}
	for i := range log.Events {
		a, b := log.Events[i], got.Events[i]
		if a.T != b.T || a.Kind != b.Kind || a.P != b.P || a.From != b.From ||
			a.Value != b.Value || a.ValueSeq != b.ValueSeq || a.Msg != b.Msg ||
			a.View.ID != b.View.ID || !a.View.Set.Equal(b.View.Set) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
	iv, ok := got.Initial[0]
	if !ok || iv.ID != types.G0() || !iv.Set.Equal(types.NewProcSet(0, 1)) {
		t.Fatalf("initial view lost: %v %t", iv, ok)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"kind":"martian","p":0}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEventStrings(t *testing.T) {
	events := []Event{
		{Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1},
		{Kind: TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1},
		{Kind: VSGpsnd, P: 0, Msg: check.MsgID{Sender: 0, Seq: 1}},
		{Kind: VSGprcv, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 1}},
		{Kind: VSSafe, P: 1, From: 0, Msg: check.MsgID{Sender: 0, Seq: 1}},
		{Kind: VSNewview, P: 1, View: viewOf(2, 0, 1)},
	}
	for _, e := range events {
		if e.String() == "" || e.Kind.String() == "?" {
			t.Errorf("bad String for %+v", e)
		}
	}
}

func TestMeasureDeliveryLatency(t *testing.T) {
	procs := types.NewProcSet(0, 1)
	log := &Log{}
	// Value 1: sent at 10ms, last delivery 14ms → 4ms.
	log.Append(Event{T: msAt(10), Kind: TOBcast, P: 0, Value: "a", ValueSeq: 1})
	log.Append(Event{T: msAt(12), Kind: TOBrcv, P: 0, From: 0, Value: "a", ValueSeq: 1})
	log.Append(Event{T: msAt(14), Kind: TOBrcv, P: 1, From: 0, Value: "a", ValueSeq: 1})
	// Value 2: sent at 20ms, last delivery 28ms → 8ms.
	log.Append(Event{T: msAt(20), Kind: TOBcast, P: 1, Value: "b", ValueSeq: 1})
	log.Append(Event{T: msAt(22), Kind: TOBrcv, P: 1, From: 1, Value: "b", ValueSeq: 1})
	log.Append(Event{T: msAt(28), Kind: TOBrcv, P: 0, From: 1, Value: "b", ValueSeq: 1})
	// Value 3: incomplete (only delivered at p0).
	log.Append(Event{T: msAt(30), Kind: TOBcast, P: 0, Value: "c", ValueSeq: 2})
	log.Append(Event{T: msAt(31), Kind: TOBrcv, P: 0, From: 0, Value: "c", ValueSeq: 2})

	s := MeasureDeliveryLatency(log, procs)
	if s.Count != 2 || s.Incomplete != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Min != 4*time.Millisecond || s.Max != 8*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 6*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	empty := MeasureDeliveryLatency(&Log{}, procs)
	if empty.Count != 0 || empty.String() == "" {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestMeasurePhases(t *testing.T) {
	// Construct a log with a clean three-phase structure: newviews by
	// 14ms, summaries safe by 20ms, one post-exchange value delivered with
	// 3ms lag.
	q := types.NewProcSet(0, 1)
	final := viewOf(2, 0, 1)
	log := &Log{}
	log.Append(Event{T: msAt(12), Kind: VSNewview, P: 0, View: final})
	log.Append(Event{T: msAt(14), Kind: VSNewview, P: 1, View: final})
	// State-exchange summaries: first gpsnd of each member in the final view.
	s0 := check.MsgID{Sender: 0, Seq: 1}
	s1 := check.MsgID{Sender: 1, Seq: 1}
	log.Append(Event{T: msAt(14), Kind: VSGpsnd, P: 0, Msg: s0})
	log.Append(Event{T: msAt(15), Kind: VSGpsnd, P: 1, Msg: s1})
	log.Append(Event{T: msAt(18), Kind: VSSafe, P: 0, From: 0, Msg: s0})
	log.Append(Event{T: msAt(18), Kind: VSSafe, P: 1, From: 0, Msg: s0})
	log.Append(Event{T: msAt(20), Kind: VSSafe, P: 0, From: 1, Msg: s1})
	log.Append(Event{T: msAt(19), Kind: VSSafe, P: 1, From: 1, Msg: s1})
	// A post-exchange value, delivered everywhere by 28ms.
	log.Append(Event{T: msAt(25), Kind: TOBcast, P: 0, Value: "x", ValueSeq: 1})
	log.Append(Event{T: msAt(27), Kind: TOBrcv, P: 0, From: 0, Value: "x", ValueSeq: 1})
	log.Append(Event{T: msAt(28), Kind: TOBrcv, P: 1, From: 0, Value: "x", ValueSeq: 1})

	ph := MeasurePhases(log, q, msAt(10))
	if !ph.VS.Converged {
		t.Fatal("not converged")
	}
	if ph.VS.LPrime != 4*time.Millisecond {
		t.Errorf("l' = %v", ph.VS.LPrime)
	}
	// Exchange ends at the last summary safe (20ms) − stab (14ms) = 6ms.
	if ph.ExchangePhase != 6*time.Millisecond {
		t.Errorf("exchange = %v, want 6ms", ph.ExchangePhase)
	}
	// Post lag: delivery complete 28ms − send 25ms = 3ms.
	if ph.PostLag != 3*time.Millisecond {
		t.Errorf("post lag = %v, want 3ms", ph.PostLag)
	}
	if ph.Incomplete != 0 {
		t.Errorf("incomplete = %d", ph.Incomplete)
	}
}
