package props

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL feeds arbitrary bytes to the trace reader; it must never
// panic, and any accepted log must serialize back and re-parse.
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"kind":"bcast","p":0,"value":"a","value_seq":1}` + "\n"))
	f.Add([]byte(`{"kind":"initial","p":0,"view_epoch":1,"view_set":[0,1]}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatalf("accepted log does not serialize: %v", err)
		}
		if _, err := ReadJSONL(&buf); err != nil {
			t.Fatalf("serialized log does not re-parse: %v", err)
		}
	})
}
